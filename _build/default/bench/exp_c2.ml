(* C2 — §6.1 security: the attack surface of a private DIF versus the
   public-address Internet model.

   RINA target: a two-member DIF protected by password enrollment.
   The attacker has a physical link to a member (the strongest
   position an outsider can hold) and mounts:
     (a) enrollment with bad credentials,
     (b) member-address spoofing via forged identity hellos,
     (c) injection of well-formed data PDUs at a known address/CEP,
     (d) reconnaissance: counting *any* response evoked from the DIF.

   TCP/IP target: a host on a routed network running one TCP service
   (well-known port) and DNS.  The attacker:
     (a) resolves the victim's name (no authorization needed),
     (b) SYN-scans 64 ports (RSTs are an existence+state oracle),
     (c) delivers a UDP datagram with a forged source address. *)

module Engine = Rina_sim.Engine
module Ipcp = Rina_core.Ipcp
module Dif = Rina_core.Dif
module Link = Rina_sim.Link
module Pdu = Rina_core.Pdu
module Table = Rina_util.Table

let secret = "s3cret-dif-password"

let rina_attacks () =
  let engine = Engine.create () in
  let rng = Rina_util.Prng.create 83 in
  let policy = { Rina_core.Policy.default with Rina_core.Policy.auth = Rina_core.Policy.Auth_password secret } in
  let dif = Dif.create engine ~policy "private-net" in
  let a = Dif.add_member dif ~credentials:secret ~name:"A" () in
  let b = Dif.add_member dif ~credentials:secret ~name:"B" () in
  let l_ab = Link.create engine rng ~bit_rate:10_000_000. ~delay:0.002 () in
  Dif.connect dif a b (Link.endpoint_a l_ab, Link.endpoint_b l_ab);
  Dif.run_until_converged dif ();
  (* A legitimate flow between members, so there is a live CEP to
     target. *)
  let received_legit = ref 0 in
  Ipcp.register_app b (Rina_core.Types.apn "vault") ~on_flow:(fun flow ->
      flow.Ipcp.set_on_receive (fun _ -> incr received_legit));
  Ipcp.register_app a (Rina_core.Types.apn "client") ~on_flow:(fun _ -> ());
  let flow_ok = ref false in
  Ipcp.allocate_flow a ~src:(Rina_core.Types.apn "client")
    ~dst:(Rina_core.Types.apn "vault") ~qos_id:1
    ~on_result:(function Ok _ -> flow_ok := true | Error _ -> ());
  Engine.run ~until:(Engine.now engine +. 10.) engine;
  (* The attacker: an IPC process with wrong credentials (it does NOT
     know the DIF secret, so its policy carries its guess), wired
     directly to member B, plus raw access to its end of the link. *)
  let l_att = Link.create engine rng ~bit_rate:10_000_000. ~delay:0.002 () in
  let raw_chan = Link.endpoint_a l_att in
  (* Tap the wire: count every non-hello frame the DIF sends toward
     the attacker (periodic identity hellos are inherent to holding a
     wire and counted separately). *)
  let responses = ref 0 and hellos_seen = ref 0 in
  let att_chan =
    {
      raw_chan with
      Rina_sim.Chan.set_receiver =
        (fun f ->
          raw_chan.Rina_sim.Chan.set_receiver (fun frame ->
              (if Bytes.length frame > 1 && Char.code (Bytes.get frame 1) = 3 then
                 incr hellos_seen
               else incr responses);
              f frame));
    }
  in
  let attacker_policy =
    { policy with Rina_core.Policy.auth = Rina_core.Policy.Auth_password "letmein" }
  in
  let attacker =
    Ipcp.create engine ~credentials:"letmein" ~name:(Rina_core.Types.apn "Mallory")
      ~dif:"private-net" ~policy:attacker_policy ()
  in
  ignore (Ipcp.bind_port attacker att_chan);
  ignore (Ipcp.bind_port b (Link.endpoint_b l_att));
  Engine.run ~until:(Engine.now engine +. 10.) engine;
  (* (a) the attacker forges an enrollment request outright (it cannot
     even authenticate the member's hellos without the secret). *)
  let m_connect =
    Rina_core.Riep.make ~opcode:Rina_core.Riep.M_connect ~obj_class:"enrollment"
      ~obj_name:"Mallory/1"
      ~obj_value:(Rina_core.Rib.V_str "letmein")
      ~invoke_id:7 ()
  in
  raw_chan.Rina_sim.Chan.send
    (Rina_core.Sdu_protection.protect
       (Pdu.encode
          (Pdu.make ~pdu_type:Pdu.Mgmt ~dst_addr:0 ~src_addr:0
             (Rina_core.Riep.encode m_connect))));
  Engine.run ~until:(Engine.now engine +. 2.) engine;
  let enroll_denied = Rina_util.Metrics.get (Ipcp.metrics b) "enroll_denied" in
  let attacker_enrolled = Ipcp.is_enrolled attacker in
  (* (b) forged hello claiming member A's address. *)
  let forged_hello =
    let w = Rina_util.Codec.Writer.create () in
    Rina_util.Codec.Writer.string w "A/1";
    Rina_util.Codec.Writer.u32 w (Ipcp.address a);
    Rina_util.Codec.Writer.u32 w 0xDEAD;
    Pdu.make ~pdu_type:Pdu.Hello ~dst_addr:0 ~src_addr:(Ipcp.address a)
      (Rina_util.Codec.Writer.contents w)
  in
  att_chan.Rina_sim.Chan.send
    (Rina_core.Sdu_protection.protect (Pdu.encode forged_hello));
  Engine.run ~until:(Engine.now engine +. 2.) engine;
  let hello_rejected = Rina_util.Metrics.get (Ipcp.metrics b) "hello_rejected" in
  (* (c) inject well-formed data PDUs at B's address, scanning CEPs. *)
  let legit_before = !received_legit in
  let ingress_before = Rina_util.Metrics.get (Ipcp.rmt_metrics b) "ingress_dropped" in
  for cep = 1 to 32 do
    let pdu =
      Pdu.make ~pdu_type:Pdu.Dtp ~dst_addr:(Ipcp.address b)
        ~src_addr:(Ipcp.address a) ~dst_cep:cep ~src_cep:99 ~seq:1
        (Bytes.of_string "malicious payload")
    in
    att_chan.Rina_sim.Chan.send (Rina_core.Sdu_protection.protect (Pdu.encode pdu))
  done;
  Engine.run ~until:(Engine.now engine +. 2.) engine;
  let injected_delivered = !received_legit - legit_before in
  let ingress_dropped =
    Rina_util.Metrics.get (Ipcp.rmt_metrics b) "ingress_dropped" - ingress_before
  in
  ( !flow_ok,
    enroll_denied,
    attacker_enrolled,
    hello_rejected,
    injected_delivered,
    ingress_dropped,
    !responses )

let ip_attacks () =
  let net = Rina_exp.Topo.ip_line ~seed:83 ~routers:1 () in
  let engine = net.Rina_exp.Topo.ip_engine in
  let victim = net.Rina_exp.Topo.hosts.(1) in
  let attacker = net.Rina_exp.Topo.hosts.(0) in
  let victim_addr =
    match Tcpip.Node.iface_addr victim 1 with Some a -> a | None -> 0
  in
  let attacker_addr =
    match Tcpip.Node.iface_addr attacker 1 with Some a -> a | None -> 0
  in
  (* Victim services: one TCP server on a well-known port + DNS. *)
  let tv = Tcpip.Tcp.attach victim in
  Tcpip.Tcp.listen tv ~port:5001 ~on_accept:(fun _ -> ());
  let uv = Tcpip.Udp.attach victim in
  let dns = Tcpip.Dns.server uv ~local:victim_addr in
  Tcpip.Dns.register dns "vault.example" victim_addr;
  let spoofed_accepted = ref 0 in
  Tcpip.Udp.listen uv ~port:4000 (fun ~src:_ ~sport:_ _ -> incr spoofed_accepted);
  (* Attacker stack. *)
  let ta = Tcpip.Tcp.attach attacker in
  let ua = Tcpip.Udp.attach attacker in
  (* (a) name resolution. *)
  let resolved = ref None in
  Tcpip.Dns.resolve ua engine ~local:attacker_addr ~server:victim_addr
    "vault.example" ~on_result:(fun r -> resolved := Some r);
  Engine.run ~until:(Engine.now engine +. 3.) engine;
  (* (b) SYN scan of 64 ports. *)
  let open_ports = ref 0 and refused = ref 0 in
  for port = 4990 to 5053 do
    Tcpip.Tcp.connect ta ~src:attacker_addr ~dst:victim_addr ~dport:port
      ~on_result:(function
        | Ok _ -> incr open_ports
        | Error e -> if String.equal e "connection refused" then incr refused)
  done;
  Engine.run ~until:(Engine.now engine +. 5.) engine;
  (* (c) spoofed-source datagram. *)
  Tcpip.Udp.send ua ~src:(Tcpip.Ip.addr_of_string "99.99.99.99") ~dst:victim_addr
    ~sport:666 ~dport:4000 (Bytes.of_string "spoofed");
  Engine.run ~until:(Engine.now engine +. 2.) engine;
  let resolved_ok = match !resolved with Some (Ok _) -> true | _ -> false in
  (resolved_ok, !open_ports, !refused, !spoofed_accepted)

let run () =
  let table =
    Table.create ~title:"C2: attack surface (§6.1) — outsider with a wire into the network"
      ~columns:[ "attack"; "RINA private DIF"; "TCP/IP host" ]
  in
  let ( flow_ok,
        enroll_denied,
        attacker_enrolled,
        hello_rejected,
        injected_delivered,
        ingress_dropped,
        responses ) =
    rina_attacks ()
  in
  let resolved_ok, open_ports, refused, spoofed = ip_attacks () in
  Table.add_rowf table
    "join / locate target | enrollment DENIED (%d denial%s, enrolled=%b) | DNS resolves name freely: %b"
    enroll_denied
    (if enroll_denied = 1 then "" else "s")
    attacker_enrolled resolved_ok;
  Table.add_rowf table
    "identity spoofing | forged hello REJECTED (%d) | source spoofing accepted (%d datagram delivered)"
    hello_rejected spoofed;
  Table.add_rowf table
    "payload injection / scan | 0 of 32 injected PDUs delivered (%d, %d dropped at ingress) | port scan: %d open, %d RST oracles from 64 probes"
    injected_delivered ingress_dropped open_ports refused;
  Table.add_rowf table
    "information leaked to attacker | %d PDUs evoked beyond link hellos (legit flow ok=%b) | host existence, open services, all port states"
    responses flow_ok;
  Table.print table
