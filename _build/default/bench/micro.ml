(* M1 — bechamel micro-benchmarks of the core data structures and
   codecs: per-operation costs underneath every experiment. *)

open Bechamel
open Toolkit

let pdu =
  Rina_core.Pdu.make ~pdu_type:Rina_core.Pdu.Dtp ~dst_addr:42 ~src_addr:7
    ~dst_cep:3 ~src_cep:9 ~qos_id:1 ~seq:12345 (Bytes.make 1200 'x')

let encoded = Rina_core.Pdu.encode pdu

let protected_frame = Rina_core.Sdu_protection.protect encoded

let bench_pdu_encode =
  Test.make ~name:"pdu_encode_1200B" (Staged.stage (fun () -> Rina_core.Pdu.encode pdu))

let bench_pdu_decode =
  Test.make ~name:"pdu_decode_1200B"
    (Staged.stage (fun () -> Rina_core.Pdu.decode encoded))

let bench_crc32 =
  Test.make ~name:"crc32_1200B"
    (Staged.stage (fun () -> Rina_core.Sdu_protection.crc32 encoded))

let bench_sdu_verify =
  Test.make ~name:"sdu_verify_1200B"
    (Staged.stage (fun () -> Rina_core.Sdu_protection.verify protected_frame))

let lsdb =
  let db = Rina_core.Routing.create () in
  let n = 100 in
  for origin = 1 to n do
    let neighbors =
      List.filter_map
        (fun d ->
          let peer = origin + d in
          if peer >= 1 && peer <= n && peer <> origin then Some (peer, 1.0) else None)
        [ -2; -1; 1; 2 ]
    in
    ignore
      (Rina_core.Routing.install db { Rina_core.Routing.Lsa.origin; seq = 1; neighbors })
  done;
  db

let bench_spf_100 =
  Test.make ~name:"dijkstra_spf_100_nodes"
    (Staged.stage (fun () -> Rina_core.Routing.spf lsdb ~source:1))

let lpm =
  let t = Tcpip.Lpm.create () in
  for i = 0 to 255 do
    Tcpip.Lpm.insert t (Tcpip.Ip.prefix (Tcpip.Ip.addr_of_octets 10 i 0 0) 16) i
  done;
  t

let bench_lpm_lookup =
  let addr = Tcpip.Ip.addr_of_string "10.77.1.2" in
  Test.make ~name:"lpm_lookup_256_routes"
    (Staged.stage (fun () -> Tcpip.Lpm.lookup lpm addr))

let bench_heap =
  Test.make ~name:"heap_push_pop_x100"
    (Staged.stage (fun () ->
         let h = Rina_util.Heap.create () in
         for i = 0 to 99 do
           Rina_util.Heap.push h (float_of_int ((i * 37) mod 100)) i
         done;
         while not (Rina_util.Heap.is_empty h) do
           ignore (Rina_util.Heap.pop h)
         done))

let bench_engine =
  Test.make ~name:"engine_schedule_run_x100"
    (Staged.stage (fun () ->
         let e = Rina_sim.Engine.create () in
         for i = 0 to 99 do
           ignore
             (Rina_sim.Engine.schedule e ~delay:(float_of_int i *. 0.001) (fun () -> ()))
         done;
         Rina_sim.Engine.run e))

let bench_rib =
  Test.make ~name:"rib_write_read_x100"
    (Staged.stage (fun () ->
         let rib = Rina_core.Rib.create () in
         for i = 0 to 99 do
           Rina_core.Rib.write rib
             (Printf.sprintf "/dir/app-%d" i)
             (Rina_core.Rib.V_int i)
         done;
         for i = 0 to 99 do
           ignore (Rina_core.Rib.read rib (Printf.sprintf "/dir/app-%d" i))
         done))

let benchmarks =
  Test.make_grouped ~name:"micro"
    [
      bench_pdu_encode;
      bench_pdu_decode;
      bench_crc32;
      bench_sdu_verify;
      bench_spf_100;
      bench_lpm_lookup;
      bench_heap;
      bench_engine;
      bench_rib;
    ]

let run () =
  print_endline "== M1: micro-benchmarks (bechamel; monotonic clock ns/op) ==";
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 1000) () in
  let raw =
    Benchmark.all cfg Instance.[ monotonic_clock ] benchmarks
  in
  let results =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "%-32s %12.1f ns/op\n" name est
      | Some _ | None -> Printf.printf "%-32s (no estimate)\n" name)
    results;
  print_newline ()
