bench/exp_f4.ml: Bytes Format List Printf Rina_core Rina_exp Rina_sim Rina_util Sys Tcpip
