bench/exp_f2.ml: Rina_core Rina_exp Rina_sim Rina_util
