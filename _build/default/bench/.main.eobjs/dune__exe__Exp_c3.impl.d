bench/exp_c3.ml: List Rina_core Rina_exp Rina_sim Rina_util
