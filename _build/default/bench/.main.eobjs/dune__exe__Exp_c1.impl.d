bench/exp_c1.ml: Array List Printf Rina_core Rina_exp Rina_sim Rina_util Tcpip
