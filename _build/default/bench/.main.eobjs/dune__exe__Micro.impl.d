bench/micro.ml: Analyze Bechamel Benchmark Bytes Hashtbl Instance List Measure Printf Rina_core Rina_sim Rina_util Staged Tcpip Test Time Toolkit
