bench/exp_c4.ml: List Rina_core Rina_exp Rina_sim Rina_util
