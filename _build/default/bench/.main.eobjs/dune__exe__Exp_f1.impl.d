bench/exp_f1.ml: List Rina_core Rina_exp Rina_sim Rina_util
