bench/exp_a1.ml: Array Float List Printf Rina_core Rina_exp Rina_sim Rina_util
