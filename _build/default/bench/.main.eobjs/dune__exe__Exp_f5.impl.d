bench/exp_f5.ml: Bytes List Printf Rina_core Rina_exp Rina_sim Rina_util String Sys Tcpip
