bench/exp_c2.ml: Array Bytes Char Rina_core Rina_exp Rina_sim Rina_util String Tcpip
