bench/main.mli:
