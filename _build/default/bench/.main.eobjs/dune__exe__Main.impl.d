bench/main.ml: Array Exp_a1 Exp_c1 Exp_c2 Exp_c3 Exp_c4 Exp_f1 Exp_f2 Exp_f3 Exp_f4 Exp_f5 List Micro Printf Sys
