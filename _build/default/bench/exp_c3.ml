(* C3 — claim 5 (§1) / §6.2: a DIF that owns its multiplexing can run
   a shared bottleneck at high utilisation and still honour per-flow
   QoS, where a single best-effort layer must over-provision.

   Two senders share a 10 Mb/s bottleneck behind one router: a
   2 Mb/s low-latency CBR flow ("the SLA customer") and a best-effort
   background source swept from light load to 1.4x overload.  The
   router's RMT shapes the bottleneck port and serves it with the
   scheduler under test — FIFO (the best-effort Internet model),
   strict priority, or weighted DRR.  The SLA flow's delivery rate and
   p99 latency tell the story. *)

module Engine = Rina_sim.Engine
module Ipcp = Rina_core.Ipcp
module Dif = Rina_core.Dif
module Link = Rina_sim.Link
module Table = Rina_util.Table
module Workload = Rina_exp.Workload

let bottleneck = 10_000_000.

let gold_rate = 2_000_000.

let sdu_size = 1000

let run_case ~scheduler ~sched_name ~bg_rate table =
  let engine = Engine.create () in
  let rng = Rina_util.Prng.create 91 in
  let policy = { Rina_core.Policy.default with Rina_core.Policy.scheduler } in
  let dif = Dif.create engine ~policy "isp" in
  let s_gold = Dif.add_member dif ~name:"sla-sender" () in
  let s_bg = Dif.add_member dif ~name:"bg-sender" () in
  let router = Dif.add_member dif ~name:"router" () in
  let sink_node = Dif.add_member dif ~name:"sink" () in
  let mk rate = Link.create engine rng ~bit_rate:rate ~delay:0.002 () in
  let l1 = mk 50_000_000. and l2 = mk 50_000_000. and l3 = mk bottleneck in
  Dif.connect dif s_gold router (Link.endpoint_a l1, Link.endpoint_b l1);
  Dif.connect dif s_bg router (Link.endpoint_a l2, Link.endpoint_b l2);
  (* The router shapes the bottleneck port slightly under line rate so
     the scheduling decision happens in the RMT, not the wire queue. *)
  Dif.connect dif ~rate_a:(0.95 *. bottleneck) router sink_node
    (Link.endpoint_a l3, Link.endpoint_b l3);
  Dif.run_until_converged dif ();
  let gold_sink = Workload.sink () and bg_sink = Workload.sink () in
  let register name sink =
    Ipcp.register_app sink_node (Rina_core.Types.apn name) ~on_flow:(fun flow ->
        flow.Ipcp.set_on_receive (fun sdu ->
            Workload.on_sdu sink ~now:(Engine.now engine) sdu))
  in
  register "gold-sink" gold_sink;
  register "bg-sink" bg_sink;
  Ipcp.register_app s_gold (Rina_core.Types.apn "gold-src") ~on_flow:(fun _ -> ());
  Ipcp.register_app s_bg (Rina_core.Types.apn "bg-src") ~on_flow:(fun _ -> ());
  let flows = ref [] in
  Ipcp.allocate_flow s_gold ~src:(Rina_core.Types.apn "gold-src")
    ~dst:(Rina_core.Types.apn "gold-sink")
    ~qos_id:Rina_core.Qos.low_latency.Rina_core.Qos.id
    ~on_result:(function Ok f -> flows := ("gold", f) :: !flows | Error _ -> ());
  Ipcp.allocate_flow s_bg ~src:(Rina_core.Types.apn "bg-src")
    ~dst:(Rina_core.Types.apn "bg-sink")
    ~qos_id:Rina_core.Qos.best_effort.Rina_core.Qos.id
    ~on_result:(function Ok f -> flows := ("bg", f) :: !flows | Error _ -> ());
  let deadline = Engine.now engine +. 20. in
  while List.length !flows < 2 && Engine.now engine < deadline do
    Engine.run ~until:(Engine.now engine +. 0.05) engine
  done;
  match (List.assoc_opt "gold" !flows, List.assoc_opt "bg" !flows) with
  | Some gold, Some bg ->
    let t0 = Engine.now engine in
    let span = 20. in
    Workload.cbr engine ~send:gold.Ipcp.send ~rate:gold_rate ~size:sdu_size
      ~until:(t0 +. span) ();
    Workload.cbr engine ~send:bg.Ipcp.send ~rate:bg_rate ~size:sdu_size
      ~until:(t0 +. span) ();
    Engine.run ~until:(t0 +. span +. 3.) engine;
    let sent_gold = gold_sink.Workload.seen_max_seq + 1 in
    let util = (bg_rate +. gold_rate) /. bottleneck in
    Table.add_rowf table "%s | %.0f%% | %.1f%% | %.1f ms | %.2f Mb/s" sched_name
      (100. *. util)
      (100.
       *. float_of_int gold_sink.Workload.count
       /. float_of_int (max 1 sent_gold))
      (1000. *. Rina_util.Stats.percentile gold_sink.Workload.received 99.)
      (Workload.goodput bg_sink ~t0 ~t1:(t0 +. span) /. 1e6)
  | _ ->
    Table.add_rowf table "%s | %.0f%% | ALLOC FAILED | - | -" sched_name
      (100. *. ((bg_rate +. gold_rate) /. bottleneck))

let run () =
  let table =
    Table.create
      ~title:
        "C3: QoS under load (§1 claim 5) — 2 Mb/s low-latency SLA flow vs background on a 10 Mb/s bottleneck"
      ~columns:
        [ "scheduler"; "offered load"; "SLA delivered"; "SLA p99 lat"; "bg goodput" ]
  in
  List.iter
    (fun bg_rate ->
      List.iter
        (fun (scheduler, sched_name) ->
          run_case ~scheduler ~sched_name ~bg_rate table)
        [
          (Rina_core.Policy.Fifo, "FIFO (best effort)");
          (Rina_core.Policy.Priority_queueing, "strict priority");
          (Rina_core.Policy.Drr 1500, "weighted DRR");
        ])
    [ 4_000_000.; 7_000_000.; 9_000_000.; 12_000_000. ];
  Table.print table
