(* F1 — Figure 1: one IPC layer between two directly connected hosts.

   Two hosts, one DIF over the physical link.  The application
   allocates a flow by destination *name* and transfers a bulk of SDUs
   while we sweep the link loss rate.  Reported per (loss, QoS cube):
   flow-allocation latency, delivery ratio, goodput and median SDU
   latency — reliable cubes must deliver everything at any loss rate,
   best-effort must degrade linearly with loss. *)

module Engine = Rina_sim.Engine
module Ipcp = Rina_core.Ipcp
module Table = Rina_util.Table
module Topo = Rina_exp.Topo
module Scenario = Rina_exp.Scenario
module Workload = Rina_exp.Workload

let sdu_count = 300

let sdu_size = 1200

let one_case table ~loss_pct ~qos_id ~qos_name =
  let loss =
    if loss_pct = 0. then Rina_sim.Loss.No_loss
    else Rina_sim.Loss.Bernoulli (loss_pct /. 100.)
  in
  let net = Topo.line ~seed:11 ~bit_rate:10_000_000. ~delay:0.005 ~loss ~n:2 () in
  let sink = Workload.sink () in
  match Scenario.open_flow net ~src:0 ~dst:1 ~qos_id ~sink () with
  | Error e -> Table.add_rowf table "%.0f%% | %s | ALLOC FAILED: %s | - | - | -" loss_pct qos_name e
  | Ok (flow, alloc_latency) ->
    let t0 = Engine.now net.Topo.engine in
    let reliable = flow.Ipcp.qos.Rina_core.Qos.reliable in
    (* Reliable flows are window-paced by EFCP; best-effort flows are
       paced at 60% of the link rate so queue overflow does not mask
       the loss sweep. *)
    if reliable then
      Workload.bulk ~send:flow.Ipcp.send ~now:t0 ~count:sdu_count ~size:sdu_size
    else begin
      let rate = 6_000_000. in
      let span = float_of_int (8 * sdu_count * sdu_size) /. rate in
      Workload.cbr net.Topo.engine ~send:flow.Ipcp.send ~rate ~size:sdu_size
        ~until:(t0 +. (span *. 0.9999)) ()
    end;
    Topo.wait net.Topo.engine 60.;
    let t1 = sink.Workload.last_arrival in
    let goodput = Workload.goodput sink ~t0 ~t1 in
    Table.add_rowf table "%.0f%% | %s | %.1f ms | %d/%d | %.2f Mb/s | %.1f ms"
      loss_pct qos_name (1000. *. alloc_latency) sink.Workload.count sdu_count
      (goodput /. 1e6)
      (1000. *. Rina_util.Stats.median sink.Workload.received)

let run () =
  let table =
    Table.create ~title:"F1: two hosts, one DIF (Fig. 1) — bulk 300x1200B over 10 Mb/s link"
      ~columns:[ "loss"; "qos"; "alloc"; "delivered"; "goodput"; "sdu p50" ]
  in
  List.iter
    (fun loss_pct ->
      one_case table ~loss_pct ~qos_id:Rina_core.Qos.reliable.Rina_core.Qos.id
        ~qos_name:"reliable";
      one_case table ~loss_pct ~qos_id:Rina_core.Qos.best_effort.Rina_core.Qos.id
        ~qos_name:"best-effort")
    [ 0.; 2.; 5.; 10. ];
  Table.print table
