(* A1 — ablation: how much do the management-plane robustness
   mechanisms matter?

   The DIF's management traffic (hellos, enrollment, LSA floods,
   directory sync) is unreliable by design; three mechanisms keep the
   layer convergent when management PDUs are lost:

     refresh   periodic re-flood of own LSA + directory (anti-entropy)
     sync      full database exchange when an adjacency forms

   This ablation builds a 4-node line whose links lose 15% of frames
   and measures, over 8 seeds: did the DIF converge within 60 s, how
   long did convergence take, and did a subsequent flow allocation
   succeed — with the refresh mechanism on (default policy) and off
   (refresh_ticks = 0).  (The sync mechanism cannot be disabled by
   policy; its effect is visible in how much worse refresh-off already
   is.) *)

module Engine = Rina_sim.Engine
module Table = Rina_util.Table
module Topo = Rina_exp.Topo
module Scenario = Rina_exp.Scenario

let trial ~refresh_on ~seed =
  let policy =
    if refresh_on then Rina_core.Policy.default
    else
      {
        Rina_core.Policy.default with
        Rina_core.Policy.routing =
          { Rina_core.Policy.default_routing with Rina_core.Policy.refresh_ticks = 0 };
      }
  in
  let net =
    Topo.line ~seed ~policy ~loss:(Rina_sim.Loss.Bernoulli 0.15) ~n:4 ()
  in
  let converged =
    Array.for_all Rina_core.Ipcp.is_enrolled net.Topo.nodes
    && Array.for_all (fun m -> Rina_core.Ipcp.lsdb_size m = 4) net.Topo.nodes
  in
  let t_converged = Engine.now net.Topo.engine in
  let alloc_ok =
    match Scenario.open_flow net ~src:0 ~dst:3 ~qos_id:1 () with
    | Ok _ -> true
    | Error _ -> false
  in
  (converged, t_converged, alloc_ok)

let row table ~refresh_on =
  let seeds = [ 101; 202; 303; 404; 505; 606; 707; 808 ] in
  let results = List.map (fun seed -> trial ~refresh_on ~seed) seeds in
  let n = List.length results in
  let conv = List.filter (fun (c, _, _) -> c) results in
  let allocs = List.filter (fun (_, _, a) -> a) results in
  let mean_t =
    match conv with
    | [] -> nan
    | _ ->
      List.fold_left (fun acc (_, t, _) -> acc +. t) 0. conv
      /. float_of_int (List.length conv)
  in
  Table.add_rowf table "%s | %d/%d | %s | %d/%d"
    (if refresh_on then "refresh on (default)" else "refresh off (ablated)")
    (List.length conv) n
    (if Float.is_nan mean_t then "-" else Printf.sprintf "%.1f s" mean_t)
    (List.length allocs) n

let run () =
  let table =
    Table.create
      ~title:
        "A1 (ablation): management-plane anti-entropy — 4-node line, 15% frame loss, 8 seeds"
      ~columns:[ "configuration"; "converged <=60s"; "mean time"; "flow alloc ok" ]
  in
  row table ~refresh_on:true;
  row table ~refresh_on:false;
  Table.print table
