(* F2 — Figure 2: two IPC layers through a dedicated relay system.

   The honest version of the figure: two hosts and a router, a
   link-level (shim-wrapped) DIF per physical link, and a higher-level
   host-to-host DIF whose three members ride flows of the link DIFs
   (Dif.stack_connect — the recursion).  The router's higher-level IPC
   process performs relaying-and-multiplexing between its two (N-1)
   ports.  We verify end-to-end delivery through the relay and compare
   SDU latency against the direct two-host case (the relay adds one
   store-and-forward hop at each level). *)

module Engine = Rina_sim.Engine
module Ipcp = Rina_core.Ipcp
module Dif = Rina_core.Dif
module Shim = Rina_core.Shim
module Link = Rina_sim.Link
module Table = Rina_util.Table
module Topo = Rina_exp.Topo
module Workload = Rina_exp.Workload

let sdu_count = 200

let sdu_size = 1000

(* Build Fig. 2 exactly: link DIFs "left"/"right" over the two wires,
   and the host-to-host DIF stacked on flows of those DIFs. *)
let build_stacked () =
  let engine = Engine.create () in
  let rng = Rina_util.Prng.create 23 in
  let link1 = Link.create engine rng ~bit_rate:10_000_000. ~delay:0.005 () in
  let link2 = Link.create engine rng ~bit_rate:10_000_000. ~delay:0.005 () in
  let left = Dif.create engine "left-link" in
  let l_h1 = Dif.add_member left ~name:"l-h1" () in
  let l_r = Dif.add_member left ~name:"l-r" () in
  Dif.connect left l_h1 l_r
    ( Shim.wrap ~dif:"left-link" (Link.endpoint_a link1),
      Shim.wrap ~dif:"left-link" (Link.endpoint_b link1) );
  let right = Dif.create engine "right-link" in
  let r_r = Dif.add_member right ~name:"r-r" () in
  let r_h2 = Dif.add_member right ~name:"r-h2" () in
  Dif.connect right r_r r_h2
    ( Shim.wrap ~dif:"right-link" (Link.endpoint_a link2),
      Shim.wrap ~dif:"right-link" (Link.endpoint_b link2) );
  Dif.run_until_converged left ();
  Dif.run_until_converged right ();
  (* Host-to-host DIF: members on host1, router, host2. *)
  let top = Dif.create engine "host-to-host" in
  let t_h1 = Dif.add_member top ~name:"t-h1" () in
  let t_r = Dif.add_member top ~name:"t-r" () in
  let t_h2 = Dif.add_member top ~name:"t-h2" () in
  Dif.stack_connect ~lower_a:l_h1 ~lower_b:l_r ~upper_a:t_h1 ~upper_b:t_r ();
  Dif.stack_connect ~lower_a:r_r ~lower_b:r_h2 ~upper_a:t_r ~upper_b:t_h2 ();
  Dif.run_until_converged top ~max_time:60. ();
  (engine, top, t_h1, t_r, t_h2)

let measure_stacked () =
  let engine, _top, t_h1, t_r, t_h2 = build_stacked () in
  let sink = Workload.sink () in
  let dst_app = Rina_core.Types.apn "printer" in
  Ipcp.register_app t_h2 dst_app ~on_flow:(fun flow ->
      flow.Ipcp.set_on_receive (fun sdu ->
          Workload.on_sdu sink ~now:(Engine.now engine) sdu));
  let src_app = Rina_core.Types.apn "scanner" in
  Ipcp.register_app t_h1 src_app ~on_flow:(fun _ -> ());
  let result = ref None in
  Ipcp.allocate_flow t_h1 ~src:src_app ~dst:dst_app ~qos_id:1 ~on_result:(fun r ->
      result := Some r);
  let deadline = Engine.now engine +. 30. in
  while !result = None && Engine.now engine < deadline do
    Engine.run ~until:(Engine.now engine +. 0.05) engine
  done;
  match !result with
  | Some (Ok flow) ->
    let t0 = Engine.now engine in
    Workload.bulk ~send:flow.Ipcp.send ~now:t0 ~count:sdu_count ~size:sdu_size;
    Engine.run ~until:(Engine.now engine +. 30.) engine;
    let relayed =
      Rina_util.Metrics.get (Ipcp.rmt_metrics t_r) "relayed"
    in
    Some (sink, t0, relayed, Ipcp.is_enrolled t_r)
  | Some (Error _) | None -> None

let measure_direct () =
  let net = Topo.line ~seed:23 ~bit_rate:10_000_000. ~delay:0.005 ~n:2 () in
  let sink = Workload.sink () in
  match Rina_exp.Scenario.open_flow net ~src:0 ~dst:1 ~qos_id:1 ~sink () with
  | Error _ -> None
  | Ok (flow, _) ->
    let t0 = Engine.now net.Topo.engine in
    Workload.bulk ~send:flow.Ipcp.send ~now:t0 ~count:sdu_count ~size:sdu_size;
    Topo.wait net.Topo.engine 30.;
    Some (sink, t0)

let run () =
  let table =
    Table.create
      ~title:
        "F2: relay through two stacked IPC layers (Fig. 2) — 200x1000B, 10 Mb/s links"
      ~columns:[ "configuration"; "delivered"; "sdu p50"; "goodput"; "relayed PDUs" ]
  in
  (match measure_direct () with
   | Some (sink, t0) ->
     Table.add_rowf table "direct (1 link, 1 DIF) | %d/%d | %.2f ms | %.2f Mb/s | 0"
       sink.Workload.count sdu_count
       (1000. *. Rina_util.Stats.median sink.Workload.received)
       (Workload.goodput sink ~t0 ~t1:sink.Workload.last_arrival /. 1e6)
   | None -> Table.add_rowf table "direct | FAILED | - | - | -");
  (match measure_stacked () with
   | Some (sink, t0, relayed, router_enrolled) ->
     Table.add_rowf table
       "via router (2 link DIFs + host DIF) | %d/%d | %.2f ms | %.2f Mb/s | %d%s"
       sink.Workload.count sdu_count
       (1000. *. Rina_util.Stats.median sink.Workload.received)
       (Workload.goodput sink ~t0 ~t1:sink.Workload.last_arrival /. 1e6)
       relayed
       (if router_enrolled then "" else " (router not enrolled!)")
   | None -> Table.add_rowf table "via router | FAILED | - | - | -");
  Table.print table
