(* C4 — §8: "no more protocols to design, only policies to specify".

   One transfer scenario (300 x 1200 B reliable bulk over a 10 Mb/s,
   20 ms, 2%-loss link), five transports — every one obtained from the
   SAME mechanism code by feeding a different declarative spec through
   Policy_lang.  The spec text in the first column is literally what
   runs. *)

module Engine = Rina_sim.Engine
module Ipcp = Rina_core.Ipcp
module Table = Rina_util.Table
module Topo = Rina_exp.Topo
module Scenario = Rina_exp.Scenario
module Workload = Rina_exp.Workload

let sdu_count = 300

let sdu_size = 1200

let specs =
  [
    ("stop-and-wait", "[efcp]\nwindow = 1");
    ("go-back-N, w=32", "[efcp]\nrtx = gbn\nwindow = 32");
    ("selective repeat (default)", "");
    ("selective + delayed acks", "[efcp]\nack_delay = 0.02");
    ("selective, no congestion ctl", "[efcp]\ncc = off");
  ]

let run_spec table (label, spec) =
  match Rina_core.Policy_lang.parse spec with
  | Error e -> Table.add_rowf table "%s | BAD SPEC: %s | - | - | -" label e
  | Ok policy -> (
    let net =
      Topo.line ~seed:67 ~policy ~bit_rate:10_000_000. ~delay:0.010
        ~loss:(Rina_sim.Loss.Bernoulli 0.02) ~n:2 ()
    in
    let sink = Workload.sink () in
    match Scenario.open_flow net ~src:0 ~dst:1 ~qos_id:1 ~sink () with
    | Error e -> Table.add_rowf table "%s | ALLOC FAILED: %s | - | - | -" label e
    | Ok (flow, _) ->
      let t0 = Engine.now net.Topo.engine in
      Workload.bulk ~send:flow.Ipcp.send ~now:t0 ~count:sdu_count ~size:sdu_size;
      Topo.wait net.Topo.engine 120.;
      let m = flow.Ipcp.flow_metrics () in
      Table.add_rowf table "%s | %d/%d | %.2f Mb/s | %d | %d" label
        sink.Workload.count sdu_count
        (Workload.goodput sink ~t0 ~t1:sink.Workload.last_arrival /. 1e6)
        (Rina_util.Metrics.get m "pdus_rtx")
        (Rina_util.Metrics.get m "acks_rcvd"))

let run () =
  let table =
    Table.create
      ~title:
        "C4: declarative transport policies (§8) — same mechanism, different specs; 300x1200B, 10 Mb/s, 20 ms, 2% loss"
      ~columns:[ "policy spec"; "delivered"; "goodput"; "rtx"; "acks" ]
  in
  List.iter (run_spec table) specs;
  Table.print table
