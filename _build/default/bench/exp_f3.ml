(* F3 — Figure 3: repeating DIFs tailored to a wireless segment.

   Path: H1 --wire-- R1 ==wireless(bursty)== R2 --wire-- H2.
   Link DIFs cover each segment; a host-to-host DIF is stacked over
   flows of the three link DIFs.  The experiment flips exactly one
   policy: the QoS of the (N-1) flow that the host DIF rides across
   the *wireless* link DIF —

     end-to-end only : best-effort across the wireless DIF, so losses
                       are repaired solely by the host DIF's EFCP over
                       the full path RTT;
     scoped repair   : reliable across the wireless DIF, so its EFCP
                       repairs losses over the one-hop loop (the
                       paper's "policies appropriate to that range").

   Sweeping the burst-loss severity shows the scoped configuration
   sustaining goodput where end-to-end control collapses — the basis
   of claim 5 (operating subnetworks at high utilisation). *)

module Engine = Rina_sim.Engine
module Ipcp = Rina_core.Ipcp
module Dif = Rina_core.Dif
module Shim = Rina_core.Shim
module Link = Rina_sim.Link
module Loss = Rina_sim.Loss
module Table = Rina_util.Table
module Workload = Rina_exp.Workload

let sdu_count = 250

let sdu_size = 1200

let build ~wireless_loss ~scoped =
  let engine = Engine.create () in
  let rng = Rina_util.Prng.create 31 in
  (* Long wired backhaul on both sides (40 ms each) versus a 1 ms
     wireless hop: the end-to-end control loop is ~80x longer than the
     wireless loop, which is the regime Fig. 3 describes. *)
  let wire1 = Link.create engine rng ~bit_rate:50_000_000. ~delay:0.040 () in
  let wifi = Link.create engine rng ~bit_rate:10_000_000. ~delay:0.001 ~loss:wireless_loss () in
  let wire2 = Link.create engine rng ~bit_rate:50_000_000. ~delay:0.040 () in
  let link_dif ?policy name link =
    let dif = Dif.create engine ?policy name in
    let a = Dif.add_member dif ~name:(name ^ "-a") () in
    let b = Dif.add_member dif ~name:(name ^ "-b") () in
    Dif.connect dif a b
      (Shim.wrap ~dif:name (Link.endpoint_a link), Shim.wrap ~dif:name (Link.endpoint_b link));
    Dif.run_until_converged dif ();
    (a, b)
  in
  (* The wireless DIF's policies are tuned to its 2 ms loop: tight
     retransmission timers and link-layer-style persistence (it never
     declares the flow dead; carrier loss is the upper DIF's concern). *)
  let wifi_policy =
    let d = Rina_core.Policy.default in
    {
      d with
      Rina_core.Policy.efcp =
        {
          d.Rina_core.Policy.efcp with
          Rina_core.Policy.init_rto = 0.05;
          min_rto = 0.004;
          max_rtx = 100_000;
        };
    }
  in
  let w1a, w1b = link_dif "seg1" wire1 in
  let wfa, wfb = link_dif ~policy:wifi_policy "wifi" wifi in
  let w2a, w2b = link_dif "seg2" wire2 in
  let top = Dif.create engine "host-to-host" in
  let h1 = Dif.add_member top ~name:"h1" () in
  let r1 = Dif.add_member top ~name:"r1" () in
  let r2 = Dif.add_member top ~name:"r2" () in
  let h2 = Dif.add_member top ~name:"h2" () in
  let wifi_qos =
    if scoped then Rina_core.Qos.reliable.Rina_core.Qos.id
    else Rina_core.Qos.best_effort.Rina_core.Qos.id
  in
  Dif.stack_connect ~lower_a:w1a ~lower_b:w1b ~upper_a:h1 ~upper_b:r1 ();
  Dif.stack_connect ~lower_a:wfa ~lower_b:wfb ~upper_a:r1 ~upper_b:r2
    ~qos_id:wifi_qos ();
  Dif.stack_connect ~lower_a:w2a ~lower_b:w2b ~upper_a:r2 ~upper_b:h2 ();
  Dif.run_until_converged top ~max_time:90. ();
  (engine, h1, h2, wfa)

let measure ~wireless_loss ~scoped =
  let engine, h1, h2, wifi_a = build ~wireless_loss ~scoped in
  let sink = Workload.sink () in
  let dst = Rina_core.Types.apn "file-server" in
  Ipcp.register_app h2 dst ~on_flow:(fun flow ->
      flow.Ipcp.set_on_receive (fun sdu ->
          Workload.on_sdu sink ~now:(Engine.now engine) sdu));
  let src = Rina_core.Types.apn "file-client" in
  Ipcp.register_app h1 src ~on_flow:(fun _ -> ());
  let result = ref None in
  Ipcp.allocate_flow h1 ~src ~dst ~qos_id:1 ~on_result:(fun r -> result := Some r);
  let deadline = Engine.now engine +. 30. in
  while !result = None && Engine.now engine < deadline do
    Engine.run ~until:(Engine.now engine +. 0.05) engine
  done;
  match !result with
  | Some (Ok flow) ->
    let t0 = Engine.now engine in
    Workload.bulk ~send:flow.Ipcp.send ~now:t0 ~count:sdu_count ~size:sdu_size;
    Engine.run ~until:(t0 +. 120.) engine;
    let e2e_rtx = Rina_util.Metrics.get (flow.Ipcp.flow_metrics ()) "pdus_rtx" in
    (* Retransmissions performed inside the wireless DIF show up on the
       wifi members' flows; count PDUs its RMT carried beyond the
       minimum as local repair effort. *)
    let wifi_carried = Rina_util.Metrics.get (Ipcp.rmt_metrics wifi_a) "sent" in
    Some (sink, t0, e2e_rtx, wifi_carried)
  | Some (Error _) | None -> None

let loss_cases =
  [
    ("light (2% burst)", Loss.Gilbert_elliott
       { p_good_to_bad = 0.01; p_bad_to_good = 0.3; loss_good = 0.002; loss_bad = 0.3 });
    ("moderate (8% burst)", Loss.Gilbert_elliott
       { p_good_to_bad = 0.03; p_bad_to_good = 0.2; loss_good = 0.005; loss_bad = 0.5 });
    ("heavy (20% burst)", Loss.Gilbert_elliott
       { p_good_to_bad = 0.08; p_bad_to_good = 0.15; loss_good = 0.01; loss_bad = 0.6 });
  ]

let run () =
  let table =
    Table.create
      ~title:
        "F3: DIF tailored to the wireless segment (Fig. 3) — 250x1200B through bursty wifi"
      ~columns:
        [ "wireless loss"; "error control"; "delivered"; "goodput"; "e2e rtx"; "sdu p99" ]
  in
  List.iter
    (fun (label, loss) ->
      List.iter
        (fun scoped ->
          let mode = if scoped then "scoped (wifi DIF)" else "end-to-end only" in
          match measure ~wireless_loss:loss ~scoped with
          | Some (sink, t0, e2e_rtx, _) ->
            Table.add_rowf table "%s | %s | %d/%d | %.2f Mb/s | %d | %.0f ms" label
              mode sink.Workload.count sdu_count
              (Workload.goodput sink ~t0 ~t1:sink.Workload.last_arrival /. 1e6)
              e2e_rtx
              (1000. *. Rina_util.Stats.percentile sink.Workload.received 99.)
          | None -> Table.add_rowf table "%s | %s | FAILED | - | - | -" label mode)
        [ false; true ])
    loss_cases;
  Table.print table
