(* C1 — §6.5 scalability: routing state and update traffic vs network
   size, for a flat DIF, a recursive two-level arrangement of DIFs,
   and the distance-vector baseline.

   The claim: with the repeating structure, per-node routing state is
   bounded by the scope a node actually participates in (its cluster,
   plus the backbone for border members), instead of growing with the
   whole network, and update traffic is confined the same way. *)

module Engine = Rina_sim.Engine
module Ipcp = Rina_core.Ipcp
module Dif = Rina_core.Dif
module Link = Rina_sim.Link
module Table = Rina_util.Table
module Topo = Rina_exp.Topo
module Scenario = Rina_exp.Scenario

(* Flat: one DIF over a random graph of n members. *)
let flat n =
  let net = Topo.random_graph ~seed:(100 + n) ~n ~degree:3 () in
  let states =
    Array.to_list (Array.map (fun m -> Ipcp.lsdb_size m) net.Topo.nodes)
  in
  let avg = float_of_int (List.fold_left ( + ) 0 states) /. float_of_int n in
  let mx = List.fold_left max 0 states in
  let msgs = Scenario.sum_metric net "lsa_tx" in
  (avg, mx, msgs)

(* Recursive: k clusters of c members each (lines), plus a backbone
   DIF joining one border member per cluster over inter-cluster links. *)
let recursive ~clusters ~cluster_size =
  let engine = Engine.create () in
  let rng = Rina_util.Prng.create 77 in
  let mk_link () = Link.create engine rng ~bit_rate:10_000_000. ~delay:0.002 () in
  let cluster_difs =
    List.init clusters (fun ci ->
        let dif = Dif.create engine (Printf.sprintf "cluster-%d" ci) in
        let members =
          List.init cluster_size (fun i ->
              Dif.add_member dif ~name:(Printf.sprintf "c%d-n%d" ci i) ())
        in
        List.iteri
          (fun i m ->
            if i > 0 then begin
              let link = mk_link () in
              Dif.connect dif (List.nth members (i - 1)) m
                (Link.endpoint_a link, Link.endpoint_b link)
            end)
          members;
        Dif.run_until_converged dif ();
        (dif, members))
    |> Array.of_list
  in
  (* Backbone DIF over the cluster borders (member 0 of each cluster's
     node also hosts a backbone IPC process; inter-cluster wires). *)
  let backbone = Dif.create engine "backbone" in
  let borders =
    Array.mapi
      (fun ci _ -> Dif.add_member backbone ~name:(Printf.sprintf "gw-%d" ci) ())
      cluster_difs
  in
  Array.iteri
    (fun ci _ ->
      if ci > 0 then begin
        let link = mk_link () in
        Dif.connect backbone borders.(ci - 1) borders.(ci)
          (Link.endpoint_a link, Link.endpoint_b link)
      end)
    cluster_difs;
  Dif.run_until_converged backbone ();
  (* Per-node routing state: every node holds its cluster's LSDB; the
     border node additionally holds the backbone's. *)
  let states = ref [] in
  Array.iteri
    (fun ci (_, members) ->
      List.iteri
        (fun i m ->
          let s = Ipcp.lsdb_size m in
          let s = if i = 0 then s + Ipcp.lsdb_size borders.(ci) else s in
          states := s :: !states)
        members)
    cluster_difs;
  let n = clusters * cluster_size in
  let avg = float_of_int (List.fold_left ( + ) 0 !states) /. float_of_int n in
  let mx = List.fold_left max 0 !states in
  let msgs =
    Array.fold_left
      (fun acc (dif, _) ->
        List.fold_left
          (fun acc m -> acc + Rina_util.Metrics.get (Ipcp.metrics m) "lsa_tx")
          acc (Dif.members dif))
      0 cluster_difs
    + List.fold_left
        (fun acc m -> acc + Rina_util.Metrics.get (Ipcp.metrics m) "lsa_tx")
        0 (Dif.members backbone)
  in
  (avg, mx, msgs)

(* Baseline: DV routers in a line, one prefix per link. *)
let dv n =
  let net = Topo.ip_line ~seed:(100 + n) ~routers:n () in
  let tables =
    Array.to_list (Array.map (fun r -> Tcpip.Node.table_size r) net.Topo.routers)
  in
  let avg =
    float_of_int (List.fold_left ( + ) 0 tables) /. float_of_int (max 1 n)
  in
  let mx = List.fold_left max 0 tables in
  (avg, mx)

let run () =
  let table =
    Table.create
      ~title:
        "C1: routing state & update traffic vs size (§6.5) — LSDB entries / routes per node"
      ~columns:[ "n"; "architecture"; "avg state"; "max state"; "routing msgs" ]
  in
  List.iter
    (fun n ->
      let avg, mx, msgs = flat n in
      Table.add_rowf table "%d | RINA flat (1 DIF) | %.1f | %d | %d" n avg mx msgs;
      let clusters = int_of_float (sqrt (float_of_int n)) in
      let cluster_size = n / clusters in
      let avg, mx, msgs = recursive ~clusters ~cluster_size in
      Table.add_rowf table "%d | RINA recursive (%dx%d + backbone) | %.1f | %d | %d"
        (clusters * cluster_size) clusters cluster_size avg mx msgs;
      let avg, mx = dv n in
      Table.add_rowf table "%d | IP distance vector (line) | %.1f | %d | (periodic)" n
        avg mx)
    [ 9; 16; 36; 64 ];
  Table.print table
