(* Recursive internet (§4): the same IPC layer repeating over
   different scopes until it is tailored to the media.

   Run with:  dune exec examples/recursive_internet.exe

   Three ranks of DIFs:

     rank 1  per-link DIFs, one per wire (tailored to the medium)
     rank 2  two regional DIFs (an access ISP and a transit ISP),
             each riding flows of its link DIFs
     rank 3  one "internet" DIF joining hosts across both regions,
             riding flows of the regional DIFs

   An application flow then crosses all of it, and the program prints
   the layer inventory: every DIF, its scope (member count) and each
   member's address — visible only *inside* its own DIF. *)

module Engine = Rina_sim.Engine
module Link = Rina_sim.Link
module Dif = Rina_core.Dif
module Ipcp = Rina_core.Ipcp
module Shim = Rina_core.Shim
module Types = Rina_core.Types

let engine = Engine.create ()

let rng = Rina_util.Prng.create 11

(* A rank-1 DIF over one wire. *)
let link_dif name =
  let link = Link.create engine rng ~bit_rate:50_000_000. ~delay:0.002 () in
  let dif = Dif.create engine name in
  let a = Dif.add_member dif ~name:(name ^ ".a") () in
  let b = Dif.add_member dif ~name:(name ^ ".b") () in
  Dif.connect dif a b
    ( Shim.wrap ~dif:name (Link.endpoint_a link),
      Shim.wrap ~dif:name (Link.endpoint_b link) );
  Dif.run_until_converged dif ();
  (dif, a, b)

let () =
  (* Physical layout:
       host1 -w1- acc1 -w2- acc2 -w3- tr1 -w4- tr2 -w5- host2
     access ISP covers {host1, acc1, acc2}; transit covers
     {acc2, tr1, tr2, host2} (acc2 is the border). *)
  let w1, w1a, w1b = link_dif "wire1" in
  let w2, w2a, w2b = link_dif "wire2" in
  let w3, w3a, w3b = link_dif "wire3" in
  let w4, w4a, w4b = link_dif "wire4" in
  let w5, w5a, w5b = link_dif "wire5" in

  (* Rank 2: the access ISP's DIF over wires 1-2. *)
  let access = Dif.create engine "access-isp" in
  let a_host1 = Dif.add_member access ~name:"acc.host1" () in
  let a_r1 = Dif.add_member access ~name:"acc.r1" () in
  let a_r2 = Dif.add_member access ~name:"acc.r2" () in
  Dif.stack_connect ~lower_a:w1a ~lower_b:w1b ~upper_a:a_host1 ~upper_b:a_r1 ();
  Dif.stack_connect ~lower_a:w2a ~lower_b:w2b ~upper_a:a_r1 ~upper_b:a_r2 ();
  Dif.run_until_converged access ~max_time:60. ();

  (* Rank 2: the transit ISP's DIF over wires 3-5. *)
  let transit = Dif.create engine "transit-isp" in
  let t_r2 = Dif.add_member transit ~name:"tr.r2" () in
  let t_r3 = Dif.add_member transit ~name:"tr.r3" () in
  let t_r4 = Dif.add_member transit ~name:"tr.r4" () in
  let t_host2 = Dif.add_member transit ~name:"tr.host2" () in
  Dif.stack_connect ~lower_a:w3a ~lower_b:w3b ~upper_a:t_r2 ~upper_b:t_r3 ();
  Dif.stack_connect ~lower_a:w4a ~lower_b:w4b ~upper_a:t_r3 ~upper_b:t_r4 ();
  Dif.stack_connect ~lower_a:w5a ~lower_b:w5b ~upper_a:t_r4 ~upper_b:t_host2 ();
  Dif.run_until_converged transit ~max_time:60. ();

  (* Rank 3: the internet DIF joins the two hosts and the border
     router; its (N-1) channels are flows of the regional DIFs. *)
  let internet = Dif.create engine "internet" in
  let i_host1 = Dif.add_member internet ~name:"inet.host1" () in
  let i_border = Dif.add_member internet ~name:"inet.border" () in
  let i_host2 = Dif.add_member internet ~name:"inet.host2" () in
  Dif.stack_connect ~lower_a:a_host1 ~lower_b:a_r2 ~upper_a:i_host1 ~upper_b:i_border ();
  Dif.stack_connect ~lower_a:t_r2 ~lower_b:t_host2 ~upper_a:i_border ~upper_b:i_host2 ();
  Dif.run_until_converged internet ~max_time:90. ();

  (* The layer inventory. *)
  Printf.printf "layer inventory at t=%.1fs\n" (Engine.now engine);
  List.iter
    (fun (rank, dif) ->
      Printf.printf "  rank %d  %-12s scope=%d members:" rank (Dif.name dif)
        (List.length (Dif.members dif));
      List.iter
        (fun m ->
          Printf.printf " %s@%d" (Types.apn_to_string (Ipcp.name m)) (Ipcp.address m))
        (Dif.members dif);
      print_newline ())
    [
      (1, w1); (1, w2); (1, w3); (1, w4); (1, w5);
      (2, access); (2, transit);
      (3, internet);
    ];

  (* An application conversation across the whole stack. *)
  Ipcp.register_app i_host2 (Types.apn "far-app") ~on_flow:(fun flow ->
      flow.Ipcp.set_on_receive (fun sdu ->
          Printf.printf "[far-app] t=%.3f got %S across 3 ranks of IPC\n"
            (Engine.now engine) (Bytes.to_string sdu);
          flow.Ipcp.send (Bytes.of_string "ack from the other side")));
  Ipcp.register_app i_host1 (Types.apn "near-app") ~on_flow:(fun _ -> ());
  Ipcp.allocate_flow i_host1 ~src:(Types.apn "near-app") ~dst:(Types.apn "far-app")
    ~qos_id:1
    ~on_result:(function
      | Error e -> Printf.printf "[near-app] failed: %s\n" e
      | Ok flow ->
        flow.Ipcp.set_on_receive (fun sdu ->
            Printf.printf "[near-app] t=%.3f reply: %S\n" (Engine.now engine)
              (Bytes.to_string sdu));
        flow.Ipcp.send (Bytes.of_string "hello through the recursion"));
  Engine.run ~until:(Engine.now engine +. 10.) engine;
  Printf.printf "done at t=%.1fs\n" (Engine.now engine)
