examples/mobile_video.mli:
