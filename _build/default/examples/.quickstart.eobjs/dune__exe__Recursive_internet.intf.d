examples/recursive_internet.mli:
