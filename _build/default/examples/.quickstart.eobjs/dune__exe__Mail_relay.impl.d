examples/mail_relay.ml: Bytes Printf Queue Rina_core Rina_sim Rina_util String
