examples/marketplace.mli:
