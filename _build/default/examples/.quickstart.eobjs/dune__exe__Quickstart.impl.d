examples/quickstart.ml: Bytes List Printf Rina_core Rina_sim Rina_util String
