examples/recursive_internet.ml: Bytes List Printf Rina_core Rina_sim Rina_util
