examples/mobile_video.ml: Array List Printf Rina_core Rina_exp Rina_sim Rina_util String
