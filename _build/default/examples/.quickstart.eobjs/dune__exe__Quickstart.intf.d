examples/quickstart.mli:
