examples/marketplace.ml: Printf Rina_core Rina_exp Rina_sim Rina_util
