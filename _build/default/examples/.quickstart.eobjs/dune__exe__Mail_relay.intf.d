examples/mail_relay.mli:
