(* Mail relay (§1 feature 6): "the distributed IPC facility ... can be
   configured to provide not only the fundamental services of the
   traditional networking lower layers but also the services of
   application relaying (e.g., mail distribution)".

   Run with:  dune exec examples/mail_relay.exe

   The mail system here IS a DIF: mail transfer agents are its
   application processes, named like any other.  Alice hands a message
   to her local MTA addressed to "mta-bob"; Bob's MTA is offline (his
   link is down), so the relay stores the message and watches the
   distributed directory; the moment Bob's MTA registers, the mail is
   forwarded.  No well-known port 25, no MX records, no middlebox: the
   relaying application is just a member of the facility, and
   store-and-forward falls out of naming + enrollment. *)

module Engine = Rina_sim.Engine
module Link = Rina_sim.Link
module Dif = Rina_core.Dif
module Ipcp = Rina_core.Ipcp
module Types = Rina_core.Types

let () =
  let engine = Engine.create () in
  let rng = Rina_util.Prng.create 77 in
  let dif = Dif.create engine "mail-net" in
  let n_alice = Dif.add_member dif ~name:"alice-host" () in
  let n_relay = Dif.add_member dif ~name:"relay-host" () in
  let n_bob = Dif.add_member dif ~name:"bob-host" () in
  let wire a b =
    let l = Link.create engine rng ~bit_rate:10_000_000. ~delay:0.004 () in
    Dif.connect dif a b (Link.endpoint_a l, Link.endpoint_b l);
    l
  in
  let _ = wire n_alice n_relay in
  let bob_link = wire n_relay n_bob in
  Link.set_up bob_link false;  (* Bob is offline for now. *)
  Dif.run_until_converged dif ~max_time:10. ();
  Printf.printf "t=%.1f mail-net up; bob-host offline\n" (Engine.now engine);

  (* The relay MTA: accepts mail, queues what it cannot deliver, and
     watches the directory for the destination MTA to appear. *)
  let queue : (string * string) Queue.t = Queue.create () in
  let deliver_to_mta dst_mta message =
    Ipcp.allocate_flow n_relay ~src:(Types.apn "mta-relay") ~dst:(Types.apn dst_mta)
      ~qos_id:1
      ~on_result:(function
        | Ok flow ->
          flow.Ipcp.send (Bytes.of_string message);
          Printf.printf "t=%.1f [relay] forwarded to %s\n" (Engine.now engine) dst_mta
        | Error e -> Printf.printf "t=%.1f [relay] forward failed: %s\n" (Engine.now engine) e)
  in
  let rec drain () =
    (* Retry queued mail whenever the destination's name resolves. *)
    let still_waiting = Queue.create () in
    Queue.iter
      (fun (dst, msg) ->
        if Ipcp.resolve_name n_relay (Types.apn dst) <> None then deliver_to_mta dst msg
        else Queue.push (dst, msg) still_waiting)
      queue;
    Queue.clear queue;
    Queue.transfer still_waiting queue;
    if Engine.now engine < 60. then ignore (Engine.schedule engine ~delay:1.0 drain)
  in
  drain ();
  Ipcp.register_app n_relay (Types.apn "mta-relay") ~on_flow:(fun flow ->
      flow.Ipcp.set_on_receive (fun sdu ->
          (* Envelope: "dst-mta|body". *)
          let text = Bytes.to_string sdu in
          match String.index_opt text '|' with
          | Some i ->
            let dst = String.sub text 0 i in
            let body = String.sub text (i + 1) (String.length text - i - 1) in
            if Ipcp.resolve_name n_relay (Types.apn dst) <> None then
              deliver_to_mta dst body
            else begin
              Printf.printf "t=%.1f [relay] %s not reachable; queued %S\n"
                (Engine.now engine) dst body;
              Queue.push (dst, body) queue
            end
          | None -> ()));

  (* Bob's MTA (will come online later). *)
  Ipcp.register_app n_bob (Types.apn "mta-bob") ~on_flow:(fun flow ->
      flow.Ipcp.set_on_receive (fun sdu ->
          Printf.printf "t=%.1f [bob] mail received: %S\n" (Engine.now engine)
            (Bytes.to_string sdu)));

  (* Alice sends while Bob is offline. *)
  Ipcp.register_app n_alice (Types.apn "mua-alice") ~on_flow:(fun _ -> ());
  Ipcp.allocate_flow n_alice ~src:(Types.apn "mua-alice") ~dst:(Types.apn "mta-relay")
    ~qos_id:1
    ~on_result:(function
      | Ok flow ->
        Printf.printf "t=%.1f [alice] submitting mail for bob\n" (Engine.now engine);
        flow.Ipcp.send (Bytes.of_string "mta-bob|Dear Bob, networking is IPC. -- Alice")
      | Error e -> Printf.printf "[alice] submission failed: %s\n" e);
  Engine.run ~until:(Engine.now engine +. 6.) engine;

  (* Bob's host attaches: enrollment + directory registration happen on
     their own, and the relay's watcher forwards the queued mail. *)
  Printf.printf "t=%.1f bob-host comes online\n" (Engine.now engine);
  Link.set_up bob_link true;
  Engine.run ~until:(Engine.now engine +. 15.) engine;
  Printf.printf "done.\n"
