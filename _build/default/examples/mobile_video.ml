(* Mobile video (§6.4): a mobile host streams while driving past three
   base stations on a shared wireless medium.

   Run with:  dune exec examples/mobile_video.exe

   The base stations and the mobile are members of one DIF.  Radio
   channels exist between the mobile and every base station but only
   carry frames while in range (the medium models range and
   distance-dependent loss).  Movement changes which channels have
   carrier; the DIF treats each change as multihoming — enrollment
   happened once, the address never changes, and the stream survives
   every handoff. *)

module Engine = Rina_sim.Engine
module Medium = Rina_sim.Medium
module Link = Rina_sim.Link
module Dif = Rina_core.Dif
module Ipcp = Rina_core.Ipcp
module Types = Rina_core.Types
module Workload = Rina_exp.Workload

let () =
  let engine = Engine.create () in
  let rng = Rina_util.Prng.create 42 in
  let medium = Medium.create engine rng ~bit_rate:20_000_000. ~base_delay:0.001 in
  (* Base stations at x = 0, 150, 300 with 100-unit radio range; the
     mobile starts under BS1 and drives right at 10 units/s. *)
  let bs_pos = [| 0.; 150.; 300. |] in
  let bs_nodes = Array.map (fun x -> Medium.add_node medium ~x ~y:0.) bs_pos in
  let mobile_node = Medium.add_node medium ~x:0. ~y:0. in

  let dif = Dif.create engine "metro" in
  let server = Dif.add_member dif ~name:"video-server" () in
  let hub = Dif.add_member dif ~name:"hub" () in
  let stations =
    Array.init 3 (fun i -> Dif.add_member dif ~name:(Printf.sprintf "bs%d" (i + 1)) ())
  in
  let mobile = Dif.add_member dif ~name:"mobile" () in
  (* Wired backhaul: server - hub - each base station. *)
  let wire a b =
    let l = Link.create engine rng ~bit_rate:100_000_000. ~delay:0.002 () in
    Dif.connect dif a b (Link.endpoint_a l, Link.endpoint_b l)
  in
  wire server hub;
  Array.iter (fun bs -> wire hub bs) stations;
  (* Radio channels mobile <-> each base station (both directions of
     each pair registered on the medium). *)
  Array.iteri
    (fun i bs ->
      let down =
        Medium.channel medium ~local:bs_nodes.(i) ~remote:mobile_node ~range:100. ()
      in
      let up =
        Medium.channel medium ~local:mobile_node ~remote:bs_nodes.(i) ~range:100. ()
      in
      Dif.connect dif bs mobile (down, up))
    stations;
  Dif.run_until_converged dif ();
  Printf.printf "metro DIF converged at t=%.1fs; mobile address stays %d throughout\n"
    (Engine.now engine) (Ipcp.address mobile);

  (* The stream: the player on the mobile requests the video by name;
     the server pushes 1.5 Mb/s for 35 virtual seconds. *)
  let sink = Workload.sink () in
  Ipcp.register_app server (Types.apn "video") ~on_flow:(fun flow ->
      Workload.cbr engine ~send:flow.Ipcp.send ~rate:1_500_000. ~size:1000
        ~until:(Engine.now engine +. 35.) ());
  Ipcp.register_app mobile (Types.apn "player") ~on_flow:(fun _ -> ());
  Ipcp.allocate_flow mobile ~src:(Types.apn "player") ~dst:(Types.apn "video")
    ~qos_id:0
    ~on_result:(function
      | Error e -> Printf.printf "stream failed: %s\n" e
      | Ok flow ->
        flow.Ipcp.set_on_receive (fun sdu ->
            Workload.on_sdu sink ~now:(Engine.now engine) sdu));

  (* The drive: 10 units/s to the right, past all three cells, with a
     status line every 5 s of virtual time. *)
  let speed = 10.0 in
  let rec drive () =
    let x, _ = Medium.position mobile_node in
    Medium.set_position medium mobile_node ~x:(x +. (speed *. 0.5)) ~y:0.;
    if x < 330. then ignore (Engine.schedule engine ~delay:0.5 drive)
  in
  drive ();
  let last_count = ref 0 in
  let rec status () =
    let x, _ = Medium.position mobile_node in
    let serving =
      List.filter_map
        (fun (i, peers) ->
          ignore peers;
          if Medium.distance mobile_node bs_nodes.(i) <= 100. then
            Some (Printf.sprintf "bs%d" (i + 1))
          else None)
        [ (0, ()); (1, ()); (2, ()) ]
    in
    Printf.printf
      "t=%5.1f  x=%5.0f  coverage={%s}  received %5d SDUs (+%d)  addr=%d\n"
      (Engine.now engine) x
      (String.concat "," serving)
      sink.Workload.count
      (sink.Workload.count - !last_count)
      (Ipcp.address mobile);
    last_count := sink.Workload.count;
    if Engine.now engine < 38. then ignore (Engine.schedule engine ~delay:5. status)
  in
  ignore (Engine.schedule engine ~delay:1. status);
  Engine.run ~until:(Engine.now engine +. 40.) engine;
  let sent = sink.Workload.seen_max_seq + 1 in
  Printf.printf
    "drive complete: %d/%d SDUs delivered across two handoffs; the mobile's\n\
     address and the flow survived every cell change (mobility is dynamic\n\
     multihoming, Fig. 5).\n"
    sink.Workload.count sent
