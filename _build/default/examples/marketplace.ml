(* Marketplace (§6.6/§6.7): competing IPC-service providers and
   "boutique e-malls".

   Run with:  dune exec examples/marketplace.exe

   Two provider DIFs span the same pair of cities over their own
   infrastructure:

     budget-net : best-effort only, FIFO scheduling, open enrollment
                  (the "mega-mall" — today's Internet as one private
                  DIF with weak joining requirements);
     premium-net: priority scheduling, password-protected enrollment,
                  and an ACL that only serves paying customers
                  (a boutique e-mall selling IPC with QoS).

   A video service registers in both.  A free rider gets best-effort
   service from budget-net, is refused enrollment by premium-net, and
   a paying customer gets the low-latency cube from premium-net while
   both networks carry identical background load. *)

module Engine = Rina_sim.Engine
module Link = Rina_sim.Link
module Dif = Rina_core.Dif
module Ipcp = Rina_core.Ipcp
module Types = Rina_core.Types
module Policy = Rina_core.Policy
module Workload = Rina_exp.Workload

let build_provider ?credentials engine rng ~name ~policy =
  (* Each provider owns a 2-router backbone between the cities. *)
  let dif = Dif.create engine ~policy name in
  let west = Dif.add_member dif ?credentials ~name:(name ^ "-west") () in
  let east = Dif.add_member dif ?credentials ~name:(name ^ "-east") () in
  let link = Link.create engine rng ~bit_rate:10_000_000. ~delay:0.01 () in
  Dif.connect dif ~rate_a:9_500_000. ~rate_b:9_500_000. west east
    (Link.endpoint_a link, Link.endpoint_b link);
  Dif.run_until_converged dif ();
  (dif, west, east)

let () =
  let engine = Engine.create () in
  let rng = Rina_util.Prng.create 5 in
  let budget_policy = Policy.default in
  let premium_policy =
    {
      Policy.default with
      Policy.scheduler = Policy.Priority_queueing;
      Policy.auth = Policy.Auth_password "gold-card";
      Policy.acl =
        Policy.Allow_pairs
          [ ("paying-customer", "video-service"); ("bg-src", "bg-sink") ];
    }
  in
  let _, b_west, b_east = build_provider engine rng ~name:"budget-net" ~policy:budget_policy in
  let _, p_west, p_east =
    build_provider ~credentials:"gold-card" engine rng ~name:"premium-net"
      ~policy:premium_policy
  in
  Printf.printf "two provider DIFs up at t=%.1fs\n" (Engine.now engine);

  (* The video service sells through both providers. *)
  let serve dif_label node =
    Ipcp.register_app node (Types.apn "video-service") ~on_flow:(fun flow ->
        Printf.printf "[video@%s] streaming to %s\n" dif_label
          (Types.apn_to_string flow.Ipcp.remote_app);
        (* 2 Mb/s stream for 10 s of virtual time. *)
        Workload.cbr engine ~send:flow.Ipcp.send ~rate:2_000_000. ~size:1000
          ~until:(Engine.now engine +. 10.) ())
  in
  serve "budget" b_east;
  serve "premium" p_east;

  (* Background load saturating both backbones. *)
  let load dif_label node peer =
    Ipcp.register_app peer (Types.apn "bg-sink") ~on_flow:(fun flow ->
        flow.Ipcp.set_on_receive (fun _ -> ()));
    Ipcp.register_app node (Types.apn "bg-src") ~on_flow:(fun _ -> ());
    Ipcp.allocate_flow node ~src:(Types.apn "bg-src") ~dst:(Types.apn "bg-sink")
      ~qos_id:0
      ~on_result:(function
        | Ok flow ->
          Workload.cbr engine ~send:flow.Ipcp.send ~rate:11_000_000. ~size:1000
            ~until:(Engine.now engine +. 12.) ()
        | Error e -> Printf.printf "[bg@%s] %s\n" dif_label e)
  in
  (* Background shares the video's direction (east -> west) so it
     contends for the same bottleneck queue. *)
  load "budget" b_east b_west;
  load "premium" p_east p_west;

  (* Customers. *)
  let watch label node qos_id =
    let sink = Workload.sink () in
    Ipcp.register_app node (Types.apn label) ~on_flow:(fun _ -> ());
    Ipcp.allocate_flow node ~src:(Types.apn label) ~dst:(Types.apn "video-service")
      ~qos_id
      ~on_result:(function
        | Ok flow ->
          flow.Ipcp.set_on_receive (fun sdu ->
              Workload.on_sdu sink ~now:(Engine.now engine) sdu)
        | Error e -> Printf.printf "[%s] allocation refused: %s\n" label e);
    sink
  in
  let free_rider = watch "free-rider" b_west 0 in
  let paying = watch "paying-customer" p_west Rina_core.Qos.low_latency.Rina_core.Qos.id in

  (* The free rider also tries the premium network: enrollment of its
     own IPC process fails (wrong credentials), and even a flow
     request from inside is stopped by the ACL. *)
  Ipcp.register_app p_west (Types.apn "free-rider") ~on_flow:(fun _ -> ());
  Ipcp.allocate_flow p_west ~src:(Types.apn "free-rider")
    ~dst:(Types.apn "video-service") ~qos_id:2
    ~on_result:(function
      | Ok _ -> Printf.printf "[free-rider] unexpectedly admitted to premium!\n"
      | Error e -> Printf.printf "[free-rider] premium-net says: %s\n" e);

  Engine.run ~until:(Engine.now engine +. 15.) engine;
  let report label (sink : Workload.sink) =
    let sent = sink.Workload.seen_max_seq + 1 in
    Printf.printf "[%s] received %d/%d SDUs, p99 latency %.1f ms\n" label
      sink.Workload.count (max sent sink.Workload.count)
      (1000. *. Rina_util.Stats.percentile sink.Workload.received 99.)
  in
  report "free-rider  on budget-net (best effort)" free_rider;
  report "paying user on premium-net (low latency)" paying;
  Printf.printf
    "the same IPC mechanisms, different policies: that is the market (§6.6).\n"
