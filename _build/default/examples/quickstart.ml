(* Quickstart: the two-host scenario of the paper's Figure 1.

   Run with:  dune exec examples/quickstart.exe

   Two hosts share one physical link.  A DIF (distributed IPC
   facility) is created over it; an "echo-server" application
   registers *by name*; a client allocates a flow to that name —
   neither application ever sees an address or a well-known port —
   and exchanges a few SDUs. *)

module Engine = Rina_sim.Engine
module Link = Rina_sim.Link
module Dif = Rina_core.Dif
module Ipcp = Rina_core.Ipcp
module Types = Rina_core.Types

let () =
  (* 1. A simulated world: a virtual clock and one 10 Mb/s, 5 ms link. *)
  let engine = Engine.create () in
  let rng = Rina_util.Prng.create 2024 in
  let link = Link.create engine rng ~bit_rate:10_000_000. ~delay:0.005 () in

  (* 2. One DIF spanning the two hosts.  The first member bootstraps
     the facility; the second joins by enrollment (authentication +
     address assignment) as soon as the link connects them. *)
  let dif = Dif.create engine "home-net" in
  let host_a = Dif.add_member dif ~name:"host-a" () in
  let host_b = Dif.add_member dif ~name:"host-b" () in
  Dif.connect dif host_a host_b (Link.endpoint_a link, Link.endpoint_b link);
  Dif.run_until_converged dif ();
  Printf.printf "DIF %S converged at t=%.2fs: host-a enrolled=%b, host-b enrolled=%b\n"
    (Dif.name dif) (Engine.now engine)
    (Ipcp.is_enrolled host_a) (Ipcp.is_enrolled host_b);

  (* 3. The server application: reachable by NAME.  Its name is
     location independent — nothing here says where it runs. *)
  let server_name = Types.apn "echo-server" in
  Ipcp.register_app host_b server_name ~on_flow:(fun flow ->
      Printf.printf "[server] flow from %s on port %d (qos %s)\n"
        (Types.apn_to_string flow.Ipcp.remote_app)
        flow.Ipcp.port_id flow.Ipcp.qos.Rina_core.Qos.name;
      flow.Ipcp.set_on_receive (fun sdu ->
          let text = Bytes.to_string sdu in
          Printf.printf "[server] t=%.3f received %S\n" (Engine.now engine) text;
          flow.Ipcp.send (Bytes.of_string (String.uppercase_ascii text))));

  (* 4. The client allocates a flow to the server's name with the
     reliable QoS cube and sends three SDUs. *)
  let client_name = Types.apn "client" in
  Ipcp.register_app host_a client_name ~on_flow:(fun _ -> ());
  Ipcp.allocate_flow host_a ~src:client_name ~dst:server_name
    ~qos_id:Rina_core.Qos.reliable.Rina_core.Qos.id
    ~on_result:(function
      | Error e -> Printf.printf "[client] allocation failed: %s\n" e
      | Ok flow ->
        Printf.printf "[client] t=%.3f flow allocated, local port %d\n"
          (Engine.now engine) flow.Ipcp.port_id;
        flow.Ipcp.set_on_receive (fun sdu ->
            Printf.printf "[client] t=%.3f echo: %S\n" (Engine.now engine)
              (Bytes.to_string sdu));
        List.iter
          (fun msg -> flow.Ipcp.send (Bytes.of_string msg))
          [ "hello"; "networking is ipc"; "goodbye" ]);

  (* 5. Let virtual time run. *)
  Engine.run ~until:(Engine.now engine +. 5.) engine;
  Printf.printf "done at t=%.2fs\n" (Engine.now engine)
