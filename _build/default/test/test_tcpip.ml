(* Tests for the TCP/IP baseline stack. *)

module Engine = Rina_sim.Engine
module Link = Rina_sim.Link
module Ip = Tcpip.Ip
module Lpm = Tcpip.Lpm
module Packet = Tcpip.Packet
module Node = Tcpip.Node
module Dv = Tcpip.Dv
module Tcp = Tcpip.Tcp
module Udp = Tcpip.Udp
module Dns = Tcpip.Dns
module Nat = Tcpip.Nat
module Mobile_ip = Tcpip.Mobile_ip
module Prng = Rina_util.Prng
module Metrics = Rina_util.Metrics

let check = Alcotest.check

let wait engine d = Engine.run ~until:(Engine.now engine +. d) engine

(* ---------- Ip ---------- *)

let test_ip_parse_format () =
  let a = Ip.addr_of_string "192.168.1.200" in
  check Alcotest.string "roundtrip" "192.168.1.200" (Ip.string_of_addr a);
  check Alcotest.int "octets" a (Ip.addr_of_octets 192 168 1 200);
  Alcotest.check_raises "garbage" (Invalid_argument "Ip.addr_of_string: not.an.ip")
    (fun () -> ignore (Ip.addr_of_string "not.an.ip"));
  Alcotest.check_raises "octet range"
    (Invalid_argument "Ip.addr_of_octets: octet out of range") (fun () ->
      ignore (Ip.addr_of_octets 300 0 0 1))

let test_ip_prefix () =
  let p = Ip.prefix_of_string "10.20.0.0/16" in
  Alcotest.(check bool) "inside" true (Ip.matches p (Ip.addr_of_string "10.20.99.1"));
  Alcotest.(check bool) "outside" false (Ip.matches p (Ip.addr_of_string "10.21.0.1"));
  (* Host bits are masked off. *)
  let q = Ip.prefix (Ip.addr_of_string "10.20.30.40") 16 in
  check Alcotest.int "masked" p.Ip.network q.Ip.network;
  let any = Ip.prefix 0 0 in
  Alcotest.(check bool) "default matches all" true
    (Ip.matches any (Ip.addr_of_string "1.2.3.4"))

(* ---------- Lpm ---------- *)

let test_lpm_longest_match () =
  let t = Lpm.create () in
  Lpm.insert t (Ip.prefix_of_string "10.0.0.0/8") "big";
  Lpm.insert t (Ip.prefix_of_string "10.1.0.0/16") "mid";
  Lpm.insert t (Ip.prefix_of_string "10.1.2.0/24") "small";
  check Alcotest.(option string) "most specific" (Some "small")
    (Lpm.lookup t (Ip.addr_of_string "10.1.2.3"));
  check Alcotest.(option string) "mid" (Some "mid")
    (Lpm.lookup t (Ip.addr_of_string "10.1.9.9"));
  check Alcotest.(option string) "big" (Some "big")
    (Lpm.lookup t (Ip.addr_of_string "10.200.0.1"));
  check Alcotest.(option string) "miss" None (Lpm.lookup t (Ip.addr_of_string "11.0.0.1"));
  check Alcotest.int "size" 3 (Lpm.size t);
  Alcotest.(check bool) "remove" true (Lpm.remove t (Ip.prefix_of_string "10.1.0.0/16"));
  check Alcotest.(option string) "falls back after removal" (Some "big")
    (Lpm.lookup t (Ip.addr_of_string "10.1.9.9"))

let test_lpm_default_route () =
  let t = Lpm.create () in
  Lpm.insert t (Ip.prefix 0 0) "default";
  Lpm.insert t (Ip.prefix_of_string "172.16.0.0/12") "private";
  check Alcotest.(option string) "default" (Some "default")
    (Lpm.lookup t (Ip.addr_of_string "8.8.8.8"));
  check Alcotest.(option string) "specific" (Some "private")
    (Lpm.lookup t (Ip.addr_of_string "172.20.1.1"))

let prop_lpm_matches_reference =
  QCheck.Test.make ~name:"lpm agrees with linear scan" ~count:100
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 30) (pair (int_range 0 0xFFFFFF) (int_range 4 28)))
        (int_range 0 0xFFFFFFF))
    (fun (routes, probe) ->
      let t = Lpm.create () in
      let routes =
        List.mapi (fun i (net, len) -> (Ip.prefix (net * 251) len, i)) routes
      in
      List.iter (fun (p, v) -> Lpm.insert t p v) routes;
      let addr = probe * 17 land 0xFFFFFFFF in
      let reference =
        List.fold_left
          (fun best (p, v) ->
            if Ip.matches p addr then
              match best with
              | Some (bl, _) when bl >= p.Ip.length -> best
              | _ -> Some (p.Ip.length, v)
            else best)
          None routes
      in
      (* Duplicate prefixes: the last insert wins in both models only
         if we dedup; compare only the matched prefix length. *)
      match (Lpm.lookup_prefix t addr, reference) with
      | None, None -> true
      | Some (p, _), Some (bl, _) -> p.Ip.length = bl
      | _ -> false)

(* ---------- Packet ---------- *)

let test_packet_roundtrips () =
  let ip =
    Packet.make ~src:(Ip.addr_of_string "1.2.3.4") ~dst:(Ip.addr_of_string "5.6.7.8")
      ~proto:Packet.P_udp ~ttl:31 (Bytes.of_string "body")
  in
  (match Packet.decode (Packet.encode ip) with
   | Ok p -> Alcotest.(check bool) "ip roundtrip" true (p = ip)
   | Error e -> Alcotest.fail e);
  let udp = { Packet.Udp.sport = 1000; dport = 53; body = Bytes.of_string "q" } in
  (match Packet.Udp.decode (Packet.Udp.encode udp) with
   | Ok d -> Alcotest.(check bool) "udp roundtrip" true (d = udp)
   | Error e -> Alcotest.fail e);
  let seg =
    {
      Packet.Tcp.sport = 80;
      dport = 49152;
      seq = 7;
      ack_seq = 9;
      flags = { Packet.Tcp.syn = true; ack = true; fin = false; rst = false };
      window = 11;
      body = Bytes.of_string "data";
    }
  in
  match Packet.Tcp.decode (Packet.Tcp.encode seg) with
  | Ok s -> Alcotest.(check bool) "tcp roundtrip" true (s = seg)
  | Error e -> Alcotest.fail e

(* ---------- Node forwarding ---------- *)

let two_hosts_and_router () =
  let engine = Engine.create () in
  let rng = Prng.create 21 in
  let h1 = Node.create engine "h1" in
  let r = Node.create engine ~forwarding:true "r" in
  let h2 = Node.create engine "h2" in
  let l1 = Link.create engine rng ~bit_rate:10_000_000. ~delay:0.001 () in
  let l2 = Link.create engine rng ~bit_rate:10_000_000. ~delay:0.001 () in
  let p1 = Ip.prefix_of_string "10.1.0.0/16" and p2 = Ip.prefix_of_string "10.2.0.0/16" in
  ignore (Node.add_iface h1 (Link.endpoint_a l1) ~addr:(Ip.addr_of_string "10.1.0.1") ~prefix:p1);
  ignore (Node.add_iface r (Link.endpoint_b l1) ~addr:(Ip.addr_of_string "10.1.0.2") ~prefix:p1);
  ignore (Node.add_iface r (Link.endpoint_a l2) ~addr:(Ip.addr_of_string "10.2.0.1") ~prefix:p2);
  ignore (Node.add_iface h2 (Link.endpoint_b l2) ~addr:(Ip.addr_of_string "10.2.0.2") ~prefix:p2);
  ignore (Node.add_static_route h1 (Ip.prefix 0 0) ~if_id:1 ());
  ignore (Node.add_static_route h2 (Ip.prefix 0 0) ~if_id:1 ());
  (engine, h1, r, h2, l1, l2)

let test_node_forwarding_and_ttl () =
  let engine, h1, r, h2, _, _ = two_hosts_and_router () in
  let u2 = Udp.attach h2 in
  let got = ref 0 in
  Udp.listen u2 ~port:7 (fun ~src:_ ~sport:_ _ -> incr got);
  let u1 = Udp.attach h1 in
  Udp.send u1 ~src:(Ip.addr_of_string "10.1.0.1") ~dst:(Ip.addr_of_string "10.2.0.2")
    ~sport:7 ~dport:7 (Bytes.of_string "x");
  wait engine 1.;
  check Alcotest.int "delivered across router" 1 !got;
  check Alcotest.int "router forwarded" 1 (Metrics.get (Node.metrics r) "forwarded");
  (* TTL 1 dies at the router. *)
  Node.send_ip h1
    (Packet.make ~src:(Ip.addr_of_string "10.1.0.1") ~dst:(Ip.addr_of_string "10.2.0.2")
       ~proto:Packet.P_udp ~ttl:1
       (Packet.Udp.encode { Packet.Udp.sport = 7; dport = 7; body = Bytes.empty }));
  wait engine 1.;
  check Alcotest.int "ttl expired" 1 (Metrics.get (Node.metrics r) "ttl_expired");
  check Alcotest.int "not delivered" 1 !got

let test_node_renumber () =
  let engine = Engine.create () in
  ignore engine;
  let n = Node.create engine "n" in
  let chan = Rina_sim.Chan.null () in
  let ifid =
    Node.add_iface n chan ~addr:(Ip.addr_of_string "10.1.0.5")
      ~prefix:(Ip.prefix_of_string "10.1.0.0/16")
  in
  Alcotest.(check bool) "old local" true (Node.is_local n (Ip.addr_of_string "10.1.0.5"));
  Node.set_iface_addr n ifid ~addr:(Ip.addr_of_string "10.9.0.5")
    ~prefix:(Ip.prefix_of_string "10.9.0.0/16");
  Alcotest.(check bool) "old gone" false (Node.is_local n (Ip.addr_of_string "10.1.0.5"));
  Alcotest.(check bool) "new local" true (Node.is_local n (Ip.addr_of_string "10.9.0.5"));
  check Alcotest.int "one connected route" 1 (Node.table_size n)

(* ---------- Dv ---------- *)

let test_dv_convergence_and_expiry () =
  let net = Rina_exp.Topo.ip_line ~routers:3 ~dv_period:1.0 () in
  let engine = net.Rina_exp.Topo.ip_engine in
  Array.iter
    (fun r ->
      (* 4 links in the topology: every router must know all 4 prefixes. *)
      Alcotest.(check bool)
        (Printf.sprintf "%s table complete" (Node.node_name r))
        true
        (Node.table_size r >= 4))
    net.Rina_exp.Topo.routers;
  (* Silently kill the first link (hostA's access): the far router's
     learned route to subnet 1 must expire after 3.5 periods. *)
  let far = net.Rina_exp.Topo.routers.(2) in
  let has_route_to_s1 () =
    List.exists
      (fun ((p : Ip.prefix), _) -> p = Ip.prefix_of_string "10.1.0.0/16")
      (Node.routes far)
  in
  Alcotest.(check bool) "far router knows subnet 1" true (has_route_to_s1 ());
  Link.set_blackhole net.Rina_exp.Topo.ip_links.(0) true;
  (* Not just the link: the advertising router still advertises the
     connected prefix, so also isolate it. *)
  Link.set_blackhole net.Rina_exp.Topo.ip_links.(1) true;
  wait engine 10.;
  Alcotest.(check bool) "stale route expired" false (has_route_to_s1 ())

let test_dv_carrier_triggers_update () =
  let net = Rina_exp.Topo.ip_line ~routers:2 ~dv_period:2.0 () in
  let engine = net.Rina_exp.Topo.ip_engine in
  let r0 = net.Rina_exp.Topo.routers.(0) in
  let before = Node.table_size r0 in
  Alcotest.(check bool) "has routes" true (before >= 3);
  (* Down the inter-router link: learned routes via it are withdrawn
     immediately. *)
  Link.set_up net.Rina_exp.Topo.ip_links.(1) false;
  wait engine 0.5;
  Alcotest.(check bool) "withdrawn on carrier loss" true (Node.table_size r0 < before)

(* ---------- Tcp ---------- *)

let tcp_pair ?(loss = Rina_sim.Loss.No_loss) () =
  let engine = Engine.create () in
  let rng = Prng.create 23 in
  let h1 = Node.create engine "h1" in
  let h2 = Node.create engine "h2" in
  let l = Link.create engine rng ~bit_rate:10_000_000. ~delay:0.002 ~loss () in
  let p = Ip.prefix_of_string "10.1.0.0/16" in
  ignore (Node.add_iface h1 (Link.endpoint_a l) ~addr:(Ip.addr_of_string "10.1.0.1") ~prefix:p);
  ignore (Node.add_iface h2 (Link.endpoint_b l) ~addr:(Ip.addr_of_string "10.1.0.2") ~prefix:p);
  (engine, h1, h2, l)

let test_tcp_connect_transfer_close () =
  let engine, h1, h2, _ = tcp_pair () in
  let t1 = Tcp.attach h1 and t2 = Tcp.attach h2 in
  let received = ref [] and closed = ref false in
  Tcp.listen t2 ~port:80 ~on_accept:(fun conn ->
      Tcp.set_on_receive conn (fun b -> received := Bytes.to_string b :: !received);
      Tcp.set_on_close conn (fun () -> closed := true));
  let client = ref None in
  Tcp.connect t1 ~src:(Ip.addr_of_string "10.1.0.1") ~dst:(Ip.addr_of_string "10.1.0.2")
    ~dport:80
    ~on_result:(function Ok c -> client := Some c | Error e -> Alcotest.fail e);
  wait engine 1.;
  (match !client with
   | Some c ->
     Alcotest.(check bool) "established" true (Tcp.state c = Tcp.Established);
     Tcp.send c (Bytes.of_string "GET /");
     Tcp.send c (Bytes.of_string "again");
     wait engine 1.;
     check Alcotest.(list string) "data in order" [ "GET /"; "again" ]
       (List.rev !received);
     Tcp.close c;
     wait engine 5.;
     Alcotest.(check bool) "peer saw close" true !closed
   | None -> Alcotest.fail "no connection")

let test_tcp_refused_on_closed_port () =
  let engine, h1, h2, _ = tcp_pair () in
  let t1 = Tcp.attach h1 and _t2 = Tcp.attach h2 in
  let result = ref None in
  Tcp.connect t1 ~src:(Ip.addr_of_string "10.1.0.1") ~dst:(Ip.addr_of_string "10.1.0.2")
    ~dport:81
    ~on_result:(fun r -> result := Some r);
  wait engine 2.;
  match !result with
  | Some (Error e) -> check Alcotest.string "refused" "connection refused" e
  | Some (Ok _) -> Alcotest.fail "connected to closed port"
  | None -> Alcotest.fail "no answer"

let test_tcp_retransmission_under_loss () =
  let engine, h1, h2, _ = tcp_pair ~loss:(Rina_sim.Loss.Bernoulli 0.1) () in
  let t1 = Tcp.attach h1 and t2 = Tcp.attach h2 in
  let received = ref 0 in
  Tcp.listen t2 ~port:80 ~on_accept:(fun conn ->
      Tcp.set_on_receive conn (fun _ -> incr received));
  Tcp.connect t1 ~src:(Ip.addr_of_string "10.1.0.1") ~dst:(Ip.addr_of_string "10.1.0.2")
    ~dport:80
    ~on_result:(function
      | Ok c ->
        for i = 1 to 50 do
          ignore i;
          Tcp.send c (Bytes.make 400 'd')
        done
      | Error e -> Alcotest.fail e);
  wait engine 60.;
  check Alcotest.int "all segments delivered despite loss" 50 !received

let test_tcp_breaks_when_path_dies () =
  let engine, h1, h2, l = tcp_pair () in
  let t1 = Tcp.attach h1 and t2 = Tcp.attach h2 in
  Tcp.listen t2 ~port:80 ~on_accept:(fun _ -> ());
  let error = ref None in
  Tcp.connect t1 ~src:(Ip.addr_of_string "10.1.0.1") ~dst:(Ip.addr_of_string "10.1.0.2")
    ~dport:80
    ~on_result:(function
      | Ok c ->
        Tcp.set_on_error c (fun e -> error := Some e);
        ignore
          (Engine.schedule engine ~delay:0.5 (fun () ->
               Link.set_up l false;
               Tcp.send c (Bytes.of_string "into the void")))
      | Error e -> Alcotest.fail e);
  wait engine 60.;
  match !error with
  | Some e -> check Alcotest.string "aborted" "max retransmissions exceeded" e
  | None -> Alcotest.fail "connection survived a dead path?"

(* ---------- Udp / Dns ---------- *)

let test_tcp_concurrent_connections () =
  (* One listener, two simultaneous clients from the same host:
     connections are demultiplexed by the full 4-tuple. *)
  let engine, h1, h2, _ = tcp_pair () in
  let t1 = Tcp.attach h1 and t2 = Tcp.attach h2 in
  let per_conn : (int, int ref) Hashtbl.t = Hashtbl.create 4 in
  Tcp.listen t2 ~port:80 ~on_accept:(fun conn ->
      let _, rport = Tcp.remote_endpoint conn in
      let counter = ref 0 in
      Hashtbl.replace per_conn rport counter;
      Tcp.set_on_receive conn (fun _ -> incr counter));
  let send_on = ref [] in
  for _ = 1 to 2 do
    Tcp.connect t1 ~src:(Ip.addr_of_string "10.1.0.1")
      ~dst:(Ip.addr_of_string "10.1.0.2") ~dport:80
      ~on_result:(function
        | Ok c -> send_on := c :: !send_on
        | Error e -> Alcotest.fail e)
  done;
  wait engine 1.;
  check Alcotest.int "two established" 2 (List.length !send_on);
  List.iteri
    (fun i c ->
      for _ = 0 to i do
        Tcp.send c (Bytes.of_string "x")
      done)
    !send_on;
  wait engine 2.;
  let counts =
    Hashtbl.fold (fun _ r acc -> !r :: acc) per_conn [] |> List.sort compare
  in
  check Alcotest.(list int) "segments demuxed per connection" [ 1; 2 ] counts

let test_udp_port_unreachable () =
  let engine, h1, h2, _ = tcp_pair () in
  let u1 = Udp.attach h1 and u2 = Udp.attach h2 in
  Udp.send u1 ~src:(Ip.addr_of_string "10.1.0.1") ~dst:(Ip.addr_of_string "10.1.0.2")
    ~sport:5 ~dport:9999 (Bytes.of_string "anyone there?");
  wait engine 1.;
  check Alcotest.int "port unreachable" 1 (Metrics.get (Udp.metrics u2) "port_unreachable");
  check Alcotest.(list int) "no open ports" [] (Udp.open_ports u2)

let test_dns_resolve_and_miss () =
  let engine, h1, h2, _ = tcp_pair () in
  let u1 = Udp.attach h1 and u2 = Udp.attach h2 in
  let server_addr = Ip.addr_of_string "10.1.0.2" in
  let srv = Dns.server u2 ~local:server_addr in
  Dns.register srv "www.example" (Ip.addr_of_string "10.1.0.99");
  let results = ref [] in
  Dns.resolve u1 engine ~local:(Ip.addr_of_string "10.1.0.1") ~server:server_addr
    "www.example" ~on_result:(fun r -> results := ("hit", r) :: !results);
  Dns.resolve u1 engine ~local:(Ip.addr_of_string "10.1.0.1") ~server:server_addr
    "no.such.name" ~on_result:(fun r -> results := ("miss", r) :: !results);
  wait engine 6.;
  check Alcotest.int "both answered" 2 (List.length !results);
  List.iter
    (fun (tag, r) ->
      match (tag, r) with
      | "hit", Ok a -> check Alcotest.string "addr" "10.1.0.99" (Ip.string_of_addr a)
      | "miss", Error _ -> ()
      | "hit", Error e -> Alcotest.fail ("hit failed: " ^ e)
      | _, Ok _ -> Alcotest.fail "miss resolved"
      | _ -> Alcotest.fail "unexpected")
    !results;
  check Alcotest.int "served" 2 (Dns.queries_served srv)

(* ---------- Nat ---------- *)

let test_nat_translation () =
  (* h1 (inside 10.1/16) -- r(NAT) -- h2 (outside 10.2/16); public
     address 10.3.0.1 routed via r. *)
  let engine, h1, r, h2, _, _ = two_hosts_and_router () in
  let public = Ip.addr_of_string "10.3.0.1" in
  let nat = Nat.install r ~inside:(Ip.prefix_of_string "10.1.0.0/16") ~public in
  (* h2 must route the public address back towards r. *)
  ignore
    (Node.add_static_route h2 (Ip.prefix public 32) ~if_id:1 ());
  let u1 = Udp.attach h1 and u2 = Udp.attach h2 in
  let seen_src = ref None in
  let echoed = ref 0 in
  Udp.listen u2 ~port:70 (fun ~src ~sport body ->
      seen_src := Some (src, sport);
      Udp.send u2 ~src:(Ip.addr_of_string "10.2.0.2") ~dst:src ~sport:70 ~dport:sport body);
  Udp.listen u1 ~port:555 (fun ~src:_ ~sport:_ _ -> incr echoed);
  Udp.send u1 ~src:(Ip.addr_of_string "10.1.0.1") ~dst:(Ip.addr_of_string "10.2.0.2")
    ~sport:555 ~dport:70 (Bytes.of_string "through the nat");
  wait engine 2.;
  (match !seen_src with
   | Some (src, sport) ->
     check Alcotest.string "source rewritten to public" "10.3.0.1" (Ip.string_of_addr src);
     Alcotest.(check bool) "port rewritten" true (sport <> 555)
   | None -> Alcotest.fail "nothing crossed the NAT");
  check Alcotest.int "reply translated back" 1 !echoed;
  check Alcotest.int "one mapping" 1 (Nat.translations nat);
  (* Unsolicited inbound to the public address is dropped. *)
  Udp.send u2 ~src:(Ip.addr_of_string "10.2.0.2") ~dst:public ~sport:1 ~dport:44444
    (Bytes.of_string "cold call");
  wait engine 1.;
  check Alcotest.int "unsolicited dropped" 1 (Nat.dropped_unsolicited nat)

(* ---------- Mobile IP ---------- *)

let test_mobile_ip_tunnel () =
  let engine = Engine.create () in
  let rng = Prng.create 29 in
  (* corr -- r0 -- rh(HA) -- m(home); r0 -- rf -- m(foreign, initially down) *)
  let corr = Node.create engine "corr" in
  let r0 = Node.create engine ~forwarding:true "r0" in
  let rh = Node.create engine ~forwarding:true "rh" in
  let rf = Node.create engine ~forwarding:true "rf" in
  let m = Node.create engine "m" in
  let wire ?(up = true) no a b =
    let l = Link.create engine rng ~bit_rate:10_000_000. ~delay:0.001 () in
    if not up then Link.set_up l false;
    let subnet = Ip.addr_of_octets 10 no 0 0 in
    let prefix = Ip.prefix subnet 16 in
    ignore (Node.add_iface a (Link.endpoint_a l) ~addr:(subnet lor 1) ~prefix);
    ignore (Node.add_iface b (Link.endpoint_b l) ~addr:(subnet lor 2) ~prefix);
    (l, subnet)
  in
  let _ = wire 1 corr r0 in
  let _ = wire 2 r0 rh in
  let l_home, s_home = wire 3 rh m in
  let _ = wire 4 r0 rf in
  let l_foreign, s_foreign = wire ~up:false 5 rf m in
  ignore (Node.add_static_route corr (Ip.prefix 0 0) ~if_id:1 ());
  ignore (Node.add_static_route m (Ip.prefix 0 0) ~if_id:1 ());
  List.iter (fun r -> ignore (Dv.start r ~period:1.0 ())) [ r0; rh; rf ];
  wait engine 8.;
  let home_addr = s_home lor 2 in
  let care_of = s_foreign lor 2 in
  let u_corr = Udp.attach corr and u_m = Udp.attach m and u_rh = Udp.attach rh in
  let agent = Mobile_ip.home_agent rh u_rh ~local:(Ip.addr_of_octets 10 2 0 2) in
  let mob = Mobile_ip.mobile m u_m ~home_addr in
  let got = ref 0 in
  Udp.listen u_m ~port:6000 (fun ~src:_ ~sport:_ _ -> incr got);
  let ping () =
    Udp.send u_corr ~src:(Ip.addr_of_octets 10 1 0 1) ~dst:home_addr ~sport:6000
      ~dport:6000 (Bytes.of_string "hi")
  in
  ping ();
  wait engine 1.;
  check Alcotest.int "reachable at home" 1 !got;
  (* Move. *)
  Link.set_up l_home false;
  Link.set_up l_foreign true;
  ignore (Node.add_static_route m (Ip.prefix 0 0) ~if_id:2 ());
  let acked = ref false in
  Mobile_ip.register_care_of mob ~home_agent_addr:(Ip.addr_of_octets 10 2 0 2) ~care_of
    ~on_ack:(fun () -> acked := true);
  wait engine 3.;
  Alcotest.(check bool) "registration acked" true !acked;
  check Alcotest.(list (pair int int)) "binding installed" [ (home_addr, care_of) ]
    (Mobile_ip.bindings agent);
  ping ();
  wait engine 2.;
  check Alcotest.int "reachable via tunnel" 2 !got;
  Alcotest.(check bool) "packets were tunnelled" true (Mobile_ip.tunnelled agent >= 1);
  (* Deregister: the home agent stops tunnelling. *)
  Mobile_ip.deregister mob ~home_agent_addr:(Ip.addr_of_octets 10 2 0 2) ~care_of;
  wait engine 3.;
  check Alcotest.(list (pair int int)) "binding removed" [] (Mobile_ip.bindings agent);
  ping ();
  wait engine 2.;
  check Alcotest.int "unreachable after deregistration" 2 !got

let () =
  Alcotest.run "tcpip"
    [
      ( "ip",
        [
          Alcotest.test_case "parse/format" `Quick test_ip_parse_format;
          Alcotest.test_case "prefix" `Quick test_ip_prefix;
        ] );
      ( "lpm",
        [
          Alcotest.test_case "longest match" `Quick test_lpm_longest_match;
          Alcotest.test_case "default route" `Quick test_lpm_default_route;
          QCheck_alcotest.to_alcotest prop_lpm_matches_reference;
        ] );
      ("packet", [ Alcotest.test_case "roundtrips" `Quick test_packet_roundtrips ]);
      ( "node",
        [
          Alcotest.test_case "forwarding and ttl" `Quick test_node_forwarding_and_ttl;
          Alcotest.test_case "renumber" `Quick test_node_renumber;
        ] );
      ( "dv",
        [
          Alcotest.test_case "convergence" `Quick test_dv_convergence_and_expiry;
          Alcotest.test_case "carrier triggered" `Quick test_dv_carrier_triggers_update;
        ] );
      ( "tcp",
        [
          Alcotest.test_case "connect/transfer/close" `Quick test_tcp_connect_transfer_close;
          Alcotest.test_case "refused" `Quick test_tcp_refused_on_closed_port;
          Alcotest.test_case "retransmission" `Quick test_tcp_retransmission_under_loss;
          Alcotest.test_case "path death" `Quick test_tcp_breaks_when_path_dies;
          Alcotest.test_case "concurrent connections" `Quick test_tcp_concurrent_connections;
        ] );
      ( "udp+dns",
        [
          Alcotest.test_case "port unreachable" `Quick test_udp_port_unreachable;
          Alcotest.test_case "dns" `Quick test_dns_resolve_and_miss;
        ] );
      ("nat", [ Alcotest.test_case "translation" `Quick test_nat_translation ]);
      ("mobile-ip", [ Alcotest.test_case "tunnel" `Quick test_mobile_ip_tunnel ]);
    ]
