(* Unit tests for the discrete-event simulator. *)

module Engine = Rina_sim.Engine
module Loss = Rina_sim.Loss
module Chan = Rina_sim.Chan
module Link = Rina_sim.Link
module Medium = Rina_sim.Medium
module Trace = Rina_sim.Trace
module Prng = Rina_util.Prng

let check = Alcotest.check

(* ---------- Engine ---------- *)

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~delay:3. (fun () -> log := 3 :: !log));
  ignore (Engine.schedule e ~delay:1. (fun () -> log := 1 :: !log));
  ignore (Engine.schedule e ~delay:2. (fun () -> log := 2 :: !log));
  Engine.run e;
  check Alcotest.(list int) "timestamp order" [ 1; 2; 3 ] (List.rev !log);
  check (Alcotest.float 1e-9) "clock at last event" 3. (Engine.now e)

let test_engine_fifo_same_time () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule e ~delay:1. (fun () -> log := i :: !log))
  done;
  Engine.run e;
  check Alcotest.(list int) "fifo among equals" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~delay:1. (fun () -> fired := true) in
  Engine.cancel h;
  Engine.run e;
  Alcotest.(check bool) "cancelled" false !fired

let test_engine_run_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.schedule e ~delay:1. (fun () -> incr fired));
  ignore (Engine.schedule e ~delay:5. (fun () -> incr fired));
  Engine.run ~until:2. e;
  check Alcotest.int "only first" 1 !fired;
  check (Alcotest.float 1e-9) "clock at until" 2. (Engine.now e);
  Engine.run ~until:10. e;
  check Alcotest.int "second later" 2 !fired

let test_engine_negative_delay_clamped () =
  let e = Engine.create () in
  let fired = ref false in
  ignore (Engine.schedule e ~delay:(-5.) (fun () -> fired := true));
  Engine.run e;
  Alcotest.(check bool) "fired" true !fired;
  check (Alcotest.float 1e-9) "no time travel" 0. (Engine.now e)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule e ~delay:1. (fun () ->
         log := "outer" :: !log;
         ignore (Engine.schedule e ~delay:1. (fun () -> log := "inner" :: !log))));
  Engine.run e;
  check Alcotest.(list string) "nested" [ "outer"; "inner" ] (List.rev !log);
  check (Alcotest.float 1e-9) "time 2" 2. (Engine.now e)

let test_engine_step () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~delay:1. (fun () -> ()));
  Alcotest.(check bool) "step true" true (Engine.step e);
  Alcotest.(check bool) "step false when drained" false (Engine.step e)

(* ---------- Loss ---------- *)

let test_loss_none_and_extremes () =
  let rng = Prng.create 3 in
  let s = Loss.make_state Loss.No_loss in
  for _ = 1 to 100 do
    Alcotest.(check bool) "no_loss" false (Loss.drops s rng)
  done;
  let s1 = Loss.make_state (Loss.Bernoulli 1.0) in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=1 drops" true (Loss.drops s1 rng)
  done;
  let s0 = Loss.make_state (Loss.Bernoulli 0.0) in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 keeps" false (Loss.drops s0 rng)
  done

let test_loss_bernoulli_rate () =
  let rng = Prng.create 5 in
  let s = Loss.make_state (Loss.Bernoulli 0.3) in
  let drops = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Loss.drops s rng then incr drops
  done;
  let rate = float_of_int !drops /. float_of_int n in
  Alcotest.(check bool) "~30%" true (Float.abs (rate -. 0.3) < 0.02)

let test_loss_gilbert_elliott_average () =
  let rng = Prng.create 7 in
  let spec =
    Loss.Gilbert_elliott
      { p_good_to_bad = 0.1; p_bad_to_good = 0.3; loss_good = 0.0; loss_bad = 0.5 }
  in
  let s = Loss.make_state spec in
  let drops = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Loss.drops s rng then incr drops
  done;
  (* Stationary P(bad) = 0.1/(0.1+0.3) = 0.25; mean loss = 0.125. *)
  let rate = float_of_int !drops /. float_of_int n in
  Alcotest.(check bool) "~12.5%" true (Float.abs (rate -. 0.125) < 0.01)

(* ---------- Chan ---------- *)

let test_chan_pair () =
  let a, b = Chan.pair () in
  let got_b = ref [] and got_a = ref [] in
  b.Chan.set_receiver (fun f -> got_b := Bytes.to_string f :: !got_b);
  a.Chan.set_receiver (fun f -> got_a := Bytes.to_string f :: !got_a);
  a.Chan.send (Bytes.of_string "ping");
  b.Chan.send (Bytes.of_string "pong");
  check Alcotest.(list string) "b received" [ "ping" ] !got_b;
  check Alcotest.(list string) "a received" [ "pong" ] !got_a;
  check Alcotest.int "a tx" 1 (Rina_util.Metrics.get a.Chan.stats "tx");
  check Alcotest.int "a rx" 1 (Rina_util.Metrics.get a.Chan.stats "rx")

(* ---------- Link ---------- *)

let mk_link ?queue_capacity ?loss () =
  let e = Engine.create () in
  let rng = Prng.create 1 in
  let l =
    Link.create e rng ~bit_rate:1_000_000. ~delay:0.01 ?queue_capacity ?loss ()
  in
  (e, l)

let test_link_latency () =
  let e, l = mk_link () in
  let arrival = ref None in
  (Link.endpoint_b l).Chan.set_receiver (fun _ -> arrival := Some (Engine.now e));
  (* 1000 bytes at 1 Mb/s = 8 ms serialisation + 10 ms propagation. *)
  (Link.endpoint_a l).Chan.send (Bytes.create 1000);
  Engine.run e;
  match !arrival with
  | Some t -> check (Alcotest.float 1e-9) "latency" 0.018 t
  | None -> Alcotest.fail "frame lost"

let test_link_serialization_spacing () =
  let e, l = mk_link () in
  let times = ref [] in
  (Link.endpoint_b l).Chan.set_receiver (fun _ -> times := Engine.now e :: !times);
  (Link.endpoint_a l).Chan.send (Bytes.create 1000);
  (Link.endpoint_a l).Chan.send (Bytes.create 1000);
  Engine.run e;
  match List.rev !times with
  | [ t1; t2 ] -> check (Alcotest.float 1e-9) "8ms apart" 0.008 (t2 -. t1)
  | _ -> Alcotest.fail "expected 2 frames"

let test_link_queue_overflow () =
  let e, l = mk_link ~queue_capacity:4 () in
  let received = ref 0 in
  (Link.endpoint_b l).Chan.set_receiver (fun _ -> incr received);
  for _ = 1 to 10 do
    (Link.endpoint_a l).Chan.send (Bytes.create 100)
  done;
  Engine.run e;
  check Alcotest.int "only queue_capacity delivered" 4 !received;
  check Alcotest.int "drops counted" 6
    (Rina_util.Metrics.get (Link.stats_a l) "dropped_queue")

let test_link_down_drops_and_notifies () =
  let e, l = mk_link () in
  let received = ref 0 and carrier = ref [] in
  (Link.endpoint_b l).Chan.set_receiver (fun _ -> incr received);
  (Link.endpoint_a l).Chan.on_carrier (fun up -> carrier := up :: !carrier);
  (Link.endpoint_a l).Chan.send (Bytes.create 100);
  Link.set_up l false;
  Engine.run e;
  check Alcotest.int "in-flight dropped" 0 !received;
  (Link.endpoint_a l).Chan.send (Bytes.create 100);
  Engine.run e;
  check Alcotest.int "down drops" 0 !received;
  Link.set_up l true;
  (Link.endpoint_a l).Chan.send (Bytes.create 100);
  Engine.run e;
  check Alcotest.int "up again" 1 !received;
  check Alcotest.(list bool) "watcher saw down then up" [ false; true ] (List.rev !carrier)

let test_link_blackhole_silent () =
  let e, l = mk_link () in
  let received = ref 0 and carrier_events = ref 0 in
  (Link.endpoint_b l).Chan.set_receiver (fun _ -> incr received);
  (Link.endpoint_a l).Chan.on_carrier (fun _ -> incr carrier_events);
  Link.set_blackhole l true;
  (Link.endpoint_a l).Chan.send (Bytes.create 100);
  Engine.run e;
  check Alcotest.int "swallowed" 0 !received;
  check Alcotest.int "no carrier event" 0 !carrier_events;
  Alcotest.(check bool) "is_up still true" true ((Link.endpoint_a l).Chan.is_up ());
  Link.set_blackhole l false;
  (Link.endpoint_a l).Chan.send (Bytes.create 100);
  Engine.run e;
  check Alcotest.int "healed" 1 !received

let test_link_loss () =
  let e = Engine.create () in
  let rng = Prng.create 1 in
  let l =
    Link.create e rng ~bit_rate:1_000_000_000. ~delay:0.0001 ~queue_capacity:4096
      ~loss:(Loss.Bernoulli 0.5) ()
  in
  let received = ref 0 in
  (Link.endpoint_b l).Chan.set_receiver (fun _ -> incr received);
  for _ = 1 to 2000 do
    (Link.endpoint_a l).Chan.send (Bytes.create 10)
  done;
  Engine.run e;
  Alcotest.(check bool) "~half arrive" true
    (!received > 800 && !received < 1200)

let test_link_directions_independent () =
  let e, l = mk_link () in
  let at_a = ref 0 and at_b = ref 0 in
  (Link.endpoint_a l).Chan.set_receiver (fun _ -> incr at_a);
  (Link.endpoint_b l).Chan.set_receiver (fun _ -> incr at_b);
  (Link.endpoint_a l).Chan.send (Bytes.create 10);
  (Link.endpoint_b l).Chan.send (Bytes.create 10);
  (Link.endpoint_b l).Chan.send (Bytes.create 10);
  Engine.run e;
  check Alcotest.int "a got 2" 2 !at_a;
  check Alcotest.int "b got 1" 1 !at_b

(* ---------- Medium ---------- *)

let test_medium_range_and_movement () =
  let e = Engine.create () in
  let rng = Prng.create 2 in
  let m = Medium.create e rng ~bit_rate:10_000_000. ~base_delay:0.001 in
  let bs = Medium.add_node m ~x:0. ~y:0. in
  let mob = Medium.add_node m ~x:50. ~y:0. in
  check (Alcotest.float 1e-9) "distance" 50. (Medium.distance bs mob);
  let down = Medium.channel m ~local:bs ~remote:mob ~range:100. ~edge_loss:0. () in
  let up = Medium.channel m ~local:mob ~remote:bs ~range:100. ~edge_loss:0. () in
  let got = ref 0 and carrier = ref [] in
  up.Chan.set_receiver (fun _ -> ());
  down.Chan.set_receiver (fun _ -> ());
  (* Receiving side of bs->mob transmissions is the mobile's channel. *)
  up.Chan.set_receiver (fun _ -> incr got);
  down.Chan.on_carrier (fun u -> carrier := u :: !carrier);
  Alcotest.(check bool) "in range" true (down.Chan.is_up ());
  down.Chan.send (Bytes.create 100);
  Engine.run e;
  check Alcotest.int "delivered in range" 1 !got;
  (* Move out of range: carrier watcher fires, frames die. *)
  Medium.set_position m mob ~x:500. ~y:0.;
  Alcotest.(check bool) "out of range" false (down.Chan.is_up ());
  check Alcotest.(list bool) "carrier down event" [ false ] !carrier;
  down.Chan.send (Bytes.create 100);
  Engine.run e;
  check Alcotest.int "not delivered" 1 !got;
  (* Come back. *)
  Medium.set_position m mob ~x:10. ~y:0.;
  check Alcotest.(list bool) "carrier up event" [ true; false ] !carrier;
  down.Chan.send (Bytes.create 100);
  Engine.run e;
  check Alcotest.int "delivered again" 2 !got

let test_medium_edge_loss_grows () =
  let e = Engine.create () in
  let rng = Prng.create 4 in
  let m = Medium.create e rng ~bit_rate:1_000_000_000. ~base_delay:0.00001 in
  let a = Medium.add_node m ~x:0. ~y:0. in
  let b = Medium.add_node m ~x:95. ~y:0. in
  let tx = Medium.channel m ~local:a ~remote:b ~range:100. ~edge_loss:0.5 () in
  let rx = Medium.channel m ~local:b ~remote:a ~range:100. ~edge_loss:0.5 () in
  let got = ref 0 in
  rx.Chan.set_receiver (fun _ -> incr got);
  for _ = 1 to 2000 do
    tx.Chan.send (Bytes.create 10)
  done;
  Engine.run e;
  (* At 95% of range with edge_loss 0.5 the loss is ~0.45. *)
  let rate = 1. -. (float_of_int !got /. 2000.) in
  Alcotest.(check bool) "edge loss ~45%" true (Float.abs (rate -. 0.45) < 0.05)

(* ---------- Trace ---------- *)

let test_trace () =
  let e = Engine.create () in
  let tr = Trace.create e in
  ignore (Engine.schedule e ~delay:1. (fun () -> Trace.record tr ~component:"x" ~event:"tick"));
  ignore (Engine.schedule e ~delay:3. (fun () -> Trace.record tr ~component:"x" ~event:"tick"));
  ignore (Engine.schedule e ~delay:4. (fun () -> Trace.record tr ~component:"y" ~event:"boom"));
  Engine.run e;
  check Alcotest.int "count" 2 (Trace.count tr ~component:"x" ~event:"tick");
  check Alcotest.int "filter" 1 (List.length (Trace.filter tr ~component:"y"));
  match Trace.largest_gap tr ~component:"x" ~event:"tick" with
  | Some (gap, start) ->
    check (Alcotest.float 1e-9) "gap" 2. gap;
    check (Alcotest.float 1e-9) "start" 1. start
  | None -> Alcotest.fail "expected a gap"

let () =
  Alcotest.run "rina_sim"
    [
      ( "engine",
        [
          Alcotest.test_case "ordering" `Quick test_engine_ordering;
          Alcotest.test_case "fifo same time" `Quick test_engine_fifo_same_time;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "run until" `Quick test_engine_run_until;
          Alcotest.test_case "negative delay" `Quick test_engine_negative_delay_clamped;
          Alcotest.test_case "nested" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "step" `Quick test_engine_step;
        ] );
      ( "loss",
        [
          Alcotest.test_case "extremes" `Quick test_loss_none_and_extremes;
          Alcotest.test_case "bernoulli rate" `Quick test_loss_bernoulli_rate;
          Alcotest.test_case "gilbert-elliott average" `Quick test_loss_gilbert_elliott_average;
        ] );
      ("chan", [ Alcotest.test_case "pair" `Quick test_chan_pair ]);
      ( "link",
        [
          Alcotest.test_case "latency" `Quick test_link_latency;
          Alcotest.test_case "serialization spacing" `Quick test_link_serialization_spacing;
          Alcotest.test_case "queue overflow" `Quick test_link_queue_overflow;
          Alcotest.test_case "down + notify" `Quick test_link_down_drops_and_notifies;
          Alcotest.test_case "blackhole silent" `Quick test_link_blackhole_silent;
          Alcotest.test_case "loss" `Quick test_link_loss;
          Alcotest.test_case "directions independent" `Quick test_link_directions_independent;
        ] );
      ( "medium",
        [
          Alcotest.test_case "range and movement" `Quick test_medium_range_and_movement;
          Alcotest.test_case "edge loss grows" `Quick test_medium_edge_loss_grows;
        ] );
      ("trace", [ Alcotest.test_case "record and gaps" `Quick test_trace ]);
    ]
