(** Wireless medium with node positions and range-based connectivity.

    Nodes live on a 2-D plane.  A {!Chan.t} between two nodes has
    carrier exactly while they are within [range] of each other, and a
    per-frame loss probability that grows quadratically with distance
    (0 at zero distance, [edge_loss] at the range boundary) — a simple
    stand-in for path-loss fading on top of which a Gilbert–Elliott
    model can still be layered by the experiment.

    Moving a node ({!set_position}) re-evaluates carrier for every
    channel that touches it and fires the channels' carrier watchers;
    this is the physical trigger for mobility handoff (the paper's
    "mobility is dynamic multihoming with controlled link failures"). *)

type t

type node

val create : Engine.t -> Rina_util.Prng.t -> bit_rate:float -> base_delay:float -> t
(** All channels share the serialisation [bit_rate] (bits/s) and
    propagation [base_delay] (s).  Contention between concurrent
    transmissions is not modelled (documented substitution). *)

val add_node : t -> x:float -> y:float -> node

val set_position : t -> node -> x:float -> y:float -> unit

val position : node -> float * float

val distance : node -> node -> float

val channel : t -> local:node -> remote:node -> range:float -> ?edge_loss:float -> unit -> Chan.t
(** One endpoint of a radio channel between [local] and [remote];
    create the mirror-image channel for the other side.  [edge_loss]
    defaults to 0.3. *)
