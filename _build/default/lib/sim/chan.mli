(** The physical-medium abstraction every shim DIF sits on.

    A [t] is one endpoint's view of a unidirectional-send /
    unidirectional-receive byte pipe: wired link halves and wireless
    channels both present this interface, so the RINA shim IPC process
    is written once.  Watchers are notified on carrier up/down, which
    is what drives multihoming failover and mobility handoff. *)

type t = {
  send : bytes -> unit;
      (** Transmit one frame; silently dropped if the carrier is down,
          the queue overflows or the loss model fires. *)
  set_receiver : (bytes -> unit) -> unit;
      (** Register the frame-arrival callback (one receiver). *)
  is_up : unit -> bool;  (** Current carrier state. *)
  on_carrier : (bool -> unit) -> unit;
      (** Add a carrier up/down watcher (multiple allowed). *)
  stats : Rina_util.Metrics.t;
      (** [tx], [rx], [dropped_loss], [dropped_queue], [dropped_down],
          [tx_bytes], [rx_bytes]. *)
}

val null : unit -> t
(** A channel that swallows everything (useful in tests). *)

val pair : unit -> t * t
(** An ideal, zero-latency, lossless in-memory channel pair: whatever
    one side sends, the other receives immediately (same engine turn).
    Used by unit tests to exercise protocol machines without a
    simulator. *)
