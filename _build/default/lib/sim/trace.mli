(** Timestamped event log.

    Experiments attach one trace to an engine; components record
    (component, event) pairs.  Used to measure e.g. handoff
    interruption windows (gap between consecutive delivery events) and
    to assert event orderings in integration tests. *)

type t

val create : Engine.t -> t

val record : t -> component:string -> event:string -> unit
(** Log [event] from [component] at the current virtual time. *)

val events : t -> (float * string * string) list
(** All events, oldest first. *)

val filter : t -> component:string -> (float * string) list
(** Events of one component, oldest first. *)

val count : t -> component:string -> event:string -> int

val largest_gap : t -> component:string -> event:string -> (float * float) option
(** [largest_gap t ~component ~event] is the widest interval between
    two consecutive occurrences, as [(gap, start_time)]; [None] with
    fewer than two occurrences. *)
