lib/sim/link.ml: Bytes Chan Engine Float List Loss Rina_util
