lib/sim/medium.mli: Chan Engine Rina_util
