lib/sim/trace.mli: Engine
