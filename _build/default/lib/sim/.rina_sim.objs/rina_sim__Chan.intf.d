lib/sim/chan.mli: Rina_util
