lib/sim/loss.mli: Format Rina_util
