lib/sim/link.mli: Chan Engine Loss Rina_util
