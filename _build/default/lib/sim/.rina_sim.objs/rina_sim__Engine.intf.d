lib/sim/engine.mli:
