lib/sim/trace.ml: Engine List String
