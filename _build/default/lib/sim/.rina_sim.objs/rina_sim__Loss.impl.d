lib/sim/loss.ml: Format Rina_util
