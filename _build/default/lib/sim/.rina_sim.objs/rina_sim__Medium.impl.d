lib/sim/medium.ml: Bytes Chan Engine Float List Rina_util
