lib/sim/engine.ml: Float Rina_util
