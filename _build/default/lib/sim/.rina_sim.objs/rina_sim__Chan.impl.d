lib/sim/chan.ml: Bytes Rina_util
