type t = {
  send : bytes -> unit;
  set_receiver : (bytes -> unit) -> unit;
  is_up : unit -> bool;
  on_carrier : (bool -> unit) -> unit;
  stats : Rina_util.Metrics.t;
}

let null () =
  let stats = Rina_util.Metrics.create () in
  {
    send = (fun _ -> Rina_util.Metrics.incr stats "tx");
    set_receiver = (fun _ -> ());
    is_up = (fun () -> true);
    on_carrier = (fun _ -> ());
    stats;
  }

let pair () =
  let receiver_a = ref (fun (_ : bytes) -> ())
  and receiver_b = ref (fun (_ : bytes) -> ()) in
  let stats_a = Rina_util.Metrics.create ()
  and stats_b = Rina_util.Metrics.create () in
  let endpoint my_stats my_receiver peer_receiver peer_stats =
    {
      send =
        (fun frame ->
          Rina_util.Metrics.incr my_stats "tx";
          Rina_util.Metrics.add my_stats "tx_bytes" (Bytes.length frame);
          Rina_util.Metrics.incr peer_stats "rx";
          Rina_util.Metrics.add peer_stats "rx_bytes" (Bytes.length frame);
          !peer_receiver frame);
      set_receiver = (fun f -> my_receiver := f);
      is_up = (fun () -> true);
      on_carrier = (fun _ -> ());
      stats = my_stats;
    }
  in
  ( endpoint stats_a receiver_a receiver_b stats_b,
    endpoint stats_b receiver_b receiver_a stats_a )
