type t = { engine : Engine.t; mutable events : (float * string * string) list }

let create engine = { engine; events = [] }

let record t ~component ~event =
  t.events <- (Engine.now t.engine, component, event) :: t.events

let events t = List.rev t.events

let filter t ~component =
  List.filter_map
    (fun (time, c, e) -> if String.equal c component then Some (time, e) else None)
    (events t)

let count t ~component ~event =
  List.length
    (List.filter
       (fun (_, c, e) -> String.equal c component && String.equal e event)
       t.events)

let largest_gap t ~component ~event =
  let times =
    List.filter_map
      (fun (time, c, e) ->
        if String.equal c component && String.equal e event then Some time else None)
      (events t)
  in
  match times with
  | [] | [ _ ] -> None
  | first :: rest ->
    let _, best =
      List.fold_left
        (fun (prev, best) time ->
          let gap = time -. prev in
          let best =
            match best with
            | Some (g, _) when g >= gap -> best
            | Some _ | None -> Some (gap, prev)
          in
          (time, best))
        (first, None) rest
    in
    best
