type t =
  | No_loss
  | Bernoulli of float
  | Gilbert_elliott of {
      p_good_to_bad : float;
      p_bad_to_good : float;
      loss_good : float;
      loss_bad : float;
    }

type ge_state = Good | Bad

type state = { spec : t; mutable ge : ge_state }

let make_state spec = { spec; ge = Good }

let model s = s.spec

let drops s rng =
  match s.spec with
  | No_loss -> false
  | Bernoulli p -> Rina_util.Prng.bernoulli rng p
  | Gilbert_elliott { p_good_to_bad; p_bad_to_good; loss_good; loss_bad } ->
    (* Transition first, then draw the loss for this packet from the
       new state: sojourn times are geometric with mean 1/p. *)
    (match s.ge with
     | Good -> if Rina_util.Prng.bernoulli rng p_good_to_bad then s.ge <- Bad
     | Bad -> if Rina_util.Prng.bernoulli rng p_bad_to_good then s.ge <- Good);
    let p = match s.ge with Good -> loss_good | Bad -> loss_bad in
    Rina_util.Prng.bernoulli rng p

let pp fmt = function
  | No_loss -> Format.fprintf fmt "no-loss"
  | Bernoulli p -> Format.fprintf fmt "bernoulli(%.3f)" p
  | Gilbert_elliott { p_good_to_bad; p_bad_to_good; loss_good; loss_bad } ->
    Format.fprintf fmt "gilbert-elliott(gb=%.3f bg=%.3f lg=%.3f lb=%.3f)"
      p_good_to_bad p_bad_to_good loss_good loss_bad
