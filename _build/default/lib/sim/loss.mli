(** Packet-loss models for links.

    [Bernoulli] drops each packet independently; [Gilbert_elliott] is
    the classic two-state burst-loss model used to emulate wireless
    fading (a "good" state with low loss and a "bad" state with high
    loss, with geometric sojourn times). *)

type t =
  | No_loss
  | Bernoulli of float  (** independent drop probability *)
  | Gilbert_elliott of {
      p_good_to_bad : float;  (** per-packet transition probability *)
      p_bad_to_good : float;
      loss_good : float;  (** drop probability while in the good state *)
      loss_bad : float;   (** drop probability while in the bad state *)
    }

type state
(** Mutable per-link loss state (the Gilbert–Elliott chain position). *)

val make_state : t -> state

val model : state -> t

val drops : state -> Rina_util.Prng.t -> bool
(** [drops s rng] advances the model one packet and reports whether
    that packet is lost. *)

val pp : Format.formatter -> t -> unit
