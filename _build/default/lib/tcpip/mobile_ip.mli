(** Mobile-IP (RFC 3344 in miniature): the baseline's answer to
    mobility, with the defects §6.4 lists — the home agent is a single
    point of failure and every packet triangle-routes through the home
    network.

    A mobile keeps its *home address* for transport connections.  When
    away, it acquires a care-of address and registers it with its home
    agent over UDP; the home agent intercepts packets to the home
    address and tunnels them (IP-in-IP) to the care-of address, where
    the mobile decapsulates. *)

val registration_port : int

type home_agent

val home_agent : Node.t -> Udp.t -> local:Ip.addr -> home_agent
(** Run on the home-network router: installs a forward hook that
    tunnels packets destined to registered home addresses, and a UDP
    registration listener. *)

val bindings : home_agent -> (Ip.addr * Ip.addr) list
(** (home address, care-of address) pairs. *)

val tunnelled : home_agent -> int

type mobile

val mobile : Node.t -> Udp.t -> home_addr:Ip.addr -> mobile
(** Attach mobility support on the mobile host: a decapsulator for
    tunnelled packets (delivering the inner packet locally) plus
    registration machinery.  The [home_addr] stays bound to the
    mobile's logical identity even when its interface is renumbered. *)

val register_care_of :
  mobile ->
  home_agent_addr:Ip.addr ->
  care_of:Ip.addr ->
  on_ack:(unit -> unit) ->
  unit
(** Send a registration (retransmitted up to 3 times) and invoke
    [on_ack] when the home agent confirms. *)

val deregister : mobile -> home_agent_addr:Ip.addr -> care_of:Ip.addr -> unit
