module W = Rina_util.Codec.Writer
module R = Rina_util.Codec.Reader

type proto = P_udp | P_tcp | P_rip | P_tunnel

type t = {
  src : Ip.addr;
  dst : Ip.addr;
  proto : proto;
  ttl : int;
  payload : bytes;
}

let make ~src ~dst ~proto ?(ttl = 64) payload = { src; dst; proto; ttl; payload }

let proto_code = function P_udp -> 17 | P_tcp -> 6 | P_rip -> 520 | P_tunnel -> 4

let proto_of_code = function
  | 17 -> Ok P_udp
  | 6 -> Ok P_tcp
  | 520 -> Ok P_rip
  | 4 -> Ok P_tunnel
  | n -> Error (Printf.sprintf "unknown IP protocol %d" n)

let encode t =
  let w = W.create () in
  W.u32 w t.src;
  W.u32 w t.dst;
  W.u16 w (proto_code t.proto);
  W.u8 w t.ttl;
  W.bytes w t.payload;
  W.contents w

let header_size = 4 + 4 + 2 + 1 + 4

let decode data =
  try
    let r = R.create data in
    let src = R.u32 r in
    let dst = R.u32 r in
    match proto_of_code (R.u16 r) with
    | Error _ as e -> e
    | Ok proto ->
      let ttl = R.u8 r in
      let payload = R.bytes r in
      R.expect_end r;
      Ok { src; dst; proto; ttl; payload }
  with R.Decode_error msg -> Error msg

module Udp = struct
  type dgram = { sport : int; dport : int; body : bytes }

  let encode d =
    let w = W.create () in
    W.u16 w d.sport;
    W.u16 w d.dport;
    W.bytes w d.body;
    W.contents w

  let decode data =
    try
      let r = R.create data in
      let sport = R.u16 r in
      let dport = R.u16 r in
      let body = R.bytes r in
      R.expect_end r;
      Ok { sport; dport; body }
    with R.Decode_error msg -> Error msg
end

module Tcp = struct
  type flags = { syn : bool; ack : bool; fin : bool; rst : bool }

  let no_flags = { syn = false; ack = false; fin = false; rst = false }

  type seg = {
    sport : int;
    dport : int;
    seq : int;
    ack_seq : int;
    flags : flags;
    window : int;
    body : bytes;
  }

  let flags_byte f =
    (if f.syn then 1 else 0)
    lor (if f.ack then 2 else 0)
    lor (if f.fin then 4 else 0)
    lor if f.rst then 8 else 0

  let flags_of_byte b =
    {
      syn = b land 1 <> 0;
      ack = b land 2 <> 0;
      fin = b land 4 <> 0;
      rst = b land 8 <> 0;
    }

  let encode s =
    let w = W.create () in
    W.u16 w s.sport;
    W.u16 w s.dport;
    W.u32 w s.seq;
    W.u32 w s.ack_seq;
    W.u8 w (flags_byte s.flags);
    W.u16 w s.window;
    W.bytes w s.body;
    W.contents w

  let decode data =
    try
      let r = R.create data in
      let sport = R.u16 r in
      let dport = R.u16 r in
      let seq = R.u32 r in
      let ack_seq = R.u32 r in
      let flags = flags_of_byte (R.u8 r) in
      let window = R.u16 r in
      let body = R.bytes r in
      R.expect_end r;
      Ok { sport; dport; seq; ack_seq; flags; window; body }
    with R.Decode_error msg -> Error msg
end

let pp fmt t =
  let p =
    match t.proto with
    | P_udp -> "udp"
    | P_tcp -> "tcp"
    | P_rip -> "rip"
    | P_tunnel -> "ipip"
  in
  Format.fprintf fmt "%s %s->%s ttl=%d len=%d" p (Ip.string_of_addr t.src)
    (Ip.string_of_addr t.dst) t.ttl (Bytes.length t.payload)
