(** TCP-like reliable transport for the baseline stack.

    Three-way handshake, cumulative acks, Jacobson RTO, slow start +
    AIMD, fast retransmit, RST for closed ports, FIN teardown.
    Sequence numbers count segments.

    Faithfully reproduced defects the experiments rely on:
    connections are identified by the (address, port) 4-tuple fixed at
    setup, so a connection dies with its interface address (mobility,
    F5) and cannot move to a second interface (multihoming, F4); ports
    are well known and addresses public (C2). *)

type stack
type conn

type state =
  | Closed
  | Syn_sent
  | Syn_rcvd
  | Established
  | Fin_wait

val attach : Node.t -> stack
(** Install the TCP handler on a node. *)

val listen : stack -> port:int -> on_accept:(conn -> unit) -> unit
val unlisten : stack -> port:int -> unit

val connect :
  stack ->
  src:Ip.addr ->
  dst:Ip.addr ->
  dport:int ->
  on_result:((conn, string) result -> unit) ->
  unit
(** Active open from local address [src] (fixed for the connection's
    lifetime).  [on_result] fires once: [Ok] when established, [Error]
    on RST or handshake timeout. *)

val send : conn -> bytes -> unit
(** Queue application data (segmented to the MSS internally). *)

val set_on_receive : conn -> (bytes -> unit) -> unit
val set_on_error : conn -> (string -> unit) -> unit
(** Fires when the connection is reset or retransmissions are
    exhausted — e.g. after its path or address vanished. *)

val set_on_close : conn -> (unit -> unit) -> unit
val close : conn -> unit

val state : conn -> state
val conn_metrics : conn -> Rina_util.Metrics.t
val stack_metrics : stack -> Rina_util.Metrics.t
val listening_ports : stack -> int list
val local_endpoint : conn -> Ip.addr * int
val remote_endpoint : conn -> Ip.addr * int
