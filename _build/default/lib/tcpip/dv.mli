(** Distance-vector routing (RIP-like) for the baseline stack.

    Periodic full-table advertisements on every interface with split
    horizon, metric 16 = unreachable, route expiry after
    [3.5 × period], and triggered updates on change.  Gives the
    baseline its (slow) failover behaviour for F4/C1. *)

type t

val start : Node.t -> ?period:float -> unit -> t
(** Begin advertising and listening on all current interfaces of the
    node.  [period] defaults to 5 s (scaled-down RIP's 30 s). *)

val advertisements_sent : t -> int
val routes_learned : t -> int

val converged_size : t -> int
(** Current routing-table size of the underlying node. *)
