(** Baseline wire formats: IP datagrams and the transport segments
    they carry.  Encodings mirror the style of the RINA codecs so both
    stacks pay comparable per-frame costs. *)

type proto =
  | P_udp
  | P_tcp
  | P_rip     (** distance-vector routing updates *)
  | P_tunnel  (** IP-in-IP encapsulation (Mobile-IP) *)

type t = {
  src : Ip.addr;
  dst : Ip.addr;
  proto : proto;
  ttl : int;
  payload : bytes;
}

val make : src:Ip.addr -> dst:Ip.addr -> proto:proto -> ?ttl:int -> bytes -> t

val encode : t -> bytes
val decode : bytes -> (t, string) result

val header_size : int

(** UDP-like datagram. *)
module Udp : sig
  type dgram = { sport : int; dport : int; body : bytes }

  val encode : dgram -> bytes
  val decode : bytes -> (dgram, string) result
end

(** TCP-like segment. *)
module Tcp : sig
  type flags = { syn : bool; ack : bool; fin : bool; rst : bool }

  val no_flags : flags

  type seg = {
    sport : int;
    dport : int;
    seq : int;
    ack_seq : int;
    flags : flags;
    window : int;
    body : bytes;
  }

  val encode : seg -> bytes
  val decode : bytes -> (seg, string) result
end

val pp : Format.formatter -> t -> unit
