(** DNS-like central name directory on well-known UDP port 53.

    The contrast the paper draws (§5.3): a lookup returns an address
    to the requester and then forgets — nothing verifies the
    application is actually there or that the requester may access it.
    The resolver here behaves exactly that way. *)

val port : int

type server

val server : Udp.t -> local:Ip.addr -> server
(** Run a name server on a node's UDP stack, answering on {!port}. *)

val register : server -> string -> Ip.addr -> unit
val withdraw : server -> string -> unit
val entries : server -> (string * Ip.addr) list
val queries_served : server -> int

val resolve :
  Udp.t ->
  Rina_sim.Engine.t ->
  local:Ip.addr ->
  server:Ip.addr ->
  string ->
  on_result:((Ip.addr, string) result -> unit) ->
  unit
(** One-shot query with up to 3 retransmissions (1 s apart). *)
