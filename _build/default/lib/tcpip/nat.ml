module Metrics = Rina_util.Metrics

type mapping = { inside_addr : Ip.addr; inside_port : int }

type t = {
  inside : Ip.prefix;
  public : Ip.addr;
  (* external port -> inside endpoint *)
  inbound : (int, mapping) Hashtbl.t;
  (* (inside addr, inside port) -> external port *)
  outbound : (Ip.addr * int, int) Hashtbl.t;
  mutable next_port : int;
  metrics : Metrics.t;
}

let ports_of_payload proto payload =
  match proto with
  | Packet.P_udp -> (
    match Packet.Udp.decode payload with
    | Ok d -> Some (d.Packet.Udp.sport, d.Packet.Udp.dport, `Udp d)
    | Error _ -> None)
  | Packet.P_tcp -> (
    match Packet.Tcp.decode payload with
    | Ok s -> Some (s.Packet.Tcp.sport, s.Packet.Tcp.dport, `Tcp s)
    | Error _ -> None)
  | Packet.P_rip | Packet.P_tunnel -> None

let rewrite_sport payload_kind new_sport =
  match payload_kind with
  | `Udp d -> Packet.Udp.encode { d with Packet.Udp.sport = new_sport }
  | `Tcp s -> Packet.Tcp.encode { s with Packet.Tcp.sport = new_sport }

let rewrite_dport payload_kind new_dport =
  match payload_kind with
  | `Udp d -> Packet.Udp.encode { d with Packet.Udp.dport = new_dport }
  | `Tcp s -> Packet.Tcp.encode { s with Packet.Tcp.dport = new_dport }

let handle t (pkt : Packet.t) ~in_if:_ =
  match ports_of_payload pkt.Packet.proto pkt.Packet.payload with
  | None -> Some pkt
  | Some (sport, dport, kind) ->
    if Ip.matches t.inside pkt.Packet.src then begin
      (* Outbound: source-rewrite. *)
      let ext_port =
        match Hashtbl.find_opt t.outbound (pkt.Packet.src, sport) with
        | Some p -> p
        | None ->
          let p = t.next_port in
          t.next_port <- t.next_port + 1;
          Hashtbl.replace t.outbound (pkt.Packet.src, sport) p;
          Hashtbl.replace t.inbound p
            { inside_addr = pkt.Packet.src; inside_port = sport };
          Metrics.incr t.metrics "mappings_created";
          p
      in
      Metrics.incr t.metrics "translated_out";
      Some
        { pkt with Packet.src = t.public; payload = rewrite_sport kind ext_port }
    end
    else if pkt.Packet.dst = t.public then begin
      (* Inbound: only through an existing mapping. *)
      match Hashtbl.find_opt t.inbound dport with
      | Some m ->
        Metrics.incr t.metrics "translated_in";
        Some
          {
            pkt with
            Packet.dst = m.inside_addr;
            payload = rewrite_dport kind m.inside_port;
          }
      | None ->
        Metrics.incr t.metrics "dropped_unsolicited";
        None
    end
    else Some pkt

let install node ~inside ~public =
  let t =
    {
      inside;
      public;
      inbound = Hashtbl.create 32;
      outbound = Hashtbl.create 32;
      next_port = 20000;
      metrics = Metrics.create ();
    }
  in
  Node.set_forward_hook node (fun pkt ~in_if -> handle t pkt ~in_if);
  t

let translations t = Hashtbl.length t.inbound

let dropped_unsolicited t = Metrics.get t.metrics "dropped_unsolicited"

let metrics t = t.metrics
