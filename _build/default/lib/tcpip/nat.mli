(** Network address translation middlebox — one of the "kludges"
    (§6.5) that the repeating-DIF structure makes unnecessary.

    Installed on a forwarding node: traffic from the inside prefix is
    rewritten to the public address with an allocated external port;
    return traffic is translated back.  Unsolicited inbound traffic is
    dropped, which is both NAT's accidental firewall and its breakage
    of inbound reachability (measured in C2). *)

type t

val install :
  Node.t -> inside:Ip.prefix -> public:Ip.addr -> t
(** Attach as the node's forward hook.  [public] must be a *routed*
    address (reachable via this node), not one of the node's own
    interface addresses — locally addressed packets bypass the
    forwarding path and would never reach the translator. *)

val translations : t -> int
(** Active port mappings. *)

val dropped_unsolicited : t -> int

val metrics : t -> Rina_util.Metrics.t
