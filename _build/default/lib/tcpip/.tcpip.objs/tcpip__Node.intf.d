lib/tcpip/node.mli: Ip Packet Rina_sim Rina_util
