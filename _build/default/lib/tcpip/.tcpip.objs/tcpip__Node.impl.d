lib/tcpip/node.ml: Hashtbl Ip List Lpm Option Packet Rina_sim Rina_util
