lib/tcpip/packet.mli: Format Ip
