lib/tcpip/udp.ml: Hashtbl Ip List Node Packet Rina_util
