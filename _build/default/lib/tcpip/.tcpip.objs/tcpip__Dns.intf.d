lib/tcpip/dns.mli: Ip Rina_sim Udp
