lib/tcpip/nat.mli: Ip Node Rina_util
