lib/tcpip/tcp.ml: Bytes Float Hashtbl Ip List Node Packet Queue Rina_sim Rina_util
