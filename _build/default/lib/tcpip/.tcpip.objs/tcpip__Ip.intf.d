lib/tcpip/ip.mli: Format
