lib/tcpip/lpm.ml: Ip List Option
