lib/tcpip/dv.ml: Ip List Node Packet Rina_sim Rina_util
