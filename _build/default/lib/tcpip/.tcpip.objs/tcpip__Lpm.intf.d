lib/tcpip/lpm.mli: Ip
