lib/tcpip/packet.ml: Bytes Format Ip Printf Rina_util
