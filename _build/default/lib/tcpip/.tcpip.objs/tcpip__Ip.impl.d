lib/tcpip/ip.ml: Format Printf String
