lib/tcpip/nat.ml: Hashtbl Ip Node Packet Rina_util
