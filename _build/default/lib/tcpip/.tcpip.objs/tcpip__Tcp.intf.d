lib/tcpip/tcp.mli: Ip Node Rina_util
