lib/tcpip/dns.ml: Char Hashtbl Ip List Rina_sim Rina_util Udp
