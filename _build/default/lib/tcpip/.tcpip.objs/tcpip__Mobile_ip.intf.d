lib/tcpip/mobile_ip.mli: Ip Node Udp
