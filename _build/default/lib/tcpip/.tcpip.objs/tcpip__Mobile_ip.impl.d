lib/tcpip/mobile_ip.ml: Char Hashtbl Ip List Node Packet Rina_sim Rina_util Udp
