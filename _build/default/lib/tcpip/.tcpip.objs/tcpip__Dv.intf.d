lib/tcpip/dv.mli: Node
