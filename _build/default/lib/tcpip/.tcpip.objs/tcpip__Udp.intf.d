lib/tcpip/udp.mli: Ip Node Rina_util
