(** A host or router in the baseline TCP/IP stack.

    Interfaces bind {!Rina_sim.Chan.t} endpoints and *each carries its
    own address* — the interface-naming model whose consequences
    (multihoming and mobility failures) the experiments measure.
    Routers are nodes with [forwarding] on; forwarding consults a
    longest-prefix-match table filled statically or by {!Dv}. *)

type t

(** One routing-table entry. *)
type route = {
  rt_if : int;                  (** outgoing interface *)
  rt_next_hop : Ip.addr option; (** [None] = directly connected *)
  rt_metric : int;
  rt_learned_from : Ip.addr option;  (** DV neighbour, [None] = static *)
  mutable rt_expires : float;   (** absolute time; [infinity] = static *)
}

val create : Rina_sim.Engine.t -> ?forwarding:bool -> string -> t
(** Hosts: [forwarding] false (default); routers: true. *)

val engine : t -> Rina_sim.Engine.t
val node_name : t -> string

val add_iface : t -> Rina_sim.Chan.t -> addr:Ip.addr -> prefix:Ip.prefix -> int
(** Attach a link; installs the connected route; returns the interface
    id. *)

val set_iface_addr : t -> int -> addr:Ip.addr -> prefix:Ip.prefix -> unit
(** Renumber an interface (what a mobile must do in a foreign
    network); the old connected route is replaced. *)

val iface_addr : t -> int -> Ip.addr option
val local_addrs : t -> Ip.addr list
val is_local : t -> Ip.addr -> bool

val add_static_route : t -> Ip.prefix -> ?next_hop:Ip.addr -> if_id:int -> unit -> unit

val install_route : t -> Ip.prefix -> route -> unit
(** Used by {!Dv}. *)

val remove_route : t -> Ip.prefix -> bool
val routes : t -> (Ip.prefix * route) list
val table_size : t -> int

val send_ip : t -> Packet.t -> unit
(** Route and transmit a locally originated datagram. *)

val set_proto_handler : t -> Packet.proto -> (Packet.t -> in_if:int -> unit) -> unit
(** Deliver datagrams addressed to this node (or broadcast) for one
    protocol.  Registered by {!Udp}, {!Tcp}, {!Dv}, {!Mobile_ip}. *)

val set_forward_hook : t -> (Packet.t -> in_if:int -> Packet.t option) -> unit
(** Middlebox interposition on the forwarding path ({!Nat},
    {!Mobile_ip} home agents): return a rewritten packet to continue
    forwarding with, or [None] to consume it. *)

val send_on_iface : t -> int -> Packet.t -> unit
(** Transmit on a specific interface, bypassing the table ({!Dv}
    advertisements). *)

val inject : t -> Packet.t -> in_if:int -> unit
(** Hand a packet to the local protocol handlers regardless of its
    destination address — tunnel decapsulation ({!Mobile_ip}) needs
    this because the inner destination is a logical home address, not
    a current interface address. *)

val iface_ids : t -> int list
val iface_up : t -> int -> bool

val on_iface_change : t -> (int -> bool -> unit) -> unit
(** Carrier watchers for all interfaces (present and future). *)

val metrics : t -> Rina_util.Metrics.t
(** [ip_rx], [ip_tx], [forwarded], [no_route], [ttl_expired],
    [delivered]... *)

val broadcast_addr : Ip.addr
