type 'a node = {
  mutable value : 'a option;
  mutable zero : 'a node option;
  mutable one : 'a node option;
}

type 'a t = { root : 'a node; mutable count : int }

let fresh_node () = { value = None; zero = None; one = None }

let create () = { root = fresh_node (); count = 0 }

let bit addr i = (addr lsr (31 - i)) land 1

let find_node t (p : Ip.prefix) ~build =
  let rec go node i =
    if i = p.Ip.length then Some node
    else begin
      let next =
        if bit p.Ip.network i = 0 then node.zero else node.one
      in
      match next with
      | Some child -> go child (i + 1)
      | None ->
        if not build then None
        else begin
          let child = fresh_node () in
          if bit p.Ip.network i = 0 then node.zero <- Some child
          else node.one <- Some child;
          go child (i + 1)
        end
    end
  in
  go t.root 0

let insert t p v =
  match find_node t p ~build:true with
  | Some node ->
    if node.value = None then t.count <- t.count + 1;
    node.value <- Some v
  | None -> assert false

let remove t p =
  match find_node t p ~build:false with
  | Some node when node.value <> None ->
    node.value <- None;
    t.count <- t.count - 1;
    true
  | Some _ | None -> false

let lookup_prefix t addr =
  let rec go node i best =
    let best =
      match node.value with Some v -> Some (i, v) | None -> best
    in
    if i = 32 then best
    else
      match if bit addr i = 0 then node.zero else node.one with
      | Some child -> go child (i + 1) best
      | None -> best
  in
  Option.map (fun (len, v) -> (Ip.prefix addr len, v)) (go t.root 0 None)

let lookup t addr = Option.map snd (lookup_prefix t addr)

let entries t =
  let acc = ref [] in
  let rec go node prefix_bits length =
    (match node.value with
     | Some v ->
       let network = if length = 0 then 0 else prefix_bits lsl (32 - length) in
       acc := (Ip.prefix network length, v) :: !acc
     | None -> ());
    (match node.zero with
     | Some child -> go child (prefix_bits lsl 1) (length + 1)
     | None -> ());
    match node.one with
    | Some child -> go child ((prefix_bits lsl 1) lor 1) (length + 1)
    | None -> ()
  in
  go t.root 0 0;
  List.sort
    (fun ((a : Ip.prefix), _) (b, _) -> compare b.Ip.length a.Ip.length)
    !acc

let size t = t.count
