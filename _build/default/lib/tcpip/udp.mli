(** UDP-style datagram service with well-known ports — the service
    model (addresses + ports visible to applications) the paper's
    architecture removes. *)

type t

val attach : Node.t -> t
(** Install the UDP handler on a node (idempotent per node would be
    wasteful — attach once). *)

val listen : t -> port:int -> (src:Ip.addr -> sport:int -> bytes -> unit) -> unit
(** Bind a handler to a local port. *)

val unlisten : t -> port:int -> unit

val send : t -> src:Ip.addr -> dst:Ip.addr -> sport:int -> dport:int -> bytes -> unit

val open_ports : t -> int list
(** Bound ports, sorted — what a port scan can discover (C2). *)

val metrics : t -> Rina_util.Metrics.t
