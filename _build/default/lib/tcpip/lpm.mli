(** Longest-prefix-match forwarding table (binary trie). *)

type 'a t
(** Maps prefixes to values of type ['a] (e.g. next-hop records). *)

val create : unit -> 'a t

val insert : 'a t -> Ip.prefix -> 'a -> unit
(** Replace any previous value at exactly this prefix. *)

val remove : 'a t -> Ip.prefix -> bool
(** [true] if a value was present. *)

val lookup : 'a t -> Ip.addr -> 'a option
(** Longest matching prefix's value. *)

val lookup_prefix : 'a t -> Ip.addr -> (Ip.prefix * 'a) option
(** Like {!lookup} but also reports which prefix won. *)

val entries : 'a t -> (Ip.prefix * 'a) list
(** All routes, most-specific first. *)

val size : 'a t -> int
(** Number of routes (the C1 table-size metric). *)
