lib/exp/scenario.ml: Array Printf Rina_core Rina_sim Rina_util Topo Workload
