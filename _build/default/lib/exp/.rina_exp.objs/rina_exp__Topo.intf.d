lib/exp/topo.mli: Rina_core Rina_sim Rina_util Tcpip
