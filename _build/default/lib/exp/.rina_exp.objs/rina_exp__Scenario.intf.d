lib/exp/scenario.mli: Rina_core Topo Workload
