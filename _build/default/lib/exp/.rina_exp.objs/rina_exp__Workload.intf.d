lib/exp/workload.mli: Rina_sim Rina_util
