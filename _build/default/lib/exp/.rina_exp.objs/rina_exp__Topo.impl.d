lib/exp/topo.ml: Array List Printf Rina_core Rina_sim Rina_util Tcpip
