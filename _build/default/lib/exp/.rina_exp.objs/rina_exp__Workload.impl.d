lib/exp/workload.ml: Bytes Int32 Int64 Rina_sim Rina_util
