module Engine = Rina_sim.Engine
module Ipcp = Rina_core.Ipcp
module Types = Rina_core.Types

let drive_until engine ~timeout cond =
  let deadline = Engine.now engine +. timeout in
  while (not (cond ())) && Engine.now engine < deadline do
    Engine.run ~until:(Engine.now engine +. 0.05) engine
  done

let allocate (net : Topo.rina_net) ~src ~dst_app ~qos_id k =
  let result = ref None in
  let src_app = Types.apn (Printf.sprintf "client-n%d" src) in
  Ipcp.register_app net.Topo.nodes.(src) src_app ~on_flow:(fun _ -> ());
  Ipcp.allocate_flow net.Topo.nodes.(src) ~src:src_app ~dst:dst_app ~qos_id
    ~on_result:(fun r -> result := Some r);
  drive_until net.Topo.engine ~timeout:30. (fun () -> !result <> None);
  match !result with
  | Some r -> k r
  | None -> k (Error "allocation never resolved (engine starved)")

let open_flow (net : Topo.rina_net) ~src ~dst ~qos_id ?sink () =
  let dst_app = Types.apn (Printf.sprintf "sink-n%d" dst) in
  Ipcp.register_app net.Topo.nodes.(dst) dst_app ~on_flow:(fun flow ->
      match sink with
      | Some s ->
        flow.Ipcp.set_on_receive (fun sdu ->
            Workload.on_sdu s ~now:(Engine.now net.Topo.engine) sdu)
      | None -> ());
  let t0 = Engine.now net.Topo.engine in
  let out = ref (Error "not resolved") in
  allocate net ~src ~dst_app ~qos_id (fun r ->
      match r with
      | Ok flow -> out := Ok (flow, Engine.now net.Topo.engine -. t0)
      | Error e -> out := Error e);
  !out

let sum_metric (net : Topo.rina_net) name =
  Array.fold_left
    (fun acc node -> acc + Rina_util.Metrics.get (Ipcp.metrics node) name)
    0 net.Topo.nodes

let sum_rmt_metric (net : Topo.rina_net) name =
  Array.fold_left
    (fun acc node -> acc + Rina_util.Metrics.get (Ipcp.rmt_metrics node) name)
    0 net.Topo.nodes
