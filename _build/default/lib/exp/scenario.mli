(** Scenario plumbing: synchronous-looking wrappers that drive the
    virtual clock until an asynchronous operation completes. *)

val open_flow :
  Topo.rina_net ->
  src:int ->
  dst:int ->
  qos_id:Rina_core.Types.qos_id ->
  ?sink:Workload.sink ->
  unit ->
  (Rina_core.Ipcp.flow * float, string) result
(** Register an echo-less sink app on node [dst], allocate a flow from
    node [src] and drive the engine until the allocation resolves.
    Returns the flow and the allocation latency (s).  If [sink] is
    given, every SDU arriving at [dst] is accounted there. *)

val allocate :
  Topo.rina_net ->
  src:int ->
  dst_app:Rina_core.Types.apn ->
  qos_id:Rina_core.Types.qos_id ->
  ((Rina_core.Ipcp.flow, string) result -> unit) ->
  unit
(** Raw allocation from node [src] towards an already-registered
    application name; drives the engine until the callback fires. *)

val sum_metric : Topo.rina_net -> string -> int
(** Sum a management-metric counter over all nodes. *)

val sum_rmt_metric : Topo.rina_net -> string -> int
