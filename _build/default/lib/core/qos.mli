(** QoS cubes.

    A DIF offers a small set of named "cubes" — coherent regions of the
    performance space.  An application requests a cube when allocating
    a flow; the flow allocator maps the cube onto EFCP and scheduling
    policies.  This is the paper's "policies tuned to operate over
    different ranges of the performance space". *)

type t = {
  id : Types.qos_id;
  name : string;
  reliable : bool;      (** retransmission control on *)
  in_order : bool;      (** resequencing on *)
  priority : int;       (** RMT scheduling class, higher wins *)
  avg_bandwidth : float;
      (** bits/s the flow should receive under contention; 0 = best effort *)
  max_delay : float;    (** target one-way delay bound in s; 0 = none *)
}

val best_effort : t
(** id 0: unreliable, unordered, priority 0. *)

val reliable : t
(** id 1: retransmission + in-order delivery. *)

val low_latency : t
(** id 2: unreliable but high scheduling priority. *)

val gold : t
(** id 3: reliable, high priority, bandwidth-assured. *)

val standard_cubes : t list
(** The four cubes above, installed in every DIF by default. *)

val find : t list -> Types.qos_id -> t option

val encode : Rina_util.Codec.Writer.t -> t -> unit
val decode : Rina_util.Codec.Reader.t -> t

val pp : Format.formatter -> t -> unit
