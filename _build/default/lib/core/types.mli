(** Fundamental identifier types of the IPC model.

    The paper's naming discipline is enforced by these types:
    applications are named by {!apn} (location-independent, the only
    name an application ever handles); {!address} is an identifier
    *internal* to one DIF and never escapes the library's public API;
    {!port_id} is a local, dynamically assigned handle to one end of a
    flow at the layer boundary, free of any application-name semantics
    (no well-known ports). *)

type apn = { ap_name : string; ap_instance : string }
(** Application process name: a globally unambiguous, location
    independent name plus an instance qualifier. *)

val apn : ?instance:string -> string -> apn
(** [apn name] with instance defaulting to ["1"]. *)

val apn_to_string : apn -> string
(** ["name/instance"] rendering. *)

val apn_of_string : string -> apn
(** Inverse of {!apn_to_string}; a missing ["/instance"] part defaults
    to instance ["1"]. *)

val apn_equal : apn -> apn -> bool
val apn_compare : apn -> apn -> int

type dif_name = string
(** Name of a distributed IPC facility. *)

type address = int
(** DIF-internal address of an IPC process.  [0] is reserved for
    "unknown / not yet enrolled"; valid member addresses start at 1.
    An address is a synonym usable only inside its own DIF. *)

val no_address : address

type port_id = int
(** Local identifier of one end of a flow at the layer boundary. *)

type cep_id = int
(** Connection-endpoint id, the EFCP-internal counterpart of a port;
    [0] is reserved for the management task's "endpoint". *)

val mgmt_cep : cep_id

type qos_id = int
(** Identifier of a QoS cube within a DIF. *)

val pp_apn : Format.formatter -> apn -> unit
val pp_address : Format.formatter -> address -> unit
