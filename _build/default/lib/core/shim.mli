(** Shim adaptation of raw media channels.

    The lowest-rank DIF is "tailored to the physical medium"; its IPC
    processes bind media channels directly.  [wrap] adds the minimal
    framing that tailoring needs in practice: a DIF tag so that frames
    of other DIFs sharing the same medium (or stray noise) are
    filtered out before they reach the RMT, plus frame counting. *)

val wrap : dif:Types.dif_name -> Rina_sim.Chan.t -> Rina_sim.Chan.t
(** Prefix outgoing frames with a 4-byte tag derived from [dif];
    incoming frames with a different tag are dropped (counted as
    [foreign_frames] in the returned channel's stats). *)

val tag_of_dif : Types.dif_name -> int
(** The 32-bit tag (FNV-1a hash of the DIF name). *)
