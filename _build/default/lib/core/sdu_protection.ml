let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
           else c := !c lsr 1
         done;
         !c))

let crc32 data =
  let table = Lazy.force table in
  let crc = ref 0xFFFFFFFF in
  for i = 0 to Bytes.length data - 1 do
    let byte = Char.code (Bytes.get data i) in
    crc := table.((!crc lxor byte) land 0xFF) lxor (!crc lsr 8)
  done;
  !crc lxor 0xFFFFFFFF land 0xFFFFFFFF

let overhead = 4

let protect data =
  let crc = crc32 data in
  let out = Bytes.create (Bytes.length data + overhead) in
  Bytes.blit data 0 out 0 (Bytes.length data);
  Bytes.set_int32_be out (Bytes.length data) (Int32.of_int crc);
  out

let verify frame =
  let n = Bytes.length frame in
  if n < overhead then None
  else begin
    let body = Bytes.sub frame 0 (n - overhead) in
    let stored = Int32.to_int (Bytes.get_int32_be frame (n - overhead)) land 0xFFFFFFFF in
    if crc32 body = stored then Some body else None
  end
