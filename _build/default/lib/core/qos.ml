type t = {
  id : Types.qos_id;
  name : string;
  reliable : bool;
  in_order : bool;
  priority : int;
  avg_bandwidth : float;
  max_delay : float;
}

let best_effort =
  {
    id = 0;
    name = "best-effort";
    reliable = false;
    in_order = false;
    priority = 0;
    avg_bandwidth = 0.;
    max_delay = 0.;
  }

let reliable =
  {
    id = 1;
    name = "reliable";
    reliable = true;
    in_order = true;
    priority = 0;
    avg_bandwidth = 0.;
    max_delay = 0.;
  }

let low_latency =
  {
    id = 2;
    name = "low-latency";
    reliable = false;
    in_order = false;
    priority = 2;
    avg_bandwidth = 0.;
    max_delay = 0.05;
  }

let gold =
  {
    id = 3;
    name = "gold";
    reliable = true;
    in_order = true;
    priority = 1;
    avg_bandwidth = 1_000_000.;
    max_delay = 0.2;
  }

let standard_cubes = [ best_effort; reliable; low_latency; gold ]

let find cubes id = List.find_opt (fun c -> c.id = id) cubes

let encode w t =
  let module W = Rina_util.Codec.Writer in
  W.u16 w t.id;
  W.string w t.name;
  W.bool w t.reliable;
  W.bool w t.in_order;
  W.u16 w t.priority;
  W.f64 w t.avg_bandwidth;
  W.f64 w t.max_delay

let decode r =
  let module R = Rina_util.Codec.Reader in
  let id = R.u16 r in
  let name = R.string r in
  let reliable = R.bool r in
  let in_order = R.bool r in
  let priority = R.u16 r in
  let avg_bandwidth = R.f64 r in
  let max_delay = R.f64 r in
  { id; name; reliable; in_order; priority; avg_bandwidth; max_delay }

let pp fmt t =
  Format.fprintf fmt "%s(id=%d%s%s prio=%d)" t.name t.id
    (if t.reliable then " rel" else "")
    (if t.in_order then " ord" else "")
    t.priority
