(** SDU delimiting: fragmentation of application SDUs into user-data
    fields no larger than the DIF's MTU, and exact reassembly on the
    receiving side.

    Each fragment carries a 1-byte header with FIRST/LAST flags.  The
    reassembler relies on EFCP's in-order delivery for reliable flows;
    on unreliable flows a lost fragment makes it discard the partial
    SDU when the next FIRST arrives (counted as [sdus_discarded]). *)

val fragment : mtu:int -> bytes -> bytes list
(** Split an SDU into delimited fragments, each of length at most
    [mtu] + {!overhead}.  The empty SDU yields one fragment.
    @raise Invalid_argument if [mtu <= 0]. *)

val overhead : int
(** Header bytes per fragment. *)

type reassembler

val create_reassembler : unit -> reassembler

val push : reassembler -> bytes -> bytes option
(** Feed one delimited fragment (in delivery order); returns the
    complete SDU when its LAST fragment arrives.
    @raise Invalid_argument on a malformed fragment. *)

val discarded : reassembler -> int
(** SDUs dropped because a new SDU began mid-reassembly. *)
