type apn = { ap_name : string; ap_instance : string }

let apn ?(instance = "1") name = { ap_name = name; ap_instance = instance }

let apn_to_string a = a.ap_name ^ "/" ^ a.ap_instance

let apn_of_string s =
  match String.index_opt s '/' with
  | None -> { ap_name = s; ap_instance = "1" }
  | Some i ->
    {
      ap_name = String.sub s 0 i;
      ap_instance = String.sub s (i + 1) (String.length s - i - 1);
    }

let apn_equal a b =
  String.equal a.ap_name b.ap_name && String.equal a.ap_instance b.ap_instance

let apn_compare a b =
  match String.compare a.ap_name b.ap_name with
  | 0 -> String.compare a.ap_instance b.ap_instance
  | c -> c

type dif_name = string

type address = int

let no_address = 0

type port_id = int

type cep_id = int

let mgmt_cep = 0

type qos_id = int

let pp_apn fmt a = Format.pp_print_string fmt (apn_to_string a)

let pp_address fmt (a : address) = Format.fprintf fmt "@%d" a
