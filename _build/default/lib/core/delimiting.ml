let flag_first = 1

let flag_last = 2

let overhead = 1

let fragment ~mtu sdu =
  if mtu <= 0 then invalid_arg "Delimiting.fragment: mtu must be positive";
  let len = Bytes.length sdu in
  let pieces = if len = 0 then 1 else (len + mtu - 1) / mtu in
  List.init pieces (fun i ->
      let off = i * mtu in
      let size = min mtu (len - off) in
      let size = max size 0 in
      let frag = Bytes.create (size + overhead) in
      let flags =
        (if i = 0 then flag_first else 0) lor (if i = pieces - 1 then flag_last else 0)
      in
      Bytes.set frag 0 (Char.chr flags);
      Bytes.blit sdu off frag overhead size;
      frag)

type reassembler = { mutable parts : bytes list; mutable active : bool; mutable discarded : int }

let create_reassembler () = { parts = []; active = false; discarded = 0 }

let push t frag =
  if Bytes.length frag < overhead then
    invalid_arg "Delimiting.push: fragment shorter than header";
  let flags = Char.code (Bytes.get frag 0) in
  let body = Bytes.sub frag overhead (Bytes.length frag - overhead) in
  let first = flags land flag_first <> 0 and last = flags land flag_last <> 0 in
  if first then begin
    if t.active then t.discarded <- t.discarded + 1;
    t.parts <- [ body ];
    t.active <- true
  end
  else if t.active then t.parts <- body :: t.parts
  else (* middle fragment of an SDU whose start we never saw: ignore *)
    ();
  if last && t.active then begin
    let sdu = Bytes.concat Bytes.empty (List.rev t.parts) in
    t.parts <- [];
    t.active <- false;
    Some sdu
  end
  else None

let discarded t = t.discarded
