let tag_of_dif dif =
  (* FNV-1a, 32-bit. *)
  let h = ref 0x811C9DC5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0xFFFFFFFF)
    dif;
  !h

let wrap ~dif (chan : Rina_sim.Chan.t) : Rina_sim.Chan.t =
  let tag = tag_of_dif dif in
  let stats = Rina_util.Metrics.create () in
  {
    Rina_sim.Chan.send =
      (fun frame ->
        Rina_util.Metrics.incr stats "tx";
        let out = Bytes.create (4 + Bytes.length frame) in
        Bytes.set_int32_be out 0 (Int32.of_int tag);
        Bytes.blit frame 0 out 4 (Bytes.length frame);
        chan.Rina_sim.Chan.send out);
    set_receiver =
      (fun f ->
        chan.Rina_sim.Chan.set_receiver (fun frame ->
            if
              Bytes.length frame >= 4
              && Int32.to_int (Bytes.get_int32_be frame 0) land 0xFFFFFFFF = tag
            then begin
              Rina_util.Metrics.incr stats "rx";
              f (Bytes.sub frame 4 (Bytes.length frame - 4))
            end
            else Rina_util.Metrics.incr stats "foreign_frames"));
    is_up = chan.Rina_sim.Chan.is_up;
    on_carrier = chan.Rina_sim.Chan.on_carrier;
    stats;
  }
