lib/core/policy.ml: Format Qos
