lib/core/dif.mli: Ipcp Policy Qos Rina_sim Types
