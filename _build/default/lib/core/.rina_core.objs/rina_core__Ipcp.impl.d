lib/core/ipcp.ml: Bytes Delimiting Efcp Hashtbl Lazy List Pdu Policy Printf Qos Rib Riep Rina_sim Rina_util Rmt Routing Sdu_protection String Types
