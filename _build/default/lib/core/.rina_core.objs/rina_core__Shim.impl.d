lib/core/shim.ml: Bytes Char Int32 Rina_sim Rina_util String
