lib/core/shim.mli: Rina_sim Types
