lib/core/ipcp.mli: Policy Qos Rib Rina_sim Rina_util Types
