lib/core/delimiting.mli:
