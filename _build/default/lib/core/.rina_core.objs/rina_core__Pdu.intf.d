lib/core/pdu.mli: Format Types
