lib/core/riep.ml: Format Printf Rib Rina_util
