lib/core/qos.ml: Format List Rina_util Types
