lib/core/rmt.ml: Array Bytes Hashtbl List Option Pdu Policy Queue Rina_sim Rina_util Sdu_protection Types
