lib/core/dif.ml: Bytes Char Ipcp List Policy Qos Rina_sim Rina_util String Types
