lib/core/rmt.mli: Pdu Policy Rina_sim Rina_util Types
