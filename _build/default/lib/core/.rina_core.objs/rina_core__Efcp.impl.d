lib/core/efcp.ml: Bytes Float Hashtbl Pdu Policy Printf Queue Rina_sim Rina_util Types
