lib/core/routing.ml: Format Hashtbl List Printf Rina_util String Types
