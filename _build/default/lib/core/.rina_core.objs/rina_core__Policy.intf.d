lib/core/policy.mli: Format Qos
