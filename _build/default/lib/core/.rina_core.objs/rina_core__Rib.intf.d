lib/core/rib.mli: Format Rina_util
