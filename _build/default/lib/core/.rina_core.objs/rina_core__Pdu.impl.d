lib/core/pdu.ml: Bytes Format Printf Rina_util Types
