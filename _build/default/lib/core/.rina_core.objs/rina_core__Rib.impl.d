lib/core/rib.ml: Bytes Format Hashtbl Int64 List Printf Rina_util String
