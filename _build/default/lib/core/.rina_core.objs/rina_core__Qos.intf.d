lib/core/qos.mli: Format Rina_util Types
