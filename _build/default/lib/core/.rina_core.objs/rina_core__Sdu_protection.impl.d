lib/core/sdu_protection.ml: Array Bytes Char Int32 Lazy
