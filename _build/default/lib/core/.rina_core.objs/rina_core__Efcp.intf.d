lib/core/efcp.mli: Pdu Policy Rina_sim Rina_util Types
