lib/core/routing.mli: Format Hashtbl Types
