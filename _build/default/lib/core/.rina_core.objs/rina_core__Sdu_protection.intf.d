lib/core/sdu_protection.mli:
