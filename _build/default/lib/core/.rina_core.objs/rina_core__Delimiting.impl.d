lib/core/delimiting.ml: Bytes Char List
