lib/core/riep.mli: Format Rib
