lib/core/types.ml: Format String
