lib/core/policy_lang.ml: Policy Printf String
