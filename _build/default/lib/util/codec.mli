(** Binary wire codecs.

    All RINA PDUs and RIEP messages are serialised to bytes with these
    big-endian writers and readers, so that layering is honest: an
    (N)-DIF hands the (N-1)-DIF an opaque byte string, exactly as the
    paper requires ("addresses are internal"; nothing structural leaks
    between layers). *)

(** Append-only byte writer. *)
module Writer : sig
  type t

  val create : unit -> t
  val length : t -> int
  val u8 : t -> int -> unit
  (** @raise Invalid_argument outside \[0, 255\]. *)

  val u16 : t -> int -> unit
  (** @raise Invalid_argument outside \[0, 65535\]. *)

  val u32 : t -> int -> unit
  (** @raise Invalid_argument if negative or above 2^32-1. *)

  val u64 : t -> int64 -> unit
  val f64 : t -> float -> unit
  val bool : t -> bool -> unit

  val bytes : t -> bytes -> unit
  (** Length-prefixed (u32) byte string. *)

  val string : t -> string -> unit
  (** Length-prefixed (u32) string. *)

  val raw : t -> bytes -> unit
  (** Append bytes with no length prefix. *)

  val contents : t -> bytes
end

(** Sequential byte reader; all functions raise [Decode_error] on
    truncated or malformed input. *)
module Reader : sig
  type t

  exception Decode_error of string

  val create : bytes -> t
  val remaining : t -> int
  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val u64 : t -> int64
  val f64 : t -> float
  val bool : t -> bool
  val bytes : t -> bytes
  val string : t -> string

  val raw : t -> int -> bytes
  (** [raw t n] reads exactly [n] bytes. *)

  val expect_end : t -> unit
  (** @raise Decode_error if input bytes remain. *)
end
