type t = {
  mutable samples : float array;
  mutable size : int;
  mutable sorted : bool;
  mutable sum : float;
}

let create () = { samples = [||]; size = 0; sorted = true; sum = 0. }

let add t x =
  if t.size = Array.length t.samples then begin
    let cap = max 16 (2 * Array.length t.samples) in
    let fresh = Array.make cap 0. in
    Array.blit t.samples 0 fresh 0 t.size;
    t.samples <- fresh
  end;
  t.samples.(t.size) <- x;
  t.size <- t.size + 1;
  t.sum <- t.sum +. x;
  t.sorted <- false

let count t = t.size

let total t = t.sum

let mean t = if t.size = 0 then nan else t.sum /. float_of_int t.size

let variance t =
  if t.size < 2 then nan
  else begin
    let m = mean t in
    let acc = ref 0. in
    for i = 0 to t.size - 1 do
      let d = t.samples.(i) -. m in
      acc := !acc +. (d *. d)
    done;
    !acc /. float_of_int (t.size - 1)
  end

let stddev t = sqrt (variance t)

let ensure_sorted t =
  if not t.sorted then begin
    let view = Array.sub t.samples 0 t.size in
    Array.sort compare view;
    Array.blit view 0 t.samples 0 t.size;
    t.sorted <- true
  end

let min_value t =
  if t.size = 0 then nan
  else begin
    ensure_sorted t;
    t.samples.(0)
  end

let max_value t =
  if t.size = 0 then nan
  else begin
    ensure_sorted t;
    t.samples.(t.size - 1)
  end

let percentile t p =
  if t.size = 0 then nan
  else begin
    ensure_sorted t;
    let p = if p < 0. then 0. else if p > 100. then 100. else p in
    let rank = p /. 100. *. float_of_int (t.size - 1) in
    let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
    if lo = hi then t.samples.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      (t.samples.(lo) *. (1. -. frac)) +. (t.samples.(hi) *. frac)
    end
  end

let median t = percentile t 50.

let summary t =
  if t.size = 0 then "n=0"
  else
    Printf.sprintf "n=%d mean=%.4g p50=%.4g p99=%.4g min=%.4g max=%.4g"
      t.size (mean t) (median t) (percentile t 99.) (min_value t) (max_value t)

module Welford = struct
  type w = { mutable n : int; mutable m : float; mutable m2 : float }

  let create () = { n = 0; m = 0.; m2 = 0. }

  let add w x =
    w.n <- w.n + 1;
    let delta = x -. w.m in
    w.m <- w.m +. (delta /. float_of_int w.n);
    w.m2 <- w.m2 +. (delta *. (x -. w.m))

  let count w = w.n
  let mean w = if w.n = 0 then nan else w.m
  let variance w = if w.n < 2 then nan else w.m2 /. float_of_int (w.n - 1)
end

module Histogram = struct
  type h = { lo : float; hi : float; counts : int array; mutable n : int }

  let create ~lo ~hi ~bins =
    if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
    if hi <= lo then invalid_arg "Histogram.create: hi must exceed lo";
    { lo; hi; counts = Array.make bins 0; n = 0 }

  let add h x =
    let bins = Array.length h.counts in
    let idx =
      int_of_float (float_of_int bins *. ((x -. h.lo) /. (h.hi -. h.lo)))
    in
    let idx = if idx < 0 then 0 else if idx >= bins then bins - 1 else idx in
    h.counts.(idx) <- h.counts.(idx) + 1;
    h.n <- h.n + 1

  let counts h = Array.copy h.counts

  let bin_edges h =
    let bins = Array.length h.counts in
    Array.init (bins + 1) (fun i ->
        h.lo +. (float_of_int i *. (h.hi -. h.lo) /. float_of_int bins))

  let total h = h.n
end
