(** Online statistics accumulators used by every experiment.

    [t] keeps all samples (experiments are laptop-scale) so that exact
    percentiles can be reported; [Welford] offers a constant-space
    alternative when only mean/variance are needed. *)

type t

val create : unit -> t

val add : t -> float -> unit
(** Record one sample. *)

val count : t -> int
val total : t -> float

val mean : t -> float
(** Arithmetic mean; [nan] when no samples were recorded. *)

val variance : t -> float
(** Unbiased sample variance; [nan] with fewer than two samples. *)

val stddev : t -> float

val min_value : t -> float
(** Smallest sample; [nan] when empty. *)

val max_value : t -> float
(** Largest sample; [nan] when empty. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in \[0,100\], by linear interpolation
    between closest ranks; [nan] when empty. *)

val median : t -> float

val summary : t -> string
(** One-line human-readable digest: n, mean, p50, p99, min, max. *)

(** Constant-space mean/variance accumulator (Welford's algorithm). *)
module Welford : sig
  type w

  val create : unit -> w
  val add : w -> float -> unit
  val count : w -> int
  val mean : w -> float
  val variance : w -> float
end

(** Fixed-bin histogram over a closed range. *)
module Histogram : sig
  type h

  val create : lo:float -> hi:float -> bins:int -> h
  (** @raise Invalid_argument if [bins <= 0] or [hi <= lo]. *)

  val add : h -> float -> unit
  (** Samples outside \[lo, hi\] are clamped into the edge bins. *)

  val counts : h -> int array
  val bin_edges : h -> float array
  val total : h -> int
end
