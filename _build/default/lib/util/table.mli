(** Plain-text result tables.

    Every experiment in [bench/] prints its rows through this module so
    that the output EXPERIMENTS.md references has a single, aligned
    format. *)

type t

val create : title:string -> columns:string list -> t
(** A table with a caption and column headers. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the header. *)

val add_rowf : t -> ('a, unit, string, unit) format4 -> 'a
(** [add_rowf t fmt ...] formats a single string and splits it on ['|']
    into cells — convenient for numeric rows. *)

val render : t -> string
(** The table as an aligned ASCII string, ending with a newline. *)

val print : t -> unit
(** [render] to stdout. *)
