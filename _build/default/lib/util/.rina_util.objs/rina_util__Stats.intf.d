lib/util/stats.mli:
