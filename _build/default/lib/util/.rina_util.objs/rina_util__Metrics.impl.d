lib/util/metrics.ml: Format Hashtbl List Stdlib String
