lib/util/table.mli:
