lib/util/token_bucket.ml: Float
