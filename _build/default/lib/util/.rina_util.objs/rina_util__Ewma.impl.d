lib/util/ewma.ml:
