lib/util/codec.mli:
