lib/util/prng.mli:
