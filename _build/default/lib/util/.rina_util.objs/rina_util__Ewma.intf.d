lib/util/ewma.mli:
