lib/util/heap.mli:
