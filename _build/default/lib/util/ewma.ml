type t = { alpha : float; mutable value : float; mutable initialized : bool }

let create ~alpha =
  if alpha <= 0. || alpha > 1. then invalid_arg "Ewma.create: alpha not in (0,1]";
  { alpha; value = nan; initialized = false }

let add t x =
  if t.initialized then t.value <- ((1. -. t.alpha) *. t.value) +. (t.alpha *. x)
  else begin
    t.value <- x;
    t.initialized <- true
  end

let value t = t.value

let initialized t = t.initialized
