type 'a entry = { key : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

let length h = h.size

let is_empty h = h.size = 0

(* [a] sorts before [b] if its key is smaller, or on equal keys if it
   was inserted earlier — this gives FIFO semantics for simultaneous
   events, which keeps simulations deterministic. *)
let before a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow h =
  let cap = Array.length h.data in
  let new_cap = if cap = 0 then 16 else cap * 2 in
  let dummy = h.data.(0) in
  let data = Array.make new_cap dummy in
  Array.blit h.data 0 data 0 h.size;
  h.data <- data

let push h key value =
  let entry = { key; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  if h.size = 0 && Array.length h.data = 0 then h.data <- Array.make 16 entry;
  if h.size = Array.length h.data then grow h;
  h.data.(h.size) <- entry;
  h.size <- h.size + 1;
  (* Sift up. *)
  let i = ref (h.size - 1) in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before h.data.(!i) h.data.(parent) then begin
      let tmp = h.data.(parent) in
      h.data.(parent) <- h.data.(!i);
      h.data.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let sift_down h =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < h.size && before h.data.(l) h.data.(!smallest) then smallest := l;
    if r < h.size && before h.data.(r) h.data.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      let tmp = h.data.(!smallest) in
      h.data.(!smallest) <- h.data.(!i);
      h.data.(!i) <- tmp;
      i := !smallest
    end
    else continue := false
  done

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h
    end;
    Some (top.key, top.value)
  end

let peek h = if h.size = 0 then None else Some (h.data.(0).key, h.data.(0).value)

let clear h =
  h.size <- 0;
  h.data <- [||]
