(** Exponentially-weighted moving average, used for RTT estimation in
    EFCP/TCP and for load monitoring in schedulers. *)

type t

val create : alpha:float -> t
(** [alpha] is the weight of a new sample, in (0, 1\].
    @raise Invalid_argument outside that range. *)

val add : t -> float -> unit
(** Fold one sample in; the first sample initialises the average. *)

val value : t -> float
(** Current average; [nan] before the first sample. *)

val initialized : t -> bool
