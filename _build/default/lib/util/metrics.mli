(** Named counters grouped in registries.

    Components (EFCP instances, routers, schedulers) increment counters
    through a registry; experiments read them afterwards to report
    message overheads, retransmission counts, update scopes, etc. *)

type t
(** A registry of named integer counters. *)

val create : unit -> t

val incr : t -> string -> unit
(** Increment by one, creating the counter at zero if needed. *)

val add : t -> string -> int -> unit
(** Add an arbitrary (possibly negative) amount. *)

val get : t -> string -> int
(** Current value; 0 for a counter never touched. *)

val reset : t -> unit
(** Zero every counter but keep the names registered. *)

val to_list : t -> (string * int) list
(** All counters, sorted by name. *)

val pp : Format.formatter -> t -> unit
