module Writer = struct
  type t = Buffer.t

  let create () = Buffer.create 64

  let length = Buffer.length

  let u8 t v =
    if v < 0 || v > 0xFF then invalid_arg "Codec.Writer.u8: out of range";
    Buffer.add_char t (Char.chr v)

  let u16 t v =
    if v < 0 || v > 0xFFFF then invalid_arg "Codec.Writer.u16: out of range";
    Buffer.add_uint16_be t v

  let u32 t v =
    if v < 0 || v > 0xFFFFFFFF then invalid_arg "Codec.Writer.u32: out of range";
    Buffer.add_int32_be t (Int32.of_int v)

  let u64 t v = Buffer.add_int64_be t v

  let f64 t v = u64 t (Int64.bits_of_float v)

  let bool t v = u8 t (if v then 1 else 0)

  let bytes t b =
    u32 t (Bytes.length b);
    Buffer.add_bytes t b

  let string t s =
    u32 t (String.length s);
    Buffer.add_string t s

  let raw t b = Buffer.add_bytes t b

  let contents t = Buffer.to_bytes t
end

module Reader = struct
  type t = { data : bytes; mutable pos : int }

  exception Decode_error of string

  let create data = { data; pos = 0 }

  let remaining t = Bytes.length t.data - t.pos

  let need t n what =
    if remaining t < n then
      raise (Decode_error (Printf.sprintf "truncated input reading %s" what))

  let u8 t =
    need t 1 "u8";
    let v = Char.code (Bytes.get t.data t.pos) in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    need t 2 "u16";
    let v = Bytes.get_uint16_be t.data t.pos in
    t.pos <- t.pos + 2;
    v

  let u32 t =
    need t 4 "u32";
    let v = Int32.to_int (Bytes.get_int32_be t.data t.pos) land 0xFFFFFFFF in
    t.pos <- t.pos + 4;
    v

  let u64 t =
    need t 8 "u64";
    let v = Bytes.get_int64_be t.data t.pos in
    t.pos <- t.pos + 8;
    v

  let f64 t = Int64.float_of_bits (u64 t)

  let bool t =
    match u8 t with
    | 0 -> false
    | 1 -> true
    | n -> raise (Decode_error (Printf.sprintf "invalid boolean byte %d" n))

  let raw t n =
    need t n "raw bytes";
    let b = Bytes.sub t.data t.pos n in
    t.pos <- t.pos + n;
    b

  let bytes t =
    let n = u32 t in
    raw t n

  let string t = Bytes.to_string (bytes t)

  let expect_end t =
    if remaining t <> 0 then
      raise
        (Decode_error (Printf.sprintf "%d trailing bytes after message" (remaining t)))
end
