(** Token-bucket rate limiter used by QoS policing in the RMT.

    Time is supplied by the caller (the simulator's virtual clock), so
    the bucket itself is clock-agnostic. *)

type t

val create : rate:float -> burst:float -> t
(** [rate] tokens per second refill, capacity [burst] tokens.
    @raise Invalid_argument if either is non-positive. *)

val try_take : t -> now:float -> float -> bool
(** [try_take t ~now n] consumes [n] tokens if available after
    refilling up to [now]; returns whether the take succeeded. *)

val available : t -> now:float -> float
(** Tokens available at [now] (refill applied, nothing consumed). *)
