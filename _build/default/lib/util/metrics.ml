type t = (string, int ref) Hashtbl.t

let create () = Hashtbl.create 16

let find t name =
  match Hashtbl.find_opt t name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t name r;
    r

let incr t name = Stdlib.incr (find t name)

let add t name n =
  let r = find t name in
  r := !r + n

let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

let reset t = Hashtbl.iter (fun _ r -> r := 0) t

let to_list t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp fmt t =
  List.iter (fun (name, v) -> Format.fprintf fmt "%s=%d@ " name v) (to_list t)
