(** Binary min-heap keyed by a float priority, with stable tie-breaking.

    The discrete-event engine needs: O(log n) insert / pop-min, and
    deterministic ordering when two events share the same timestamp
    (ties are broken by insertion order).  Entries carry an arbitrary
    payload. *)

type 'a t

val create : unit -> 'a t
(** Fresh empty heap. *)

val length : 'a t -> int
(** Number of entries currently stored. *)

val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push h key v] inserts [v] with priority [key]. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum entry, or [None] if empty.  Among
    equal keys, the entry pushed first is returned first. *)

val peek : 'a t -> (float * 'a) option
(** Minimum entry without removing it. *)

val clear : 'a t -> unit
(** Drop all entries. *)
