(* rina_demo — command-line driver for ad-hoc IPC-model scenarios.

   Subcommands:
     transfer   run a bulk transfer across a line of IPC processes
     policy     validate and echo a declarative policy specification
     inventory  build a 3-rank recursive stack and print the layers

   Examples:
     rina_demo transfer --nodes 4 --loss 0.05 --count 200 --qos reliable
     rina_demo policy --spec examples/policies/wifi.ini
     rina_demo inventory *)

open Cmdliner

module Engine = Rina_sim.Engine
module Ipcp = Rina_core.Ipcp
module Topo = Rina_exp.Topo
module Scenario = Rina_exp.Scenario
module Workload = Rina_exp.Workload

(* ---------- transfer ---------- *)

let run_transfer nodes loss count size qos_name policy_file seed =
  let policy =
    match policy_file with
    | None -> Ok Rina_core.Policy.default
    | Some path -> (
      try Rina_core.Policy_lang.parse (In_channel.with_open_text path In_channel.input_all)
      with Sys_error e -> Error e)
  in
  match policy with
  | Error e ->
    Printf.eprintf "policy error: %s\n" e;
    1
  | Ok policy ->
    let qos_id =
      match qos_name with
      | "reliable" -> Rina_core.Qos.reliable.Rina_core.Qos.id
      | "best-effort" -> Rina_core.Qos.best_effort.Rina_core.Qos.id
      | "low-latency" -> Rina_core.Qos.low_latency.Rina_core.Qos.id
      | "gold" -> Rina_core.Qos.gold.Rina_core.Qos.id
      | other ->
        Printf.eprintf "unknown qos %S, using best-effort\n" other;
        0
    in
    let loss_model =
      if loss <= 0. then Rina_sim.Loss.No_loss else Rina_sim.Loss.Bernoulli loss
    in
    Printf.printf "building a %d-node DIF (loss %.1f%%, policy %s)...\n" nodes
      (100. *. loss)
      (match policy_file with Some f -> f | None -> "default");
    let net = Topo.line ~seed ~policy ~loss:loss_model ~n:nodes () in
    Printf.printf "converged at t=%.2fs; addresses:" (Engine.now net.Topo.engine);
    Array.iter (fun m -> Printf.printf " %d" (Ipcp.address m)) net.Topo.nodes;
    print_newline ();
    let sink = Workload.sink () in
    (match Scenario.open_flow net ~src:0 ~dst:(nodes - 1) ~qos_id ~sink () with
     | Error e ->
       Printf.eprintf "allocation failed: %s\n" e;
       1
     | Ok (flow, alloc_latency) ->
       Printf.printf "flow allocated in %.1f ms (port %d, qos %s)\n"
         (1000. *. alloc_latency) flow.Ipcp.port_id flow.Ipcp.qos.Rina_core.Qos.name;
       let t0 = Engine.now net.Topo.engine in
       Workload.bulk ~send:flow.Ipcp.send ~now:t0 ~count ~size;
       Topo.wait net.Topo.engine 120.;
       let t1 = sink.Workload.last_arrival in
       Printf.printf
         "delivered %d/%d SDUs, goodput %.2f Mb/s, latency p50 %.1f ms p99 %.1f ms\n"
         sink.Workload.count count
         (Workload.goodput sink ~t0 ~t1 /. 1e6)
         (1000. *. Rina_util.Stats.median sink.Workload.received)
         (1000. *. Rina_util.Stats.percentile sink.Workload.received 99.);
       let m = flow.Ipcp.flow_metrics () in
       Printf.printf "sender: %s\n"
         (String.concat " "
            (List.map
               (fun (k, v) -> Printf.sprintf "%s=%d" k v)
               (Rina_util.Metrics.to_list m)));
       0)

let transfer_cmd =
  let nodes =
    Arg.(value & opt int 3 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"IPC processes in the line.")
  in
  let loss =
    Arg.(value & opt float 0. & info [ "loss" ] ~docv:"P" ~doc:"Per-link loss probability.")
  in
  let count = Arg.(value & opt int 100 & info [ "count" ] ~doc:"SDUs to transfer.") in
  let size = Arg.(value & opt int 1200 & info [ "size" ] ~doc:"SDU size in bytes.") in
  let qos =
    Arg.(value & opt string "reliable"
         & info [ "qos" ] ~doc:"QoS cube: reliable, best-effort, low-latency, gold.")
  in
  let policy =
    Arg.(value & opt (some file) None
         & info [ "policy" ] ~docv:"FILE" ~doc:"Declarative policy spec for the DIF.")
  in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"PRNG seed.") in
  Cmd.v
    (Cmd.info "transfer" ~doc:"Bulk transfer across a line-topology DIF")
    Term.(const run_transfer $ nodes $ loss $ count $ size $ qos $ policy $ seed)

(* ---------- policy ---------- *)

let run_policy spec_file inline =
  let text =
    match (spec_file, inline) with
    | Some path, _ -> (
      try Ok (In_channel.with_open_text path In_channel.input_all)
      with Sys_error e -> Error e)
    | None, Some s -> Ok s
    | None, None -> Error "provide --spec FILE or --inline TEXT"
  in
  match text with
  | Error e ->
    Printf.eprintf "%s\n" e;
    2
  | Ok text -> (
    match Rina_core.Policy_lang.parse text with
    | Error e ->
      Printf.eprintf "invalid policy: %s\n" e;
      1
    | Ok p ->
      print_string (Rina_core.Policy_lang.to_string p);
      0)

let policy_cmd =
  let spec =
    Arg.(value & opt (some file) None & info [ "spec" ] ~docv:"FILE" ~doc:"Spec file.")
  in
  let inline =
    Arg.(value & opt (some string) None & info [ "inline" ] ~docv:"TEXT" ~doc:"Spec text.")
  in
  Cmd.v
    (Cmd.info "policy" ~doc:"Validate a declarative policy spec and print its resolution")
    Term.(const run_policy $ spec $ inline)

(* ---------- inventory ---------- *)

let run_inventory () =
  let engine = Engine.create () in
  let rng = Rina_util.Prng.create 11 in
  let link_dif name =
    let link = Rina_sim.Link.create engine rng ~bit_rate:50_000_000. ~delay:0.002 () in
    let dif = Rina_core.Dif.create engine name in
    let a = Rina_core.Dif.add_member dif ~name:(name ^ ".a") () in
    let b = Rina_core.Dif.add_member dif ~name:(name ^ ".b") () in
    Rina_core.Dif.connect dif a b
      ( Rina_core.Shim.wrap ~dif:name (Rina_sim.Link.endpoint_a link),
        Rina_core.Shim.wrap ~dif:name (Rina_sim.Link.endpoint_b link) );
    Rina_core.Dif.run_until_converged dif ();
    (dif, a, b)
  in
  let w1, a1, b1 = link_dif "wire1" in
  let w2, a2, b2 = link_dif "wire2" in
  let mid = Rina_core.Dif.create engine "metro" in
  let m1 = Rina_core.Dif.add_member mid ~name:"m.h1" () in
  let m2 = Rina_core.Dif.add_member mid ~name:"m.r" () in
  let m3 = Rina_core.Dif.add_member mid ~name:"m.h2" () in
  Rina_core.Dif.stack_connect ~lower_a:a1 ~lower_b:b1 ~upper_a:m1 ~upper_b:m2 ();
  Rina_core.Dif.stack_connect ~lower_a:a2 ~lower_b:b2 ~upper_a:m2 ~upper_b:m3 ();
  Rina_core.Dif.run_until_converged mid ~max_time:60. ();
  List.iter
    (fun (rank, dif) ->
      Printf.printf "rank %d  %-8s scope=%d:" rank (Rina_core.Dif.name dif)
        (List.length (Rina_core.Dif.members dif));
      List.iter
        (fun m ->
          Printf.printf " %s@%d"
            (Rina_core.Types.apn_to_string (Ipcp.name m))
            (Ipcp.address m))
        (Rina_core.Dif.members dif);
      print_newline ())
    [ (1, w1); (1, w2); (2, mid) ];
  0

let inventory_cmd =
  Cmd.v
    (Cmd.info "inventory" ~doc:"Build a 2-rank recursive stack and print the layers")
    Term.(const run_inventory $ const ())

let () =
  let doc = "scenario driver for the 'networking is IPC' library" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "rina_demo" ~version:"1.0.0" ~doc)
          [ transfer_cmd; policy_cmd; inventory_cmd ]))
