(* rina_lint — static analyzer for declarative policy specs.

   Lints one or more spec files with Rina_check.Lint and prints every
   finding as  FILE:LINE: severity[CODE] message (hint: ...).

   Exit status: 0 all files clean (warnings allowed), 1 at least one
   error-severity finding (or any finding under --strict), 2 a file
   could not be read.  CI-friendly:

     rina_lint examples/policies/*.ini

   Topology-aware rules (L2xx) activate when the target network is
   described:

     rina_lint --diameter 5 --bit-rate 1e7 --rtt 0.08 dif.ini *)

open Cmdliner

let lint_file ~topo ~strict ~quiet path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e ->
    Printf.eprintf "%s\n" e;
    `Io_error
  | text ->
    let diags = Rina_check.Lint.lint ?topo text in
    List.iter
      (fun (d : Rina_check.Diag.t) ->
        if not quiet then
          let open Rina_check.Diag in
          let hint = match d.hint with None -> "" | Some h -> "\n    hint: " ^ h in
          Printf.printf "%s:%d: %s[%s] %s%s\n" path d.line
            (severity_to_string d.severity)
            d.code d.message hint)
      diags;
    if
      Rina_check.Diag.has_errors diags
      || (strict && diags <> [])
    then `Findings
    else if diags <> [] then `Warnings
    else `Clean

let run files diameter bit_rate rtt strict quiet =
  let topo =
    match (diameter, bit_rate, rtt) with
    | Some diameter, Some bottleneck_bit_rate, Some rtt ->
      Some { Rina_check.Lint.diameter; bottleneck_bit_rate; rtt }
    | None, None, None -> None
    | _ ->
      Printf.eprintf
        "topology-aware linting needs all of --diameter, --bit-rate and --rtt\n";
      exit 2
  in
  let results = List.map (lint_file ~topo ~strict ~quiet) files in
  let count p = List.length (List.filter p results) in
  let io = count (( = ) `Io_error)
  and bad = count (( = ) `Findings)
  and warned = count (( = ) `Warnings) in
  if not quiet then
    Printf.printf "%d file(s) checked, %d with findings\n" (List.length files)
      (bad + warned + io);
  if io > 0 then 2 else if bad > 0 then 1 else 0

let cmd =
  let files =
    Arg.(
      non_empty & pos_all string [] & info [] ~docv:"SPEC" ~doc:"Policy spec file(s).")
  in
  let diameter =
    Arg.(value & opt (some int) None
         & info [ "diameter" ] ~docv:"HOPS"
             ~doc:"Topology diameter in hops (enables rule L201).")
  in
  let bit_rate =
    Arg.(value & opt (some float) None
         & info [ "bit-rate" ] ~docv:"BPS"
             ~doc:"Bottleneck link rate in bits/second (enables rule L202).")
  in
  let rtt =
    Arg.(value & opt (some float) None
         & info [ "rtt" ] ~docv:"SECONDS" ~doc:"Path round-trip time in seconds.")
  in
  let strict =
    Arg.(value & flag & info [ "strict" ] ~doc:"Treat warnings as errors.")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Print nothing; exit status only.")
  in
  Cmd.v
    (Cmd.info "rina_lint" ~version:"1.0.0"
       ~doc:"Lint declarative policy specs for structural and consistency bugs")
    Term.(const run $ files $ diameter $ bit_rate $ rtt $ strict $ quiet)

let () = exit (Cmd.eval' cmd)
