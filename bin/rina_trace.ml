(* rina_trace — offline analyzer for flight-recorder traces.

   Reads a JSONL trace (written by Rina_sim.Trace.save_jsonl, or by any
   experiment run with RINA_TRACE=file set) and prints the sections
   requested: per-flow latency percentiles, drop breakdowns by reason,
   queue-occupancy timelines from the periodic probes, the largest
   delivery gap (the handoff interruption window), and a text sequence
   diagram of the first few per-PDU spans.  With no section flag, the
   summary is printed.

     rina_trace trace.jsonl
     rina_trace --latency --drops trace.jsonl
     rina_trace --gap --component efcp trace.jsonl
     rina_trace --faults trace.jsonl
     rina_trace --seq 3 trace.jsonl

   Exit status: 0 on success, 2 if the trace cannot be read or
   parsed. *)

open Cmdliner
module Flight = Rina_util.Flight
module Stats = Rina_util.Stats
module Report = Rina_check.Trace_report

let ms t = 1000. *. t

let print_latency events =
  match Report.latency_by_flow events with
  | [] -> print_string "latency: no completed spans\n"
  | flows ->
    print_string "latency (per flow, ms):\n";
    Printf.printf "  %-12s %6s %8s %8s %8s %8s %8s\n" "flow" "n" "mean"
      "p50" "p95" "p99" "max";
    List.iter
      (fun (flow, st) ->
        Printf.printf "  %-12d %6d %8.3f %8.3f %8.3f %8.3f %8.3f\n" flow
          (Stats.count st) (ms (Stats.mean st))
          (ms (Stats.percentile st 50.))
          (ms (Stats.percentile st 95.))
          (ms (Stats.percentile st 99.))
          (ms (Stats.max_value st)))
      flows

let print_drops events =
  match Report.drop_breakdown events with
  | [] -> print_string "drops: none\n"
  | drops ->
    print_string "drops by reason:\n";
    List.iter (fun (reason, n) -> Printf.printf "  %-16s %d\n" reason n) drops

let print_queues events =
  match Report.queue_timeline events with
  | [] -> print_string "queues: no probe samples\n"
  | probes ->
    print_string "queue/window occupancy (probe samples):\n";
    List.iter
      (fun (name, samples) ->
        let peak = List.fold_left (fun m (_, v) -> max m v) 0 samples in
        Printf.printf "  %s: %d samples, peak %d\n" name
          (List.length samples) peak;
        List.iter
          (fun (t, v) -> Printf.printf "    %12.6f  %d\n" t v)
          samples)
      probes

let print_gap component events =
  match Report.delivery_gap ?component events with
  | None -> print_string "gap: fewer than two deliveries\n"
  | Some (gap, start) ->
    Printf.printf "largest delivery gap: %.6f s starting at t=%.6f%s\n" gap
      start
      (match component with
      | None -> ""
      | Some c -> Printf.sprintf " (components %s*)" c)

let print_faults component rank events =
  match Report.blackouts ?component ?rank events with
  | [] -> print_string "faults: none injected\n"
  | faults ->
    print_string "fault blackout windows:\n";
    Printf.printf "  %-24s %12s %12s\n" "fault" "t" "blackout";
    List.iter
      (fun (label, t, gap) ->
        match gap with
        | Some g -> Printf.printf "  %-24s %12.6f %10.3f s\n" label t g
        | None ->
          Printf.printf "  %-24s %12.6f %12s\n" label t "UNRECOVERED")
      faults

let run file latency drops queues gap faults seq component rank =
  match Rina_sim.Trace.load_jsonl file with
  | Error e ->
    Printf.eprintf "rina_trace: %s\n" e;
    2
  | Ok events ->
    let any = latency || drops || queues || gap || faults || seq <> None in
    if not any then print_string (Report.summary events)
    else (
      (* the summary prints its own sampling note; section views get
         one line so sampled counts are not misread as totals *)
      match Report.sample_ppm events with
      | Some ppm when ppm > 0 && ppm < 1_000_000 ->
        Printf.printf
          "note: trace head-sampled at %g%% of spans; span-derived counts are \
           samples\n"
          (float_of_int ppm /. 10_000.)
      | Some _ | None -> ());
    if latency then print_latency events;
    if drops then print_drops events;
    if queues then print_queues events;
    if gap then print_gap component events;
    if faults then print_faults component rank events;
    (match seq with
    | Some n -> print_string (Report.sequence_diagram ~max_spans:n events)
    | None -> ());
    0

let cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE" ~doc:"JSONL trace file.")
  in
  let latency =
    Arg.(value & flag
         & info [ "latency" ] ~doc:"Per-flow one-way delay percentiles.")
  in
  let drops =
    Arg.(value & flag & info [ "drops" ] ~doc:"Drop counts by reason.")
  in
  let queues =
    Arg.(value & flag
         & info [ "queues" ] ~doc:"Queue/window occupancy timelines from probes.")
  in
  let gap =
    Arg.(value & flag
         & info [ "gap" ]
             ~doc:"Largest gap between consecutive deliveries (interruption \
                   window).")
  in
  let faults =
    Arg.(value & flag
         & info [ "faults" ]
             ~doc:"Per-fault blackout windows: time from the last \
                   delivery before each injected fault to the first \
                   delivery after it.")
  in
  let seq =
    Arg.(value & opt (some int) None
         & info [ "seq" ] ~docv:"N"
             ~doc:"Sequence diagram of the first $(docv) per-PDU spans.")
  in
  let component =
    Arg.(value & opt (some string) None
         & info [ "component" ] ~docv:"PREFIX"
             ~doc:"Restrict --gap and --faults to components starting \
                   with $(docv).")
  in
  let rank =
    Arg.(value & opt (some int) None
         & info [ "rank" ] ~docv:"N"
             ~doc:"Restrict --faults to deliveries of DIF rank $(docv) \
                   — in a stacked run, lower DIFs keep delivering \
                   through a higher-level outage.")
  in
  Cmd.v
    (Cmd.info "rina_trace" ~version:"1.0.0"
       ~doc:"Analyze flight-recorder traces (latency, drops, queues, gaps)")
    Term.(
      const run $ file $ latency $ drops $ queues $ gap $ faults $ seq
      $ component $ rank)

let () = exit (Cmd.eval' cmd)
