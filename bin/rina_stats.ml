(* rina_stats — render telemetry stats files.

   Reads the canonical JSONL a Telemetry registry exports
   (Rina_exp.Obs.write_stats, or any experiment run with
   RINA_STATS=file set) and prints counters, the live snapshot series,
   histogram quantiles and per-series timelines.

     rina_stats run.stats.jsonl
     rina_stats --json run.stats.jsonl     # canonical re-emit

   Because the export is canonical (fixed line order, canonical number
   formatting), `rina_stats --json` is also a normalizer: two stats
   files describe the same run iff the --json outputs are identical.

   Exit status: 0 on success, 2 if the file cannot be read or parsed. *)

open Cmdliner
module Telemetry = Rina_util.Telemetry
module Sketch = Rina_util.Sketch

let print_counters t =
  print_string "counters:\n";
  List.iter
    (fun name ->
      let n = Telemetry.counter t name in
      if n <> 0 || name = "events" then Printf.printf "  %-18s %d\n" name n)
    (Telemetry.counter_names t)

let print_snapshots t =
  match Telemetry.snapshots t with
  | [] -> ()
  | snaps ->
    Printf.printf "snapshots (%d intervals):\n" (List.length snaps);
    Printf.printf "  %10s %10s %8s %8s %8s\n" "t" "events" "sent" "recvd" "drop";
    List.iter
      (fun (s : Telemetry.snapshot) ->
        Printf.printf "  %10.3f %10d %8d %8d %8d\n" s.Telemetry.at
          s.Telemetry.events s.Telemetry.sent s.Telemetry.recvd
          s.Telemetry.dropped)
      snaps

(* Latency sketches hold seconds; probe and custom sketches hold raw
   sample values.  Scale only the former to ms. *)
let hist_scale name = if String.length name >= 7 && String.sub name 0 7 = "latency" then 1000. else 1.

let hist_unit name = if hist_scale name = 1000. then " (ms)" else ""

let print_hists t =
  match Telemetry.hist_names t with
  | [] -> ()
  | names ->
    print_string "distributions:\n";
    Printf.printf "  %-24s %8s %8s %8s %8s %8s\n" "sketch" "n" "p50" "p90"
      "p99" "max";
    List.iter
      (fun name ->
        match Telemetry.hist t name with
        | None -> ()
        | Some h ->
          let k = hist_scale name in
          let q p = k *. Sketch.Hist.quantile h p in
          Printf.printf "  %-24s %8d %8.3f %8.3f %8.3f %8.3f\n"
            (name ^ hist_unit name)
            (Sketch.Hist.count h) (q 0.5) (q 0.9) (q 0.99)
            (k *. Sketch.Hist.max_value h))
      names

let print_series t =
  match Telemetry.series_names t with
  | [] -> ()
  | names ->
    print_string "time series (per-interval counts):\n";
    List.iter
      (fun name ->
        match Telemetry.series t name with
        | None -> ()
        | Some s ->
          let w = Sketch.Series.bucket_width s in
          let counts = Sketch.Series.counts s in
          let peak =
            List.fold_left (fun (bi, bn) (i, n) -> if n > bn then (i, n) else (bi, bn))
              (0, 0) counts
          in
          Printf.printf "  %-24s total %-8d peak %d at t=[%g, %g)\n" name
            (Sketch.Series.total s) (snd peak)
            (float_of_int (fst peak) *. w)
            (float_of_int (fst peak + 1) *. w))
      names

let run file json =
  match Telemetry.load_jsonl file with
  | Error e ->
    Printf.eprintf "rina_stats: %s\n" e;
    2
  | Ok t ->
    if json then print_string (Telemetry.to_jsonl t)
    else begin
      if Telemetry.latency_ppm t < 1_000_000 then
        Printf.printf
          "note: span latency head-sampled at %g%% (counters and series are \
           exact)\n"
          (float_of_int (Telemetry.latency_ppm t) /. 10_000.);
      print_counters t;
      print_snapshots t;
      print_hists t;
      print_series t
    end;
    0

let cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"STATS" ~doc:"Telemetry stats file (JSONL).")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Re-emit the canonical JSONL instead of the text view.")
  in
  Cmd.v
    (Cmd.info "rina_stats" ~version:"1.0.0"
       ~doc:"Render streaming-telemetry stats (counters, snapshots, sketches)")
    Term.(const run $ file $ json)

let () = exit (Cmd.eval' cmd)
