(* rina_verify — whole-topology static verification.

   Runs every Rina_check.Verify analysis over named scenario models
   (the registry in Rina_exp.Topo mirroring the shipped examples), and
   optionally lints policy spec files into the same finding stream.

     rina_verify                          # verify every scenario
     rina_verify recursive-internet       # just one
     rina_verify --list                   # what's in the registry
     rina_verify --policy examples/policies/reliable.ini
     rina_verify --race-sweep             # domain-race sanitizer pass

   Exit status: 0 clean (warnings allowed), 1 at least one
   error-severity finding (or any finding under --strict), 2 an
   unknown scenario or unreadable policy file. *)

open Cmdliner
module Diag = Rina_check.Diag
module Verify = Rina_check.Verify
module Topo = Rina_exp.Topo

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let diag_json (d : Diag.t) =
  Printf.sprintf
    "{\"code\":\"%s\",\"severity\":\"%s\",\"line\":%d,\"message\":\"%s\"%s}"
    (json_escape d.code)
    (Diag.severity_to_string d.severity)
    d.line (json_escape d.message)
    (match d.hint with
     | None -> ""
     | Some h -> Printf.sprintf ",\"hint\":\"%s\"" (json_escape h))

let summary_json (s : Verify.summary) =
  Printf.sprintf
    "{\"difs\":%d,\"members\":%d,\"adjacencies\":%d,\"intents\":%d,\
     \"support_depth\":%d,\"cross_shard_edges\":%d%s}"
    s.n_difs s.n_members s.n_adjacencies s.n_intents s.support_depth
    s.cross_shard_edges
    (match s.lookahead with
     | None -> ""
     | Some l -> Printf.sprintf ",\"lookahead\":%g" l)

let print_diag d = Printf.printf "  %s\n" (Diag.to_string d)

let print_summary (s : Verify.summary) =
  Printf.printf
    "  %d DIF(s), %d member(s), %d adjacenc%s, %d intent(s), support depth %d\n"
    s.n_difs s.n_members s.n_adjacencies
    (if s.n_adjacencies = 1 then "y" else "ies")
    s.n_intents s.support_depth;
  if s.cross_shard_edges > 0 then
    Printf.printf "  %d cross-shard edge(s), conservative lookahead %s\n"
      s.cross_shard_edges
      (match s.lookahead with
       | Some l -> Printf.sprintf "%g s" l
       | None -> "n/a")

let race_sweep () =
  (* A small domain-parallel sweep with every Par annotation armed:
     the fork/join structure, the atomic work counter, the result
     slots AND the per-domain telemetry shards (each worker records
     into its private registry; the merge path back to the parent
     carries its own Race cells) are all checked for happens-before
     races. *)
  let module Telemetry = Rina_util.Telemetry in
  Rina_check.Sanitizer.Race.arm ();
  let items = Array.init 64 (fun i -> i) in
  let out, merged =
    Rina_exp.Par.map_telemetry ~domains:4
      (fun i ->
        (match Telemetry.current () with
         | Some t ->
           Telemetry.count t "work";
           Telemetry.add_sample t "hash" (float_of_int ((i * 2654435761) land 0xffff))
         | None -> ());
        (i * 2654435761) land 0xffff)
      items
  in
  let diags = Rina_check.Sanitizer.Race.diags () in
  Rina_check.Sanitizer.Race.disarm ();
  (* the merge is exact, so a lost shard update is a hard failure even
     if no race was observed *)
  let diags =
    let work = Telemetry.counter merged "work" in
    if work <> Array.length items then
      Diag.error ~line:0 "SAN_SHARD_MERGE"
        (Printf.sprintf
           "telemetry shard merge lost updates: %d recorded, %d expected" work
           (Array.length items))
      :: diags
    else diags
  in
  (Array.length out, diags)

let run names list_only policies json strict quiet sweep max_depth =
  let registry = Topo.scenarios () in
  if list_only then begin
    List.iter (fun (n, _) -> print_endline n) registry;
    0
  end
  else begin
    let unknown =
      List.filter (fun n -> not (List.mem_assoc n registry)) names
    in
    List.iter (Printf.eprintf "unknown scenario %S (try --list)\n") unknown;
    if unknown <> [] then 2
    else begin
      let chosen =
        match names with
        | [] -> registry
        | ns -> List.map (fun n -> (n, List.assoc n registry)) ns
      in
      let scenario_results =
        List.map
          (fun (name, model) ->
            let r = Verify.verify ~max_depth model in
            if not (quiet || json) then begin
              Printf.printf "scenario %s:\n" name;
              print_summary r.summary;
              List.iter print_diag r.diags
            end;
            (name, r))
          chosen
      in
      let policy_results =
        List.map
          (fun path ->
            match In_channel.with_open_text path In_channel.input_all with
            | exception Sys_error e ->
              Printf.eprintf "%s\n" e;
              (path, None)
            | text ->
              let diags = Rina_check.Lint.lint text in
              if not (quiet || json) then begin
                Printf.printf "policy %s:\n" path;
                List.iter print_diag diags
              end;
              (path, Some diags))
          policies
      in
      let race_diags =
        if sweep then begin
          let n, diags = race_sweep () in
          if not (quiet || json) then begin
            Printf.printf "race sweep (%d items across 4 domains):\n" n;
            List.iter print_diag diags;
            if diags = [] then Printf.printf "  no races\n"
          end;
          Some diags
        end
        else None
      in
      if json then begin
        let scen =
          List.map
            (fun (name, (r : Verify.report)) ->
              Printf.sprintf "{\"name\":\"%s\",\"summary\":%s,\"diags\":[%s]}"
                (json_escape name) (summary_json r.summary)
                (String.concat "," (List.map diag_json r.diags)))
            scenario_results
        in
        let pols =
          List.map
            (fun (path, diags) ->
              Printf.sprintf "{\"file\":\"%s\",\"diags\":[%s]}" (json_escape path)
                (String.concat ","
                   (List.map diag_json (Option.value ~default:[] diags))))
            policy_results
        in
        Printf.printf "{\"scenarios\":[%s],\"policies\":[%s]%s}\n"
          (String.concat "," scen) (String.concat "," pols)
          (match race_diags with
           | None -> ""
           | Some ds ->
             Printf.sprintf ",\"races\":[%s]" (String.concat "," (List.map diag_json ds)))
      end;
      let all_diags =
        List.concat_map (fun (_, (r : Verify.report)) -> r.diags) scenario_results
        @ List.concat_map (fun (_, d) -> Option.value ~default:[] d) policy_results
        @ Option.value ~default:[] race_diags
      in
      let io_failed = List.exists (fun (_, d) -> d = None) policy_results in
      let errors = List.length (Diag.errors all_diags) in
      let warnings = List.length (Diag.warnings all_diags) in
      if not (quiet || json) then
        Printf.printf "%d scenario(s), %d policy file(s): %d error(s), %d warning(s)\n"
          (List.length scenario_results)
          (List.length policy_results)
          errors warnings;
      if io_failed then 2
      else if errors > 0 || (strict && all_diags <> []) then 1
      else 0
    end
  end

let cmd =
  let names =
    Arg.(value & pos_all string []
         & info [] ~docv:"SCENARIO"
             ~doc:"Scenario name(s) from the registry (default: all).")
  in
  let list_only =
    Arg.(value & flag & info [ "list" ] ~doc:"List known scenarios and exit.")
  in
  let policies =
    Arg.(value & opt_all string []
         & info [ "policy" ] ~docv:"SPEC"
             ~doc:"Also lint a policy spec file into the same finding stream \
                   (repeatable).")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable output.") in
  let strict =
    Arg.(value & flag & info [ "strict" ] ~doc:"Treat warnings as errors.")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Print nothing; exit status only.")
  in
  let sweep =
    Arg.(value & flag
         & info [ "race-sweep" ]
             ~doc:"Run a small domain-parallel sweep with the race sanitizer \
                   armed and report any SAN_RACE_* finding.")
  in
  let max_depth =
    Arg.(value & opt int 16
         & info [ "max-depth" ] ~docv:"N"
             ~doc:"Bound on the DIF recursion depth (rule V210).")
  in
  Cmd.v
    (Cmd.info "rina_verify" ~version:"1.0.0"
       ~doc:"Statically verify whole RINA topologies before they run")
    Term.(
      const run $ names $ list_only $ policies $ json $ strict $ quiet $ sweep
      $ max_depth)

let () = exit (Cmd.eval' cmd)
