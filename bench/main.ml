(* Regenerates every figure/claim experiment of the paper (see
   DESIGN.md §3 and EXPERIMENTS.md).  With no arguments all
   experiments run in order; pass names (f1 f2 f3 f4 f5 c1 c2 c3 c4
   a1 r1 r2 r3 r4 micro trace hotpath) to run a subset. *)

let experiments =
  [
    ("f1", Exp_f1.run);
    ("f2", Exp_f2.run);
    ("f3", Exp_f3.run);
    ("f4", Exp_f4.run);
    ("f5", Exp_f5.run);
    ("c1", Exp_c1.run);
    ("c2", Exp_c2.run);
    ("c3", Exp_c3.run);
    ("c4", Exp_c4.run);
    ("a1", Exp_a1.run);
    ("r1", Exp_r1.run);
    ("r2", Exp_r2.run);
    ("r3", Exp_r3.run);
    ("r4", Exp_r4.run);
    ("micro", Micro.run);
    ("trace", Trace_overhead.run);
    ("hotpath", Hotpath.run);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | [] | [ _ ] -> List.map fst experiments
    | _ :: names -> names
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some run ->
        run ();
        print_newline ()
      | None -> Printf.eprintf "unknown experiment %S\n" name)
    requested
