(* Hot-path performance benchmark — the recorded artifact behind the
   allocation-lean event loop / PDU pipeline and the domain-parallel
   trial runner.  Writes BENCH_hotpath.json with three sections:

   - "timer":    a schedule/cancel churn microbench on a bare engine
                 (90% of timers cancelled, like retransmission timers
                 on a healthy flow) — bytes allocated per event and
                 events per wall second;
   - "pipeline": a 3-node RINA line relaying a 2 Mb/s CBR stream — the
                 full delimit/EFCP/RMT/relay/link path, per engine
                 event;
   - "sweep":    the same seeded trial list run sequentially and on 4
                 domains through Rina_exp.Par, with a byte-equality
                 check of the merged outputs.

   The "baseline" block holds the numbers measured on this machine
   immediately before the hot-path pass (unboxed heap access, timer
   wheel, cancel compaction, encode-once relay), so improvement ratios
   are part of the artifact, not a claim in a commit message.

   Environment knobs (used by CI):
   - RINA_BENCH_SMOKE=1  small scale (seconds, not minutes); the two
     headline metrics are rates, so they stay comparable;
   - RINA_BENCH_CHECK=1  before overwriting BENCH_hotpath.json, parse
     the committed copy and exit 1 if events/sec regressed by more
     than 25% (or bytes/event grew by more than 25%). *)

module Engine = Rina_sim.Engine
module Fault = Rina_sim.Fault
module Sharded = Rina_sim.Sharded
module Prng = Rina_util.Prng
module Ipcp = Rina_core.Ipcp
module Topo = Rina_exp.Topo
module Scenario = Rina_exp.Scenario
module Workload = Rina_exp.Workload
module Par = Rina_exp.Par
module Obs = Rina_exp.Obs

let host_cores () = Domain.recommended_domain_count ()

let smoke () = Sys.getenv_opt "RINA_BENCH_SMOKE" <> None

let json_path = "BENCH_hotpath.json"

(* Measured on the pre-PR tree (same machine, same scales) by this very
   bench; see docs/performance.md for how to re-derive them. *)
let baseline_timer_bytes_per_event = 224.1
let baseline_timer_events_per_sec = 3_085_639.
let baseline_pipeline_bytes_per_event = 2_323.9
let baseline_pipeline_events_per_sec = 455_673.
let baseline_sweep_trials_per_sec = 32.956

type sample = { events : int; wall : float; alloc : float }

let bytes_per_event s =
  if s.events = 0 then 0. else s.alloc /. float_of_int s.events

let events_per_sec s =
  if s.wall <= 0. then 0. else float_of_int s.events /. s.wall

(* Engine events and this domain's allocation over [f]. *)
let measure engine f =
  let e0 = Engine.executed engine in
  let a0 = Gc.allocated_bytes () in
  let t0 = Unix.gettimeofday () in
  f ();
  let wall = Unix.gettimeofday () -. t0 in
  {
    events = Engine.executed engine - e0;
    wall;
    alloc = Gc.allocated_bytes () -. a0;
  }

(* ---------- timer churn microbench ---------- *)

(* Per-timer accounting, not per-pop: the pre-PR engine popped every
   cancelled timer individually (so timers scheduled = events popped),
   while the current engine reaps them in bulk — counting scheduled
   timers keeps the denominator comparable across both. *)
let timer_churn () =
  let engine = Engine.create () in
  let rng = Prng.create 7 in
  let rounds = if smoke () then 100 else 2_000 in
  let nop () = () in
  let s =
    measure engine (fun () ->
        for _ = 1 to rounds do
          let base = Engine.now engine in
          let handles =
            Array.init 1_000 (fun _ ->
                Engine.schedule ~lane:Engine.Timer engine
                  ~delay:(Prng.float rng 1.0) nop)
          in
          for i = 0 to 899 do
            Engine.cancel handles.(i)
          done;
          Engine.run ~until:(base +. 1.0) engine
        done;
        Engine.run engine)
  in
  { s with events = rounds * 1_000 }

(* ---------- PDU pipeline microbench ---------- *)

let pdu_pipeline () =
  let net = Topo.line ~seed:11 ~n:3 () in
  let engine = net.Topo.engine in
  let sink = Workload.sink () in
  match Scenario.open_flow net ~src:0 ~dst:2 ~qos_id:1 ~sink () with
  | Error e -> failwith ("hotpath: pipeline flow allocation failed: " ^ e)
  | Ok (flow, _) ->
    let dur = if smoke () then 2.0 else 12.0 in
    let t0 = Engine.now engine in
    let s =
      measure engine (fun () ->
          Workload.cbr engine ~send:flow.Ipcp.send ~rate:2_000_000. ~size:1_000
            ~until:(t0 +. dur) ();
          Engine.run ~until:(t0 +. dur +. 1.0) engine)
    in
    (s, sink.Workload.count)

(* ---------- seeded trial sweep (sequential vs domains) ---------- *)

(* One self-contained chaos trial: private engine/PRNG/metrics, a CBR
   stream over a 3-node relay line with two random faults.  Returns a
   JSON line; byte-equality of the concatenated lines is the
   determinism check. *)
let trial ~seed =
  let net = Topo.line ~seed ~n:3 () in
  let engine = net.Topo.engine in
  let sink = Workload.sink () in
  match Scenario.open_flow net ~src:0 ~dst:2 ~qos_id:1 ~sink () with
  | Error e -> Printf.sprintf "{\"seed\": %d, \"error\": %S}" seed e
  | Ok (flow, _) ->
    let t0 = Engine.now engine in
    let rng = Prng.create (seed lxor 0x5DEECE66) in
    let plan =
      Scenario.random_plan net ~rng ~horizon:12.0 ~faults:2 ()
    in
    Fault.arm plan engine;
    Workload.cbr engine ~send:flow.Ipcp.send ~rate:1_000_000. ~size:500
      ~until:(t0 +. 10.) ();
    Engine.run ~until:(t0 +. 14.) engine;
    Printf.sprintf
      "{\"seed\": %d, \"delivered\": %d, \"relayed\": %d, \"flow_errors\": %d, \
       \"faults\": %d}"
      seed sink.Workload.count
      (Scenario.sum_rmt_metric net "relayed")
      (Scenario.sum_metric net "flow_errors")
      (List.length (Fault.events plan))

type sweep = {
  trials : int;
  seq_s : float;
  par_s : float;
  par_domains : int;
  identical : bool;
}

let sweep () =
  let seeds = List.init (if smoke () then 4 else 12) (fun i -> 1000 + i) in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let seq, seq_s = timed (fun () -> Par.run_trials ~domains:1 ~seeds trial) in
  let par_domains = 4 in
  let par, par_s =
    timed (fun () -> Par.run_trials ~domains:par_domains ~seeds trial)
  in
  let identical =
    String.equal (String.concat "\n" seq) (String.concat "\n" par)
  in
  { trials = List.length seeds; seq_s; par_s; par_domains; identical }

(* ---------- sharded engine (one trial split over shards) ---------- *)

(* Where [sweep] parallelises across independent trials, this section
   parallelises *inside* one trial: a line DIF partitioned over 4
   engine shards, enrollment/routing converging across the mailbox
   seams, then one CBR flow per shard block (pure shard-local work)
   plus one flow crossing every seam.  Timing runs are untraced; the
   byte-identity runs repeat the trial with the sharded flight
   recorder attached and compare the merged trace, merged telemetry
   and the result line between 1 domain and [sharded_domains]. *)

let sharded_domains = 4

let sharded_trial ~traced ~domains =
  let n = if smoke () then 8 else 16 in
  let shards = 4 in
  let net = Topo.sharded_line ~seed:31 ~n ~shards ~delay:0.01 () in
  let obs = if traced then Some (Obs.start_sharded net.Topo.sh) else None in
  let converged = Topo.sharded_converged ~max_time:120. ~domains net in
  let per_shard = n / shards in
  let dur = if smoke () then 2.0 else 8.0 in
  let sinks = ref [] in
  let flows = ref [] in
  (* one shard-local flow per block, plus one end-to-end flow *)
  let pairs =
    List.init shards (fun s -> (s * per_shard, (s * per_shard) + per_shard - 1))
    @ [ (0, n - 1) ]
  in
  List.iter
    (fun (src, dst) ->
      let sink = Workload.sink () in
      match Scenario.open_flow_sharded net ~domains ~src ~dst ~qos_id:1 ~sink () with
      | Error e -> failwith (Printf.sprintf "hotpath: sharded flow %d->%d: %s" src dst e)
      | Ok (flow, _) ->
        sinks := sink :: !sinks;
        flows := (src, flow) :: !flows)
    pairs;
  List.iter
    (fun (src, flow) ->
      let e = Sharded.engine net.Topo.sh net.Topo.s_shard.(src) in
      Workload.cbr e ~send:flow.Ipcp.send ~rate:1_000_000. ~size:500
        ~until:(Engine.now e +. dur) ())
    !flows;
  Topo.sharded_wait ~domains net (dur +. 1.0);
  let delivered =
    List.fold_left (fun acc s -> acc + s.Workload.count) 0 !sinks
  in
  let line =
    Printf.sprintf
      "{\"converged\": %b, \"flows\": %d, \"delivered\": %d, \"crossed\": %d}"
      converged (List.length !flows) delivered
      (Sharded.crossed net.Topo.sh)
  in
  match obs with
  | None -> (line, "")
  | Some o ->
    let artifacts = Obs.sharded_events_jsonl o ^ "\x00" ^ Obs.sharded_stats_jsonl o in
    Obs.stop_sharded o;
    (line, artifacts)

type sharded_bench = {
  sh_seq_s : float;
  sh_par_s : float;
  sh_domains : int;
  sh_identical : bool;
  sh_line : string;
}

let sharded_bench () =
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let (line_seq, _), sh_seq_s =
    timed (fun () -> sharded_trial ~traced:false ~domains:1)
  in
  let (line_par, _), sh_par_s =
    timed (fun () -> sharded_trial ~traced:false ~domains:sharded_domains)
  in
  let tr_seq, art_seq = sharded_trial ~traced:true ~domains:1 in
  let tr_par, art_par = sharded_trial ~traced:true ~domains:sharded_domains in
  let sh_identical =
    String.equal line_seq line_par
    && String.equal tr_seq tr_par
    && String.equal art_seq art_par
    && String.equal line_seq tr_seq
  in
  { sh_seq_s; sh_par_s; sh_domains = sharded_domains; sh_identical; sh_line = line_seq }

(* ---------- JSON artifact + CI regression gate ---------- *)

let pct_reduction ~baseline ~current =
  if baseline <= 0. then 0. else 100. *. (baseline -. current) /. baseline

let speedup ~baseline ~current = if baseline <= 0. then 0. else current /. baseline

let render ~timer ~pipeline ~delivered ~sw ~shb =
  let sweep_tps = if sw.seq_s > 0. then float_of_int sw.trials /. sw.seq_s else 0. in
  (* A wall-clock speedup claim is only honest with real parallel
     hardware under it: on a single-core host the domains time-slice,
     so both speedups are recorded as 0 ("not claimable") there. *)
  let honest ~seq ~par =
    if host_cores () > 1 && par > 0. then seq /. par else 0.
  in
  Printf.sprintf
    "{\n\
    \  \"host_cores\": %d,\n\
    \  \"smoke\": %b,\n\
    \  \"baseline\": {\n\
    \    \"timer_bytes_per_event\": %.1f,\n\
    \    \"timer_events_per_sec\": %.0f,\n\
    \    \"pipeline_bytes_per_event\": %.1f,\n\
    \    \"pipeline_events_per_sec\": %.0f,\n\
    \    \"sweep_trials_per_sec\": %.3f\n\
    \  },\n\
    \  \"current\": {\n\
    \    \"timer_bytes_per_event\": %.1f,\n\
    \    \"timer_events_per_sec\": %.0f,\n\
    \    \"pipeline_bytes_per_event\": %.1f,\n\
    \    \"pipeline_events_per_sec\": %.0f,\n\
    \    \"pipeline_delivered\": %d,\n\
    \    \"sweep_trials\": %d,\n\
    \    \"sweep_seq_s\": %.3f,\n\
    \    \"sweep_par_s\": %.3f,\n\
    \    \"sweep_par_domains\": %d,\n\
    \    \"sweep_trials_per_sec\": %.3f,\n\
    \    \"sweep_speedup\": %.3f,\n\
    \    \"sweep_par_identical\": %b,\n\
    \    \"sharded_seq_s\": %.3f,\n\
    \    \"sharded_par_s\": %.3f,\n\
    \    \"sharded_domains\": %d,\n\
    \    \"sharded_speedup\": %.3f,\n\
    \    \"sharded_identical\": %b,\n\
    \    \"sharded_result\": %s\n\
    \  },\n\
    \  \"improvement\": {\n\
    \    \"timer_alloc_reduction_pct\": %.1f,\n\
    \    \"pipeline_alloc_reduction_pct\": %.1f,\n\
    \    \"timer_throughput_speedup\": %.3f,\n\
    \    \"pipeline_throughput_speedup\": %.3f\n\
    \  }\n\
     }\n"
    (Domain.recommended_domain_count ())
    (smoke ())
    baseline_timer_bytes_per_event baseline_timer_events_per_sec
    baseline_pipeline_bytes_per_event baseline_pipeline_events_per_sec
    baseline_sweep_trials_per_sec (bytes_per_event timer)
    (events_per_sec timer) (bytes_per_event pipeline)
    (events_per_sec pipeline) delivered sw.trials sw.seq_s sw.par_s
    sw.par_domains sweep_tps
    (honest ~seq:sw.seq_s ~par:sw.par_s)
    sw.identical shb.sh_seq_s shb.sh_par_s shb.sh_domains
    (honest ~seq:shb.sh_seq_s ~par:shb.sh_par_s)
    shb.sh_identical shb.sh_line
    (pct_reduction ~baseline:baseline_timer_bytes_per_event
       ~current:(bytes_per_event timer))
    (pct_reduction ~baseline:baseline_pipeline_bytes_per_event
       ~current:(bytes_per_event pipeline))
    (speedup ~baseline:baseline_timer_events_per_sec
       ~current:(events_per_sec timer))
    (speedup ~baseline:baseline_pipeline_events_per_sec
       ~current:(events_per_sec pipeline))

(* Last occurrence of ["name": <number>] in [text] — "current" values
   shadow "baseline" ones, which is what the CI gate wants. *)
let find_field text name =
  let needle = Printf.sprintf "\"%s\":" name in
  let nlen = String.length needle and tlen = String.length text in
  let rec last_at from acc =
    if from >= tlen then acc
    else
      match String.index_from_opt text from needle.[0] with
      | None -> acc
      | Some i ->
        if i + nlen <= tlen && String.equal (String.sub text i nlen) needle
        then last_at (i + nlen) (Some (i + nlen))
        else last_at (i + 1) acc
  in
  match last_at 0 None with
  | None -> None
  | Some start ->
    let stop = ref start in
    while
      !stop < tlen
      && (match text.[!stop] with
         | ',' | '\n' | '}' -> false
         | _ -> true)
    do
      incr stop
    done;
    float_of_string_opt (String.trim (String.sub text start (!stop - start)))

let ci_gate ~timer ~pipeline =
  match
    if Sys.file_exists json_path then
      Some (In_channel.with_open_text json_path In_channel.input_all)
    else None
  with
  | None ->
    Printf.printf "hotpath: no committed %s; skipping regression gate\n"
      json_path;
    true
  | Some old ->
    let ok = ref true in
    let check name ~current ~higher_is_better =
      match find_field old name with
      | None -> ()
      | Some committed when committed <= 0. -> ()
      | Some committed ->
        let ratio = current /. committed in
        let bad =
          if higher_is_better then ratio < 0.75 else ratio > 1.25
        in
        Printf.printf "hotpath gate: %-26s committed %10.1f now %10.1f  %s\n"
          name committed current
          (if bad then "REGRESSED" else "ok");
        if bad then ok := false
    in
    check "timer_events_per_sec" ~current:(events_per_sec timer)
      ~higher_is_better:true;
    check "pipeline_events_per_sec" ~current:(events_per_sec pipeline)
      ~higher_is_better:true;
    check "timer_bytes_per_event" ~current:(bytes_per_event timer)
      ~higher_is_better:false;
    check "pipeline_bytes_per_event" ~current:(bytes_per_event pipeline)
      ~higher_is_better:false;
    !ok

let run () =
  let timer = timer_churn () in
  Printf.printf "hotpath timer churn: %d events, %.1f B/event, %.0f events/s\n%!"
    timer.events (bytes_per_event timer) (events_per_sec timer);
  let pipeline, delivered = pdu_pipeline () in
  Printf.printf
    "hotpath pdu pipeline: %d events, %d SDUs delivered, %.1f B/event, %.0f \
     events/s\n\
     %!"
    pipeline.events delivered (bytes_per_event pipeline)
    (events_per_sec pipeline);
  let sw = sweep () in
  Printf.printf
    "hotpath sweep: %d trials, seq %.2fs, %d-domain %.2fs (x%.2f), outputs \
     %s\n\
     %!"
    sw.trials sw.seq_s sw.par_domains sw.par_s
    (if sw.par_s > 0. then sw.seq_s /. sw.par_s else 0.)
    (if sw.identical then "identical" else "DIVERGED");
  if not sw.identical then begin
    Printf.eprintf "hotpath: parallel sweep diverged from sequential output\n";
    exit 1
  end;
  let shb = sharded_bench () in
  Printf.printf
    "hotpath sharded: seq %.2fs, %d-domain %.2fs (x%.2f), artifacts %s\n\
     hotpath sharded result: %s\n\
     %!"
    shb.sh_seq_s shb.sh_domains shb.sh_par_s
    (if shb.sh_par_s > 0. then shb.sh_seq_s /. shb.sh_par_s else 0.)
    (if shb.sh_identical then "identical" else "DIVERGED")
    shb.sh_line;
  (* The determinism contract is gated unconditionally — it holds on
     any host; only the wall-clock speedup claim needs real cores. *)
  if not shb.sh_identical then begin
    Printf.eprintf
      "hotpath: sharded run diverged between 1 and %d domains\n" shb.sh_domains;
    exit 1
  end;
  let gate_ok =
    if Sys.getenv_opt "RINA_BENCH_CHECK" <> None then begin
      let perf_ok = ci_gate ~timer ~pipeline in
      let speedup_ok =
        host_cores () <= 1
        || shb.sh_par_s <= 0.
        || shb.sh_seq_s /. shb.sh_par_s >= 1.0
      in
      if not speedup_ok then
        Printf.printf
          "hotpath gate: sharded_speedup %.3f < 1.0 on a %d-core host  REGRESSED\n"
          (shb.sh_seq_s /. shb.sh_par_s) (host_cores ());
      perf_ok && speedup_ok
    end
    else true
  in
  Out_channel.with_open_text json_path (fun oc ->
      Out_channel.output_string oc (render ~timer ~pipeline ~delivered ~sw ~shb));
  Printf.printf "wrote %s\n" json_path;
  if not gate_ok then begin
    Printf.eprintf "hotpath: performance regressed >25%% vs committed %s\n"
      json_path;
    exit 1
  end
