(* R2 — adversarial channel hardening: an identical mangle schedule
   (bit corruption, bounded reordering, duplication, a partition with
   a corrupted heal) against the 2-DIF relay arrangement and the
   TCP/IP baseline.

   Topology is R1's (see exp_r1.ml): RINA H1 == R == H2 across two
   link DIFs with a rank-1 host-to-host DIF stacked over them; TCP/IP
   hostA -- r0 -- hostB.  A 1 Mb/s CBR stream of CRC-sealed SDUs
   crosses each stack while the wires run a baseline Mangle model
   (2% bit corruption, 1% duplication, 5% reordering with
   displacement <= 8) plus canned burst windows, all relative to the
   stream's start t0:

     t0+ 6 .. t0+10   corrupt-burst-left    5% bit flips
     t0+14 .. t0+18   reorder-burst-right   20% reordered, displacement 8
     t0+22 .. t0+26   dup-burst-left        10% duplicated
     t0+28 .. t0+32   partition-right       carrier loss
     t0+32 .. t0+35   corrupt-heal-right    10% bit flips over the heal

   During the partition a new application is registered on H1, so its
   directory flood has to cross the healing (and still-corrupting)
   right segment; RIB versioning plus anti-entropy must reconverge H2
   anyway.  The sink verifies an application-level CRC trailer on
   every SDU and counts duplicate, out-of-order and corrupt-escaped
   deliveries — for RINA all three must be zero (EFCP exactly-once
   delivery, SDU-protection CRC).  Results go to
   BENCH_adversarial.json; everything is seeded and runs in virtual
   time, so the JSON is bit-identical across runs. *)

module Engine = Rina_sim.Engine
module Link = Rina_sim.Link
module Mangle = Rina_sim.Mangle
module Fault = Rina_sim.Fault
module Trace = Rina_sim.Trace
module Flight = Rina_util.Flight
module Metrics = Rina_util.Metrics
module Table = Rina_util.Table
module Ipcp = Rina_core.Ipcp
module Dif = Rina_core.Dif
module Shim = Rina_core.Shim
module Rib = Rina_core.Rib
module Types = Rina_core.Types
module Topo = Rina_exp.Topo
module Workload = Rina_exp.Workload
module Report = Rina_check.Trace_report

let cbr_rate = 1_000_000.

let sdu_size = 500

let stream_len = 40.

let drain = 20.

(* The always-on channel adversary: every frame on either wire faces
   this for the whole run.  Corruption >= 1%, duplication 1%,
   reordering displacement bounded by 8 — the floor the hardening is
   specified against. *)
let base_mangle =
  Mangle.make ~corrupt:0.02 ~duplicate:0.01 ~dup_delay:0.002 ~reorder:0.05
    ~max_displacement:8 ()

(* (label, start, end) relative to t0 — the shared burst schedule. *)
let schedule =
  [
    ("corrupt-burst-left", 6., 10.);
    ("reorder-burst-right", 14., 18.);
    ("dup-burst-left", 22., 26.);
    ("partition-right", 28., 32.);
    ("corrupt-heal-right", 32., 35.);
  ]

(* The app published mid-partition; its directory entry reaching the
   far side is the reconvergence probe. *)
let late_app = "late-arrival"

let publish_at = 29. (* relative to t0, inside the partition window *)

let arm_mangle_faults plan ~t0 ~left ~right =
  List.iter
    (fun (label, a, b) ->
      let at = t0 +. a and until = t0 +. b in
      match label with
      | "corrupt-burst-left" ->
        Fault.link_corrupt plan ~at ~until ~label ~corrupt:0.05 left
      | "reorder-burst-right" ->
        Fault.link_reorder plan ~at ~until ~label ~reorder:0.2
          ~max_displacement:8 right
      | "dup-burst-left" ->
        Fault.link_duplicate plan ~at ~until ~label ~duplicate:0.1 left
      | "partition-right" -> Fault.link_down plan ~at ~until ~label right
      | "corrupt-heal-right" ->
        Fault.link_corrupt plan ~at ~until ~label ~corrupt:0.1 right
      | _ -> ())
    schedule

(* EFCP hardened for the adversarial channel: selective acks, a
   bounded reorder buffer, duplicate suppression; RIEP anti-entropy
   resyncs the RIB after the partition.  EFCP timers as in R1 so the
   flow persists through the partition instead of dying; dead-peer
   detection is relaxed past the partition length so the adjacency
   (and the flow addressing built on it) survives — R1 already
   measures detection at its default setting. *)
let adversarial_policy =
  let d = Rina_core.Policy.default in
  {
    d with
    Rina_core.Policy.efcp =
      {
        d.Rina_core.Policy.efcp with
        Rina_core.Policy.init_rto = 0.3;
        min_rto = 0.05;
        max_rtx = 100_000;
        sack_blocks = 4;
        reorder_window = 64;
        max_dup_cache = 1024;
      };
    routing =
      {
        d.Rina_core.Policy.routing with
        Rina_core.Policy.anti_entropy_interval = 2.0;
        dead_peer_timeout = 8.0;
      };
  }

(* Receiver-side adversarial accounting on top of Workload.sink:
   exactly-once, in-order, uncorrupted — or counted. *)
type adv_sink = {
  base : Workload.sink;
  seen : (int, unit) Hashtbl.t;
  mutable last_seq : int;
  mutable dup_deliveries : int;
  mutable ooo_deliveries : int;
  mutable corrupt_escaped : int;
}

let adv_sink () =
  {
    base = Workload.sink ();
    seen = Hashtbl.create 4096;
    last_seq = -1;
    dup_deliveries = 0;
    ooo_deliveries = 0;
    corrupt_escaped = 0;
  }

let on_adv_sdu s ~now sdu =
  Workload.on_sdu s.base ~now sdu;
  match Workload.read_sealed sdu with
  | Workload.Sealed_corrupt -> s.corrupt_escaped <- s.corrupt_escaped + 1
  | Workload.Sealed_ok (_, seq) ->
    if Hashtbl.mem s.seen seq then s.dup_deliveries <- s.dup_deliveries + 1
    else begin
      Hashtbl.replace s.seen seq ();
      if seq < s.last_seq then s.ooo_deliveries <- s.ooo_deliveries + 1;
      if seq > s.last_seq then s.last_seq <- seq
    end

(* CBR of sealed SDUs (Workload.cbr emits unsealed stamps). *)
let sealed_cbr engine ~send ~until () =
  let interval = float_of_int (8 * sdu_size) /. cbr_rate in
  let seq = ref 0 in
  let rec tick () =
    let now = Engine.now engine in
    if now < until then begin
      send (Workload.stamp_sealed ~now ~seq:!seq ~size:sdu_size);
      incr seq;
      ignore (Engine.schedule engine ~delay:interval tick)
    end
  in
  tick ();
  seq

type outcome = {
  delivered : int;
  sent : int;
  dup_deliveries : int;
  ooo_deliveries : int;
  corrupt_escaped : int;
  rtx_pdus : int;  (** data retransmissions (app flow) *)
  data_pdus : int;  (** total data transmissions (app flow) *)
  blackouts : (string * float * float option) list;
  reconverged : bool;  (** far side learned the mid-partition app *)
  reconvergence_s : float option;  (** heal -> directory entry visible *)
}

let blackout_of outcome label =
  match
    List.find_opt (fun (l, _, _) -> String.equal l label) outcome.blackouts
  with
  | Some (_, _, gap) -> gap
  | None -> None

(* ---------- RINA ---------- *)

let build_rina () =
  let engine = Engine.create () in
  let rng = Rina_util.Prng.create 202 in
  let wire_l = Link.create engine rng ~bit_rate:10_000_000. ~delay:0.005 () in
  let wire_r = Link.create engine rng ~bit_rate:10_000_000. ~delay:0.005 () in
  let link_dif name link =
    let dif = Dif.create engine ~policy:adversarial_policy name in
    let a = Dif.add_member dif ~name:(name ^ "-a") () in
    let b = Dif.add_member dif ~name:(name ^ "-b") () in
    Dif.connect dif a b
      ( Shim.wrap ~dif:name (Link.endpoint_a link),
        Shim.wrap ~dif:name (Link.endpoint_b link) );
    Dif.run_until_converged dif ();
    (a, b)
  in
  let la, lb = link_dif "left" wire_l in
  let ra, rb = link_dif "right" wire_r in
  let top = Dif.create engine ~policy:adversarial_policy ~rank:1 "relay" in
  let h1 = Dif.add_member top ~name:"h1" () in
  let r = Dif.add_member top ~name:"r" () in
  let h2 = Dif.add_member top ~name:"h2" () in
  Dif.stack_connect ~lower_a:la ~lower_b:lb ~upper_a:h1 ~upper_b:r ();
  Dif.stack_connect ~lower_a:ra ~lower_b:rb ~upper_a:r ~upper_b:h2 ();
  Dif.run_until_converged top ~max_time:90. ();
  (engine, h1, r, h2, wire_l, wire_r)

(* Poll the far side's RIB for the late app's directory entry; record
   the first time it is visible after the heal. *)
let watch_reconvergence engine far ~heal_at seen_at =
  let rec poll () =
    (if !seen_at = None then
       let path = "/dir/" ^ Types.apn_to_string (Types.apn late_app) in
       if Rib.exists (Ipcp.rib far) path then
         seen_at := Some (Float.max 0. (Engine.now engine -. heal_at)));
    if !seen_at = None then ignore (Engine.schedule engine ~delay:0.25 poll)
  in
  poll ()

let run_rina () =
  let engine, h1, _r, h2, wire_l, wire_r = build_rina () in
  let tr = Trace.create engine in
  Trace.attach tr;
  let sink = adv_sink () in
  let dst = Types.apn "adv-sink" in
  Ipcp.register_app h2 dst ~on_flow:(fun flow ->
      flow.Ipcp.set_on_receive (fun sdu ->
          on_adv_sdu sink ~now:(Engine.now engine) sdu));
  let src = Types.apn "adv-src" in
  Ipcp.register_app h1 src ~on_flow:(fun _ -> ());
  let result = ref None in
  Ipcp.allocate_flow h1 ~src ~dst ~qos_id:1 ~on_result:(fun res ->
      result := Some res);
  let deadline = Engine.now engine +. 30. in
  while !result = None && Engine.now engine < deadline do
    Engine.run ~until:(Engine.now engine +. 0.05) engine
  done;
  match !result with
  | Some (Ok flow) ->
    let t0 = Engine.now engine in
    Link.set_mangle wire_l base_mangle;
    Link.set_mangle wire_r base_mangle;
    let plan = Fault.create () in
    arm_mangle_faults plan ~t0 ~left:wire_l ~right:wire_r;
    Fault.arm plan engine;
    ignore
      (Engine.schedule engine ~delay:publish_at (fun () ->
           Ipcp.register_app h1 (Types.apn late_app) ~on_flow:(fun _ -> ())));
    let heal_at =
      t0 +. List.assoc "partition-right" (List.map (fun (l, _, b) -> (l, b)) schedule)
    in
    let seen_at = ref None in
    ignore
      (Engine.schedule engine
         ~delay:(heal_at -. t0)
         (fun () -> watch_reconvergence engine h2 ~heal_at seen_at));
    let sent = sealed_cbr engine ~send:flow.Ipcp.send ~until:(t0 +. stream_len) () in
    Engine.run ~until:(t0 +. stream_len +. drain) engine;
    let events = Trace.typed_events tr in
    (match Sys.getenv_opt "RINA_TRACE" with
    | Some path -> Trace.save_jsonl tr path
    | None -> ());
    Trace.detach ();
    let kept =
      List.filter
        (fun (e : Flight.event) ->
          match e.Flight.kind with
          | Flight.Pdu_recvd ->
            e.Flight.rank = 1 && String.equal e.Flight.component "efcp"
          | _ -> true)
        events
    in
    let fm = flow.Ipcp.flow_metrics () in
    Ok
      {
        delivered = sink.base.Workload.count;
        sent = !sent;
        dup_deliveries = sink.dup_deliveries;
        ooo_deliveries = sink.ooo_deliveries;
        corrupt_escaped = sink.corrupt_escaped;
        rtx_pdus = Metrics.get fm "pdus_rtx";
        data_pdus = Metrics.get fm "pdus_sent";
        blackouts = Report.blackouts kept;
        reconverged = !seen_at <> None;
        reconvergence_s = !seen_at;
      }
  | Some (Error e) ->
    Trace.detach ();
    Error ("allocation failed: " ^ e)
  | None ->
    Trace.detach ();
    Error "allocation hung"

(* ---------- TCP/IP baseline ---------- *)

(* UDP faces the raw channel: no integrity check beyond the IP header
   decode, no sequencing, no retransmission.  The late app's analogue
   is DV routing reconvergence — probed via delivery resumption after
   the partition (there is no directory to probe). *)
let run_ip () =
  let net =
    Topo.ip_line ~seed:202 ~bit_rate:10_000_000. ~delay:0.005 ~routers:1 ()
  in
  let engine = net.Topo.ip_engine in
  let tr = Trace.create engine in
  Trace.attach tr;
  let u_a = Tcpip.Udp.attach net.Topo.hosts.(0) in
  let u_b = Tcpip.Udp.attach net.Topo.hosts.(1) in
  let src_addr = Tcpip.Ip.addr_of_octets 10 1 0 1 in
  let dst_addr = Tcpip.Ip.addr_of_octets 10 2 0 2 in
  let sink = adv_sink () in
  Tcpip.Udp.listen u_b ~port:9000 (fun ~src:_ ~sport:_ body ->
      on_adv_sdu sink ~now:(Engine.now engine) body);
  let t0 = Engine.now engine in
  let left = net.Topo.ip_links.(0) and right = net.Topo.ip_links.(1) in
  Link.set_mangle left base_mangle;
  Link.set_mangle right base_mangle;
  let plan = Fault.create () in
  arm_mangle_faults plan ~t0 ~left ~right;
  Fault.arm plan engine;
  let sent =
    sealed_cbr engine
      ~send:(fun sdu ->
        Tcpip.Udp.send u_a ~src:src_addr ~dst:dst_addr ~sport:9000 ~dport:9000
          sdu)
      ~until:(t0 +. stream_len) ()
  in
  Engine.run ~until:(t0 +. stream_len +. drain) engine;
  let events = Trace.typed_events tr in
  Trace.detach ();
  let blackouts = Report.blackouts ~component:"udp:hostB" events in
  let partition_gap =
    match
      List.find_opt (fun (l, _, _) -> String.equal l "partition-right") blackouts
    with
    | Some (_, _, gap) -> gap
    | None -> None
  in
  {
    delivered = sink.base.Workload.count;
    sent = !sent;
    dup_deliveries = sink.dup_deliveries;
    ooo_deliveries = sink.ooo_deliveries;
    corrupt_escaped = sink.corrupt_escaped;
    rtx_pdus = 0;
    data_pdus = !sent;
    blackouts;
    reconverged = partition_gap <> None;
    reconvergence_s = partition_gap;
  }

(* ---------- reporting ---------- *)

let json_stack buf name o =
  let opt_f = function
    | Some v -> Printf.sprintf "%.6f" v
    | None -> "null"
  in
  let rtx_overhead =
    if o.data_pdus = 0 then 0.
    else float_of_int o.rtx_pdus /. float_of_int o.data_pdus
  in
  Buffer.add_string buf (Printf.sprintf "  %S: {\n" name);
  Buffer.add_string buf
    (Printf.sprintf "    \"sent\": %d,\n    \"delivered\": %d,\n" o.sent
       o.delivered);
  Buffer.add_string buf
    (Printf.sprintf
       "    \"dup_deliveries\": %d,\n    \"ooo_deliveries\": %d,\n    \
        \"corrupt_escaped\": %d,\n"
       o.dup_deliveries o.ooo_deliveries o.corrupt_escaped);
  Buffer.add_string buf
    (Printf.sprintf
       "    \"rtx_pdus\": %d,\n    \"rtx_overhead\": %.6f,\n" o.rtx_pdus
       rtx_overhead);
  Buffer.add_string buf
    (Printf.sprintf
       "    \"partition_reconverged\": %b,\n    \"reconvergence_s\": %s,\n"
       o.reconverged
       (opt_f o.reconvergence_s));
  Buffer.add_string buf "    \"faults\": [\n";
  let n = List.length schedule in
  List.iteri
    (fun i (label, at, until) ->
      let blackout, recovered =
        match blackout_of o label with
        | Some g -> (Printf.sprintf "%.6f" g, true)
        | None -> ("null", false)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "      {\"label\": %S, \"at_s\": %.1f, \"until_s\": %.1f, \
            \"blackout_s\": %s, \"recovered\": %b}%s\n"
           label at until blackout recovered
           (if i = n - 1 then "" else ",")))
    schedule;
  Buffer.add_string buf "    ]\n"

let write_json rina ip =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  json_stack buf "rina" rina;
  Buffer.add_string buf "  },\n";
  json_stack buf "ip" ip;
  Buffer.add_string buf "  }\n}\n";
  Out_channel.with_open_text "BENCH_adversarial.json" (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf))

let run () =
  let table =
    Table.create
      ~title:
        "R2: adversarial channel — 2% corruption / 1% duplication / 5% \
         reordering + bursts, 1 Mb/s CBR through a relay"
      ~columns:[ "measure"; "RINA"; "UDP/IP" ]
  in
  match run_rina () with
  | Error e -> Printf.printf "R2: RINA run failed: %s\n" e
  | Ok rina ->
    let ip = run_ip () in
    Table.add_rowf table "delivered / sent | %d / %d | %d / %d" rina.delivered
      rina.sent ip.delivered ip.sent;
    Table.add_rowf table "duplicate deliveries | %d | %d" rina.dup_deliveries
      ip.dup_deliveries;
    Table.add_rowf table "out-of-order deliveries | %d | %d"
      rina.ooo_deliveries ip.ooo_deliveries;
    Table.add_rowf table "corrupt SDUs delivered | %d | %d"
      rina.corrupt_escaped ip.corrupt_escaped;
    Table.add_rowf table "retransmitted PDUs | %d | n/a" rina.rtx_pdus;
    Table.add_rowf table "reconverged after partition | %b (%s s) | %b"
      rina.reconverged
      (match rina.reconvergence_s with
      | Some g -> Printf.sprintf "%.2f" g
      | None -> "-")
      ip.reconverged;
    Table.print table;
    write_json rina ip;
    Printf.printf "wrote BENCH_adversarial.json\n";
    (* CI gate (RINA_BENCH_CHECK=1): the hardening claims are hard
       invariants, not tolerances — any duplicate / out-of-order /
       corrupt-escaped RINA delivery, a lost SDU, or a
       non-reconverged RIB fails the build. *)
    if Sys.getenv_opt "RINA_BENCH_CHECK" <> None then begin
      let fail = ref false in
      let claim name ok =
        Printf.printf "adversarial gate: %-28s %s\n" name
          (if ok then "ok" else "VIOLATED");
        if not ok then fail := true
      in
      claim "exactly_once (no dups)" (rina.dup_deliveries = 0);
      claim "in_order (no reordering)" (rina.ooo_deliveries = 0);
      claim "no corrupt escapes" (rina.corrupt_escaped = 0);
      claim "complete delivery" (rina.delivered = rina.sent);
      claim "rib_reconverged" rina.reconverged;
      claim "all faults recovered"
        (List.for_all
           (fun (label, _, _) -> blackout_of rina label <> None)
           schedule);
      if !fail then begin
        Printf.eprintf "R2: adversarial hardening invariant violated\n";
        exit 1
      end
    end
