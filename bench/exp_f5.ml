(* F5 — Figure 5: mobility is dynamic multihoming across nested DIFs.

   Topology (RINA side):

     top DIF      H ---- GR ==(stacked)== M      and H ---- GL
     bottom-right {GRb, B1, B2, Mrb}: GRb-B1, GRb-B2, B1-M, B2-M
     bottom-left  {GLb, B3, Mlb}:     GLb-B3, B3-M (initially down)

   A CBR stream H→M runs at the top level throughout.

   Move 1 (local, within the right (N-1)-DIF): the B1–M link dies;
   the bottom-right DIF re-routes to the B2 point of attachment.  The
   paper's claim: the update is confined to the low-rank DIF — the top
   DIF must see ZERO routing traffic and the stream barely notices.

   Move 2 (wide, to the left region): the B3–M link comes up, M's
   left bottom IPCP enrolls, a new top-level attachment is stacked
   through the left cluster, then the last right-side link (B2–M)
   dies.  Now the top DIF must update — but only around M.

   Baseline: Mobile-IP.  The mobile's TCP/UDP identity is its *home
   address*; a move to a foreign subnet needs care-of registration at
   the (possibly distant) home agent, and every subsequent packet
   triangle-routes through the home network. *)

module Engine = Rina_sim.Engine
module Ipcp = Rina_core.Ipcp
module Dif = Rina_core.Dif
module Link = Rina_sim.Link
module Table = Rina_util.Table
module Workload = Rina_exp.Workload

let cbr_rate = 1_000_000.

let sdu_size = 500

let mk_link engine rng = Link.create engine rng ~bit_rate:10_000_000. ~delay:0.002 ()

let connect dif a b link =
  Dif.connect dif a b (Link.endpoint_a link, Link.endpoint_b link)

type world = {
  engine : Engine.t;
  top : Dif.t;
  bottom_right : Dif.t;
  bottom_left : Dif.t;
  h : Ipcp.t;
  m_top : Ipcp.t;
  mrb : Ipcp.t;  (* M's bottom-right IPC process *)
  mlb : Ipcp.t;
  glb : Ipcp.t;
  gl : Ipcp.t;
  l_b1_m : Link.t;
  l_b2_m : Link.t;
  l_b3_m : Link.t;
}

(* Periodic LSA refresh is disabled in this experiment (a routing
   policy) so that flood counts measure exactly the move-triggered
   updates; all links here are loss-free, so anti-entropy is moot. *)
let quiet_policy =
  {
    Rina_core.Policy.default with
    Rina_core.Policy.routing =
      { Rina_core.Policy.default_routing with Rina_core.Policy.refresh_ticks = 0 };
  }

let build () =
  let engine = Engine.create () in
  let rng = Rina_util.Prng.create 59 in
  (* Bottom-right cluster. *)
  let br = Dif.create engine ~policy:quiet_policy "cell-right" in
  let grb = Dif.add_member br ~name:"GRb" () in
  let b1 = Dif.add_member br ~name:"B1" () in
  let b2 = Dif.add_member br ~name:"B2" () in
  let mrb = Dif.add_member br ~name:"Mrb" () in
  connect br grb b1 (mk_link engine rng);
  connect br grb b2 (mk_link engine rng);
  let l_b1_m = mk_link engine rng in
  let l_b2_m = mk_link engine rng in
  connect br b1 mrb l_b1_m;
  connect br b2 mrb l_b2_m;
  Dif.run_until_converged br ();
  (* Bottom-left cluster; M's link starts down (out of range). *)
  let bl = Dif.create engine ~policy:quiet_policy "cell-left" in
  let glb = Dif.add_member bl ~name:"GLb" () in
  let b3 = Dif.add_member bl ~name:"B3" () in
  let mlb = Dif.add_member bl ~name:"Mlb" () in
  connect bl glb b3 (mk_link engine rng);
  let l_b3_m = mk_link engine rng in
  Link.set_up l_b3_m false;
  connect bl b3 mlb l_b3_m;
  Dif.run_until_converged bl ~max_time:20. ();
  (* Top DIF: H, the two gateways, and M. *)
  let top = Dif.create engine ~policy:quiet_policy "internet" in
  let h = Dif.add_member top ~name:"H" () in
  let gr = Dif.add_member top ~name:"GR" () in
  let gl = Dif.add_member top ~name:"GL" () in
  let m_top = Dif.add_member top ~name:"M" () in
  connect top h gr (mk_link engine rng);
  connect top h gl (mk_link engine rng);
  (* M reaches the top DIF through the right cluster. *)
  Dif.stack_connect ~lower_a:grb ~lower_b:mrb ~upper_a:gr ~upper_b:m_top ();
  Dif.run_until_converged top ~max_time:60. ();
  {
    engine;
    top;
    bottom_right = br;
    bottom_left = bl;
    h;
    m_top;
    mrb;
    mlb;
    glb;
    gl;
    l_b1_m;
    l_b2_m;
    l_b3_m;
  }

let dif_lsa_floods dif =
  List.fold_left
    (fun acc m -> acc + Rina_util.Metrics.get (Ipcp.metrics m) "lsa_tx")
    0 (Dif.members dif)

let wait w d = Engine.run ~until:(Engine.now w.engine +. d) w.engine

(* Outage estimate for CBR: consecutive lost SDUs x send interval. *)
let outage_of sink ~before_count ~before_maxseq =
  let sent = sink.Workload.seen_max_seq - before_maxseq in
  let got = sink.Workload.count - before_count in
  let lost = max 0 (sent - got) in
  let interval = float_of_int (8 * sdu_size) /. cbr_rate in
  (float_of_int lost *. interval, lost)

(* Observability hooks for the RINA run, all off by default:
   - RINA_TRACE=<file>: save the flight-recorder trace as JSONL for
     rina_trace at the end;
   - RINA_STATS=<file>: wire a live telemetry registry (+ snapshot
     timer, if the policy asks) via [Rina_exp.Obs] and write its stats
     JSONL for rina_stats;
   - RINA_STATS_POLICY=<ini>: policy spec whose [telemetry] section
     drives the sampling rate, ring bound and snapshot cadence (e.g.
     examples/policies/telemetry.ini); without it every event is kept
     and no snapshots fire.
   Either way, periodic probes sample the radio-link queues and H's
   EFCP window occupancy.  The returned closure finalises (save +
   detach); with neither variable set it is a no-op and tracing stays
   disabled. *)
let maybe_obs w =
  let trace_path = Sys.getenv_opt "RINA_TRACE" in
  let stats_path = Sys.getenv_opt "RINA_STATS" in
  if trace_path = None && stats_path = None then fun () -> ()
  else begin
    let policy =
      match Sys.getenv_opt "RINA_STATS_POLICY" with
      | None -> Rina_core.Policy.default
      | Some path -> (
        let text = In_channel.with_open_text path In_channel.input_all in
        match Rina_core.Policy_lang.parse text with
        | Ok p -> p
        | Error msg ->
          Printf.eprintf "f5: bad RINA_STATS_POLICY %s: %s\n%!" path msg;
          exit 2)
    in
    let obs = Rina_exp.Obs.start ~policy w.engine in
    let tr = obs.Rina_exp.Obs.trace in
    let until = Engine.now w.engine +. 40. in
    Rina_exp.Obs.snapshots obs ~until;
    Rina_sim.Trace.probe tr ~name:"queue:b1-m" ~period:0.1 ~until (fun () ->
        Link.queue_depth_a w.l_b1_m);
    Rina_sim.Trace.probe tr ~name:"queue:b2-m" ~period:0.1 ~until (fun () ->
        Link.queue_depth_a w.l_b2_m);
    Rina_sim.Trace.probe tr ~name:"efcp:h-window" ~period:0.1 ~until (fun () ->
        List.fold_left
          (fun acc (_, in_flight, _) -> acc + in_flight)
          0 (Ipcp.flow_stats w.h));
    fun () ->
      (match trace_path with
      | Some path -> Rina_sim.Trace.save_jsonl tr path
      | None -> ());
      (match stats_path with
      | Some path -> Rina_exp.Obs.write_stats obs path
      | None -> ());
      Rina_exp.Obs.stop obs
  end

let run_rina table =
  let w = build () in
  let finish_trace = maybe_obs w in
  let sink = Workload.sink () in
  let dst = Rina_core.Types.apn "mobile-app" in
  Ipcp.register_app w.m_top dst ~on_flow:(fun flow ->
      flow.Ipcp.set_on_receive (fun sdu ->
          Workload.on_sdu sink ~now:(Engine.now w.engine) sdu));
  let src = Rina_core.Types.apn "correspondent" in
  Ipcp.register_app w.h src ~on_flow:(fun _ -> ());
  let result = ref None in
  Ipcp.allocate_flow w.h ~src ~dst ~qos_id:0 ~on_result:(fun r -> result := Some r);
  let deadline = Engine.now w.engine +. 30. in
  while !result = None && Engine.now w.engine < deadline do
    Engine.run ~until:(Engine.now w.engine +. 0.05) w.engine
  done;
  (match !result with
  | Some (Ok flow) ->
    let t0 = Engine.now w.engine in
    Workload.cbr w.engine ~send:flow.Ipcp.send ~rate:cbr_rate ~size:sdu_size
      ~until:(t0 +. 60.) ();
    wait w 2.;
    (* --- Move 1: within the right cell cluster (B1 -> B2). --- *)
    let base_br = dif_lsa_floods w.bottom_right in
    let base_top = dif_lsa_floods w.top in
    let c0 = sink.Workload.count and s0 = sink.Workload.seen_max_seq in
    Link.set_up w.l_b1_m false;
    wait w 8.;
    let o1, lost1 = outage_of sink ~before_count:c0 ~before_maxseq:s0 in
    let br1 = dif_lsa_floods w.bottom_right - base_br in
    let top1 = dif_lsa_floods w.top - base_top in
    Table.add_rowf table
      "RINA local move (new PoA, same cell cluster) | %.0f ms | %d | %d in cell DIF, %d in top DIF | yes"
      (1000. *. o1) lost1 br1 top1;
    (* --- Move 2: into the left region. --- *)
    let base_bl = dif_lsa_floods w.bottom_left in
    let base_top = dif_lsa_floods w.top in
    let c0 = sink.Workload.count and s0 = sink.Workload.seen_max_seq in
    (* Radio to B3 comes up; M's left IPCP enrolls; a new top-level
       attachment is stacked through the left cluster (make before
       break)... *)
    Link.set_up w.l_b3_m true;
    Dif.stack_connect ~lower_a:w.glb ~lower_b:w.mlb ~upper_a:w.gl ~upper_b:w.m_top ();
    wait w 6.;
    (* ...then the last right-side radio dies. *)
    Link.set_up w.l_b2_m false;
    wait w 12.;
    let o2, lost2 = outage_of sink ~before_count:c0 ~before_maxseq:s0 in
    let bl2 = dif_lsa_floods w.bottom_left - base_bl in
    let top2 = dif_lsa_floods w.top - base_top in
    Table.add_rowf table
      "RINA wide move (into another cell cluster) | %.0f ms | %d | %d in new cell DIF, %d in top DIF | yes"
      (1000. *. o2) lost2 bl2 top2
  | Some (Error e) ->
    if Sys.getenv_opt "F5_DEBUG" <> None then begin
      List.iter
        (fun m ->
          Printf.eprintf "top %s enrolled=%b addr=%d lsdb=%d nbrs=%d\n%!"
            (Rina_core.Types.apn_to_string (Ipcp.name m))
            (Ipcp.is_enrolled m) (Ipcp.address m) (Ipcp.lsdb_size m)
            (List.length (Ipcp.neighbors m)))
        (Dif.members w.top);
      List.iter
        (fun m ->
          Printf.eprintf "br %s addr=%d metrics: %s\n%!"
            (Rina_core.Types.apn_to_string (Ipcp.name m))
            (Ipcp.address m)
            (String.concat " "
               (List.map
                  (fun (k, v) -> Printf.sprintf "%s=%d" k v)
                  (Rina_util.Metrics.to_list (Ipcp.metrics m))));
          List.iter (fun s -> Printf.eprintf "   flow %s\n%!" s) (Ipcp.debug_flows m))
        (Dif.members w.bottom_right)
    end;
    Table.add_rowf table "RINA mobility | FAILED: %s | - | - | -" e
  | None -> Table.add_rowf table "RINA mobility | ALLOC HUNG | - | - | -");
  finish_trace ()

(* --- Mobile-IP baseline --- *)

let run_mobile_ip table =
  let engine = Engine.create () in
  let rng = Rina_util.Prng.create 59 in
  let h = Tcpip.Node.create engine "H" in
  let r0 = Tcpip.Node.create engine ~forwarding:true "R0" in
  let rh = Tcpip.Node.create engine ~forwarding:true "RH" in
  let rf = Tcpip.Node.create engine ~forwarding:true "RF" in
  let m = Tcpip.Node.create engine "M" in
  let wire ?(up = true) no a b =
    let l = mk_link engine rng in
    if not up then Link.set_up l false;
    let subnet = Tcpip.Ip.addr_of_octets 10 no 0 0 in
    let prefix = Tcpip.Ip.prefix subnet 16 in
    ignore (Tcpip.Node.add_iface a (Link.endpoint_a l) ~addr:(subnet lor 1) ~prefix);
    ignore (Tcpip.Node.add_iface b (Link.endpoint_b l) ~addr:(subnet lor 2) ~prefix);
    (l, subnet)
  in
  let _, _ = wire 1 h r0 in
  let _, _ = wire 2 r0 rh in
  let l_home, s_home = wire 3 rh m in
  let _, _ = wire 4 r0 rf in
  let l_foreign, s_foreign = wire ~up:false 5 rf m in
  ignore (Tcpip.Node.add_static_route h (Tcpip.Ip.prefix 0 0) ~if_id:1 ());
  ignore (Tcpip.Node.add_static_route m (Tcpip.Ip.prefix 0 0) ~if_id:1 ());
  List.iter (fun r -> ignore (Tcpip.Dv.start r ~period:5.0 ())) [ r0; rh; rf ];
  Engine.run ~until:30. engine;
  let home_addr = s_home lor 2 in
  let care_of = s_foreign lor 2 in
  let u_h = Tcpip.Udp.attach h and u_m = Tcpip.Udp.attach m in
  let u_rh = Tcpip.Udp.attach rh in
  let ha_addr = Tcpip.Ip.addr_of_octets 10 2 0 2 in
  let _agent = Tcpip.Mobile_ip.home_agent rh u_rh ~local:ha_addr in
  let mob = Tcpip.Mobile_ip.mobile m u_m ~home_addr in
  let got = ref 0 and max_gap = ref 0. and last_rx = ref 0. in
  Tcpip.Udp.listen u_m ~port:9000 (fun ~src:_ ~sport:_ _ ->
      let now = Engine.now engine in
      if !last_rx > 0. && now -. !last_rx > !max_gap then max_gap := now -. !last_rx;
      last_rx := now;
      incr got);
  let h_src = Tcpip.Ip.addr_of_octets 10 1 0 1 in
  let interval = float_of_int (8 * sdu_size) /. cbr_rate in
  let rec stream () =
    Tcpip.Udp.send u_h ~src:h_src ~dst:home_addr ~sport:9000 ~dport:9000
      (Bytes.make sdu_size 'm');
    if Engine.now engine < 60. then ignore (Engine.schedule engine ~delay:interval stream)
  in
  stream ();
  Engine.run ~until:33. engine;
  let fwd_before =
    Rina_util.Metrics.get (Tcpip.Node.metrics r0) "forwarded"
    + Rina_util.Metrics.get (Tcpip.Node.metrics rh) "forwarded"
    + Rina_util.Metrics.get (Tcpip.Node.metrics rf) "forwarded"
  in
  let got_before = !got in
  (* The move: home radio dies, foreign radio comes up, the mobile
     switches its default route to the foreign interface and registers
     its care-of address with the distant home agent. *)
  let move_time = Engine.now engine in
  max_gap := 0.;
  last_rx := move_time;
  Link.set_up l_home false;
  Link.set_up l_foreign true;
  ignore (Tcpip.Node.add_static_route m (Tcpip.Ip.prefix 0 0) ~if_id:2 ());
  let registered_at = ref None in
  Tcpip.Mobile_ip.register_care_of mob ~home_agent_addr:ha_addr ~care_of
    ~on_ack:(fun () -> registered_at := Some (Engine.now engine));
  Engine.run ~until:63. engine;
  let fwd_after =
    Rina_util.Metrics.get (Tcpip.Node.metrics r0) "forwarded"
    + Rina_util.Metrics.get (Tcpip.Node.metrics rh) "forwarded"
    + Rina_util.Metrics.get (Tcpip.Node.metrics rf) "forwarded"
  in
  let got_after = !got in
  let hops_before =
    float_of_int (fwd_before) /. float_of_int (max 1 got_before)
  in
  let hops_after =
    float_of_int (fwd_after - fwd_before) /. float_of_int (max 1 (got_after - got_before))
  in
  let reg_note =
    match !registered_at with
    | Some t -> Printf.sprintf "care-of registered +%.0f ms" (1000. *. (t -. move_time))
    | None -> "registration LOST"
  in
  let lost = int_of_float (!max_gap /. interval) in
  Table.add_rowf table
    "Mobile-IP move to foreign subnet | %.0f ms | %d | %s; path %.1f -> %.1f router hops (triangle) | UDP yes, addr-bound state at risk"
    (1000. *. !max_gap) lost reg_note hops_before hops_after

let run () =
  let table =
    Table.create
      ~title:"F5: mobility as dynamic multihoming (Fig. 5) — 1 Mb/s CBR to the mobile"
      ~columns:[ "scenario"; "outage"; "SDUs lost"; "routing-update scope"; "session survives" ]
  in
  run_rina table;
  run_mobile_ip table;
  Table.print table
