(* R4 — multihoming failover and label-driven multipath striping.

   Three measurements against the claims of the path-resilience layer,
   plus the Mobile-IP triangle baseline, all in seeded virtual time so
   BENCH_multipath.json is byte-identical across runs:

   1. failover — a dual-homed 2-DIF relay (Fig. 2's arrangement, but
      the H1--R adjacency is stacked over TWO independent link DIFs).
      A 1 Mb/s sealed CBR stream crosses the relay while one member
      wire dies mid-stream and later heals, and a second window kills
      BOTH member wires at once (total outage — the surviving-path
      re-striping has nowhere to go and the sender's RMT must take
      typed R_path_down drops instead).  Gates: delivery blackout of
      the single-path kill <= 2x the probe interval (failover must not
      wait for LSA flooding), exactly-once in-order delivery, zero
      corrupt SDUs escaping the CRC trailer.

   2. striping — the same bulk transfer over a dual-homed pair, once
      with the multipath monitor armed (throughput label -> weighted
      round-robin over both ports) and once with the layer disabled
      (legacy single-path forwarding).  Gate: striped goodput >= 1.5x
      single-path.

   3. mass mobility — a scaled Figure-5 move: a cell DIF with
      [mobiles] dual-homed handsets uploading CBR through base
      stations B1/B2; at t_kill every B1 radio dies at once.  Each
      handset detects its own carrier loss (the system knows its own
      radios) and re-stripes onto B2 with no routing-update wait.
      Recorded: aggregate goodput and the widest per-flow blackout.

   Baseline: Mobile-IP (exp_f5's triangle) — the same single-radio
   handoff needs care-of registration at the distant home agent; its
   blackout is recorded for comparison (gate: present and finite).

   RINA_BENCH_SMOKE=1 shrinks the fleet for CI; RINA_TRACE=<file>
   saves the failover run's flight trace (rina_trace --drops shows the
   R_path_down drops taken during the both-wires window). *)

module Engine = Rina_sim.Engine
module Link = Rina_sim.Link
module Mangle = Rina_sim.Mangle
module Fault = Rina_sim.Fault
module Trace = Rina_sim.Trace
module Flight = Rina_util.Flight
module Metrics = Rina_util.Metrics
module Table = Rina_util.Table
module Ipcp = Rina_core.Ipcp
module Dif = Rina_core.Dif
module Shim = Rina_core.Shim
module Types = Rina_core.Types
module Policy = Rina_core.Policy
module Workload = Rina_exp.Workload
module Report = Rina_check.Trace_report

let smoke () = Sys.getenv_opt "RINA_BENCH_SMOKE" <> None

let probe_interval = 0.05

(* EFCP must persist through the both-wires outage; the multipath
   section is the subject under test. *)
let mp_policy =
  let d = Policy.default in
  {
    d with
    Policy.efcp =
      { d.Policy.efcp with Policy.init_rto = 0.3; min_rto = 0.05; max_rtx = 100_000 };
    Policy.multipath =
      {
        Policy.default_multipath with
        Policy.probe_interval;
        reprobe_backoff = 0.1;
      };
  }

let single_path_policy =
  {
    mp_policy with
    Policy.multipath = { mp_policy.Policy.multipath with Policy.probe_interval = 0. };
  }

(* ---------- 1. dual-homed 2-DIF relay: failover blackout ---------- *)

let cbr_rate = 1_000_000.

let sdu_size = 500

let stream_len = 24.

let drain = 10.

(* (label, start, end) relative to t0. *)
let kill_one = ("kill-path", 6., 12.)

let kill_both = ("kill-both", 16., 16.5)

type failover_outcome = {
  fo_sent : int;
  fo_delivered : int;
  fo_dups : int;
  fo_ooo : int;
  fo_corrupt : int;
  fo_blackouts : (string * float * float option) list;
  fo_path_down_drops : int;
  fo_failovers : int;
  fo_repath_pdus : int;
}

let run_failover () =
  let engine = Engine.create () in
  let rng = Rina_util.Prng.create 211 in
  let wire_l1 = Link.create engine rng ~bit_rate:10_000_000. ~delay:0.002 () in
  let wire_l2 = Link.create engine rng ~bit_rate:10_000_000. ~delay:0.002 () in
  let wire_r =
    (* mild corruption on the shared right segment: SDU protection must
       catch what the wire mangles, even during failover *)
    Link.create engine rng ~bit_rate:10_000_000. ~delay:0.002
      ~mangle:(Mangle.make ~corrupt:0.01 ()) ()
  in
  let link_dif name link =
    let dif = Dif.create engine ~policy:single_path_policy name in
    let a = Dif.add_member dif ~name:(name ^ "-a") () in
    let b = Dif.add_member dif ~name:(name ^ "-b") () in
    Dif.connect dif a b
      ( Shim.wrap ~dif:name (Link.endpoint_a link),
        Shim.wrap ~dif:name (Link.endpoint_b link) );
    Dif.run_until_converged dif ();
    (a, b)
  in
  let l1a, l1b = link_dif "left1" wire_l1 in
  let l2a, l2b = link_dif "left2" wire_l2 in
  let ra, rb = link_dif "right" wire_r in
  let top = Dif.create engine ~policy:mp_policy ~rank:1 "relay" in
  let h1 = Dif.add_member top ~name:"h1" () in
  let r = Dif.add_member top ~name:"r" () in
  let h2 = Dif.add_member top ~name:"h2" () in
  (* the dual-homed adjacency: H1--R over two independent lower DIFs *)
  Dif.stack_connect ~lower_a:l1a ~lower_b:l1b ~upper_a:h1 ~upper_b:r ();
  Dif.stack_connect ~lower_a:l2a ~lower_b:l2b ~upper_a:h1 ~upper_b:r ();
  Dif.stack_connect ~lower_a:ra ~lower_b:rb ~upper_a:r ~upper_b:h2 ();
  Dif.run_until_converged top ~max_time:90. ();
  let tr = Trace.create engine in
  (* RINA_STATS=<file> additionally folds the kept events into a
     telemetry registry: rina_stats then shows the exact path_up /
     path_suspect / path_down landmark counts and the handoff tally
     next to the drop timelines. *)
  let telemetry =
    match Sys.getenv_opt "RINA_STATS" with
    | Some _ -> Some (Rina_util.Telemetry.create ())
    | None -> None
  in
  (match telemetry with
  | Some t -> Trace.attach ~telemetry:t tr
  | None -> Trace.attach tr);
  let delivered = ref 0 and dups = ref 0 and ooo = ref 0 and corrupt = ref 0 in
  let seen = Hashtbl.create 4096 in
  let highest = ref (-1) in
  let dst = Types.apn "mp-sink" in
  Ipcp.register_app h2 dst ~on_flow:(fun flow ->
      flow.Ipcp.set_on_receive (fun sdu ->
          match Workload.read_sealed sdu with
          | Workload.Sealed_corrupt -> incr corrupt
          | Workload.Sealed_ok (_, seq) ->
            if Hashtbl.mem seen seq then incr dups
            else begin
              Hashtbl.replace seen seq ();
              incr delivered;
              if seq < !highest then incr ooo;
              if seq > !highest then highest := seq
            end));
  let src = Types.apn "mp-src" in
  Ipcp.register_app h1 src ~on_flow:(fun _ -> ());
  let result = ref None in
  Ipcp.allocate_flow h1 ~src ~dst ~qos_id:1 ~on_result:(fun res ->
      result := Some res);
  let deadline = Engine.now engine +. 30. in
  while !result = None && Engine.now engine < deadline do
    Engine.run ~until:(Engine.now engine +. 0.05) engine
  done;
  match !result with
  | Some (Ok flow) ->
    let t0 = Engine.now engine in
    let plan = Fault.create () in
    let label1, a1, b1 = kill_one in
    Fault.link_down plan ~at:(t0 +. a1) ~until:(t0 +. b1) ~label:label1 wire_l1;
    (* both wires swallow frames with the carrier still up: no local
       carrier cue, so the monitor must *probe* its way to Down — and
       once both paths are Down the sender's RMT takes typed
       R_path_down drops until a re-probe succeeds after the heal *)
    let label2, a2, b2 = kill_both in
    Fault.window plan ~at:(t0 +. a2) ~until:(t0 +. b2) ~label:label2
      ~apply:(fun () ->
        Link.set_blackhole wire_l1 true;
        Link.set_blackhole wire_l2 true)
      ~heal:(fun () ->
        Link.set_blackhole wire_l1 false;
        Link.set_blackhole wire_l2 false);
    Fault.arm plan engine;
    (* sealed CBR: [Workload.cbr] stamps without the CRC trailer, so
       schedule the stream by hand *)
    let interval = float_of_int (8 * sdu_size) /. cbr_rate in
    let sent = ref 0 in
    let rec tick () =
      flow.Ipcp.send
        (Workload.stamp_sealed ~now:(Engine.now engine) ~seq:!sent
           ~size:sdu_size);
      incr sent;
      if Engine.now engine < t0 +. stream_len then
        ignore (Engine.schedule engine ~delay:interval tick)
    in
    tick ();
    Engine.run ~until:(t0 +. stream_len +. drain) engine;
    (match Sys.getenv_opt "RINA_TRACE" with
    | Some path -> Trace.save_jsonl tr path
    | None -> ());
    (match (telemetry, Sys.getenv_opt "RINA_STATS") with
    | Some t, Some path ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc (Rina_util.Telemetry.to_jsonl t))
    | _ -> ());
    let events = Trace.typed_events tr in
    Trace.detach ();
    (* deliveries that count: rank-1 EFCP receptions (lower-DIF and
       mgmt traffic would mask the blackout) *)
    let kept =
      List.filter
        (fun (e : Flight.event) ->
          match e.Flight.kind with
          | Flight.Pdu_recvd ->
            e.Flight.rank = 1 && String.equal e.Flight.component "efcp"
          | _ -> true)
        events
    in
    let path_down_drops =
      List.length
        (List.filter
           (fun (e : Flight.event) ->
             match e.Flight.kind with
             | Flight.Pdu_dropped Flight.R_path_down -> true
             | _ -> false)
           events)
    in
    Ok
      {
        fo_sent = !sent;
        fo_delivered = !delivered;
        fo_dups = !dups;
        fo_ooo = !ooo;
        fo_corrupt = !corrupt;
        fo_blackouts = Report.blackouts kept;
        fo_path_down_drops = path_down_drops;
        fo_failovers = Metrics.get (Ipcp.metrics h1) "failovers";
        fo_repath_pdus = Metrics.get (Ipcp.metrics h1) "repath_pdus";
      }
  | Some (Error e) ->
    Trace.detach ();
    Error ("allocation failed: " ^ e)
  | None ->
    Trace.detach ();
    Error "allocation hung"

let blackout_of outcome label =
  match
    List.find_opt (fun (l, _, _) -> String.equal l label) outcome.fo_blackouts
  with
  | Some (_, _, gap) -> gap
  | None -> None

(* ---------- 2. striped vs single-path goodput ---------- *)

let bulk_sdus = 2_000

let bulk_sdu_size = 1_000

(* One dual-homed pair; a windowed bulk transfer of [bulk_sdus] SDUs.
   Returns delivered-application goodput in bits/s. *)
let run_striping ~policy =
  let engine = Engine.create () in
  let rng = Rina_util.Prng.create 212 in
  let dif = Dif.create engine ~policy "stripe" in
  let a = Dif.add_member dif ~name:"a" () in
  let b = Dif.add_member dif ~name:"b" () in
  let l1 = Link.create engine rng ~bit_rate:10_000_000. ~delay:0.002 () in
  let l2 = Link.create engine rng ~bit_rate:10_000_000. ~delay:0.002 () in
  Dif.connect dif a b (Link.endpoint_a l1, Link.endpoint_b l1);
  Dif.connect dif a b (Link.endpoint_a l2, Link.endpoint_b l2);
  Dif.run_until_converged dif ();
  let sink = Workload.sink () in
  let dst = Types.apn "stripe-sink" in
  Ipcp.register_app b dst ~on_flow:(fun flow ->
      flow.Ipcp.set_on_receive (fun sdu ->
          Workload.on_sdu sink ~now:(Engine.now engine) sdu));
  let result = ref None in
  Ipcp.allocate_flow a ~src:(Types.apn "stripe-src") ~dst ~qos_id:1
    ~on_result:(fun res -> result := Some res);
  let deadline = Engine.now engine +. 30. in
  while !result = None && Engine.now engine < deadline do
    Engine.run ~until:(Engine.now engine +. 0.05) engine
  done;
  match !result with
  | Some (Ok flow) ->
    let t0 = Engine.now engine in
    Workload.bulk ~send:flow.Ipcp.send ~now:t0 ~count:bulk_sdus
      ~size:bulk_sdu_size;
    Engine.run ~until:(t0 +. 120.) engine;
    if sink.Workload.count < bulk_sdus then None
    else Some (Workload.goodput sink ~t0 ~t1:sink.Workload.last_arrival)
  | _ -> None

(* ---------- 3. mass mobility: a cell of dual-homed handsets ---------- *)

let mobiles () = if smoke () then 24 else 120

(* At cell scale (hundreds of ports on the base stations) a 50 ms
   probe on every port dominates the event stream; the cell probes at
   a calmer cadence — mass handoff is carrier-driven ("the system
   knows its own radios"), so the probe interval only bounds the
   blackhole-style detection this part does not exercise.  LSA
   refresh is off (as in F5, so routing traffic measures the moves
   alone) — which makes the enrollment-time floods load-bearing: an
   LSA tail-dropped in the mass-enrollment crush would never heal and
   the hub would keep no route back to that handset, so the cell
   links carry queues deep enough for the one-time crush (the default
   64-frame queue silently sheds part of a 120-member flood). *)
let cell_probe_interval = 0.2

let cell_queue_capacity = 1024

let cell_policy =
  {
    mp_policy with
    Policy.multipath =
      { mp_policy.Policy.multipath with Policy.probe_interval = cell_probe_interval };
    Policy.routing = { Policy.default_routing with Policy.refresh_ticks = 0 };
  }

let mob_rate = 64_000.

let mob_sdu = 200

let mob_stream = 10.

let mob_kill_at = 4.

type mobility_outcome = {
  mo_mobiles : int;
  mo_flows : int;
  mo_delivered : int;
  mo_lost : int;
  mo_goodput : float;
  mo_max_blackout : float;
}

let run_mass_mobility () =
  let n = mobiles () in
  let engine = Engine.create () in
  let rng = Rina_util.Prng.create 213 in
  let mk_link ?(bit_rate = 20_000_000.) () =
    Link.create engine rng ~bit_rate ~delay:0.002
      ~queue_capacity:cell_queue_capacity ()
  in
  let dif = Dif.create engine ~policy:cell_policy "cell" in
  let hub = Dif.add_member dif ~name:"hub" () in
  let b1 = Dif.add_member dif ~name:"bs1" () in
  let b2 = Dif.add_member dif ~name:"bs2" () in
  let connect x y l = Dif.connect dif x y (Link.endpoint_a l, Link.endpoint_b l) in
  connect hub b1 (mk_link ~bit_rate:100_000_000. ());
  connect hub b2 (mk_link ~bit_rate:100_000_000. ());
  let radios1 = Array.make n None in
  let handsets =
    Array.init n (fun i ->
        let m = Dif.add_member dif ~name:(Printf.sprintf "m%03d" i) () in
        let r1 = mk_link () and r2 = mk_link () in
        connect b1 m r1;
        connect b2 m r2;
        radios1.(i) <- Some r1;
        m)
  in
  Dif.run_until_converged dif ~max_time:600. ();
  (* one upload sink at the hub; every accepted flow gets its own
     arrival bookkeeping *)
  let total = ref 0 and total_bytes = ref 0 in
  let flow_logs = ref [] in
  let t_kill = ref infinity in
  let dst = Types.apn "hub-sink" in
  Ipcp.register_app hub dst ~on_flow:(fun flow ->
      let last_before = ref nan and first_after = ref nan in
      flow_logs := (last_before, first_after) :: !flow_logs;
      flow.Ipcp.set_on_receive (fun sdu ->
          incr total;
          total_bytes := !total_bytes + Bytes.length sdu;
          let now = Engine.now engine in
          if now < !t_kill then last_before := now
          else if Float.is_nan !first_after then first_after := now));
  let pending = ref 0 and failed = ref 0 in
  (* stagger the flow setups: 120 simultaneous allocations are an
     admission flash crowd (R3's subject), not this bench's — the
     handsets come up over a couple of seconds and then all lose their
     B1 radio in the same instant *)
  Array.iteri
    (fun i m ->
      incr pending;
      ignore
        (Engine.schedule engine
           ~delay:(0.02 *. float_of_int i)
           (fun () ->
             Ipcp.allocate_flow m
               ~src:(Types.apn (Printf.sprintf "up%03d" i))
               ~dst ~qos_id:1
               ~on_result:(fun res ->
                 decr pending;
                 match res with
                 | Ok flow ->
                   Workload.cbr engine ~send:flow.Ipcp.send ~rate:mob_rate
                     ~size:mob_sdu
                     ~until:(Engine.now engine +. mob_stream)
                     ()
                 | Error _ -> incr failed))))
    handsets;
  let deadline = Engine.now engine +. 60. in
  while !pending > 0 && Engine.now engine < deadline do
    Engine.run ~until:(Engine.now engine +. 0.1) engine
  done;
  let t0 = Engine.now engine in
  t_kill := t0 +. mob_kill_at;
  ignore
    (Engine.schedule_at engine ~time:!t_kill (fun () ->
         Array.iter
           (function Some l -> Link.set_up l false | None -> ())
           radios1));
  Engine.run ~until:(t0 +. mob_stream +. 5.) engine;
  let interval = float_of_int (8 * mob_sdu) /. mob_rate in
  let max_blackout =
    List.fold_left
      (fun acc (last_before, first_after) ->
        if Float.is_nan !last_before || Float.is_nan !first_after then acc
        else Float.max acc (!first_after -. !last_before -. interval))
      0. !flow_logs
  in
  let sent_per_flow = int_of_float (mob_stream /. interval) in
  {
    mo_mobiles = n;
    mo_flows = n - !failed;
    mo_delivered = !total;
    mo_lost = max 0 ((sent_per_flow * (n - !failed)) - !total);
    mo_goodput = float_of_int (8 * !total_bytes) /. (mob_stream +. 5.);
    mo_max_blackout = Float.max 0. max_blackout;
  }

(* ---------- Mobile-IP triangle baseline ---------- *)

(* exp_f5's arrangement, reduced to the one number this bench needs:
   the handoff blackout of a care-of registration through the distant
   home agent. *)
let run_mobile_ip () =
  let engine = Engine.create () in
  let rng = Rina_util.Prng.create 214 in
  let mk_link () = Link.create engine rng ~bit_rate:10_000_000. ~delay:0.002 () in
  let h = Tcpip.Node.create engine "H" in
  let r0 = Tcpip.Node.create engine ~forwarding:true "R0" in
  let rh = Tcpip.Node.create engine ~forwarding:true "RH" in
  let rf = Tcpip.Node.create engine ~forwarding:true "RF" in
  let m = Tcpip.Node.create engine "M" in
  let wire ?(up = true) no a b =
    let l = mk_link () in
    if not up then Link.set_up l false;
    let subnet = Tcpip.Ip.addr_of_octets 10 no 0 0 in
    let prefix = Tcpip.Ip.prefix subnet 16 in
    ignore (Tcpip.Node.add_iface a (Link.endpoint_a l) ~addr:(subnet lor 1) ~prefix);
    ignore (Tcpip.Node.add_iface b (Link.endpoint_b l) ~addr:(subnet lor 2) ~prefix);
    (l, subnet)
  in
  let _ = wire 1 h r0 in
  let _ = wire 2 r0 rh in
  let l_home, s_home = wire 3 rh m in
  let _ = wire 4 r0 rf in
  let l_foreign, s_foreign = wire ~up:false 5 rf m in
  ignore (Tcpip.Node.add_static_route h (Tcpip.Ip.prefix 0 0) ~if_id:1 ());
  ignore (Tcpip.Node.add_static_route m (Tcpip.Ip.prefix 0 0) ~if_id:1 ());
  List.iter (fun r -> ignore (Tcpip.Dv.start r ~period:5.0 ())) [ r0; rh; rf ];
  Engine.run ~until:30. engine;
  let home_addr = s_home lor 2 in
  let care_of = s_foreign lor 2 in
  let u_h = Tcpip.Udp.attach h and u_m = Tcpip.Udp.attach m in
  let u_rh = Tcpip.Udp.attach rh in
  let ha_addr = Tcpip.Ip.addr_of_octets 10 2 0 2 in
  let _agent = Tcpip.Mobile_ip.home_agent rh u_rh ~local:ha_addr in
  let mob = Tcpip.Mobile_ip.mobile m u_m ~home_addr in
  let last_rx = ref 0. and max_gap = ref 0. in
  Tcpip.Udp.listen u_m ~port:9000 (fun ~src:_ ~sport:_ _ ->
      let now = Engine.now engine in
      if !last_rx > 0. && now -. !last_rx > !max_gap then
        max_gap := now -. !last_rx;
      last_rx := now);
  let h_src = Tcpip.Ip.addr_of_octets 10 1 0 1 in
  let interval = float_of_int (8 * mob_sdu) /. mob_rate in
  let rec stream () =
    Tcpip.Udp.send u_h ~src:h_src ~dst:home_addr ~sport:9000 ~dport:9000
      (Bytes.make mob_sdu 'm');
    if Engine.now engine < 50. then
      ignore (Engine.schedule engine ~delay:interval stream)
  in
  stream ();
  Engine.run ~until:33. engine;
  (* the move: home radio dies, foreign comes up, care-of registers *)
  max_gap := 0.;
  last_rx := Engine.now engine;
  Link.set_up l_home false;
  Link.set_up l_foreign true;
  ignore (Tcpip.Node.add_static_route m (Tcpip.Ip.prefix 0 0) ~if_id:2 ());
  let registered = ref false in
  Tcpip.Mobile_ip.register_care_of mob ~home_agent_addr:ha_addr ~care_of
    ~on_ack:(fun () -> registered := true);
  Engine.run ~until:52. engine;
  (!max_gap, !registered)

(* ---------- reporting + gates ---------- *)

let fmt_blackout = function
  | Some g -> Printf.sprintf "%.6f" g
  | None -> "null"

let write_json fo striped single mob (ip_blackout, ip_registered) =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"failover\": {\n";
  Buffer.add_string buf
    (Printf.sprintf "    \"probe_interval_s\": %.3f,\n" probe_interval);
  Buffer.add_string buf
    (Printf.sprintf "    \"sent\": %d,\n    \"delivered\": %d,\n" fo.fo_sent
       fo.fo_delivered);
  Buffer.add_string buf
    (Printf.sprintf
       "    \"duplicates\": %d,\n    \"out_of_order\": %d,\n    \
        \"corrupt_escaped\": %d,\n"
       fo.fo_dups fo.fo_ooo fo.fo_corrupt);
  Buffer.add_string buf
    (Printf.sprintf "    \"failovers\": %d,\n    \"repath_pdus\": %d,\n"
       fo.fo_failovers fo.fo_repath_pdus);
  Buffer.add_string buf
    (Printf.sprintf "    \"path_down_drops\": %d,\n" fo.fo_path_down_drops);
  Buffer.add_string buf
    (Printf.sprintf "    \"kill_path_blackout_s\": %s,\n"
       (fmt_blackout (blackout_of fo (let l, _, _ = kill_one in l))));
  Buffer.add_string buf
    (Printf.sprintf "    \"kill_both_blackout_s\": %s\n  },\n"
       (fmt_blackout (blackout_of fo (let l, _, _ = kill_both in l))));
  Buffer.add_string buf "  \"striping\": {\n";
  Buffer.add_string buf
    (Printf.sprintf
       "    \"striped_goodput_bps\": %.0f,\n    \"single_goodput_bps\": \
        %.0f,\n    \"speedup\": %.3f\n  },\n"
       striped single
       (if single > 0. then striped /. single else 0.));
  Buffer.add_string buf "  \"mass_mobility\": {\n";
  Buffer.add_string buf
    (Printf.sprintf
       "    \"mobiles\": %d,\n    \"flows\": %d,\n    \"delivered\": %d,\n    \
        \"lost\": %d,\n    \"aggregate_goodput_bps\": %.0f,\n    \
        \"max_blackout_s\": %.6f\n  },\n"
       mob.mo_mobiles mob.mo_flows mob.mo_delivered mob.mo_lost mob.mo_goodput
       mob.mo_max_blackout);
  Buffer.add_string buf "  \"mobile_ip\": {\n";
  Buffer.add_string buf
    (Printf.sprintf
       "    \"handoff_blackout_s\": %.6f,\n    \"registered\": %b\n  }\n"
       ip_blackout ip_registered);
  Buffer.add_string buf "}\n";
  Out_channel.with_open_text "BENCH_multipath.json" (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf))

let run () =
  let table =
    Table.create
      ~title:
        "R4: multihoming failover + multipath striping — dual-homed relay, \
         striped goodput, mass mobility"
      ~columns:[ "measurement"; "RINA multipath"; "baseline" ]
  in
  match run_failover () with
  | Error e -> Printf.printf "R4: failover run failed: %s\n" e
  | Ok fo ->
    let striped = run_striping ~policy:mp_policy in
    let single = run_striping ~policy:single_path_policy in
    let mob = run_mass_mobility () in
    let ip_blackout, ip_registered = run_mobile_ip () in
    let striped_bps = Option.value ~default:0. striped in
    let single_bps = Option.value ~default:0. single in
    let kill_path = blackout_of fo (let l, _, _ = kill_one in l) in
    let kill_both_g = blackout_of fo (let l, _, _ = kill_both in l) in
    Table.add_rowf table
      "path-kill blackout | %s s (probe interval %.2f s) | Mobile-IP handoff \
       %.3f s"
      (match kill_path with Some g -> Printf.sprintf "%.4f" g | None -> "NONE")
      probe_interval ip_blackout;
    Table.add_rowf table
      "both-paths outage | %s s, %d typed path-down drops | n/a"
      (match kill_both_g with Some g -> Printf.sprintf "%.2f" g | None -> "NONE")
      fo.fo_path_down_drops;
    Table.add_rowf table
      "delivery across failover | %d/%d, %d dup, %d ooo, %d corrupt | UDP \
       loses the outage window"
      fo.fo_delivered fo.fo_sent fo.fo_dups fo.fo_ooo fo.fo_corrupt;
    Table.add_rowf table
      "bulk goodput, 2 equal paths | %.2f Mb/s striped | %.2f Mb/s \
       single-path (%.2fx)"
      (striped_bps /. 1e6) (single_bps /. 1e6)
      (if single_bps > 0. then striped_bps /. single_bps else 0.);
    Table.add_rowf table
      "mass handoff (%d handsets) | %.0f ms worst blackout, %.1f Mb/s \
       aggregate, %d lost | triangle routing via home agent"
      mob.mo_mobiles
      (1000. *. mob.mo_max_blackout)
      (mob.mo_goodput /. 1e6) mob.mo_lost;
    Table.print table;
    write_json fo striped_bps single_bps mob (ip_blackout, ip_registered);
    Printf.printf "wrote BENCH_multipath.json\n";
    if Sys.getenv_opt "RINA_BENCH_CHECK" <> None then begin
      let fail = ref false in
      let claim name ok =
        Printf.printf "multipath gate: %-32s %s\n" name
          (if ok then "ok" else "VIOLATED");
        if not ok then fail := true
      in
      claim "failover blackout <= 2x probe"
        (match kill_path with
        | Some g -> g <= 2. *. probe_interval
        | None -> false);
      claim "exactly_once (no dups)" (fo.fo_dups = 0);
      claim "in_order" (fo.fo_ooo = 0);
      claim "complete delivery" (fo.fo_delivered = fo.fo_sent);
      claim "no corrupt escapes" (fo.fo_corrupt = 0);
      claim "striped >= 1.5x single-path"
        (single_bps > 0. && striped_bps >= 1.5 *. single_bps);
      claim "mass handoff bounded"
        (mob.mo_max_blackout <= (2. *. cell_probe_interval) +. 0.05);
      claim "mobile-ip blackout recorded"
        (ip_registered && Float.is_finite ip_blackout && ip_blackout > 0.);
      if !fail then begin
        Printf.eprintf "R4: multipath invariant violated\n";
        exit 1
      end
    end
