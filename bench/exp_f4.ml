(* F4 — Figure 4: two-step routing and multihoming failover.

   RINA side: host H -- router R == M, where R and M share TWO
   parallel links (two points of attachment).  A CBR stream H→M runs
   while the primary R–M link fails.  Because a route is a sequence of
   node addresses and the PoA is chosen per hop (the figure's second
   step), R repairs the path locally: no routing update leaves the
   R–M adjacency, and the interruption is the detection time.

   Baselines: a TCP connection pinned to the failed interface address
   (it can only die: the address names the interface, not the node);
   and IP distance-vector rerouting around a failed link in a diamond
   topology.  Both are run for crash (carrier-signalled) and silent
   (timeout-detected) failures. *)

module Engine = Rina_sim.Engine
module Ipcp = Rina_core.Ipcp
module Link = Rina_sim.Link
module Table = Rina_util.Table
module Topo = Rina_exp.Topo
module Scenario = Rina_exp.Scenario
module Workload = Rina_exp.Workload

let cbr_rate = 2_000_000.

let sdu_size = 1000

(* --- RINA: two points of attachment, fail the active one --- *)

let rina_case ?(fail = true) ~silent () =
  let engine = Engine.create () in
  let rng = Rina_util.Prng.create 47 in
  let dif = Rina_core.Dif.create engine "net" in
  let h = Rina_core.Dif.add_member dif ~name:"H" () in
  let r = Rina_core.Dif.add_member dif ~name:"R" () in
  let m = Rina_core.Dif.add_member dif ~name:"M" () in
  let mk () = Link.create engine rng ~bit_rate:10_000_000. ~delay:0.002 () in
  let l_hr = mk () and l_rm1 = mk () and l_rm2 = mk () in
  Rina_core.Dif.connect dif h r (Link.endpoint_a l_hr, Link.endpoint_b l_hr);
  Rina_core.Dif.connect dif r m (Link.endpoint_a l_rm1, Link.endpoint_b l_rm1);
  Rina_core.Dif.connect dif r m (Link.endpoint_a l_rm2, Link.endpoint_b l_rm2);
  Rina_core.Dif.run_until_converged dif ();
  let net =
    { Topo.engine; rng; dif; nodes = [| h; r; m |];
      links = [| l_hr; l_rm1; l_rm2 |]; edges = [| (0, 1); (1, 2); (1, 2) |] }
  in
  let sink = Workload.sink () in
  match Scenario.open_flow net ~src:0 ~dst:2 ~qos_id:0 ~sink () with
  | Error e -> Error e
  | Ok (flow, _) ->
    let t0 = Engine.now engine in
    Workload.cbr engine ~send:flow.Ipcp.send ~rate:cbr_rate ~size:sdu_size
      ~until:(t0 +. 12.) ();
    Topo.wait engine 3.;
    let lsa_before = Scenario.sum_metric net "lsa_tx" in
    let reroute_before = Scenario.sum_metric net "local_reroute" in
    (* Fail whichever parallel link carries the stream (the chosen PoA
       is the lowest port id, bound to l_rm1). *)
    if fail then
      if silent then Link.set_blackhole l_rm1 true else Link.set_up l_rm1 false;
    let fail_time = Engine.now engine in
    Topo.wait engine 9.5;
    let lsa_after = Scenario.sum_metric net "lsa_tx" in
    let reroute_after = Scenario.sum_metric net "local_reroute" in
    Ok
      ( sink,
        fail_time,
        t0,
        reroute_after - reroute_before,
        lsa_after - lsa_before )

(* The sink records latencies but not arrival times; measure the
   outage as expected-minus-received around the failure window using
   sequence numbers instead: the CBR sender stamps consecutive seqs,
   so lost = max_seq_seen + 1 - count. *)

let run_rina table ~silent =
  (* Control run without failure: its LSA count over the same window
     is pure periodic refresh, subtracted so the row shows only
     failure-triggered routing traffic. *)
  let control_lsa =
    match rina_case ~fail:false ~silent () with
    | Ok (_, _, _, _, lsa) -> lsa
    | Error _ -> 0
  in
  match rina_case ~silent () with
  | Error e ->
    Table.add_rowf table "RINA 2 PoAs, %s | FAILED: %s | - | - | -"
      (if silent then "silent failure" else "carrier loss")
      e
  | Ok (sink, _fail_time, _t0, reroutes, lsa_delta) ->
    let sent = sink.Workload.seen_max_seq + 1 in
    let lost = sent - sink.Workload.count in
    let interval = float_of_int (8 * sdu_size) /. cbr_rate in
    let outage = float_of_int lost *. interval in
    Table.add_rowf table "RINA 2 PoAs, %s | %.0f ms | %d | %d local, %d LSA floods | yes"
      (if silent then "silent failure" else "carrier loss")
      (1000. *. outage) lost reroutes
      (max 0 (lsa_delta - control_lsa))

(* --- TCP pinned to a failed interface --- *)

let run_tcp table ~silent =
  let engine = Engine.create () in
  let rng = Rina_util.Prng.create 47 in
  (* H --- M over one link; M has a second (idle) interface: TCP bound
     to the first address cannot use it. *)
  let h = Tcpip.Node.create engine "H" in
  let m = Tcpip.Node.create engine "M" in
  let l1 = Link.create engine rng ~bit_rate:10_000_000. ~delay:0.002 () in
  let l2 = Link.create engine rng ~bit_rate:10_000_000. ~delay:0.002 () in
  let net1 = Tcpip.Ip.prefix_of_string "10.1.0.0/16" in
  let net2 = Tcpip.Ip.prefix_of_string "10.2.0.0/16" in
  let a_h1 = Tcpip.Ip.addr_of_string "10.1.0.1" in
  let a_m1 = Tcpip.Ip.addr_of_string "10.1.0.2" in
  let a_h2 = Tcpip.Ip.addr_of_string "10.2.0.1" in
  let a_m2 = Tcpip.Ip.addr_of_string "10.2.0.2" in
  ignore (Tcpip.Node.add_iface h (Link.endpoint_a l1) ~addr:a_h1 ~prefix:net1);
  ignore (Tcpip.Node.add_iface m (Link.endpoint_b l1) ~addr:a_m1 ~prefix:net1);
  ignore (Tcpip.Node.add_iface h (Link.endpoint_a l2) ~addr:a_h2 ~prefix:net2);
  ignore (Tcpip.Node.add_iface m (Link.endpoint_b l2) ~addr:a_m2 ~prefix:net2);
  let th = Tcpip.Tcp.attach h and tm = Tcpip.Tcp.attach m in
  let received = ref 0 in
  Tcpip.Tcp.listen tm ~port:5001 ~on_accept:(fun conn ->
      Tcpip.Tcp.set_on_receive conn (fun _ -> incr received));
  let err_time = ref None in
  let conn_ref = ref None in
  Tcpip.Tcp.connect th ~src:a_h1 ~dst:a_m1 ~dport:5001 ~on_result:(function
    | Ok conn ->
      conn_ref := Some conn;
      Tcpip.Tcp.set_on_error conn (fun _ ->
          err_time := Some (Engine.now engine))
    | Error _ -> ());
  Engine.run ~until:(Engine.now engine +. 1.) engine;
  (* Steady stream, then fail the path at t=3. *)
  (match !conn_ref with
   | Some conn ->
     let rec feeder () =
       Tcpip.Tcp.send conn (Bytes.make sdu_size 'd');
       if Engine.now engine < 20. then
         ignore (Engine.schedule engine ~delay:0.004 feeder)
     in
     feeder ()
   | None -> ());
  Engine.run ~until:3.0 engine;
  if silent then Link.set_blackhole l1 true else Link.set_up l1 false;
  let fail_time = Engine.now engine in
  Engine.run ~until:60.0 engine;
  match !err_time with
  | Some t ->
    Table.add_rowf table
      "TCP pinned to failed iface, %s | connection ABORTED after %.1f s | all in flight | n/a | no (second iface idle)"
      (if silent then "silent failure" else "carrier loss")
      (t -. fail_time)
  | None ->
    Table.add_rowf table "TCP pinned to failed iface, %s | still hung at +57 s | - | - | no"
      (if silent then "silent failure" else "carrier loss")

(* --- IP distance vector around a diamond --- *)

let run_dv table ~silent ~period =
  let engine = Engine.create () in
  let rng = Rina_util.Prng.create 47 in
  let mk name = Tcpip.Node.create engine ~forwarding:true name in
  (* Asymmetric diamond: top path r0-r1-r3 is 2 hops, bottom path
     r0-r2a-r2b-r3 is 3 hops, so DV deterministically prefers the top
     and failing it forces a reroute. *)
  let r0 = mk "r0" and r1 = mk "r1" and r2a = mk "r2a" and r2b = mk "r2b" and r3 = mk "r3" in
  let ha = Tcpip.Node.create engine "ha" and hb = Tcpip.Node.create engine "hb" in
  let link_no = ref 0 in
  let wire a b =
    incr link_no;
    let l = Link.create engine rng ~bit_rate:10_000_000. ~delay:0.002 () in
    let subnet = Tcpip.Ip.addr_of_octets 10 !link_no 0 0 in
    let prefix = Tcpip.Ip.prefix subnet 16 in
    ignore (Tcpip.Node.add_iface a (Link.endpoint_a l) ~addr:(subnet lor 1) ~prefix);
    ignore (Tcpip.Node.add_iface b (Link.endpoint_b l) ~addr:(subnet lor 2) ~prefix);
    (l, subnet)
  in
  let _, s_ha = wire ha r0 in
  let l_top, _ = wire r0 r1 in
  let _ = wire r1 r3 in
  let _ = wire r0 r2a in
  let _ = wire r2a r2b in
  let _ = wire r2b r3 in
  let _, s_hb = wire r3 hb in
  ignore s_ha;
  ignore (Tcpip.Node.add_static_route ha (Tcpip.Ip.prefix 0 0) ~if_id:1 ());
  ignore (Tcpip.Node.add_static_route hb (Tcpip.Ip.prefix 0 0) ~if_id:1 ());
  let dvs =
    List.map (fun r -> Tcpip.Dv.start r ~period ()) [ r0; r1; r2a; r2b; r3 ]
  in
  Engine.run ~until:(6. *. period) engine;
  (* Make the top path preferred by giving the bottom path an extra
     metric: DV picks shortest hop count; top = r0-r1-r3 (2 hops),
     bottom = r0-r2-r3 (2 hops) — tie; force top by failing bottom
     first briefly?  Simpler: both equal; fail whichever r0 uses. *)
  let u_ha = Tcpip.Udp.attach ha and u_hb = Tcpip.Udp.attach hb in
  let got = ref 0 and last_gap = ref 0. and last_rx = ref 0. in
  Tcpip.Udp.listen u_hb ~port:7000 (fun ~src:_ ~sport:_ _ ->
      let now = Engine.now engine in
      if Sys.getenv_opt "F4_DEBUG" <> None && silent && now > 32.9 && now < 45. then
        Printf.eprintf "arrival %.4f\n%!" now;
      if !last_rx > 0. && now -. !last_rx > !last_gap then
        last_gap := now -. !last_rx;
      last_rx := now;
      incr got);
  let a_src = Tcpip.Ip.addr_of_string "10.1.0.1" in
  let b_dst = s_hb lor 2 in
  let interval = float_of_int (8 * sdu_size) /. cbr_rate in
  let rec stream () =
    Tcpip.Udp.send u_ha ~src:a_src ~dst:b_dst ~sport:7000 ~dport:7000
      (Bytes.make sdu_size 'u');
    (* Keep streaming well past the slowest recovery (route expiry is
       3.5 periods) so the outage window can close. *)
    if Engine.now engine < (6. *. period) +. 28. then
      ignore (Engine.schedule engine ~delay:interval stream)
  in
  stream ();
  Engine.run ~until:(Engine.now engine +. 3.) engine;
  let adv_before =
    List.fold_left (fun acc dv -> acc + Tcpip.Dv.advertisements_sent dv) 0 dvs
  in
  (if Sys.getenv_opt "F4_DEBUG" <> None then
     List.iter
       (fun (p, (r : Tcpip.Node.route)) ->
         Printf.eprintf "r0: %s via if%d metric %d from %s\n%!"
           (Format.asprintf "%a" Tcpip.Ip.pp_prefix p)
           r.Tcpip.Node.rt_if r.Tcpip.Node.rt_metric
           (match r.Tcpip.Node.rt_learned_from with
            | Some a -> Tcpip.Ip.string_of_addr a
            | None -> "static"))
       (Tcpip.Node.routes r0));
  (if silent then Link.set_blackhole l_top true else Link.set_up l_top false);
  let fail_time = Engine.now engine in
  last_gap := 0.;
  last_rx := fail_time;
  Engine.run ~until:(fail_time +. 25.) engine;
  let adv_after =
    List.fold_left (fun acc dv -> acc + Tcpip.Dv.advertisements_sent dv) 0 dvs
  in
  Table.add_rowf table
    "IP DV diamond reroute, %s | %.0f ms | ~%.0f | %d DV advertisements | n/a"
    (if silent then "silent failure" else "carrier loss")
    (1000. *. !last_gap)
    (!last_gap /. interval)
    (adv_after - adv_before)

let run () =
  let table =
    Table.create
      ~title:
        "F4: multihoming failover (Fig. 4) — 2 Mb/s CBR, failure injected mid-stream"
      ~columns:
        [ "configuration"; "outage"; "SDUs lost"; "repair traffic"; "session survives" ]
  in
  run_rina table ~silent:false;
  run_rina table ~silent:true;
  run_tcp table ~silent:false;
  run_tcp table ~silent:true;
  run_dv table ~silent:false ~period:5.0;
  run_dv table ~silent:true ~period:5.0;
  Table.print table
