(* Flight-recorder overhead micro-benchmark.

   Three measurements, written as BENCH_trace_overhead.json so the perf
   trajectory is machine-readable across commits:

   - the disabled path: every instrumented site costs one ref load and
     one branch ([if Flight.enabled () then ...]) — measured per event to
     show that tracing off is free;
   - the enabled path: full event construction + sink call (a counting
     sink, so the numbers are emission cost, not buffer growth);
   - a small scenario (a timer-driven sender over a Link for 5
     simulated seconds) run with tracing off and on, whose ratio is the
     end-to-end overhead story. *)

module Flight = Rina_util.Flight
module Engine = Rina_sim.Engine
module Link = Rina_sim.Link

(* The representative emission site: guard, span computation, emit. *)
let[@inline never] emission_site i =
  if Flight.enabled () then
    Flight.emit ~component:"bench" ~flow:7 ~seq:i ~size:1400
      ~span:(Flight.span_of ~flow:7 ~seq:i) Flight.Pdu_sent

(* Run [site] in batches until at least [min_time] CPU seconds have
   been consumed; returns seconds per call. *)
let time_per_call ?(min_time = 0.2) site =
  let batch = 1_000_000 in
  let total = ref 0 and elapsed = ref 0. in
  while !elapsed < min_time do
    let t0 = Sys.time () in
    for i = 1 to batch do
      site i
    done;
    elapsed := !elapsed +. (Sys.time () -. t0);
    total := !total + batch
  done;
  !elapsed /. float_of_int !total

let scenario () =
  let engine = Engine.create () in
  let rng = Rina_util.Prng.create 1 in
  let link = Link.create engine rng ~bit_rate:1e8 ~delay:0.001 ~label:"bench" () in
  let a = Link.endpoint_a link in
  (Link.endpoint_b link).Rina_sim.Chan.set_receiver (fun _ -> ());
  let frame = Bytes.make 1000 'x' in
  let rec tick () =
    a.Rina_sim.Chan.send frame;
    if Engine.now engine < 5.0 then
      ignore (Engine.schedule engine ~delay:0.0001 tick)
  in
  tick ();
  let t0 = Sys.time () in
  Engine.run engine;
  Sys.time () -. t0

let run () =
  (* Make sure the recorder starts from the default (off) state. *)
  Rina_sim.Trace.detach ();
  let ns_disabled = 1e9 *. time_per_call emission_site in
  let scenario_disabled = scenario () in
  let count = ref 0 in
  Flight.set_sink (fun _ -> incr count);
  Flight.set_enabled true;
  let ns_enabled = 1e9 *. time_per_call emission_site in
  let scenario_enabled = scenario () in
  Rina_sim.Trace.detach ();
  let events_per_sec = 1e9 /. ns_enabled in
  let ratio =
    if scenario_disabled > 0. then scenario_enabled /. scenario_disabled
    else 1.
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"ns_per_event_disabled\": %.3f,\n\
      \  \"ns_per_event_enabled\": %.3f,\n\
      \  \"events_per_sec_enabled\": %.0f,\n\
      \  \"scenario_disabled_s\": %.4f,\n\
      \  \"scenario_enabled_s\": %.4f,\n\
      \  \"scenario_overhead_ratio\": %.4f\n\
       }\n"
      ns_disabled ns_enabled events_per_sec scenario_disabled scenario_enabled
      ratio
  in
  Out_channel.with_open_text "BENCH_trace_overhead.json" (fun oc ->
      Out_channel.output_string oc json);
  Printf.printf
    "trace overhead: %.2f ns/event disabled (gate only), %.1f ns/event \
     enabled (%.1f Mevents/s); scenario %.3fs -> %.3fs (x%.3f)\n\
     wrote BENCH_trace_overhead.json\n"
    ns_disabled ns_enabled (events_per_sec /. 1e6) scenario_disabled
    scenario_enabled ratio
