(* Flight-recorder overhead micro-benchmark.

   Measurements, written as BENCH_trace_overhead.json so the perf
   trajectory is machine-readable across commits:

   - the disabled path: every instrumented site costs one domain-local
     lookup and a branch ([let r = Flight.cur () in if Flight.on r
     then ...]) — measured per event to show that tracing off is free;
   - the enabled path: full event construction + sink call (a counting
     sink, so the numbers are emission cost, not buffer growth);
   - the sampled path: 1% deterministic head sampling with a live
     telemetry tally + tap — the scale-run configuration, where the
     sink sees ~1% of spans but counters/sketches stay exact;
   - a small scenario (a timer-driven sender over a Link for 5
     simulated seconds) run with tracing off, fully on (a real
     [Trace.attach] into the event buffer), and sampled with telemetry,
     whose ratios are the end-to-end overhead story.  The three modes
     are interleaved round-robin and each takes its best of five runs,
     so allocator warm-up and scheduler noise hit all modes alike.

   With RINA_BENCH_CHECK=1 the run fails (exit 1) if the sampled-mode
   scenario overhead is not at most half of the full-trace overhead, or
   if the disabled site stops being ~ns-cheap. *)

module Flight = Rina_util.Flight
module Telemetry = Rina_util.Telemetry
module Engine = Rina_sim.Engine
module Trace = Rina_sim.Trace
module Link = Rina_sim.Link

let sample_rate = 0.01

(* The representative emission site: one recorder lookup, guard, span
   computation, emit. *)
let[@inline never] emission_site i =
  let r = Flight.cur () in
  if Flight.on r then
    Flight.emit_to r ~component:"bench" ~flow:7 ~seq:i ~size:1400
      ~span:(Flight.span_of ~flow:7 ~seq:i) Flight.Pdu_sent

(* Run [site] in batches until at least [min_time] CPU seconds have
   been consumed; returns seconds per call. *)
let time_per_call ?(min_time = 0.2) site =
  let batch = 1_000_000 in
  let total = ref 0 and elapsed = ref 0. in
  while !elapsed < min_time do
    let t0 = Sys.time () in
    for i = 1 to batch do
      site i
    done;
    elapsed := !elapsed +. (Sys.time () -. t0);
    total := !total + batch
  done;
  !elapsed /. float_of_int !total

let scenario_once ~configure =
  let engine = Engine.create () in
  let cleanup = configure engine in
  let rng = Rina_util.Prng.create 1 in
  let link = Link.create engine rng ~bit_rate:1e8 ~delay:0.001 ~label:"bench" () in
  let a = Link.endpoint_a link in
  (Link.endpoint_b link).Rina_sim.Chan.set_receiver (fun _ -> ());
  let frame = Bytes.make 1000 'x' in
  let rec tick () =
    a.Rina_sim.Chan.send frame;
    if Engine.now engine < 5.0 then
      ignore (Engine.schedule engine ~delay:0.0001 tick)
  in
  tick ();
  let t0 = Sys.time () in
  Engine.run engine;
  let dt = Sys.time () -. t0 in
  cleanup ();
  dt

let run () =
  (* Make sure the recorder starts from the default (off) state. *)
  Trace.detach ();
  let ns_disabled = 1e9 *. time_per_call emission_site in
  (* per-site enabled cost: every event constructed and sunk *)
  let count = ref 0 in
  Flight.set_sink (fun _ -> incr count);
  Flight.set_enabled true;
  let ns_enabled = 1e9 *. time_per_call emission_site in
  Trace.detach ();
  (* per-site sampled cost: 1% of spans reach the sink, the tally and
     tap aggregate everything.  Latency tracking follows the sample
     rate (as Trace.attach wires it), so the pending-span table holds
     ~1% of in-flight spans. *)
  let micro_tele = Telemetry.create () in
  Telemetry.set_latency_ppm micro_tele (Flight.ppm_of_rate sample_rate);
  Flight.set_sink (fun _ -> ());
  Telemetry.install micro_tele;
  Flight.set_sample_rate sample_rate;
  Flight.set_enabled true;
  let ns_sampled = 1e9 *. time_per_call emission_site in
  Trace.detach ();
  (* End-to-end scenario, three configurations interleaved.  The full
     and sampled modes are real [Trace.attach] setups: buffered sink,
     and for sampled mode a live telemetry registry. *)
  let tele = Telemetry.create () in
  let off _engine = fun () -> () in
  let full engine =
    let tr = Trace.create engine in
    Trace.attach tr;
    fun () -> Trace.close tr
  in
  let sampled engine =
    let tr = Trace.create engine in
    Trace.attach ~sample_rate ~telemetry:tele tr;
    fun () -> Trace.close tr
  in
  ignore (scenario_once ~configure:off);  (* warm-up *)
  let best = [| Float.infinity; Float.infinity; Float.infinity |] in
  for _round = 1 to 5 do
    Array.iteri
      (fun i configure ->
        let s = scenario_once ~configure in
        if s < best.(i) then best.(i) <- s)
      [| off; full; sampled |]
  done;
  let scenario_disabled = best.(0)
  and scenario_enabled = best.(1)
  and scenario_sampled = best.(2) in
  let events_per_sec = 1e9 /. ns_enabled in
  let ratio_of s = if scenario_disabled > 0. then s /. scenario_disabled else 1. in
  let ratio = ratio_of scenario_enabled in
  let ratio_sampled = ratio_of scenario_sampled in
  let json =
    Printf.sprintf
      "{\n\
      \  \"ns_per_event_disabled\": %.3f,\n\
      \  \"ns_per_event_enabled\": %.3f,\n\
      \  \"ns_per_event_sampled\": %.3f,\n\
      \  \"events_per_sec_enabled\": %.0f,\n\
      \  \"scenario_disabled_s\": %.4f,\n\
      \  \"scenario_enabled_s\": %.4f,\n\
      \  \"scenario_sampled_s\": %.4f,\n\
      \  \"scenario_overhead_ratio\": %.4f,\n\
      \  \"scenario_sampled_ratio\": %.4f,\n\
      \  \"sampled_keep_ppm\": %d\n\
       }\n"
      ns_disabled ns_enabled ns_sampled events_per_sec scenario_disabled
      scenario_enabled scenario_sampled ratio ratio_sampled
      (Flight.ppm_of_rate sample_rate)
  in
  Out_channel.with_open_text "BENCH_trace_overhead.json" (fun oc ->
      Out_channel.output_string oc json);
  Printf.printf
    "trace overhead: %.2f ns/event disabled (gate only), %.1f ns/event \
     enabled (%.1f Mevents/s), %.1f ns/event sampled+tap; scenario %.3fs -> \
     %.3fs full (x%.3f) / %.3fs sampled (x%.3f)\n\
     wrote BENCH_trace_overhead.json\n"
    ns_disabled ns_enabled (events_per_sec /. 1e6) ns_sampled scenario_disabled
    scenario_enabled ratio scenario_sampled ratio_sampled;
  if Sys.getenv_opt "RINA_BENCH_CHECK" <> None then begin
    let fail = ref false in
    let check name ok detail =
      if not ok then begin
        Printf.printf "CHECK FAILED: %s (%s)\n" name detail;
        fail := true
      end
      else Printf.printf "check ok: %s (%s)\n" name detail
    in
    (* sanity: the telemetry really aggregated the scenario *)
    check "telemetry tally live"
      (Telemetry.counter tele "events" > 0)
      (Printf.sprintf "tally saw %d events" (Telemetry.counter tele "events"));
    (* the headline gate: sampled-mode overhead at most half the
       full-trace overhead (2% absolute floor absorbs timer noise on a
       busy CI host) *)
    let full_overhead = ratio -. 1. in
    let sampled_overhead = ratio_sampled -. 1. in
    let budget = Float.max (0.5 *. full_overhead) 0.02 in
    check "sampled overhead <= half of full-trace overhead"
      (sampled_overhead <= budget)
      (Printf.sprintf "sampled x%.4f vs full x%.4f (budget +%.1f%%)"
         ratio_sampled ratio (100. *. budget));
    (* the disabled site must stay ~ns: one lookup + one branch *)
    check "disabled site stays ~ns"
      (ns_disabled <= 15.)
      (Printf.sprintf "%.2f ns/event" ns_disabled);
    if !fail then exit 1
  end
