(* R3 — overload robustness: per-DIF aggregate congestion control
   under incast and flash crowds.

   Four deterministic scenarios, everything seeded and in virtual
   time so BENCH_congestion.json is byte-identical across runs:

   1. Incast: [senders] leaves of a rate-limited star each blast one
      64 KiB flow at a single sink leaf; every flow squeezes through
      the hub's shaped egress port.  RINA (ECN marking at the RMT
      queue + DCTCP-style EFCP back-off and pacing) versus TCP
      (slow start + AIMD, drop-tail hub) under the identical
      schedule.  Measures aggregate goodput against the bottleneck
      and the flow-completion-time tail.

   2. Flash crowd: Poisson flow arrivals (heavy-tailed Pareto sizes)
      onto one sink whose DIF enforces flow-allocator admission
      control — over-limit requests are busy-rejected and retried
      with deterministic jittered backoff.  The gate: admission
      never livelocks, every admitted flow completes.  TCP has no
      admission layer — every SYN is accepted and fights it out in
      the queues.

   3. Push-back across the stack: the R1/R2 two-DIF relay
      arrangement over long-delay wires, so the lower flow is
      *window*-limited (64 PDUs over a 100 ms RTT) while the upper
      flow's window is 32x deeper.  The upper flow's frames transit
      the lower-DIF flow; when that lower flow is congested
      (backlog beyond a full window), the lower DIF stamps ECN on
      transiting upper Dtp frames (policy [pushback]) so the
      *upper* sender's EFCP backs off — congestion in an (N-1)-DIF
      slows (N)-sources instead of growing the lower backlog
      without bound.  Run twice (pushback on / off) and compare the
      peak lower-flow backlog.

   4. Composed: the flash-crowd run with PR-3 chaos faults layered
      on top (a partitioned sender leaf, a corruption burst on the
      sink link) — every fault must recover and every admitted flow
      still completes, with zero corrupt SDUs escaping the CRCs. *)

module Engine = Rina_sim.Engine
module Link = Rina_sim.Link
module Fault = Rina_sim.Fault
module Trace = Rina_sim.Trace
module Flight = Rina_util.Flight
module Metrics = Rina_util.Metrics
module Stats = Rina_util.Stats
module Table = Rina_util.Table
module Prng = Rina_util.Prng
module Policy = Rina_core.Policy
module Ipcp = Rina_core.Ipcp
module Dif = Rina_core.Dif
module Shim = Rina_core.Shim
module Types = Rina_core.Types
module Qos = Rina_core.Qos
module Topo = Rina_exp.Topo
module Workload = Rina_exp.Workload
module Report = Rina_check.Trace_report

let senders = 32

let incast_flow_bytes = 65_536

let sdu_size = 1_000

let bottleneck = 10_000_000.

let crowd_senders = 8

let crowd_rate = 100. (* arrivals/s *)

let crowd_window = 5.0 (* s of arrivals *)

let crowd_alpha = 1.3

let crowd_xmin = 2_000

let crowd_cap = 100_000

(* EFCP hardened as in R2 (so composed faults cannot kill flows) plus
   the congestion section: marking at depth 32 of the 256-deep class
   queues, pushback armed, no admission limit (the incast must admit
   all 32). *)
let congestion_policy =
  let d = Policy.default in
  {
    d with
    Policy.efcp =
      {
        d.Policy.efcp with
        Policy.window = 64;
        congestion_control = true;
        init_rto = 0.3;
        min_rto = 0.05;
        max_rtx = 100_000;
        sack_blocks = 4;
        reorder_window = 128;
        max_dup_cache = 1024;
      };
    routing =
      {
        d.Policy.routing with
        Policy.anti_entropy_interval = 2.0;
        dead_peer_timeout = 8.0;
      };
    congestion =
      {
        Policy.mark_threshold = 32;
        mark_probability = 0.2;
        pushback = true;
        admission_max_pending = 0;
        admission_backoff = 0.05;
      };
  }

(* The flash crowd additionally caps concurrently open flows at the
   destination; over-limit allocations are busy-rejected and retried
   with jittered exponential backoff (base = admission_backoff). *)
let admission_policy =
  {
    congestion_policy with
    Policy.congestion =
      { congestion_policy.Policy.congestion with Policy.admission_max_pending = 16 };
  }

let ms stats p =
  let v = Stats.percentile stats p in
  if Float.is_nan v then 0. else 1000. *. v

(* ---------- scenario 1: incast ---------- *)

type incast_out = {
  ic_goodput : float;
  ic_ratio : float;
  ic_admitted : int;
  ic_completed : int;
  ic_corrupt : int;
  ic_p50 : float; (* FCT ms *)
  ic_p99 : float;
  ic_max : float;
  ic_marked : int;
  ic_cong_dropped : int;
  ic_queue_dropped : int;
  ic_queue_hwm : int;
}

(* RINA_TRACE=<file> saves the incast run's flight-recorder trace
   (rina_trace --drops shows the R_congestion breakdown, --queues the
   hub occupancy timeline); RINA_STATS=<file> writes the telemetry
   registry (rina_stats shows exact ecn_mark counts and the
   probe:queue:hub occupancy distribution).  Neither variable set:
   tracing stays disabled and the run is bit-for-bit the default. *)
let maybe_obs engine hub =
  let trace_path = Sys.getenv_opt "RINA_TRACE" in
  let stats_path = Sys.getenv_opt "RINA_STATS" in
  if trace_path = None && stats_path = None then fun () -> ()
  else begin
    let obs = Rina_exp.Obs.start engine in
    let until = Engine.now engine +. 60. in
    Rina_exp.Obs.snapshots obs ~until;
    Rina_sim.Trace.probe obs.Rina_exp.Obs.trace ~name:"queue:hub" ~period:0.05
      ~until (fun () -> Ipcp.rmt_queue_depth hub);
    fun () ->
      (match trace_path with
      | Some path -> Rina_sim.Trace.save_jsonl obs.Rina_exp.Obs.trace path
      | None -> ());
      (match stats_path with
      | Some path -> Rina_exp.Obs.write_stats obs path
      | None -> ());
      Rina_exp.Obs.stop obs
  end

let run_incast_rina () =
  let net =
    Topo.star ~seed:303 ~policy:congestion_policy ~bit_rate:bottleneck
      ~delay:0.002 ~rate_limited:true ~leaves:(senders + 1) ()
  in
  let engine = net.Topo.engine in
  let hub = net.Topo.nodes.(0) in
  let finish_obs = maybe_obs engine hub in
  let sink_node = net.Topo.nodes.(senders + 1) in
  let reg = Workload.fct () in
  let t_done = ref None in
  let dst = Types.apn "incast-sink" in
  Ipcp.register_app sink_node dst ~on_flow:(fun flow ->
      flow.Ipcp.set_on_receive (fun sdu ->
          let now = Engine.now engine in
          Workload.on_flow_sdu reg ~now sdu;
          if reg.Workload.completed = senders && !t_done = None then
            t_done := Some now));
  Topo.wait engine 3.0;
  let flows = Array.make senders None in
  let outstanding = ref 0 in
  for i = 0 to senders - 1 do
    let node = net.Topo.nodes.(i + 1) in
    let src = Types.apn (Printf.sprintf "incast-src%d" i) in
    Ipcp.register_app node src ~on_flow:(fun _ -> ());
    incr outstanding;
    Ipcp.allocate_flow node ~src ~dst ~qos_id:Qos.reliable.Qos.id
      ~on_result:(fun res ->
        decr outstanding;
        match res with Ok f -> flows.(i) <- Some f | Error _ -> ())
  done;
  let deadline = Engine.now engine +. 60. in
  while !outstanding > 0 && Engine.now engine < deadline do
    Engine.run ~until:(Engine.now engine +. 0.05) engine
  done;
  (* The incast instant: every admitted sender dumps its whole flow at
     once. *)
  let t0 = Engine.now engine in
  let admitted = ref 0 in
  Array.iteri
    (fun i fo ->
      match fo with
      | Some f ->
        incr admitted;
        Workload.flow_bulk reg ~send:f.Ipcp.send ~now:t0 ~flow:i
          ~size:incast_flow_bytes ~sdu:sdu_size
      | None -> ())
    flows;
  let deadline = t0 +. 300. in
  while !t_done = None && Engine.now engine < deadline do
    Engine.run ~until:(Engine.now engine +. 0.25) engine
  done;
  Topo.wait engine 2.0;
  finish_obs ();
  let t1 = match !t_done with Some t -> t | None -> Engine.now engine in
  let goodput = Workload.fct_goodput reg ~t0 ~t1 in
  let rm = Ipcp.rmt_metrics hub in
  {
    ic_goodput = goodput;
    ic_ratio = goodput /. bottleneck;
    ic_admitted = !admitted;
    ic_completed = reg.Workload.completed;
    ic_corrupt = reg.Workload.fct_corrupt;
    ic_p50 = ms reg.Workload.durations 50.;
    ic_p99 = ms reg.Workload.durations 99.;
    ic_max = 1000. *. Stats.max_value reg.Workload.durations;
    ic_marked = Metrics.get rm "ecn_marked";
    ic_cong_dropped = Metrics.get rm "congestion_dropped";
    ic_queue_dropped = Metrics.get rm "queue_dropped";
    ic_queue_hwm = int_of_float (Metrics.gauge rm "queue_hwm");
  }

let run_incast_tcp () =
  let net =
    Topo.ip_star ~seed:303 ~bit_rate:bottleneck ~delay:0.002
      ~leaves:(senders + 1) ()
  in
  let engine = net.Topo.ip_engine in
  let sink = net.Topo.hosts.(senders) in
  let reg = Workload.fct () in
  let t_done = ref None in
  let ts = Tcpip.Tcp.attach sink in
  Tcpip.Tcp.listen ts ~port:5001 ~on_accept:(fun conn ->
      Tcpip.Tcp.set_on_receive conn (fun sdu ->
          let now = Engine.now engine in
          Workload.on_flow_sdu reg ~now sdu;
          if reg.Workload.completed = senders && !t_done = None then
            t_done := Some now));
  let sink_addr = Tcpip.Ip.addr_of_octets 10 (senders + 1) 0 1 in
  let conns = Array.make senders None in
  let outstanding = ref 0 in
  for i = 0 to senders - 1 do
    let st = Tcpip.Tcp.attach net.Topo.hosts.(i) in
    let src_addr = Tcpip.Ip.addr_of_octets 10 (i + 1) 0 1 in
    incr outstanding;
    Tcpip.Tcp.connect st ~src:src_addr ~dst:sink_addr ~dport:5001
      ~on_result:(fun res ->
        decr outstanding;
        match res with Ok c -> conns.(i) <- Some c | Error _ -> ())
  done;
  let deadline = Engine.now engine +. 60. in
  while !outstanding > 0 && Engine.now engine < deadline do
    Engine.run ~until:(Engine.now engine +. 0.05) engine
  done;
  let t0 = Engine.now engine in
  let admitted = ref 0 in
  Array.iteri
    (fun i co ->
      match co with
      | Some c ->
        incr admitted;
        Workload.flow_bulk reg
          ~send:(fun sdu -> Tcpip.Tcp.send c sdu)
          ~now:t0 ~flow:i ~size:incast_flow_bytes ~sdu:sdu_size
      | None -> ())
    conns;
  let deadline = t0 +. 300. in
  while !t_done = None && Engine.now engine < deadline do
    Engine.run ~until:(Engine.now engine +. 0.25) engine
  done;
  Topo.wait engine 2.0;
  let t1 = match !t_done with Some t -> t | None -> Engine.now engine in
  let goodput = Workload.fct_goodput reg ~t0 ~t1 in
  {
    ic_goodput = goodput;
    ic_ratio = goodput /. bottleneck;
    ic_admitted = !admitted;
    ic_completed = reg.Workload.completed;
    ic_corrupt = reg.Workload.fct_corrupt;
    ic_p50 = ms reg.Workload.durations 50.;
    ic_p99 = ms reg.Workload.durations 99.;
    ic_max = 1000. *. Stats.max_value reg.Workload.durations;
    ic_marked = 0;
    ic_cong_dropped = 0;
    ic_queue_dropped = 0;
    ic_queue_hwm = 0;
  }

(* ---------- scenarios 2 and 4: flash crowd (optionally with chaos) ---------- *)

type crowd_out = {
  cr_arrivals : int;
  cr_admitted : int;
  cr_failed : int;
  cr_busy_retries : int;
  cr_busy_rejected : int;
  cr_completed : int;
  cr_unfinished : int;
  cr_corrupt : int;
  cr_p50 : float; (* FCT ms *)
  cr_p99 : float;
  cr_goodput : float;
  cr_blackouts : (string * float * float option) list;
}

let crowd_faults = [ ("partition-leaf", 1.5, 3.0); ("corrupt-sink", 3.5, 4.5) ]

let run_crowd_rina ~chaos () =
  let net =
    Topo.star ~seed:404 ~policy:admission_policy ~bit_rate:bottleneck
      ~delay:0.002 ~rate_limited:true ~leaves:(crowd_senders + 1) ()
  in
  let engine = net.Topo.engine in
  let sink_node = net.Topo.nodes.(crowd_senders + 1) in
  let tr = if chaos then Some (Trace.create engine) else None in
  (match tr with Some t -> Trace.attach t | None -> ());
  let reg = Workload.fct () in
  let dst = Types.apn "crowd-sink" in
  (* The sink closes each flow when its FIN lands, freeing the
     admission slot for the next busy-rejected requester. *)
  Ipcp.register_app sink_node dst ~on_flow:(fun flow ->
      flow.Ipcp.set_on_receive (fun sdu ->
          let now = Engine.now engine in
          Workload.on_flow_sdu reg ~now sdu;
          match Workload.read_flow sdu with
          | Some fs when fs.Workload.fs_fin -> flow.Ipcp.close ()
          | _ -> ()));
  Topo.wait engine 3.0;
  let t0 = Engine.now engine in
  if chaos then begin
    let plan = Fault.create () in
    List.iter
      (fun (label, a, b) ->
        let at = t0 +. a and until = t0 +. b in
        match label with
        | "partition-leaf" -> Fault.link_down plan ~at ~until ~label net.Topo.links.(0)
        | "corrupt-sink" ->
          Fault.link_corrupt plan ~at ~until ~label ~corrupt:0.05
            net.Topo.links.(crowd_senders)
        | _ -> ())
      crowd_faults;
    Fault.arm plan engine
  end;
  let size_rng = Prng.create 909 in
  let arrival_rng = Prng.create 808 in
  let arrivals = ref 0 and admitted = ref 0 and failed = ref 0 in
  Workload.poisson_arrivals engine arrival_rng ~rate:crowd_rate
    ~until:(t0 +. crowd_window) (fun i ->
      incr arrivals;
      let node = net.Topo.nodes.(1 + (i mod crowd_senders)) in
      let src = Types.apn (Printf.sprintf "crowd%d" i) in
      Ipcp.register_app node src ~on_flow:(fun _ -> ());
      let size =
        min crowd_cap
          (int_of_float
             (Prng.pareto size_rng ~alpha:crowd_alpha
                ~xmin:(float_of_int crowd_xmin)))
      in
      Ipcp.allocate_flow node ~src ~dst ~qos_id:Qos.reliable.Qos.id
        ~on_result:(function
          | Ok f ->
            incr admitted;
            Workload.flow_bulk reg ~send:f.Ipcp.send ~now:(Engine.now engine)
              ~flow:i ~size ~sdu:sdu_size
          | Error _ -> incr failed));
  let settled () =
    Engine.now engine > t0 +. crowd_window +. 1.
    && !admitted + !failed = !arrivals
    && Workload.unfinished reg = []
  in
  let deadline = t0 +. crowd_window +. 120. in
  while (not (settled ())) && Engine.now engine < deadline do
    Engine.run ~until:(Engine.now engine +. 0.25) engine
  done;
  Topo.wait engine 5.0;
  let blackouts =
    match tr with
    | None -> []
    | Some t ->
      let events = Trace.typed_events t in
      Trace.detach ();
      Report.blackouts events
  in
  let busy_retries =
    Array.fold_left
      (fun acc n -> acc + Metrics.get (Ipcp.metrics n) "alloc_busy")
      0 net.Topo.nodes
  in
  {
    cr_arrivals = !arrivals;
    cr_admitted = !admitted;
    cr_failed = !failed;
    cr_busy_retries = busy_retries;
    cr_busy_rejected = Metrics.get (Ipcp.metrics sink_node) "alloc_busy_rejected";
    cr_completed = reg.Workload.completed;
    cr_unfinished = List.length (Workload.unfinished reg);
    cr_corrupt = reg.Workload.fct_corrupt;
    cr_p50 = ms reg.Workload.durations 50.;
    cr_p99 = ms reg.Workload.durations 99.;
    cr_goodput = Workload.fct_goodput reg ~t0 ~t1:(Engine.now engine);
    cr_blackouts = blackouts;
  }

(* TCP has no admission layer: every SYN is accepted, every flow
   fights it out in the hub queue.  Same arrival process, same
   sizes. *)
let run_crowd_tcp () =
  let net =
    Topo.ip_star ~seed:404 ~bit_rate:bottleneck ~delay:0.002
      ~leaves:(crowd_senders + 1) ()
  in
  let engine = net.Topo.ip_engine in
  let sink = net.Topo.hosts.(crowd_senders) in
  let reg = Workload.fct () in
  let ts = Tcpip.Tcp.attach sink in
  Tcpip.Tcp.listen ts ~port:5001 ~on_accept:(fun conn ->
      Tcpip.Tcp.set_on_receive conn (fun sdu ->
          let now = Engine.now engine in
          Workload.on_flow_sdu reg ~now sdu;
          match Workload.read_flow sdu with
          | Some fs when fs.Workload.fs_fin -> Tcpip.Tcp.close conn
          | _ -> ()));
  let sink_addr = Tcpip.Ip.addr_of_octets 10 (crowd_senders + 1) 0 1 in
  let stacks =
    Array.init crowd_senders (fun i -> Tcpip.Tcp.attach net.Topo.hosts.(i))
  in
  let t0 = Engine.now engine in
  let size_rng = Prng.create 909 in
  let arrival_rng = Prng.create 808 in
  let arrivals = ref 0 and admitted = ref 0 and failed = ref 0 in
  Workload.poisson_arrivals engine arrival_rng ~rate:crowd_rate
    ~until:(t0 +. crowd_window) (fun i ->
      incr arrivals;
      let s = i mod crowd_senders in
      let src_addr = Tcpip.Ip.addr_of_octets 10 (s + 1) 0 1 in
      let size =
        min crowd_cap
          (int_of_float
             (Prng.pareto size_rng ~alpha:crowd_alpha
                ~xmin:(float_of_int crowd_xmin)))
      in
      Tcpip.Tcp.connect stacks.(s) ~src:src_addr ~dst:sink_addr ~dport:5001
        ~on_result:(function
          | Ok c ->
            incr admitted;
            Workload.flow_bulk reg
              ~send:(fun sdu -> Tcpip.Tcp.send c sdu)
              ~now:(Engine.now engine) ~flow:i ~size ~sdu:sdu_size
          | Error _ -> incr failed));
  let settled () =
    Engine.now engine > t0 +. crowd_window +. 1.
    && !admitted + !failed = !arrivals
    && Workload.unfinished reg = []
  in
  let deadline = t0 +. crowd_window +. 120. in
  while (not (settled ())) && Engine.now engine < deadline do
    Engine.run ~until:(Engine.now engine +. 0.25) engine
  done;
  Topo.wait engine 5.0;
  {
    cr_arrivals = !arrivals;
    cr_admitted = !admitted;
    cr_failed = !failed;
    cr_busy_retries = 0;
    cr_busy_rejected = 0;
    cr_completed = reg.Workload.completed;
    cr_unfinished = List.length (Workload.unfinished reg);
    cr_corrupt = reg.Workload.fct_corrupt;
    cr_p50 = ms reg.Workload.durations 50.;
    cr_p99 = ms reg.Workload.durations 99.;
    cr_goodput = Workload.fct_goodput reg ~t0 ~t1:(Engine.now engine);
    cr_blackouts = [];
  }

(* ---------- scenario 3: push-back across the stack ---------- *)

type pushback_out = {
  pb_delivered : int;
  pb_sent : int;
  pb_ecn_rcvd : int;
  pb_ecn_backoffs : int;
  pb_peak_lower_backlog : int;
}

let pushback_bytes = 4_000_000

(* The lower flows are window-limited: 64 PDUs in flight over a 100 ms
   round trip caps them near 600 PDU/s while the 10 Mb/s wires never
   saturate (so the reverse ack path stays healthy and the upper
   sender is never ack-starved).  The upper DIF's window is 32x
   deeper, so without push-back the upper sender parks ~2000 PDUs in
   the lower flow's backlog; with push-back the sustained marks hold
   the backlog near one lower window.  Lower DIF: congestion_policy
   with [pushback] toggled — the flag is read from the DIF that owns
   the transited flow. *)
let run_pushback ~pushback () =
  (* RTO floor well above the 100 ms path RTT — with delayed acks the
     smoothed estimate otherwise sits *at* the RTT and every window
     ends in a spurious retransmission timeout (the reason TCP floors
     its RTO at 200 ms). *)
  let lower_policy =
    {
      congestion_policy with
      Policy.efcp =
        { congestion_policy.Policy.efcp with Policy.init_rto = 0.5; min_rto = 0.25 };
      Policy.congestion = { congestion_policy.Policy.congestion with Policy.pushback };
    }
  in
  let upper_policy =
    {
      lower_policy with
      Policy.efcp = { lower_policy.Policy.efcp with Policy.window = 2048 };
    }
  in
  let engine = Engine.create () in
  let rng = Prng.create 505 in
  let wire_l = Link.create engine rng ~bit_rate:10_000_000. ~delay:0.05 () in
  let wire_r = Link.create engine rng ~bit_rate:10_000_000. ~delay:0.05 () in
  let link_dif name link =
    let dif = Dif.create engine ~policy:lower_policy name in
    let a = Dif.add_member dif ~name:(name ^ "-a") () in
    let b = Dif.add_member dif ~name:(name ^ "-b") () in
    Dif.connect dif a b
      ( Shim.wrap ~dif:name (Link.endpoint_a link),
        Shim.wrap ~dif:name (Link.endpoint_b link) );
    Dif.run_until_converged dif ();
    (a, b)
  in
  let la, lb = link_dif "left" wire_l in
  let ra, rb = link_dif "right" wire_r in
  let top = Dif.create engine ~policy:upper_policy ~rank:1 "relay" in
  let h1 = Dif.add_member top ~name:"h1" () in
  let r = Dif.add_member top ~name:"r" () in
  let h2 = Dif.add_member top ~name:"h2" () in
  Dif.stack_connect ~lower_a:la ~lower_b:lb ~upper_a:h1 ~upper_b:r ();
  Dif.stack_connect ~lower_a:ra ~lower_b:rb ~upper_a:r ~upper_b:h2 ();
  Dif.run_until_converged top ~max_time:90. ();
  let sink = Workload.sink () in
  let rcv_metrics = ref None in
  let dst = Types.apn "pb-sink" in
  Ipcp.register_app h2 dst ~on_flow:(fun flow ->
      rcv_metrics := Some flow.Ipcp.flow_metrics;
      flow.Ipcp.set_on_receive (fun sdu ->
          Workload.on_sdu sink ~now:(Engine.now engine) sdu));
  let src = Types.apn "pb-src" in
  Ipcp.register_app h1 src ~on_flow:(fun _ -> ());
  let result = ref None in
  Ipcp.allocate_flow h1 ~src ~dst ~qos_id:Qos.reliable.Qos.id
    ~on_result:(fun res -> result := Some res);
  let deadline = Engine.now engine +. 30. in
  while !result = None && Engine.now engine < deadline do
    Engine.run ~until:(Engine.now engine +. 0.05) engine
  done;
  match !result with
  | Some (Ok flow) ->
    let t0 = Engine.now engine in
    let sent = (pushback_bytes + sdu_size - 1) / sdu_size in
    for seq = 0 to sent - 1 do
      flow.Ipcp.send (Workload.stamp_sealed ~now:t0 ~seq ~size:sdu_size)
    done;
    (* Sample the lower-left data flow's backlog while the transfer
       drains through the window-limited lower flow: this is the
       resource push-back is meant to protect. *)
    let peak = ref 0 in
    let deadline = t0 +. 120. in
    while sink.Workload.count < sent && Engine.now engine < deadline do
      Engine.run ~until:(Engine.now engine +. 0.1) engine;
      List.iter
        (fun (_, _, backlog) -> if backlog > !peak then peak := backlog)
        (Ipcp.flow_stats la)
    done;
    Topo.wait engine 2.0;
    let fm = flow.Ipcp.flow_metrics () in
    let ecn_rcvd =
      match !rcv_metrics with Some m -> Metrics.get (m ()) "ecn_rcvd" | None -> 0
    in
    {
      pb_delivered = sink.Workload.count;
      pb_sent = sent;
      pb_ecn_rcvd = ecn_rcvd;
      pb_ecn_backoffs = Metrics.get fm "ecn_backoffs";
      pb_peak_lower_backlog = !peak;
    }
  | _ ->
    {
      pb_delivered = 0;
      pb_sent = 0;
      pb_ecn_rcvd = 0;
      pb_ecn_backoffs = 0;
      pb_peak_lower_backlog = 0;
    }

(* ---------- reporting ---------- *)

let json_incast buf name o =
  Buffer.add_string buf (Printf.sprintf "    %S: {\n" name);
  Buffer.add_string buf
    (Printf.sprintf
       "      \"goodput_bps\": %.0f,\n      \"goodput_ratio\": %.4f,\n" o.ic_goodput
       o.ic_ratio);
  Buffer.add_string buf
    (Printf.sprintf "      \"admitted\": %d,\n      \"completed\": %d,\n"
       o.ic_admitted o.ic_completed);
  Buffer.add_string buf
    (Printf.sprintf
       "      \"fct_p50_ms\": %.3f,\n      \"fct_p99_ms\": %.3f,\n      \
        \"fct_max_ms\": %.3f,\n"
       o.ic_p50 o.ic_p99 o.ic_max);
  Buffer.add_string buf
    (Printf.sprintf
       "      \"ecn_marked\": %d,\n      \"congestion_dropped\": %d,\n      \
        \"queue_dropped\": %d,\n      \"queue_hwm\": %d,\n"
       o.ic_marked o.ic_cong_dropped o.ic_queue_dropped o.ic_queue_hwm);
  Buffer.add_string buf
    (Printf.sprintf "      \"corrupt_escaped\": %d\n    }" o.ic_corrupt)

let json_crowd buf name o =
  Buffer.add_string buf (Printf.sprintf "    %S: {\n" name);
  Buffer.add_string buf
    (Printf.sprintf
       "      \"arrivals\": %d,\n      \"admitted\": %d,\n      \
        \"alloc_failed\": %d,\n"
       o.cr_arrivals o.cr_admitted o.cr_failed);
  Buffer.add_string buf
    (Printf.sprintf
       "      \"busy_retries\": %d,\n      \"busy_rejected\": %d,\n"
       o.cr_busy_retries o.cr_busy_rejected);
  Buffer.add_string buf
    (Printf.sprintf
       "      \"completed\": %d,\n      \"unfinished\": %d,\n      \
        \"corrupt_escaped\": %d,\n"
       o.cr_completed o.cr_unfinished o.cr_corrupt);
  Buffer.add_string buf
    (Printf.sprintf
       "      \"fct_p50_ms\": %.3f,\n      \"fct_p99_ms\": %.3f,\n      \
        \"goodput_bps\": %.0f"
       o.cr_p50 o.cr_p99 o.cr_goodput);
  (if o.cr_blackouts <> [] then begin
     Buffer.add_string buf ",\n      \"faults\": [\n";
     let n = List.length crowd_faults in
     List.iteri
       (fun i (label, at, until) ->
         let blackout, recovered =
           match
             List.find_opt (fun (l, _, _) -> String.equal l label) o.cr_blackouts
           with
           | Some (_, _, Some g) -> (Printf.sprintf "%.6f" g, true)
           | _ -> ("null", false)
         in
         Buffer.add_string buf
           (Printf.sprintf
              "        {\"label\": %S, \"at_s\": %.1f, \"until_s\": %.1f, \
               \"blackout_s\": %s, \"recovered\": %b}%s\n"
              label at until blackout recovered
              (if i = n - 1 then "" else ",")))
       crowd_faults;
     Buffer.add_string buf "      ]"
   end);
  Buffer.add_string buf "\n    }"

let json_pushback buf name o =
  Buffer.add_string buf (Printf.sprintf "    %S: {\n" name);
  Buffer.add_string buf
    (Printf.sprintf "      \"delivered\": %d,\n      \"sent\": %d,\n"
       o.pb_delivered o.pb_sent);
  Buffer.add_string buf
    (Printf.sprintf "      \"ecn_rcvd\": %d,\n      \"ecn_backoffs\": %d,\n"
       o.pb_ecn_rcvd o.pb_ecn_backoffs);
  Buffer.add_string buf
    (Printf.sprintf "      \"peak_lower_backlog\": %d\n    }"
       o.pb_peak_lower_backlog)

let write_json ~incast_rina ~incast_tcp ~crowd_rina ~crowd_tcp ~pb_on ~pb_off
    ~composed =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"incast\": {\n";
  Buffer.add_string buf
    (Printf.sprintf
       "    \"senders\": %d,\n    \"flow_bytes\": %d,\n    \
        \"bottleneck_bps\": %.0f,\n"
       senders incast_flow_bytes bottleneck);
  json_incast buf "rina" incast_rina;
  Buffer.add_string buf ",\n";
  json_incast buf "tcp" incast_tcp;
  Buffer.add_string buf "\n  },\n  \"flash_crowd\": {\n";
  Buffer.add_string buf
    (Printf.sprintf
       "    \"arrival_rate_per_s\": %.0f,\n    \"window_s\": %.1f,\n" crowd_rate
       crowd_window);
  json_crowd buf "rina" crowd_rina;
  Buffer.add_string buf ",\n";
  json_crowd buf "tcp" crowd_tcp;
  Buffer.add_string buf "\n  },\n  \"pushback\": {\n";
  json_pushback buf "on" pb_on;
  Buffer.add_string buf ",\n";
  json_pushback buf "off" pb_off;
  Buffer.add_string buf "\n  },\n  \"composed_chaos\": {\n";
  json_crowd buf "rina" composed;
  Buffer.add_string buf "\n  }\n}\n";
  Out_channel.with_open_text "BENCH_congestion.json" (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf))

let run () =
  let incast_rina = run_incast_rina () in
  let incast_tcp = run_incast_tcp () in
  let crowd_rina = run_crowd_rina ~chaos:false () in
  let crowd_tcp = run_crowd_tcp () in
  let pb_on = run_pushback ~pushback:true () in
  let pb_off = run_pushback ~pushback:false () in
  let composed = run_crowd_rina ~chaos:true () in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "R3: overload — %d-way incast and a %.0f/s flash crowd through one \
            relay (bottleneck %.0f Mb/s)"
           senders crowd_rate (bottleneck /. 1e6))
      ~columns:[ "measure"; "RINA"; "TCP/IP" ]
  in
  Table.add_rowf table "incast goodput (%% of bottleneck) | %.1f%% | %.1f%%"
    (100. *. incast_rina.ic_ratio)
    (100. *. incast_tcp.ic_ratio);
  Table.add_rowf table "incast FCT p99 / max (ms) | %.0f / %.0f | %.0f / %.0f"
    incast_rina.ic_p99 incast_rina.ic_max incast_tcp.ic_p99 incast_tcp.ic_max;
  Table.add_rowf table "incast ECN-marked / drops | %d / %d | n/a / %d"
    incast_rina.ic_marked
    (incast_rina.ic_queue_dropped + incast_rina.ic_cong_dropped)
    incast_tcp.ic_queue_dropped;
  Table.add_rowf table "crowd admitted / arrivals | %d / %d | %d / %d"
    crowd_rina.cr_admitted crowd_rina.cr_arrivals crowd_tcp.cr_admitted
    crowd_tcp.cr_arrivals;
  Table.add_rowf table "crowd busy retries (backoff) | %d | n/a"
    crowd_rina.cr_busy_retries;
  Table.add_rowf table "crowd completed / unfinished | %d / %d | %d / %d"
    crowd_rina.cr_completed crowd_rina.cr_unfinished crowd_tcp.cr_completed
    crowd_tcp.cr_unfinished;
  Table.add_rowf table "crowd FCT p50 / p99 (ms) | %.0f / %.0f | %.0f / %.0f"
    crowd_rina.cr_p50 crowd_rina.cr_p99 crowd_tcp.cr_p50 crowd_tcp.cr_p99;
  Table.add_rowf table
    "pushback peak lower backlog (on/off) | %d / %d | n/a"
    pb_on.pb_peak_lower_backlog pb_off.pb_peak_lower_backlog;
  Table.add_rowf table "pushback ECN echoes -> backoffs | %d -> %d | n/a"
    pb_on.pb_ecn_rcvd pb_on.pb_ecn_backoffs;
  Table.add_rowf table "composed chaos completed / admitted | %d / %d | n/a"
    composed.cr_completed composed.cr_admitted;
  Table.print table;
  write_json ~incast_rina ~incast_tcp ~crowd_rina ~crowd_tcp ~pb_on ~pb_off
    ~composed;
  Printf.printf "wrote BENCH_congestion.json\n";
  if Sys.getenv_opt "RINA_BENCH_CHECK" <> None then begin
    let fail = ref false in
    let claim name ok =
      Printf.printf "congestion gate: %-32s %s\n" name
        (if ok then "ok" else "VIOLATED");
      if not ok then fail := true
    in
    claim "incast goodput >= 80% bottleneck" (incast_rina.ic_ratio >= 0.8);
    claim "incast all flows complete"
      (incast_rina.ic_completed = senders && incast_rina.ic_admitted = senders);
    claim "no corrupt escapes"
      (incast_rina.ic_corrupt = 0 && crowd_rina.cr_corrupt = 0
     && composed.cr_corrupt = 0);
    claim "crowd admission exercised" (crowd_rina.cr_busy_rejected > 0);
    claim "crowd no livelock"
      (crowd_rina.cr_unfinished = 0
      && crowd_rina.cr_completed = crowd_rina.cr_admitted);
    claim "pushback signal end to end"
      (pb_on.pb_ecn_rcvd > 0 && pb_on.pb_ecn_backoffs > 0);
    claim "pushback bounds lower backlog"
      (pb_on.pb_peak_lower_backlog < pb_off.pb_peak_lower_backlog);
    claim "pushback still delivers all" (pb_on.pb_delivered = pb_on.pb_sent);
    claim "composed all faults recover"
      (List.for_all
         (fun (label, _, _) ->
           match
             List.find_opt
               (fun (l, _, _) -> String.equal l label)
               composed.cr_blackouts
           with
           | Some (_, _, Some _) -> true
           | _ -> false)
         crowd_faults);
    claim "composed no livelock"
      (composed.cr_unfinished = 0 && composed.cr_completed = composed.cr_admitted);
    if !fail then begin
      Printf.eprintf "R3: congestion-control invariant violated\n";
      exit 1
    end
  end
