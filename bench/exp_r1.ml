(* R1 — recovery under chaos: an identical fault schedule against the
   2-DIF relay arrangement and the TCP/IP baseline.

   Topology (both stacks, same shape):

     RINA   H1 ==link-DIF== R ==link-DIF== H2, host-to-host DIF
            stacked across the relay (Fig. 2's arrangement);
     TCP/IP hostA -- r0 -- hostB (Topo.ip_line, DV routing).

   A 1 Mb/s CBR stream crosses each stack while one deterministic
   fault plan (Rina_sim.Fault) runs, with times relative to the
   stream's start t0:

     t0+ 8 .. t0+11   flap-left        carrier loss, access wire
     t0+15 .. t0+18   blackhole-right  silent drops, carrier stays up
     t0+21 .. t0+24   degrade-left     10% of rate + 20% loss
     t0+27 .. t0+32   crash-relay      fail-stop of the relay: in RINA
                      Ipcp.crash/restart of the relaying IPC process
                      (state loss, dead-peer detection, LSA
                      withdrawal, re-enrollment with a fresh address);
                      in IP both router wires lose carrier.

   The flight recorder runs throughout.  Per-fault blackout windows
   (Rina_check.Trace_report.blackouts) and delivery-gap percentiles
   are computed from the trace and written to
   BENCH_chaos_recovery.json; the CI chaos smoke job fails the build
   on any "recovered": false (a fault from which delivery never
   resumed).  Everything is seeded and runs in virtual time, so the
   JSON is bit-identical across runs. *)

module Engine = Rina_sim.Engine
module Link = Rina_sim.Link
module Loss = Rina_sim.Loss
module Fault = Rina_sim.Fault
module Trace = Rina_sim.Trace
module Flight = Rina_util.Flight
module Stats = Rina_util.Stats
module Table = Rina_util.Table
module Ipcp = Rina_core.Ipcp
module Dif = Rina_core.Dif
module Shim = Rina_core.Shim
module Types = Rina_core.Types
module Topo = Rina_exp.Topo
module Workload = Rina_exp.Workload
module Report = Rina_check.Trace_report

let cbr_rate = 1_000_000.

let sdu_size = 500

let stream_len = 40.

(* Observation continues past the stream so post-crash recovery (RTO
   backoff can push the first repaired delivery well after the heal)
   is still captured. *)
let drain = 20.

(* (label, start, end) relative to t0 — the shared schedule. *)
let schedule =
  [
    ("flap-left", 8., 11.);
    ("blackhole-right", 15., 18.);
    ("degrade-left", 21., 24.);
    ("crash-relay", 27., 32.);
  ]

(* EFCP must persist through multi-second outages rather than declare
   the flow dead — link-layer-style persistence as in F3.  Detection
   policies (keepalive, dead-peer, aging) stay at their defaults: they
   are what the experiment measures. *)
let tolerant_policy =
  let d = Rina_core.Policy.default in
  {
    d with
    Rina_core.Policy.efcp =
      {
        d.Rina_core.Policy.efcp with
        Rina_core.Policy.init_rto = 0.3;
        min_rto = 0.05;
        max_rtx = 100_000;
      };
  }

type outcome = {
  delivered : int;
  blackouts : (string * float * float option) list;
  gaps : Stats.t;
}

(* Inter-arrival gaps between consecutive deliveries. *)
let gap_stats times =
  let st = Stats.create () in
  (match List.sort compare times with
  | [] -> ()
  | first :: rest ->
    ignore
      (List.fold_left
         (fun prev t ->
           Stats.add st (t -. prev);
           t)
         first rest));
  st

(* ---------- RINA ---------- *)

let build_rina () =
  let engine = Engine.create () in
  let rng = Rina_util.Prng.create 101 in
  let wire_l = Link.create engine rng ~bit_rate:10_000_000. ~delay:0.005 () in
  let wire_r = Link.create engine rng ~bit_rate:10_000_000. ~delay:0.005 () in
  let link_dif name link =
    let dif = Dif.create engine ~policy:tolerant_policy name in
    let a = Dif.add_member dif ~name:(name ^ "-a") () in
    let b = Dif.add_member dif ~name:(name ^ "-b") () in
    Dif.connect dif a b
      ( Shim.wrap ~dif:name (Link.endpoint_a link),
        Shim.wrap ~dif:name (Link.endpoint_b link) );
    Dif.run_until_converged dif ();
    (a, b)
  in
  let la, lb = link_dif "left" wire_l in
  let ra, rb = link_dif "right" wire_r in
  let top = Dif.create engine ~policy:tolerant_policy ~rank:1 "relay" in
  let h1 = Dif.add_member top ~name:"h1" () in
  let r = Dif.add_member top ~name:"r" () in
  let h2 = Dif.add_member top ~name:"h2" () in
  Dif.stack_connect ~lower_a:la ~lower_b:lb ~upper_a:h1 ~upper_b:r ();
  Dif.stack_connect ~lower_a:ra ~lower_b:rb ~upper_a:r ~upper_b:h2 ();
  Dif.run_until_converged top ~max_time:90. ();
  (engine, h1, r, h2, wire_l, wire_r)

let arm_link_faults plan ~t0 ~left ~right =
  List.iter
    (fun (label, a, b) ->
      let at = t0 +. a and until = t0 +. b in
      match label with
      | "flap-left" -> Fault.link_down plan ~at ~until ~label left
      | "blackhole-right" -> Fault.link_blackhole plan ~at ~until ~label right
      | "degrade-left" ->
        Fault.link_degrade plan ~at ~until ~label ~rate_factor:0.1
          ~loss:(Loss.Bernoulli 0.2) left
      | _ -> (* crash-relay is stack-specific; armed by the caller *) ())
    schedule

let crash_bounds =
  match List.assoc_opt "crash-relay" (List.map (fun (l, a, b) -> (l, (a, b))) schedule) with
  | Some w -> w
  | None -> assert false

let run_rina () =
  let engine, h1, r, h2, wire_l, wire_r = build_rina () in
  let tr = Trace.create engine in
  Trace.attach tr;
  let sink = Workload.sink () in
  let dst = Types.apn "chaos-sink" in
  Ipcp.register_app h2 dst ~on_flow:(fun flow ->
      flow.Ipcp.set_on_receive (fun sdu ->
          Workload.on_sdu sink ~now:(Engine.now engine) sdu));
  let src = Types.apn "chaos-src" in
  Ipcp.register_app h1 src ~on_flow:(fun _ -> ());
  let result = ref None in
  Ipcp.allocate_flow h1 ~src ~dst ~qos_id:1 ~on_result:(fun res ->
      result := Some res);
  let deadline = Engine.now engine +. 30. in
  while !result = None && Engine.now engine < deadline do
    Engine.run ~until:(Engine.now engine +. 0.05) engine
  done;
  match !result with
  | Some (Ok flow) ->
    let t0 = Engine.now engine in
    let plan = Fault.create () in
    arm_link_faults plan ~t0 ~left:wire_l ~right:wire_r;
    let ca, cb = crash_bounds in
    Fault.window plan ~at:(t0 +. ca) ~until:(t0 +. cb) ~label:"crash-relay"
      ~apply:(fun () -> Ipcp.crash r)
      ~heal:(fun () -> Ipcp.restart r);
    Fault.arm plan engine;
    Workload.cbr engine ~send:flow.Ipcp.send ~rate:cbr_rate ~size:sdu_size
      ~until:(t0 +. stream_len) ();
    Engine.run ~until:(t0 +. stream_len +. drain) engine;
    let events = Trace.typed_events tr in
    (* RINA_TRACE=<file> additionally saves the RINA run's trace, so
       `rina_trace --faults <file>` reproduces the blackout table. *)
    (match Sys.getenv_opt "RINA_TRACE" with
    | Some path -> Trace.save_jsonl tr path
    | None -> ());
    Trace.detach ();
    (* Deliveries that count are EFCP receptions in the host-to-host
       DIF (rank 1) — lower-DIF and management traffic would mask the
       blackout (hellos keep flowing on the surviving segment). *)
    let kept =
      List.filter
        (fun (e : Flight.event) ->
          match e.Flight.kind with
          | Flight.Pdu_recvd ->
            e.Flight.rank = 1 && String.equal e.Flight.component "efcp"
          | _ -> true)
        events
    in
    let times =
      List.filter_map
        (fun (e : Flight.event) ->
          match e.Flight.kind with
          | Flight.Pdu_recvd -> Some e.Flight.time
          | _ -> None)
        kept
    in
    Ok
      {
        delivered = sink.Workload.count;
        blackouts = Report.blackouts kept;
        gaps = gap_stats times;
      }
  | Some (Error e) ->
    Trace.detach ();
    Error ("allocation failed: " ^ e)
  | None ->
    Trace.detach ();
    Error "allocation hung"

(* ---------- TCP/IP baseline ---------- *)

let run_ip () =
  let net =
    Topo.ip_line ~seed:101 ~bit_rate:10_000_000. ~delay:0.005 ~routers:1 ()
  in
  let engine = net.Topo.ip_engine in
  let tr = Trace.create engine in
  Trace.attach tr;
  let u_a = Tcpip.Udp.attach net.Topo.hosts.(0) in
  let u_b = Tcpip.Udp.attach net.Topo.hosts.(1) in
  let src_addr = Tcpip.Ip.addr_of_octets 10 1 0 1 in
  let dst_addr = Tcpip.Ip.addr_of_octets 10 2 0 2 in
  let sink = Workload.sink () in
  Tcpip.Udp.listen u_b ~port:9000 (fun ~src:_ ~sport:_ body ->
      Workload.on_sdu sink ~now:(Engine.now engine) body);
  let t0 = Engine.now engine in
  let plan = Fault.create () in
  let left = net.Topo.ip_links.(0) and right = net.Topo.ip_links.(1) in
  arm_link_faults plan ~t0 ~left ~right;
  (* Fail-stop of r0, seen from the network: both wires dead. *)
  let ca, cb = crash_bounds in
  Fault.window plan ~at:(t0 +. ca) ~until:(t0 +. cb) ~label:"crash-relay"
    ~apply:(fun () ->
      Link.set_up left false;
      Link.set_up right false)
    ~heal:(fun () ->
      Link.set_up left true;
      Link.set_up right true);
  Fault.arm plan engine;
  Workload.cbr engine
    ~send:(fun sdu ->
      Tcpip.Udp.send u_a ~src:src_addr ~dst:dst_addr ~sport:9000 ~dport:9000
        sdu)
    ~rate:cbr_rate ~size:sdu_size ~until:(t0 +. stream_len) ();
  Engine.run ~until:(t0 +. stream_len +. drain) engine;
  let events = Trace.typed_events tr in
  Trace.detach ();
  let times =
    List.filter_map
      (fun (e : Flight.event) ->
        match e.Flight.kind with
        | Flight.Pdu_recvd when String.equal e.Flight.component "udp:hostB" ->
          Some e.Flight.time
        | _ -> None)
      events
  in
  {
    delivered = sink.Workload.count;
    blackouts = Report.blackouts ~component:"udp:hostB" events;
    gaps = gap_stats times;
  }

(* ---------- reporting ---------- *)

let blackout_of outcome label =
  match
    List.find_opt (fun (l, _, _) -> String.equal l label) outcome.blackouts
  with
  | Some (_, _, gap) -> gap
  | None -> None

let json_stack buf name outcome =
  let p q = 1000. *. Stats.percentile outcome.gaps q in
  Buffer.add_string buf (Printf.sprintf "  %S: {\n" name);
  Buffer.add_string buf
    (Printf.sprintf "    \"delivered\": %d,\n" outcome.delivered);
  Buffer.add_string buf "    \"faults\": [\n";
  let n = List.length schedule in
  List.iteri
    (fun i (label, at, until) ->
      let blackout, recovered =
        match blackout_of outcome label with
        | Some g -> (Printf.sprintf "%.6f" g, true)
        | None -> ("null", false)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "      {\"label\": %S, \"at_s\": %.1f, \"until_s\": %.1f, \
            \"blackout_s\": %s, \"recovered\": %b}%s\n"
           label at until blackout recovered
           (if i = n - 1 then "" else ",")))
    schedule;
  Buffer.add_string buf "    ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "    \"gap_p50_ms\": %.3f,\n    \"gap_p95_ms\": %.3f,\n    \
        \"gap_p99_ms\": %.3f,\n    \"gap_max_s\": %.6f\n"
       (p 50.) (p 95.) (p 99.)
       (Stats.max_value outcome.gaps))

let write_json rina ip =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  json_stack buf "rina" rina;
  Buffer.add_string buf "  },\n";
  json_stack buf "ip" ip;
  Buffer.add_string buf "  }\n}\n";
  Out_channel.with_open_text "BENCH_chaos_recovery.json" (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf))

let fmt_blackout = function
  | Some g -> Printf.sprintf "%.2f s" g
  | None -> "UNRECOVERED"

let run () =
  let table =
    Table.create
      ~title:
        "R1: recovery under an identical fault schedule — 1 Mb/s CBR \
         through a relay"
      ~columns:[ "fault"; "window"; "RINA blackout"; "TCP/IP blackout" ]
  in
  match run_rina () with
  | Error e -> Printf.printf "R1: RINA run failed: %s\n" e
  | Ok rina ->
    let ip = run_ip () in
    List.iter
      (fun (label, at, until) ->
        Table.add_rowf table "%s | %.0f..%.0f s | %s | %s" label at until
          (fmt_blackout (blackout_of rina label))
          (fmt_blackout (blackout_of ip label)))
      schedule;
    Table.add_rowf table
      "delivery gaps (p50/p99/max) | 0..%.0f s | %.0f ms / %.0f ms / %.1f s \
       | %.0f ms / %.0f ms / %.1f s"
      (stream_len +. drain)
      (1000. *. Stats.percentile rina.gaps 50.)
      (1000. *. Stats.percentile rina.gaps 99.)
      (Stats.max_value rina.gaps)
      (1000. *. Stats.percentile ip.gaps 50.)
      (1000. *. Stats.percentile ip.gaps 99.)
      (Stats.max_value ip.gaps);
    Table.print table;
    write_json rina ip;
    Printf.printf "wrote BENCH_chaos_recovery.json\n"
