(** Discrete-event simulation engine.

    A single virtual clock and an event heap.  Components schedule
    closures at absolute or relative virtual times; [run] executes
    them in timestamp order (FIFO among equal timestamps, so runs are
    deterministic).  Everything in this repository — links, EFCP
    timers, routing hello timers, TCP RTOs — runs on one engine.

    The event loop is allocation-lean: popping an event boxes nothing,
    cancelled timers are reaped in bulk once they outnumber live ones,
    and timers scheduled on the {!Timer} lane sit in a coarse wheel
    until they come due, so the common cancel-before-fire pattern
    (retransmission timers on a healthy flow) never pays heap
    maintenance.  Lane choice never affects firing order — it is a
    performance hint only. *)

type t

type handle
(** A scheduled event, usable for cancellation. *)

(** Scheduling lane. [Timer] marks periodic / usually-cancelled timer
    classes (RTO, keepalive, hello) for the wheel fast lane; [Default]
    goes straight to the heap.  Semantics are identical. *)
type lane = Default | Timer

val wheel_granularity : float
(** Slot width of the [Timer]-lane wheel, in seconds.  Periodic work
    riding the wheel (snapshot timers, keepalives) cannot usefully
    tick faster than this — lint rule L118 warns on policy intervals
    below it. *)

val create : unit -> t
(** Fresh engine with the clock at 0.0 seconds. *)

val now : t -> float
(** Current virtual time in seconds. *)

val schedule : ?lane:lane -> t -> delay:float -> (unit -> unit) -> handle
(** [schedule t ~delay f] runs [f] at [now t +. delay].  A negative
    delay is clamped to zero (runs "immediately", after currently
    pending same-time events). *)

val schedule_at : ?lane:lane -> t -> time:float -> (unit -> unit) -> handle
(** Absolute-time variant; times before [now] are clamped to [now]. *)

val cancel : handle -> unit
(** Prevent a pending event from firing; cancelling a fired or already
    cancelled event is a no-op. *)

val pending : t -> int
(** Number of events still queued (including cancelled ones not yet
    reaped). *)

val executed : t -> int
(** Total events popped off the queue since [create] (cancelled events
    included) — the denominator for per-event cost accounting. *)

val run : ?until:float -> t -> unit
(** Execute events in order.  With [until], stops once the next event
    is strictly beyond that time and sets the clock to [until];
    without it, runs until the queue drains. *)

val step : t -> bool
(** Execute exactly one event; [false] if the queue was empty. *)

val next_time : t -> float option
(** Timestamp of the event {!step} would execute next, without popping
    it (due wheel slots are flushed so the answer is exact).  [None]
    when nothing is pending.  This is the peek the sharded engine uses
    to interleave local events with staged cross-shard arrivals. *)
