(** Deterministic fault injection.

    A fault {e plan} is an ordered schedule of labelled steps — apply a
    fault at one virtual time, optionally heal it at a later one —
    built before the run and then {!arm}ed, which compiles every step
    into ordinary engine events.  Determinism falls out for free: the
    plan is data, the engine is deterministic, and any randomness used
    to build a plan comes from the caller's seeded {!Rina_util.Prng}.

    Canned link faults (flap, blackhole, degradation) are provided
    here; node-level faults (IPCP crash/restart, partitions) are
    closures supplied by higher layers via {!inject}/{!window} —
    [Rina_exp.Scenario] wires those, keeping this module free of any
    dependency on the RINA stack.

    Every armed step emits a flight-recorder event on component
    ["fault"]: [Custom "fault:<label>"] when it applies and
    [Custom "heal:<label>"] when it heals, which is what
    [rina_trace --faults] and the per-fault blackout report key on. *)

type t
(** A mutable plan under construction. *)

val create : unit -> t

val inject : t -> at:float -> label:string -> (unit -> unit) -> unit
(** One-shot fault step at absolute virtual time [at].
    @raise Invalid_argument if [at] is NaN or infinite. *)

val heal_at : t -> at:float -> label:string -> (unit -> unit) -> unit
(** One-shot heal step (recorded as ["heal:<label>"]).
    @raise Invalid_argument if [at] is NaN or infinite. *)

val window :
  t -> at:float -> until:float -> label:string ->
  apply:(unit -> unit) -> heal:(unit -> unit) -> unit
(** Fault active on \[[at], [until]): [apply] fires at [at], [heal] at
    [until].  @raise Invalid_argument if [until <= at] or either bound
    is NaN or infinite. *)

val link_down : t -> at:float -> until:float -> ?label:string -> Link.t -> unit
(** Carrier flap: the link is down for the window (watchers fire). *)

val link_blackhole :
  t -> at:float -> until:float -> ?label:string -> Link.t -> unit
(** Silent failure for the window: frames vanish, carrier stays up. *)

val link_degrade :
  t -> at:float -> until:float -> ?label:string ->
  ?rate_factor:float -> ?loss:Loss.t -> Link.t -> unit
(** Degradation: for the window the link runs at
    [rate_factor * bit_rate] (default [0.1]) and/or under [loss];
    healing restores the original rate and loss model.
    @raise Invalid_argument if [rate_factor] is not in (0, 1\]. *)

val link_corrupt :
  t -> at:float -> until:float -> ?label:string -> ?corrupt:float ->
  Link.t -> unit
(** Adversarial window: each frame suffers a single-bit flip with
    probability [corrupt] (default [0.05]).  Healing restores the mangle
    model captured at plan-build time. *)

val link_reorder :
  t -> at:float -> until:float -> ?label:string -> ?reorder:float ->
  ?max_displacement:int -> Link.t -> unit
(** Adversarial window: frames are held back with probability [reorder]
    (default [0.2]) until up to [max_displacement] (default [4]) later
    frames overtake them. *)

val link_duplicate :
  t -> at:float -> until:float -> ?label:string -> ?duplicate:float ->
  Link.t -> unit
(** Adversarial window: frames are duplicated with probability
    [duplicate] (default [0.1]). *)

val events : t -> (float * string) list
(** The compiled schedule as [(time, "fault:<label>" | "heal:<label>")]
    pairs, sorted by time (ties keep insertion order).  Two plans built
    from the same seed compare equal here — the replay-determinism
    check. *)

val arm : t -> Engine.t -> unit
(** Schedule every step on the engine.  Steps in the past (before
    [Engine.now]) are clamped to "immediately" by the engine.  A plan
    can be armed once per engine run. *)
