(** Adversarial frame-mangling models for links.

    Where {!Loss} removes frames, the mangler perturbs them: a single
    bit flip (to be caught — or not — by SDU protection), a duplicate
    copy injected shortly after the original, a one-off latency spike,
    or a bounded reordering (the frame is held back until a few later
    frames have passed it).  All draws come from the link half's seeded
    {!Rina_util.Prng} in a fixed per-frame order, so two runs with the
    same seed mangle identically — the same replay-determinism story as
    {!Loss} and {!Fault}. *)

type t = {
  corrupt : float;  (** per-frame bit-flip probability *)
  duplicate : float;  (** per-frame duplication probability *)
  dup_delay : float;  (** copy delivered this long after the original *)
  reorder : float;  (** per-frame holdback probability *)
  max_displacement : int;
      (** a held frame is released after at most this many later frames
          overtake it *)
  delay_spike : float;  (** per-frame latency-spike probability *)
  spike : float;  (** extra delay added by a spike, seconds *)
  max_hold : float;
      (** upper bound on holdback time: a displaced frame on an idle
          link is force-released after this long, seconds *)
}

val none : t
(** All probabilities zero: mangles nothing. *)

val make :
  ?corrupt:float ->
  ?duplicate:float ->
  ?dup_delay:float ->
  ?reorder:float ->
  ?max_displacement:int ->
  ?delay_spike:float ->
  ?spike:float ->
  ?max_hold:float ->
  unit ->
  t
(** Validated constructor (defaults: all probabilities 0,
    [dup_delay = 1ms], [max_displacement = 4], [spike = 10ms],
    [max_hold = 50ms]).  @raise Invalid_argument on probabilities
    outside \[0, 1\], non-positive delays, or non-finite values. *)

val is_none : t -> bool
(** True when every perturbation probability is zero. *)

type state
(** Per-link-half mangling state (currently memoryless; the spec/state
    split matches {!Loss} so burst manglers can be added without
    changing {!Link}). *)

val make_state : t -> state

val model : state -> t

type decision = {
  corrupt_bit : int;  (** bit index to flip, or [-1] for none *)
  dup : bool;
  spike_by : float;  (** extra delay in seconds, [0.] for none *)
  displacement : int;  (** frames that must overtake, [0] for in-order *)
}

val clean : decision
(** The no-op decision. *)

val decide : state -> Rina_util.Prng.t -> frame_bits:int -> decision
(** Advance the model one frame and report how to perturb it.  Draws
    consume the Prng in a fixed order regardless of outcome, so the
    random stream stays aligned across replays. *)

val flip_bit : bytes -> int -> bytes
(** [flip_bit frame bit] is a copy of [frame] with bit
    [bit mod (8 * length)] inverted (the original is not modified;
    relays may still hold references to it).  Empty frames are returned
    unchanged. *)

val pp : Format.formatter -> t -> unit
