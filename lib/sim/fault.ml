(* Fault plans: labelled (time, closure) steps compiled into engine
   events.  The plan itself is plain data built ahead of the run —
   that, plus seeding any randomness from the caller's Prng, is the
   whole determinism story. *)

type step = {
  at : float;
  tag : string;  (* "fault:<label>" or "heal:<label>" *)
  action : unit -> unit;
}

type t = { mutable steps : step list (* newest first *) }

let create () = { steps = [] }

let add t ~at tag action = t.steps <- { at; tag; action } :: t.steps

(* A NaN or infinite timestamp would silently wedge the plan (NaN
   compares false with everything, so sorting and the engine's
   past-clamp both misbehave): reject it at construction. *)
let check_finite fn at =
  if not (Float.is_finite at) then
    invalid_arg (fn ^ ": time must be finite")

let inject t ~at ~label action =
  check_finite "Fault.inject" at;
  add t ~at ("fault:" ^ label) action

let heal_at t ~at ~label action =
  check_finite "Fault.heal_at" at;
  add t ~at ("heal:" ^ label) action

let window t ~at ~until ~label ~apply ~heal =
  check_finite "Fault.window" at;
  check_finite "Fault.window" until;
  if until <= at then invalid_arg "Fault.window: until must be after at";
  inject t ~at ~label apply;
  heal_at t ~at:until ~label heal

let link_down t ~at ~until ?(label = "link_down") link =
  window t ~at ~until ~label
    ~apply:(fun () -> Link.set_up link false)
    ~heal:(fun () -> Link.set_up link true)

let link_blackhole t ~at ~until ?(label = "blackhole") link =
  window t ~at ~until ~label
    ~apply:(fun () -> Link.set_blackhole link true)
    ~heal:(fun () -> Link.set_blackhole link false)

let link_degrade t ~at ~until ?(label = "degrade") ?(rate_factor = 0.1) ?loss
    link =
  if rate_factor <= 0. || rate_factor > 1. then
    invalid_arg "Fault.link_degrade: rate_factor must be in (0, 1]";
  (* Capture the healthy settings at plan-build time; heal restores
     them even if several windows overlap awkwardly. *)
  let rate0 = Link.bit_rate link and loss0 = Link.loss link in
  window t ~at ~until ~label
    ~apply:(fun () ->
      Link.set_bit_rate link (rate0 *. rate_factor);
      match loss with None -> () | Some l -> Link.set_loss link l)
    ~heal:(fun () ->
      Link.set_bit_rate link rate0;
      Link.set_loss link loss0)

(* The mangle windows share one shape: capture the link's healthy
   mangle spec at plan-build time, overlay the adversarial spec at
   [at], restore the captured one at [until] — same discipline as
   [link_degrade]'s rate/loss capture. *)
let mangle_window t ~at ~until ~label link spec =
  let mangle0 = Link.mangle link in
  window t ~at ~until ~label
    ~apply:(fun () -> Link.set_mangle link spec)
    ~heal:(fun () -> Link.set_mangle link mangle0)

let link_corrupt t ~at ~until ?(label = "corrupt") ?(corrupt = 0.05) link =
  mangle_window t ~at ~until ~label link (Mangle.make ~corrupt ())

let link_reorder t ~at ~until ?(label = "reorder") ?(reorder = 0.2)
    ?(max_displacement = 4) link =
  mangle_window t ~at ~until ~label link
    (Mangle.make ~reorder ~max_displacement ())

let link_duplicate t ~at ~until ?(label = "duplicate") ?(duplicate = 0.1) link =
  mangle_window t ~at ~until ~label link (Mangle.make ~duplicate ())

let ordered t =
  (* steps is newest-first; a stable sort on the reversed list keeps
     insertion order among equal timestamps. *)
  List.stable_sort
    (fun a b -> Float.compare a.at b.at)
    (List.rev t.steps)

let events t = List.map (fun s -> (s.at, s.tag)) (ordered t)

let arm t engine =
  List.iter
    (fun s ->
      ignore
        (Engine.schedule_at engine ~time:s.at (fun () ->
             if Rina_util.Flight.enabled () then
               Rina_util.Flight.emit ~component:"fault"
                 (Rina_util.Flight.Custom s.tag);
             s.action ())))
    (ordered t)
