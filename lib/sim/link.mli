(** Duplex point-to-point link.

    Two independent unidirectional halves, each with a serialisation
    rate, propagation delay, a drop-tail queue bounded in packets, and
    a loss model.  [set_up] injects link failures: frames in flight or
    queued when the link goes down are lost, and carrier watchers on
    both endpoints fire — this is what the multihoming and mobility
    experiments use to "fail" paths. *)

type t

val create :
  Engine.t ->
  Rina_util.Prng.t ->
  bit_rate:float ->
  delay:float ->
  ?queue_capacity:int ->
  ?loss:Loss.t ->
  ?mangle:Mangle.t ->
  ?label:string ->
  unit ->
  t
(** [bit_rate] in bits/second, [delay] one-way propagation in seconds,
    [queue_capacity] in frames (default 64), [loss] per-direction
    (default [No_loss]), [mangle] per-direction adversarial model
    (default {!Mangle.none}).  [label] (default ["link"]) names the
    link in flight-recorder events: the two directions emit as
    [label^".ab"] and [label^".ba"].
    @raise Invalid_argument on non-positive rate/negative delay. *)

val endpoint_a : t -> Chan.t
val endpoint_b : t -> Chan.t

val set_up : t -> bool -> unit
(** Change carrier state; notifies watchers on both endpoints when the
    state actually changes. *)

val set_blackhole : t -> bool -> unit
(** Silently drop every frame in both directions *without* any carrier
    notification — the "silent failure" (misbehaving middlebox, radio
    shadow) that forces endpoints to detect loss by timeout.
    Swallowed frames are still visible to diagnostics: they count in
    the [blackholed] conservation column and emit
    [Flight.R_blackhole] drops, distinct from carrier loss. *)

val bit_rate : t -> float
(** Current serialisation rate in bits/second (both halves share it). *)

val delay : t -> float
(** One-way propagation delay in seconds (both halves share it) — what
    the static verifier reads to bound cross-shard lookahead. *)

val queue_capacity : t -> int
(** Drop-tail queue bound in frames (both halves share it). *)

val loss : t -> Loss.t
(** Current loss model specification. *)

val mangle : t -> Mangle.t
(** Current adversarial-mangling specification ({!Mangle.none} when the
    link is clean). *)

val set_bit_rate : t -> float -> unit
(** Change the serialisation rate of both halves — degradation faults
    ramp this down and back up.  Frames already serialising keep their
    old finish time.  @raise Invalid_argument if non-positive. *)

val set_loss : t -> Loss.t -> unit
(** Swap the loss model on both halves (fresh model state, so a
    Gilbert–Elliott burst does not leak across the swap). *)

val set_mangle : t -> Mangle.t -> unit
(** Swap the adversarial model on both halves (fresh state).  Frames
    already held back by a previous reorder model are still released by
    their own flush timers.  A corrupted frame is {e delivered} at the
    link layer (conservation counts it delivered) and discarded later by
    SDU-protection verification; a duplicated copy counts as one extra
    [injected] frame so the conservation identity
    [injected = delivered + dropped + blackholed] is preserved. *)

val crash_endpoint : t -> [ `A | `B ] -> unit
(** Fail-stop of one endpoint, seen from the wire: voids every frame in
    flight {e toward} that endpoint — including frames a mangler is
    holding back for reorder or delay-spike — so nothing contaminates a
    process that later restarts behind the same channel with a fresh
    address.  Voided frames drop with {!Rina_util.Flight.R_endpoint_crash}
    (metric [dropped_crash]) instead of [R_link_down]; conservation
    still balances.  The opposite direction and the carrier state are
    untouched (no watcher fires — a crash is not a carrier event).
    [Rina_exp.Scenario.crash_node] calls this for every link incident
    to the crashed node. *)

val is_up : t -> bool

val stats_a : t -> Rina_util.Metrics.t
(** Counters for the half transmitting from endpoint A. *)

val stats_b : t -> Rina_util.Metrics.t

(** Sanitizer accounting for one direction (see
    {!Rina_check.Sanitizer.audit_link}): every frame handed to the link
    is [injected], and ends up [delivered], [dropped] (queue tail, loss
    model, carrier loss) or [blackholed] (swallowed while the carrier
    stayed up).  Once the event queue drains,
    [injected = delivered + dropped + blackholed] — the
    PDU-conservation invariant.  Only maintained while
    [Rina_util.Invariant.enabled] is set (enable it before injecting
    traffic); the fields are mutable so tests can simulate an
    accounting leak. *)
type conservation = {
  mutable injected : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable blackholed : int;
}

val conservation_a : t -> conservation
(** Accounting for frames sent by endpoint A (the forward half). *)

val conservation_b : t -> conservation

val queue_depth_a : t -> int
(** Frames currently queued or serialising on the A→B half; the value
    link-queue probes sample. *)

val queue_depth_b : t -> int
