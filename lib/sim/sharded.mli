(** Conservative-lookahead parallel simulation of one trial.

    Partitions a topology into shards, each with its own {!Engine},
    exchanging cross-shard frames through bounded lock-free SPSC
    mailboxes and synchronizing on conservative lookahead windows: a
    shard may advance to [min over in-neighbours (grant + lookahead)],
    then publishes its own grant.  The lookahead is the window
    [Rina_check.Verify] derives from cross-shard propagation delays
    (a [shard_spec]'s [summary.lookahead]).

    {b Determinism contract}: with the same seed the merged trace,
    stats and bench output are byte-identical whether [run] uses 1
    domain or N.  Cross-shard arrivals are tie-broken by
    [(time, source shard id, per-source seq)] — never by mailbox
    arrival order — and interleaved with local events by timestamp
    with local events winning ties, so per-shard execution order is a
    pure function of the seed.

    Build-phase calls ({!cross_link}, {!set_context}) must happen on
    the owning domain before the first {!run}; {!run} itself may be
    called repeatedly with a non-decreasing [until]. *)

type t

val create : ?mailbox_capacity:int -> shards:int -> lookahead:float -> unit -> t
(** A shard table of [shards] fresh engines.  [lookahead] is the
    conservative window (seconds); every cross-shard link delay must
    be at least this.  [mailbox_capacity] (default 8192) bounds each
    directed mailbox ring; it must cover one lookahead window's worth
    of cross-shard traffic or producers stall waiting for the peer.
    @raise Invalid_argument if [shards < 1] or [lookahead <= 0] — a
    zero/absent rina_verify lookahead means the partition cannot run
    in parallel (lint rule L121 catches this statically). *)

val shard_count : t -> int

val lookahead : t -> float

val engine : t -> int -> Engine.t
(** The engine owned by shard [i].  Build shard-local topology
    (links, IPCPs) against this engine exactly as in the sequential
    world. *)

val cross_link :
  t ->
  ?queue_capacity:int ->
  ?label:string ->
  src:int ->
  dst:int ->
  bit_rate:float ->
  delay:float ->
  unit ->
  Chan.t * Chan.t
(** A duplex link whose endpoints live on different shards: the first
    channel on shard [src], the second on shard [dst].  Sender-side
    admission and serialization match {!Link} (drop-tail at
    [queue_capacity], busy line, 8·len/rate); the serialized frame is
    enqueued into the peer shard's mailbox with arrival time
    [finish + delay].  Cross-shard links are ideal — no loss, mangle
    or carrier faults (put lossy links inside a shard).
    @raise Invalid_argument if [delay < lookahead t] (the conservative
    horizon would admit late arrivals) or [src = dst]. *)

val set_context : t -> install:(int -> unit) -> uninstall:(int -> unit) -> unit
(** Per-shard observability context: [install i] is called before a
    worker steps shard [i]'s events for an epoch and [uninstall i]
    after.  Flight recorders and telemetry registries are domain-local
    state, so this is where [Rina_exp.Obs] swaps in shard [i]'s
    recorder (one domain may step many shards). *)

val run : ?domains:int -> t -> until:float -> unit
(** Advance every shard to exactly [until] (clocks settle there, like
    [Engine.run ~until]).  [domains = 1] (default) steps all shards on
    the calling domain in round-robin; [domains = n] spawns [n - 1]
    workers, shards assigned round-robin by id.  When
    {!Rina_util.Race} is armed the fork/join edges are annotated, so a
    race-checked parallel run needs no extra plumbing.  The outcome is
    byte-identical for every [domains] value. *)

val granted : t -> float
(** The fleet-wide grant: [min] over shards of the time up to which
    that shard has executed everything.  Equals the last [run]'s
    [until] once it returns. *)

val epochs : t -> int
(** Total epochs executed across shards (sync-overhead telemetry). *)

val crossed : t -> int
(** Total cross-shard frames delivered (decomposition-quality
    telemetry: high ratios of [crossed] to local traffic mean the
    partition cuts too many hot links). *)
