type conservation = {
  mutable injected : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable blackholed : int;
}

(* A frame held back by the mangler's reorder model: it re-enters the
   delivery stream after [remaining] later frames have overtaken it, or
   when the max-hold flush fires on an idle link, whichever is first. *)
type held = {
  hframe : bytes;
  h_epoch : int;
  mutable remaining : int;
  mutable released : bool;
}

type half = {
  engine : Engine.t;
  rng : Rina_util.Prng.t;
  mutable bit_rate : float;  (* mutable so faults can degrade a live link *)
  delay : float;
  queue_capacity : int;
  mutable loss : Loss.state;
  mutable mangle : Mangle.state;
  mutable held : held list;  (* oldest first; short (bounded by holds in flight) *)
  comp : string;  (* flight-recorder component name for this direction *)
  stats : Rina_util.Metrics.t;
  mutable busy_until : float;
  mutable queued : int;
  mutable receiver : bytes -> unit;
  mutable epoch : int;  (* bumped on carrier-down; voids in-flight frames *)
  mutable epoch_reason : Rina_util.Flight.reason;
      (* why the last epoch bump voided the in-flight frames: carrier
         loss (the default) or a crash of the receiving endpoint *)
  conserv : conservation;
      (* sanitizer accounting: only maintained while
         [Rina_util.Invariant.enabled]; at drain, injected must equal
         delivered + dropped *)
}

type t = {
  forward : half;  (* a -> b *)
  backward : half;  (* b -> a *)
  mutable up : bool;
  mutable blackhole : bool;
  mutable watchers : (bool -> unit) list;
}

let make_half engine rng ~bit_rate ~delay ~queue_capacity ~loss ~mangle ~comp =
  {
    engine;
    rng;
    bit_rate;
    delay;
    queue_capacity;
    loss = Loss.make_state loss;
    mangle = Mangle.make_state mangle;
    held = [];
    comp;
    stats = Rina_util.Metrics.create ();
    busy_until = 0.;
    queued = 0;
    receiver = (fun _ -> ());
    epoch = 0;
    epoch_reason = Rina_util.Flight.R_link_down;
    conserv = { injected = 0; delivered = 0; dropped = 0; blackholed = 0 };
  }

let create engine rng ~bit_rate ~delay ?(queue_capacity = 64) ?(loss = Loss.No_loss)
    ?(mangle = Mangle.none) ?(label = "link") () =
  if bit_rate <= 0. then invalid_arg "Link.create: bit_rate must be positive";
  if delay < 0. then invalid_arg "Link.create: delay must be non-negative";
  if queue_capacity <= 0 then
    invalid_arg "Link.create: queue_capacity must be positive";
  let rng_f = Rina_util.Prng.split rng and rng_b = Rina_util.Prng.split rng in
  {
    forward =
      make_half engine rng_f ~bit_rate ~delay ~queue_capacity ~loss ~mangle
        ~comp:(label ^ ".ab");
    backward =
      make_half engine rng_b ~bit_rate ~delay ~queue_capacity ~loss ~mangle
        ~comp:(label ^ ".ba");
    up = true;
    blackhole = false;
    watchers = [];
  }

(* Conservation accounting is guarded by the sanitizer flag at every
   site (a load and a branch) rather than hoisted into helper closures,
   so the disabled path allocates nothing extra per frame. *)
let[@inline] account_admission_drop half =
  if Rina_util.Invariant.enabled () then begin
    half.conserv.injected <- half.conserv.injected + 1;
    half.conserv.dropped <- half.conserv.dropped + 1
  end

let[@inline] account_late_drop half =
  if Rina_util.Invariant.enabled () then
    half.conserv.dropped <- half.conserv.dropped + 1

let[@inline] account_blackhole half =
  if Rina_util.Invariant.enabled () then
    half.conserv.blackholed <- half.conserv.blackholed + 1

(* Flight-recorder emissions follow the same per-site guard discipline
   as the conservation accounting above: frames are opaque here, so
   events carry the frame size but no span id. *)
let[@inline] flight_drop half reason size =
  let r = Rina_util.Flight.cur () in
  if Rina_util.Flight.on r then
    Rina_util.Flight.emit_to r ~component:half.comp ~size
      (Rina_util.Flight.Pdu_dropped reason)

(* A frame whose epoch went stale died with whatever voided it —
   carrier loss or an endpoint crash; the typed reason keeps a held-back
   frame from masquerading as an ordinary link_down drop. *)
let stale_drop half size =
  account_late_drop half;
  flight_drop half half.epoch_reason size;
  Rina_util.Metrics.incr half.stats
    (match half.epoch_reason with
     | Rina_util.Flight.R_endpoint_crash -> "dropped_crash"
     | _ -> "dropped_down")

(* ---------- delivery (post-propagation) ----------

   With no mangler the path is exactly the pre-mangle one: account,
   emit, hand the frame to the receiver.  The mangler adds three detours
   — a duplicate copy re-entering after dup_delay, a spiked frame
   re-entering late, and a held frame waiting for [remaining] later
   frames to overtake it — and each detour re-checks epoch / carrier /
   blackhole on re-entry with the same drop accounting as a first
   arrival, so conservation holds for every copy. *)

let rec deliver_frame t half frame =
  if Rina_util.Invariant.enabled () then
    half.conserv.delivered <- half.conserv.delivered + 1;
  let r = Rina_util.Flight.cur () in
  if Rina_util.Flight.on r then
    Rina_util.Flight.emit_to r ~component:half.comp ~size:(Bytes.length frame)
      Rina_util.Flight.Pdu_recvd;
  Rina_util.Metrics.incr half.stats "rx";
  Rina_util.Metrics.add half.stats "rx_bytes" (Bytes.length frame);
  half.receiver frame;
  if half.held <> [] then release_overtaken t half

and release_overtaken t half =
  (* One frame has passed every live hold; release the ones whose
     displacement is exhausted, oldest first.  Stale-epoch holds are
     dropped from the list here but accounted by their flush event. *)
  let ready = ref [] in
  half.held <-
    List.filter
      (fun h ->
        if h.released || h.h_epoch <> half.epoch then false
        else begin
          h.remaining <- h.remaining - 1;
          if h.remaining <= 0 then begin
            h.released <- true;
            ready := h :: !ready;
            false
          end
          else true
        end)
      half.held;
  List.iter (fun h -> redeliver t half h.h_epoch h.hframe) (List.rev !ready)

and redeliver t half epoch frame =
  if epoch = half.epoch && t.up && not t.blackhole then
    deliver_frame t half frame
  else if epoch = half.epoch && t.up then begin
    account_blackhole half;
    flight_drop half Rina_util.Flight.R_blackhole (Bytes.length frame);
    Rina_util.Metrics.incr half.stats "dropped_blackhole"
  end
  else stale_drop half (Bytes.length frame)

let hold_back t half epoch frame displacement =
  Rina_util.Metrics.incr half.stats "mangle_reorder";
  let h = { hframe = frame; h_epoch = epoch; remaining = displacement; released = false } in
  half.held <- half.held @ [ h ];
  let max_hold = (Mangle.model half.mangle).Mangle.max_hold in
  ignore
    (Engine.schedule half.engine ~delay:max_hold (fun () ->
         if not h.released then begin
           (* idle-link (or flapped-link) flush: nothing overtook it *)
           h.released <- true;
           half.held <- List.filter (fun x -> x != h) half.held;
           redeliver t half epoch h.hframe
         end))

let mangled_arrival t half epoch frame =
  let d =
    Mangle.decide half.mangle half.rng ~frame_bits:(8 * Bytes.length frame)
  in
  let frame =
    if d.Mangle.corrupt_bit >= 0 then begin
      Rina_util.Metrics.incr half.stats "mangle_corrupt";
      Mangle.flip_bit frame d.Mangle.corrupt_bit
    end
    else frame
  in
  if d.Mangle.dup then begin
    (* The copy is a new frame entering the channel: it counts as
       injected so conservation still balances, and it bypasses the
       mangler so one decision covers one original frame. *)
    Rina_util.Metrics.incr half.stats "mangle_dup";
    if Rina_util.Invariant.enabled () then
      half.conserv.injected <- half.conserv.injected + 1;
    let copy = Bytes.copy frame in
    let dup_delay = (Mangle.model half.mangle).Mangle.dup_delay in
    ignore
      (Engine.schedule half.engine ~delay:dup_delay (fun () ->
           redeliver t half epoch copy))
  end;
  if d.Mangle.spike_by > 0. then begin
    Rina_util.Metrics.incr half.stats "mangle_spike";
    ignore
      (Engine.schedule half.engine ~delay:d.Mangle.spike_by (fun () ->
           if epoch = half.epoch && t.up && not t.blackhole then
             if d.Mangle.displacement > 0 then
               hold_back t half epoch frame d.Mangle.displacement
             else deliver_frame t half frame
           else redeliver t half epoch frame))
  end
  else if d.Mangle.displacement > 0 then
    hold_back t half epoch frame d.Mangle.displacement
  else deliver_frame t half frame

let transmit t half frame =
  let m = half.stats in
  if not t.up then begin
    account_admission_drop half;
    flight_drop half Rina_util.Flight.R_link_down (Bytes.length frame);
    Rina_util.Metrics.incr m "dropped_down"
  end
  else if half.queued >= half.queue_capacity then begin
    account_admission_drop half;
    flight_drop half Rina_util.Flight.R_queue_full (Bytes.length frame);
    Rina_util.Metrics.incr m "dropped_queue"
  end
  else begin
    if Rina_util.Invariant.enabled () then
      half.conserv.injected <- half.conserv.injected + 1;
    let r = Rina_util.Flight.cur () in
    if Rina_util.Flight.on r then
      Rina_util.Flight.emit_to r ~component:half.comp
        ~size:(Bytes.length frame) Rina_util.Flight.Pdu_sent;
    Rina_util.Metrics.incr m "tx";
    Rina_util.Metrics.add m "tx_bytes" (Bytes.length frame);
    half.queued <- half.queued + 1;
    let now = Engine.now half.engine in
    let start = Float.max now half.busy_until in
    let ser = float_of_int (8 * Bytes.length frame) /. half.bit_rate in
    let finish = start +. ser in
    half.busy_until <- finish;
    let epoch = half.epoch in
    ignore
      (Engine.schedule_at half.engine ~time:finish (fun () ->
           half.queued <- half.queued - 1;
           if epoch = half.epoch && t.up then
             if Loss.drops half.loss half.rng then begin
               account_late_drop half;
               flight_drop half Rina_util.Flight.R_loss (Bytes.length frame);
               Rina_util.Metrics.incr m "dropped_loss"
             end
             else
               ignore
                 (Engine.schedule half.engine ~delay:half.delay (fun () ->
                      if epoch = half.epoch && t.up && not t.blackhole then begin
                        if Mangle.is_none (Mangle.model half.mangle) then
                          deliver_frame t half frame
                        else mangled_arrival t half epoch frame
                      end
                      else if epoch = half.epoch && t.up then begin
                        (* carrier still up: the blackhole ate it *)
                        account_blackhole half;
                        flight_drop half Rina_util.Flight.R_blackhole
                          (Bytes.length frame);
                        Rina_util.Metrics.incr m "dropped_blackhole"
                      end
                      else stale_drop half (Bytes.length frame)))
           else stale_drop half (Bytes.length frame)))
  end

(* Endpoint A transmits on the forward half and receives from the
   backward half. *)
let endpoint_a t : Chan.t =
  {
    Chan.send = (fun frame -> transmit t t.forward frame);
    set_receiver = (fun f -> t.backward.receiver <- f);
    is_up = (fun () -> t.up);
    on_carrier = (fun f -> t.watchers <- f :: t.watchers);
    stats = t.forward.stats;
  }

let endpoint_b t : Chan.t =
  {
    Chan.send = (fun frame -> transmit t t.backward frame);
    set_receiver = (fun f -> t.forward.receiver <- f);
    is_up = (fun () -> t.up);
    on_carrier = (fun f -> t.watchers <- f :: t.watchers);
    stats = t.backward.stats;
  }

let set_blackhole t b = t.blackhole <- b

let bit_rate t = t.forward.bit_rate

let delay t = t.forward.delay

let queue_capacity t = t.forward.queue_capacity

let loss t = Loss.model t.forward.loss

let mangle t = Mangle.model t.forward.mangle

let set_bit_rate t bit_rate =
  if bit_rate <= 0. then invalid_arg "Link.set_bit_rate: must be positive";
  t.forward.bit_rate <- bit_rate;
  t.backward.bit_rate <- bit_rate

let set_loss t loss =
  t.forward.loss <- Loss.make_state loss;
  t.backward.loss <- Loss.make_state loss

let set_mangle t mangle =
  t.forward.mangle <- Mangle.make_state mangle;
  t.backward.mangle <- Mangle.make_state mangle

let set_up t up =
  if t.up <> up then begin
    t.up <- up;
    if not up then begin
      (* Void everything in flight and reset transmitter state. *)
      t.forward.epoch <- t.forward.epoch + 1;
      t.backward.epoch <- t.backward.epoch + 1;
      t.forward.epoch_reason <- Rina_util.Flight.R_link_down;
      t.backward.epoch_reason <- Rina_util.Flight.R_link_down;
      t.forward.busy_until <- Engine.now t.forward.engine;
      t.backward.busy_until <- Engine.now t.backward.engine
    end;
    List.iter (fun f -> f up) t.watchers
  end

let crash_endpoint t side =
  (* Fail-stop of one endpoint, seen from the wire: every frame in
     flight toward it — including copies a mangler is holding back for
     reorder or delay-spike — dies with [R_endpoint_crash] instead of
     reaching whatever process later reattaches to the same channel.
     Frames toward endpoint A travel on the backward half.  The other
     direction is untouched: the survivor's transmissions already in
     flight still arrive at the survivor's peer queue (and are thrown
     away there by the crashed process's ingress gate). *)
  let half = match side with `A -> t.backward | `B -> t.forward in
  half.epoch <- half.epoch + 1;
  half.epoch_reason <- Rina_util.Flight.R_endpoint_crash

let is_up t = t.up

let stats_a t = t.forward.stats

let stats_b t = t.backward.stats

let conservation_a t = t.forward.conserv

let conservation_b t = t.backward.conserv

let queue_depth_a t = t.forward.queued

let queue_depth_b t = t.backward.queued
