module Flight = Rina_util.Flight
module Telemetry = Rina_util.Telemetry

type t = {
  engine : Engine.t;
  buf : Flight.Buf.t;
  mutable attached : bool;
  mutable stream : out_channel option;
  mutable telemetry : Telemetry.t option;
}

let create ?ring_capacity engine =
  {
    engine;
    buf = Flight.Buf.create ?capacity:ring_capacity ();
    attached = false;
    stream = None;
    telemetry = None;
  }

let record t ~component ~event =
  Flight.Buf.add t.buf
    {
      Flight.time = Engine.now t.engine;
      component;
      kind = Flight.Custom event;
      flow = 0;
      rank = 0;
      seq = 0;
      size = 0;
      span = 0;
    }

let typed_events t = Flight.Buf.to_list t.buf

let length t = Flight.Buf.length t.buf

let events t =
  List.map
    (fun (e : Flight.event) -> (e.time, e.component, Flight.kind_to_string e.kind))
    (typed_events t)

let filter t ~component =
  let acc = ref [] in
  Flight.Buf.iter
    (fun (e : Flight.event) ->
      if String.equal e.component component then
        acc := (e.time, Flight.kind_to_string e.kind) :: !acc)
    t.buf;
  List.rev !acc

let count t ~component ~event =
  let n = ref 0 in
  Flight.Buf.iter
    (fun (e : Flight.event) ->
      if
        String.equal e.component component
        && String.equal (Flight.kind_to_string e.kind) event
      then incr n)
    t.buf;
  !n

(* Times are sorted before scanning (record order among equal
   timestamps is then irrelevant) and ties between equally wide gaps
   resolve to the earliest interval, so duplicate timestamps give a
   deterministic answer. *)
let largest_gap_of_times times =
  match times with
  | [] | [ _ ] -> None
  | _ ->
    let arr = Array.of_list times in
    Array.sort compare arr;
    let best = ref None in
    for i = 1 to Array.length arr - 1 do
      let gap = arr.(i) -. arr.(i - 1) in
      match !best with
      | Some (g, _) when g >= gap -> ()
      | Some _ | None -> best := Some (gap, arr.(i - 1))
    done;
    !best

let largest_gap t ~component ~event =
  let times = ref [] in
  Flight.Buf.iter
    (fun (e : Flight.event) ->
      if
        String.equal e.component component
        && String.equal (Flight.kind_to_string e.kind) event
      then times := e.time :: !times)
    t.buf;
  largest_gap_of_times !times

(* ---------- flight-recorder attachment ---------- *)

let attach ?(sample_rate = 1.) ?telemetry ?stream t =
  t.attached <- true;
  (match stream with
   | Some path ->
     (match t.stream with Some oc -> Out_channel.close oc | None -> ());
     t.stream <- Some (Out_channel.open_text path)
   | None -> ());
  t.telemetry <- telemetry;
  Flight.set_clock (fun () -> Engine.now t.engine);
  (match telemetry with
   | Some tele ->
     Telemetry.set_latency_ppm tele (Flight.ppm_of_rate sample_rate);
     Telemetry.install tele
   | None -> Telemetry.uninstall ());
  (match t.stream with
   | Some oc ->
     Flight.set_sink (fun e ->
         Out_channel.output_string oc (Flight.event_to_json e);
         Out_channel.output_char oc '\n')
   | None -> Flight.set_sink (fun e -> Flight.Buf.add t.buf e));
  Flight.set_sample_rate sample_rate;
  Flight.set_enabled true;
  (* a sampled trace carries its own rate so analysis can scale counts:
     the marker is a Custom event, which sampling always keeps *)
  if Flight.sample_ppm () < 1_000_000 then
    Flight.emit ~component:"trace" ~size:(Flight.sample_ppm ())
      (Flight.Custom "meta:sample_ppm")

let detach () =
  Flight.set_enabled false;
  Flight.set_sink (fun _ -> ());
  Telemetry.uninstall ();
  Flight.set_sample_rate 1.;
  Flight.set_clock (fun () -> 0.)

let close t =
  (match t.stream with
   | Some oc ->
     Out_channel.close oc;
     t.stream <- None
   | None -> ());
  if t.attached then begin
    t.attached <- false;
    detach ()
  end

let is_attached t = t.attached && Flight.enabled ()

(* ---------- periodic snapshots ---------- *)

(* Snapshot ticks are periodic and low-rate — exactly the class the
   Timer lane's wheel exists for — so live stats ride the coarse wheel
   instead of churning the heap. *)
let snapshots t ~interval ~until =
  if interval <= 0. then
    invalid_arg "Trace.snapshots: interval must be positive";
  match t.telemetry with
  | None ->
    invalid_arg "Trace.snapshots: attach with ~telemetry before scheduling"
  | Some tele ->
    let ticks = ref 0 in
    let rec tick () =
      if Flight.enabled () then begin
        let s = Telemetry.snap tele ~now:(Engine.now t.engine) in
        incr ticks;
        Flight.emit ~component:"trace" ~seq:!ticks ~size:s.Telemetry.events
          (Flight.Custom "snapshot")
      end;
      if Engine.now t.engine +. interval <= until then
        ignore (Engine.schedule ~lane:Engine.Timer t.engine ~delay:interval tick)
    in
    ignore (Engine.schedule ~lane:Engine.Timer t.engine ~delay:interval tick)

(* ---------- periodic probes ---------- *)

let probe t ~name ~period ~until sample =
  if period <= 0. then invalid_arg "Trace.probe: period must be positive";
  let rec tick () =
    if Flight.enabled () then
      Flight.emit ~component:name ~size:(sample ()) (Flight.Custom "probe");
    if Engine.now t.engine +. period <= until then
      ignore (Engine.schedule t.engine ~delay:period tick)
  in
  ignore (Engine.schedule t.engine ~delay:period tick)

(* ---------- JSONL sink ---------- *)

let save_jsonl t path =
  Out_channel.with_open_text path (fun oc ->
      Flight.Buf.iter
        (fun e ->
          Out_channel.output_string oc (Flight.event_to_json e);
          Out_channel.output_char oc '\n')
        t.buf)

(* Streamed line-by-line: peak memory is one line plus the caller's
   accumulator, never the whole file — load never re-buffers what the
   streaming sink deliberately spilled to disk. *)
let fold_jsonl path ~init ~f =
  match In_channel.open_text path with
  | exception Sys_error e -> Error e
  | ic ->
    Fun.protect
      ~finally:(fun () -> In_channel.close ic)
      (fun () ->
        let rec go lineno acc =
          match In_channel.input_line ic with
          | None -> Ok acc
          | Some line ->
            if String.trim line = "" then go (lineno + 1) acc
            else (
              match Flight.event_of_json line with
              | Ok e -> go (lineno + 1) (f acc e)
              | Error msg -> Error (Printf.sprintf "%s:%d: %s" path lineno msg))
        in
        go 1 init)

let load_jsonl path =
  match fold_jsonl path ~init:[] ~f:(fun acc e -> e :: acc) with
  | Ok acc -> Ok (List.rev acc)
  | Error _ as e -> e
