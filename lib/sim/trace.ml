module Flight = Rina_util.Flight

type t = {
  engine : Engine.t;
  buf : Flight.Buf.t;
  mutable attached : bool;
}

let create engine = { engine; buf = Flight.Buf.create (); attached = false }

let record t ~component ~event =
  Flight.Buf.add t.buf
    {
      Flight.time = Engine.now t.engine;
      component;
      kind = Flight.Custom event;
      flow = 0;
      rank = 0;
      seq = 0;
      size = 0;
      span = 0;
    }

let typed_events t = Flight.Buf.to_list t.buf

let length t = Flight.Buf.length t.buf

let events t =
  List.map
    (fun (e : Flight.event) -> (e.time, e.component, Flight.kind_to_string e.kind))
    (typed_events t)

let filter t ~component =
  let acc = ref [] in
  Flight.Buf.iter
    (fun (e : Flight.event) ->
      if String.equal e.component component then
        acc := (e.time, Flight.kind_to_string e.kind) :: !acc)
    t.buf;
  List.rev !acc

let count t ~component ~event =
  let n = ref 0 in
  Flight.Buf.iter
    (fun (e : Flight.event) ->
      if
        String.equal e.component component
        && String.equal (Flight.kind_to_string e.kind) event
      then incr n)
    t.buf;
  !n

(* Times are sorted before scanning (record order among equal
   timestamps is then irrelevant) and ties between equally wide gaps
   resolve to the earliest interval, so duplicate timestamps give a
   deterministic answer. *)
let largest_gap_of_times times =
  match times with
  | [] | [ _ ] -> None
  | _ ->
    let arr = Array.of_list times in
    Array.sort compare arr;
    let best = ref None in
    for i = 1 to Array.length arr - 1 do
      let gap = arr.(i) -. arr.(i - 1) in
      match !best with
      | Some (g, _) when g >= gap -> ()
      | Some _ | None -> best := Some (gap, arr.(i - 1))
    done;
    !best

let largest_gap t ~component ~event =
  let times = ref [] in
  Flight.Buf.iter
    (fun (e : Flight.event) ->
      if
        String.equal e.component component
        && String.equal (Flight.kind_to_string e.kind) event
      then times := e.time :: !times)
    t.buf;
  largest_gap_of_times !times

(* ---------- flight-recorder attachment ---------- *)

let attach t =
  t.attached <- true;
  Flight.set_clock (fun () -> Engine.now t.engine);
  Flight.set_sink (fun e -> Flight.Buf.add t.buf e);
  Flight.set_enabled true

let detach () =
  Flight.set_enabled false;
  Flight.set_sink (fun _ -> ());
  Flight.set_clock (fun () -> 0.)

let is_attached t = t.attached && Flight.enabled ()

(* ---------- periodic probes ---------- *)

let probe t ~name ~period ~until sample =
  if period <= 0. then invalid_arg "Trace.probe: period must be positive";
  let rec tick () =
    if Flight.enabled () then
      Flight.emit ~component:name ~size:(sample ()) (Flight.Custom "probe");
    if Engine.now t.engine +. period <= until then
      ignore (Engine.schedule t.engine ~delay:period tick)
  in
  ignore (Engine.schedule t.engine ~delay:period tick)

(* ---------- JSONL sink ---------- *)

let save_jsonl t path =
  Out_channel.with_open_text path (fun oc ->
      Flight.Buf.iter
        (fun e ->
          Out_channel.output_string oc (Flight.event_to_json e);
          Out_channel.output_char oc '\n')
        t.buf)

let load_jsonl path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | text ->
    let lines = String.split_on_char '\n' text in
    let rec go lineno acc = function
      | [] -> Ok (List.rev acc)
      | line :: rest ->
        if String.trim line = "" then go (lineno + 1) acc rest
        else (
          match Flight.event_of_json line with
          | Ok e -> go (lineno + 1) (e :: acc) rest
          | Error msg -> Error (Printf.sprintf "%s:%d: %s" path lineno msg))
    in
    go 1 [] lines
