type node = { id : int; mutable x : float; mutable y : float }

type radio = {
  local : node;
  remote : node;
  range : float;
  edge_loss : float;
  comp : string;  (* flight-recorder component name *)
  stats : Rina_util.Metrics.t;
  mutable receiver : bytes -> unit;
  mutable watchers : (bool -> unit) list;
  mutable was_up : bool;
  mutable busy_until : float;
}

type t = {
  engine : Engine.t;
  rng : Rina_util.Prng.t;
  bit_rate : float;
  base_delay : float;
  mutable next_id : int;
  mutable radios : radio list;
}

let create engine rng ~bit_rate ~base_delay =
  if bit_rate <= 0. then invalid_arg "Medium.create: bit_rate must be positive";
  if base_delay < 0. then invalid_arg "Medium.create: base_delay must be non-negative";
  { engine; rng; bit_rate; base_delay; next_id = 0; radios = [] }

let add_node t ~x ~y =
  let node = { id = t.next_id; x; y } in
  t.next_id <- t.next_id + 1;
  node

let position node = (node.x, node.y)

let distance a b =
  let dx = a.x -. b.x and dy = a.y -. b.y in
  sqrt ((dx *. dx) +. (dy *. dy))

let radio_up r = distance r.local r.remote <= r.range

let set_position t node ~x ~y =
  node.x <- x;
  node.y <- y;
  let touched r = r.local.id = node.id || r.remote.id = node.id in
  List.iter
    (fun r ->
      if touched r then begin
        let up = radio_up r in
        if up <> r.was_up then begin
          r.was_up <- up;
          List.iter (fun f -> f up) r.watchers
        end
      end)
    t.radios

(* Loss grows quadratically from 0 at zero distance to [edge_loss] at
   the range boundary. *)
let loss_probability r =
  let d = distance r.local r.remote in
  if d > r.range then 1.0
  else begin
    let frac = d /. r.range in
    r.edge_loss *. frac *. frac
  end

(* Find the peer radio (remote's channel back to local) to deliver
   into; channels are registered pairwise by the experiment. *)
let peer_of t r =
  List.find_opt
    (fun other -> other.local.id = r.remote.id && other.remote.id = r.local.id)
    t.radios

(* One recorder lookup per event: fetch with [Flight.cur], guard with
   [Flight.on] inside the helper. *)
let[@inline] flight_drop r reason size =
  let fr = Rina_util.Flight.cur () in
  if Rina_util.Flight.on fr then
    Rina_util.Flight.emit_to fr ~component:r.comp ~size
      (Rina_util.Flight.Pdu_dropped reason)

let transmit t r frame =
  let m = r.stats in
  if not (radio_up r) then begin
    flight_drop r Rina_util.Flight.R_link_down (Bytes.length frame);
    Rina_util.Metrics.incr m "dropped_down"
  end
  else begin
    (let fr = Rina_util.Flight.cur () in
     if Rina_util.Flight.on fr then
       Rina_util.Flight.emit_to fr ~component:r.comp
         ~size:(Bytes.length frame) Rina_util.Flight.Pdu_sent);
    Rina_util.Metrics.incr m "tx";
    Rina_util.Metrics.add m "tx_bytes" (Bytes.length frame);
    let now = Engine.now t.engine in
    let start = Float.max now r.busy_until in
    let ser = float_of_int (8 * Bytes.length frame) /. t.bit_rate in
    r.busy_until <- start +. ser;
    let arrival = start +. ser +. t.base_delay in
    ignore
      (Engine.schedule_at t.engine ~time:arrival (fun () ->
           if not (radio_up r) then begin
             flight_drop r Rina_util.Flight.R_link_down (Bytes.length frame);
             Rina_util.Metrics.incr m "dropped_down"
           end
           else if Rina_util.Prng.bernoulli t.rng (loss_probability r) then begin
             flight_drop r Rina_util.Flight.R_loss (Bytes.length frame);
             Rina_util.Metrics.incr m "dropped_loss"
           end
           else begin
             (let fr = Rina_util.Flight.cur () in
              if Rina_util.Flight.on fr then
                Rina_util.Flight.emit_to fr ~component:r.comp
                  ~size:(Bytes.length frame) Rina_util.Flight.Pdu_recvd);
             Rina_util.Metrics.incr m "rx";
             Rina_util.Metrics.add m "rx_bytes" (Bytes.length frame);
             match peer_of t r with
             | Some peer -> peer.receiver frame
             | None -> r.receiver frame
           end))
  end

let channel t ~local ~remote ~range ?(edge_loss = 0.3) () : Chan.t =
  if range <= 0. then invalid_arg "Medium.channel: range must be positive";
  let r =
    {
      local;
      remote;
      range;
      edge_loss;
      comp = Printf.sprintf "radio.%d-%d" local.id remote.id;
      stats = Rina_util.Metrics.create ();
      receiver = (fun _ -> ());
      watchers = [];
      was_up = false;
      busy_until = 0.;
    }
  in
  r.was_up <- radio_up r;
  t.radios <- r :: t.radios;
  {
    Chan.send = (fun frame -> transmit t r frame);
    set_receiver = (fun f -> r.receiver <- f);
    is_up = (fun () -> radio_up r);
    on_carrier = (fun f -> r.watchers <- f :: r.watchers);
    stats = r.stats;
  }
