(** Timestamped event log backed by the {!Rina_util.Flight} recorder.

    Experiments attach one trace to an engine; instrumented components
    all over the stack then emit typed {!Rina_util.Flight.event}s into
    it, and legacy components record plain (component, event) string
    pairs.  Used to measure e.g. handoff interruption windows (gap
    between consecutive delivery events), to assert event orderings in
    integration tests, and to export JSONL for [rina_trace].

    Events live in an O(1)-append buffer; nothing is recorded through
    the typed path unless {!attach} has been called (tracing is off by
    default and costs one load + one branch per emission site). *)

type t

val create : Engine.t -> t

val attach : t -> unit
(** Turn the flight recorder on and direct it into [t]: installs the
    engine clock as timestamp source, [t]'s buffer as the sink and sets
    [Flight.enabled].  The recorder is domain-global — attaching a
    second trace in the same domain redirects all emission, while each
    parallel-runner worker domain has its own independent recorder. *)

val detach : unit -> unit
(** Turn the flight recorder off and restore the null sink/clock.
    Already-buffered events remain readable. *)

val is_attached : t -> bool

val record : t -> component:string -> event:string -> unit
(** Log a string event from [component] at the current virtual time
    (stored as [Custom event]).  Works without {!attach}, matching the
    pre-flight-recorder behaviour. *)

val probe : t -> name:string -> period:float -> until:float -> (unit -> int) -> unit
(** [probe t ~name ~period ~until sample] schedules a periodic sampler
    on the engine clock: every [period] seconds until [until] it emits
    a [Custom "probe"] event with component [name] and the sampled
    value in the [size] field — but only while the recorder is
    attached.  Used for link queue depth and EFCP window occupancy.
    @raise Invalid_argument if [period <= 0]. *)

val events : t -> (float * string * string) list
(** All events, oldest first, as [(time, component, label)] where the
    label is [Flight.kind_to_string] of the typed kind. *)

val typed_events : t -> Rina_util.Flight.event list
(** All events, oldest first, in full typed form. *)

val length : t -> int

val filter : t -> component:string -> (float * string) list
(** Events of one component, oldest first. *)

val count : t -> component:string -> event:string -> int

val largest_gap : t -> component:string -> event:string -> (float * float) option
(** [largest_gap t ~component ~event] is the widest interval between
    two consecutive occurrences, as [(gap, start_time)]; [None] with
    fewer than two occurrences.  Occurrence times are sorted first and
    ties between equally wide gaps resolve to the earliest interval, so
    duplicate timestamps yield a deterministic answer. *)

val save_jsonl : t -> string -> unit
(** Write every buffered event as one JSON object per line (the format
    [bin/rina_trace] reads). *)

val load_jsonl : string -> (Rina_util.Flight.event list, string) result
(** Parse a file written by {!save_jsonl}; blank lines are skipped. *)
