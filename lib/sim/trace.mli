(** Timestamped event log backed by the {!Rina_util.Flight} recorder.

    Experiments attach one trace to an engine; instrumented components
    all over the stack then emit typed {!Rina_util.Flight.event}s into
    it, and legacy components record plain (component, event) string
    pairs.  Used to measure e.g. handoff interruption windows (gap
    between consecutive delivery events), to assert event orderings in
    integration tests, and to export JSONL for [rina_trace].

    Events live in an O(1)-append buffer; nothing is recorded through
    the typed path unless {!attach} has been called (tracing is off by
    default and costs one load + one branch per emission site). *)

type t

val create : ?ring_capacity:int -> Engine.t -> t
(** [ring_capacity] bounds the event buffer: once full it keeps only
    the newest [ring_capacity] events and counts the overwritten rest
    ([Flight.Buf.dropped]).  Default: unbounded. *)

val attach :
  ?sample_rate:float -> ?telemetry:Rina_util.Telemetry.t -> ?stream:string -> t -> unit
(** Turn the flight recorder on and direct it into [t]: installs the
    engine clock as timestamp source, [t]'s buffer as the sink and sets
    [Flight.enabled].  The recorder is domain-global — attaching a
    second trace in the same domain redirects all emission, while each
    parallel-runner worker domain has its own independent recorder.

    [sample_rate] (default [1.]) enables deterministic head sampling:
    only spans kept by the pure hash (plus landmark events) reach the
    sink; a [Custom "meta:sample_ppm"] marker event records the rate in
    the trace itself.  [telemetry] installs the registry's {!observe}
    as the Flight tap, so exact aggregates accumulate from {e every}
    event regardless of the sample rate.  [stream] redirects the sink
    to a JSONL file, one event per line as it happens, instead of
    buffering — long runs spill to disk; call {!close} to flush.
    @raise Invalid_argument if [sample_rate] is outside (0, 1]. *)

val detach : unit -> unit
(** Turn the flight recorder off and restore the null sink/clock/tap
    and the keep-everything sample rate.  Already-buffered events
    remain readable. *)

val close : t -> unit
(** Flush and close the streaming sink (if any), then {!detach}. *)

val is_attached : t -> bool

val snapshots : t -> interval:float -> until:float -> unit
(** Schedule a periodic live-stats timer on the engine's [Timer] lane
    (the coarse wheel): every [interval] seconds until [until] it
    records a {!Rina_util.Telemetry.snap} interval snapshot and emits a
    [Custom "snapshot"] marker event.
    @raise Invalid_argument if [interval <= 0] or [t] was attached
    without [~telemetry]. *)

val record : t -> component:string -> event:string -> unit
(** Log a string event from [component] at the current virtual time
    (stored as [Custom event]).  Works without {!attach}, matching the
    pre-flight-recorder behaviour. *)

val probe : t -> name:string -> period:float -> until:float -> (unit -> int) -> unit
(** [probe t ~name ~period ~until sample] schedules a periodic sampler
    on the engine clock: every [period] seconds until [until] it emits
    a [Custom "probe"] event with component [name] and the sampled
    value in the [size] field — but only while the recorder is
    attached.  Used for link queue depth and EFCP window occupancy.
    @raise Invalid_argument if [period <= 0]. *)

val events : t -> (float * string * string) list
(** All events, oldest first, as [(time, component, label)] where the
    label is [Flight.kind_to_string] of the typed kind. *)

val typed_events : t -> Rina_util.Flight.event list
(** All events, oldest first, in full typed form. *)

val length : t -> int

val filter : t -> component:string -> (float * string) list
(** Events of one component, oldest first. *)

val count : t -> component:string -> event:string -> int

val largest_gap : t -> component:string -> event:string -> (float * float) option
(** [largest_gap t ~component ~event] is the widest interval between
    two consecutive occurrences, as [(gap, start_time)]; [None] with
    fewer than two occurrences.  Occurrence times are sorted first and
    ties between equally wide gaps resolve to the earliest interval, so
    duplicate timestamps yield a deterministic answer. *)

val save_jsonl : t -> string -> unit
(** Write every buffered event as one JSON object per line (the format
    [bin/rina_trace] reads). *)

val load_jsonl : string -> (Rina_util.Flight.event list, string) result
(** Parse a file written by {!save_jsonl} (or a streaming sink);
    blank lines are skipped.  Streams line by line — peak memory is one
    line plus the result, not the file.  Errors carry [file:line:]. *)

val fold_jsonl :
  string ->
  init:'a ->
  f:('a -> Rina_util.Flight.event -> 'a) ->
  ('a, string) result
(** Streaming fold over a JSONL trace file, one line at a time —
    aggregate a multi-gigabyte spill without materialising it. *)
