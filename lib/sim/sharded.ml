(* Conservative-lookahead parallel simulation of ONE trial.

   The topology is partitioned into shards, each with its own
   {!Engine}; cross-shard links hand frames to the peer shard through
   bounded lock-free SPSC mailboxes instead of scheduling on the peer
   engine directly.  Shards advance in epochs: a shard may run to
   [min over in-neighbours (grant + lookahead)] (classic
   Chandy-Misra-Bryant null-message-free conservative synchronization
   with the lookahead window rina_verify derives from cross-shard
   propagation delays), then publishes its own new grant.

   Determinism contract (the hard part): the merged behaviour must be
   a pure function of the seed — byte-identical whether the shards are
   stepped by 1 domain or N.  Two rules make that true:

   1. Cross-shard arrivals are NEVER pushed through the engine heap at
      drain time (heap insertion sequence numbers would then depend on
      when a mailbox happened to be drained).  They sit in a per-shard
      staging heap keyed (time, source shard id, per-source seq) and
      are interleaved with local events by timestamp, local events
      winning ties.  When a staged arrival is due before every local
      event it is scheduled and stepped immediately — the engine clock
      is strictly below its timestamp, so it cannot be reordered
      against anything already queued.

   2. A frame is enqueued at SEND time carrying its precomputed
      arrival timestamp (serialization finish + propagation delay).
      The sender publishes grant [g] only after executing every local
      event at or before [g], so any frame it sends later departs
      strictly after [g] and arrives strictly after [g + delay >=
      g + lookahead] — the receiver that drains the mailbox after
      reading [g] has every arrival at or below its horizon.

   Mailbox memory model: one producer (the source shard's worker), one
   consumer (the destination shard's worker).  The producer writes the
   slot then [Atomic.set]s head (release); the consumer [Atomic.get]s
   head (acquire) before reading slots, and publishes tail the same
   way for slot reuse.  Every operation carries a {!Rina_util.Race}
   annotation so the domain-race sanitizer can check the protocol. *)

module Flight = Rina_util.Flight
module Metrics = Rina_util.Metrics
module Race = Rina_util.Race

type entry = {
  e_time : float;  (* precomputed arrival timestamp on the peer *)
  e_seq : int;  (* per-source-shard monotone sequence *)
  e_chan : int;  (* receive-slot index on the destination shard *)
  e_frame : bytes;  (* defensive copy: crosses a domain boundary *)
}

type mailbox = {
  mb_src : int;
  mb_dst : int;
  cap : int;
  slots : entry option array;
  head : int Atomic.t;  (* total enqueued; written by the producer only *)
  tail : int Atomic.t;  (* total drained; written by the consumer only *)
  mutable next_seq : int;  (* producer-side: seq of the next enqueue *)
  mutable mb_lookahead : float;  (* min delay over channels riding this box *)
  r_head : Race.sync;
  r_tail : Race.sync;
  r_slots : Race.cell;
}

(* A drained entry staged for delivery, ordered (time, src, seq). *)
type staged = {
  s_time : float;
  s_src : int;
  s_seq : int;
  s_chan : int;
  s_frame : bytes;
}

type rx_chan = {
  mutable rx_recv : bytes -> unit;
  rx_comp : string;
  rx_stats : Metrics.t;  (* receiver-side counters: never shared cross-domain *)
}

type shard = {
  id : int;
  engine : Engine.t;
  mutable inboxes : mailbox list;
  mutable rx : rx_chan array;
  mutable rx_len : int;
  grant : float Atomic.t;  (* all local events <= grant have executed *)
  r_grant : Race.sync;
  mutable heap : staged array;  (* binary min-heap on (s_time, s_src, s_seq) *)
  mutable heap_len : int;
  mutable epochs : int;
  mutable crossed : int;  (* cross-shard frames delivered into this shard *)
}

type t = {
  shards : shard array;
  lookahead : float;
  mailbox_capacity : int;
  boxes : (int * int, mailbox) Hashtbl.t;
  mutable install : int -> unit;
  mutable uninstall : int -> unit;
  mutable parallel : bool;  (* picks the producer's overflow strategy *)
}

let create ?(mailbox_capacity = 8192) ~shards ~lookahead () =
  if shards < 1 then invalid_arg "Sharded.create: need at least one shard";
  if not (lookahead > 0.) then
    invalid_arg
      "Sharded.create: lookahead must be positive (a zero or absent \
       rina_verify lookahead means the partition cannot run in parallel)";
  if mailbox_capacity < 2 then
    invalid_arg "Sharded.create: mailbox_capacity must be at least 2";
  {
    shards =
      Array.init shards (fun id ->
          {
            id;
            engine = Engine.create ();
            inboxes = [];
            rx = [||];
            rx_len = 0;
            grant = Atomic.make 0.;
            r_grant = Race.sync (Printf.sprintf "sharded.grant[%d]" id);
            heap = [||];
            heap_len = 0;
            epochs = 0;
            crossed = 0;
          });
    lookahead;
    mailbox_capacity;
    boxes = Hashtbl.create 16;
    install = (fun _ -> ());
    uninstall = (fun _ -> ());
    parallel = false;
  }

let shard_count t = Array.length t.shards

let lookahead t = t.lookahead

let engine t i = t.shards.(i).engine

let set_context t ~install ~uninstall =
  t.install <- install;
  t.uninstall <- uninstall

let epochs t = Array.fold_left (fun acc sh -> acc + sh.epochs) 0 t.shards

let crossed t = Array.fold_left (fun acc sh -> acc + sh.crossed) 0 t.shards

let granted t =
  Array.fold_left (fun acc sh -> Float.min acc (Atomic.get sh.grant)) infinity
    t.shards

(* ---------- staging heap (time, src, seq) ---------- *)

let staged_lt a b =
  a.s_time < b.s_time
  || a.s_time = b.s_time
     && (a.s_src < b.s_src || (a.s_src = b.s_src && a.s_seq < b.s_seq))

let dummy_staged =
  { s_time = 0.; s_src = 0; s_seq = 0; s_chan = 0; s_frame = Bytes.empty }

let stage sh st =
  if sh.heap_len = Array.length sh.heap then begin
    let ncap = if sh.heap_len = 0 then 16 else 2 * sh.heap_len in
    let na = Array.make ncap dummy_staged in
    Array.blit sh.heap 0 na 0 sh.heap_len;
    sh.heap <- na
  end;
  sh.heap.(sh.heap_len) <- st;
  sh.heap_len <- sh.heap_len + 1;
  let i = ref (sh.heap_len - 1) in
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    staged_lt sh.heap.(!i) sh.heap.(p)
  do
    let p = (!i - 1) / 2 in
    let tmp = sh.heap.(p) in
    sh.heap.(p) <- sh.heap.(!i);
    sh.heap.(!i) <- tmp;
    i := p
  done

let staged_pop sh =
  let top = sh.heap.(0) in
  sh.heap_len <- sh.heap_len - 1;
  sh.heap.(0) <- sh.heap.(sh.heap_len);
  sh.heap.(sh.heap_len) <- dummy_staged;
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let m = ref !i in
    if l < sh.heap_len && staged_lt sh.heap.(l) sh.heap.(!m) then m := l;
    if r < sh.heap_len && staged_lt sh.heap.(r) sh.heap.(!m) then m := r;
    if !m = !i then continue := false
    else begin
      let tmp = sh.heap.(!m) in
      sh.heap.(!m) <- sh.heap.(!i);
      sh.heap.(!i) <- tmp;
      i := !m
    end
  done;
  top

(* ---------- mailboxes ---------- *)

let get_box t ~src ~dst =
  match Hashtbl.find_opt t.boxes (src, dst) with
  | Some mb -> mb
  | None ->
    let mb =
      {
        mb_src = src;
        mb_dst = dst;
        cap = t.mailbox_capacity;
        slots = Array.make t.mailbox_capacity None;
        head = Atomic.make 0;
        tail = Atomic.make 0;
        next_seq = 0;
        mb_lookahead = infinity;
        r_head = Race.sync (Printf.sprintf "sharded.mb[%d->%d].head" src dst);
        r_tail = Race.sync (Printf.sprintf "sharded.mb[%d->%d].tail" src dst);
        r_slots = Race.cell (Printf.sprintf "sharded.mb[%d->%d].slots" src dst);
      }
    in
    Hashtbl.add t.boxes (src, dst) mb;
    let dsh = t.shards.(dst) in
    dsh.inboxes <- dsh.inboxes @ [ mb ];
    mb

(* Consumer side: move everything published so far into the staging
   heap.  Runs only on the destination shard's worker (or inline from
   the producer in single-domain mode, where producer = consumer). *)
let drain sh mb =
  Race.acquire mb.r_head;
  let hd = Atomic.get mb.head in
  let tl = Atomic.get mb.tail in
  if hd > tl then begin
    for i = tl to hd - 1 do
      Race.read mb.r_slots;
      (match mb.slots.(i mod mb.cap) with
      | Some e ->
        Race.write mb.r_slots;
        mb.slots.(i mod mb.cap) <- None;
        stage sh
          {
            s_time = e.e_time;
            s_src = mb.mb_src;
            s_seq = e.e_seq;
            s_chan = e.e_chan;
            s_frame = e.e_frame;
          }
      | None -> assert false)
    done;
    Atomic.set mb.tail hd;
    Race.release mb.r_tail
  end

(* Producer side.  A full ring blocks rather than drops: dropping
   would make behaviour depend on scheduling.  In single-domain mode
   the producer IS the consumer's domain, so it drains the peer
   inline; in parallel mode it spins — the skew bound (neighbour
   grants stay within one lookahead window) keeps the wait finite as
   long as the capacity covers one window's traffic. *)
let rec enqueue t mb e =
  Race.acquire mb.r_tail;
  let tl = Atomic.get mb.tail in
  let hd = Atomic.get mb.head in
  if hd - tl >= mb.cap then begin
    if t.parallel then Domain.cpu_relax ()
    else drain t.shards.(mb.mb_dst) mb;
    enqueue t mb e
  end
  else begin
    Race.write mb.r_slots;
    mb.slots.(hd mod mb.cap) <- Some e;
    Atomic.set mb.head (hd + 1);
    Race.release mb.r_head
  end

(* ---------- cross-shard channels ---------- *)

let deliver sh st =
  let rx = sh.rx.(st.s_chan) in
  let r = Flight.cur () in
  if Flight.on r then
    Flight.emit_to r ~component:rx.rx_comp ~size:(Bytes.length st.s_frame)
      Flight.Pdu_recvd;
  Metrics.incr rx.rx_stats "rx";
  Metrics.add rx.rx_stats "rx_bytes" (Bytes.length st.s_frame);
  sh.crossed <- sh.crossed + 1;
  rx.rx_recv st.s_frame

let add_rx sh ~comp =
  let rxc =
    { rx_recv = (fun _ -> ()); rx_comp = comp; rx_stats = Metrics.create () }
  in
  if sh.rx_len = Array.length sh.rx then begin
    let ncap = if sh.rx_len = 0 then 4 else 2 * sh.rx_len in
    let na = Array.make ncap rxc in
    Array.blit sh.rx 0 na 0 sh.rx_len;
    sh.rx <- na
  end;
  sh.rx.(sh.rx_len) <- rxc;
  sh.rx_len <- sh.rx_len + 1;
  sh.rx_len - 1

(* One direction of a cross-shard link: sender-side admission +
   serialization exactly like {!Link.transmit} (queue drop-tail, busy
   line, ser = 8*len/rate), but the post-serialization frame goes into
   the peer mailbox with its arrival timestamp instead of onto a peer
   engine.  No loss/mangle/carrier model here — cross-shard links are
   the trust boundary of the decomposition and stay ideal; put lossy
   links inside a shard. *)
let direction t ~src ~dst ~bit_rate ~delay ~queue_capacity ~comp =
  let mb = get_box t ~src ~dst in
  if delay < mb.mb_lookahead then mb.mb_lookahead <- delay;
  let src_sh = t.shards.(src) in
  let chan = add_rx t.shards.(dst) ~comp in
  let stats = Metrics.create () in
  let busy_until = ref 0. and queued = ref 0 in
  let send frame =
    if !queued >= queue_capacity then begin
      let r = Flight.cur () in
      if Flight.on r then
        Flight.emit_to r ~component:comp ~size:(Bytes.length frame)
          (Flight.Pdu_dropped Flight.R_queue_full);
      Metrics.incr stats "dropped_queue"
    end
    else begin
      let r = Flight.cur () in
      if Flight.on r then
        Flight.emit_to r ~component:comp ~size:(Bytes.length frame)
          Flight.Pdu_sent;
      Metrics.incr stats "tx";
      Metrics.add stats "tx_bytes" (Bytes.length frame);
      incr queued;
      let now = Engine.now src_sh.engine in
      let start = Float.max now !busy_until in
      let ser = float_of_int (8 * Bytes.length frame) /. bit_rate in
      let finish = start +. ser in
      busy_until := finish;
      ignore
        (Engine.schedule_at src_sh.engine ~time:finish (fun () -> decr queued));
      let seq = mb.next_seq in
      mb.next_seq <- seq + 1;
      enqueue t mb
        {
          e_time = finish +. delay;
          e_seq = seq;
          e_chan = chan;
          e_frame = Bytes.copy frame;
        }
    end
  in
  (send, stats, chan)

let cross_link t ?(queue_capacity = 64) ?(label = "xlink") ~src ~dst ~bit_rate
    ~delay () =
  let n = Array.length t.shards in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Sharded.cross_link: shard index out of range";
  if src = dst then
    invalid_arg "Sharded.cross_link: endpoints on the same shard (use Link)";
  if bit_rate <= 0. then
    invalid_arg "Sharded.cross_link: bit_rate must be positive";
  if queue_capacity <= 0 then
    invalid_arg "Sharded.cross_link: queue_capacity must be positive";
  if delay < t.lookahead then
    invalid_arg
      (Printf.sprintf
         "Sharded.cross_link: delay %g below the lookahead window %g — the \
          conservative horizon would admit late arrivals"
         delay t.lookahead);
  let send_f, stats_f, chan_f =
    direction t ~src ~dst ~bit_rate ~delay ~queue_capacity
      ~comp:(label ^ ".ab")
  in
  let send_b, stats_b, chan_b =
    direction t ~src:dst ~dst:src ~bit_rate ~delay ~queue_capacity
      ~comp:(label ^ ".ba")
  in
  (* Endpoint A transmits forward and receives from the backward slot
     (which lives on A's own shard); mirror for B — same layout as
     {!Link.endpoint_a}/[endpoint_b]. *)
  let ep_a : Chan.t =
    {
      Chan.send = send_f;
      set_receiver = (fun f -> t.shards.(src).rx.(chan_b).rx_recv <- f);
      is_up = (fun () -> true);
      on_carrier = (fun _ -> ());
      stats = stats_f;
    }
  in
  let ep_b : Chan.t =
    {
      Chan.send = send_b;
      set_receiver = (fun f -> t.shards.(dst).rx.(chan_f).rx_recv <- f);
      is_up = (fun () -> true);
      on_carrier = (fun _ -> ());
      stats = stats_b;
    }
  in
  (ep_a, ep_b)

(* ---------- the epoch loop ---------- *)

(* Run one shard up to [horizon]: interleave the engine heap with the
   staging heap by timestamp; local events win ties so the engine's own
   (time, insertion-seq) order is untouched.  A staged arrival due
   strictly before every local event is scheduled at its timestamp and
   stepped immediately — the clock is strictly below it, so the
   freshly pushed handle is the unique heap minimum. *)
let run_epoch sh ~horizon =
  let continue = ref true in
  while !continue do
    let nl =
      match Engine.next_time sh.engine with Some x -> x | None -> infinity
    in
    let nr = if sh.heap_len = 0 then infinity else sh.heap.(0).s_time in
    if Float.min nl nr > horizon then continue := false
    else if nl <= nr then ignore (Engine.step sh.engine)
    else begin
      let st = staged_pop sh in
      ignore
        (Engine.schedule_at sh.engine ~time:st.s_time (fun () ->
             deliver sh st));
      ignore (Engine.step sh.engine)
    end
  done

(* One attempt to advance a shard.  Order matters for conservativeness:
   read neighbour grants FIRST (acquire), then drain — every frame sent
   at or before a grant we read is already published when we drain. *)
let visit t sh ~until =
  let already = Atomic.get sh.grant in
  if already >= until then false
  else begin
    let horizon =
      List.fold_left
        (fun acc mb ->
          let src = t.shards.(mb.mb_src) in
          Race.acquire src.r_grant;
          Float.min acc (Atomic.get src.grant +. mb.mb_lookahead))
        until sh.inboxes
    in
    if horizon <= already then false
    else begin
      List.iter (fun mb -> drain sh mb) sh.inboxes;
      t.install sh.id;
      run_epoch sh ~horizon;
      t.uninstall sh.id;
      sh.epochs <- sh.epochs + 1;
      Atomic.set sh.grant horizon;
      Race.release sh.r_grant;
      true
    end
  end

let run_worker t ~until mine =
  let finished sh = Atomic.get sh.grant >= until in
  (* Fruitless rounds first spin (cheap when a peer is about to grant
     on another core), then sleep: on an oversubscribed host a spinning
     worker would otherwise burn its whole OS timeslice before the
     productive domain gets the core back. *)
  let stalled = ref 0 in
  let rec go () =
    if not (List.for_all finished mine) then begin
      let progressed =
        List.fold_left
          (fun acc sh -> if visit t sh ~until then true else acc)
          false mine
      in
      if progressed then stalled := 0
      else begin
        incr stalled;
        if !stalled < 64 then Domain.cpu_relax ()
        else ignore (Unix.sleepf 0.0002)
      end;
      go ()
    end
  in
  go ()

let run ?(domains = 1) t ~until =
  let n = Array.length t.shards in
  let d = max 1 (min domains n) in
  let owned w =
    List.filter (fun sh -> sh.id mod d = w) (Array.to_list t.shards)
  in
  if d = 1 then begin
    t.parallel <- false;
    run_worker t ~until (owned 0)
  end
  else begin
    t.parallel <- true;
    let armed = Race.armed () in
    let spawned =
      List.init (d - 1) (fun i ->
          let w = i + 1 in
          let h = if armed then Some (Race.fork ()) else None in
          let dom =
            Domain.spawn (fun () ->
                (match h with Some h -> Race.child_begin h | None -> ());
                run_worker t ~until (owned w);
                match h with Some h -> Race.child_end h | None -> ())
          in
          (h, dom))
    in
    run_worker t ~until (owned 0);
    List.iter
      (fun (h, dom) ->
        Domain.join dom;
        match h with Some h -> Race.join h | None -> ())
      spawned;
    t.parallel <- false
  end;
  (* Deterministic epilogue: every event at or before [until] has run
     (the final horizon is exactly [until]), so this only settles each
     clock to [until] — same as a sequential [Engine.run ~until]. *)
  Array.iter (fun sh -> Engine.run ~until sh.engine) t.shards
