(* Adversarial frame mangling: the in-channel counterpart of Loss.
   Where Loss only removes frames, Mangle perturbs them — a bit flip,
   a duplicate copy, a latency spike, or a bounded reordering — while
   keeping the schedule fully deterministic: every draw comes from the
   link half's seeded Prng, in a fixed order per frame, so a replayed
   run mangles the same frames the same way. *)

type t = {
  corrupt : float;
  duplicate : float;
  dup_delay : float;
  reorder : float;
  max_displacement : int;
  delay_spike : float;
  spike : float;
  max_hold : float;
}

let none =
  {
    corrupt = 0.;
    duplicate = 0.;
    dup_delay = 0.001;
    reorder = 0.;
    max_displacement = 4;
    delay_spike = 0.;
    spike = 0.01;
    max_hold = 0.05;
  }

let make ?(corrupt = 0.) ?(duplicate = 0.) ?(dup_delay = 0.001) ?(reorder = 0.)
    ?(max_displacement = 4) ?(delay_spike = 0.) ?(spike = 0.01)
    ?(max_hold = 0.05) () =
  let check_p name p =
    if not (Float.is_finite p) || p < 0. || p > 1. then
      invalid_arg (Printf.sprintf "Mangle.make: %s must be in [0, 1]" name)
  in
  let check_pos name v =
    if not (Float.is_finite v) || v <= 0. then
      invalid_arg (Printf.sprintf "Mangle.make: %s must be positive" name)
  in
  check_p "corrupt" corrupt;
  check_p "duplicate" duplicate;
  check_p "reorder" reorder;
  check_p "delay_spike" delay_spike;
  check_pos "dup_delay" dup_delay;
  check_pos "spike" spike;
  check_pos "max_hold" max_hold;
  if max_displacement <= 0 then
    invalid_arg "Mangle.make: max_displacement must be positive";
  {
    corrupt;
    duplicate;
    dup_delay;
    reorder;
    max_displacement;
    delay_spike;
    spike;
    max_hold;
  }

let is_none m =
  m.corrupt = 0. && m.duplicate = 0. && m.reorder = 0. && m.delay_spike = 0.

(* Spec/state split mirrors Loss: today the mangler is memoryless, but
   the state record gives burst models somewhere to live without
   another Link surgery. *)
type state = { spec : t }

let make_state spec = { spec }

let model s = s.spec

type decision = {
  corrupt_bit : int;  (* -1 = leave the frame alone *)
  dup : bool;
  spike_by : float;  (* 0. = no spike *)
  displacement : int;  (* 0 = deliver in order *)
}

let clean = { corrupt_bit = -1; dup = false; spike_by = 0.; displacement = 0 }

let decide s rng ~frame_bits =
  let m = s.spec in
  if is_none m then clean
  else begin
    (* Fixed draw order — corrupt, duplicate, spike, reorder — so the
       stream of Prng values consumed per frame is schedule-independent
       and replays are exact. *)
    let corrupt_bit =
      if m.corrupt > 0. && Rina_util.Prng.bernoulli rng m.corrupt then
        Rina_util.Prng.int rng (max 1 frame_bits)
      else -1
    in
    let dup = m.duplicate > 0. && Rina_util.Prng.bernoulli rng m.duplicate in
    let spike_by =
      if m.delay_spike > 0. && Rina_util.Prng.bernoulli rng m.delay_spike then
        m.spike
      else 0.
    in
    let displacement =
      if m.reorder > 0. && Rina_util.Prng.bernoulli rng m.reorder then
        1 + Rina_util.Prng.int rng m.max_displacement
      else 0
    in
    { corrupt_bit; dup; spike_by; displacement }
  end

let flip_bit frame bit =
  let len = Bytes.length frame in
  if len = 0 then frame
  else begin
    let copy = Bytes.copy frame in
    let bit = bit mod (8 * len) in
    let byte = bit / 8 and mask = 1 lsl (bit mod 8) in
    Bytes.unsafe_set copy byte
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get copy byte) lxor mask));
    copy
  end

let pp fmt m =
  if is_none m then Format.fprintf fmt "no-mangle"
  else
    Format.fprintf fmt
      "mangle(corrupt=%.3f dup=%.3f reorder=%.3f disp<=%d spike=%.3f@%.3fs)"
      m.corrupt m.duplicate m.reorder m.max_displacement m.delay_spike m.spike
