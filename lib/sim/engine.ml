(* The event loop is the hottest code in the repository, so it avoids
   boxing on every path: the heap is read through
   top_key/top_value/drop_min (no option/tuple per event), cancelled
   timers are compacted lazily instead of being popped one by one, and
   periodic timer classes (RTOs, keepalives, hellos — timers that are
   usually cancelled or rescheduled) can opt into a coarse timer wheel
   that parks them outside the heap entirely.

   Determinism contract: events fire in (time, insertion-seq) order.
   Wheel entries reserve their heap sequence number at schedule time
   and are flushed into the heap before any pop of an equal-or-later
   key, so the global order is exactly what a heap-only engine would
   produce; the wheel only changes where cancelled entries die (in
   bulk, at slot flush or compaction, instead of one pop each). *)

type lane = Default | Timer

type handle = {
  mutable cancelled : bool;
  mutable resident : bool;
  action : unit -> unit;
  owner : t;
}

(* A wheel slot is a parallel-array bag (unboxed times, seqs, handles):
   parking a timer allocates nothing beyond amortised growth. *)
and wslot = {
  mutable wtimes : floatarray;
  mutable wseqs : int array;
  mutable whandles : handle array;
  mutable wlen : int;
}

and t = {
  mutable clock : float;
  queue : handle Rina_util.Heap.t;
  mutable executed : int;
  mutable cancelled_resident : int;
  wheel : wslot array;
  mutable wheel_count : int;
  mutable wheel_min_slot : int;
}

let wheel_slots = 256

let wheel_mask = wheel_slots - 1

(* 50 ms buckets x 256 slots = a 12.8 s horizon: covers RTOs (max 8 s),
   keepalives and hellos (1 s).  Rarer long timers fall back to the
   heap; granularity affects only bucketing, never firing times. *)
let wheel_granularity = 0.05

let slot_of time = int_of_float (time /. wheel_granularity)

let create () =
  {
    clock = 0.;
    queue = Rina_util.Heap.create ();
    executed = 0;
    cancelled_resident = 0;
    wheel =
      Array.init wheel_slots (fun _ ->
          { wtimes = Float.Array.create 0; wseqs = [||]; whandles = [||]; wlen = 0 });
    wheel_count = 0;
    wheel_min_slot = 0;
  }

let now t = t.clock

let executed t = t.executed

let add_wheel t s time h =
  let seq = Rina_util.Heap.reserve_seq t.queue in
  let sl = t.wheel.(s land wheel_mask) in
  let cap = Array.length sl.whandles in
  if sl.wlen = cap then begin
    let ncap = if cap = 0 then 8 else 2 * cap in
    let wtimes = Float.Array.create ncap in
    Float.Array.blit sl.wtimes 0 wtimes 0 sl.wlen;
    let wseqs = Array.make ncap 0 in
    Array.blit sl.wseqs 0 wseqs 0 sl.wlen;
    let whandles = Array.make ncap h in
    Array.blit sl.whandles 0 whandles 0 sl.wlen;
    sl.wtimes <- wtimes;
    sl.wseqs <- wseqs;
    sl.whandles <- whandles
  end;
  Float.Array.set sl.wtimes sl.wlen time;
  sl.wseqs.(sl.wlen) <- seq;
  sl.whandles.(sl.wlen) <- h;
  sl.wlen <- sl.wlen + 1;
  if t.wheel_count = 0 || s < t.wheel_min_slot then t.wheel_min_slot <- s;
  t.wheel_count <- t.wheel_count + 1

let schedule_at ?(lane = Default) t ~time f =
  let time = if time < t.clock then t.clock else time in
  let h = { cancelled = false; resident = true; action = f; owner = t } in
  (match lane with
  | Timer when time > t.clock ->
    let s = slot_of time in
    if s - slot_of t.clock < wheel_slots then add_wheel t s time h
    else Rina_util.Heap.push t.queue time h
  | Default | Timer -> Rina_util.Heap.push t.queue time h);
  let r = Rina_util.Flight.cur () in
  if Rina_util.Flight.on r then
    Rina_util.Flight.emit_to r ~component:"engine" Rina_util.Flight.Timer_set;
  h

let schedule ?lane t ~delay f =
  let delay = if delay < 0. then 0. else delay in
  schedule_at ?lane t ~time:(t.clock +. delay) f

let pending t = Rina_util.Heap.length t.queue + t.wheel_count

(* Drop cancelled entries wholesale: filter the heap in place (O(n),
   seq numbers preserved so FIFO ties are unchanged) and purge the
   wheel slots. *)
let reap t =
  ignore
    (Rina_util.Heap.compact t.queue ~keep:(fun h ->
         if h.cancelled then begin
           h.resident <- false;
           false
         end
         else true));
  if t.wheel_count > 0 then
    for idx = 0 to wheel_slots - 1 do
      let sl = t.wheel.(idx) in
      if sl.wlen > 0 then begin
        let kept = ref 0 in
        for i = 0 to sl.wlen - 1 do
          let h = sl.whandles.(i) in
          if h.cancelled then begin
            h.resident <- false;
            t.wheel_count <- t.wheel_count - 1
          end
          else begin
            if !kept <> i then begin
              Float.Array.set sl.wtimes !kept (Float.Array.get sl.wtimes i);
              sl.wseqs.(!kept) <- sl.wseqs.(i);
              sl.whandles.(!kept) <- sl.whandles.(i)
            end;
            incr kept
          end
        done;
        sl.wlen <- !kept
      end
    done;
  t.cancelled_resident <- 0

let cancel h =
  if h.resident && not h.cancelled then begin
    h.cancelled <- true;
    let t = h.owner in
    t.cancelled_resident <- t.cancelled_resident + 1;
    if
      t.cancelled_resident >= 64
      && 2 * t.cancelled_resident
         > Rina_util.Heap.length t.queue + t.wheel_count
    then reap t
  end
  else h.cancelled <- true

(* Move one slot's entries into the heap with their reserved sequence
   numbers; cancelled ones die here without ever touching the heap. *)
let flush_slot t s =
  let sl = t.wheel.(s land wheel_mask) in
  for i = 0 to sl.wlen - 1 do
    let h = sl.whandles.(i) in
    t.wheel_count <- t.wheel_count - 1;
    if h.cancelled then begin
      h.resident <- false;
      t.cancelled_resident <- t.cancelled_resident - 1
    end
    else
      Rina_util.Heap.push_with_seq t.queue
        ~key:(Float.Array.get sl.wtimes i)
        ~seq:sl.wseqs.(i) h
  done;
  sl.wlen <- 0

(* Advance to the first nonempty slot (cycling the index space is fine:
   a stale [wheel_min_slot] can only understate a slot's start time,
   which flushes entries early — harmless for ordering, since they are
   pushed with their true key and reserved seq). *)
let first_nonempty_slot t =
  let s = ref t.wheel_min_slot in
  while t.wheel.(!s land wheel_mask).wlen = 0 do
    incr s
  done;
  t.wheel_min_slot <- !s;
  !s

(* Before any pop: every slot whose start is <= the heap's next key
   must already be in the heap, or ordering could invert. *)
let rec flush_due t =
  if t.wheel_count > 0 then begin
    let s = first_nonempty_slot t in
    let start = float_of_int s *. wheel_granularity in
    if
      Rina_util.Heap.is_empty t.queue
      || start <= Rina_util.Heap.top_key t.queue
    then begin
      flush_slot t s;
      flush_due t
    end
  end

(* Flush every slot starting at or before [limit] — used by [run
   ~until] so the stop-time peek sees wheel events too. *)
let rec flush_until t limit =
  if t.wheel_count > 0 then begin
    let s = first_nonempty_slot t in
    if float_of_int s *. wheel_granularity <= limit then begin
      flush_slot t s;
      flush_until t limit
    end
  end

(* Peek without popping: the sharded driver interleaves this heap with
   staged cross-shard arrivals and needs the next local key to decide
   which side fires first.  Flushing due wheel slots here keeps the
   answer exactly what [step] would pop. *)
let next_time t =
  flush_due t;
  if Rina_util.Heap.is_empty t.queue then None
  else Some (Rina_util.Heap.top_key t.queue)

let step t =
  flush_due t;
  if Rina_util.Heap.is_empty t.queue then false
  else begin
    let time = Rina_util.Heap.top_key t.queue in
    let h = Rina_util.Heap.top_value t.queue in
    Rina_util.Heap.drop_min t.queue;
    if Rina_util.Invariant.enabled () then begin
      if time < t.clock then
        Rina_util.Invariant.record ~code:"SAN_CLOCK"
          (Printf.sprintf "event at t=%g popped with clock already at %g" time
             t.clock);
      if
        (not (Rina_util.Heap.is_empty t.queue))
        && Rina_util.Heap.top_key t.queue < time
      then
        Rina_util.Invariant.record ~code:"SAN_HEAP"
          (Printf.sprintf "heap order broken: popped t=%g but t=%g still queued"
             time
             (Rina_util.Heap.top_key t.queue))
    end;
    t.clock <- time;
    t.executed <- t.executed + 1;
    h.resident <- false;
    if h.cancelled then t.cancelled_resident <- t.cancelled_resident - 1
    else begin
      let r = Rina_util.Flight.cur () in
      if Rina_util.Flight.on r then
        Rina_util.Flight.emit_to r ~component:"engine"
          Rina_util.Flight.Timer_fired;
      h.action ()
    end;
    true
  end

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some stop ->
    let continue = ref true in
    while !continue do
      flush_until t stop;
      if
        (not (Rina_util.Heap.is_empty t.queue))
        && Rina_util.Heap.top_key t.queue <= stop
      then ignore (step t)
      else begin
        t.clock <- Float.max t.clock stop;
        continue := false
      end
    done
