type handle = { mutable cancelled : bool; action : unit -> unit }

type t = { mutable clock : float; queue : handle Rina_util.Heap.t }

let create () = { clock = 0.; queue = Rina_util.Heap.create () }

let now t = t.clock

let schedule_at t ~time f =
  let time = if time < t.clock then t.clock else time in
  let h = { cancelled = false; action = f } in
  Rina_util.Heap.push t.queue time h;
  if !Rina_util.Flight.enabled then
    Rina_util.Flight.emit ~component:"engine" Rina_util.Flight.Timer_set;
  h

let schedule t ~delay f =
  let delay = if delay < 0. then 0. else delay in
  schedule_at t ~time:(t.clock +. delay) f

let cancel h = h.cancelled <- true

let pending t = Rina_util.Heap.length t.queue

let step t =
  match Rina_util.Heap.pop t.queue with
  | None -> false
  | Some (time, h) ->
    if !Rina_util.Invariant.enabled then begin
      if time < t.clock then
        Rina_util.Invariant.record ~code:"SAN_CLOCK"
          (Printf.sprintf "event at t=%g popped with clock already at %g" time
             t.clock);
      match Rina_util.Heap.peek t.queue with
      | Some (succ, _) when succ < time ->
        Rina_util.Invariant.record ~code:"SAN_HEAP"
          (Printf.sprintf "heap order broken: popped t=%g but t=%g still queued"
             time succ)
      | Some _ | None -> ()
    end;
    t.clock <- time;
    if not h.cancelled then begin
      if !Rina_util.Flight.enabled then
        Rina_util.Flight.emit ~component:"engine" Rina_util.Flight.Timer_fired;
      h.action ()
    end;
    true

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some stop ->
    let continue = ref true in
    while !continue do
      match Rina_util.Heap.peek t.queue with
      | Some (time, _) when time <= stop -> ignore (step t)
      | Some _ | None ->
        t.clock <- Float.max t.clock stop;
        continue := false
    done
