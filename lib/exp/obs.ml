(* Policy-driven observability wiring: one call turns a policy's
   [telemetry] section into an attached trace (sampled, ring-bounded or
   streaming) plus a live telemetry registry and its snapshot timer.
   Lives in rina_exp because policy is a rina_core concern and the
   recorder plumbing is rina_util/rina_sim — this is the layer that
   sees both. *)

module Engine = Rina_sim.Engine
module Trace = Rina_sim.Trace
module Telemetry = Rina_util.Telemetry
module Policy = Rina_core.Policy

type t = {
  engine : Engine.t;
  trace : Trace.t;
  telemetry : Telemetry.t;
  config : Policy.telemetry;
}

let start ?(policy = Policy.default) ?stream engine =
  let cfg = policy.Policy.telemetry in
  if not (cfg.Policy.trace_sample_rate > 0. && cfg.Policy.trace_sample_rate <= 1.)
  then
    invalid_arg
      (Printf.sprintf "Obs.start: trace_sample_rate %g is outside (0, 1]"
         cfg.Policy.trace_sample_rate);
  if cfg.Policy.flight_ring_capacity < 0 then
    invalid_arg "Obs.start: negative flight_ring_capacity";
  let ring =
    if cfg.Policy.flight_ring_capacity > 0 then
      Some cfg.Policy.flight_ring_capacity
    else None
  in
  let trace = Trace.create ?ring_capacity:ring engine in
  let telemetry =
    match Telemetry.current () with
    | Some tele -> tele  (* inside a Par shard: aggregate into it *)
    | None -> Telemetry.create ()
  in
  Trace.attach ~sample_rate:cfg.Policy.trace_sample_rate ~telemetry ?stream trace;
  { engine; trace; telemetry; config = cfg }

let snapshots t ~until =
  if t.config.Policy.snapshot_interval > 0. then
    Trace.snapshots t.trace ~interval:t.config.Policy.snapshot_interval ~until

let write_stats t path =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Telemetry.to_jsonl t.telemetry))

let stop t = Trace.close t.trace
