(* Policy-driven observability wiring: one call turns a policy's
   [telemetry] section into an attached trace (sampled, ring-bounded or
   streaming) plus a live telemetry registry and its snapshot timer.
   Lives in rina_exp because policy is a rina_core concern and the
   recorder plumbing is rina_util/rina_sim — this is the layer that
   sees both. *)

module Engine = Rina_sim.Engine
module Trace = Rina_sim.Trace
module Telemetry = Rina_util.Telemetry
module Policy = Rina_core.Policy

type t = {
  engine : Engine.t;
  trace : Trace.t;
  telemetry : Telemetry.t;
  config : Policy.telemetry;
}

let start ?(policy = Policy.default) ?stream engine =
  let cfg = policy.Policy.telemetry in
  if not (cfg.Policy.trace_sample_rate > 0. && cfg.Policy.trace_sample_rate <= 1.)
  then
    invalid_arg
      (Printf.sprintf "Obs.start: trace_sample_rate %g is outside (0, 1]"
         cfg.Policy.trace_sample_rate);
  if cfg.Policy.flight_ring_capacity < 0 then
    invalid_arg "Obs.start: negative flight_ring_capacity";
  let ring =
    if cfg.Policy.flight_ring_capacity > 0 then
      Some cfg.Policy.flight_ring_capacity
    else None
  in
  let trace = Trace.create ?ring_capacity:ring engine in
  let telemetry =
    match Telemetry.current () with
    | Some tele -> tele  (* inside a Par shard: aggregate into it *)
    | None -> Telemetry.create ()
  in
  Trace.attach ~sample_rate:cfg.Policy.trace_sample_rate ~telemetry ?stream trace;
  { engine; trace; telemetry; config = cfg }

let snapshots t ~until =
  if t.config.Policy.snapshot_interval > 0. then
    Trace.snapshots t.trace ~interval:t.config.Policy.snapshot_interval ~until

let write_stats t path =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Telemetry.to_jsonl t.telemetry))

let stop t = Trace.close t.trace

(* ---------- sharded observability ----------

   Recorder and telemetry state is domain-local, and in a sharded run
   one domain may step several shards — so each shard owns a private
   Flight buffer + Telemetry registry that the Sharded context hooks
   swap in around every epoch.  The merge back to one trace/registry
   is order-fixed: events by (time, shard id, per-shard emission
   index), registries in shard-id order — both pure functions of the
   per-shard streams, which the determinism contract already fixes, so
   the merged exports are byte-identical for any domain count. *)

module Sharded = Rina_sim.Sharded
module Flight = Rina_util.Flight

type shard_obs = {
  so_buf : Flight.Buf.t;
  so_tele : Telemetry.t;
  so_engine : Engine.t;
}

type sharded = {
  s_sh : Sharded.t;
  s_obs : shard_obs array;
  s_config : Policy.telemetry;
}

let start_sharded ?(policy = Policy.default) sh =
  let cfg = policy.Policy.telemetry in
  if not (cfg.Policy.trace_sample_rate > 0. && cfg.Policy.trace_sample_rate <= 1.)
  then
    invalid_arg
      (Printf.sprintf "Obs.start_sharded: trace_sample_rate %g is outside (0, 1]"
         cfg.Policy.trace_sample_rate);
  if cfg.Policy.flight_ring_capacity < 0 then
    invalid_arg "Obs.start_sharded: negative flight_ring_capacity";
  let capacity =
    if cfg.Policy.flight_ring_capacity > 0 then
      Some cfg.Policy.flight_ring_capacity
    else None
  in
  let s_obs =
    Array.init (Sharded.shard_count sh) (fun i ->
        {
          so_buf = Flight.Buf.create ?capacity ();
          so_tele = Telemetry.create ();
          so_engine = Sharded.engine sh i;
        })
  in
  Sharded.set_context sh
    ~install:(fun i ->
      let so = s_obs.(i) in
      Flight.set_clock (fun () -> Engine.now so.so_engine);
      Flight.set_sink (Flight.Buf.add so.so_buf);
      Flight.set_sample_rate cfg.Policy.trace_sample_rate;
      Telemetry.install so.so_tele;
      Flight.set_enabled true)
    ~uninstall:(fun _ ->
      Flight.set_enabled false;
      Telemetry.uninstall ());
  { s_sh = sh; s_obs; s_config = cfg }

let sharded_events t =
  let all = ref [] in
  Array.iteri
    (fun sidx so ->
      let i = ref 0 in
      Flight.Buf.iter
        (fun e ->
          all := (e.Flight.time, sidx, !i, e) :: !all;
          incr i)
        so.so_buf)
    t.s_obs;
  let cmp (t1, s1, i1, _) (t2, s2, i2, _) =
    match Float.compare t1 t2 with
    | 0 -> ( match compare s1 s2 with 0 -> compare i1 i2 | c -> c)
    | c -> c
  in
  List.map (fun (_, _, _, e) -> e) (List.sort cmp !all)

let sharded_events_jsonl t =
  String.concat ""
    (List.map (fun e -> Flight.event_to_json e ^ "\n") (sharded_events t))

let sharded_telemetry t =
  let merged = Telemetry.create () in
  Array.iter (fun so -> Telemetry.merge_into ~into:merged so.so_tele) t.s_obs;
  merged

let sharded_stats_jsonl t = Telemetry.to_jsonl (sharded_telemetry t)

let stop_sharded t =
  Sharded.set_context t.s_sh ~install:(fun _ -> ()) ~uninstall:(fun _ -> ())
