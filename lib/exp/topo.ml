module Engine = Rina_sim.Engine
module Link = Rina_sim.Link
module Dif = Rina_core.Dif
module Ipcp = Rina_core.Ipcp

type rina_net = {
  engine : Engine.t;
  rng : Rina_util.Prng.t;
  dif : Dif.t;
  nodes : Ipcp.t array;
  links : Link.t array;
  edges : (int * int) array;
}

let wait engine d = Engine.run ~until:(Engine.now engine +. d) engine

let connect_pair net ?rate a b ~bit_rate ~delay ~loss =
  let link =
    Link.create net.engine net.rng ~bit_rate ~delay ~loss ()
  in
  Dif.connect net.dif ?rate_a:rate ?rate_b:rate net.nodes.(a) net.nodes.(b)
    (Link.endpoint_a link, Link.endpoint_b link);
  link

let make_net ?(seed = 7) ?policy ~n () =
  let engine = Engine.create () in
  let rng = Rina_util.Prng.create seed in
  let dif = Dif.create engine ?policy "net" in
  let nodes =
    Array.init n (fun i -> Dif.add_member dif ~name:(Printf.sprintf "n%d" i) ())
  in
  { engine; rng; dif; nodes; links = [||]; edges = [||] }

let line ?seed ?policy ?(bit_rate = 10_000_000.) ?(delay = 0.002)
    ?(loss = Rina_sim.Loss.No_loss) ?(rate_limited = false) ~n () =
  if n < 2 then invalid_arg "Topo.line: need at least 2 nodes";
  let net = make_net ?seed ?policy ~n () in
  let rate = if rate_limited then Some bit_rate else None in
  let links =
    Array.init (n - 1) (fun i ->
        connect_pair net ?rate i (i + 1) ~bit_rate ~delay ~loss)
  in
  let net = { net with links; edges = Array.init (n - 1) (fun i -> (i, i + 1)) } in
  Dif.run_until_converged net.dif ();
  net

let star ?seed ?policy ?(bit_rate = 10_000_000.) ?(delay = 0.002)
    ?(loss = Rina_sim.Loss.No_loss) ?(rate_limited = false) ~leaves () =
  if leaves < 1 then invalid_arg "Topo.star: need at least 1 leaf";
  let net = make_net ?seed ?policy ~n:(leaves + 1) () in
  let rate = if rate_limited then Some bit_rate else None in
  let links =
    Array.init leaves (fun i ->
        connect_pair net ?rate 0 (i + 1) ~bit_rate ~delay ~loss)
  in
  let net = { net with links; edges = Array.init leaves (fun i -> (0, i + 1)) } in
  Dif.run_until_converged net.dif ();
  net

let random_graph ?seed ?policy ?(bit_rate = 10_000_000.) ?(delay = 0.002) ~n
    ~degree () =
  if n < 2 then invalid_arg "Topo.random_graph: need at least 2 nodes";
  let net = make_net ?seed ?policy ~n () in
  let edges = ref [] in
  (* Spanning chain guarantees connectivity. *)
  for i = 0 to n - 2 do
    edges := (i, i + 1) :: !edges
  done;
  let have a b = List.mem (a, b) !edges || List.mem (b, a) !edges in
  let target = max (n - 1) (n * degree / 2) in
  let guard = ref 0 in
  while List.length !edges < target && !guard < 20 * n * degree do
    incr guard;
    let a = Rina_util.Prng.int net.rng n and b = Rina_util.Prng.int net.rng n in
    if a <> b && not (have a b) then edges := (a, b) :: !edges
  done;
  let links =
    Array.of_list
      (List.map
         (fun (a, b) ->
           connect_pair net a b ~bit_rate ~delay ~loss:Rina_sim.Loss.No_loss)
         !edges)
  in
  let net = { net with links; edges = Array.of_list !edges } in
  Dif.run_until_converged net.dif ~max_time:(30. +. (2. *. float_of_int n)) ();
  net

(* ---------- TCP/IP topologies ---------- *)

type ip_net = {
  ip_engine : Engine.t;
  ip_rng : Rina_util.Prng.t;
  hosts : Tcpip.Node.t array;
  routers : Tcpip.Node.t array;
  ip_links : Link.t array;
}

let ip_line ?(seed = 7) ?(bit_rate = 10_000_000.) ?(delay = 0.002)
    ?(loss = Rina_sim.Loss.No_loss) ?(dv_period = 5.0) ~routers:k () =
  let engine = Engine.create () in
  let rng = Rina_util.Prng.create seed in
  let host_a = Tcpip.Node.create engine "hostA" in
  let host_b = Tcpip.Node.create engine "hostB" in
  let routers =
    Array.init k (fun i -> Tcpip.Node.create engine ~forwarding:true
                     (Printf.sprintf "r%d" i))
  in
  (* Chain: hostA - r0 - r1 - ... - r(k-1) - hostB; link i uses subnet
     10.(i+1).0.0/16, .1 on the left end and .2 on the right end. *)
  let nodes = Array.concat [ [| host_a |]; routers; [| host_b |] ] in
  let links =
    Array.init (Array.length nodes - 1) (fun i ->
        let link = Link.create engine rng ~bit_rate ~delay ~loss () in
        let left = nodes.(i) and right = nodes.(i + 1) in
        let subnet = Tcpip.Ip.addr_of_octets 10 (i + 1) 0 0 in
        let prefix = Tcpip.Ip.prefix subnet 16 in
        ignore
          (Tcpip.Node.add_iface left (Link.endpoint_a link)
             ~addr:(subnet lor 1) ~prefix);
        ignore
          (Tcpip.Node.add_iface right (Link.endpoint_b link)
             ~addr:(subnet lor 2) ~prefix);
        link)
  in
  (* Hosts default-route into their access link; routers run DV. *)
  ignore
    (Tcpip.Node.add_static_route host_a (Tcpip.Ip.prefix 0 0) ~if_id:1 ());
  ignore
    (Tcpip.Node.add_static_route host_b (Tcpip.Ip.prefix 0 0) ~if_id:1 ());
  Array.iter (fun r -> ignore (Tcpip.Dv.start r ~period:dv_period ())) routers;
  (* Let DV converge: a handful of periods covers k hops. *)
  Engine.run ~until:(Engine.now engine +. (dv_period *. float_of_int (k + 3))) engine;
  { ip_engine = engine; ip_rng = rng; hosts = [| host_a; host_b |]; routers; ip_links = links }

let ip_star ?(seed = 7) ?(bit_rate = 10_000_000.) ?(delay = 0.002)
    ?(loss = Rina_sim.Loss.No_loss) ~leaves () =
  if leaves < 1 then invalid_arg "Topo.ip_star: need at least 1 leaf";
  let engine = Engine.create () in
  let rng = Rina_util.Prng.create seed in
  let hub = Tcpip.Node.create engine ~forwarding:true "hub" in
  let hosts =
    Array.init leaves (fun i -> Tcpip.Node.create engine (Printf.sprintf "h%d" i))
  in
  (* Leaf link i uses subnet 10.(i+1).0.0/16: host .1, hub .2.  The hub
     is directly connected to every leaf subnet, so its connected
     routes cover the whole star — no DV needed. *)
  let links =
    Array.init leaves (fun i ->
        let link = Link.create engine rng ~bit_rate ~delay ~loss () in
        let subnet = Tcpip.Ip.addr_of_octets 10 (i + 1) 0 0 in
        let prefix = Tcpip.Ip.prefix subnet 16 in
        ignore
          (Tcpip.Node.add_iface hosts.(i) (Link.endpoint_a link)
             ~addr:(subnet lor 1) ~prefix);
        ignore
          (Tcpip.Node.add_iface hub (Link.endpoint_b link) ~addr:(subnet lor 2)
             ~prefix);
        link)
  in
  Array.iter
    (fun h -> ignore (Tcpip.Node.add_static_route h (Tcpip.Ip.prefix 0 0) ~if_id:1 ()))
    hosts;
  { ip_engine = engine; ip_rng = rng; hosts; routers = [| hub |]; ip_links = links }

(* ---------- static-verification bridge ---------- *)

module Verify = Rina_check.Verify
module Types = Rina_core.Types
module Policy = Rina_core.Policy

let member_name net i = Types.apn_to_string (Ipcp.name net.nodes.(i))

let model_of_net ?name ?(intents = []) ?shards net =
  let dif_name = match name with Some n -> n | None -> Dif.name net.dif in
  let members =
    Array.to_list
      (Array.map
         (fun ip ->
           {
             Verify.m_name = Types.apn_to_string (Ipcp.name ip);
             m_address = Ipcp.address ip;
             m_apps = List.map Types.apn_to_string (Ipcp.registered_apps ip);
           })
         net.nodes)
  in
  let adjacencies =
    Array.to_list
      (Array.mapi
         (fun i (a, b) ->
           let l = net.links.(i) in
           {
             Verify.adj_a = member_name net a;
             adj_b = member_name net b;
             att =
               Verify.Direct
                 {
                   delay = Link.delay l;
                   bit_rate = Link.bit_rate l;
                   queue_frames = Link.queue_capacity l;
                 };
           })
         net.edges)
  in
  let difs =
    [
      {
        Verify.d_name = dif_name;
        d_policy = Dif.policy net.dif;
        d_members = members;
        d_adjacencies = adjacencies;
      };
    ]
  in
  let intents =
    List.map
      (fun (i, app) ->
        { Verify.it_dif = dif_name; it_src = member_name net i; it_dst_app = app })
      intents
  in
  let shards =
    match shards with
    | None -> None
    | Some count ->
      let n = Array.length net.nodes in
      Some
        {
          Verify.shard_count = count;
          shard_of =
            List.init n (fun i ->
                (dif_name, member_name net i, min (count - 1) (i * count / n)));
        }
  in
  { Verify.difs; intents; shards }

(* ---------- pure-data scenario registry ----------

   Hand-written models mirroring the shipped examples (same DIF names,
   member names, registrations and link characteristics), so
   [rina_verify] and [rina_lint --topology] can analyse a scenario
   without building and converging a live net.  Kept in sync by eye;
   the CI verify-smoke job runs every entry and must stay error-free. *)

let mk_member ?(addr = 0) ?(apps = []) name =
  { Verify.m_name = name; m_address = addr; m_apps = apps }

let wire a b ~delay ~bit_rate =
  { Verify.adj_a = a; adj_b = b; att = Verify.Direct { delay; bit_rate; queue_frames = 64 } }

let over lower via_a via_b a b =
  { Verify.adj_a = a; adj_b = b; att = Verify.Stacked { lower_dif = lower; via_a; via_b } }

let quickstart_model () =
  {
    Verify.difs =
      [
        {
          d_name = "quicknet";
          d_policy = Policy.default;
          d_members =
            [
              mk_member ~addr:1 ~apps:[ "client/1" ] "host-a";
              mk_member ~addr:2 ~apps:[ "echo-server/1" ] "host-b";
            ];
          d_adjacencies = [ wire "host-a" "host-b" ~delay:0.005 ~bit_rate:10_000_000. ];
        };
      ];
    intents = [ { it_dif = "quicknet"; it_src = "host-a"; it_dst_app = "echo-server/1" } ];
    shards = None;
  }

let mail_relay_model () =
  {
    Verify.difs =
      [
        {
          d_name = "mailnet";
          d_policy = Policy.default;
          d_members =
            [
              mk_member ~addr:1 ~apps:[ "mua-alice/1" ] "alice-host";
              mk_member ~addr:2 ~apps:[ "mta-relay/1" ] "relay-host";
              mk_member ~addr:3 ~apps:[ "mta-bob/1" ] "bob-host";
            ];
          d_adjacencies =
            [
              wire "alice-host" "relay-host" ~delay:0.004 ~bit_rate:10_000_000.;
              wire "relay-host" "bob-host" ~delay:0.004 ~bit_rate:10_000_000.;
            ];
        };
      ];
    intents =
      [
        { it_dif = "mailnet"; it_src = "alice-host"; it_dst_app = "mta-relay/1" };
        { it_dif = "mailnet"; it_src = "relay-host"; it_dst_app = "mta-bob/1" };
      ];
    shards = None;
  }

let marketplace_model () =
  let premium_policy =
    {
      Policy.default with
      Policy.scheduler = Policy.Priority_queueing;
      Policy.auth = Policy.Auth_password "gold-card";
      Policy.acl =
        Policy.Allow_pairs
          [ ("paying-customer", "video-service"); ("bg-src", "bg-sink") ];
    }
  in
  let provider name policy east_apps west_apps =
    {
      Verify.d_name = name;
      d_policy = policy;
      d_members =
        [
          mk_member ~addr:1 ~apps:west_apps (name ^ "-west");
          mk_member ~addr:2 ~apps:east_apps (name ^ "-east");
        ];
      d_adjacencies =
        [ wire (name ^ "-west") (name ^ "-east") ~delay:0.01 ~bit_rate:10_000_000. ];
    }
  in
  {
    Verify.difs =
      [
        provider "budget-net" Policy.default
          [ "video-service/1"; "bg-sink/1" ]
          [ "bg-src/1"; "free-rider/1" ];
        provider "premium-net" premium_policy
          [ "video-service/1"; "bg-sink/1" ]
          [ "bg-src/1"; "paying-customer/1" ];
      ];
    intents =
      [
        { it_dif = "budget-net"; it_src = "budget-net-west"; it_dst_app = "video-service/1" };
        { it_dif = "premium-net"; it_src = "premium-net-west"; it_dst_app = "video-service/1" };
      ];
    shards = None;
  }

let mobile_video_model () =
  let wired a b = wire a b ~delay:0.002 ~bit_rate:100_000_000. in
  {
    Verify.difs =
      [
        {
          d_name = "metro";
          d_policy = Policy.default;
          d_members =
            [
              mk_member ~addr:1 ~apps:[ "video/1" ] "video-server";
              mk_member ~addr:2 "hub";
              mk_member ~addr:3 "bs1";
              mk_member ~addr:4 "bs2";
              mk_member ~addr:5 "bs3";
              mk_member ~addr:6 ~apps:[ "player/1" ] "mobile";
            ];
          d_adjacencies =
            [
              wired "video-server" "hub";
              wired "hub" "bs1";
              wired "hub" "bs2";
              wired "hub" "bs3";
              (* the radio attachment the mobile starts on *)
              wire "bs1" "mobile" ~delay:0.001 ~bit_rate:20_000_000.;
            ];
        };
      ];
    intents = [ { it_dif = "metro"; it_src = "mobile"; it_dst_app = "video/1" } ];
    shards = None;
  }

let recursive_internet_model () =
  let link_dif name =
    {
      Verify.d_name = name;
      d_policy = Policy.default;
      d_members = [ mk_member ~addr:1 (name ^ ".a"); mk_member ~addr:2 (name ^ ".b") ];
      d_adjacencies =
        [ wire (name ^ ".a") (name ^ ".b") ~delay:0.002 ~bit_rate:50_000_000. ];
    }
  in
  {
    Verify.difs =
      [
        link_dif "wire1";
        link_dif "wire2";
        link_dif "wire3";
        link_dif "wire4";
        link_dif "wire5";
        {
          d_name = "access-isp";
          d_policy = Policy.default;
          d_members =
            [
              mk_member ~addr:1 "acc.host1";
              mk_member ~addr:2 "acc.r1";
              mk_member ~addr:3 "acc.r2";
            ];
          d_adjacencies =
            [
              over "wire1" "wire1.a" "wire1.b" "acc.host1" "acc.r1";
              over "wire2" "wire2.a" "wire2.b" "acc.r1" "acc.r2";
            ];
        };
        {
          d_name = "transit-isp";
          d_policy = Policy.default;
          d_members =
            [
              mk_member ~addr:1 "tr.r2";
              mk_member ~addr:2 "tr.r3";
              mk_member ~addr:3 "tr.r4";
              mk_member ~addr:4 "tr.host2";
            ];
          d_adjacencies =
            [
              over "wire3" "wire3.a" "wire3.b" "tr.r2" "tr.r3";
              over "wire4" "wire4.a" "wire4.b" "tr.r3" "tr.r4";
              over "wire5" "wire5.a" "wire5.b" "tr.r4" "tr.host2";
            ];
        };
        {
          d_name = "internet";
          d_policy = Policy.default;
          d_members =
            [
              mk_member ~addr:1 ~apps:[ "near-app/1" ] "inet.host1";
              mk_member ~addr:2 "inet.border";
              mk_member ~addr:3 ~apps:[ "far-app/1" ] "inet.host2";
            ];
          d_adjacencies =
            [
              over "access-isp" "acc.host1" "acc.r2" "inet.host1" "inet.border";
              over "transit-isp" "tr.r2" "tr.host2" "inet.border" "inet.host2";
            ];
        };
      ];
    intents = [ { it_dif = "internet"; it_src = "inet.host1"; it_dst_app = "far-app/1" } ];
    shards = None;
  }

let sharded_line_model () =
  let n = 8 in
  let name i = Printf.sprintf "n%d" i in
  {
    Verify.difs =
      [
        {
          d_name = "line";
          d_policy = Policy.default;
          d_members =
            List.init n (fun i ->
                mk_member ~addr:(i + 1)
                  ~apps:(if i = n - 1 then [ "sink/1" ] else [])
                  (name i));
          d_adjacencies =
            List.init (n - 1) (fun i ->
                wire (name i) (name (i + 1)) ~delay:0.002 ~bit_rate:10_000_000.);
        };
      ];
    intents = [ { it_dif = "line"; it_src = "n0"; it_dst_app = "sink/1" } ];
    shards =
      Some
        {
          Verify.shard_count = 2;
          shard_of = List.init n (fun i -> ("line", name i, if i < n / 2 then 0 else 1));
        };
  }

(* ---------- sharded builders ---------- *)

module Sharded = Rina_sim.Sharded

type sharded_net = {
  sh : Sharded.t;
  s_difs : Dif.t array;
  s_nodes : Ipcp.t array;
  s_shard : int array;
  s_lookahead : float;
  s_policy : Policy.t;
}

let shard_of_net net (spec : Verify.shard_spec) =
  let dif_name = Dif.name net.dif in
  Array.init (Array.length net.nodes) (fun i ->
      let name = member_name net i in
      match
        List.find_opt
          (fun (d, m, _) -> String.equal d dif_name && String.equal m name)
          spec.Verify.shard_of
      with
      | Some (_, _, s) when s >= 0 && s < spec.Verify.shard_count -> s
      | Some (_, _, s) ->
        invalid_arg
          (Printf.sprintf "Topo.shard_of_net: member %s assigned to shard %d \
                           outside [0, %d)" name s spec.Verify.shard_count)
      | None ->
        invalid_arg
          (Printf.sprintf "Topo.shard_of_net: member %s missing from shard spec"
             name))

(* The block decomposition [model_of_net ~shards] proposes, as a plain
   node-index function. *)
let block_shard ~shards ~n i = min (shards - 1) (i * shards / n)

(* A sharded line: same shape as {!line} (n nodes in a chain, one DIF,
   [sink/1] planned on the last node), but partitioned into [shards]
   block-contiguous regions, each on its own engine.  The partition is
   first verified statically — [Verify.verify] must report no errors
   and a positive lookahead (the V4xx precondition) — and the returned
   net is converged: enrollment and routing ran over the cross-shard
   mailboxes via [Sharded.run]. *)
let sharded_line ?(seed = 7) ?policy ?(bit_rate = 10_000_000.) ?(delay = 0.002)
    ~n ~shards () =
  if n < 2 then invalid_arg "Topo.sharded_line: need at least 2 nodes";
  if shards < 2 || shards > n then
    invalid_arg "Topo.sharded_line: need 2 <= shards <= n";
  let name i = Printf.sprintf "n%d" i in
  let assignment = Array.init n (fun i -> block_shard ~shards ~n i) in
  (* Static precondition: build the pure model of this exact net and
     let rina_verify's analyses accept the decomposition. *)
  let model =
    {
      Verify.difs =
        [
          {
            d_name = "line";
            d_policy = (match policy with Some p -> p | None -> Policy.default);
            d_members =
              List.init n (fun i ->
                  mk_member ~addr:(i + 1)
                    ~apps:(if i = n - 1 then [ "sink/1" ] else [])
                    (name i));
            d_adjacencies =
              List.init (n - 1) (fun i ->
                  wire (name i) (name (i + 1)) ~delay ~bit_rate);
          };
        ];
      intents = [ { it_dif = "line"; it_src = "n0"; it_dst_app = "sink/1" } ];
      shards =
        Some
          {
            Verify.shard_count = shards;
            shard_of = List.init n (fun i -> ("line", name i, assignment.(i)));
          };
    }
  in
  let report = Verify.verify model in
  if Rina_check.Diag.has_errors report.Verify.diags then
    invalid_arg
      (Printf.sprintf "Topo.sharded_line: partition rejected by rina_verify: %s"
         (String.concat "; "
            (List.map Rina_check.Diag.to_string
               (Rina_check.Diag.errors report.Verify.diags))));
  let lookahead =
    match report.Verify.summary.Verify.lookahead with
    | Some la when la > 0. -> la
    | Some _ | None ->
      invalid_arg
        "Topo.sharded_line: rina_verify reports no positive lookahead for \
         this partition (L121)"
  in
  let sh = Sharded.create ~shards ~lookahead () in
  let root = Rina_util.Prng.create seed in
  let rngs = Array.init shards (fun _ -> Rina_util.Prng.split root) in
  let pol = match policy with Some p -> p | None -> Policy.default in
  (* One Dif.t per shard: the same logical DIF, but member state must
     live with its shard's engine.  Only the founder's shard
     bootstraps; everyone else enrolls over the (possibly cross-shard)
     links below. *)
  let s_difs =
    Array.init shards (fun s -> Dif.create (Sharded.engine sh s) ~policy:pol "line")
  in
  let s_nodes =
    Array.init n (fun i ->
        Dif.add_member s_difs.(assignment.(i)) ~bootstrap:(i = 0) ~name:(name i) ())
  in
  for i = 0 to n - 2 do
    let sa = assignment.(i) and sb = assignment.(i + 1) in
    if sa = sb then begin
      let link =
        Link.create (Sharded.engine sh sa) rngs.(sa) ~bit_rate ~delay
          ~label:(Printf.sprintf "link%d" i) ()
      in
      Dif.connect s_difs.(sa) s_nodes.(i) s_nodes.(i + 1)
        (Link.endpoint_a link, Link.endpoint_b link)
    end
    else begin
      let ea, eb =
        Sharded.cross_link sh ~src:sa ~dst:sb ~bit_rate ~delay
          ~label:(Printf.sprintf "link%d" i) ()
      in
      ignore (Ipcp.bind_port s_nodes.(i) ea);
      ignore (Ipcp.bind_port s_nodes.(i + 1) eb)
    end
  done;
  { sh; s_difs; s_nodes; s_shard = assignment; s_lookahead = lookahead;
    s_policy = pol }

let sharded_converged ?(max_time = 120.) ?(domains = 1) net =
  let n = Array.length net.s_nodes in
  let step = net.s_policy.Policy.routing.Policy.hello_interval in
  let converged () =
    Array.for_all Ipcp.is_enrolled net.s_nodes
    && Array.for_all (fun ip -> Ipcp.lsdb_size ip >= n) net.s_nodes
  in
  let t0 = Float.max 0. (Sharded.granted net.sh) in
  let deadline = t0 +. max_time in
  let t = ref t0 in
  while (not (converged ())) && !t < deadline do
    t := !t +. step;
    Sharded.run ~domains net.sh ~until:!t
  done;
  (* Let outstanding SPF recomputations and floods settle. *)
  Sharded.run ~domains net.sh ~until:(!t +. (2. *. step));
  converged ()

let sharded_wait ?(domains = 1) net d =
  Sharded.run ~domains net.sh ~until:(Sharded.granted net.sh +. d)

let scenarios () =
  [
    ("quickstart", quickstart_model ());
    ("mail-relay", mail_relay_model ());
    ("marketplace", marketplace_model ());
    ("mobile-video", mobile_video_model ());
    ("recursive-internet", recursive_internet_model ());
    ("sharded-line", sharded_line_model ());
  ]

let scenario name = List.assoc_opt name (scenarios ())
