module Engine = Rina_sim.Engine
module Link = Rina_sim.Link
module Dif = Rina_core.Dif
module Ipcp = Rina_core.Ipcp

type rina_net = {
  engine : Engine.t;
  rng : Rina_util.Prng.t;
  dif : Dif.t;
  nodes : Ipcp.t array;
  links : Link.t array;
  edges : (int * int) array;
}

let wait engine d = Engine.run ~until:(Engine.now engine +. d) engine

let connect_pair net ?rate a b ~bit_rate ~delay ~loss =
  let link =
    Link.create net.engine net.rng ~bit_rate ~delay ~loss ()
  in
  Dif.connect net.dif ?rate_a:rate ?rate_b:rate net.nodes.(a) net.nodes.(b)
    (Link.endpoint_a link, Link.endpoint_b link);
  link

let make_net ?(seed = 7) ?policy ~n () =
  let engine = Engine.create () in
  let rng = Rina_util.Prng.create seed in
  let dif = Dif.create engine ?policy "net" in
  let nodes =
    Array.init n (fun i -> Dif.add_member dif ~name:(Printf.sprintf "n%d" i) ())
  in
  { engine; rng; dif; nodes; links = [||]; edges = [||] }

let line ?seed ?policy ?(bit_rate = 10_000_000.) ?(delay = 0.002)
    ?(loss = Rina_sim.Loss.No_loss) ?(rate_limited = false) ~n () =
  if n < 2 then invalid_arg "Topo.line: need at least 2 nodes";
  let net = make_net ?seed ?policy ~n () in
  let rate = if rate_limited then Some bit_rate else None in
  let links =
    Array.init (n - 1) (fun i ->
        connect_pair net ?rate i (i + 1) ~bit_rate ~delay ~loss)
  in
  let net = { net with links; edges = Array.init (n - 1) (fun i -> (i, i + 1)) } in
  Dif.run_until_converged net.dif ();
  net

let star ?seed ?policy ?(bit_rate = 10_000_000.) ?(delay = 0.002)
    ?(loss = Rina_sim.Loss.No_loss) ~leaves () =
  if leaves < 1 then invalid_arg "Topo.star: need at least 1 leaf";
  let net = make_net ?seed ?policy ~n:(leaves + 1) () in
  let links =
    Array.init leaves (fun i -> connect_pair net 0 (i + 1) ~bit_rate ~delay ~loss)
  in
  let net = { net with links; edges = Array.init leaves (fun i -> (0, i + 1)) } in
  Dif.run_until_converged net.dif ();
  net

let random_graph ?seed ?policy ?(bit_rate = 10_000_000.) ?(delay = 0.002) ~n
    ~degree () =
  if n < 2 then invalid_arg "Topo.random_graph: need at least 2 nodes";
  let net = make_net ?seed ?policy ~n () in
  let edges = ref [] in
  (* Spanning chain guarantees connectivity. *)
  for i = 0 to n - 2 do
    edges := (i, i + 1) :: !edges
  done;
  let have a b = List.mem (a, b) !edges || List.mem (b, a) !edges in
  let target = max (n - 1) (n * degree / 2) in
  let guard = ref 0 in
  while List.length !edges < target && !guard < 20 * n * degree do
    incr guard;
    let a = Rina_util.Prng.int net.rng n and b = Rina_util.Prng.int net.rng n in
    if a <> b && not (have a b) then edges := (a, b) :: !edges
  done;
  let links =
    Array.of_list
      (List.map
         (fun (a, b) ->
           connect_pair net a b ~bit_rate ~delay ~loss:Rina_sim.Loss.No_loss)
         !edges)
  in
  let net = { net with links; edges = Array.of_list !edges } in
  Dif.run_until_converged net.dif ~max_time:(30. +. (2. *. float_of_int n)) ();
  net

(* ---------- TCP/IP topologies ---------- *)

type ip_net = {
  ip_engine : Engine.t;
  ip_rng : Rina_util.Prng.t;
  hosts : Tcpip.Node.t array;
  routers : Tcpip.Node.t array;
  ip_links : Link.t array;
}

let ip_line ?(seed = 7) ?(bit_rate = 10_000_000.) ?(delay = 0.002)
    ?(loss = Rina_sim.Loss.No_loss) ?(dv_period = 5.0) ~routers:k () =
  let engine = Engine.create () in
  let rng = Rina_util.Prng.create seed in
  let host_a = Tcpip.Node.create engine "hostA" in
  let host_b = Tcpip.Node.create engine "hostB" in
  let routers =
    Array.init k (fun i -> Tcpip.Node.create engine ~forwarding:true
                     (Printf.sprintf "r%d" i))
  in
  (* Chain: hostA - r0 - r1 - ... - r(k-1) - hostB; link i uses subnet
     10.(i+1).0.0/16, .1 on the left end and .2 on the right end. *)
  let nodes = Array.concat [ [| host_a |]; routers; [| host_b |] ] in
  let links =
    Array.init (Array.length nodes - 1) (fun i ->
        let link = Link.create engine rng ~bit_rate ~delay ~loss () in
        let left = nodes.(i) and right = nodes.(i + 1) in
        let subnet = Tcpip.Ip.addr_of_octets 10 (i + 1) 0 0 in
        let prefix = Tcpip.Ip.prefix subnet 16 in
        ignore
          (Tcpip.Node.add_iface left (Link.endpoint_a link)
             ~addr:(subnet lor 1) ~prefix);
        ignore
          (Tcpip.Node.add_iface right (Link.endpoint_b link)
             ~addr:(subnet lor 2) ~prefix);
        link)
  in
  (* Hosts default-route into their access link; routers run DV. *)
  ignore
    (Tcpip.Node.add_static_route host_a (Tcpip.Ip.prefix 0 0) ~if_id:1 ());
  ignore
    (Tcpip.Node.add_static_route host_b (Tcpip.Ip.prefix 0 0) ~if_id:1 ());
  Array.iter (fun r -> ignore (Tcpip.Dv.start r ~period:dv_period ())) routers;
  (* Let DV converge: a handful of periods covers k hops. *)
  Engine.run ~until:(Engine.now engine +. (dv_period *. float_of_int (k + 3))) engine;
  { ip_engine = engine; ip_rng = rng; hosts = [| host_a; host_b |]; routers; ip_links = links }
