(** Workload generation and per-SDU measurement.

    SDUs carry a header with their send timestamp and sequence number
    so the receiving side can compute one-way latency and detect loss
    without side channels. *)

val stamp : now:float -> seq:int -> size:int -> bytes
(** An SDU of exactly [size] bytes (minimum 16) carrying [now] and
    [seq]; the rest is padding. *)

val read_stamp : bytes -> (float * int) option
(** Recover (send time, seq); [None] if the SDU is too short. *)

val stamp_sealed : now:float -> seq:int -> size:int -> bytes
(** [stamp] plus a CRC-32 trailer over the whole SDU, so the receiver
    can detect payload corruption that escaped every lower-layer
    integrity check (the adversarial benchmark's "corrupt-escaped"
    count).  Minimum size is 20 bytes. *)

type sealed = Sealed_ok of float * int | Sealed_corrupt

val read_sealed : bytes -> sealed
(** Verify the trailer and recover (send time, seq). *)

(** Aggregated receiver-side accounting. *)
type sink = {
  received : Rina_util.Stats.t;  (** one-way latencies (s) *)
  mutable count : int;
  mutable bytes : int;
  mutable last_arrival : float;
  mutable seen_max_seq : int;
}

val sink : unit -> sink

val on_sdu : sink -> now:float -> bytes -> unit
(** Account one arriving SDU. *)

val goodput : sink -> t0:float -> t1:float -> float
(** Delivered application bits/s over the window. *)

(** Senders; all take a [send] closure so they work over RINA flows,
    TCP connections or anything byte-oriented. *)

val bulk : send:(bytes -> unit) -> now:float -> count:int -> size:int -> unit
(** Emit [count] stamped SDUs back-to-back. *)

val cbr :
  Rina_sim.Engine.t ->
  send:(bytes -> unit) ->
  rate:float ->
  size:int ->
  until:float ->
  unit ->
  unit
(** Constant bit rate: schedule stamped SDUs of [size] bytes at [rate]
    bits/s until virtual time [until]. *)

val poisson_on_off :
  Rina_sim.Engine.t ->
  Rina_util.Prng.t ->
  send:(bytes -> unit) ->
  peak_rate:float ->
  mean_on:float ->
  mean_off:float ->
  size:int ->
  until:float ->
  unit ->
  unit
(** Exponentially distributed ON (sending at [peak_rate]) and OFF
    periods — the bursty workload for the utilisation experiment. *)
