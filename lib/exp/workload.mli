(** Workload generation and per-SDU measurement.

    SDUs carry a header with their send timestamp and sequence number
    so the receiving side can compute one-way latency and detect loss
    without side channels. *)

val stamp : now:float -> seq:int -> size:int -> bytes
(** An SDU of exactly [size] bytes (minimum 16) carrying [now] and
    [seq]; the rest is padding. *)

val read_stamp : bytes -> (float * int) option
(** Recover (send time, seq); [None] if the SDU is too short. *)

val stamp_sealed : now:float -> seq:int -> size:int -> bytes
(** [stamp] plus a CRC-32 trailer over the whole SDU, so the receiver
    can detect payload corruption that escaped every lower-layer
    integrity check (the adversarial benchmark's "corrupt-escaped"
    count).  Minimum size is 20 bytes. *)

type sealed = Sealed_ok of float * int | Sealed_corrupt

val read_sealed : bytes -> sealed
(** Verify the trailer and recover (send time, seq). *)

(** {2 Flow-aware stamps and per-flow completion times}

    The plain stamps above assume one long-lived stream per sink.
    Short-flow workloads (incast, flash crowds) multiplex many flows
    into one receiving application, so these stamps additionally carry
    a flow id and a FIN marker on a flow's last SDU; the {!fct}
    registry turns FIN arrivals into flow completion times. *)

type flow_stamp = { fs_sent : float; fs_flow : int; fs_seq : int; fs_fin : bool }

val stamp_flow :
  now:float -> flow:int -> seq:int -> fin:bool -> size:int -> bytes
(** A CRC-sealed SDU of [size] bytes (minimum 24) carrying flow id,
    per-flow sequence number and the FIN marker. *)

val read_flow : bytes -> flow_stamp option
(** Verify the trailer and recover the flow stamp; [None] if the SDU
    is corrupt or not flow-stamped. *)

(** Per-flow completion bookkeeping. *)
type fct = {
  durations : Rina_util.Stats.t;  (** completed-flow durations (s) *)
  latencies : Rina_util.Stats.t;  (** per-SDU one-way latencies (s) *)
  mutable started : int;
  mutable completed : int;
  mutable fct_sdus : int;
  mutable fct_bytes : int;
  mutable fct_corrupt : int;  (** deliveries that failed the CRC *)
  opens : (int, float) Hashtbl.t;  (** flow id -> open time, while live *)
}

val fct : unit -> fct

val flow_open : fct -> flow:int -> now:float -> unit
(** Record a flow's start (idempotent); its FCT runs from here to the
    arrival of its FIN SDU. *)

val on_flow_sdu : fct -> now:float -> bytes -> unit
(** Account one arriving SDU; a FIN for an open flow completes it. *)

val unfinished : fct -> int list
(** Flows opened but not yet completed (sorted) — the livelock probe:
    after the drain, an admission-controlled run must leave none. *)

val fct_goodput : fct -> t0:float -> t1:float -> float
(** Delivered application bits/s over the window. *)

val flow_bulk :
  fct ->
  send:(bytes -> unit) ->
  now:float ->
  flow:int ->
  size:int ->
  sdu:int ->
  unit
(** Open [flow] in the registry and emit [size] bytes of payload as
    back-to-back flow-stamped SDUs of [sdu] bytes each, the last one
    FIN-marked — one short flow of an incast or flash-crowd workload.
    @raise Invalid_argument if [sdu <= 0]. *)

val flow_sizes :
  Rina_util.Prng.t -> alpha:float -> xmin:int -> cap:int -> n:int -> int array
(** [n] heavy-tailed ({!Rina_util.Prng.pareto}) flow sizes in bytes,
    clamped to [cap] — mice and elephants. *)

val poisson_arrivals :
  Rina_sim.Engine.t ->
  Rina_util.Prng.t ->
  rate:float ->
  until:float ->
  (int -> unit) ->
  unit
(** Fire the callback with arrival indices 0, 1, ... at exponentially
    spaced instants ([rate] arrivals/s on average) until virtual time
    passes [until] — the flash-crowd arrival process.
    @raise Invalid_argument if [rate <= 0]. *)

(** Aggregated receiver-side accounting. *)
type sink = {
  received : Rina_util.Stats.t;  (** one-way latencies (s) *)
  mutable count : int;
  mutable bytes : int;
  mutable last_arrival : float;
  mutable seen_max_seq : int;
}

val sink : unit -> sink

val on_sdu : sink -> now:float -> bytes -> unit
(** Account one arriving SDU. *)

val goodput : sink -> t0:float -> t1:float -> float
(** Delivered application bits/s over the window. *)

(** Senders; all take a [send] closure so they work over RINA flows,
    TCP connections or anything byte-oriented. *)

val bulk : send:(bytes -> unit) -> now:float -> count:int -> size:int -> unit
(** Emit [count] stamped SDUs back-to-back. *)

val cbr :
  Rina_sim.Engine.t ->
  send:(bytes -> unit) ->
  rate:float ->
  size:int ->
  until:float ->
  unit ->
  unit
(** Constant bit rate: schedule stamped SDUs of [size] bytes at [rate]
    bits/s until virtual time [until]. *)

val poisson_on_off :
  Rina_sim.Engine.t ->
  Rina_util.Prng.t ->
  send:(bytes -> unit) ->
  peak_rate:float ->
  mean_on:float ->
  mean_off:float ->
  size:int ->
  until:float ->
  unit ->
  unit
(** Exponentially distributed ON (sending at [peak_rate]) and OFF
    periods — the bursty workload for the utilisation experiment. *)
