let header = 16  (* f64 timestamp + u32 seq + u32 magic *)

let magic = 0x53445500  (* "SDU" *)

let stamp ~now ~seq ~size =
  let size = max header size in
  let b = Bytes.make size 'p' in
  Bytes.set_int64_be b 0 (Int64.bits_of_float now);
  Bytes.set_int32_be b 8 (Int32.of_int seq);
  Bytes.set_int32_be b 12 (Int32.of_int magic);
  b

let read_stamp b =
  if Bytes.length b < header then None
  else if Int32.to_int (Bytes.get_int32_be b 12) land 0xFFFFFFFF <> magic then None
  else
    Some
      ( Int64.float_of_bits (Bytes.get_int64_be b 0),
        Int32.to_int (Bytes.get_int32_be b 8) )

(* Sealed variant: a CRC-32 trailer over the whole SDU lets the
   receiver detect payload corruption that escaped every lower-layer
   integrity check — the measurement behind the "corrupt-escaped
   deliveries" column of the adversarial benchmark. *)

let seal_overhead = 4

let stamp_sealed ~now ~seq ~size =
  let b = stamp ~now ~seq ~size:(max size (header + seal_overhead)) in
  let body = Bytes.length b - seal_overhead in
  let crc = Rina_core.Sdu_protection.crc32_sub b ~pos:0 ~len:body in
  Bytes.set_int32_be b body (Int32.of_int crc);
  b

type sealed = Sealed_ok of float * int | Sealed_corrupt

let read_sealed b =
  let len = Bytes.length b in
  if len < header + seal_overhead then Sealed_corrupt
  else
    let body = len - seal_overhead in
    let stored = Int32.to_int (Bytes.get_int32_be b body) land 0xFFFFFFFF in
    if Rina_core.Sdu_protection.crc32_sub b ~pos:0 ~len:body <> stored then
      Sealed_corrupt
    else
      match read_stamp b with
      | Some (sent, seq) -> Sealed_ok (sent, seq)
      | None -> Sealed_corrupt

(* ---------- flow-aware stamps + per-flow FCT bookkeeping ----------

   The plain (sealed) stamp assumes ONE long-lived stream per sink: a
   single global sequence space, loss read off [seen_max_seq].  Under
   short-flow churn (incast, flash crowds) thousands of flows share a
   sink and their sequence spaces collide, so flow-aware stamps carry
   an explicit flow id and a FIN marker on the last SDU, and the [fct]
   registry keeps per-flow open times to turn FIN arrivals into flow
   completion times. *)

let flow_header = 20  (* f64 timestamp + u32 flow + u32 seq/fin + u32 magic *)

let flow_magic = 0x464C5700  (* "FLW" *)

let fin_bit = 0x80000000

type flow_stamp = { fs_sent : float; fs_flow : int; fs_seq : int; fs_fin : bool }

let stamp_flow ~now ~flow ~seq ~fin ~size =
  let size = max size (flow_header + seal_overhead) in
  let b = Bytes.make size 'p' in
  Bytes.set_int64_be b 0 (Int64.bits_of_float now);
  Bytes.set_int32_be b 8 (Int32.of_int flow);
  Bytes.set_int32_be b 12 (Int32.of_int (seq lor if fin then fin_bit else 0));
  Bytes.set_int32_be b 16 (Int32.of_int flow_magic);
  let body = size - seal_overhead in
  let crc = Rina_core.Sdu_protection.crc32_sub b ~pos:0 ~len:body in
  Bytes.set_int32_be b body (Int32.of_int crc);
  b

let read_flow b =
  let len = Bytes.length b in
  if len < flow_header + seal_overhead then None
  else if Int32.to_int (Bytes.get_int32_be b 16) land 0xFFFFFFFF <> flow_magic
  then None
  else
    let body = len - seal_overhead in
    let stored = Int32.to_int (Bytes.get_int32_be b body) land 0xFFFFFFFF in
    if Rina_core.Sdu_protection.crc32_sub b ~pos:0 ~len:body <> stored then None
    else
      let sf = Int32.to_int (Bytes.get_int32_be b 12) land 0xFFFFFFFF in
      Some
        {
          fs_sent = Int64.float_of_bits (Bytes.get_int64_be b 0);
          fs_flow = Int32.to_int (Bytes.get_int32_be b 8) land 0xFFFFFFFF;
          fs_seq = sf land lnot fin_bit;
          fs_fin = sf land fin_bit <> 0;
        }

type fct = {
  durations : Rina_util.Stats.t;
  latencies : Rina_util.Stats.t;
  mutable started : int;
  mutable completed : int;
  mutable fct_sdus : int;
  mutable fct_bytes : int;
  mutable fct_corrupt : int;
  opens : (int, float) Hashtbl.t;
}

let fct () =
  {
    durations = Rina_util.Stats.create ();
    latencies = Rina_util.Stats.create ();
    started = 0;
    completed = 0;
    fct_sdus = 0;
    fct_bytes = 0;
    fct_corrupt = 0;
    opens = Hashtbl.create 256;
  }

let flow_open reg ~flow ~now =
  if not (Hashtbl.mem reg.opens flow) then begin
    Hashtbl.replace reg.opens flow now;
    reg.started <- reg.started + 1
  end

let on_flow_sdu reg ~now sdu =
  reg.fct_sdus <- reg.fct_sdus + 1;
  reg.fct_bytes <- reg.fct_bytes + Bytes.length sdu;
  match read_flow sdu with
  | None -> reg.fct_corrupt <- reg.fct_corrupt + 1
  | Some fs ->
    Rina_util.Stats.add reg.latencies (now -. fs.fs_sent);
    if fs.fs_fin then (
      match Hashtbl.find_opt reg.opens fs.fs_flow with
      | Some opened ->
        Hashtbl.remove reg.opens fs.fs_flow;
        reg.completed <- reg.completed + 1;
        Rina_util.Stats.add reg.durations (now -. opened)
      | None -> ())

let unfinished reg =
  List.sort compare (Hashtbl.fold (fun flow _ acc -> flow :: acc) reg.opens [])

let fct_goodput reg ~t0 ~t1 =
  if t1 <= t0 then 0. else float_of_int (8 * reg.fct_bytes) /. (t1 -. t0)

let flow_bulk reg ~send ~now ~flow ~size ~sdu =
  if sdu <= 0 then invalid_arg "Workload.flow_bulk: sdu must be positive";
  flow_open reg ~flow ~now;
  let payload = max 1 (sdu - flow_header - seal_overhead) in
  let count = max 1 ((size + payload - 1) / payload) in
  for seq = 0 to count - 1 do
    send (stamp_flow ~now ~flow ~seq ~fin:(seq = count - 1) ~size:sdu)
  done

let flow_sizes rng ~alpha ~xmin ~cap ~n =
  Array.init n (fun _ ->
      min cap (int_of_float (Rina_util.Prng.pareto rng ~alpha ~xmin:(float_of_int xmin))))

let poisson_arrivals engine rng ~rate ~until f =
  if rate <= 0. then invalid_arg "Workload.poisson_arrivals: rate must be positive";
  let idx = ref 0 in
  let rec next () =
    let gap = Rina_util.Prng.exponential rng rate in
    ignore
      (Rina_sim.Engine.schedule engine ~delay:gap (fun () ->
           if Rina_sim.Engine.now engine < until then begin
             let i = !idx in
             incr idx;
             f i;
             next ()
           end))
  in
  next ()

type sink = {
  received : Rina_util.Stats.t;
  mutable count : int;
  mutable bytes : int;
  mutable last_arrival : float;
  mutable seen_max_seq : int;
}

let sink () =
  {
    received = Rina_util.Stats.create ();
    count = 0;
    bytes = 0;
    last_arrival = 0.;
    seen_max_seq = -1;
  }

let on_sdu s ~now sdu =
  s.count <- s.count + 1;
  s.bytes <- s.bytes + Bytes.length sdu;
  s.last_arrival <- now;
  match read_stamp sdu with
  | Some (sent, seq) ->
    Rina_util.Stats.add s.received (now -. sent);
    if seq > s.seen_max_seq then s.seen_max_seq <- seq
  | None -> ()

let goodput s ~t0 ~t1 =
  if t1 <= t0 then 0. else float_of_int (8 * s.bytes) /. (t1 -. t0)

let bulk ~send ~now ~count ~size =
  for seq = 0 to count - 1 do
    send (stamp ~now ~seq ~size)
  done

let cbr engine ~send ~rate ~size ~until () =
  let interval = float_of_int (8 * size) /. rate in
  let seq = ref 0 in
  let rec tick () =
    let now = Rina_sim.Engine.now engine in
    if now < until then begin
      send (stamp ~now ~seq:!seq ~size);
      incr seq;
      ignore (Rina_sim.Engine.schedule engine ~delay:interval tick)
    end
  in
  tick ()

let poisson_on_off engine rng ~send ~peak_rate ~mean_on ~mean_off ~size ~until () =
  let interval = float_of_int (8 * size) /. peak_rate in
  let seq = ref 0 in
  let rec on_phase stop_at () =
    let now = Rina_sim.Engine.now engine in
    if now >= until then ()
    else if now >= stop_at then begin
      let off = Rina_util.Prng.exponential rng (1. /. mean_off) in
      ignore (Rina_sim.Engine.schedule engine ~delay:off (start_on ()))
    end
    else begin
      send (stamp ~now ~seq:!seq ~size);
      incr seq;
      ignore (Rina_sim.Engine.schedule engine ~delay:interval (on_phase stop_at))
    end
  and start_on () () =
    let now = Rina_sim.Engine.now engine in
    if now < until then begin
      let on = Rina_util.Prng.exponential rng (1. /. mean_on) in
      on_phase (now +. on) ()
    end
  in
  start_on () ()
