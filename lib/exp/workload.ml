let header = 16  (* f64 timestamp + u32 seq + u32 magic *)

let magic = 0x53445500  (* "SDU" *)

let stamp ~now ~seq ~size =
  let size = max header size in
  let b = Bytes.make size 'p' in
  Bytes.set_int64_be b 0 (Int64.bits_of_float now);
  Bytes.set_int32_be b 8 (Int32.of_int seq);
  Bytes.set_int32_be b 12 (Int32.of_int magic);
  b

let read_stamp b =
  if Bytes.length b < header then None
  else if Int32.to_int (Bytes.get_int32_be b 12) land 0xFFFFFFFF <> magic then None
  else
    Some
      ( Int64.float_of_bits (Bytes.get_int64_be b 0),
        Int32.to_int (Bytes.get_int32_be b 8) )

(* Sealed variant: a CRC-32 trailer over the whole SDU lets the
   receiver detect payload corruption that escaped every lower-layer
   integrity check — the measurement behind the "corrupt-escaped
   deliveries" column of the adversarial benchmark. *)

let seal_overhead = 4

let stamp_sealed ~now ~seq ~size =
  let b = stamp ~now ~seq ~size:(max size (header + seal_overhead)) in
  let body = Bytes.length b - seal_overhead in
  let crc = Rina_core.Sdu_protection.crc32_sub b ~pos:0 ~len:body in
  Bytes.set_int32_be b body (Int32.of_int crc);
  b

type sealed = Sealed_ok of float * int | Sealed_corrupt

let read_sealed b =
  let len = Bytes.length b in
  if len < header + seal_overhead then Sealed_corrupt
  else
    let body = len - seal_overhead in
    let stored = Int32.to_int (Bytes.get_int32_be b body) land 0xFFFFFFFF in
    if Rina_core.Sdu_protection.crc32_sub b ~pos:0 ~len:body <> stored then
      Sealed_corrupt
    else
      match read_stamp b with
      | Some (sent, seq) -> Sealed_ok (sent, seq)
      | None -> Sealed_corrupt

type sink = {
  received : Rina_util.Stats.t;
  mutable count : int;
  mutable bytes : int;
  mutable last_arrival : float;
  mutable seen_max_seq : int;
}

let sink () =
  {
    received = Rina_util.Stats.create ();
    count = 0;
    bytes = 0;
    last_arrival = 0.;
    seen_max_seq = -1;
  }

let on_sdu s ~now sdu =
  s.count <- s.count + 1;
  s.bytes <- s.bytes + Bytes.length sdu;
  s.last_arrival <- now;
  match read_stamp sdu with
  | Some (sent, seq) ->
    Rina_util.Stats.add s.received (now -. sent);
    if seq > s.seen_max_seq then s.seen_max_seq <- seq
  | None -> ()

let goodput s ~t0 ~t1 =
  if t1 <= t0 then 0. else float_of_int (8 * s.bytes) /. (t1 -. t0)

let bulk ~send ~now ~count ~size =
  for seq = 0 to count - 1 do
    send (stamp ~now ~seq ~size)
  done

let cbr engine ~send ~rate ~size ~until () =
  let interval = float_of_int (8 * size) /. rate in
  let seq = ref 0 in
  let rec tick () =
    let now = Rina_sim.Engine.now engine in
    if now < until then begin
      send (stamp ~now ~seq:!seq ~size);
      incr seq;
      ignore (Rina_sim.Engine.schedule engine ~delay:interval tick)
    end
  in
  tick ()

let poisson_on_off engine rng ~send ~peak_rate ~mean_on ~mean_off ~size ~until () =
  let interval = float_of_int (8 * size) /. peak_rate in
  let seq = ref 0 in
  let rec on_phase stop_at () =
    let now = Rina_sim.Engine.now engine in
    if now >= until then ()
    else if now >= stop_at then begin
      let off = Rina_util.Prng.exponential rng (1. /. mean_off) in
      ignore (Rina_sim.Engine.schedule engine ~delay:off (start_on ()))
    end
    else begin
      send (stamp ~now ~seq:!seq ~size);
      incr seq;
      ignore (Rina_sim.Engine.schedule engine ~delay:interval (on_phase stop_at))
    end
  and start_on () () =
    let now = Rina_sim.Engine.now engine in
    if now < until then begin
      let on = Rina_util.Prng.exponential rng (1. /. mean_on) in
      on_phase (now +. on) ()
    end
  in
  start_on () ()
