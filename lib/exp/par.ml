(* Domain-parallel trial fan-out.

   Trials are embarrassingly parallel: each one builds its own engine,
   PRNG, metrics registries and (optionally) flight-recorder buffer, so
   the only sharing between domains is the immutable work list and the
   result slots.  A fixed pool of [domains] workers pulls trial indexes
   from an atomic counter (work stealing keeps the pool busy when trial
   durations are uneven) and writes each result into its own slot;
   results are then read back in input order, so the caller sees output
   identical to a sequential [Array.map] — byte-identical JSON, merged
   metrics in seed order — no matter how the trials interleaved.

   Per-run recorder/sanitizer state lives in [Domain.DLS]
   ({!Rina_util.Flight}, {!Rina_util.Invariant}), so a trial may attach
   tracing inside a worker without seeing another domain's buffer.

   The fan-out is annotated for {!Rina_util.Race}: the spawn/join
   structure, the atomic work counter (a synchronisation object — its
   fetch-and-add is an acquire/release pair) and one cell per result
   slot.  All no-ops unless the sanitizer is armed; with it armed, a
   run of [map] must come back race-free — each slot is written by
   exactly one worker and read by the parent only after every join. *)

module Race = Rina_util.Race

(* RINA_DOMAINS pins the worker count (CI and bench runs need a stable
   pool regardless of runner shape); anything unparsable falls back to
   the hardware recommendation.  Both paths clamp to 1..8. *)
let default_domains () =
  let clamp n = if n < 1 then 1 else if n > 8 then 8 else n in
  match Sys.getenv_opt "RINA_DOMAINS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n -> clamp n
    | None -> clamp (Domain.recommended_domain_count ()))
  | None -> clamp (Domain.recommended_domain_count ())

type 'a outcome = Value of 'a | Raised of exn * Printexc.raw_backtrace

let map ?domains f items =
  let n = Array.length items in
  if n = 0 then [||]
  else begin
    let slots = Array.make n None in
    let next = Atomic.make 0 in
    let armed = Race.armed () in
    let counter = if armed then Some (Race.sync "Par.next") else None in
    let cells =
      if armed then
        Some (Array.init n (fun i -> Race.cell (Printf.sprintf "Par.slots[%d]" i)))
      else None
    in
    let worker handle () =
      (match handle with Some h -> Race.child_begin h | None -> ());
      let rec loop () =
        (* The fetch-and-add is both halves of a synchronisation: it
           reads the last increment (acquire) and publishes its own
           (release). *)
        (match counter with
         | Some s ->
           Race.acquire s;
           Race.release s
         | None -> ());
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (match cells with Some cs -> Race.write cs.(i) | None -> ());
          (slots.(i) <-
            Some
              (try Value (f items.(i))
               with e -> Raised (e, Printexc.get_raw_backtrace ())));
          loop ()
        end
      in
      loop ();
      match handle with Some h -> Race.child_end h | None -> ()
    in
    let wanted = match domains with Some d -> d | None -> default_domains () in
    let extra = min (max 0 (wanted - 1)) (n - 1) in
    let pool =
      List.init extra (fun _ ->
          let h = if armed then Some (Race.fork ()) else None in
          (h, Domain.spawn (worker h)))
    in
    worker None ();
    List.iter
      (fun (h, d) ->
        Domain.join d;
        match h with Some h -> Race.join h | None -> ())
      pool;
    (* Joining every worker happens-before these reads, so the slots
       are published; surface the first failure in input order. *)
    Array.mapi
      (fun i slot ->
        (match cells with Some cs -> Race.read cs.(i) | None -> ());
        match slot with
        | Some (Value v) -> v
        | Some (Raised (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false)
      slots
  end

let run_trials ?domains ~seeds f =
  Array.to_list (map ?domains (fun seed -> f ~seed) (Array.of_list seeds))

(* Intra-trial parallelism: advance a sharded fleet with the same
   worker-pool sizing (and RINA_DOMAINS override) as the trial fan-out.
   The Race fork/join and mailbox annotations live inside
   [Rina_sim.Sharded]. *)
let run_sharded ?domains sh ~until =
  let d = match domains with Some d -> d | None -> default_domains () in
  Rina_sim.Sharded.run ~domains:d sh ~until

(* Telemetry-sharded fan-out: every trial gets a private registry as
   this domain's [Telemetry.current] — the per-shard stats pipeline —
   and the shards are merged in *input* order after the join, so the
   merged registry is byte-identical whether the trials ran on one
   domain or eight (merge is exact bucket addition, and the order is
   fixed by the item list, not the schedule).

   Race annotations mirror the result slots: one cell per telemetry
   shard, written by the owning worker after the trial finishes and
   read on the merge path, so an armed sanitizer proves the shard
   hand-off is happens-before clean. *)
let map_telemetry ?domains ?series_bucket f items =
  let module Telemetry = Rina_util.Telemetry in
  let n = Array.length items in
  let merged = Telemetry.create ?series_bucket () in
  if n = 0 then ([||], merged)
  else begin
    let armed = Race.armed () in
    let shard_cells =
      if armed then
        Some
          (Array.init n (fun i ->
               Race.cell (Printf.sprintf "Par.telemetry[%d]" i)))
      else None
    in
    let pairs =
      map ?domains
        (fun i ->
          let tele = Telemetry.create ?series_bucket () in
          Telemetry.set_current (Some tele);
          let finish () = Telemetry.set_current None in
          let r =
            try f items.(i)
            with e ->
              finish ();
              raise e
          in
          finish ();
          (match shard_cells with Some cs -> Race.write cs.(i) | None -> ());
          (r, tele))
        (Array.init n Fun.id)
    in
    let results =
      Array.mapi
        (fun i (r, tele) ->
          (match shard_cells with Some cs -> Race.read cs.(i) | None -> ());
          Telemetry.merge_into ~into:merged tele;
          r)
        pairs
    in
    (results, merged)
  end
