(** Policy-driven observability: wire a {!Rina_sim.Trace} (deterministic
    head sampling, optional ring bound or streaming spill) and a live
    {!Rina_util.Telemetry} registry to an engine, from the policy's
    [[telemetry]] section.

    Typical use, mirroring the shipped
    [examples/policies/telemetry.ini]:
    {[
      let obs = Obs.start ~policy engine in
      Obs.snapshots obs ~until:600.;
      (* ... run the experiment ... *)
      Obs.write_stats obs "run.stats.jsonl";
      Obs.stop obs
    ]}
    The stats file renders with [rina_stats] (text or [--json]). *)

type t = {
  engine : Rina_sim.Engine.t;
  trace : Rina_sim.Trace.t;
  telemetry : Rina_util.Telemetry.t;
  config : Rina_core.Policy.telemetry;
}

val start : ?policy:Rina_core.Policy.t -> ?stream:string -> Rina_sim.Engine.t -> t
(** Attach a trace per [policy.telemetry]: sample rate, ring capacity,
    and — when [stream] names a file — a JSONL streaming sink instead
    of the in-memory buffer.  Inside a [Par.map_telemetry] worker the
    domain's shard registry is reused, so experiment stats land in the
    merged output.  Lint rule L117 catches bad sample rates statically;
    this raises on them at runtime.
    @raise Invalid_argument when the policy's sample rate is outside
    (0, 1] or the ring capacity is negative. *)

val snapshots : t -> until:float -> unit
(** Schedule the periodic snapshot timer if the policy asked for one
    ([snapshot_interval > 0]); no-op otherwise. *)

val write_stats : t -> string -> unit
(** Write the registry's canonical JSONL ({!Rina_util.Telemetry.to_jsonl})
    to a file for [rina_stats]. *)

val stop : t -> unit
(** Flush/close any streaming sink and detach the recorder. *)

(** {2 Sharded observability}

    Per-shard Flight buffers and Telemetry registries, swapped in
    around each shard epoch through {!Rina_sim.Sharded.set_context}
    (recorder state is domain-local and one domain may step many
    shards).  The merged views are {e order-fixed}: events sort by
    (time, shard id, per-shard emission index), registries merge in
    shard-id order — so the exports are byte-identical for any
    [domains] count of the run. *)

type sharded

val start_sharded : ?policy:Rina_core.Policy.t -> Rina_sim.Sharded.t -> sharded
(** Create one buffer + registry per shard (sized per the policy's
    [[telemetry]] section, like {!start}) and install the context
    hooks.  Call before the first [Sharded.run].
    @raise Invalid_argument on a bad sample rate / ring capacity. *)

val sharded_events : sharded -> Rina_util.Flight.event list
(** The merged trace so far, in (time, shard, emission-index) order. *)

val sharded_events_jsonl : sharded -> string
(** {!sharded_events} rendered one JSON object per line — the
    byte-compare artifact the determinism tests and the hotpath bench
    assert on. *)

val sharded_telemetry : sharded -> Rina_util.Telemetry.t
(** A fresh registry holding the shard registries merged in shard-id
    order (telemetry merge is exact and order-fixed). *)

val sharded_stats_jsonl : sharded -> string
(** {!sharded_telemetry}'s canonical JSONL export. *)

val stop_sharded : sharded -> unit
(** Remove the context hooks (the buffers and registries remain
    readable). *)
