(** Topology builders shared by benchmarks, examples and tests. *)

(** Everything a built RINA scenario hands back. *)
type rina_net = {
  engine : Rina_sim.Engine.t;
  rng : Rina_util.Prng.t;
  dif : Rina_core.Dif.t;
  nodes : Rina_core.Ipcp.t array;
  links : Rina_sim.Link.t array;
  edges : (int * int) array;
      (** [edges.(i)] is the (node index, node index) pair joined by
          [links.(i)] — what the chaos hooks use to find the links that
          straddle a partition. *)
}

val line :
  ?seed:int ->
  ?policy:Rina_core.Policy.t ->
  ?bit_rate:float ->
  ?delay:float ->
  ?loss:Rina_sim.Loss.t ->
  ?rate_limited:bool ->
  n:int ->
  unit ->
  rina_net
(** [n] IPC processes in a chain, converged and ready (virtual time has
    advanced past enrollment).  [rate_limited] adds RMT shaping at the
    link rate on every port (needed for scheduler experiments).
    @raise Invalid_argument if [n < 2]. *)

val star :
  ?seed:int ->
  ?policy:Rina_core.Policy.t ->
  ?bit_rate:float ->
  ?delay:float ->
  ?loss:Rina_sim.Loss.t ->
  ?rate_limited:bool ->
  leaves:int ->
  unit ->
  rina_net
(** A hub (node 0) with [leaves] spokes.  [rate_limited] adds RMT
    shaping at the link rate on every port — with it, [leaves] senders
    converging on one spoke build a real queue at the hub (the incast
    bottleneck the congestion benches measure) instead of an unbounded
    channel backlog. *)

val random_graph :
  ?seed:int ->
  ?policy:Rina_core.Policy.t ->
  ?bit_rate:float ->
  ?delay:float ->
  n:int ->
  degree:int ->
  unit ->
  rina_net
(** Connected random graph: a spanning chain plus random extra edges
    until the average degree reaches [degree].  Used by the
    scalability sweep (C1). *)

(** A TCP/IP scenario's pieces. *)
type ip_net = {
  ip_engine : Rina_sim.Engine.t;
  ip_rng : Rina_util.Prng.t;
  hosts : Tcpip.Node.t array;
  routers : Tcpip.Node.t array;
  ip_links : Rina_sim.Link.t array;
}

val ip_line :
  ?seed:int ->
  ?bit_rate:float ->
  ?delay:float ->
  ?loss:Rina_sim.Loss.t ->
  ?dv_period:float ->
  routers:int ->
  unit ->
  ip_net
(** host - R1 - ... - Rk - host, addressed 10.i.0.0/16 per link,
    distance-vector routing started and converged. *)

val ip_star :
  ?seed:int ->
  ?bit_rate:float ->
  ?delay:float ->
  ?loss:Rina_sim.Loss.t ->
  leaves:int ->
  unit ->
  ip_net
(** [leaves] hosts around one forwarding hub (routers.(0)); leaf link
    [i] is subnet 10.(i+1).0.0/16, host .1 and hub .2.  The TCP incast
    baseline: many hosts converging on one. *)

val wait : Rina_sim.Engine.t -> float -> unit
(** Advance virtual time by a duration. *)

(** {2 Sharded topologies}

    The same scenarios, partitioned over per-region
    {!Rina_sim.Sharded} engine shards.  The partition is accepted only
    after [rina_verify]'s V4xx analyses pass and report a positive
    conservative lookahead. *)

type sharded_net = {
  sh : Rina_sim.Sharded.t;
  s_difs : Rina_core.Dif.t array;
      (** one management view of the (single, logical) DIF per shard —
          only the founder's shard bootstrapped *)
  s_nodes : Rina_core.Ipcp.t array;  (** global node order, as in {!rina_net} *)
  s_shard : int array;  (** node index -> shard id *)
  s_lookahead : float;  (** the verified conservative window, seconds *)
  s_policy : Rina_core.Policy.t;
}

val shard_of_net : rina_net -> Rina_check.Verify.shard_spec -> int array
(** Derive the node-index partition of a live net from a verify shard
    spec (matching members by name in the net's DIF).
    @raise Invalid_argument on a missing member or out-of-range shard. *)

val sharded_line :
  ?seed:int ->
  ?policy:Rina_core.Policy.t ->
  ?bit_rate:float ->
  ?delay:float ->
  n:int ->
  shards:int ->
  unit ->
  sharded_net
(** The {!line} scenario split into [shards] block-contiguous regions.
    Statically verifies the decomposition first (errors or a missing
    lookahead raise), then builds per-shard engines, in-shard
    {!Rina_sim.Link}s and cross-shard mailbox links.  The result is
    NOT yet converged — run {!sharded_converged}. *)

val sharded_converged : ?max_time:float -> ?domains:int -> sharded_net -> bool
(** Drive [Sharded.run] until every node is enrolled and every
    link-state database holds all members (same criterion as
    [Dif.run_until_converged]), then let floods settle.  Returns
    whether convergence was reached before [max_time] of virtual
    time. *)

val sharded_wait : ?domains:int -> sharded_net -> float -> unit
(** Advance the whole shard fleet by a duration. *)

(** {2 Static-verification bridge} *)

val model_of_net :
  ?name:string ->
  ?intents:(int * string) list ->
  ?shards:int ->
  rina_net ->
  Rina_check.Verify.model
(** Extract a {!Rina_check.Verify.model} from a live net: one DIF
    (named [name], default the net's DIF name) whose members carry the
    enrolled addresses and actual app registrations, and one [Direct]
    adjacency per link with its real delay/rate/queue bound.
    [intents] plans flows as [(allocator node index, destination app
    name)].  [shards] asks for a block decomposition into that many
    shards over node order — the spec the sharded engine would be
    handed for this net. *)

val scenarios : unit -> (string * Rina_check.Verify.model) list
(** The named scenario registry: pure-data models mirroring the
    shipped examples ([quickstart], [mail-relay], [marketplace],
    [mobile-video], [recursive-internet]) plus [sharded-line] (a line
    with a 2-shard decomposition, exercising the V4xx analyses).  This
    is what [rina_verify] runs over and [rina_lint --topology] reads
    its topology summaries from; all entries must verify error-free. *)

val scenario : string -> Rina_check.Verify.model option
