(** Domain-parallel trial fan-out with sequential-identical results.

    A fixed pool of worker domains pulls items off an atomic counter;
    each trial must build its own {!Rina_sim.Engine},
    {!Rina_util.Prng}, {!Rina_util.Metrics} and (if it traces) its own
    {!Rina_util.Flight.Buf} — recorder and sanitizer state is
    domain-local, so concurrent trials never share a buffer.  Results
    come back in input order: parallel output is byte-identical to a
    sequential run over the same items.

    The fan-out is annotated for the domain-race sanitizer: arm
    {!Rina_check.Sanitizer.Race} (or {!Rina_util.Race} directly)
    before calling {!map} and the spawn/join edges, the atomic work
    counter and every result slot are tracked; a clean run reports no
    races.  Disarmed (the default), the annotations are one atomic
    load each. *)

val default_domains : unit -> int
(** Worker-pool size: the [RINA_DOMAINS] environment variable when set
    to an integer (so CI and bench runs can pin the count), otherwise
    [Domain.recommended_domain_count ()].  Either way clamped to
    [1..8]; an unparsable [RINA_DOMAINS] falls back to the hardware
    recommendation. *)

val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~domains f items] applies [f] to every item across [domains]
    workers (default {!default_domains}; clamped to the item count) and
    returns results in input order.  If any application raised, the
    first failure in {e input} order is re-raised — deterministically,
    regardless of domain interleaving — after all workers finish. *)

val run_trials : ?domains:int -> seeds:int list -> (seed:int -> 'a) -> 'a list
(** Seed-list convenience wrapper over {!map}; results in seed-list
    order. *)

val run_sharded : ?domains:int -> Rina_sim.Sharded.t -> until:float -> unit
(** Advance one trial's shard fleet ({!Rina_sim.Sharded.run}) using
    the same pool sizing as {!map} — [domains] defaults to
    {!default_domains}, so [RINA_DOMAINS=1] forces the deterministic
    sequential reference run and [RINA_DOMAINS=4] a 4-worker run; the
    sharded determinism contract makes both byte-identical. *)

val map_telemetry :
  ?domains:int ->
  ?series_bucket:float ->
  ('a -> 'b) ->
  'a array ->
  'b array * Rina_util.Telemetry.t
(** Like {!map}, but each trial additionally owns a private
    {!Rina_util.Telemetry} registry, installed as the domain's
    [Telemetry.current] for the duration of the trial (per-shard stats
    pipeline).  After all workers join, the shards are merged in input
    order — telemetry merge is exact and the order is fixed, so the
    merged registry (and its {!Rina_util.Telemetry.to_jsonl} export) is
    byte-identical between a 1-domain and an N-domain run of the same
    items.  Shard hand-off carries its own {!Rina_util.Race} cells, so
    an armed sanitizer checks the merge path too. *)
