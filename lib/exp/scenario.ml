module Engine = Rina_sim.Engine
module Ipcp = Rina_core.Ipcp
module Types = Rina_core.Types

let drive_until engine ~timeout cond =
  let deadline = Engine.now engine +. timeout in
  while (not (cond ())) && Engine.now engine < deadline do
    Engine.run ~until:(Engine.now engine +. 0.05) engine
  done

let allocate (net : Topo.rina_net) ~src ~dst_app ~qos_id k =
  let result = ref None in
  let src_app = Types.apn (Printf.sprintf "client-n%d" src) in
  Ipcp.register_app net.Topo.nodes.(src) src_app ~on_flow:(fun _ -> ());
  Ipcp.allocate_flow net.Topo.nodes.(src) ~src:src_app ~dst:dst_app ~qos_id
    ~on_result:(fun r -> result := Some r);
  drive_until net.Topo.engine ~timeout:30. (fun () -> !result <> None);
  match !result with
  | Some r -> k r
  | None -> k (Error "allocation never resolved (engine starved)")

let open_flow (net : Topo.rina_net) ~src ~dst ~qos_id ?sink () =
  let dst_app = Types.apn (Printf.sprintf "sink-n%d" dst) in
  Ipcp.register_app net.Topo.nodes.(dst) dst_app ~on_flow:(fun flow ->
      match sink with
      | Some s ->
        flow.Ipcp.set_on_receive (fun sdu ->
            Workload.on_sdu s ~now:(Engine.now net.Topo.engine) sdu)
      | None -> ());
  let t0 = Engine.now net.Topo.engine in
  let out = ref (Error "not resolved") in
  allocate net ~src ~dst_app ~qos_id (fun r ->
      match r with
      | Ok flow -> out := Ok (flow, Engine.now net.Topo.engine -. t0)
      | Error e -> out := Error e);
  !out

(* ---------- sharded variants ----------

   Same protocol as [open_flow], but the driver advances the whole
   shard fleet: registration and allocation calls run on the (idle)
   owning engines from the calling domain, then [Sharded.run] carries
   the handshake across the mailboxes.  All timing decisions key off
   [Sharded.granted] — exactly the last [until] — so the drive loop
   is a pure function of the seed and the determinism contract holds
   through flow setup. *)

module Sharded = Rina_sim.Sharded

let drive_sharded (net : Topo.sharded_net) ~domains ~timeout cond =
  let deadline = Sharded.granted net.Topo.sh +. timeout in
  while (not (cond ())) && Sharded.granted net.Topo.sh < deadline do
    Sharded.run ~domains net.Topo.sh
      ~until:(Sharded.granted net.Topo.sh +. 0.05)
  done

let open_flow_sharded (net : Topo.sharded_net) ?(domains = 1) ~src ~dst ~qos_id
    ?sink () =
  let dst_engine = Sharded.engine net.Topo.sh net.Topo.s_shard.(dst) in
  let dst_app = Types.apn (Printf.sprintf "sink-n%d" dst) in
  Ipcp.register_app net.Topo.s_nodes.(dst) dst_app ~on_flow:(fun flow ->
      match sink with
      | Some s ->
        flow.Ipcp.set_on_receive (fun sdu ->
            Workload.on_sdu s ~now:(Engine.now dst_engine) sdu)
      | None -> ());
  let src_app = Types.apn (Printf.sprintf "client-n%d" src) in
  Ipcp.register_app net.Topo.s_nodes.(src) src_app ~on_flow:(fun _ -> ());
  let t0 = Sharded.granted net.Topo.sh in
  let result = ref None in
  Ipcp.allocate_flow net.Topo.s_nodes.(src) ~src:src_app ~dst:dst_app ~qos_id
    ~on_result:(fun r -> result := Some r);
  drive_sharded net ~domains ~timeout:30. (fun () -> !result <> None);
  match !result with
  | Some (Ok flow) -> Ok (flow, Sharded.granted net.Topo.sh -. t0)
  | Some (Error e) -> Error e
  | None -> Error "allocation never resolved (fleet starved)"

(* ---------- chaos hooks ----------

   Node-level faults the simulation layer cannot express on its own:
   [Rina_sim.Fault] knows links, we know IPC processes and topology
   indexes, so the closures are built here. *)

(* A node crash is fail-stop: besides killing the IPC process, every
   frame already in flight toward it on an incident link — including
   mangler holdbacks — must die (R_endpoint_crash) rather than arrive
   at the restarted process with its fresh address. *)
let void_links_toward (net : Topo.rina_net) node =
  Array.iteri
    (fun i (a, b) ->
      if a = node then Rina_sim.Link.crash_endpoint net.Topo.links.(i) `A
      else if b = node then Rina_sim.Link.crash_endpoint net.Topo.links.(i) `B)
    net.Topo.edges

let crash_ipcp net node =
  Ipcp.crash net.Topo.nodes.(node);
  void_links_toward net node

let crash_node (net : Topo.rina_net) plan ~at ~node =
  Rina_sim.Fault.inject plan ~at ~label:(Printf.sprintf "crash-n%d" node)
    (fun () -> crash_ipcp net node)

let restart_node (net : Topo.rina_net) plan ~at ~node =
  Rina_sim.Fault.heal_at plan ~at ~label:(Printf.sprintf "crash-n%d" node)
    (fun () -> Ipcp.restart net.Topo.nodes.(node))

let crash_window (net : Topo.rina_net) plan ~at ~until ~node =
  Rina_sim.Fault.window plan ~at ~until
    ~label:(Printf.sprintf "crash-n%d" node)
    ~apply:(fun () -> crash_ipcp net node)
    ~heal:(fun () -> Ipcp.restart net.Topo.nodes.(node))

let straddling_links (net : Topo.rina_net) ~group =
  let inside = Array.make (Array.length net.Topo.nodes) false in
  List.iter
    (fun i ->
      if i < 0 || i >= Array.length inside then
        invalid_arg "Scenario.straddling_links: node index out of range";
      inside.(i) <- true)
    group;
  let out = ref [] in
  Array.iteri
    (fun i (a, b) ->
      if inside.(a) <> inside.(b) then out := net.Topo.links.(i) :: !out)
    net.Topo.edges;
  List.rev !out

let partition (net : Topo.rina_net) plan ~at ~until ~group =
  let links = straddling_links net ~group in
  let label =
    Printf.sprintf "partition-%s"
      (String.concat "," (List.map string_of_int group))
  in
  Rina_sim.Fault.window plan ~at ~until ~label
    ~apply:(fun () ->
      List.iter (fun l -> Rina_sim.Link.set_up l false) links)
    ~heal:(fun () -> List.iter (fun l -> Rina_sim.Link.set_up l true) links)

let random_plan (net : Topo.rina_net) ?(protect = [ 0 ]) ~rng ~horizon ~faults
    () =
  if horizon <= 0. then invalid_arg "Scenario.random_plan: horizon <= 0";
  let plan = Rina_sim.Fault.create () in
  let n_links = Array.length net.Topo.links in
  if n_links = 0 then invalid_arg "Scenario.random_plan: no links";
  let crashable =
    Array.of_list
      (List.filter
         (fun i -> not (List.mem i protect))
         (List.init (Array.length net.Topo.nodes) (fun i -> i)))
  in
  let t0 = Engine.now net.Topo.engine in
  let kinds = if Array.length crashable = 0 then 3 else 4 in
  for k = 1 to faults do
    let at = t0 +. Rina_util.Prng.uniform_in rng 0.02 (0.65 *. horizon) in
    let dur =
      Rina_util.Prng.uniform_in rng (0.05 *. horizon) (0.25 *. horizon)
    in
    let until = Float.min (at +. dur) (t0 +. (0.9 *. horizon)) in
    let until = if until <= at then at +. (0.05 *. horizon) else until in
    match Rina_util.Prng.int rng kinds with
    | 0 ->
      let li = Rina_util.Prng.int rng n_links in
      Rina_sim.Fault.link_down plan ~at ~until
        ~label:(Printf.sprintf "flap%d-l%d" k li)
        net.Topo.links.(li)
    | 1 ->
      let li = Rina_util.Prng.int rng n_links in
      Rina_sim.Fault.link_blackhole plan ~at ~until
        ~label:(Printf.sprintf "blackhole%d-l%d" k li)
        net.Topo.links.(li)
    | 2 ->
      let li = Rina_util.Prng.int rng n_links in
      Rina_sim.Fault.link_degrade plan ~at ~until
        ~label:(Printf.sprintf "degrade%d-l%d" k li)
        ~rate_factor:0.1
        ~loss:(Rina_sim.Loss.Bernoulli 0.2)
        net.Topo.links.(li)
    | _ ->
      let node = Rina_util.Prng.pick rng crashable in
      Rina_sim.Fault.window plan ~at ~until
        ~label:(Printf.sprintf "crash%d-n%d" k node)
        ~apply:(fun () -> crash_ipcp net node)
        ~heal:(fun () -> Ipcp.restart net.Topo.nodes.(node))
  done;
  plan

let sum_metric (net : Topo.rina_net) name =
  Array.fold_left
    (fun acc node -> acc + Rina_util.Metrics.get (Ipcp.metrics node) name)
    0 net.Topo.nodes

let sum_rmt_metric (net : Topo.rina_net) name =
  Array.fold_left
    (fun acc node -> acc + Rina_util.Metrics.get (Ipcp.rmt_metrics node) name)
    0 net.Topo.nodes
