(** Scenario plumbing: synchronous-looking wrappers that drive the
    virtual clock until an asynchronous operation completes. *)

val open_flow :
  Topo.rina_net ->
  src:int ->
  dst:int ->
  qos_id:Rina_core.Types.qos_id ->
  ?sink:Workload.sink ->
  unit ->
  (Rina_core.Ipcp.flow * float, string) result
(** Register an echo-less sink app on node [dst], allocate a flow from
    node [src] and drive the engine until the allocation resolves.
    Returns the flow and the allocation latency (s).  If [sink] is
    given, every SDU arriving at [dst] is accounted there. *)

val allocate :
  Topo.rina_net ->
  src:int ->
  dst_app:Rina_core.Types.apn ->
  qos_id:Rina_core.Types.qos_id ->
  ((Rina_core.Ipcp.flow, string) result -> unit) ->
  unit
(** Raw allocation from node [src] towards an already-registered
    application name; drives the engine until the callback fires. *)

val open_flow_sharded :
  Topo.sharded_net ->
  ?domains:int ->
  src:int ->
  dst:int ->
  qos_id:Rina_core.Types.qos_id ->
  ?sink:Workload.sink ->
  unit ->
  (Rina_core.Ipcp.flow * float, string) result
(** {!open_flow} over a sharded net: the allocation handshake crosses
    the shard mailboxes under [Rina_sim.Sharded.run ~domains].  Every
    drive decision keys off [Sharded.granted], so the outcome and
    timing are identical for any [domains] value. *)

(** {1 Chaos hooks}

    Node- and topology-level fault closures for a
    {!Rina_sim.Fault.t} plan — the layer glue the fault module itself
    deliberately lacks.  All of them only {e record} steps; nothing
    happens until the plan is armed on the engine. *)

val void_links_toward : Topo.rina_net -> int -> unit
(** Kill every frame currently in flight toward node [node] on its
    incident links ({!Rina_sim.Link.crash_endpoint}) — including
    mangler holdbacks — so a later restart with a fresh address never
    receives pre-crash traffic.  Called by the crash hooks below;
    exposed for hand-built crash closures. *)

val crash_node : Topo.rina_net -> Rina_sim.Fault.t -> at:float -> node:int -> unit
(** Schedule a fail-stop crash ({!Rina_core.Ipcp.crash}) of node
    [node] at virtual time [at]; frames already in flight toward the
    node die with [R_endpoint_crash] ({!void_links_toward}).  Crashing
    node 0 (the DIF's founding member, which runs address allocation)
    prevents later re-enrollments — chaos plans normally protect it. *)

val restart_node : Topo.rina_net -> Rina_sim.Fault.t -> at:float -> node:int -> unit
(** Schedule the matching {!Rina_core.Ipcp.restart} (recorded as a
    heal of ["crash-n<node>"]). *)

val crash_window :
  Topo.rina_net -> Rina_sim.Fault.t -> at:float -> until:float -> node:int -> unit
(** Crash at [at], restart at [until]. *)

val straddling_links : Topo.rina_net -> group:int list -> Rina_sim.Link.t list
(** The links with exactly one endpoint in [group] (node indexes) —
    the cut set of the partition separating [group] from the rest.
    @raise Invalid_argument on an out-of-range index. *)

val partition :
  Topo.rina_net ->
  Rina_sim.Fault.t ->
  at:float ->
  until:float ->
  group:int list ->
  unit
(** Network partition: every straddling link loses carrier for the
    window and heals at [until]. *)

val random_plan :
  Topo.rina_net ->
  ?protect:int list ->
  rng:Rina_util.Prng.t ->
  horizon:float ->
  faults:int ->
  unit ->
  Rina_sim.Fault.t
(** A randomized plan of [faults] faults (link flap, blackhole,
    degradation, node crash+restart) with start times and durations
    drawn from [rng] inside the next [horizon] seconds; every fault
    heals before [0.9 * horizon] so recovery is observable.  Nodes in
    [protect] (default [[0]], the address allocator) are never
    crashed.  Same seed, same topology — identical plan
    ({!Rina_sim.Fault.events}). *)

val sum_metric : Topo.rina_net -> string -> int
(** Sum a management-metric counter over all nodes. *)

val sum_rmt_metric : Topo.rina_net -> string -> int
