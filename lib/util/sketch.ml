(* Log-bucketed histograms and time-bucketed counter series with exact
   (bucket-wise additive) merge.  See sketch.mli for the accuracy and
   merge contracts. *)

module Hist = struct
  (* gamma = 2^(1/8): eight buckets per octave.  A value x > 0 lands in
     bucket floor(log_gamma x); the bucket's geometric midpoint
     gamma^(i+0.5) is within a factor sqrt(gamma) of every value in the
     bucket, so quantile estimates carry <= sqrt(gamma)-1 ~ 4.4%
     relative error. *)
  let gamma = Float.pow 2. 0.125
  let log_gamma = Float.log gamma

  type t = {
    mutable zero : int;  (* samples <= 0: no logarithm, own bucket *)
    mutable n : int;
    tbl : (int, int ref) Hashtbl.t;
  }

  let create () = { zero = 0; n = 0; tbl = Hashtbl.create 32 }

  let index x = int_of_float (Float.floor (Float.log x /. log_gamma))

  let bump tbl idx n =
    match Hashtbl.find_opt tbl idx with
    | Some r -> r := !r + n
    | None -> Hashtbl.add tbl idx (ref n)

  let add t x =
    t.n <- t.n + 1;
    if x > 0. then bump t.tbl (index x) 1 else t.zero <- t.zero + 1

  let count t = t.n
  let zero_count t = t.zero

  let buckets t =
    Hashtbl.fold (fun idx r acc -> (idx, !r) :: acc) t.tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let of_buckets ~zero bs =
    let t = create () in
    t.zero <- zero;
    t.n <- zero;
    List.iter
      (fun (idx, n) ->
        if n > 0 then begin
          bump t.tbl idx n;
          t.n <- t.n + n
        end)
      bs;
    t

  let quantile t q =
    if t.n = 0 then Float.nan
    else begin
      let target = max 1 (int_of_float (Float.ceil (q *. float_of_int t.n))) in
      let target = min target t.n in
      if target <= t.zero then 0.
      else begin
        let seen = ref t.zero and value = ref Float.nan in
        (try
           List.iter
             (fun (idx, n) ->
               seen := !seen + n;
               if !seen >= target then begin
                 value := Float.pow gamma (float_of_int idx +. 0.5);
                 raise Exit
               end)
             (buckets t)
         with Exit -> ());
        !value
      end
    end

  let max_value t =
    match List.rev (buckets t) with
    | (idx, _) :: _ -> Float.pow gamma (float_of_int (idx + 1))
    | [] -> if t.zero > 0 then 0. else Float.nan

  let merge_into ~into other =
    into.zero <- into.zero + other.zero;
    into.n <- into.n + other.n;
    Hashtbl.iter (fun idx r -> bump into.tbl idx !r) other.tbl
end

module Series = struct
  type t = {
    width : float;
    mutable n : int;
    tbl : (int, int ref) Hashtbl.t;
    (* Cache the last interval's bounds and cell: virtual clocks are
       monotone, so consecutive adds usually land in the same interval
       and the hot path is two float compares and an increment — no
       division, no floor, no table lookup. *)
    mutable last_lo : float;
    mutable last_hi : float;
    mutable last_cell : int ref;
  }

  let create ~bucket =
    if not (bucket > 0.) then invalid_arg "Sketch.Series.create: bucket <= 0";
    {
      width = bucket;
      n = 0;
      tbl = Hashtbl.create 32;
      last_lo = Float.infinity;
      last_hi = Float.neg_infinity;
      last_cell = ref 0;
    }

  let bucket_width t = t.width

  let cell t idx =
    match Hashtbl.find_opt t.tbl idx with
    | Some r -> r
    | None ->
      let r = ref 0 in
      Hashtbl.add t.tbl idx r;
      r

  let add ?(n = 1) t time =
    t.n <- t.n + n;
    if time >= t.last_lo && time < t.last_hi then
      t.last_cell := !(t.last_cell) + n
    else begin
      let idx = int_of_float (Float.floor (time /. t.width)) in
      let r = cell t idx in
      r := !r + n;
      t.last_lo <- float_of_int idx *. t.width;
      t.last_hi <- float_of_int (idx + 1) *. t.width;
      t.last_cell <- r
    end

  let total t = t.n

  let counts t =
    Hashtbl.fold (fun idx r acc -> (idx, !r) :: acc) t.tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let of_counts ~bucket cs =
    let t = create ~bucket in
    List.iter
      (fun (idx, n) ->
        if n > 0 then begin
          let r = cell t idx in
          r := !r + n;
          t.n <- t.n + n
        end)
      cs;
    t

  let merge_into ~into other =
    if into.width <> other.width then
      invalid_arg "Sketch.Series.merge_into: bucket widths differ";
    into.n <- into.n + other.n;
    Hashtbl.iter
      (fun idx r ->
        let c = cell into idx in
        c := !c + !r)
      other.tbl;
    (* the cached cell may now be stale only in value, never identity *)
    ()
end
