type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  hists : (string, Stats.Histogram.h) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 4;
    hists = Hashtbl.create 4;
  }

(* Exception-style lookup: [find_opt] allocates a [Some] per hit and
   [incr] runs on every PDU, so the hot path keeps the hit case
   allocation-free. *)
let find t name =
  match Hashtbl.find t.counters name with
  | r -> r
  | exception Not_found ->
    let r = ref 0 in
    Hashtbl.add t.counters name r;
    r

let incr t name = Stdlib.incr (find t name)

(* Counters are monotone-ish tallies; a negative delta larger than the
   current value clamps at zero rather than silently going negative
   (which every reader treats as "impossible"). *)
let add t name n =
  let r = find t name in
  r := max 0 (!r + n)

let get t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let to_list t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ---------- gauges ---------- *)

let find_gauge t name =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r
  | None ->
    let r = ref 0. in
    Hashtbl.add t.gauges name r;
    r

let set_gauge t name v = find_gauge t name := v

let gauge t name =
  match Hashtbl.find_opt t.gauges name with Some r -> !r | None -> 0.

let gauges t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.gauges []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ---------- fixed-bucket histograms ---------- *)

let observe t ?(lo = 0.) ?(hi = 1.) ?(bins = 20) name x =
  let h =
    match Hashtbl.find_opt t.hists name with
    | Some h -> h
    | None ->
      let h = Stats.Histogram.create ~lo ~hi ~bins in
      Hashtbl.add t.hists name h;
      h
  in
  Stats.Histogram.add h x

let histogram t name = Hashtbl.find_opt t.hists name

let histograms t =
  Hashtbl.fold (fun name h acc -> (name, h) :: acc) t.hists []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset t =
  Hashtbl.iter (fun _ r -> r := 0) t.counters;
  Hashtbl.iter (fun _ r -> r := 0.) t.gauges;
  Hashtbl.reset t.hists

let pp fmt t =
  List.iter (fun (name, v) -> Format.fprintf fmt "%s=%d@ " name v) (to_list t);
  List.iter (fun (name, v) -> Format.fprintf fmt "%s=%g@ " name v) (gauges t);
  List.iter
    (fun (name, h) ->
      Format.fprintf fmt "%s=[%s]@ " name
        (String.concat ";"
           (Array.to_list (Array.map string_of_int (Stats.Histogram.counts h)))))
    (histograms t)
