(** Runtime invariant checking (the "simulation sanitizer" core).

    Components assert internal invariants — clock monotonicity, window
    bounds, conservation counters — through this module instead of
    [assert], so that checking can be switched on per run and
    violations are collected rather than aborting the simulation.

    The discipline at a call site is

    {[ if Invariant.enabled () then
         if bad then Invariant.record ~code:"SAN_..." detail ]}

    so a disabled sanitizer costs a domain-local load and a branch per
    check.  Checking is off by default; experiments and CI tests opt
    in.

    State is domain-local: each worker domain of a parallel trial
    sweep ([Rina_exp.Par]) has its own switch, store and hook.

    This module holds no simulator state and lives in [Rina_util] so
    that both [Rina_sim] and [Rina_core] can report into it; the
    structured-diagnostic view lives in [Rina_check.Sanitizer]. *)

val enabled : unit -> bool
(** Master switch for this domain, [false] by default. *)

val set_enabled : bool -> unit

type violation = {
  code : string;       (** stable machine code, e.g. ["SAN_CLOCK"] *)
  detail : string;     (** human text from the first occurrence *)
  mutable count : int; (** occurrences since the last [clear] *)
}

val record : code:string -> string -> unit
(** Register a violation.  The first occurrence of each code keeps its
    detail string; later ones only bump the count.  If an
    [on_violation] hook is installed it runs on every occurrence. *)

val violations : unit -> violation list
(** All violations recorded since the last [clear], sorted by code. *)

val total : unit -> int
(** Sum of all violation counts. *)

val clear : unit -> unit

val set_on_violation : (code:string -> detail:string -> unit) option -> unit
(** Optional hook, e.g. [Some (fun ~code ~detail -> failwith ...)] to
    fail fast in tests.  [None] (collect only) by default. *)
