type t = {
  rate : float;
  burst : float;
  mutable tokens : float;
  mutable last : float;
}

let create ~rate ~burst =
  if rate <= 0. then invalid_arg "Token_bucket.create: rate must be positive";
  if burst <= 0. then invalid_arg "Token_bucket.create: burst must be positive";
  { rate; burst; tokens = burst; last = 0. }

let refill t ~now =
  if now > t.last then begin
    t.tokens <- Float.min t.burst (t.tokens +. ((now -. t.last) *. t.rate));
    t.last <- now
  end

let try_take t ~now n =
  if n < 0. then invalid_arg "Token_bucket.try_take: negative take";
  refill t ~now;
  if t.tokens >= n then begin
    t.tokens <- t.tokens -. n;
    true
  end
  else false

let available t ~now =
  refill t ~now;
  t.tokens

let delay_until t ~now n =
  if n < 0. then invalid_arg "Token_bucket.delay_until: negative take";
  refill t ~now;
  if t.tokens >= n then 0.
  else (Float.min n t.burst -. t.tokens) /. t.rate
