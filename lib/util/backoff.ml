(* Exponential backoff with full jitter.  Deterministic: jitter is
   drawn from the caller-supplied Prng stream (never [Random]), and
   callers that pass no generator get the bare doubling sequence. *)

type t = {
  base : float;
  cap : float;
  rng : Prng.t option;
  mutable attempts : int;
}

let check ~base ~cap =
  if base <= 0. then invalid_arg "Backoff: base must be positive";
  if cap < base then invalid_arg "Backoff: cap must be >= base"

(* No float exponent survives a shift past 1074 (the subnormal floor
   to the overflow ceiling spans 2^-1074 .. 2^1024), so clamping the
   attempt count there makes [ldexp] safe for any [n]: past the clamp
   the exact power is moot — it saturates and the cap wins. *)
let max_shift = 1074

let raw ~base ~cap n =
  let d = Float.ldexp base (min n max_shift) in
  if Float.is_nan d then cap else Float.max 0. (Float.min d cap)

let jittered rng d =
  match rng with
  | None -> d
  | Some rng -> Prng.uniform_in rng (d /. 2.) d

let make ?rng ?cap ~base () =
  let cap = match cap with Some c -> c | None -> 30. *. base in
  check ~base ~cap;
  { base; cap; rng; attempts = 0 }

let next t =
  let d = raw ~base:t.base ~cap:t.cap t.attempts in
  t.attempts <- t.attempts + 1;
  jittered t.rng d

let attempt t = t.attempts
let reset t = t.attempts <- 0

let delay_for ?rng ?cap ~base n =
  let cap = match cap with Some c -> c | None -> 30. *. base in
  check ~base ~cap;
  if n < 0 then invalid_arg "Backoff.delay_for: negative attempt";
  jittered rng (raw ~base ~cap n)
