(* Exponential backoff with full jitter.  Deterministic: jitter is
   drawn from the caller-supplied Prng stream (never [Random]), and
   callers that pass no generator get the bare doubling sequence. *)

type t = {
  base : float;
  cap : float;
  rng : Prng.t option;
  mutable attempts : int;
}

let check ~base ~cap =
  if base <= 0. then invalid_arg "Backoff: base must be positive";
  if cap < base then invalid_arg "Backoff: cap must be >= base"

let raw ~base ~cap n =
  (* 2^n without overflow drama: past the cap the exact power is moot. *)
  let d = ref base in
  (try
     for _ = 1 to n do
       d := !d *. 2.;
       if !d >= cap then raise Exit
     done
   with Exit -> ());
  Float.min !d cap

let jittered rng d =
  match rng with
  | None -> d
  | Some rng -> Prng.uniform_in rng (d /. 2.) d

let make ?rng ?cap ~base () =
  let cap = match cap with Some c -> c | None -> 30. *. base in
  check ~base ~cap;
  { base; cap; rng; attempts = 0 }

let next t =
  let d = raw ~base:t.base ~cap:t.cap t.attempts in
  t.attempts <- t.attempts + 1;
  jittered t.rng d

let attempt t = t.attempts
let reset t = t.attempts <- 0

let delay_for ?rng ?cap ~base n =
  let cap = match cap with Some c -> c | None -> 30. *. base in
  check ~base ~cap;
  if n < 0 then invalid_arg "Backoff.delay_for: negative attempt";
  jittered rng (raw ~base ~cap n)
