(** Deterministic pseudo-random number generator (SplitMix64).

    Every experiment seeds exactly one generator so that runs are
    reproducible bit-for-bit.  The generator is deliberately small and
    self-contained: no dependency on [Random] so that simulator
    determinism cannot be broken by library code touching the global
    state. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val split : t -> t
(** [split t] derives an independent generator stream; both [t] and the
    result can be used afterwards without correlation. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in \[0, bound).  @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in \[0, bound). *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t rate] draws from Exp(rate); mean [1. /. rate]. *)

val uniform_in : t -> float -> float -> float
(** [uniform_in t lo hi] is uniform in \[lo, hi). *)

val pareto : t -> alpha:float -> xmin:float -> float
(** Pareto(alpha, xmin) draw, at least [xmin]: the heavy-tailed
    distribution of flow sizes (many mice, a few elephants) the
    congestion workloads use.  [alpha <= 1] has infinite mean — the
    callers clamp draws instead.  @raise Invalid_argument unless both
    parameters are positive. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element.  @raise Invalid_argument on empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
