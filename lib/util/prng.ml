type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = mix64 s }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's 63-bit int (never
     negative). *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  r mod bound

let float t bound =
  (* 53 random bits scaled into [0, 1) then multiplied by the bound. *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let exponential t rate =
  if rate <= 0. then invalid_arg "Prng.exponential: rate must be positive";
  let u = 1.0 -. float t 1.0 in
  -.log u /. rate

let uniform_in t lo hi = lo +. float t (hi -. lo)

let pareto t ~alpha ~xmin =
  if alpha <= 0. then invalid_arg "Prng.pareto: alpha must be positive";
  if xmin <= 0. then invalid_arg "Prng.pareto: xmin must be positive";
  (* Inverse-CDF: x = xmin / U^(1/alpha), U in (0, 1]. *)
  let u = 1.0 -. float t 1.0 in
  xmin /. (u ** (1. /. alpha))

let pick t a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
