(** Mergeable streaming sketches for scale-ready telemetry.

    Two shapes cover the distributions the stack needs to watch while a
    long run is in flight, without buffering events:

    - {!Hist}: a log-bucketed histogram (DDSketch-style).  Values land
      in geometric buckets [gamma^i, gamma^(i+1)); quantile estimates
      carry a bounded {e relative} error of at most [sqrt gamma - 1]
      (~4.4% with the built-in gamma), independent of the value range —
      microsecond queue waits and multi-second blackouts share one
      sketch.
    - {!Series}: a time-bucketed counter (events per fixed-width
      interval of virtual time) for rates and drop timelines.

    Both merge {e exactly} — merging is bucket-wise integer addition,
    so it is associative and commutative, and a sketch merged from
    per-domain shards is byte-identical to the sketch a sequential run
    would have produced.  That is the observability contract the
    sharded engine inherits: shard-local recording, order-fixed merge,
    identical output.

    Nothing here touches domains or DLS; sharding lives in
    {!Telemetry} and [Rina_exp.Par]. *)

module Hist : sig
  type t

  val gamma : float
  (** Bucket growth factor, [2 ** (1/8)] (~1.0905): relative quantile
      error at most [sqrt gamma - 1] (~4.4%). *)

  val create : unit -> t

  val add : t -> float -> unit
  (** Record one sample.  Non-positive samples land in a dedicated
      zero bucket (they have no logarithm). *)

  val count : t -> int
  (** Total samples, zero bucket included. *)

  val zero_count : t -> int

  val quantile : t -> float -> float
  (** [quantile t q] with [q] in [0, 1]: the geometric midpoint of the
      bucket holding the q-th sample ([0.] if it is the zero bucket;
      [nan] when empty).  Relative error bounded by [sqrt gamma - 1]. *)

  val max_value : t -> float
  (** Upper edge of the highest occupied bucket; [nan] when empty. *)

  val buckets : t -> (int * int) list
  (** Occupied [(bucket_index, count)] pairs sorted by index — the
      canonical exportable form. *)

  val of_buckets : zero:int -> (int * int) list -> t
  (** Rebuild from the canonical form (inverse of {!buckets}). *)

  val merge_into : into:t -> t -> unit
  (** Exact merge: bucket-wise addition.  Associative and commutative. *)
end

module Series : sig
  type t

  val create : bucket:float -> t
  (** Counter series with [bucket]-second intervals.
      @raise Invalid_argument if [bucket <= 0]. *)

  val bucket_width : t -> float

  val add : ?n:int -> t -> float -> unit
  (** [add t time] adds [n] (default 1) to the interval containing
      [time].  Consecutive adds into the same interval are O(1) without
      a table lookup (the common monotone-clock case). *)

  val total : t -> int

  val counts : t -> (int * int) list
  (** Occupied [(interval_index, count)] pairs sorted by index;
      interval [i] covers [[i*w, (i+1)*w)). *)

  val of_counts : bucket:float -> (int * int) list -> t

  val merge_into : into:t -> t -> unit
  (** Exact interval-wise addition.
      @raise Invalid_argument when bucket widths differ. *)
end
