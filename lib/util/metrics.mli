(** Named counters, gauges and histograms grouped in registries.

    Components (EFCP instances, routers, schedulers) increment counters
    through a registry; experiments read them afterwards to report
    message overheads, retransmission counts, update scopes, etc.
    Gauges hold last-written float samples (queue depths, window
    occupancy); histograms bucket distributions with fixed edges
    (reusing {!Stats.Histogram}). *)

type t
(** A registry of named counters, gauges and histograms.  The three
    namespaces are independent. *)

val create : unit -> t

val incr : t -> string -> unit
(** Increment by one, creating the counter at zero if needed. *)

val add : t -> string -> int -> unit
(** Add a (possibly negative) amount.  The counter is clamped at zero:
    a negative delta can never drive it below zero, since a negative
    tally reads as corruption everywhere counters are consumed. *)

val get : t -> string -> int
(** Current value; 0 for a counter never touched. *)

val reset : t -> unit
(** Zero every counter and gauge (names stay registered) and drop all
    histograms. *)

val to_list : t -> (string * int) list
(** All counters, sorted by name. *)

val set_gauge : t -> string -> float -> unit
(** Record the latest sample of a float-valued quantity. *)

val gauge : t -> string -> float
(** Last value set; 0. for a gauge never written. *)

val gauges : t -> (string * float) list
(** All gauges, sorted by name. *)

val observe : t -> ?lo:float -> ?hi:float -> ?bins:int -> string -> float -> unit
(** Add one sample to the named fixed-bucket histogram, creating it
    with the given shape (default 20 bins over \[0, 1\]) on first use;
    the shape arguments are ignored afterwards.  Out-of-range samples
    clamp into the edge bins. *)

val histogram : t -> string -> Stats.Histogram.h option

val histograms : t -> (string * Stats.Histogram.h) list
(** All histograms, sorted by name. *)

val pp : Format.formatter -> t -> unit
(** Prints counters ([name=3]), then gauges ([name=0.5]), then
    histograms ([name=\[0;2;1\]]), each group sorted by name. *)
