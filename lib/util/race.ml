(* Vector-clock happens-before detection.

   Clocks are maps from domain id to epoch.  Each domain's own entry
   is its epoch; an access by domain [u] at epoch [e] happens-before
   domain [t]'s present iff [t]'s clock has [u]'s entry >= [e].  Cells
   store the last write and the reads since it as (domain, epoch)
   pairs — enough to decide happens-before against any later access
   without keeping whole clock snapshots per access.

   All mutable cross-domain state (cells, sync objects, the race log)
   sits behind one mutex; per-domain clocks live in domain-local
   storage and are only exported through fork/join handles and sync
   objects, both under the mutex.  The detector observes annotated
   accesses only — scale is dozens of cells and <= 8 domains, so the
   O(domains) map operations are irrelevant next to the accesses they
   describe. *)

module IM = Map.Make (Int)

type clock = int IM.t

let epoch_of id (c : clock) = match IM.find_opt id c with Some e -> e | None -> 0

let join_clock (a : clock) (b : clock) : clock =
  IM.union (fun _ x y -> Some (max x y)) a b

(* ---------- global switch and store ---------- *)

let switch = Atomic.make false

let armed () = Atomic.get switch

let mutex = Mutex.create ()

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

type race = {
  site : string;
  kind : [ `Write_write | `Read_write | `Write_read ];
  first_domain : int;
  second_domain : int;
}

type cell = {
  c_site : string;
  mutable c_write : (int * int) option;  (* domain, epoch of last write *)
  c_reads : (int, int) Hashtbl.t;  (* domain -> max epoch read since last write *)
}

(* Registered so [clear] can reset cells made before re-arming. *)
let all_cells : cell list ref = ref []

let race_log : race list ref = ref []

let clear () =
  locked (fun () ->
      race_log := [];
      List.iter
        (fun c ->
          c.c_write <- None;
          Hashtbl.reset c.c_reads)
        !all_cells)

let arm () =
  clear ();
  Atomic.set switch true

let disarm () = Atomic.set switch false

(* ---------- per-domain clocks ---------- *)

let self () = (Domain.self () :> int)

type tstate = { mutable vc : clock }

let tkey =
  Domain.DLS.new_key (fun () ->
      let id = (Domain.self () :> int) in
      { vc = IM.singleton id 1 })

let my () = Domain.DLS.get tkey

let tick st =
  let id = self () in
  st.vc <- IM.add id (epoch_of id st.vc + 1) st.vc

(* ---------- fork / join ---------- *)

type handle = { h_birth : clock; h_final : clock option Atomic.t }

let fork () =
  if not (armed ()) then { h_birth = IM.empty; h_final = Atomic.make None }
  else begin
    let st = my () in
    let h = { h_birth = st.vc; h_final = Atomic.make None } in
    tick st;
    h
  end

let child_begin h =
  if armed () then begin
    let st = my () in
    let id = self () in
    (* A fresh epoch for this domain on top of everything inherited:
       domain ids are never reused within a process, but the DLS state
       of a pooled domain could be, so take the max. *)
    st.vc <- IM.add id (epoch_of id st.vc + 1) (join_clock h.h_birth st.vc)
  end

let child_end h = if armed () then Atomic.set h.h_final (Some (my ()).vc)

let join h =
  if armed () then begin
    let st = my () in
    (match Atomic.get h.h_final with
     | Some final -> st.vc <- join_clock st.vc final
     | None -> ());
    tick st
  end

(* ---------- sync objects ---------- *)

type sync = { mutable s_vc : clock }

let sync _name = { s_vc = IM.empty }

let acquire s =
  if armed () then
    locked (fun () ->
        let st = my () in
        st.vc <- join_clock st.vc s.s_vc)

let release s =
  if armed () then begin
    locked (fun () ->
        let st = my () in
        s.s_vc <- join_clock s.s_vc st.vc);
    tick (my ())
  end

(* ---------- cells ---------- *)

let cell site =
  let c = { c_site = site; c_write = None; c_reads = Hashtbl.create 4 } in
  locked (fun () -> all_cells := c :: !all_cells);
  c

let report c kind ~first ~second =
  let r = { site = c.c_site; kind; first_domain = first; second_domain = second } in
  if
    not
      (List.exists
         (fun r' -> String.equal r'.site r.site && r'.kind = r.kind)
         !race_log)
  then race_log := r :: !race_log

let happens_before vc (u, e) = epoch_of u vc >= e

let read c =
  if armed () then
    locked (fun () ->
        let st = my () in
        let me = self () in
        (match c.c_write with
         | Some ((u, _) as w) when u <> me && not (happens_before st.vc w) ->
           report c `Write_read ~first:u ~second:me
         | Some _ | None -> ());
        Hashtbl.replace c.c_reads me (epoch_of me st.vc))

let write c =
  if armed () then
    locked (fun () ->
        let st = my () in
        let me = self () in
        (match c.c_write with
         | Some ((u, _) as w) when u <> me && not (happens_before st.vc w) ->
           report c `Write_write ~first:u ~second:me
         | Some _ | None -> ());
        Hashtbl.iter
          (fun u e ->
            if u <> me && not (happens_before st.vc (u, e)) then
              report c `Read_write ~first:u ~second:me)
          c.c_reads;
        Hashtbl.reset c.c_reads;
        c.c_write <- Some (me, epoch_of me st.vc))

let kind_rank = function `Write_write -> 0 | `Read_write -> 1 | `Write_read -> 2

let races () =
  locked (fun () ->
      List.sort
        (fun a b ->
          match String.compare a.site b.site with
          | 0 -> compare (kind_rank a.kind) (kind_rank b.kind)
          | n -> n)
        !race_log)
