(** Binary min-heap keyed by a float priority, with stable tie-breaking.

    The discrete-event engine needs: O(log n) insert / pop-min, and
    deterministic ordering when two events share the same timestamp
    (ties are broken by insertion order — each push consumes one
    monotonically increasing sequence number).  Entries carry an
    arbitrary payload.

    Two access styles coexist: the boxed {!pop}/{!peek} (convenient for
    Dijkstra-style uses) and the unboxed {!top_key}/{!top_value}/
    {!drop_min} trio the event loop uses to avoid allocating an option
    and a tuple per event. *)

type 'a t

val create : unit -> 'a t
(** Fresh empty heap. *)

val length : 'a t -> int
(** Number of entries currently stored. *)

val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push h key v] inserts [v] with priority [key] and the next
    sequence number. *)

val reserve_seq : 'a t -> int
(** Consume and return the next sequence number {e without} inserting —
    for entries parked outside the heap (e.g. a timer wheel) that must
    keep their FIFO rank when they are pushed later with
    {!push_with_seq}. *)

val push_with_seq : 'a t -> key:float -> seq:int -> 'a -> unit
(** Insert with an explicit sequence number previously obtained from
    {!reserve_seq}.  The internal counter is advanced past [seq] if
    needed, so later {!push}es still get fresh numbers. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum entry, or [None] if empty.  Among
    equal keys, the entry pushed first is returned first. *)

val peek : 'a t -> (float * 'a) option
(** Minimum entry without removing it. *)

val top_key : 'a t -> float
(** Key of the minimum entry.  @raise Invalid_argument if empty. *)

val top_value : 'a t -> 'a
(** Payload of the minimum entry.  @raise Invalid_argument if empty. *)

val drop_min : 'a t -> unit
(** Remove the minimum entry.  @raise Invalid_argument if empty. *)

val compact : 'a t -> keep:('a -> bool) -> int
(** [compact h ~keep] drops every entry whose payload fails [keep] and
    rebuilds the heap in O(n); returns how many entries were removed.
    Surviving entries keep their sequence numbers, so tie-breaking
    order is unchanged. *)

val clear : 'a t -> unit
(** Drop all entries. *)
