(** Exponential backoff with optional jitter.

    Shared retry-delay policy for everything that re-sends after a
    timeout: DNS queries, mobile-IP registration, DIF enrollment.  The
    schedule is [base * 2^attempt], clamped to [cap]; with a generator
    supplied, each delay is "full jitter" — uniform in
    \[delay/2, delay\] — so synchronized retriers de-correlate.
    Randomness only ever comes from the caller's {!Prng.t}, keeping
    simulations deterministic for a fixed seed. *)

type t

val make : ?rng:Prng.t -> ?cap:float -> base:float -> unit -> t
(** [make ~base ()] starts a fresh schedule.  [base] is the delay
    before the first retry (seconds); [cap] (default [30. *. base])
    bounds growth.  Without [rng] the schedule is the plain
    deterministic doubling sequence.
    @raise Invalid_argument if [base <= 0.] or [cap < base]. *)

val next : t -> float
(** The delay to wait before the next retry; advances the attempt
    counter. *)

val attempt : t -> int
(** Retries drawn so far (0 before the first {!next}). *)

val reset : t -> unit
(** Forget past attempts; the next {!next} returns [base] again
    (modulo jitter). *)

val delay_for : ?rng:Prng.t -> ?cap:float -> base:float -> int -> float
(** One-shot: the delay for retry number [n] (0-based) without
    tracking state.  Same clamping and jitter rules as {!next}. *)
