(* Flight recorder: the domain-global typed event stream every layer
   emits into.  Lives at the bottom of the library stack (engine, links,
   EFCP, RMT and the TCP/IP baseline all depend on rina_util) so one
   schema serves the whole simulator.

   The hot-path contract mirrors Invariant: emission sites are guarded
   by [if enabled () then emit ...] at the call site — when tracing is
   off the cost is a domain-local load and a branch, and no closure or
   string is allocated.  [emit] itself does not re-check the flag.

   The recorder state lives in domain-local storage so parallel trial
   runners ([Rina_exp.Par]) can attach one recorder per domain without
   the workers stomping on each other's clock and sink. *)

type reason =
  | R_queue_full
  | R_link_down
  | R_blackhole
  | R_loss
  | R_crc
  | R_decode
  | R_ttl_expired
  | R_no_route
  | R_ingress_filter
  | R_stale
  | R_duplicate
  | R_corrupt
  | R_dup
  | R_reorder_overflow
  | R_congestion
  | R_endpoint_crash
  | R_path_down
  | R_other of string

type kind =
  | Pdu_sent
  | Pdu_recvd
  | Pdu_dropped of reason
  | Enqueued
  | Dequeued
  | Timer_set
  | Timer_fired
  | Retransmit
  | Handoff
  | Route_update
  | Custom of string

type event = {
  time : float;
  component : string;
  kind : kind;
  flow : int;  (* flow identity (CEP / port / tuple hash); 0 = none *)
  rank : int;  (* DIF rank; 0 = unknown / not applicable *)
  seq : int;
  size : int;  (* bytes for PDU events, sampled value for probes *)
  span : int;  (* PDU trace id joining events across layers; 0 = none *)
}

(* Exact per-kind counts bumped inline by [emit] for every event,
   kept or shed.  A plain record of mutable ints — no closure call, no
   clock read, no allocation — so online aggregation of a shed event
   costs a couple of increments.  [Telemetry] owns one per registry. *)
type tally = {
  mutable t_events : int;
  mutable t_sent : int;
  mutable t_recvd : int;
  mutable t_dropped : int;
  mutable t_retransmit : int;
  mutable t_timer : int;  (* Timer_set + Timer_fired *)
}

let create_tally () =
  {
    t_events = 0;
    t_sent = 0;
    t_recvd = 0;
    t_dropped = 0;
    t_retransmit = 0;
    t_timer = 0;
  }

(* The recorder is handed out by [cur] so a hot emission site pays for
   exactly one domain-local lookup: [let r = cur () in if on r then
   emit_to r ...].  The tally field always holds a record (a per-domain
   scratch one when no telemetry is installed) so the bump needs no
   option branch. *)
type recorder = {
  mutable r_on : bool;
  mutable clock : unit -> float;
  mutable sink : event -> unit;
  mutable keep_ppm : int;  (* head-sampling rate in parts-per-million *)
  mutable tap : (event -> unit) option;  (* sees every *kept* event *)
  mutable tally : tally;  (* counts every event, kept or shed *)
}

let full_ppm = 1_000_000

let key =
  Domain.DLS.new_key (fun () ->
      {
        r_on = false;
        clock = (fun () -> 0.);
        sink = (fun _ -> ());
        keep_ppm = full_ppm;
        tap = None;
        tally = create_tally ();  (* per-domain scratch tally *)
      })

let cur () = Domain.DLS.get key

let on r = r.r_on

let ctx = cur

let enabled () = (ctx ()).r_on

let set_enabled b = (ctx ()).r_on <- b

let set_clock f = (ctx ()).clock <- f

let set_sink f = (ctx ()).sink <- f

let set_tap f = (ctx ()).tap <- f

let set_tally y =
  let c = ctx () in
  match y with
  | Some y -> c.tally <- y
  | None -> c.tally <- create_tally ()

let ppm_of_rate r =
  if not (r > 0. && r <= 1.) then
    invalid_arg "Flight.ppm_of_rate: rate must be in (0, 1]";
  max 1 (int_of_float (Float.round (r *. float_of_int full_ppm)))

let set_sample_rate r = (ctx ()).keep_ppm <- ppm_of_rate r

let sample_ppm () = (ctx ()).keep_ppm

(* The keep/drop decision is a pure function of the span id alone —
   nothing from the clock or any counter — so every replay, every
   relay on the path and every Par worker makes the same call for the
   same PDU, and a sampled trace stays span-complete: a kept span keeps
   all of its events, end to end. *)
let span_kept ~keep_ppm span =
  let h = span * 0xC2B2AE35 in
  let h = h lxor (h lsr 29) in
  let h = h * 0x27D4EB2F in
  let h = h lxor (h lsr 31) in
  (h land 0x3FFFFFFF) mod full_ppm < keep_ppm

(* Under head sampling (keep_ppm < 10^6) an event survives when:
   - it is a landmark kind (Custom probes/markers, drops, Handoff,
     Route_update) — low-volume, anomalous, or load-bearing for
     analysis; or
   - it carries a span that the hash keeps.
   High-volume span-less events (link frames are opaque and carry no
   span, likewise raw timer churn) are exactly what sampling exists to
   shed; their aggregates survive in the tally instead. *)
let event_kept ~keep_ppm ~span kind =
  keep_ppm >= full_ppm
  ||
  match kind with
  | Custom _ | Handoff | Route_update | Pdu_dropped _ -> true
  | Pdu_sent | Pdu_recvd | Enqueued | Dequeued | Timer_set | Timer_fired
  | Retransmit ->
    span <> 0 && span_kept ~keep_ppm span

(* Slow half of [emit_to]: construct the event, tap it, sink it.  Out
   of line so the shed path below stays small. *)
let[@inline never] emit_kept c ~component ~flow ~rank ~seq ~size ~span kind =
  let e = { time = c.clock (); component; kind; flow; rank; seq; size; span } in
  (match c.tap with None -> () | Some tap -> tap e);
  c.sink e

let emit_to c ~component ?(flow = 0) ?(rank = 0) ?(seq = 0) ?(size = 0)
    ?(span = 0) kind =
  (* One match drives both halves of the hot path: the tally bump and
     the keep/shed decision.  A shed event is never even constructed —
     sampling costs the increments here and nothing else. *)
  let y = c.tally in
  y.t_events <- y.t_events + 1;
  let keep =
    match kind with
    | Pdu_sent ->
      y.t_sent <- y.t_sent + 1;
      c.keep_ppm >= full_ppm || (span <> 0 && span_kept ~keep_ppm:c.keep_ppm span)
    | Pdu_recvd ->
      y.t_recvd <- y.t_recvd + 1;
      c.keep_ppm >= full_ppm || (span <> 0 && span_kept ~keep_ppm:c.keep_ppm span)
    | Timer_set | Timer_fired ->
      y.t_timer <- y.t_timer + 1;
      c.keep_ppm >= full_ppm || (span <> 0 && span_kept ~keep_ppm:c.keep_ppm span)
    | Enqueued | Dequeued ->
      c.keep_ppm >= full_ppm || (span <> 0 && span_kept ~keep_ppm:c.keep_ppm span)
    | Retransmit ->
      y.t_retransmit <- y.t_retransmit + 1;
      c.keep_ppm >= full_ppm || (span <> 0 && span_kept ~keep_ppm:c.keep_ppm span)
    | Pdu_dropped _ ->
      y.t_dropped <- y.t_dropped + 1;
      true
    | Handoff | Route_update | Custom _ -> true
  in
  if keep then emit_kept c ~component ~flow ~rank ~seq ~size ~span kind

let emit ~component ?flow ?rank ?seq ?size ?span kind =
  emit_to (cur ()) ~component ?flow ?rank ?seq ?size ?span kind

(* A PDU's trace id is a deterministic mix of its flow key and sequence
   number, so the sender, every relay that decodes the PDU and the
   receiver all compute the same id without carrying anything extra on
   the wire.  Fibonacci-hash style mixing keeps distinct (flow, seq)
   pairs from colliding in practice; ids are clamped positive and
   non-zero (0 means "no span"). *)
let span_of ~flow ~seq =
  let h = (flow * 0x9E3779B1) lxor (seq * 0x85EBCA77) in
  let h = h lxor (h lsr 31) in
  let h = h land 0x3FFFFFFFFFFF in
  if h = 0 then 1 else h

let reason_to_string = function
  | R_queue_full -> "queue_full"
  | R_link_down -> "link_down"
  | R_blackhole -> "blackhole"
  | R_loss -> "loss"
  | R_crc -> "crc"
  | R_decode -> "decode"
  | R_ttl_expired -> "ttl_expired"
  | R_no_route -> "no_route"
  | R_ingress_filter -> "ingress_filter"
  | R_stale -> "stale"
  | R_duplicate -> "duplicate"
  | R_corrupt -> "corrupt"
  | R_dup -> "dup"
  | R_reorder_overflow -> "reorder_overflow"
  | R_congestion -> "congestion"
  | R_endpoint_crash -> "endpoint_crash"
  | R_path_down -> "path_down"
  | R_other s -> s

let reason_of_string = function
  | "queue_full" -> R_queue_full
  | "link_down" -> R_link_down
  | "blackhole" -> R_blackhole
  | "loss" -> R_loss
  | "crc" -> R_crc
  | "decode" -> R_decode
  | "ttl_expired" -> R_ttl_expired
  | "no_route" -> R_no_route
  | "ingress_filter" -> R_ingress_filter
  | "stale" -> R_stale
  | "duplicate" -> R_duplicate
  | "corrupt" -> R_corrupt
  | "dup" -> R_dup
  | "reorder_overflow" -> R_reorder_overflow
  | "congestion" -> R_congestion
  | "endpoint_crash" -> R_endpoint_crash
  | "path_down" -> R_path_down
  | s -> R_other s

let kind_to_string = function
  | Pdu_sent -> "pdu_sent"
  | Pdu_recvd -> "pdu_recvd"
  | Pdu_dropped r -> "pdu_dropped:" ^ reason_to_string r
  | Enqueued -> "enqueued"
  | Dequeued -> "dequeued"
  | Timer_set -> "timer_set"
  | Timer_fired -> "timer_fired"
  | Retransmit -> "retransmit"
  | Handoff -> "handoff"
  | Route_update -> "route_update"
  | Custom s -> s

(* ---------- O(1)-append event buffer (optionally a bounded ring) ---------- *)

module Buf = struct
  type t = {
    mutable arr : event array;
    mutable len : int;
    mutable start : int;  (* ring read offset; 0 while growing *)
    capacity : int;  (* 0 = unbounded; > 0 = keep only the newest N *)
    mutable dropped : int;  (* oldest events overwritten in ring mode *)
  }

  let dummy =
    {
      time = 0.;
      component = "";
      kind = Custom "";
      flow = 0;
      rank = 0;
      seq = 0;
      size = 0;
      span = 0;
    }

  let create ?(capacity = 0) () =
    if capacity < 0 then invalid_arg "Flight.Buf.create: negative capacity";
    { arr = [||]; len = 0; start = 0; capacity; dropped = 0 }

  let add b e =
    if b.capacity > 0 && b.len = b.capacity then begin
      (* full ring: overwrite the oldest event in place *)
      b.arr.(b.start) <- e;
      b.start <- (b.start + 1) mod b.capacity;
      b.dropped <- b.dropped + 1
    end
    else begin
      if b.len = Array.length b.arr then begin
        let cap = max 64 (2 * Array.length b.arr) in
        let cap = if b.capacity > 0 then min cap b.capacity else cap in
        let cap = max cap (b.len + 1) in
        let arr = Array.make cap dummy in
        Array.blit b.arr 0 arr 0 b.len;
        b.arr <- arr
      end;
      (* start is 0 until the ring first fills, so append is in place *)
      b.arr.(b.len) <- e;
      b.len <- b.len + 1
    end

  let length b = b.len
  let dropped b = b.dropped

  let get b i =
    if i < 0 || i >= b.len then invalid_arg "Flight.Buf.get: out of bounds";
    b.arr.((b.start + i) mod Array.length b.arr)

  let iter f b =
    for i = 0 to b.len - 1 do
      f (get b i)
    done

  let to_list b = List.init b.len (get b)

  let clear b =
    b.arr <- [||];
    b.len <- 0;
    b.start <- 0;
    b.dropped <- 0
end

(* ---------- binary codec ---------- *)

let reason_tag = function
  | R_queue_full -> 0
  | R_link_down -> 1
  | R_loss -> 2
  | R_crc -> 3
  | R_decode -> 4
  | R_ttl_expired -> 5
  | R_no_route -> 6
  | R_ingress_filter -> 7
  | R_stale -> 8
  | R_duplicate -> 9
  | R_other _ -> 10
  | R_blackhole -> 11
  (* append-only: new reasons take the next tag so old binary traces
     keep decoding *)
  | R_corrupt -> 12
  | R_dup -> 13
  | R_reorder_overflow -> 14
  | R_congestion -> 15
  | R_endpoint_crash -> 16
  | R_path_down -> 17

let kind_tag = function
  | Pdu_sent -> 0
  | Pdu_recvd -> 1
  | Pdu_dropped _ -> 2
  | Enqueued -> 3
  | Dequeued -> 4
  | Timer_set -> 5
  | Timer_fired -> 6
  | Retransmit -> 7
  | Handoff -> 8
  | Route_update -> 9
  | Custom _ -> 10

let write_event w e =
  let module W = Codec.Writer in
  W.f64 w e.time;
  W.string w e.component;
  W.u8 w (kind_tag e.kind);
  (match e.kind with
   | Pdu_dropped r ->
     W.u8 w (reason_tag r);
     (match r with R_other s -> W.string w s | _ -> ())
   | Custom s -> W.string w s
   | _ -> ());
  W.u64 w (Int64.of_int e.flow);
  W.u16 w e.rank;
  W.u64 w (Int64.of_int e.seq);
  W.u64 w (Int64.of_int e.size);
  W.u64 w (Int64.of_int e.span)

let read_event r =
  let module R = Codec.Reader in
  let time = R.f64 r in
  let component = R.string r in
  let kind =
    match R.u8 r with
    | 0 -> Pdu_sent
    | 1 -> Pdu_recvd
    | 2 ->
      Pdu_dropped
        (match R.u8 r with
         | 0 -> R_queue_full
         | 1 -> R_link_down
         | 2 -> R_loss
         | 3 -> R_crc
         | 4 -> R_decode
         | 5 -> R_ttl_expired
         | 6 -> R_no_route
         | 7 -> R_ingress_filter
         | 8 -> R_stale
         | 9 -> R_duplicate
         | 10 -> R_other (R.string r)
         | 11 -> R_blackhole
         | 12 -> R_corrupt
         | 13 -> R_dup
         | 14 -> R_reorder_overflow
         | 15 -> R_congestion
         | 16 -> R_endpoint_crash
         | 17 -> R_path_down
         | n -> raise (R.Decode_error (Printf.sprintf "unknown reason tag %d" n)))
    | 3 -> Enqueued
    | 4 -> Dequeued
    | 5 -> Timer_set
    | 6 -> Timer_fired
    | 7 -> Retransmit
    | 8 -> Handoff
    | 9 -> Route_update
    | 10 -> Custom (R.string r)
    | n -> raise (R.Decode_error (Printf.sprintf "unknown kind tag %d" n))
  in
  let flow = Int64.to_int (R.u64 r) in
  let rank = R.u16 r in
  let seq = Int64.to_int (R.u64 r) in
  let size = Int64.to_int (R.u64 r) in
  let span = Int64.to_int (R.u64 r) in
  { time; component; kind; flow; rank; seq; size; span }

let encode_events events =
  let module W = Codec.Writer in
  let w = W.create () in
  W.u32 w (List.length events);
  List.iter (write_event w) events;
  W.contents w

let decode_events data =
  let module R = Codec.Reader in
  try
    let r = R.create data in
    let n = R.u32 r in
    let events = List.init n (fun _ -> read_event r) in
    R.expect_end r;
    Ok events
  with R.Decode_error msg -> Error msg

(* ---------- JSONL codec ---------- *)

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(* Shortest representation that round-trips exactly. *)
let json_float f =
  let s = Printf.sprintf "%.12g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let event_to_json e =
  let b = Buffer.create 96 in
  Buffer.add_string b "{\"t\":";
  Buffer.add_string b (json_float e.time);
  Buffer.add_string b ",\"c\":\"";
  json_escape b e.component;
  Buffer.add_string b "\",\"k\":\"";
  (match e.kind with
   | Pdu_sent -> Buffer.add_string b "pdu_sent"
   | Pdu_recvd -> Buffer.add_string b "pdu_recvd"
   | Pdu_dropped _ -> Buffer.add_string b "pdu_dropped"
   | Enqueued -> Buffer.add_string b "enqueued"
   | Dequeued -> Buffer.add_string b "dequeued"
   | Timer_set -> Buffer.add_string b "timer_set"
   | Timer_fired -> Buffer.add_string b "timer_fired"
   | Retransmit -> Buffer.add_string b "retransmit"
   | Handoff -> Buffer.add_string b "handoff"
   | Route_update -> Buffer.add_string b "route_update"
   | Custom _ -> Buffer.add_string b "custom");
  Buffer.add_char b '"';
  (match e.kind with
   | Pdu_dropped r ->
     Buffer.add_string b ",\"r\":\"";
     json_escape b (reason_to_string r);
     Buffer.add_char b '"'
   | Custom s ->
     Buffer.add_string b ",\"n\":\"";
     json_escape b s;
     Buffer.add_char b '"'
   | _ -> ());
  let int_field name v =
    if v <> 0 then begin
      Buffer.add_string b ",\"";
      Buffer.add_string b name;
      Buffer.add_string b "\":";
      Buffer.add_string b (string_of_int v)
    end
  in
  int_field "flow" e.flow;
  int_field "rank" e.rank;
  int_field "seq" e.seq;
  int_field "size" e.size;
  int_field "span" e.span;
  Buffer.add_char b '}';
  Buffer.contents b

exception Json_error of string

(* Minimal parser for the flat objects we emit: string keys mapping to
   string or number values.  Not a general JSON parser. *)
let parse_flat_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Json_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        incr pos;
        if !pos >= n then fail "bad escape";
        (match s.[!pos] with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'n' -> Buffer.add_char b '\n'
         | 't' -> Buffer.add_char b '\t'
         | 'r' -> Buffer.add_char b '\r'
         | 'b' -> Buffer.add_char b '\b'
         | 'f' -> Buffer.add_char b '\012'
         | 'u' ->
           if !pos + 4 >= n then fail "truncated \\u escape";
           (match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
            | Some code when code < 128 -> Buffer.add_char b (Char.chr code)
            | Some _ -> Buffer.add_char b '?'
            | None -> fail "bad \\u escape");
           pos := !pos + 4
         | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
        incr pos;
        go ()
      | c ->
        Buffer.add_char b c;
        incr pos;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    skip_ws ();
    let start = !pos in
    while
      !pos < n
      && (match s.[!pos] with
          | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
          | _ -> false)
    do
      incr pos
    done;
    if start = !pos then fail "expected value";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  expect '{';
  let fields = ref [] in
  skip_ws ();
  if !pos < n && s.[!pos] = '}' then incr pos
  else begin
    let rec members () =
      let key = parse_string () in
      expect ':';
      skip_ws ();
      let v =
        if !pos < n && s.[!pos] = '"' then `S (parse_string ())
        else `N (parse_number ())
      in
      fields := (key, v) :: !fields;
      skip_ws ();
      if !pos < n && s.[!pos] = ',' then begin
        incr pos;
        members ()
      end
      else expect '}'
    in
    members ()
  end;
  skip_ws ();
  if !pos <> n then fail "trailing data";
  List.rev !fields

let event_of_json line =
  match parse_flat_json line with
  | exception Json_error msg -> Error msg
  | fields ->
    let str name =
      match List.assoc_opt name fields with Some (`S s) -> Some s | _ -> None
    in
    let num name =
      match List.assoc_opt name fields with Some (`N f) -> Some f | _ -> None
    in
    let int name = match num name with Some f -> int_of_float f | None -> 0 in
    (match (num "t", str "c", str "k") with
     | Some time, Some component, Some k ->
       let kind =
         match k with
         | "pdu_sent" -> Ok Pdu_sent
         | "pdu_recvd" -> Ok Pdu_recvd
         | "pdu_dropped" ->
           Ok
             (Pdu_dropped
                (match str "r" with
                 | Some r -> reason_of_string r
                 | None -> R_other "unknown"))
         | "enqueued" -> Ok Enqueued
         | "dequeued" -> Ok Dequeued
         | "timer_set" -> Ok Timer_set
         | "timer_fired" -> Ok Timer_fired
         | "retransmit" -> Ok Retransmit
         | "handoff" -> Ok Handoff
         | "route_update" -> Ok Route_update
         | "custom" ->
           Ok (Custom (match str "n" with Some n -> n | None -> ""))
         | k -> Error (Printf.sprintf "unknown event kind %S" k)
       in
       (match kind with
        | Error e -> Error e
        | Ok kind ->
          Ok
            {
              time;
              component;
              kind;
              flow = int "flow";
              rank = int "rank";
              seq = int "seq";
              size = int "size";
              span = int "span";
            })
     | _ -> Error "missing required field (t, c or k)")
