(** Happens-before race detection over domain-parallel code (the
    "domain-race sanitizer" core).

    The coming sharded engine moves one trial's state across several
    domains; an unsynchronized cross-domain access that is merely a
    performance bug today becomes a determinism (and memory-safety)
    bug there.  This module is a vector-clock happens-before detector
    for the *annotated* shared locations of the codebase: parallel
    drivers declare their fork/join structure ({!fork}, {!child_begin},
    {!child_end}, {!join}), their synchronisation objects ({!acquire},
    {!release} around [Atomic] operations and locks), and the shared
    cells they read and write ({!read}, {!write}).  Two accesses to the
    same cell race when neither happens-before the other and at least
    one is a write; every such pair is recorded.

    Everything is a no-op until {!arm} flips the global switch (one
    [Atomic.get] per call site), so annotations can stay in the hot
    path permanently — the same discipline as {!Invariant}.  Unlike
    {!Invariant}, the state here is deliberately {e cross}-domain (a
    mutex-guarded store): the whole point is to observe accesses from
    several domains against each other.

    The structured-diagnostic view ([SAN_RACE_*] codes) lives in
    [Rina_check.Sanitizer.Race]. *)

val arm : unit -> unit
(** Switch detection on and clear previously recorded state (cells,
    threads, races).  Arm {e before} forking workers. *)

val disarm : unit -> unit

val armed : unit -> bool

val clear : unit -> unit
(** Forget recorded races and cells without changing the switch. *)

(** {2 Fork/join structure} *)

type handle
(** One parent→child spawn edge. *)

val fork : unit -> handle
(** Parent side, before [Domain.spawn]: snapshot the parent's clock
    for the child and advance the parent past the fork. *)

val child_begin : handle -> unit
(** First statement inside the spawned function: the child inherits
    everything the parent did before the fork. *)

val child_end : handle -> unit
(** Last statement inside the spawned function: publish the child's
    final clock for {!join}. *)

val join : handle -> unit
(** Parent side, after [Domain.join]: everything the child did
    happens-before everything the parent does next. *)

(** {2 Synchronisation objects} *)

type sync

val sync : string -> sync
(** A named synchronisation object standing for an [Atomic.t] or a
    mutex.  An acquire/release pair through the same object creates a
    happens-before edge from the releaser to the acquirer. *)

val acquire : sync -> unit
(** Call before (or at) the synchronising read — [Atomic.get],
    [Mutex.lock], the read half of [Atomic.fetch_and_add]. *)

val release : sync -> unit
(** Call after the synchronising write — [Atomic.set], [Mutex.unlock],
    the write half of [Atomic.fetch_and_add]. *)

(** {2 Shared cells} *)

type cell

val cell : string -> cell
(** Declare one shared location (a mutable field, an array slot, a DLS
    table reached cross-domain).  The label names it in reports. *)

val read : cell -> unit
val write : cell -> unit

(** {2 Results} *)

type race = {
  site : string;  (** the cell's label *)
  kind : [ `Write_write | `Read_write | `Write_read ];
      (** earlier access, then later access *)
  first_domain : int;
  second_domain : int;
}

val races : unit -> race list
(** Distinct (site, kind) pairs recorded since the last {!arm}/{!clear},
    sorted by site then kind. *)
