(* Parallel-array layout: keys in an unboxed float array, sequence
   numbers and payloads alongside.  A push allocates nothing beyond
   amortised array growth (the classic record-of-entries layout costs a
   record plus a boxed float per insert), and the hot comparisons read
   unboxed floats. *)

type 'a t = {
  mutable keys : floatarray;
  mutable seqs : int array;
  mutable vals : 'a array;
  mutable size : int;
  mutable next_seq : int;
}

let create () =
  {
    keys = Float.Array.create 0;
    seqs = [||];
    vals = [||];
    size = 0;
    next_seq = 0;
  }

let length h = h.size

let is_empty h = h.size = 0

(* [i] sorts before [j] if its key is smaller, or on equal keys if it
   was inserted earlier — this gives FIFO semantics for simultaneous
   events, which keeps simulations deterministic. *)
let before h i j =
  let ki = Float.Array.get h.keys i and kj = Float.Array.get h.keys j in
  ki < kj || (ki = kj && h.seqs.(i) < h.seqs.(j))

let swap h i j =
  let k = Float.Array.get h.keys i in
  Float.Array.set h.keys i (Float.Array.get h.keys j);
  Float.Array.set h.keys j k;
  let s = h.seqs.(i) in
  h.seqs.(i) <- h.seqs.(j);
  h.seqs.(j) <- s;
  let v = h.vals.(i) in
  h.vals.(i) <- h.vals.(j);
  h.vals.(j) <- v

(* Single growth path: the value being inserted doubles as the fill
   element, so growing from empty needs no reachable dummy and there is
   no [vals.(0)] access to go out of bounds. *)
let ensure_room h value =
  let cap = Array.length h.vals in
  if h.size = cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    let keys = Float.Array.create ncap in
    Float.Array.blit h.keys 0 keys 0 h.size;
    let seqs = Array.make ncap 0 in
    Array.blit h.seqs 0 seqs 0 h.size;
    let vals = Array.make ncap value in
    Array.blit h.vals 0 vals 0 h.size;
    h.keys <- keys;
    h.seqs <- seqs;
    h.vals <- vals
  end

let sift_up h start =
  let i = ref start in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before h !i parent then begin
      swap h !i parent;
      i := parent
    end
    else continue := false
  done

let push_raw h key seq value =
  ensure_room h value;
  Float.Array.set h.keys h.size key;
  h.seqs.(h.size) <- seq;
  h.vals.(h.size) <- value;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let push h key value =
  let seq = h.next_seq in
  h.next_seq <- seq + 1;
  push_raw h key seq value

let reserve_seq h =
  let seq = h.next_seq in
  h.next_seq <- seq + 1;
  seq

let push_with_seq h ~key ~seq value =
  if seq >= h.next_seq then h.next_seq <- seq + 1;
  push_raw h key seq value

let sift_down_from h start =
  let i = ref start in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < h.size && before h l !smallest then smallest := l;
    if r < h.size && before h r !smallest then smallest := r;
    if !smallest <> !i then begin
      swap h !smallest !i;
      i := !smallest
    end
    else continue := false
  done

(* Unboxed access: the engine's event loop reads the top fields and
   drops the minimum without materialising an option or a tuple. *)

let top_key h =
  if h.size = 0 then invalid_arg "Heap.top_key: empty heap";
  Float.Array.get h.keys 0

let top_value h =
  if h.size = 0 then invalid_arg "Heap.top_value: empty heap";
  h.vals.(0)

let drop_min h =
  if h.size = 0 then invalid_arg "Heap.drop_min: empty heap";
  h.size <- h.size - 1;
  if h.size > 0 then begin
    Float.Array.set h.keys 0 (Float.Array.get h.keys h.size);
    h.seqs.(0) <- h.seqs.(h.size);
    h.vals.(0) <- h.vals.(h.size);
    sift_down_from h 0
  end

let pop h =
  if h.size = 0 then None
  else begin
    let key = Float.Array.get h.keys 0 and value = h.vals.(0) in
    drop_min h;
    Some (key, value)
  end

let peek h =
  if h.size = 0 then None else Some (Float.Array.get h.keys 0, h.vals.(0))

(* Drop every entry whose value fails [keep], then rebuild the heap
   property bottom-up (Floyd, O(n)).  Seq numbers are untouched, so
   FIFO ordering among surviving equal-key entries is preserved. *)
let compact h ~keep =
  let kept = ref 0 in
  for i = 0 to h.size - 1 do
    if keep h.vals.(i) then begin
      if !kept <> i then begin
        Float.Array.set h.keys !kept (Float.Array.get h.keys i);
        h.seqs.(!kept) <- h.seqs.(i);
        h.vals.(!kept) <- h.vals.(i)
      end;
      incr kept
    end
  done;
  let removed = h.size - !kept in
  h.size <- !kept;
  for i = (h.size / 2) - 1 downto 0 do
    sift_down_from h i
  done;
  removed

let clear h =
  h.size <- 0;
  h.keys <- Float.Array.create 0;
  h.seqs <- [||];
  h.vals <- [||]
