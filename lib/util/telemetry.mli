(** Streaming telemetry registry: exact counters and mergeable sketches
    fed live from a {!Flight} tap.

    Where the flight recorder buffers (sampled) events for post-hoc
    analysis, a [Telemetry.t] aggregates {e every} event as it is
    emitted — {!install} hooks the registry into the recorder (done by
    [Rina_sim.Trace.attach ~telemetry]) and counters, drop timelines,
    probe distributions and span latencies are maintained online, in
    O(1) per event, regardless of the trace sample rate.  This is what
    keeps a 10^6-endpoint run observable without buffering 10^8 events.

    The aggregation splits in two: exact per-kind counts ride the
    {!Flight.tally} (mutable ints bumped inline by [emit], so counting
    a shed event costs two increments and no allocation), while
    {!observe} — the Flight tap — sees only kept events and does the
    table work: span-latency matching, per-reason drop timelines,
    probe sketches.

    {b Sharding contract} (the one the ROADMAP item-2 sharded engine
    inherits): each [Rina_exp.Par] worker owns a private registry —
    {!current}/{!set_current} are domain-local — and {!merge_into} is
    exact bucket-wise addition, associative and commutative, applied in
    input order by [Par.map_telemetry].  A merged registry is therefore
    byte-identical ({!to_jsonl}) between a sequential and a
    multi-domain run of the same trials.

    Latency is tracked for head-sampled spans only (see
    {!set_latency_ppm}); because sampling is span-uniform the sampled
    latency distribution is an unbiased estimate of the full one, and
    it matches the spans present in the sampled trace exactly. *)

type t

type snapshot = {
  at : float;  (** virtual time of the snapshot *)
  events : int;  (** events since the previous snapshot *)
  sent : int;
  recvd : int;
  dropped : int;
}

val create : ?series_bucket:float -> unit -> t
(** Fresh registry.  [series_bucket] (default [0.5] s) is the interval
    width of every time series in this registry; registries merge only
    when their widths agree. *)

val series_bucket : t -> float

val install : t -> unit
(** Hook this registry into the domain's flight recorder: the tally
    for exact counts of every event, {!observe} as the tap for the
    kept ones.  [Rina_sim.Trace.attach ~telemetry] calls this. *)

val uninstall : unit -> unit
(** Remove the domain's tally and tap. *)

val tally : t -> Flight.tally
(** The registry's hot counters (shared with the recorder while
    {!install}ed). *)

val observe : t -> Flight.event -> unit
(** The Flight tap: fold one {e kept} event into the registry —
    span-latency matching, drop timelines, probe sketches.  Exact
    counts (including shed events) ride the {!tally} instead. *)

val set_latency_ppm : t -> int -> unit
(** Keep rate (parts-per-million) for span-latency tracking; set by
    [Trace.attach] to match the trace sample rate.  Default: track
    every span. *)

val latency_ppm : t -> int

(** {2 Direct instrumentation} *)

val count : ?n:int -> t -> string -> unit
(** Bump a named auxiliary counter (created on first use). *)

val counter : t -> string -> int
(** Value of a built-in ([events], [sent], [recvd], [dropped],
    [retransmit], [timer], [latency_pending]) or auxiliary counter;
    0 when absent. *)

val add_sample : t -> string -> float -> unit
(** Add one sample to a named histogram (created on first use). *)

val hist : t -> string -> Sketch.Hist.t option
val series : t -> string -> Sketch.Series.t option

val hist_names : t -> string list
(** Sorted. *)

val series_names : t -> string list
(** Sorted. *)

val counter_names : t -> string list
(** Built-in counter names in canonical order, then auxiliaries
    sorted. *)

(** {2 Snapshots} *)

val snap : t -> now:float -> snapshot
(** Record (and return) the interval deltas since the previous
    snapshot, and fold the interval's sent/recvd counts into the
    ["sent"]/["recvd"] time series (at the interval midpoint — shed
    frames never reach the tap, so the timelines are snapshot-fed).
    Driven by [Rina_sim.Trace.snapshots] off the engine's timer
    wheel. *)

val snapshots : t -> snapshot list
(** In recording order. *)

(** {2 Merge and serialisation} *)

val merge_into : into:t -> t -> unit
(** Exact shard merge: counters and sketch buckets add, snapshot lists
    concatenate ([into]'s first), pending latency probes of the merged
    shard are folded into the [latency_pending] counter.
    @raise Invalid_argument when series bucket widths differ. *)

val to_jsonl : t -> string
(** Canonical JSONL export — fixed line order (meta, counters,
    snapshots, histograms, series; names sorted), canonical number
    formatting — so equal registries serialise byte-identically. *)

val of_jsonl : string -> (t, string) result
(** Inverse of {!to_jsonl}; errors carry a line number. *)

val load_jsonl : string -> (t, string) result
(** Read a stats file written from {!to_jsonl}. *)

(** {2 Per-domain shard registry} *)

val current : unit -> t option
(** This domain's registry, if a parallel runner installed one. *)

val set_current : t option -> unit
