(** Flight recorder: a domain-global stream of typed simulation events.

    Every layer of the stack — engine timers, links, the wireless
    medium, EFCP, the RMT, RIB/RIEP management, routing and the TCP/IP
    baseline — emits into one shared schema, so a single trace can
    follow a PDU down the DIF recursion, across relays and back up.

    Tracing is off by default.  Emission sites follow the {!Invariant}
    pattern: each is guarded by [if enabled () then emit ...], so the
    disabled cost is a domain-local load and a branch with no
    allocation.  {!emit} itself does not re-check the flag.

    The switch, clock and sink live in domain-local storage: each
    domain of a parallel trial sweep ([Rina_exp.Par]) has its own
    recorder, so workers never observe each other's tracing state.

    [Rina_sim.Trace] installs the clock and sink hooks when a trace is
    attached; this module stays free of engine and file dependencies so
    it can sit at the bottom of the library stack. *)

(** Why a PDU (or frame) was dropped. *)
type reason =
  | R_queue_full
  | R_link_down
  | R_blackhole
  | R_loss
  | R_crc
  | R_decode
  | R_ttl_expired
  | R_no_route
  | R_ingress_filter
  | R_stale
  | R_duplicate
  | R_corrupt  (** SDU-protection verification failed (mangled frame) *)
  | R_dup  (** duplicate suppressed by EFCP (cache or window) *)
  | R_reorder_overflow  (** EFCP reorder buffer full *)
  | R_other of string

type kind =
  | Pdu_sent
  | Pdu_recvd
  | Pdu_dropped of reason
  | Enqueued
  | Dequeued
  | Timer_set
  | Timer_fired
  | Retransmit
  | Handoff
  | Route_update
  | Custom of string
      (** Component-specific events, including legacy
          [Trace.record] strings and periodic probe samples. *)

type event = {
  time : float;
  component : string;
  kind : kind;
  flow : int;  (** flow identity (CEP / port / tuple hash); 0 = none *)
  rank : int;  (** DIF rank; 0 = unknown / not applicable *)
  seq : int;   (** sequence number; 0 = none *)
  size : int;  (** bytes for PDU events, sampled value for probes *)
  span : int;  (** trace id joining one PDU's events across layers *)
}

val enabled : unit -> bool
(** This domain's tracing switch, [false] by default.  Guard every
    emission site with [if enabled () then ...]. *)

val set_enabled : bool -> unit

val set_clock : (unit -> float) -> unit
(** Source of event timestamps; installed by [Trace.attach] to read the
    engine's virtual clock.  Defaults to a constant [0.]. *)

val set_sink : (event -> unit) -> unit
(** Where emitted events go; installed by [Trace.attach].  Defaults to
    dropping events. *)

val emit :
  component:string ->
  ?flow:int ->
  ?rank:int ->
  ?seq:int ->
  ?size:int ->
  ?span:int ->
  kind ->
  unit
(** Stamp an event with the current clock time and pass it to this
    domain's sink.  Only call under [enabled ()] (the guard lives at
    the call site so the disabled path allocates nothing). *)

val span_of : flow:int -> seq:int -> int
(** Deterministic trace id for a PDU, mixed from its flow key and
    sequence number, so sender, relays and receiver compute the same id
    with nothing extra on the wire.  Always positive and non-zero. *)

val reason_to_string : reason -> string
val reason_of_string : string -> reason
(** Inverse of {!reason_to_string} for the built-in reasons; any other
    string maps to [R_other]. *)

val kind_to_string : kind -> string
(** Display form; [Custom s] renders as [s] so legacy
    [Trace.record] strings round-trip unchanged. *)

(** Growable event buffer with O(1) amortised append. *)
module Buf : sig
  type t

  val create : unit -> t
  val add : t -> event -> unit
  val length : t -> int

  val get : t -> int -> event
  (** @raise Invalid_argument when out of bounds. *)

  val iter : (event -> unit) -> t -> unit
  val to_list : t -> event list
  val clear : t -> unit
end

(** {2 Binary codec} *)

val write_event : Codec.Writer.t -> event -> unit

val read_event : Codec.Reader.t -> event
(** @raise Codec.Reader.Decode_error on malformed input. *)

val encode_events : event list -> bytes
val decode_events : bytes -> (event list, string) result

(** {2 JSONL codec}

    One event per line, e.g.
    [{"t":1.25,"c":"efcp","k":"pdu_dropped","r":"queue_full","flow":3,"seq":7,"size":500,"span":129}].
    Zero-valued numeric fields are omitted on output and default to 0
    when absent on input. *)

val event_to_json : event -> string
val event_of_json : string -> (event, string) result
