(** Flight recorder: a domain-global stream of typed simulation events.

    Every layer of the stack — engine timers, links, the wireless
    medium, EFCP, the RMT, RIB/RIEP management, routing and the TCP/IP
    baseline — emits into one shared schema, so a single trace can
    follow a PDU down the DIF recursion, across relays and back up.

    Tracing is off by default.  Emission sites are guarded: hot paths
    fetch the recorder once ([let r = cur () in if on r then emit_to r
    ...]), cold paths use [if enabled () then emit ...] — either way
    the disabled cost is a domain-local load and a branch with no
    allocation, and the emit functions do not re-check the flag.

    The switch, clock and sink live in domain-local storage: each
    domain of a parallel trial sweep ([Rina_exp.Par]) has its own
    recorder, so workers never observe each other's tracing state.

    [Rina_sim.Trace] installs the clock and sink hooks when a trace is
    attached; this module stays free of engine and file dependencies so
    it can sit at the bottom of the library stack. *)

(** Why a PDU (or frame) was dropped. *)
type reason =
  | R_queue_full
  | R_link_down
  | R_blackhole
  | R_loss
  | R_crc
  | R_decode
  | R_ttl_expired
  | R_no_route
  | R_ingress_filter
  | R_stale
  | R_duplicate
  | R_corrupt  (** SDU-protection verification failed (mangled frame) *)
  | R_dup  (** duplicate suppressed by EFCP (cache or window) *)
  | R_reorder_overflow  (** EFCP reorder buffer full *)
  | R_congestion  (** overflow of a queue already past its ECN mark threshold *)
  | R_endpoint_crash
      (** frame was in flight (or held back by a mangler) toward an
          endpoint that crashed before delivery *)
  | R_path_down  (** PDU steered onto a path whose health monitor holds it Down *)
  | R_other of string

type kind =
  | Pdu_sent
  | Pdu_recvd
  | Pdu_dropped of reason
  | Enqueued
  | Dequeued
  | Timer_set
  | Timer_fired
  | Retransmit
  | Handoff
  | Route_update
  | Custom of string
      (** Component-specific events, including legacy
          [Trace.record] strings and periodic probe samples. *)

type event = {
  time : float;
  component : string;
  kind : kind;
  flow : int;  (** flow identity (CEP / port / tuple hash); 0 = none *)
  rank : int;  (** DIF rank; 0 = unknown / not applicable *)
  seq : int;   (** sequence number; 0 = none *)
  size : int;  (** bytes for PDU events, sampled value for probes *)
  span : int;  (** trace id joining one PDU's events across layers *)
}

type recorder
(** This domain's recorder state: switch, clock, sink, sample rate,
    tally and tap.  Obtained from {!cur}; one domain-local lookup
    hands a hot emission site everything it needs. *)

val cur : unit -> recorder
(** The current domain's recorder (one domain-local-storage read —
    the only one a hot site should pay). *)

val on : recorder -> bool
(** The recorder's tracing switch.  The hot-site idiom is
    [let r = Flight.cur () in if Flight.on r then Flight.emit_to r ...] —
    guard and emission share a single lookup. *)

val enabled : unit -> bool
(** [on (cur ())] — this domain's tracing switch, [false] by default.
    Convenience for cold sites; hot paths should hold the {!cur}
    recorder instead. *)

val set_enabled : bool -> unit

val set_clock : (unit -> float) -> unit
(** Source of event timestamps; installed by [Trace.attach] to read the
    engine's virtual clock.  Defaults to a constant [0.]. *)

val set_sink : (event -> unit) -> unit
(** Where emitted events go; installed by [Trace.attach].  Defaults to
    dropping events. *)

(** Exact per-kind event counts, bumped inline by {!emit} for every
    event — kept or shed — whenever a tally is installed.  A plain
    record of mutable ints: counting a shed event costs two increments,
    no allocation, no clock read, no indirect call.  This is the hot
    half of online aggregation; [Rina_util.Telemetry] owns one tally
    per registry and derives its counters from it. *)
type tally = {
  mutable t_events : int;
  mutable t_sent : int;
  mutable t_recvd : int;
  mutable t_dropped : int;
  mutable t_retransmit : int;
  mutable t_timer : int;  (** [Timer_set] + [Timer_fired] *)
}

val create_tally : unit -> tally
(** All-zero tally. *)

val set_tally : tally option -> unit
(** Install ([Some]) or remove ([None], the default) this domain's
    tally. *)

val set_tap : (event -> unit) option -> unit
(** Streaming observer for every {e kept} event — the sampled spans
    plus the landmark kinds — called just before the sink.  This is
    the cold half of online aggregation: span-latency matching, drop
    timelines and probe distributions ride the tap, while the exact
    counts of shed events ride the {!tally}.  [None] (the default)
    removes the tap. *)

(** {2 Deterministic head sampling}

    With a sample rate below 1, the sink receives only events whose
    span id the hash {!span_kept} keeps, plus low-volume landmark
    kinds ([Custom] probes and markers, drops, [Handoff],
    [Route_update]).  Span-less high-volume events (opaque link
    frames, raw timer churn) are shed entirely — their exact counts
    survive in the {!tally}.  The
    keep/drop decision is a pure function of the span id, so a kept
    span keeps {e all} of its events across every layer, and sampled
    traces are byte-identical across replays and across
    [Rina_exp.Par] domain fan-out. *)

val set_sample_rate : float -> unit
(** Set this domain's keep probability, in (0, 1].  [1.] (the default)
    keeps everything.
    @raise Invalid_argument outside (0, 1]. *)

val sample_ppm : unit -> int
(** Current keep rate in parts-per-million ([1_000_000] = keep all). *)

val ppm_of_rate : float -> int
(** Rate in (0, 1] to parts-per-million (at least 1).
    @raise Invalid_argument outside (0, 1]. *)

val span_kept : keep_ppm:int -> int -> bool
(** [span_kept ~keep_ppm span]: the pure per-span keep decision at
    [keep_ppm] parts-per-million.  Deterministic — no state, no
    clock — so replays and per-domain workers agree event by event. *)

val event_kept : keep_ppm:int -> span:int -> kind -> bool
(** The full keep/shed predicate {!emit} applies: landmark kinds
    (drops, [Custom], [Handoff], [Route_update]) always survive;
    everything else needs a span that {!span_kept} keeps. *)

val emit_to :
  recorder ->
  component:string ->
  ?flow:int ->
  ?rank:int ->
  ?seq:int ->
  ?size:int ->
  ?span:int ->
  kind ->
  unit
(** Count the event in the recorder's tally and, if the sampling
    decision keeps it, stamp it with the clock time and pass it to the
    tap and sink.  Only call under [on r] (the guard lives at the call
    site so the disabled path allocates nothing); a shed event is never
    constructed, so under sampling the common case costs a couple of
    increments. *)

val emit :
  component:string ->
  ?flow:int ->
  ?rank:int ->
  ?seq:int ->
  ?size:int ->
  ?span:int ->
  kind ->
  unit
(** [emit_to (cur ()) ...] — for cold sites; hot paths should hold the
    recorder. *)

val span_of : flow:int -> seq:int -> int
(** Deterministic trace id for a PDU, mixed from its flow key and
    sequence number, so sender, relays and receiver compute the same id
    with nothing extra on the wire.  Always positive and non-zero. *)

val reason_to_string : reason -> string
val reason_of_string : string -> reason
(** Inverse of {!reason_to_string} for the built-in reasons; any other
    string maps to [R_other]. *)

val kind_to_string : kind -> string
(** Display form; [Custom s] renders as [s] so legacy
    [Trace.record] strings round-trip unchanged. *)

(** Growable event buffer with O(1) amortised append, or — with a
    [capacity] — a bounded ring that keeps the newest [capacity] events
    and counts exactly how many old ones it overwrote. *)
module Buf : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** [capacity] 0 (the default) grows without bound; [capacity > 0]
      switches to ring mode: once full, each append overwrites the
      oldest event and increments {!dropped}.
      @raise Invalid_argument on negative capacity. *)

  val add : t -> event -> unit
  val length : t -> int

  val dropped : t -> int
  (** Exact count of events overwritten in ring mode (0 otherwise). *)

  val get : t -> int -> event
  (** Logical index 0 is the oldest retained event.
      @raise Invalid_argument when out of bounds. *)

  val iter : (event -> unit) -> t -> unit
  val to_list : t -> event list
  val clear : t -> unit
end

(** {2 Binary codec} *)

val write_event : Codec.Writer.t -> event -> unit

val read_event : Codec.Reader.t -> event
(** @raise Codec.Reader.Decode_error on malformed input. *)

val encode_events : event list -> bytes
val decode_events : bytes -> (event list, string) result

(** {2 JSONL codec}

    One event per line, e.g.
    [{"t":1.25,"c":"efcp","k":"pdu_dropped","r":"queue_full","flow":3,"seq":7,"size":500,"span":129}].
    Zero-valued numeric fields are omitted on output and default to 0
    when absent on input. *)

val event_to_json : event -> string
val event_of_json : string -> (event, string) result

(** {2 Flat-JSON helpers}

    Shared by the other JSONL emitters in the stack ({!Telemetry},
    stats files) so every line format in the repo parses the same
    way. *)

exception Json_error of string

val parse_flat_json : string -> (string * [ `S of string | `N of float ]) list
(** Parse one flat JSON object whose values are strings or numbers
    (exactly what {!event_to_json} and [Telemetry] emit).  Not a
    general JSON parser.
    @raise Json_error on malformed input. *)

val json_float : float -> string
(** Shortest decimal representation that round-trips the float
    exactly — the canonical number format for every JSONL file the
    stack writes. *)
