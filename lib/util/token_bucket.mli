(** Token-bucket rate limiter used by QoS policing in the RMT.

    Time is supplied by the caller (the simulator's virtual clock), so
    the bucket itself is clock-agnostic. *)

type t

val create : rate:float -> burst:float -> t
(** [rate] tokens per second refill, capacity [burst] tokens.
    @raise Invalid_argument if either is non-positive. *)

val try_take : t -> now:float -> float -> bool
(** [try_take t ~now n] consumes [n] tokens if available after
    refilling up to [now]; returns whether the take succeeded.
    @raise Invalid_argument if [n] is negative (a negative take would
    silently mint tokens). *)

val available : t -> now:float -> float
(** Tokens available at [now] (refill applied, nothing consumed). *)

val delay_until : t -> now:float -> float -> float
(** Seconds from [now] until [n] tokens will be available (0 if they
    already are; nothing is consumed).  A take larger than [burst] is
    clamped to [burst], matching what {!try_take} could ever grant —
    the EFCP pacer uses this to sleep exactly until its next send
    credit instead of polling.
    @raise Invalid_argument if [n] is negative. *)
