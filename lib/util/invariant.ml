type violation = { code : string; detail : string; mutable count : int }

(* Domain-local: each worker of a parallel trial sweep gets its own
   switch, store and hook, so one trial's sanitizer findings never
   bleed into another's. *)
type ctx = {
  mutable on : bool;
  store : (string, violation) Hashtbl.t;
  mutable on_violation : (code:string -> detail:string -> unit) option;
}

let key =
  Domain.DLS.new_key (fun () ->
      { on = false; store = Hashtbl.create 16; on_violation = None })

let ctx () = Domain.DLS.get key

let enabled () = (ctx ()).on

let set_enabled b = (ctx ()).on <- b

let set_on_violation hook = (ctx ()).on_violation <- hook

let record ~code detail =
  let c = ctx () in
  (match Hashtbl.find_opt c.store code with
   | Some v -> v.count <- v.count + 1
   | None -> Hashtbl.replace c.store code { code; detail; count = 1 });
  match c.on_violation with None -> () | Some f -> f ~code ~detail

let violations () =
  Hashtbl.fold (fun _ v acc -> v :: acc) (ctx ()).store []
  |> List.sort (fun a b -> String.compare a.code b.code)

let total () = Hashtbl.fold (fun _ v acc -> acc + v.count) (ctx ()).store 0

let clear () = Hashtbl.reset (ctx ()).store
