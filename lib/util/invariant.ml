let enabled = ref false

let set_enabled b = enabled := b

type violation = { code : string; detail : string; mutable count : int }

let store : (string, violation) Hashtbl.t = Hashtbl.create 16

let on_violation : (code:string -> detail:string -> unit) option ref = ref None

let record ~code detail =
  (match Hashtbl.find_opt store code with
   | Some v -> v.count <- v.count + 1
   | None -> Hashtbl.replace store code { code; detail; count = 1 });
  match !on_violation with None -> () | Some f -> f ~code ~detail

let violations () =
  Hashtbl.fold (fun _ v acc -> v :: acc) store []
  |> List.sort (fun a b -> String.compare a.code b.code)

let total () = Hashtbl.fold (fun _ v acc -> acc + v.count) store 0

let clear () = Hashtbl.reset store
