(* Streaming telemetry registry — the Flight aggregation pipeline.

   Hot-path discipline: exact per-kind counts ride the Flight [tally]
   (mutable int fields bumped inline by [emit], so a shed event costs
   two increments and nothing else), while [observe] — installed as the
   Flight tap — runs only on kept events: sampled spans and the
   landmark kinds.  Hashtable lookups are therefore reserved for rare
   events (drops, probes, handoffs) and the head-sampled latency
   spans. *)

let full_ppm = 1_000_000

type snapshot = {
  at : float;
  events : int;
  sent : int;
  recvd : int;
  dropped : int;
}

type t = {
  bucket : float;
  mutable lat_ppm : int;
  (* hot counters: the Flight tally, bumped inline by [emit] *)
  tally : Flight.tally;
  extras : (string, int ref) Hashtbl.t;
  hists : (string, Sketch.Hist.t) Hashtbl.t;
  series : (string, Sketch.Series.t) Hashtbl.t;
  sent_series : Sketch.Series.t;  (* aliases into [series] *)
  recvd_series : Sketch.Series.t;
  (* first-send time of head-sampled spans awaiting their receive *)
  pending : (int, float) Hashtbl.t;
  mutable pending_carry : int;  (* unmatched spans from merged shards *)
  mutable snaps : snapshot list;  (* newest first *)
  mutable s_at : float;
  mutable s_events : int;
  mutable s_sent : int;
  mutable s_recvd : int;
  mutable s_dropped : int;
}

let create ?(series_bucket = 0.5) () =
  if not (series_bucket > 0.) then
    invalid_arg "Telemetry.create: series_bucket <= 0";
  let sent_series = Sketch.Series.create ~bucket:series_bucket in
  let recvd_series = Sketch.Series.create ~bucket:series_bucket in
  let series = Hashtbl.create 8 in
  Hashtbl.add series "sent" sent_series;
  Hashtbl.add series "recvd" recvd_series;
  {
    bucket = series_bucket;
    lat_ppm = full_ppm;
    tally = Flight.create_tally ();
    extras = Hashtbl.create 8;
    hists = Hashtbl.create 8;
    series;
    sent_series;
    recvd_series;
    pending = Hashtbl.create 64;
    pending_carry = 0;
    snaps = [];
    s_at = 0.;
    s_events = 0;
    s_sent = 0;
    s_recvd = 0;
    s_dropped = 0;
  }

let series_bucket t = t.bucket
let set_latency_ppm t ppm = t.lat_ppm <- ppm
let latency_ppm t = t.lat_ppm
let tally t = t.tally

let hist_for t name =
  match Hashtbl.find_opt t.hists name with
  | Some h -> h
  | None ->
    let h = Sketch.Hist.create () in
    Hashtbl.add t.hists name h;
    h

let series_for t name =
  match Hashtbl.find_opt t.series name with
  | Some s -> s
  | None ->
    let s = Sketch.Series.create ~bucket:t.bucket in
    Hashtbl.add t.series name s;
    s

let count ?(n = 1) t name =
  match Hashtbl.find_opt t.extras name with
  | Some r -> r := !r + n
  | None -> Hashtbl.add t.extras name (ref n)

let add_sample t name v = Sketch.Hist.add (hist_for t name) v

let counter t name =
  match name with
  | "events" -> t.tally.Flight.t_events
  | "sent" -> t.tally.Flight.t_sent
  | "recvd" -> t.tally.Flight.t_recvd
  | "dropped" -> t.tally.Flight.t_dropped
  | "retransmit" -> t.tally.Flight.t_retransmit
  | "timer" -> t.tally.Flight.t_timer
  | "latency_pending" -> Hashtbl.length t.pending + t.pending_carry
  | name ->
    (match Hashtbl.find_opt t.extras name with Some r -> !r | None -> 0)

let fixed_counters =
  [ "events"; "sent"; "recvd"; "dropped"; "retransmit"; "timer"; "latency_pending" ]

let counter_names t =
  let extras =
    Hashtbl.fold (fun k _ acc -> k :: acc) t.extras []
    |> List.sort compare
  in
  fixed_counters @ extras

let hist t name = Hashtbl.find_opt t.hists name
let series t name = Hashtbl.find_opt t.series name

let sorted_names tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare

let hist_names t = sorted_names t.hists
let series_names t = sorted_names t.series

let span_tracked t span =
  span <> 0
  && (t.lat_ppm >= full_ppm || Flight.span_kept ~keep_ppm:t.lat_ppm span)

(* [observe t] is the function installed as the Flight tap, so it sees
   only kept events: sampled spans plus the landmark kinds (drops,
   probes, handoffs, route updates).  Counts of shed events ride the
   tally, bumped inline by [Flight.emit]. *)
let observe t (e : Flight.event) =
  match e.kind with
  | Flight.Pdu_sent ->
    if span_tracked t e.span && not (Hashtbl.mem t.pending e.span) then
      Hashtbl.add t.pending e.span e.time
  | Flight.Pdu_recvd ->
    if e.span <> 0 then begin
      match Hashtbl.find_opt t.pending e.span with
      | Some t0 ->
        Hashtbl.remove t.pending e.span;
        Sketch.Hist.add (hist_for t "latency") (e.time -. t0)
      | None -> ()
    end
  | Flight.Pdu_dropped r ->
    Sketch.Series.add (series_for t ("drop:" ^ Flight.reason_to_string r)) e.time
  | Flight.Handoff -> count t "handoff"
  | Flight.Route_update -> count t "route_update"
  | Flight.Custom "probe" ->
    Sketch.Hist.add (hist_for t ("probe:" ^ e.component)) (float_of_int e.size)
  | Flight.Custom (("ecn_mark" | "pushback_mark") as mark) ->
    (* congestion marking is a landmark, never sampled away, so these
       counters are exact — `rina_stats` shows how hard the AQM and
       the layer push-back worked during the run *)
    count t mark
  | Flight.Custom (("path_up" | "path_suspect" | "path_down") as transition) ->
    (* path-health transitions are landmarks too: exact counts of how
       often the multipath monitor demoted and revived paths *)
    count t transition
  | Flight.Custom _ | Flight.Timer_set | Flight.Timer_fired | Flight.Retransmit
  | Flight.Enqueued | Flight.Dequeued ->
    ()

let install t =
  Flight.set_tally (Some t.tally);
  Flight.set_tap (Some (observe t))

let uninstall () =
  Flight.set_tally None;
  Flight.set_tap None

(* ---------- snapshots ---------- *)

let snap t ~now =
  let y = t.tally in
  let s =
    {
      at = now;
      events = y.Flight.t_events - t.s_events;
      sent = y.Flight.t_sent - t.s_sent;
      recvd = y.Flight.t_recvd - t.s_recvd;
      dropped = y.Flight.t_dropped - t.s_dropped;
    }
  in
  (* The sent/recvd timelines are fed from snapshot deltas (shed frames
     never reach the tap); each interval's count is recorded at the
     interval's midpoint so it lands in the series bucket covering the
     time the traffic actually flowed. *)
  let mid = 0.5 *. (t.s_at +. now) in
  if s.sent > 0 then Sketch.Series.add ~n:s.sent t.sent_series mid;
  if s.recvd > 0 then Sketch.Series.add ~n:s.recvd t.recvd_series mid;
  t.s_at <- now;
  t.s_events <- y.Flight.t_events;
  t.s_sent <- y.Flight.t_sent;
  t.s_recvd <- y.Flight.t_recvd;
  t.s_dropped <- y.Flight.t_dropped;
  t.snaps <- s :: t.snaps;
  s

let snapshots t = List.rev t.snaps

(* ---------- merge ---------- *)

let merge_into ~into other =
  if into.bucket <> other.bucket then
    invalid_arg "Telemetry.merge_into: series bucket widths differ";
  into.lat_ppm <- min into.lat_ppm other.lat_ppm;
  let a = into.tally and b = other.tally in
  a.Flight.t_events <- a.Flight.t_events + b.Flight.t_events;
  a.Flight.t_sent <- a.Flight.t_sent + b.Flight.t_sent;
  a.Flight.t_recvd <- a.Flight.t_recvd + b.Flight.t_recvd;
  a.Flight.t_dropped <- a.Flight.t_dropped + b.Flight.t_dropped;
  a.Flight.t_retransmit <- a.Flight.t_retransmit + b.Flight.t_retransmit;
  a.Flight.t_timer <- a.Flight.t_timer + b.Flight.t_timer;
  Hashtbl.iter (fun name r -> count ~n:!r into name) other.extras;
  Hashtbl.iter
    (fun name h -> Sketch.Hist.merge_into ~into:(hist_for into name) h)
    other.hists;
  Hashtbl.iter
    (fun name s -> Sketch.Series.merge_into ~into:(series_for into name) s)
    other.series;
  into.pending_carry <-
    into.pending_carry + other.pending_carry + Hashtbl.length other.pending;
  into.snaps <- other.snaps @ into.snaps;
  into.s_at <- Float.max into.s_at other.s_at;
  into.s_events <- a.Flight.t_events;
  into.s_sent <- a.Flight.t_sent;
  into.s_recvd <- a.Flight.t_recvd;
  into.s_dropped <- a.Flight.t_dropped

(* ---------- canonical JSONL ---------- *)

let esc s =
  let b = Buffer.create (String.length s + 4) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let pack pairs =
  String.concat ";" (List.map (fun (i, c) -> Printf.sprintf "%d:%d" i c) pairs)

let unpack s =
  if s = "" then Ok []
  else
    let parts = String.split_on_char ';' s in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest -> (
        match String.index_opt p ':' with
        | None -> Error (Printf.sprintf "bad bucket entry %S" p)
        | Some i -> (
          let a = String.sub p 0 i in
          let b = String.sub p (i + 1) (String.length p - i - 1) in
          match (int_of_string_opt a, int_of_string_opt b) with
          | Some idx, Some n -> go ((idx, n) :: acc) rest
          | _ -> Error (Printf.sprintf "bad bucket entry %S" p)))
    in
    go [] parts

let to_jsonl t =
  let b = Buffer.create 1024 in
  Printf.bprintf b "{\"kind\":\"meta\",\"v\":1,\"series_bucket\":%s,\"latency_ppm\":%d}\n"
    (Flight.json_float t.bucket) t.lat_ppm;
  List.iter
    (fun name ->
      Printf.bprintf b "{\"kind\":\"counter\",\"name\":\"%s\",\"n\":%d}\n"
        (esc name) (counter t name))
    (counter_names t);
  List.iter
    (fun (s : snapshot) ->
      Printf.bprintf b
        "{\"kind\":\"snapshot\",\"t\":%s,\"events\":%d,\"sent\":%d,\"recvd\":%d,\"dropped\":%d}\n"
        (Flight.json_float s.at) s.events s.sent s.recvd s.dropped)
    (snapshots t);
  List.iter
    (fun name ->
      let h = Hashtbl.find t.hists name in
      Printf.bprintf b "{\"kind\":\"hist\",\"name\":\"%s\",\"zero\":%d,\"buckets\":\"%s\"}\n"
        (esc name) (Sketch.Hist.zero_count h) (pack (Sketch.Hist.buckets h)))
    (hist_names t);
  List.iter
    (fun name ->
      let s = Hashtbl.find t.series name in
      Printf.bprintf b
        "{\"kind\":\"series\",\"name\":\"%s\",\"bucket\":%s,\"total\":%d,\"counts\":\"%s\"}\n"
        (esc name)
        (Flight.json_float (Sketch.Series.bucket_width s))
        (Sketch.Series.total s)
        (pack (Sketch.Series.counts s)))
    (series_names t);
  Buffer.contents b

let of_jsonl text =
  let lines = String.split_on_char '\n' text in
  let t = ref None in
  let get_t () =
    match !t with
    | Some x -> x
    | None ->
      let x = create () in
      t := Some x;
      x
  in
  let err lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let rec go lineno = function
    | [] -> Ok (get_t ())
    | line :: rest when String.trim line = "" -> go (lineno + 1) rest
    | line :: rest -> (
      match Flight.parse_flat_json line with
      | exception Flight.Json_error msg -> err lineno msg
      | fields -> (
        let str name =
          match List.assoc_opt name fields with
          | Some (`S s) -> Some s
          | _ -> None
        in
        let num name =
          match List.assoc_opt name fields with
          | Some (`N f) -> Some f
          | _ -> None
        in
        let int name = match num name with Some f -> int_of_float f | None -> 0 in
        match str "kind" with
        | Some "meta" -> (
          match !t with
          | Some _ -> err lineno "duplicate meta line"
          | None ->
            let bucket =
              match num "series_bucket" with Some w when w > 0. -> w | _ -> 0.5
            in
            let x = create ~series_bucket:bucket () in
            x.lat_ppm <- (match num "latency_ppm" with
                          | Some p when p > 0. -> int_of_float p
                          | _ -> full_ppm);
            t := Some x;
            go (lineno + 1) rest)
        | Some "counter" -> (
          let x = get_t () in
          match str "name" with
          | None -> err lineno "counter without a name"
          | Some "events" ->
            x.tally.Flight.t_events <- int "n";
            go (lineno + 1) rest
          | Some "sent" ->
            x.tally.Flight.t_sent <- int "n";
            go (lineno + 1) rest
          | Some "recvd" ->
            x.tally.Flight.t_recvd <- int "n";
            go (lineno + 1) rest
          | Some "dropped" ->
            x.tally.Flight.t_dropped <- int "n";
            go (lineno + 1) rest
          | Some "retransmit" ->
            x.tally.Flight.t_retransmit <- int "n";
            go (lineno + 1) rest
          | Some "timer" ->
            x.tally.Flight.t_timer <- int "n";
            go (lineno + 1) rest
          | Some "latency_pending" ->
            x.pending_carry <- int "n";
            go (lineno + 1) rest
          | Some name ->
            count ~n:(int "n") x name;
            go (lineno + 1) rest)
        | Some "snapshot" ->
          let x = get_t () in
          let s =
            {
              at = (match num "t" with Some f -> f | None -> 0.);
              events = int "events";
              sent = int "sent";
              recvd = int "recvd";
              dropped = int "dropped";
            }
          in
          x.snaps <- s :: x.snaps;
          go (lineno + 1) rest
        | Some "hist" -> (
          let x = get_t () in
          match str "name" with
          | None -> err lineno "hist without a name"
          | Some name -> (
            match unpack (Option.value ~default:"" (str "buckets")) with
            | Error e -> err lineno e
            | Ok bs ->
              let h = Sketch.Hist.of_buckets ~zero:(int "zero") bs in
              Sketch.Hist.merge_into ~into:(hist_for x name) h;
              go (lineno + 1) rest))
        | Some "series" -> (
          let x = get_t () in
          match str "name" with
          | None -> err lineno "series without a name"
          | Some name -> (
            let bucket =
              match num "bucket" with Some w when w > 0. -> w | _ -> x.bucket
            in
            if bucket <> x.bucket then
              err lineno
                (Printf.sprintf "series bucket %g differs from registry %g"
                   bucket x.bucket)
            else
              match unpack (Option.value ~default:"" (str "counts")) with
              | Error e -> err lineno e
              | Ok cs ->
                let s = Sketch.Series.of_counts ~bucket cs in
                Sketch.Series.merge_into ~into:(series_for x name) s;
                go (lineno + 1) rest))
        | Some k -> err lineno (Printf.sprintf "unknown line kind %S" k)
        | None -> err lineno "line without a \"kind\" field"))
  in
  go 1 lines

let load_jsonl path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | text -> (
    match of_jsonl text with
    | Ok t -> Ok t
    | Error e -> Error (Printf.sprintf "%s: %s" path e))

(* ---------- per-domain shard registry ---------- *)

let dls_key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
let current () = Domain.DLS.get dls_key
let set_current o = Domain.DLS.set dls_key o
