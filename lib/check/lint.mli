(** Static analysis of declarative policy specs.

    [Policy_lang.parse] is fail-fast: it rejects the first syntax
    error and accepts anything well-formed, including configurations
    that can only produce garbage experiments (a retransmission-timer
    floor above its initial value, a DRR quantum smaller than the MTU,
    a dead interval shorter than the hello interval...).  The linter
    runs the full rule set over the whole spec and reports *every*
    finding as a structured {!Diag.t}, never raising and never
    stopping at the first problem — suitable for editors and CI.

    Rule codes are stable (documented in [docs/linting.md]):
    - [L001]–[L005]: structure — unknown sections and keys, duplicate
      keys, malformed lines, out-of-range or mistyped values.
    - [L101]–[L113]: cross-field consistency on the resolved policy
      (spec applied over [base]), e.g. [min_rto <= init_rto],
      [quantum] only under [kind = drr], [secret] iff password auth,
      [dead_interval > 2 x hello_interval],
      [keepalive_interval < dead_peer_timeout], zero-retry enrollment.
    - [L121]: shard-spec sanity — partly standalone (mailbox bound),
      partly topology-aware (shards requested without a positive
      verify lookahead).
    - [L201]–[L202]: topology-aware checks, only when [?topo] is
      given — TTL vs network diameter, window vs the
      bandwidth-delay product. *)

(** Summary of the network a spec is destined for. *)
type topo = {
  diameter : int;  (** longest shortest-path, in hops *)
  bottleneck_bit_rate : float;  (** narrowest link, bits/second *)
  rtt : float;  (** round-trip time across the longest path, seconds *)
  lookahead : float option;
      (** conservative lookahead of the topology's shard partition —
          the min effective delay over cross-shard adjacencies, as
          [rina_verify] derives it (V4xx); [None] when the topology
          declares no shard partition (or none of its edges cross).
          Gates rule L121. *)
}

val lint : ?base:Rina_core.Policy.t -> ?topo:topo -> string -> Diag.t list
(** Lint a spec text.  Structural findings carry the offending line;
    cross-field findings carry the line of the latest explicitly set
    participating key ([0] if the conflict comes entirely from
    [base], default {!Policy.default}).  The result is sorted with
    {!Diag.compare}.  An empty list means the spec is clean. *)

val clean : ?base:Rina_core.Policy.t -> ?topo:topo -> string -> bool
(** [clean spec] iff {!lint} reports no [Error]-severity finding
    (warnings allowed). *)

val rules : Diag.rule list
(** The stable [L]-code table for [rina_lint --list-rules]. *)
