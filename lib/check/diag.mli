(** Structured diagnostics shared by the policy linter and the
    simulation sanitizer.

    Every finding — a lint rule firing on a spec line, or a runtime
    invariant violated mid-simulation — is reported in the same shape,
    so CLI drivers and tests consume one stream regardless of where
    the problem was caught. *)

type severity =
  | Error    (** the configuration / run is wrong; CI should fail *)
  | Warning  (** suspicious but possibly intended *)

type t = {
  code : string;
      (** stable machine-readable rule code ([L0xx] structural lint,
          [L1xx] cross-field lint, [L2xx] topology-aware lint,
          [SAN_*] sanitizer) *)
  severity : severity;
  line : int;  (** 1-based spec line; [0] when not tied to a line *)
  message : string;
  hint : string option;  (** how to fix it, when we know *)
}

val make : ?hint:string -> ?line:int -> code:string -> severity:severity -> string -> t
(** [line] defaults to [0]. *)

val error : ?hint:string -> ?line:int -> string -> string -> t
(** [error code message] — convenience for {!make}. *)

val warning : ?hint:string -> ?line:int -> string -> string -> t

val compare : t -> t -> int
(** Order by line, then severity (errors first), then code. *)

val has_errors : t list -> bool

val errors : t list -> t list

val warnings : t list -> t list

val severity_to_string : severity -> string

val to_string : t -> string
(** [line 4: error[L101] message (hint: ...)] — single-line rendering
    used by [rina_lint]. *)

val pp : Format.formatter -> t -> unit

(** One row of the stable rule table ([rina_lint --list-rules]): the
    code a diagnostic can carry, the severity it fires at, and a
    one-line summary.  Each analysis module exports its own table
    ({!Lint.rules}, {!Verify.rules}, {!Sanitizer.rules}); the CLI
    concatenates them. *)
type rule = { r_code : string; r_severity : severity; r_summary : string }

val rule : code:string -> severity:severity -> string -> rule

val compare_rules : rule -> rule -> int
(** Order by code. *)
