(** Offline analysis of flight-recorder traces.

    Input is a plain {!Rina_util.Flight.event} list — from
    {!Rina_sim.Trace.typed_events} or {!Rina_sim.Trace.load_jsonl} —
    and every function tolerates out-of-order events, sorting where
    order matters.  This is the computational core of the [rina_trace]
    CLI; tests assert on these values rather than on printed text. *)

val latency_by_flow :
  Rina_util.Flight.event list -> (int * Rina_util.Stats.t) list
(** Per-flow one-way delay samples, keyed by the receiving event's
    [flow] field and sorted by it.  Each span contributes at most one
    sample: earliest [Pdu_sent]/[Retransmit] to earliest [Pdu_recvd]
    (first delivery), so retransmitted copies do not inflate the
    distribution. *)

val drop_breakdown : Rina_util.Flight.event list -> (string * int) list
(** [Pdu_dropped] counts per reason, most frequent first (ties sorted
    by reason name). *)

val delivery_gap :
  ?component:string ->
  Rina_util.Flight.event list ->
  (float * float) option
(** Widest interval between consecutive [Pdu_recvd] events as
    [(gap, start_time)], optionally restricted to components starting
    with [component] — the handoff interruption window.  [None] with
    fewer than two deliveries.  Same tie-breaking contract as
    {!Rina_sim.Trace.largest_gap}. *)

val blackouts :
  ?component:string ->
  ?rank:int ->
  Rina_util.Flight.event list ->
  (string * float * float option) list
(** Per-fault delivery interruption: for every fault-injector event
    ([Custom "fault:<label>"]) applied at time [a] and healed at the
    matching ["heal:<label>"] time [h] (or [a] when none), the widest
    interval between consecutive [Pdu_recvd] events overlapping
    [\[a, h\]], as [(label, a, gap)] sorted by apply time.  The gap may
    extend past the heal — that tail {e is} the recovery time.
    [gap = None] means delivery never resumed after [a] — an unbounded
    outage.  A fault with no deliveries before its heal is charged
    from [a] to the first delivery.  [component] restricts the
    deliveries considered, as in {!delivery_gap}; [rank] restricts
    them to one DIF level (in a stacked run the lower DIFs keep
    delivering management traffic through a higher-level outage). *)

val queue_timeline :
  Rina_util.Flight.event list -> (string * (float * int) list) list
(** Probe samples ([Custom "probe"] events) grouped by probe name:
    [(time, sampled value)] in time order — link queue depths and EFCP
    window occupancy. *)

val span_tree :
  ?max_spans:int ->
  Rina_util.Flight.event list ->
  (int * (float * string * string) list) list
(** Events sharing a per-PDU span id, in time order per span —
    [(time, component, kind label)] — spans ordered by first
    appearance.  Shows a PDU's path through the layers. *)

val sequence_diagram : ?max_spans:int -> Rina_util.Flight.event list -> string
(** Text rendering of {!span_tree} (default 10 spans): one block per
    span, one line per event, with [a -> b] markers where the PDU moves
    between components. *)

val sample_ppm : Rina_util.Flight.event list -> int option
(** Head-sampling keep rate (parts-per-million) recorded in the trace's
    [Custom "meta:sample_ppm"] marker; [None] for unsampled traces. *)

val scale_count : ppm:int -> int -> int
(** Scale a span-derived sample count back to a full-population
    estimate ([n * 10^6 / ppm]); identity when [ppm] means unsampled. *)

val summary : Rina_util.Flight.event list -> string
(** Event, component and span totals plus per-kind counts; sampled
    traces additionally report their keep rate and the estimated
    full-run span count. *)
