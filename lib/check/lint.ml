module Policy = Rina_core.Policy

type topo = {
  diameter : int;
  bottleneck_bit_rate : float;
  rtt : float;
  lookahead : float option;
}

(* ---------- spec schema ---------- *)

(* What a value must look like; mirrors the validation Policy_lang
   performs, but reported as diagnostics instead of a fail-fast
   Error. *)
type vkind = Pos_int | Nonneg_int | Nonneg_float | Enum of string list | Any_string

let schema =
  [
    ( "efcp",
      [
        ("window", Pos_int);
        ("mtu", Pos_int);
        ("init_rto", Nonneg_float);
        ("min_rto", Nonneg_float);
        ("max_rtx", Pos_int);
        ("ack_delay", Nonneg_float);
        ("rtx", Enum [ "selective"; "gbn"; "none" ]);
        ("cc", Enum [ "on"; "off" ]);
        ("sack_blocks", Nonneg_int);
        ("reorder_window", Pos_int);
        ("max_dup_cache", Nonneg_int);
      ] );
    ("scheduler", [ ("kind", Enum [ "fifo"; "priority"; "drr" ]); ("quantum", Pos_int) ]);
    ( "routing",
      [
        ("hello_interval", Nonneg_float);
        ("dead_interval", Nonneg_float);
        ("lsa_min_interval", Nonneg_float);
        ("refresh_ticks", Pos_int);
        ("keepalive_interval", Nonneg_float);
        ("dead_peer_timeout", Nonneg_float);
        ("lsa_max_age", Nonneg_float);
        ("anti_entropy_interval", Nonneg_float);
      ] );
    ( "enrollment",
      [
        ("enroll_timeout", Nonneg_float);
        ("enroll_retries", Nonneg_int);
        ("retry_backoff", Nonneg_float);
      ] );
    ("auth", [ ("kind", Enum [ "none"; "password" ]); ("secret", Any_string) ]);
    ("dif", [ ("max_ttl", Pos_int) ]);
    ( "telemetry",
      [
        ("trace_sample_rate", Nonneg_float);
        ("snapshot_interval", Nonneg_float);
        ("flight_ring_capacity", Nonneg_int);
      ] );
    ( "congestion",
      [
        ("mark_threshold", Nonneg_int);
        ("mark_probability", Nonneg_float);
        ("pushback", Enum [ "on"; "off" ]);
        ("admission_max_pending", Nonneg_int);
        ("admission_backoff", Nonneg_float);
      ] );
    ("shard", [ ("shards", Nonneg_int); ("mailbox_capacity", Pos_int) ]);
    ( "multipath",
      [
        ("probe_interval", Nonneg_float);
        ("suspect_misses", Pos_int);
        ("down_misses", Pos_int);
        ("reprobe_backoff", Nonneg_float);
        ("latency", Enum [ "primary"; "wrr" ]);
        ("throughput", Enum [ "primary"; "wrr" ]);
        ("background", Enum [ "primary"; "wrr" ]);
      ] );
  ]

let known_sections = List.map fst schema

let value_ok kind v =
  match kind with
  | Pos_int -> ( match int_of_string_opt v with Some n -> n > 0 | None -> false)
  | Nonneg_int -> ( match int_of_string_opt v with Some n -> n >= 0 | None -> false)
  | Nonneg_float -> (
    match float_of_string_opt v with Some f -> f >= 0. | None -> false)
  | Enum choices -> List.mem v choices
  | Any_string -> true

let kind_to_string = function
  | Pos_int -> "a positive integer"
  | Nonneg_int -> "a non-negative integer"
  | Nonneg_float -> "a non-negative number"
  | Enum choices -> String.concat "|" choices
  | Any_string -> "a string"

(* ---------- line scanning (same lexical rules as Policy_lang) ---------- *)

let strip_comment line =
  match String.index_opt line '#' with
  | None -> line
  | Some i -> String.sub line 0 i

type scan = {
  mutable diags : Diag.t list;
  (* last *valid* value of each (section, key), with its line *)
  values : (string * string, string * int) Hashtbl.t;
  (* first line each (section, key) appeared on, valid or not *)
  first : (string * string, int) Hashtbl.t;
}

let emit sc d = sc.diags <- d :: sc.diags

let scan_text sc text =
  (* `Unknown suppresses per-key diagnostics: the L001 on the header
     already covers every line under a typo'd section. *)
  let section = ref `None in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i raw ->
      let line = i + 1 in
      let s = String.trim (strip_comment raw) in
      if String.equal s "" then ()
      else if String.length s >= 2 && s.[0] = '[' && s.[String.length s - 1] = ']'
      then begin
        let name = String.sub s 1 (String.length s - 2) in
        if List.mem name known_sections then section := `Known name
        else begin
          section := `Unknown;
          emit sc
            (Diag.error ~line "L001"
               (Printf.sprintf "unknown section [%s]" name)
               ~hint:
                 (Printf.sprintf "known sections: %s"
                    (String.concat ", " known_sections)))
        end
      end
      else
        match String.index_opt s '=' with
        | None ->
          emit sc
            (Diag.error ~line "L004"
               (Printf.sprintf "expected key = value, got %S" s)
               ~hint:"every non-comment line is a [section] header or key = value")
        | Some eq -> (
          let key = String.trim (String.sub s 0 eq) in
          let v = String.trim (String.sub s (eq + 1) (String.length s - eq - 1)) in
          match !section with
          | `Unknown -> ()
          | `None ->
            emit sc
              (Diag.error ~line "L004"
                 (Printf.sprintf "key %S outside any [section]" key)
                 ~hint:"open a section such as [efcp] before assigning keys")
          | `Known sec -> (
            let keys = List.assoc sec schema in
            match List.assoc_opt key keys with
            | None ->
              emit sc
                (Diag.error ~line "L002"
                   (Printf.sprintf "unknown key %S in [%s]" key sec)
                   ~hint:
                     (Printf.sprintf "keys valid in [%s]: %s" sec
                        (String.concat ", " (List.map fst keys))))
            | Some kind ->
              let id = (sec, key) in
              (match Hashtbl.find_opt sc.first id with
               | Some prev ->
                 emit sc
                   (Diag.error ~line "L003"
                      (Printf.sprintf "duplicate key %S in [%s] (first set at line %d)"
                         key sec prev)
                      ~hint:"later assignments silently override earlier ones")
               | None -> Hashtbl.replace sc.first id line);
              if value_ok kind v then Hashtbl.replace sc.values id (v, line)
              else
                emit sc
                  (Diag.error ~line "L005"
                     (Printf.sprintf "%s expects %s, got %S" key (kind_to_string kind)
                        v)))))
    lines

(* ---------- resolved view: spec merged over the base policy ---------- *)

(* Each accessor yields the value the simulator would actually run
   with, plus the line that set it (0 = inherited from [base]). *)
let geti sc sec key base =
  match Hashtbl.find_opt sc.values (sec, key) with
  | Some (v, ln) -> (int_of_string v, ln)
  | None -> (base, 0)

let getf sc sec key base =
  match Hashtbl.find_opt sc.values (sec, key) with
  | Some (v, ln) -> (float_of_string v, ln)
  | None -> (base, 0)

let gets sc sec key base =
  match Hashtbl.find_opt sc.values (sec, key) with
  | Some (v, ln) -> (v, ln)
  | None -> (base, 0)

let set_in_spec sc sec key = Hashtbl.mem sc.values (sec, key)

(* Line to pin a cross-field finding on: the latest explicitly set
   participant. *)
let at lns = List.fold_left max 0 lns

let consistency sc (base : Policy.t) topo =
  let e = base.Policy.efcp and r = base.Policy.routing in
  let window, ln_window = geti sc "efcp" "window" e.Policy.window in
  let mtu, ln_mtu = geti sc "efcp" "mtu" e.Policy.mtu in
  let init_rto, ln_irto = getf sc "efcp" "init_rto" e.Policy.init_rto in
  let min_rto, ln_mrto = getf sc "efcp" "min_rto" e.Policy.min_rto in
  let ack_delay, ln_ack = getf sc "efcp" "ack_delay" e.Policy.ack_delay in
  let base_kind =
    match base.Policy.scheduler with
    | Policy.Fifo -> "fifo"
    | Policy.Priority_queueing -> "priority"
    | Policy.Drr _ -> "drr"
  in
  let base_quantum =
    match base.Policy.scheduler with Policy.Drr q -> q | _ -> 1500
  in
  let sched_kind, ln_kind = gets sc "scheduler" "kind" base_kind in
  let quantum, ln_quantum = geti sc "scheduler" "quantum" base_quantum in
  let base_auth, base_secret =
    match base.Policy.auth with
    | Policy.Auth_none -> ("none", "")
    | Policy.Auth_password s -> ("password", s)
  in
  let auth_kind, ln_auth = gets sc "auth" "kind" base_auth in
  let secret, ln_secret = gets sc "auth" "secret" base_secret in
  let hello, ln_hello = getf sc "routing" "hello_interval" r.Policy.hello_interval in
  let dead, ln_dead = getf sc "routing" "dead_interval" r.Policy.dead_interval in
  let lsa_min, ln_lsa = getf sc "routing" "lsa_min_interval" r.Policy.lsa_min_interval in
  let max_ttl, ln_ttl = geti sc "dif" "max_ttl" base.Policy.max_ttl in
  (* L101: the retransmission timer lives in [min_rto, max_rto] and
     starts at init_rto; a floor above the start is contradictory. *)
  if min_rto > init_rto then
    emit sc
      (Diag.error ~line:(at [ ln_irto; ln_mrto ]) "L101"
         (Printf.sprintf "min_rto (%g s) exceeds init_rto (%g s)" min_rto init_rto)
         ~hint:"the RTO starts at init_rto and is clamped to at least min_rto");
  (* L102: init_rto above the hard ceiling is silently clamped. *)
  if init_rto > Rina_core.Efcp.max_rto then
    emit sc
      (Diag.warning ~line:(at [ ln_irto ]) "L102"
         (Printf.sprintf "init_rto (%g s) is above the %g s RTO ceiling and will be clamped"
            init_rto Rina_core.Efcp.max_rto));
  (* L103: delayed acks slower than the initial RTO guarantee spurious
     retransmissions until an RTT sample arrives. *)
  if ack_delay > 0. && ack_delay >= init_rto then
    emit sc
      (Diag.warning ~line:(at [ ln_ack; ln_irto ]) "L103"
         (Printf.sprintf "ack_delay (%g s) is not below init_rto (%g s)" ack_delay
            init_rto)
         ~hint:"the sender times out and retransmits before the delayed ack leaves");
  (* L104: quantum is a DRR knob only. *)
  if set_in_spec sc "scheduler" "quantum" && sched_kind <> "drr" then
    emit sc
      (Diag.warning ~line:(at [ ln_quantum ]) "L104"
         (Printf.sprintf "quantum is only meaningful under kind = drr (kind is %s)"
            sched_kind)
         ~hint:"set kind = drr or drop the quantum line");
  (* L105: a DRR quantum below the MTU cannot release a full-size PDU
     per round; large flows starve behind small ones. *)
  if sched_kind = "drr" && quantum < mtu then
    emit sc
      (Diag.warning ~line:(at [ ln_quantum; ln_mtu; ln_kind ]) "L105"
         (Printf.sprintf "drr quantum (%d B) is smaller than the MTU (%d B)" quantum
            mtu)
         ~hint:"use a quantum of at least one MTU");
  (* L106/L107: secret iff password authentication. *)
  if auth_kind = "password" && String.equal secret "" then
    emit sc
      (Diag.error ~line:(at [ ln_auth ]) "L106" "auth kind = password requires a secret");
  if set_in_spec sc "auth" "secret" && auth_kind <> "password" then
    emit sc
      (Diag.warning ~line:(at [ ln_secret ]) "L107"
         (Printf.sprintf "secret is ignored unless auth kind = password (kind is %s)"
            auth_kind));
  (* L108/L109: adjacency liveness needs headroom over the hello period. *)
  if dead <= hello then
    emit sc
      (Diag.error ~line:(at [ ln_dead; ln_hello ]) "L108"
         (Printf.sprintf "dead_interval (%g s) is not above hello_interval (%g s)" dead
            hello)
         ~hint:"a single on-time hello cannot keep the adjacency alive")
  else if dead <= 2. *. hello then
    emit sc
      (Diag.warning ~line:(at [ ln_dead; ln_hello ]) "L109"
         (Printf.sprintf
            "dead_interval (%g s) is within 2x hello_interval (%g s): one lost hello \
             drops the adjacency"
            dead hello)
         ~hint:"use dead_interval > 2 x hello_interval");
  (* L110: flood damping at or above the hello period swallows refreshes. *)
  if lsa_min >= hello && hello > 0. then
    emit sc
      (Diag.warning ~line:(at [ ln_lsa; ln_hello ]) "L110"
         (Printf.sprintf
            "lsa_min_interval (%g s) is not below hello_interval (%g s): updates are \
             damped behind the hello clock"
            lsa_min hello));
  (* L111: stop-and-wait plus delayed acks serialises every PDU behind
     the ack timer. *)
  if window = 1 && ack_delay > 0. then
    emit sc
      (Diag.warning ~line:(at [ ln_window; ln_ack ]) "L111"
         (Printf.sprintf
            "window = 1 with ack_delay = %g s adds the ack delay to every PDU's RTT"
            ack_delay)
         ~hint:"drop ack_delay, or open the window");
  (* L112: a keepalive period at or above the dead-peer timeout means
     every probe gap looks like death — one lost reply partitions the
     adjacency. *)
  let keepalive, ln_ka =
    getf sc "routing" "keepalive_interval" r.Policy.keepalive_interval
  in
  let dead_peer, ln_dp =
    getf sc "routing" "dead_peer_timeout" r.Policy.dead_peer_timeout
  in
  if keepalive > 0. && keepalive >= dead_peer then
    emit sc
      (Diag.error ~line:(at [ ln_ka; ln_dp ]) "L112"
         (Printf.sprintf
            "keepalive_interval (%g s) is not below dead_peer_timeout (%g s)" keepalive
            dead_peer)
         ~hint:
           "an enrolled peer is declared dead before its next keepalive is even \
            due; use dead_peer_timeout > 2 x keepalive_interval");
  (* L113: zero-retry enrollment gives up on the first lost M_connect
     and waits a whole hello period to try again. *)
  let retries, ln_retries =
    geti sc "enrollment" "enroll_retries" base.Policy.enrollment.Policy.enroll_retries
  in
  if retries = 0 then
    emit sc
      (Diag.warning ~line:(at [ ln_retries ]) "L113"
         "enroll_retries = 0: a single lost enrollment exchange stalls joining \
          until the next hello"
         ~hint:"allow at least one backoff retry");
  (* L114: timer pressure.  Each periodic timer class fires about
     1/period times per simulated second (hellos and keepalives per
     adjacency, delayed acks per flow, and the retransmission timer at
     worst every min_rto).  A policy whose periods sum past ~10k
     events/s floods the event loop with timer churn and slows every
     experiment that uses it. *)
  let rate p = if p > 0. then 1. /. p else 0. in
  let timer_load =
    rate hello +. rate keepalive +. rate ack_delay +. rate min_rto
  in
  if timer_load > 10_000. then
    emit sc
      (Diag.warning
         ~line:(at [ ln_hello; ln_ka; ln_ack; ln_mrto ]) "L114"
         (Printf.sprintf
            "timer settings schedule ~%.0f timer events per simulated second \
             (hello %g s, keepalive %g s, ack_delay %g s, min_rto %g s)"
            timer_load hello keepalive ack_delay min_rto)
         ~hint:
           "raise the shortest period(s); sub-millisecond timers dominate the \
            event loop (use --strict to make this failing)");
  (* L115: a reorder buffer smaller than the advertised sack-block
     budget is self-defeating — the receiver can never hold enough
     out-of-order ranges to fill its own sack advertisement, so the
     extra blocks are dead wire weight and the buffer sheds
     (R_reorder_overflow) exactly the PDUs sack was meant to save. *)
  let sack, ln_sack =
    geti sc "efcp" "sack_blocks" base.Policy.efcp.Policy.sack_blocks
  in
  let reorder_w, ln_rw =
    geti sc "efcp" "reorder_window" base.Policy.efcp.Policy.reorder_window
  in
  if sack > 0 && reorder_w < sack then
    emit sc
      (Diag.error ~line:(at [ ln_rw; ln_sack ]) "L115"
         (Printf.sprintf "reorder_window (%d) is below sack_blocks (%d)"
            reorder_w sack)
         ~hint:"use reorder_window >= sack_blocks (each sack block needs at \
                least one buffered PDU)");
  (* L116: anti-entropy sweeping faster than the hello clock churns
     full-database syncs against adjacencies that have not even been
     re-confirmed since the last sweep. *)
  let ae, ln_ae =
    getf sc "routing" "anti_entropy_interval" r.Policy.anti_entropy_interval
  in
  if ae > 0. && ae < hello then
    emit sc
      (Diag.warning ~line:(at [ ln_ae; ln_hello ]) "L116"
         (Printf.sprintf
            "anti_entropy_interval (%g s) is below hello_interval (%g s): full \
             RIB syncs outpace adjacency confirmation"
            ae hello)
         ~hint:"use anti_entropy_interval >= hello_interval");
  (* L117: a sample rate outside (0, 1] is not a probability — 0 (or a
     negative) keeps nothing, above 1 is meaningless; Obs refuses to
     start with it at runtime, so catch it statically. *)
  let sample_rate, ln_sr =
    getf sc "telemetry" "trace_sample_rate"
      base.Policy.telemetry.Policy.trace_sample_rate
  in
  if sample_rate <= 0. || sample_rate > 1. then
    emit sc
      (Diag.error ~line:(at [ ln_sr ]) "L117"
         (Printf.sprintf "trace_sample_rate (%g) is outside (0, 1]" sample_rate)
         ~hint:"1.0 keeps every span; 0.01 keeps ~1% of spans deterministically");
  (* L118: snapshots ride the engine's coarse timer wheel — an interval
     below one wheel slot cannot fire any faster than the slot width,
     the extra ticks just collapse into the same slot. *)
  let snap_iv, ln_si =
    getf sc "telemetry" "snapshot_interval"
      base.Policy.telemetry.Policy.snapshot_interval
  in
  if snap_iv > 0. && snap_iv < Rina_sim.Engine.wheel_granularity then
    emit sc
      (Diag.warning ~line:(at [ ln_si ]) "L118"
         (Printf.sprintf
            "snapshot_interval (%g s) is below the timer-wheel slot width (%g s)"
            snap_iv Rina_sim.Engine.wheel_granularity)
         ~hint:
           (Printf.sprintf "snapshot timers ride the coarse wheel; use at least %g s"
              Rina_sim.Engine.wheel_granularity));
  (* L119: congestion knobs that cannot work as written.  A
     mark_probability above 1 is not a probability (negatives are
     already an L005 type error); a mark_threshold at or above the
     per-class queue capacity can never mark a PDU before the queue
     overflows, so "ECN" degrades to silent tail drop. *)
  let c = base.Policy.congestion in
  let mark_th, ln_mth = geti sc "congestion" "mark_threshold" c.Policy.mark_threshold in
  let mark_p, ln_mp =
    getf sc "congestion" "mark_probability" c.Policy.mark_probability
  in
  let adm_backoff, ln_ab =
    getf sc "congestion" "admission_backoff" c.Policy.admission_backoff
  in
  let adm_max, ln_am =
    geti sc "congestion" "admission_max_pending" c.Policy.admission_max_pending
  in
  let pushback_s, ln_pb =
    gets sc "congestion" "pushback" (if c.Policy.pushback then "on" else "off")
  in
  if mark_p > 1. then
    emit sc
      (Diag.error ~line:(at [ ln_mp ]) "L119"
         (Printf.sprintf "mark_probability (%g) is above 1" mark_p)
         ~hint:"marking is a coin flip per enqueue; use a value in [0, 1]");
  if mark_th >= Rina_core.Rmt.queue_capacity then
    emit sc
      (Diag.error ~line:(at [ ln_mth ]) "L119"
         (Printf.sprintf
            "mark_threshold (%d) is not below the per-class queue capacity (%d)"
            mark_th Rina_core.Rmt.queue_capacity)
         ~hint:"the queue overflows (tail drop) before it ever marks");
  if adm_max > 0 && adm_backoff <= 0. then
    emit sc
      (Diag.error ~line:(at [ ln_ab; ln_am ]) "L119"
         (Printf.sprintf
            "admission_max_pending = %d with admission_backoff = %g: busy-rejected \
             requesters would retry with no delay"
            adm_max adm_backoff)
         ~hint:"use a positive admission_backoff (seconds) so retries spread out");
  (* L120: congestion features wired to a signal that is never
     generated.  Push-back re-marks upper-DIF frames when a lower flow
     is congested, and a flow only learns it is congested from marked
     acks — with marking off, neither ever fires. *)
  if pushback_s = "on" && mark_th = 0 then
    emit sc
      (Diag.warning ~line:(at [ ln_pb; ln_mth ]) "L120"
         "pushback = on with mark_threshold = 0: no queue ever marks, so there is \
          no congestion signal to push upward"
         ~hint:"set mark_threshold > 0 (marking) or drop the pushback line");
  if mark_th > 0 && mark_p = 0. then
    emit sc
      (Diag.warning ~line:(at [ ln_mth; ln_mp ]) "L120"
         (Printf.sprintf
            "mark_threshold = %d with mark_probability = 0: the marking stage is \
             armed but every coin flip loses"
            mark_th)
         ~hint:"use a mark_probability in (0, 1]");
  (* L122: a path monitor that can never demote.  down_misses below
     suspect_misses means the Down threshold fires while the state
     machine still considers the path Up — Suspect is unreachable and
     the documented Up -> Suspect -> Down progression is a lie.  A
     zero reprobe_backoff on an armed monitor makes every Down path
     re-probe in a zero-delay busy loop. *)
  let mp = base.Policy.multipath in
  let probe_iv, ln_piv = getf sc "multipath" "probe_interval" mp.Policy.probe_interval in
  let susp, ln_susp = geti sc "multipath" "suspect_misses" mp.Policy.suspect_misses in
  let down, ln_down = geti sc "multipath" "down_misses" mp.Policy.down_misses in
  let reprobe, ln_rp = getf sc "multipath" "reprobe_backoff" mp.Policy.reprobe_backoff in
  if down < susp then
    emit sc
      (Diag.error ~line:(at [ ln_down; ln_susp ]) "L122"
         (Printf.sprintf
            "down_misses (%d) is below suspect_misses (%d): paths jump straight to \
             Down and Suspect is unreachable"
            down susp)
         ~hint:"keep suspect_misses <= down_misses");
  if probe_iv > 0. && reprobe <= 0. then
    emit sc
      (Diag.error ~line:(at [ ln_rp; ln_piv ]) "L122"
         "reprobe_backoff = 0 with an armed monitor: Down paths re-probe in a \
          zero-delay busy loop"
         ~hint:"give reprobe_backoff a positive base, e.g. probe_interval");
  (* L123: the monitor declares a path Down no earlier than routing's
     dead-peer teardown would — fast failover adds nothing over plain
     LSA convergence. *)
  if probe_iv > 0. && probe_iv *. float_of_int down >= dead_peer then
    emit sc
      (Diag.warning ~line:(at [ ln_piv; ln_down ]) "L123"
         (Printf.sprintf
            "probe_interval x down_misses (%g x %d = %g s) is not below \
             dead_peer_timeout (%g s): path-Down fires after routing has already \
             torn the peer down, so fast failover never beats LSA convergence"
            probe_iv down
            (probe_iv *. float_of_int down)
            dead_peer)
         ~hint:"shrink probe_interval (or down_misses) below the dead-peer window");
  (* L121 (part 1): mailbox bound too small to hold even one in-flight
     entry plus the ring's reserved slot — Policy_lang.parse refuses it,
     so catch it statically too. *)
  let sh = base.Policy.shard in
  let shards_req, ln_shards = geti sc "shard" "shards" sh.Policy.shards in
  let mbox, ln_mbox = geti sc "shard" "mailbox_capacity" sh.Policy.mailbox_capacity in
  if mbox < 2 then
    emit sc
      (Diag.error ~line:(at [ ln_mbox ]) "L121"
         (Printf.sprintf "mailbox_capacity (%d) is below 2" mbox)
         ~hint:"each directed cross-shard mailbox needs room for at least 2 entries");
  match topo with
  | None -> ()
  | Some { diameter; bottleneck_bit_rate; rtt; lookahead } ->
    (* L121 (part 2): parallel decomposition requested against a
       topology whose verified partition buys no time.  The sharded
       engine can only overlap shards inside a strictly positive
       conservative lookahead window ([rina_verify] V4xx derives it as
       the min effective delay over cross-shard adjacencies); with the
       window zero or absent the run degenerates to sequential
       stepping, so the spec's parallelism is a lie. *)
    (match lookahead with
     | Some l when l > 0. -> ()
     | _ when shards_req <= 1 -> ()
     | zero_or_absent ->
       let what =
         match zero_or_absent with
         | None -> "the topology's shard partition derives no lookahead"
         | Some l -> Printf.sprintf "the derived lookahead is %g s" l
       in
       emit sc
         (Diag.error ~line:(at [ ln_shards ]) "L121"
            (Printf.sprintf "shards = %d requested but %s" shards_req what)
            ~hint:
              "every cross-shard adjacency must buy strictly positive delay \
               (rina_verify V404); fix the partition or drop the [shard] \
               section"));
    (* L201: PDUs on the longest path die before arriving. *)
    if max_ttl < diameter then
      emit sc
        (Diag.error ~line:(at [ ln_ttl ]) "L201"
           (Printf.sprintf "max_ttl (%d) is below the topology diameter (%d hops)"
              max_ttl diameter)
           ~hint:"PDUs between the farthest pair are dropped as TTL-expired");
    (* L202: the send window cannot fill the pipe. *)
    let bdp = bottleneck_bit_rate /. 8. *. rtt in
    let capacity = float_of_int (window * mtu) in
    if capacity < bdp then
      emit sc
        (Diag.warning ~line:(at [ ln_window; ln_mtu ]) "L202"
           (Printf.sprintf
              "window x mtu (%d x %d = %.0f B) is below the bandwidth-delay product \
               (%.0f B): the flow cannot saturate the path"
              window mtu capacity bdp)
           ~hint:"raise window (or mtu) to cover bit_rate/8 x rtt")

let lint ?(base = Policy.default) ?topo text =
  let sc = { diags = []; values = Hashtbl.create 32; first = Hashtbl.create 32 } in
  scan_text sc text;
  consistency sc base topo;
  List.sort Diag.compare sc.diags

let clean ?base ?topo text = not (Diag.has_errors (lint ?base ?topo text))

let rules =
  let e = Diag.Error and w = Diag.Warning in
  [
    Diag.rule ~code:"L001" ~severity:e "unknown [section] in the spec";
    Diag.rule ~code:"L002" ~severity:e "unknown key for its section";
    Diag.rule ~code:"L003" ~severity:e "duplicate key (later assignment wins silently)";
    Diag.rule ~code:"L004" ~severity:e "line is neither a [section] header nor key = value";
    Diag.rule ~code:"L005" ~severity:e "value has the wrong type for its key";
    Diag.rule ~code:"L101" ~severity:e "min_rto exceeds init_rto";
    Diag.rule ~code:"L102" ~severity:w "init_rto above the RTO ceiling (clamped)";
    Diag.rule ~code:"L103" ~severity:w
      "ack_delay at or above init_rto: spurious retransmits until an RTT sample";
    Diag.rule ~code:"L104" ~severity:w "quantum set but scheduler is not drr";
    Diag.rule ~code:"L105" ~severity:w "drr quantum below the MTU starves large flows";
    Diag.rule ~code:"L106" ~severity:e "auth kind = password without a secret";
    Diag.rule ~code:"L107" ~severity:w "secret set but auth kind is not password";
    Diag.rule ~code:"L108" ~severity:e "dead_interval not above hello_interval";
    Diag.rule ~code:"L109" ~severity:w
      "dead_interval within 2x hello_interval: one lost hello drops the adjacency";
    Diag.rule ~code:"L110" ~severity:w
      "lsa_min_interval not below hello_interval: updates damped behind the hello clock";
    Diag.rule ~code:"L111" ~severity:w
      "window = 1 with delayed acks adds the ack delay to every PDU's RTT";
    Diag.rule ~code:"L112" ~severity:e "keepalive_interval not below dead_peer_timeout";
    Diag.rule ~code:"L113" ~severity:w
      "enroll_retries = 0 stalls joining on a single lost exchange";
    Diag.rule ~code:"L114" ~severity:w
      "timer periods schedule more than ~10k events per simulated second";
    Diag.rule ~code:"L115" ~severity:e "reorder_window below sack_blocks";
    Diag.rule ~code:"L116" ~severity:w
      "anti_entropy_interval below hello_interval churns full RIB syncs";
    Diag.rule ~code:"L117" ~severity:e "trace_sample_rate outside (0, 1]";
    Diag.rule ~code:"L118" ~severity:w
      "snapshot_interval below the timer-wheel slot width";
    Diag.rule ~code:"L119" ~severity:e
      "congestion knobs out of range (mark_probability above 1, mark_threshold \
       at or above the queue capacity, admission with no backoff)";
    Diag.rule ~code:"L120" ~severity:w
      "congestion feature armed without its signal (pushback without marking, \
       marking with probability 0)";
    Diag.rule ~code:"L121" ~severity:e
      "shard spec cannot run in parallel (shards requested without a positive \
       verify lookahead, or mailbox_capacity below 2)";
    Diag.rule ~code:"L122" ~severity:e
      "multipath monitor misconfigured (down_misses below suspect_misses, or an \
       armed monitor with reprobe_backoff = 0)";
    Diag.rule ~code:"L123" ~severity:w
      "probe_interval x down_misses not below dead_peer_timeout: fast failover \
       cannot beat routing's own dead-peer teardown";
    Diag.rule ~code:"L201" ~severity:e "max_ttl below the topology diameter";
    Diag.rule ~code:"L202" ~severity:w
      "window x mtu below the bandwidth-delay product: cannot saturate the path";
  ]
