module Invariant = Rina_util.Invariant

let enable () =
  Invariant.clear ();
  Invariant.set_enabled true

let disable () = Invariant.set_enabled false

let enabled () = Invariant.enabled ()

let reset () = Invariant.clear ()

let violations () =
  List.map
    (fun (v : Invariant.violation) ->
      let message =
        if v.count = 1 then v.detail
        else Printf.sprintf "%s (%d occurrences)" v.detail v.count
      in
      Diag.error v.code message)
    (Invariant.violations ())

let audit_half label (c : Rina_sim.Link.conservation) =
  let in_flight = c.injected - c.delivered - c.dropped - c.blackholed in
  if in_flight = 0 then []
  else
    [
      Diag.error "SAN_PDU_CONSERVATION"
        (Printf.sprintf
           "%s: injected %d <> delivered %d + dropped %d + blackholed %d (%d \
            unaccounted)"
           label c.injected c.delivered c.dropped c.blackholed in_flight)
        ~hint:
          "every frame must end up delivered or counted in a drop path \
           (including blackholed); run the audit only after the event queue \
           drains";
    ]

let audit_link ?(label = "link") link =
  audit_half (label ^ " a->b") (Rina_sim.Link.conservation_a link)
  @ audit_half (label ^ " b->a") (Rina_sim.Link.conservation_b link)

let audit_drained engine =
  let n = Rina_sim.Engine.pending engine in
  if n = 0 then []
  else
    [
      Diag.warning "SAN_PENDING"
        (Printf.sprintf "%d events still queued: the simulation has not drained" n);
    ]

let check_routing_loops tables =
  let nodes = Hashtbl.create (List.length tables) in
  List.iter (fun (addr, nh) -> Hashtbl.replace nodes addr nh) tables;
  let n = List.length tables in
  let diags = ref [] in
  let walk src dst =
    (* Follow next hops from [src] toward [dst]; a well-formed set of
       tables reaches [dst] in at most [n - 1] hops. *)
    let visited = Hashtbl.create 8 in
    let rec go cur hops =
      if cur = dst then ()
      else if Hashtbl.mem visited cur then
        diags :=
          Diag.error "SAN_ROUTE_LOOP"
            (Printf.sprintf "next-hop loop at node %d routing %d -> %d" cur src dst)
          :: !diags
      else begin
        Hashtbl.replace visited cur ();
        match Hashtbl.find_opt nodes cur with
        | None ->
          diags :=
            Diag.warning "SAN_ROUTE_BLACKHOLE"
              (Printf.sprintf "no forwarding table at node %d routing %d -> %d" cur
                 src dst)
            :: !diags
        | Some nh -> (
          match Hashtbl.find_opt nh dst with
          | None ->
            diags :=
              Diag.warning "SAN_ROUTE_BLACKHOLE"
                (Printf.sprintf "node %d has no route to %d (path from %d)" cur dst
                   src)
              :: !diags
          | Some (next, _cost) ->
            if hops > n then
              diags :=
                Diag.error "SAN_ROUTE_LOOP"
                  (Printf.sprintf
                     "path %d -> %d did not converge after %d hops (at node %d)" src
                     dst hops cur)
                :: !diags
            else go next (hops + 1))
      end
    in
    go src 0
  in
  List.iter
    (fun (src, nh) -> Hashtbl.iter (fun dst _ -> walk src dst) nh)
    tables;
  (* Structural dedup (the same loop is usually seen from many
     sources), then the canonical severity/code order. *)
  List.sort_uniq Stdlib.compare !diags |> List.stable_sort Diag.compare

module Race = struct
  module R = Rina_util.Race

  let arm = R.arm
  let disarm = R.disarm
  let armed = R.armed
  let clear = R.clear

  let code_of_kind = function
    | `Write_write -> "SAN_RACE_WRITE_WRITE"
    | `Read_write -> "SAN_RACE_READ_WRITE"
    | `Write_read -> "SAN_RACE_WRITE_READ"

  let describe_kind = function
    | `Write_write -> "two writes"
    | `Read_write -> "a read, then a write"
    | `Write_read -> "a write, then a read"

  let diags () =
    List.map
      (fun (r : R.race) ->
        Diag.error (code_of_kind r.kind)
          (Printf.sprintf
             "data race on %s: %s from domains %d and %d with no happens-before \
              edge between them"
             r.site (describe_kind r.kind) r.first_domain r.second_domain)
          ~hint:
            "order the accesses through an Atomic, a mutex, or a spawn/join edge")
      (R.races ())
end

let rules =
  let e = Diag.Error and w = Diag.Warning in
  [
    Diag.rule ~code:"SAN_CLOCK" ~severity:e "virtual clock moved backwards";
    Diag.rule ~code:"SAN_HEAP" ~severity:e "event heap popped events out of order";
    Diag.rule ~code:"SAN_EFCP_SEQ" ~severity:e
      "EFCP delivered a sequence number out of order or twice";
    Diag.rule ~code:"SAN_EFCP_WINDOW" ~severity:e
      "EFCP sender exceeded the flow-control window";
    Diag.rule ~code:"SAN_EFCP_RCVBUF" ~severity:e
      "EFCP receiver buffered beyond its advertised capacity";
    Diag.rule ~code:"SAN_RIB_PATH" ~severity:e "malformed RIB object name";
    Diag.rule ~code:"SAN_PDU_CONSERVATION" ~severity:e
      "link frames unaccounted for after drain (injected <> delivered + dropped)";
    Diag.rule ~code:"SAN_PENDING" ~severity:w
      "audit ran before the event queue drained";
    Diag.rule ~code:"SAN_ROUTE_LOOP" ~severity:e
      "forwarding tables contain a next-hop loop";
    Diag.rule ~code:"SAN_ROUTE_BLACKHOLE" ~severity:w
      "a path dead-ends at a node with no route onward";
    Diag.rule ~code:"SAN_RACE_WRITE_WRITE" ~severity:e
      "two unsynchronized cross-domain writes to the same shared cell";
    Diag.rule ~code:"SAN_RACE_READ_WRITE" ~severity:e
      "unsynchronized cross-domain write after a concurrent read of the same cell";
    Diag.rule ~code:"SAN_RACE_WRITE_READ" ~severity:e
      "unsynchronized cross-domain read of a concurrently written cell";
  ]
