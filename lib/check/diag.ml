type severity = Error | Warning

type t = {
  code : string;
  severity : severity;
  line : int;
  message : string;
  hint : string option;
}

let make ?hint ?(line = 0) ~code ~severity message =
  { code; severity; line; message; hint }

let error ?hint ?line code message = make ?hint ?line ~code ~severity:Error message

let warning ?hint ?line code message = make ?hint ?line ~code ~severity:Warning message

let severity_rank = function Error -> 0 | Warning -> 1

let compare a b =
  match Int.compare a.line b.line with
  | 0 -> (
    match Int.compare (severity_rank a.severity) (severity_rank b.severity) with
    | 0 -> String.compare a.code b.code
    | c -> c)
  | c -> c

let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let errors ds = List.filter (fun d -> d.severity = Error) ds

let warnings ds = List.filter (fun d -> d.severity = Warning) ds

let severity_to_string = function Error -> "error" | Warning -> "warning"

let to_string d =
  let where = if d.line > 0 then Printf.sprintf "line %d: " d.line else "" in
  let hint = match d.hint with None -> "" | Some h -> Printf.sprintf " (hint: %s)" h in
  Printf.sprintf "%s%s[%s] %s%s" where (severity_to_string d.severity) d.code
    d.message hint

let pp fmt d = Format.pp_print_string fmt (to_string d)

type rule = { r_code : string; r_severity : severity; r_summary : string }

let rule ~code ~severity summary =
  { r_code = code; r_severity = severity; r_summary = summary }

let compare_rules a b = String.compare a.r_code b.r_code
