module Policy = Rina_core.Policy

type member = { m_name : string; m_address : int; m_apps : string list }

type attachment =
  | Direct of { delay : float; bit_rate : float; queue_frames : int }
  | Stacked of { lower_dif : string; via_a : string; via_b : string }

type adjacency = { adj_a : string; adj_b : string; att : attachment }

type dif = {
  d_name : string;
  d_policy : Policy.t;
  d_members : member list;
  d_adjacencies : adjacency list;
}

type intent = { it_dif : string; it_src : string; it_dst_app : string }

type shard_spec = {
  shard_count : int;
  shard_of : (string * string * int) list;
}

type model = { difs : dif list; intents : intent list; shards : shard_spec option }

type summary = {
  n_difs : int;
  n_members : int;
  n_adjacencies : int;
  n_intents : int;
  support_depth : int;
  cross_shard_edges : int;
  lookahead : float option;
}

type report = { diags : Diag.t list; summary : summary }

(* The encoded wire size of one full-MTU PDU of a DIF: user bytes plus
   the PDU header plus the SDU-protection trailer.  This whole frame
   is the SDU handed to the (N-1) flow, which Delimiting then
   fragments into chunks of at most the lower MTU. *)
let frame_bytes (p : Policy.t) =
  p.Policy.efcp.Policy.mtu + Rina_core.Pdu.header_size
  + Rina_core.Sdu_protection.overhead

let fragments_into ~frame ~lower_mtu = (frame + lower_mtu - 1) / lower_mtu

(* ---------- model indexing ---------- *)

type ctx = {
  by_name : (string, dif) Hashtbl.t;
  (* per DIF: member name -> member, and the undirected adjacency list
     over *valid* adjacencies (dangling ones are reported, then
     skipped by the graph analyses) *)
  members : (string, (string, member) Hashtbl.t) Hashtbl.t;
  graph : (string, (string, (string * adjacency) list) Hashtbl.t) Hashtbl.t;
}

let index m =
  let ctx =
    {
      by_name = Hashtbl.create 8;
      members = Hashtbl.create 8;
      graph = Hashtbl.create 8;
    }
  in
  List.iter
    (fun d ->
      if not (Hashtbl.mem ctx.by_name d.d_name) then begin
        Hashtbl.replace ctx.by_name d.d_name d;
        let mt = Hashtbl.create 16 in
        List.iter
          (fun mem ->
            if not (Hashtbl.mem mt mem.m_name) then Hashtbl.replace mt mem.m_name mem)
          d.d_members;
        Hashtbl.replace ctx.members d.d_name mt;
        Hashtbl.replace ctx.graph d.d_name (Hashtbl.create 16)
      end)
    m.difs;
  (* Second pass: adjacency lists, once every DIF's member table exists. *)
  List.iter
    (fun d ->
      match Hashtbl.find_opt ctx.graph d.d_name with
      | None -> ()
      | Some g ->
        let mt = Hashtbl.find ctx.members d.d_name in
        List.iter
          (fun adj ->
            if Hashtbl.mem mt adj.adj_a && Hashtbl.mem mt adj.adj_b then begin
              let add k v =
                Hashtbl.replace g k
                  ((v, adj) :: (Option.value ~default:[] (Hashtbl.find_opt g k)))
              in
              add adj.adj_a adj.adj_b;
              add adj.adj_b adj.adj_a
            end)
          d.d_adjacencies)
    m.difs;
  ctx

let neighbors ctx dif_name node =
  match Hashtbl.find_opt ctx.graph dif_name with
  | None -> []
  | Some g -> Option.value ~default:[] (Hashtbl.find_opt g node)

(* ---------- effective delay (recursive through the stack) ---------- *)

let rec eff_delay ctx visiting dif_name adj =
  match adj.att with
  | Direct { delay; _ } -> delay
  | Stacked { lower_dif; via_a; via_b } ->
    if List.mem lower_dif visiting then 0.
    else if not (Hashtbl.mem ctx.by_name lower_dif) then 0.
    else shortest_delay ctx (lower_dif :: visiting) lower_dif via_a via_b
  [@@warning "-27"]

(* Dijkstra over one DIF's adjacency graph with effective-delay
   weights; 0 when [dst] is unreachable (reported separately as V110,
   and a safe lower bound for the lookahead computation). *)
and shortest_delay ctx visiting dif_name src dst =
  if String.equal src dst then 0.
  else begin
    let dist = Hashtbl.create 16 in
    Hashtbl.replace dist src 0.;
    let frontier = ref [ (0., src) ] in
    let result = ref None in
    let rec loop () =
      match
        List.fold_left
          (fun best (d, n) ->
            match best with
            | Some (bd, _) when bd <= d -> best
            | _ -> Some (d, n))
          None !frontier
      with
      | None -> ()
      | Some (d, n) ->
        frontier := List.filter (fun (_, n') -> not (String.equal n' n)) !frontier;
        if String.equal n dst then result := Some d
        else begin
          List.iter
            (fun (n', adj) ->
              let d' = d +. eff_delay ctx visiting dif_name adj in
              match Hashtbl.find_opt dist n' with
              | Some old when old <= d' -> ()
              | _ ->
                Hashtbl.replace dist n' d';
                frontier := (d', n') :: !frontier)
            (neighbors ctx dif_name n);
          loop ()
        end
    in
    loop ();
    Option.value ~default:0. !result
  end

let effective_delay m d adj = eff_delay (index m) [ d.d_name ] d.d_name adj

(* Bottleneck rate of a DIF: the narrowest effective rate over its
   adjacencies, recursing through stacked attachments. *)
let rec eff_rate ctx visiting dif_name adj =
  match adj.att with
  | Direct { bit_rate; _ } -> bit_rate
  | Stacked { lower_dif; _ } ->
    if List.mem lower_dif visiting || not (Hashtbl.mem ctx.by_name lower_dif) then
      infinity
    else dif_bottleneck ctx (lower_dif :: visiting) lower_dif
  [@@warning "-27"]

and dif_bottleneck ctx visiting dif_name =
  match Hashtbl.find_opt ctx.by_name dif_name with
  | None -> infinity
  | Some d ->
    List.fold_left
      (fun acc adj -> Float.min acc (eff_rate ctx visiting dif_name adj))
      infinity d.d_adjacencies

(* ---------- connectivity ---------- *)

(* Connected components of one DIF's adjacency graph, as sorted member
   lists (sorted component lists, largest first, deterministic). *)
let components ctx d =
  let mt = Hashtbl.find ctx.members d.d_name in
  let seen = Hashtbl.create 16 in
  let names = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) mt []) in
  List.filter_map
    (fun start ->
      if Hashtbl.mem seen start then None
      else begin
        let comp = ref [] in
        let rec bfs = function
          | [] -> ()
          | n :: rest ->
            if Hashtbl.mem seen n then bfs rest
            else begin
              Hashtbl.replace seen n ();
              comp := n :: !comp;
              bfs (List.map fst (neighbors ctx d.d_name n) @ rest)
            end
        in
        bfs [ start ];
        Some (List.sort compare !comp)
      end)
    names

let reachable ctx dif_name src dst =
  let seen = Hashtbl.create 16 in
  let rec bfs = function
    | [] -> false
    | n :: rest ->
      if String.equal n dst then true
      else if Hashtbl.mem seen n then bfs rest
      else begin
        Hashtbl.replace seen n ();
        bfs (List.map fst (neighbors ctx dif_name n) @ rest)
      end
  in
  bfs [ src ]

(* ---------- the analyses ---------- *)

let verify ?(max_depth = 16) m =
  let ctx = index m in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let err ?hint code fmt = Printf.ksprintf (fun s -> emit (Diag.error ?hint code s)) fmt in
  let warn ?hint code fmt =
    Printf.ksprintf (fun s -> emit (Diag.warning ?hint code s)) fmt
  in
  (* --- V003: duplicates --- *)
  let seen_difs = Hashtbl.create 8 in
  List.iter
    (fun d ->
      if Hashtbl.mem seen_difs d.d_name then
        err "V003" "duplicate DIF name %S in the model" d.d_name
      else Hashtbl.replace seen_difs d.d_name ();
      let seen_m = Hashtbl.create 16 in
      List.iter
        (fun mem ->
          if Hashtbl.mem seen_m mem.m_name then
            err "V003" "DIF %S declares member %S twice" d.d_name mem.m_name
          else Hashtbl.replace seen_m mem.m_name ())
        d.d_members)
    m.difs;
  (* --- V001/V002: dangling references --- *)
  List.iter
    (fun d ->
      let mt = Hashtbl.find ctx.members d.d_name in
      List.iter
        (fun adj ->
          List.iter
            (fun e ->
              if not (Hashtbl.mem mt e) then
                err "V001" "DIF %S: adjacency %s--%s references unknown member %S"
                  d.d_name adj.adj_a adj.adj_b e)
            [ adj.adj_a; adj.adj_b ];
          match adj.att with
          | Direct _ -> ()
          | Stacked { lower_dif; via_a; via_b } -> (
            match Hashtbl.find_opt ctx.members lower_dif with
            | None ->
              err "V002" "DIF %S: adjacency %s--%s is stacked over unknown DIF %S"
                d.d_name adj.adj_a adj.adj_b lower_dif
            | Some lmt ->
              List.iter
                (fun v ->
                  if not (Hashtbl.mem lmt v) then
                    err "V002"
                      "DIF %S: adjacency %s--%s names %S as its endpoint in lower \
                       DIF %S, but no such member exists there"
                      d.d_name adj.adj_a adj.adj_b v lower_dif)
                [ via_a; via_b ]))
        d.d_adjacencies)
    m.difs;
  (* --- V004/V101/V104: intents --- *)
  List.iter
    (fun it ->
      match Hashtbl.find_opt ctx.members it.it_dif with
      | None -> err "V004" "flow intent references unknown DIF %S" it.it_dif
      | Some mt ->
        if not (Hashtbl.mem mt it.it_src) then
          err "V004" "flow intent in DIF %S allocates from unknown member %S"
            it.it_dif it.it_src
        else begin
          let registrants =
            Hashtbl.fold
              (fun _ mem acc ->
                if List.mem it.it_dst_app mem.m_apps then mem.m_name :: acc else acc)
              mt []
          in
          match registrants with
          | [] ->
            err "V101"
              "flow intent %s -> %S in DIF %S: the application name is registered \
               by no member of the DIF"
              it.it_src it.it_dst_app it.it_dif
              ~hint:"register the name, or fix the intent's destination"
          | rs ->
            if not (List.exists (fun r -> reachable ctx it.it_dif it.it_src r) rs)
            then
              err "V104"
                "flow intent %s -> %S in DIF %S: no member registering the name is \
                 reachable from the allocator"
                it.it_src it.it_dst_app it.it_dif
                ~hint:"the DIF graph does not connect allocator and registrant"
        end)
    m.intents;
  (* --- V102: disconnected DIFs, V103: directory collisions --- *)
  List.iter
    (fun d ->
      (match components ctx d with
       | [] | [ _ ] -> ()
       | first :: rest ->
         err "V102"
           "DIF %S is disconnected: %d members in the largest component, %d cut \
            off (%s)"
           d.d_name (List.length first)
           (List.fold_left (fun acc c -> acc + List.length c) 0 rest)
           (String.concat ", " (List.concat rest))
           ~hint:
             "members outside one component can neither enroll together nor \
              resolve each other's names");
      let reg = Hashtbl.create 16 in
      List.iter
        (fun mem ->
          List.iter
            (fun app ->
              match Hashtbl.find_opt reg app with
              | Some other ->
                err "V103"
                  "DIF %S: application %S is registered by both %S and %S — the \
                   distributed directory maps a name to one address"
                  d.d_name app other mem.m_name
              | None -> Hashtbl.replace reg app mem.m_name)
            mem.m_apps)
        d.d_members)
    m.difs;
  (* --- V110: stacked adjacencies whose lower flow cannot exist --- *)
  List.iter
    (fun d ->
      List.iter
        (fun adj ->
          match adj.att with
          | Direct _ -> ()
          | Stacked { lower_dif; via_a; via_b } -> (
            match Hashtbl.find_opt ctx.members lower_dif with
            | None -> ()  (* V002 already fired *)
            | Some lmt ->
              if
                Hashtbl.mem lmt via_a && Hashtbl.mem lmt via_b
                && not (reachable ctx lower_dif via_a via_b)
              then
                err "V110"
                  "DIF %S: adjacency %s--%s rides a flow %s -> %s in DIF %S, but \
                   those members are not connected there"
                  d.d_name adj.adj_a adj.adj_b via_a via_b lower_dif))
        d.d_adjacencies)
    m.difs;
  (* --- V201/V202/V203: address-space soundness --- *)
  List.iter
    (fun d ->
      let by_addr = Hashtbl.create 16 in
      let assigned = ref 0 and unassigned = ref 0 in
      List.iter
        (fun mem ->
          if mem.m_address < 0 then
            err "V202" "DIF %S: member %S has negative address %d" d.d_name
              mem.m_name mem.m_address
          else if mem.m_address = 0 then incr unassigned
          else begin
            incr assigned;
            match Hashtbl.find_opt by_addr mem.m_address with
            | Some other ->
              err "V201" "DIF %S: members %S and %S share address %d" d.d_name
                other mem.m_name mem.m_address
                ~hint:"an address is a synonym unique within its DIF"
            | None -> Hashtbl.replace by_addr mem.m_address mem.m_name
          end)
        d.d_members;
      if !assigned > 0 && !unassigned > 0 then
        warn "V203"
          "DIF %S: %d member(s) have planned addresses but %d are left to \
           enrollment — collisions with the enrollment allocator cannot be \
           checked statically"
          d.d_name !assigned !unassigned)
    m.difs;
  (* --- support graph: V211 self-support, V301 cycles, V210 depth --- *)
  let supports d =
    List.filter_map
      (fun adj ->
        match adj.att with
        | Stacked { lower_dif; _ } -> Some lower_dif
        | Direct _ -> None)
      d.d_adjacencies
    |> List.sort_uniq compare
  in
  List.iter
    (fun d ->
      if List.mem d.d_name (supports d) then
        err "V211" "DIF %S is stacked over itself" d.d_name
          ~hint:"an (N)-DIF cannot allocate its own (N-1) flows")
    m.difs;
  (* Depth (longest support chain) with cycle detection in one DFS. *)
  let depth_memo = Hashtbl.create 8 in
  let cycles = ref [] in
  let rec depth stack name =
    match Hashtbl.find_opt depth_memo name with
    | Some d -> d
    | None ->
      if List.mem name stack then begin
        (* Canonical rotation so each cycle is reported once. *)
        let rec upto acc = function
          | [] -> acc
          | x :: rest -> if String.equal x name then x :: acc else upto (x :: acc) rest
        in
        let cycle = upto [] stack in
        let least = List.fold_left min name cycle in
        if not (List.mem least !cycles) then begin
          cycles := least :: !cycles;
          if List.length cycle > 1 then
            err "V301" "enrollment dependency cycle: %s -> %s"
              (String.concat " -> " cycle)
              (List.hd cycle)
              ~hint:
                "each DIF needs a flow of the next to bootstrap — none can come \
                 up first"
        end;
        0
      end
      else
        match Hashtbl.find_opt ctx.by_name name with
        | None -> 0
        | Some d ->
          let below =
            List.fold_left
              (fun acc l -> max acc (depth (name :: stack) l))
              0 (supports d)
          in
          let r = 1 + below in
          Hashtbl.replace depth_memo name r;
          r
  in
  let support_depth =
    List.fold_left (fun acc d -> max acc (depth [] d.d_name)) 0 m.difs
  in
  if support_depth > max_depth then
    err "V210" "DIF recursion depth %d exceeds the bound %d" support_depth max_depth
      ~hint:"raise --max-depth if the stacking is intentional";
  (* --- V220/V221/V222: cross-layer feasibility --- *)
  List.iter
    (fun d ->
      let frame = frame_bytes d.d_policy in
      let window = d.d_policy.Policy.efcp.Policy.window in
      List.iter
        (fun adj ->
          match adj.att with
          | Direct { queue_frames; _ } ->
            if window > queue_frames then
              warn "V222"
                "DIF %S: adjacency %s--%s queues %d frames but the EFCP window \
                 allows %d PDUs in flight — a full-window burst overruns the \
                 queue"
                d.d_name adj.adj_a adj.adj_b queue_frames window
                ~hint:"raise the link queue or shrink the window"
          | Stacked { lower_dif; _ } -> (
            match Hashtbl.find_opt ctx.by_name lower_dif with
            | None -> ()
            | Some l ->
              let lower_mtu = l.d_policy.Policy.efcp.Policy.mtu in
              let lower_window = l.d_policy.Policy.efcp.Policy.window in
              let frags = fragments_into ~frame ~lower_mtu in
              if frags > lower_window then
                err "V221"
                  "DIF %S: one full-MTU PDU (%d B on the wire) fragments into %d \
                   PDUs of DIF %S (MTU %d), more than its whole EFCP window (%d) \
                   — a single (N)-PDU can never be in flight at once"
                  d.d_name frame frags lower_dif lower_mtu lower_window
                  ~hint:"shrink the upper MTU or raise the lower MTU/window"
              else if frags > 2 then
                warn "V220"
                  "DIF %S: one full-MTU PDU (%d B on the wire) fragments into %d \
                   PDUs of DIF %S (MTU %d)"
                  d.d_name frame frags lower_dif lower_mtu
                  ~hint:"per-PDU overhead multiplies; consider aligning the MTUs"))
        d.d_adjacencies)
    m.difs;
  (* --- V230: multihomed in name only --- *)
  (* A registrant with two or more attachments looks fault-tolerant,
     but if every attachment's lower path crosses the same lower-DIF
     edge, that edge is still a single point of failure and the
     multipath monitor's failover has nowhere to go.  The cut edges of
     a (src, dst) pair within one DIF are the adjacencies whose
     removal disconnects the pair. *)
  let indexed d = List.mapi (fun i a -> (i, a)) d.d_adjacencies in
  let reaches_without d ~skip src dst =
    let mt = Hashtbl.find ctx.members d.d_name in
    let adjs =
      List.filter
        (fun (i, a) -> i <> skip && Hashtbl.mem mt a.adj_a && Hashtbl.mem mt a.adj_b)
        (indexed d)
    in
    let seen = Hashtbl.create 16 in
    let rec bfs = function
      | [] -> false
      | n :: _ when String.equal n dst -> true
      | n :: rest ->
        if Hashtbl.mem seen n then bfs rest
        else begin
          Hashtbl.replace seen n ();
          let next =
            List.filter_map
              (fun (_, a) ->
                if String.equal a.adj_a n then Some a.adj_b
                else if String.equal a.adj_b n then Some a.adj_a
                else None)
              adjs
          in
          bfs (next @ rest)
        end
    in
    bfs [ src ]
  in
  let cut_edges d src dst =
    if String.equal src dst || not (reaches_without d ~skip:(-1) src dst) then []
    else
      List.filter_map
        (fun (i, _) -> if reaches_without d ~skip:i src dst then None else Some i)
        (indexed d)
  in
  (* The lower edges an attachment cannot live without.  A [Direct]
     link is its own private medium — it shares a fate with nothing —
     so its set is empty and any intersection through it is too. *)
  let unavoidable adj =
    match adj.att with
    | Direct _ -> []
    | Stacked { lower_dif; via_a; via_b } -> (
      match Hashtbl.find_opt ctx.by_name lower_dif with
      | None -> []
      | Some ld -> List.map (fun i -> (lower_dif, i)) (cut_edges ld via_a via_b))
  in
  List.iter
    (fun d ->
      let mt = Hashtbl.find ctx.members d.d_name in
      List.iter
        (fun memb ->
          if memb.m_apps <> [] then begin
            let mine =
              List.filter
                (fun adj ->
                  Hashtbl.mem mt adj.adj_a
                  && Hashtbl.mem mt adj.adj_b
                  && (String.equal adj.adj_a memb.m_name
                     || String.equal adj.adj_b memb.m_name))
                d.d_adjacencies
            in
            if List.length mine >= 2 then begin
              let shared =
                match List.map unavoidable mine with
                | [] -> []
                | first :: rest ->
                  List.fold_left
                    (fun acc s -> List.filter (fun e -> List.mem e s) acc)
                    first rest
              in
              match shared with
              | [] -> ()
              | (ld_name, i) :: _ ->
                let ld = Hashtbl.find ctx.by_name ld_name in
                let cut = List.nth ld.d_adjacencies i in
                warn "V230"
                  "DIF %S: registrant %S is multihomed (%d attachments) but all \
                   of them traverse edge %s--%s of lower DIF %S — one link \
                   failure still severs every attachment"
                  d.d_name memb.m_name (List.length mine) cut.adj_a cut.adj_b
                  ld_name
                  ~hint:
                    "multihomed in name only: route the attachments over \
                     disjoint lower paths"
            end
          end)
        d.d_members)
    m.difs;
  (* --- V4xx: shard-partition safety + lookahead --- *)
  let cross_shard_edges = ref 0 in
  let lookahead = ref None in
  (match m.shards with
   | None -> ()
   | Some ss ->
     if ss.shard_count <= 0 then
       err "V403" "shard spec declares %d shards" ss.shard_count
     else begin
       let assign = Hashtbl.create 32 in
       List.iter
         (fun (dn, mn, s) ->
           (match Hashtbl.find_opt ctx.members dn with
            | None -> err "V401" "shard spec references unknown DIF %S" dn
            | Some mt ->
              if not (Hashtbl.mem mt mn) then
                err "V401" "shard spec references unknown member %S of DIF %S" mn dn);
           if s < 0 || s >= ss.shard_count then
             err "V403" "shard spec assigns %s/%s to shard %d (of %d)" dn mn s
               ss.shard_count
           else Hashtbl.replace assign (dn, mn) s)
         ss.shard_of;
       List.iter
         (fun d ->
           List.iter
             (fun mem ->
               if not (Hashtbl.mem assign (d.d_name, mem.m_name)) then
                 err "V402" "member %s of DIF %S is assigned to no shard"
                   mem.m_name d.d_name)
             d.d_members)
         m.difs;
       let populated = Hashtbl.create 8 in
       Hashtbl.iter (fun _ s -> Hashtbl.replace populated s ()) assign;
       for s = 0 to ss.shard_count - 1 do
         if not (Hashtbl.mem populated s) then
           warn "V405" "shard %d contains no member" s
       done;
       List.iter
         (fun d ->
           List.iter
             (fun adj ->
               match
                 ( Hashtbl.find_opt assign (d.d_name, adj.adj_a),
                   Hashtbl.find_opt assign (d.d_name, adj.adj_b) )
               with
               | Some sa, Some sb when sa <> sb ->
                 incr cross_shard_edges;
                 let delay = eff_delay ctx [ d.d_name ] d.d_name adj in
                 (lookahead :=
                    match !lookahead with
                    | None -> Some delay
                    | Some l -> Some (Float.min l delay));
                 if delay <= 0. then
                   err "V404"
                     "DIF %S: adjacency %s--%s crosses shards %d/%d with zero \
                      effective propagation delay"
                     d.d_name adj.adj_a adj.adj_b sa sb
                     ~hint:
                       "conservative lookahead needs every cross-shard edge to \
                        buy strictly positive time"
               | _ -> ())
             d.d_adjacencies)
         m.difs
     end);
  let summary =
    {
      n_difs = List.length m.difs;
      n_members = List.fold_left (fun acc d -> acc + List.length d.d_members) 0 m.difs;
      n_adjacencies =
        List.fold_left (fun acc d -> acc + List.length d.d_adjacencies) 0 m.difs;
      n_intents = List.length m.intents;
      support_depth;
      cross_shard_edges = !cross_shard_edges;
      lookahead = !lookahead;
    }
  in
  { diags = List.stable_sort Diag.compare (List.rev !diags); summary }

(* ---------- Lint.topo derivation ---------- *)

(* Per-DIF conservative lookahead under the model's shard partition:
   min effective delay over this DIF's cross-shard adjacencies — the
   same quantity the V4xx pass folds into [summary.lookahead], but
   restricted to one DIF so [Lint] L121 can judge a spec against the
   network it is destined for. *)
let shard_lookahead ctx m d =
  match m.shards with
  | None -> None
  | Some ss ->
    let assign = Hashtbl.create 32 in
    List.iter (fun (dn, mn, s) -> Hashtbl.replace assign (dn, mn) s) ss.shard_of;
    List.fold_left
      (fun acc adj ->
        match
          ( Hashtbl.find_opt assign (d.d_name, adj.adj_a),
            Hashtbl.find_opt assign (d.d_name, adj.adj_b) )
        with
        | Some sa, Some sb when sa <> sb ->
          let delay = eff_delay ctx [ d.d_name ] d.d_name adj in
          (match acc with
           | None -> Some delay
           | Some l -> Some (Float.min l delay))
        | _ -> acc)
      None d.d_adjacencies

let lint_topo m ~dif =
  let ctx = index m in
  match Hashtbl.find_opt ctx.by_name dif with
  | None -> None
  | Some d when d.d_members = [] -> None
  | Some d ->
    let names = List.map (fun mem -> mem.m_name) d.d_members in
    (* Hop diameter and worst-pair delay over connected pairs. *)
    let diameter = ref 0 and worst_delay = ref 0. in
    List.iter
      (fun src ->
        (* BFS hop distances *)
        let dist = Hashtbl.create 16 in
        Hashtbl.replace dist src 0;
        let q = Queue.create () in
        Queue.push src q;
        while not (Queue.is_empty q) do
          let n = Queue.pop q in
          let dn = Hashtbl.find dist n in
          List.iter
            (fun (n', _) ->
              if not (Hashtbl.mem dist n') then begin
                Hashtbl.replace dist n' (dn + 1);
                Queue.push n' q
              end)
            (neighbors ctx d.d_name n)
        done;
        Hashtbl.iter (fun _ h -> if h > !diameter then diameter := h) dist;
        List.iter
          (fun dst ->
            if Hashtbl.mem dist dst && not (String.equal src dst) then begin
              let dd = shortest_delay ctx [ d.d_name ] d.d_name src dst in
              if dd > !worst_delay then worst_delay := dd
            end)
          names)
      names;
    let bottleneck = dif_bottleneck ctx [ d.d_name ] d.d_name in
    Some
      {
        Lint.diameter = max 1 !diameter;
        bottleneck_bit_rate = (if Float.is_finite bottleneck then bottleneck else 0.);
        rtt = 2. *. !worst_delay;
        lookahead = shard_lookahead ctx m d;
      }

(* ---------- rule table ---------- *)

let rules =
  let e = Diag.Error and w = Diag.Warning in
  [
    Diag.rule ~code:"V001" ~severity:e "adjacency endpoint is not a member of the DIF";
    Diag.rule ~code:"V002" ~severity:e
      "stacked adjacency references an unknown lower DIF or lower member";
    Diag.rule ~code:"V003" ~severity:e "duplicate DIF name, or duplicate member within a DIF";
    Diag.rule ~code:"V004" ~severity:e "flow intent references an unknown DIF or member";
    Diag.rule ~code:"V101" ~severity:e
      "flow intent targets an application name registered nowhere in the DIF";
    Diag.rule ~code:"V102" ~severity:e
      "DIF adjacency graph is disconnected: some members can never enroll or resolve names";
    Diag.rule ~code:"V103" ~severity:e
      "application name registered by more than one member of a DIF (directory collision)";
    Diag.rule ~code:"V104" ~severity:e
      "no member registering the intent's name is reachable from the allocator";
    Diag.rule ~code:"V110" ~severity:e
      "stacked adjacency's endpoints are not connected in the lower DIF";
    Diag.rule ~code:"V201" ~severity:e "two members of a DIF share an address";
    Diag.rule ~code:"V202" ~severity:e "member has a negative address";
    Diag.rule ~code:"V203" ~severity:w
      "mixed planned and enrollment-assigned addresses in one DIF";
    Diag.rule ~code:"V210" ~severity:e "DIF recursion depth exceeds the bound";
    Diag.rule ~code:"V211" ~severity:e "DIF is stacked over itself";
    Diag.rule ~code:"V220" ~severity:w
      "one (N)-PDU fragments into more than two (N-1)-PDUs (overhead amplification)";
    Diag.rule ~code:"V221" ~severity:e
      "one (N)-PDU needs more (N-1)-PDUs than the lower EFCP window admits";
    Diag.rule ~code:"V222" ~severity:w
      "EFCP window exceeds a link's drop-tail queue: full-window bursts overrun it";
    Diag.rule ~code:"V230" ~severity:w
      "multihomed registrant whose attachments all cross one lower cut edge \
       (multihomed in name only)";
    Diag.rule ~code:"V301" ~severity:e
      "enrollment dependency cycle between DIFs: bootstrap deadlocks";
    Diag.rule ~code:"V401" ~severity:e "shard spec references an unknown DIF or member";
    Diag.rule ~code:"V402" ~severity:e "member assigned to no shard";
    Diag.rule ~code:"V403" ~severity:e "shard index out of range (or no shards declared)";
    Diag.rule ~code:"V404" ~severity:e
      "cross-shard adjacency with zero effective propagation delay (no lookahead)";
    Diag.rule ~code:"V405" ~severity:w "shard contains no member";
  ]
