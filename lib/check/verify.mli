(** Whole-topology static verification.

    {!Lint} checks one policy spec at a time; nothing so far checks a
    whole {e configuration} — the recursive DIF graph, the per-DIF
    policies, the application registrations and the planned flows —
    before a trial runs.  This module does: a scenario is described as
    a {!model} (pure data, buildable by hand or extracted from a live
    net with [Rina_exp.Topo.model_of_net]) and {!verify} runs every
    analysis over it, reporting {!Diag.t}s with stable [V]-codes:

    - {b structure} ([V0xx]) — dangling member/DIF references,
      duplicate names;
    - {b naming} ([V1xx]) — every registered application name is
      resolvable through the recursive DIF graph from every member
      that allocates a flow to it, directory collisions, stacked
      adjacencies whose lower flow could never be allocated;
    - {b addressing} ([V2xx]) — address collisions inside a DIF,
      bounded recursion depth, no DIF enrolled over itself, and
      cross-layer feasibility: (N)-PDU size vs (N-1) MTU under
      {!Rina_core.Delimiting} fragmentation, EFCP window vs link queue
      capacity (the bounded-memory argument per RMT queue);
    - {b enrollment} ([V3xx]) — the "DIF X needs a flow over DIF Y"
      dependency graph is acyclic, so bootstrap cannot deadlock;
    - {b sharding} ([V4xx]) — given a proposed spatial decomposition,
      every cross-shard adjacency has strictly positive effective
      propagation delay; the induced conservative lookahead window is
      reported in the {!summary}.  This is the precondition the
      sharded multicore engine (ROADMAP item 2) will assert before a
      parallel trial. *)

(** One IPC process of a DIF, as planned. *)
type member = {
  m_name : string;  (** unique within the DIF *)
  m_address : int;
      (** planned DIF-internal address; [0] = assigned at enrollment
          (legal — collision checks then skip it) *)
  m_apps : string list;  (** application names registered here *)
}

(** What carries an adjacency between two members. *)
type attachment =
  | Direct of { delay : float; bit_rate : float; queue_frames : int }
      (** a physical link (shim DIF): one-way propagation delay in
          seconds, rate in bits/s, drop-tail queue bound in frames *)
  | Stacked of { lower_dif : string; via_a : string; via_b : string }
      (** an (N-1) flow of [lower_dif], allocated between the lower
          members hosting the two endpoints *)

type adjacency = { adj_a : string; adj_b : string; att : attachment }

type dif = {
  d_name : string;
  d_policy : Rina_core.Policy.t;
  d_members : member list;
  d_adjacencies : adjacency list;
}

(** A planned flow allocation: [it_src] (a member of [it_dif]) will
    allocate to application name [it_dst_app] in that DIF. *)
type intent = { it_dif : string; it_src : string; it_dst_app : string }

(** A proposed spatial decomposition for the sharded engine: every
    member of every DIF is assigned to one shard. *)
type shard_spec = {
  shard_count : int;
  shard_of : (string * string * int) list;  (** (dif, member, shard) *)
}

type model = {
  difs : dif list;
  intents : intent list;
  shards : shard_spec option;
}

type summary = {
  n_difs : int;
  n_members : int;
  n_adjacencies : int;
  n_intents : int;
  support_depth : int;
      (** longest chain in the DIF support graph (1 = no stacking) *)
  cross_shard_edges : int;  (** 0 when no shard spec given *)
  lookahead : float option;
      (** conservative lookahead window for the sharded engine: the
          minimum effective one-way delay over all cross-shard
          adjacencies; [None] when there is no shard spec or no edge
          crosses a shard boundary *)
}

type report = { diags : Diag.t list; summary : summary }

val verify : ?max_depth:int -> model -> report
(** Run every analysis.  [max_depth] (default 16) bounds the DIF
    recursion depth ([V210]).  Diagnostics are sorted with
    {!Diag.compare}; [report.summary] is always populated, whatever
    the findings. *)

val effective_delay : model -> dif -> adjacency -> float
(** Lower bound on the one-way propagation delay of an adjacency:
    the link delay for [Direct], the shortest-path effective delay
    between the two lower endpoints for [Stacked] (0 when the lower
    path is broken — which [verify] reports separately as [V110]). *)

val lint_topo : model -> dif:string -> Lint.topo option
(** Summarise one DIF of the model in {!Lint.topo} terms — hop
    diameter, bottleneck bit rate (through stacked paths, recursively)
    and worst-pair round-trip time — so [rina_lint --topology] can run
    the [L2xx] rules against a named scenario instead of hand-fed
    numbers.  [None] if the DIF is unknown or has no members. *)

val rules : Diag.rule list
(** The stable [V]-code table for [rina_lint --list-rules]. *)
