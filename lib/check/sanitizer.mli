(** Runtime invariant checking over a live simulation.

    The low-cost check sites live inside the components themselves
    ({!Rina_sim.Engine} clock monotonicity and event-heap order,
    {!Rina_sim.Link} PDU conservation counters, {!Rina_core.Efcp}
    window invariants, {!Rina_core.Rib} object-name well-formedness),
    all guarded by [Rina_util.Invariant.enabled] — one load and one
    branch each when disabled.  This module is the front end: switch
    checking on, run the scenario, and collect every violation as a
    structured {!Diag.t}, plus end-of-run audits that need whole-run
    state.

    Typical use in a test or experiment:
    {[
      Sanitizer.enable ();
      ... build and run the scenario to drain ...
      let diags = Sanitizer.violations () @ Sanitizer.audit_link link in
      Sanitizer.disable ();
      assert (diags = [])
    ]} *)

val enable : unit -> unit
(** Switch invariant checking on and clear previously recorded
    violations.  Enable *before* building the scenario so conservation
    counters see every frame. *)

val disable : unit -> unit

val enabled : unit -> bool

val reset : unit -> unit
(** Forget recorded violations without changing the switch. *)

val violations : unit -> Diag.t list
(** Everything recorded through [Rina_util.Invariant] since the last
    {!enable}/{!reset}, as [Error] diagnostics ([SAN_CLOCK],
    [SAN_HEAP], [SAN_EFCP_SEQ], [SAN_EFCP_WINDOW], [SAN_EFCP_RCVBUF],
    [SAN_RIB_PATH], ...) with occurrence counts folded into the
    message. *)

val audit_link : ?label:string -> Rina_sim.Link.t -> Diag.t list
(** PDU-conservation audit ([SAN_PDU_CONSERVATION]): call once the
    event queue has drained; in each direction every injected frame
    must be accounted delivered or dropped.  Meaningful only if
    checking was enabled before the link carried traffic. *)

val audit_drained : Rina_sim.Engine.t -> Diag.t list
(** [SAN_PENDING]: warns when events are still queued — conservation
    audits run on a non-quiescent simulation undercount in-flight
    frames. *)

val check_routing_loops :
  (Rina_core.Types.address * Rina_core.Routing.next_hops) list -> Diag.t list
(** Walk every (source, destination) pair across the forwarding tables
    of all nodes: following next hops must reach the destination
    without revisiting a node.  Reports [SAN_ROUTE_LOOP] (error) for
    cycles and [SAN_ROUTE_BLACKHOLE] (warning) when a path dead-ends
    at a node with no route onward. *)

(** Structured-diagnostic front end to the domain-race sanitizer
    ({!Rina_util.Race}): {!Race.arm} before forking a parallel sweep,
    run it, then {!Race.diags} — one [Error] per distinct (cell, kind)
    pair of unsynchronized cross-domain accesses, as
    [SAN_RACE_WRITE_WRITE] / [SAN_RACE_READ_WRITE] /
    [SAN_RACE_WRITE_READ].  [Rina_exp.Par] is annotated throughout, so
    arming is all a test or CI job needs to do. *)
module Race : sig
  val arm : unit -> unit
  val disarm : unit -> unit
  val armed : unit -> bool
  val clear : unit -> unit

  val diags : unit -> Diag.t list
  (** Races recorded since the last [arm]/[clear], as [Error]
      diagnostics sorted by cell label. *)
end

val rules : Diag.rule list
(** The stable [SAN_*] code table for [rina_lint --list-rules]. *)
