(* Offline analysis over flight-recorder event lists: everything the
   [rina_trace] CLI prints is computed here so tests can assert on the
   numbers rather than on formatted output.  All functions tolerate
   out-of-order input (events are sorted where order matters), since
   sinks other than the in-memory buffer need not preserve emission
   order. *)

module Flight = Rina_util.Flight
module Stats = Rina_util.Stats

let by_time (a : Flight.event) (b : Flight.event) = compare a.Flight.time b.Flight.time

(* ---------- per-flow latency ---------- *)

(* A span is one PDU's journey: latency is first [Pdu_sent] to first
   [Pdu_recvd] with the same span id (first delivery, so retransmitted
   copies and duplicate receptions don't inflate the sample).  Samples
   are grouped by the receiving event's [flow] field — the span id is a
   hash and does not decompose back into (flow, seq). *)
let latency_by_flow events =
  let sent : (int, float) Hashtbl.t = Hashtbl.create 256 in
  let recvd : (int, float * int) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (e : Flight.event) ->
      if e.Flight.span <> 0 then
        match e.Flight.kind with
        | Flight.Pdu_sent | Flight.Retransmit -> (
          match Hashtbl.find_opt sent e.Flight.span with
          | Some t when t <= e.Flight.time -> ()
          | Some _ | None -> Hashtbl.replace sent e.Flight.span e.Flight.time)
        | Flight.Pdu_recvd -> (
          match Hashtbl.find_opt recvd e.Flight.span with
          | Some (t, _) when t <= e.Flight.time -> ()
          | Some _ | None ->
            Hashtbl.replace recvd e.Flight.span (e.Flight.time, e.Flight.flow))
        | Flight.Pdu_dropped _ | Flight.Enqueued | Flight.Dequeued
        | Flight.Timer_set | Flight.Timer_fired | Flight.Handoff
        | Flight.Route_update | Flight.Custom _ ->
          ())
    events;
  let flows : (int, Stats.t) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun span (t_recv, flow) ->
      match Hashtbl.find_opt sent span with
      | Some t_sent when t_recv >= t_sent ->
        let st =
          match Hashtbl.find_opt flows flow with
          | Some st -> st
          | None ->
            let st = Stats.create () in
            Hashtbl.replace flows flow st;
            st
        in
        Stats.add st (t_recv -. t_sent)
      | Some _ | None -> ())
    recvd;
  Hashtbl.fold (fun flow st acc -> (flow, st) :: acc) flows []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ---------- drops ---------- *)

let drop_breakdown events =
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (e : Flight.event) ->
      match e.Flight.kind with
      | Flight.Pdu_dropped r ->
        let key = Flight.reason_to_string r in
        Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
      | _ -> ())
    events;
  Hashtbl.fold (fun reason n acc -> (reason, n) :: acc) tbl []
  |> List.sort (fun (ra, na) (rb, nb) ->
         if na <> nb then compare nb na else compare ra rb)

(* ---------- delivery gap ---------- *)

(* Same contract as {!Rina_sim.Trace.largest_gap}: sort occurrence
   times, widest interval wins, strict comparison keeps the earliest
   interval on ties — so duplicate timestamps give a deterministic
   answer and the two implementations agree on shared input. *)
let gap_of_times times =
  let arr = Array.of_list times in
  Array.sort compare arr;
  if Array.length arr < 2 then None
  else begin
    let best_gap = ref (arr.(1) -. arr.(0)) and best_start = ref arr.(0) in
    for i = 1 to Array.length arr - 2 do
      let gap = arr.(i + 1) -. arr.(i) in
      if gap > !best_gap then begin
        best_gap := gap;
        best_start := arr.(i)
      end
    done;
    Some (!best_gap, !best_start)
  end

let has_prefix ~prefix s = String.starts_with ~prefix s

let delivery_gap ?component events =
  let keep (e : Flight.event) =
    (match e.Flight.kind with Flight.Pdu_recvd -> true | _ -> false)
    &&
    match component with
    | None -> true
    | Some p -> has_prefix ~prefix:p e.Flight.component
  in
  gap_of_times
    (List.filter_map
       (fun e -> if keep e then Some e.Flight.time else None)
       events)

(* ---------- per-fault blackout windows ---------- *)

(* The fault injector emits [Custom "fault:<label>"] at the apply time
   and [Custom "heal:<label>"] at the heal time of every plan step.
   The blackout attributed to a fault active on [a, h] is the widest
   interval between consecutive [Pdu_recvd] events that overlaps the
   active window — deliveries of PDUs already in flight right after
   the apply instant must not mask the outage, and the outage usually
   outlives the heal (retransmission backoff, reconvergence), which is
   exactly the recovery time under measurement.  [None] means no
   delivery ever happened after the fault applied — unbounded outage,
   the thing the chaos CI gate fails on.  A fault that hit during
   ramp-up (no deliveries at or before the heal) is charged from its
   apply time to the first delivery. *)
let blackouts ?component ?rank events =
  let keep_recv (e : Flight.event) =
    (match e.Flight.kind with Flight.Pdu_recvd -> true | _ -> false)
    && (match rank with None -> true | Some r -> e.Flight.rank = r)
    &&
    match component with
    | None -> true
    | Some p -> String.starts_with ~prefix:p e.Flight.component
  in
  let recvs =
    Array.of_list
      (List.filter_map
         (fun e -> if keep_recv e then Some e.Flight.time else None)
         events)
  in
  Array.sort compare recvs;
  let tagged prefix =
    let plen = String.length prefix in
    List.filter_map
      (fun (e : Flight.event) ->
        match e.Flight.kind with
        | Flight.Custom s when String.starts_with ~prefix s ->
          Some (e.Flight.time, String.sub s plen (String.length s - plen))
        | _ -> None)
      events
    |> List.stable_sort (fun (a, _) (b, _) -> compare a b)
  in
  let faults = tagged "fault:" and heals = tagged "heal:" in
  List.map
    (fun (a, label) ->
      let h =
        match
          List.find_opt (fun (t, l) -> t >= a && String.equal l label) heals
        with
        | Some (t, _) -> t
        | None -> a
      in
      let after =
        Array.fold_left
          (fun acc x -> if x > a && acc = None then Some x else acc)
          None recvs
      in
      let gap =
        match after with
        | None -> None
        | Some first_after ->
          let best = ref 0. in
          for i = 0 to Array.length recvs - 2 do
            if recvs.(i + 1) > a && recvs.(i) <= h then
              best := Float.max !best (recvs.(i + 1) -. recvs.(i))
          done;
          if !best > 0. then Some !best else Some (first_after -. a)
      in
      (label, a, gap))
    faults

(* ---------- queue / window occupancy timelines ---------- *)

let queue_timeline events =
  let tbl : (string, (float * int) list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (e : Flight.event) ->
      match e.Flight.kind with
      | Flight.Custom "probe" ->
        let r =
          match Hashtbl.find_opt tbl e.Flight.component with
          | Some r -> r
          | None ->
            let r = ref [] in
            Hashtbl.replace tbl e.Flight.component r;
            r
        in
        r := (e.Flight.time, e.Flight.size) :: !r
      | _ -> ())
    events;
  Hashtbl.fold
    (fun comp r acc -> (comp, List.sort compare (List.rev !r)) :: acc)
    tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ---------- span trees ---------- *)

(* Events sharing a span id, in time order: the PDU's path through the
   layers.  Spans are ordered by first appearance. *)
let span_tree ?(max_spans = max_int) events =
  let tbl : (int, Flight.event list ref) Hashtbl.t = Hashtbl.create 256 in
  let order = ref [] in
  List.iter
    (fun (e : Flight.event) ->
      if e.Flight.span <> 0 then
        match Hashtbl.find_opt tbl e.Flight.span with
        | Some r -> r := e :: !r
        | None ->
          Hashtbl.replace tbl e.Flight.span (ref [ e ]);
          order := e.Flight.span :: !order)
    events;
  let spans = List.rev !order in
  let rec take n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  List.map
    (fun span ->
      let evs = List.stable_sort by_time (List.rev !(Hashtbl.find tbl span)) in
      ( span,
        List.map
          (fun (e : Flight.event) ->
            (e.Flight.time, e.Flight.component, Flight.kind_to_string e.Flight.kind))
          evs ))
    (take max_spans spans)

let sequence_diagram ?(max_spans = 10) events =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (span, steps) ->
      let flow, seq =
        match
          List.find_opt
            (fun (e : Flight.event) -> e.Flight.span = span)
            events
        with
        | Some e -> (e.Flight.flow, e.Flight.seq)
        | None -> (0, 0)
      in
      Buffer.add_string buf
        (Printf.sprintf "span %012x  flow=%d seq=%d\n" span flow seq);
      let prev = ref None in
      List.iter
        (fun (time, comp, label) ->
          let arrow =
            match !prev with
            | Some p when p <> comp -> Printf.sprintf "%s -> %s" p comp
            | Some _ | None -> comp
          in
          prev := Some comp;
          Buffer.add_string buf
            (Printf.sprintf "  %12.6f  %-40s %s\n" time arrow label))
        steps;
      Buffer.add_char buf '\n')
    (span_tree ~max_spans events);
  Buffer.contents buf

(* ---------- sampling metadata ---------- *)

(* A head-sampled trace carries its keep rate as a marker event
   ([Trace.attach] emits it first thing); analyses use it to scale
   sampled span counts back to population estimates. *)
let sample_ppm events =
  List.find_map
    (fun (e : Flight.event) ->
      match e.Flight.kind with
      | Flight.Custom "meta:sample_ppm" when e.Flight.component = "trace" ->
        Some e.Flight.size
      | _ -> None)
    events

let scale_count ~ppm n =
  if ppm <= 0 || ppm >= 1_000_000 then n
  else int_of_float (Float.round (float_of_int n *. 1_000_000. /. float_of_int ppm))

(* ---------- summary ---------- *)

let summary events =
  let n = List.length events in
  if n = 0 then "empty trace\n"
  else begin
    let t_min = ref infinity and t_max = ref neg_infinity in
    let comps : (string, unit) Hashtbl.t = Hashtbl.create 32 in
    let kinds : (string, int) Hashtbl.t = Hashtbl.create 32 in
    let spans : (int, unit) Hashtbl.t = Hashtbl.create 256 in
    List.iter
      (fun (e : Flight.event) ->
        if e.Flight.time < !t_min then t_min := e.Flight.time;
        if e.Flight.time > !t_max then t_max := e.Flight.time;
        Hashtbl.replace comps e.Flight.component ();
        if e.Flight.span <> 0 then Hashtbl.replace spans e.Flight.span ();
        let key =
          match e.Flight.kind with
          | Flight.Pdu_dropped _ -> "pdu_dropped"
          | Flight.Custom _ -> "custom"
          | k -> Flight.kind_to_string k
        in
        Hashtbl.replace kinds key
          (1 + Option.value ~default:0 (Hashtbl.find_opt kinds key)))
      events;
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      (Printf.sprintf "%d events, %d components, %d spans, t=[%g, %g]\n" n
         (Hashtbl.length comps) (Hashtbl.length spans) !t_min !t_max);
    (match sample_ppm events with
     | Some ppm when ppm > 0 && ppm < 1_000_000 ->
       Buffer.add_string buf
         (Printf.sprintf
            "head-sampled at %g%% of spans (~%d spans in the full run); \
             span-derived counts are samples\n"
            (float_of_int ppm /. 10_000.)
            (scale_count ~ppm (Hashtbl.length spans)))
     | Some _ | None -> ());
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) kinds []
    |> List.sort (fun (ka, na) (kb, nb) ->
           if na <> nb then compare nb na else compare ka kb)
    |> List.iter (fun (k, v) ->
           Buffer.add_string buf (Printf.sprintf "  %-16s %d\n" k v));
    Buffer.contents buf
  end
