(** Relaying and Multiplexing Task.

    The short-timescale forwarding engine of an IPC process: it owns
    the (N-1) ports, serialises PDUs (with SDU protection) onto them,
    decodes arriving frames, delivers PDUs addressed to this IPC
    process upward, and relays the rest using a forwarding function
    installed by the management task.

    Multiplexing policy is pluggable ({!Policy.scheduler}): when a port
    is given a [rate], the RMT shapes departures and applies FIFO,
    strict-priority or weighted deficit-round-robin service among QoS
    classes — the knob experiment C3 turns. *)

type t

val queue_capacity : int
(** Hard per-class queue bound (PDUs) on shaped ports; arrivals beyond
    it are dropped.  Exported for the policy linter: a [mark_threshold]
    at or above it can never mark before overflowing. *)

val create :
  Rina_sim.Engine.t ->
  own_address:(unit -> Types.address) ->
  scheduler:Policy.scheduler ->
  ?congestion:Policy.congestion ->
  ?label:string ->
  ?rank:int ->
  unit ->
  t
(** [own_address] is consulted per PDU (it changes at enrollment).
    [congestion] (default {!Policy.default_congestion}, everything
    off) enables ECN-style marking on shaped ports: a Dtp frame
    joining a class queue at or over [mark_threshold] is marked with
    probability [mark_probability] (counter [ecn_marked]), and
    overflow of such a queue is accounted [R_congestion] (counter
    [congestion_dropped]) instead of plain [R_queue_full].  Marking
    draws from a private deterministic stream seeded from [label], so
    identical runs mark identical PDUs.  [label] (default ["rmt"])
    prefixes the flight-recorder component name, which is
    [label ^ "@" ^ address]; [rank] stamps events with the DIF rank. *)

val set_forwarding : t -> (Pdu.t -> Types.port_id option) -> unit
(** Install the relaying decision (management task supplies it;
    [None] = no route). *)

val set_deliver : t -> (Types.port_id option -> Pdu.t -> unit) -> unit
(** Upward delivery: PDUs whose [dst_addr] is this process or 0
    (neighbour scope).  The port argument is [Some p] for PDUs that
    arrived from below, [None] for locally-looped PDUs. *)

val set_classify : t -> (Pdu.t -> int) -> unit
(** Map a PDU to a scheduling class in \[0,7\] (default: class 0). *)

val set_ingress_filter : t -> (Types.port_id -> Pdu.t -> bool) -> unit
(** Gate applied to every PDU arriving from below *before* delivery or
    relaying.  The management task uses it to drop traffic from ports
    whose peer has not been authenticated as a DIF member — the
    structural security property of §6.1.  Rejected PDUs count as
    [ingress_dropped]. *)

val add_port : t -> ?rate:float -> Rina_sim.Chan.t -> Types.port_id
(** Bind an (N-1) flow as a port.  [rate] in bits/s enables shaping
    and scheduling on that port; without it frames go straight to the
    channel. *)

val remove_port : t -> Types.port_id -> unit

val ports : t -> Types.port_id list
(** Currently bound ports, sorted. *)

val port_chan : t -> Types.port_id -> Rina_sim.Chan.t option

val set_drop_reason : t -> (Pdu.t -> Rina_util.Flight.reason) -> unit
(** Refine the drop reason recorded when forwarding returns no port:
    the management task answers [R_path_down] when the destination is
    routed but every member path is Down (multipath monitor), and
    [R_no_route] otherwise (the default).  The refined reason also
    splits the metric: [path_down_dropped] vs [no_route]. *)

val send : t -> Pdu.t -> Types.port_id option
(** Route-or-deliver a locally originated PDU: destination may be this
    very process (looped up), a neighbour or any remote member.
    Returns the egress port the PDU was queued on, [None] for local
    delivery or a drop — the path tag EFCP keeps per outstanding PDU
    so failover can re-stripe exactly the stranded ones. *)

val send_on_port : t -> Types.port_id -> Pdu.t -> unit
(** Neighbour-scope transmission on an explicit port (hellos,
    enrollment); bypasses forwarding. *)

val queue_depth : t -> Types.port_id -> int
(** PDUs waiting in the shaper queues of a port (0 for unshaped). *)

val class_depths : t -> Types.port_id -> int array
(** Per-class queue occupancy of a shaped port ([num_classes] cells;
    empty array for unknown ports) — the congestion benches snapshot
    it to plot queue build-up. *)

val metrics : t -> Rina_util.Metrics.t
(** [relayed], [delivered_up], [no_route], [path_down_dropped],
    [ttl_expired], [crc_dropped], [decode_dropped], [queue_dropped],
    [sent], and per-port egress counters [sent_port<id>]... *)
