(** Link-state routing over the graph of a DIF's IPC processes.

    This module is the computational core only — the link-state
    database and shortest-path-first — deliberately free of I/O.  The
    IPC process floods {!Lsa.t}s in RIEP [M_write] messages, calls
    {!install} on reception, and rebuilds its forwarding table from
    {!spf} when the database changes.

    Routes are computed over *node addresses* ("a route is a sequence
    of node addresses"); selecting the point of attachment to the next
    hop is the second step (Fig. 4) and lives with the RMT's port
    choice, not here. *)

module Lsa : sig
  type t = {
    origin : Types.address;
    seq : int;  (** per-origin monotone version *)
    neighbors : (Types.address * float) list;  (** (neighbour, cost) *)
  }

  val encode : t -> bytes
  val decode : bytes -> (t, string) result
  val pp : Format.formatter -> t -> unit
end

type t

val create : unit -> t

val install : ?now:float -> t -> Lsa.t -> bool
(** Insert if newer than the stored version for that origin; [true]
    means the database changed and the LSA should be flooded on.
    [now] (virtual time, default 0) stamps the entry for {!expired};
    a duplicate of the stored sequence number refreshes the stamp
    without reporting a change — the origin proved itself alive. *)

val withdraw : t -> Types.address -> bool
(** Remove an origin's LSA entirely (member left or declared dead);
    [true] if present. *)

val expired : t -> now:float -> max_age:float -> Types.address list
(** Origins whose LSA has not been (re-)installed within [max_age]
    seconds of [now], sorted.  Empty when [max_age <= 0] (aging
    disabled). *)

val clear : t -> unit
(** Drop the whole database — an IPCP losing its state on crash. *)

val lsa_of : t -> Types.address -> Lsa.t option

val origins : t -> Types.address list
(** All origins present, sorted. *)

val all : t -> Lsa.t list

type next_hops = (Types.address, Types.address * float) Hashtbl.t
(** destination → (next-hop address, path cost) *)

val spf : t -> source:Types.address -> next_hops
(** Dijkstra from [source].  An edge is used only if both endpoints
    advertise it (two-way check), which keeps transients loop-free.
    The source itself does not appear in the result. *)

val spf_multi :
  t -> source:Types.address -> (Types.address, Types.address list * float) Hashtbl.t
(** Equal-cost variant of {!spf} for multipath striping: destination →
    (sorted equal-cost first hops, path cost).  Ties discovered during
    relaxation are merged; the result is deterministic for a given
    database.  The multihoming layer unions the live ports toward each
    listed first hop into the candidate path set. *)

val size : t -> int
(** Number of LSAs stored (per-node routing-state metric for C1). *)
