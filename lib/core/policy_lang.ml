type section =
  | S_none
  | S_efcp
  | S_scheduler
  | S_routing
  | S_enrollment
  | S_auth
  | S_dif
  | S_telemetry
  | S_congestion
  | S_shard
  | S_multipath

(* Mutable build state folded over the lines of the spec. *)
type state = {
  mutable policy : Policy.t;
  mutable section : section;
  mutable sched_kind : string;
  mutable sched_quantum : int;
  mutable auth_kind : string;
  mutable auth_secret : string;
}

let err line msg = Error (Printf.sprintf "line %d: %s" line msg)

let parse_int line key v k =
  match int_of_string_opt v with
  | Some n when n > 0 -> k n
  | Some _ | None -> err line (Printf.sprintf "%s expects a positive integer, got %S" key v)

let parse_nat line key v k =
  match int_of_string_opt v with
  | Some n when n >= 0 -> k n
  | Some _ | None ->
    err line (Printf.sprintf "%s expects a non-negative integer, got %S" key v)

let parse_float line key v k =
  match float_of_string_opt v with
  | Some f when f >= 0. -> k f
  | Some _ | None ->
    err line (Printf.sprintf "%s expects a non-negative number, got %S" key v)

let apply_kv st line key v =
  let p = st.policy in
  match (st.section, key) with
  | S_none, _ -> err line "key outside any [section]"
  | S_efcp, "window" ->
    parse_int line key v (fun n ->
        Ok { p with Policy.efcp = { p.Policy.efcp with Policy.window = n } })
  | S_efcp, "mtu" ->
    parse_int line key v (fun n ->
        Ok { p with Policy.efcp = { p.Policy.efcp with Policy.mtu = n } })
  | S_efcp, "init_rto" ->
    parse_float line key v (fun f ->
        Ok { p with Policy.efcp = { p.Policy.efcp with Policy.init_rto = f } })
  | S_efcp, "min_rto" ->
    parse_float line key v (fun f ->
        Ok { p with Policy.efcp = { p.Policy.efcp with Policy.min_rto = f } })
  | S_efcp, "max_rtx" ->
    parse_int line key v (fun n ->
        Ok { p with Policy.efcp = { p.Policy.efcp with Policy.max_rtx = n } })
  | S_efcp, "ack_delay" ->
    parse_float line key v (fun f ->
        Ok { p with Policy.efcp = { p.Policy.efcp with Policy.ack_delay = f } })
  | S_efcp, "rtx" -> (
    match v with
    | "selective" ->
      Ok
        {
          p with
          Policy.efcp = { p.Policy.efcp with Policy.rtx_strategy = Policy.Selective_repeat };
        }
    | "gbn" ->
      Ok
        {
          p with
          Policy.efcp = { p.Policy.efcp with Policy.rtx_strategy = Policy.Go_back_n };
        }
    | "none" ->
      Ok
        { p with Policy.efcp = { p.Policy.efcp with Policy.rtx_strategy = Policy.No_rtx } }
    | other -> err line (Printf.sprintf "rtx must be selective|gbn|none, got %S" other))
  | S_efcp, "cc" -> (
    match v with
    | "on" ->
      Ok { p with Policy.efcp = { p.Policy.efcp with Policy.congestion_control = true } }
    | "off" ->
      Ok
        { p with Policy.efcp = { p.Policy.efcp with Policy.congestion_control = false } }
    | other -> err line (Printf.sprintf "cc must be on|off, got %S" other))
  | S_efcp, "sack_blocks" ->
    parse_nat line key v (fun n ->
        Ok { p with Policy.efcp = { p.Policy.efcp with Policy.sack_blocks = n } })
  | S_efcp, "reorder_window" ->
    parse_int line key v (fun n ->
        Ok
          { p with Policy.efcp = { p.Policy.efcp with Policy.reorder_window = n } })
  | S_efcp, "max_dup_cache" ->
    parse_nat line key v (fun n ->
        Ok
          { p with Policy.efcp = { p.Policy.efcp with Policy.max_dup_cache = n } })
  | S_scheduler, "kind" ->
    st.sched_kind <- v;
    Ok p
  | S_scheduler, "quantum" ->
    parse_int line key v (fun n ->
        st.sched_quantum <- n;
        Ok p)
  | S_routing, "hello_interval" ->
    parse_float line key v (fun f ->
        Ok { p with Policy.routing = { p.Policy.routing with Policy.hello_interval = f } })
  | S_routing, "dead_interval" ->
    parse_float line key v (fun f ->
        Ok { p with Policy.routing = { p.Policy.routing with Policy.dead_interval = f } })
  | S_routing, "refresh_ticks" ->
    parse_int line key v (fun n ->
        Ok
          { p with Policy.routing = { p.Policy.routing with Policy.refresh_ticks = n } })
  | S_routing, "lsa_min_interval" ->
    parse_float line key v (fun f ->
        Ok
          {
            p with
            Policy.routing = { p.Policy.routing with Policy.lsa_min_interval = f };
          })
  | S_routing, "keepalive_interval" ->
    parse_float line key v (fun f ->
        Ok
          {
            p with
            Policy.routing = { p.Policy.routing with Policy.keepalive_interval = f };
          })
  | S_routing, "dead_peer_timeout" ->
    parse_float line key v (fun f ->
        Ok
          {
            p with
            Policy.routing = { p.Policy.routing with Policy.dead_peer_timeout = f };
          })
  | S_routing, "lsa_max_age" ->
    parse_float line key v (fun f ->
        Ok { p with Policy.routing = { p.Policy.routing with Policy.lsa_max_age = f } })
  | S_routing, "anti_entropy_interval" ->
    parse_float line key v (fun f ->
        Ok
          {
            p with
            Policy.routing = { p.Policy.routing with Policy.anti_entropy_interval = f };
          })
  | S_enrollment, "enroll_timeout" ->
    parse_float line key v (fun f ->
        Ok
          {
            p with
            Policy.enrollment = { p.Policy.enrollment with Policy.enroll_timeout = f };
          })
  | S_enrollment, "enroll_retries" ->
    parse_nat line key v (fun n ->
        Ok
          {
            p with
            Policy.enrollment = { p.Policy.enrollment with Policy.enroll_retries = n };
          })
  | S_enrollment, "retry_backoff" ->
    parse_float line key v (fun f ->
        Ok
          {
            p with
            Policy.enrollment = { p.Policy.enrollment with Policy.retry_backoff = f };
          })
  | S_auth, "kind" ->
    st.auth_kind <- v;
    Ok p
  | S_auth, "secret" ->
    st.auth_secret <- v;
    Ok p
  | S_dif, "max_ttl" -> parse_int line key v (fun n -> Ok { p with Policy.max_ttl = n })
  | S_telemetry, "trace_sample_rate" -> (
    match float_of_string_opt v with
    | Some f when f > 0. && f <= 1. ->
      Ok
        {
          p with
          Policy.telemetry = { p.Policy.telemetry with Policy.trace_sample_rate = f };
        }
    | Some _ | None ->
      err line
        (Printf.sprintf "trace_sample_rate expects a number in (0, 1], got %S" v))
  | S_telemetry, "snapshot_interval" ->
    parse_float line key v (fun f ->
        Ok
          {
            p with
            Policy.telemetry = { p.Policy.telemetry with Policy.snapshot_interval = f };
          })
  | S_telemetry, "flight_ring_capacity" ->
    parse_nat line key v (fun n ->
        Ok
          {
            p with
            Policy.telemetry =
              { p.Policy.telemetry with Policy.flight_ring_capacity = n };
          })
  | S_congestion, "mark_threshold" ->
    parse_nat line key v (fun n ->
        Ok
          {
            p with
            Policy.congestion = { p.Policy.congestion with Policy.mark_threshold = n };
          })
  | S_congestion, "mark_probability" -> (
    match float_of_string_opt v with
    | Some f when f >= 0. && f <= 1. ->
      Ok
        {
          p with
          Policy.congestion = { p.Policy.congestion with Policy.mark_probability = f };
        }
    | Some _ | None ->
      err line (Printf.sprintf "mark_probability expects a number in [0, 1], got %S" v))
  | S_congestion, "pushback" -> (
    match v with
    | "on" ->
      Ok { p with Policy.congestion = { p.Policy.congestion with Policy.pushback = true } }
    | "off" ->
      Ok
        { p with Policy.congestion = { p.Policy.congestion with Policy.pushback = false } }
    | other -> err line (Printf.sprintf "pushback must be on|off, got %S" other))
  | S_congestion, "admission_max_pending" ->
    parse_nat line key v (fun n ->
        Ok
          {
            p with
            Policy.congestion =
              { p.Policy.congestion with Policy.admission_max_pending = n };
          })
  | S_congestion, "admission_backoff" ->
    parse_float line key v (fun f ->
        Ok
          {
            p with
            Policy.congestion = { p.Policy.congestion with Policy.admission_backoff = f };
          })
  | S_shard, "shards" ->
    parse_nat line key v (fun n ->
        Ok { p with Policy.shard = { p.Policy.shard with Policy.shards = n } })
  | S_shard, "mailbox_capacity" ->
    parse_int line key v (fun n ->
        if n < 2 then err line "mailbox_capacity must be at least 2"
        else
          Ok
            {
              p with
              Policy.shard = { p.Policy.shard with Policy.mailbox_capacity = n };
            })
  | S_multipath, "probe_interval" ->
    parse_float line key v (fun f ->
        Ok
          {
            p with
            Policy.multipath = { p.Policy.multipath with Policy.probe_interval = f };
          })
  | S_multipath, "suspect_misses" ->
    parse_int line key v (fun n ->
        Ok
          {
            p with
            Policy.multipath = { p.Policy.multipath with Policy.suspect_misses = n };
          })
  | S_multipath, "down_misses" ->
    parse_int line key v (fun n ->
        Ok
          {
            p with
            Policy.multipath = { p.Policy.multipath with Policy.down_misses = n };
          })
  | S_multipath, "reprobe_backoff" ->
    parse_float line key v (fun f ->
        Ok
          {
            p with
            Policy.multipath = { p.Policy.multipath with Policy.reprobe_backoff = f };
          })
  | S_multipath, (("latency" | "throughput" | "background") as label) -> (
    let set mode =
      let m = p.Policy.multipath in
      let m =
        match label with
        | "latency" -> { m with Policy.latency = mode }
        | "throughput" -> { m with Policy.throughput = mode }
        | _ -> { m with Policy.background = mode }
      in
      Ok { p with Policy.multipath = m }
    in
    match v with
    | "primary" -> set Policy.Primary_backup
    | "wrr" -> set Policy.Weighted_rr
    | other -> err line (Printf.sprintf "%s must be primary|wrr, got %S" label other))
  | ( ( S_efcp | S_scheduler | S_routing | S_enrollment | S_auth | S_dif | S_telemetry
      | S_congestion | S_shard | S_multipath ),
      other ) ->
    err line (Printf.sprintf "unknown key %S in this section" other)

let finish st line =
  let sched =
    match st.sched_kind with
    | "" | "fifo" -> Ok Policy.Fifo
    | "priority" -> Ok Policy.Priority_queueing
    | "drr" -> Ok (Policy.Drr st.sched_quantum)
    | other -> err line (Printf.sprintf "scheduler kind must be fifo|priority|drr, got %S" other)
  in
  let auth =
    match st.auth_kind with
    | "" | "none" -> Ok Policy.Auth_none
    | "password" ->
      if String.equal st.auth_secret "" then
        err line "auth kind=password requires a secret"
      else Ok (Policy.Auth_password st.auth_secret)
    | other -> err line (Printf.sprintf "auth kind must be none|password, got %S" other)
  in
  match (sched, auth) with
  | Ok scheduler, Ok auth ->
    Ok { st.policy with Policy.scheduler; Policy.auth }
  | (Error _ as e), _ -> e
  | _, (Error _ as e) -> e

let section_name = function
  | S_none -> "none"
  | S_efcp -> "efcp"
  | S_scheduler -> "scheduler"
  | S_routing -> "routing"
  | S_enrollment -> "enrollment"
  | S_auth -> "auth"
  | S_dif -> "dif"
  | S_telemetry -> "telemetry"
  | S_congestion -> "congestion"
  | S_shard -> "shard"
  | S_multipath -> "multipath"

let strip_comment line =
  match String.index_opt line '#' with
  | None -> line
  | Some i -> String.sub line 0 i

let parse ?(base = Policy.default) text =
  let st =
    {
      policy = base;
      section = S_none;
      sched_kind = "";
      sched_quantum = 1500;
      auth_kind = "";
      auth_secret = "";
    }
  in
  (match base.Policy.scheduler with
   | Policy.Fifo -> st.sched_kind <- "fifo"
   | Policy.Priority_queueing -> st.sched_kind <- "priority"
   | Policy.Drr q ->
     st.sched_kind <- "drr";
     st.sched_quantum <- q);
  (match base.Policy.auth with
   | Policy.Auth_none -> st.auth_kind <- "none"
   | Policy.Auth_password s ->
     st.auth_kind <- "password";
     st.auth_secret <- s);
  (* (section, key) -> line of the first occurrence; a second write to
     the same key is a spec bug (it used to silently last-write-win). *)
  let seen : (string * string, int) Hashtbl.t = Hashtbl.create 16 in
  let lines = String.split_on_char '\n' text in
  let rec loop n = function
    | [] -> finish st n
    | raw :: rest -> (
      let line = String.trim (strip_comment raw) in
      if String.equal line "" then loop (n + 1) rest
      else if String.length line >= 2 && line.[0] = '[' && line.[String.length line - 1] = ']'
      then begin
        let name = String.sub line 1 (String.length line - 2) in
        match name with
        | "efcp" ->
          st.section <- S_efcp;
          loop (n + 1) rest
        | "scheduler" ->
          st.section <- S_scheduler;
          loop (n + 1) rest
        | "routing" ->
          st.section <- S_routing;
          loop (n + 1) rest
        | "enrollment" ->
          st.section <- S_enrollment;
          loop (n + 1) rest
        | "auth" ->
          st.section <- S_auth;
          loop (n + 1) rest
        | "dif" ->
          st.section <- S_dif;
          loop (n + 1) rest
        | "telemetry" ->
          st.section <- S_telemetry;
          loop (n + 1) rest
        | "congestion" ->
          st.section <- S_congestion;
          loop (n + 1) rest
        | "shard" ->
          st.section <- S_shard;
          loop (n + 1) rest
        | "multipath" ->
          st.section <- S_multipath;
          loop (n + 1) rest
        | other -> err n (Printf.sprintf "unknown section [%s]" other)
      end
      else
        match String.index_opt line '=' with
        | None -> err n (Printf.sprintf "expected key = value, got %S" line)
        | Some i -> (
          let key = String.trim (String.sub line 0 i) in
          let v = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
          let id = (section_name st.section, key) in
          match Hashtbl.find_opt seen id with
          | Some first ->
            err n
              (Printf.sprintf "duplicate key %S in [%s] (first set at line %d)" key
                 (fst id) first)
          | None ->
            Hashtbl.replace seen id n;
          match apply_kv st n key v with
          | Ok p ->
            st.policy <- p;
            loop (n + 1) rest
          | Error _ as e -> e))
  in
  loop 1 lines

let stripe_name = function
  | Policy.Primary_backup -> "primary"
  | Policy.Weighted_rr -> "wrr"

let to_string (p : Policy.t) =
  let e = p.Policy.efcp and r = p.Policy.routing and en = p.Policy.enrollment in
  let rtx =
    match e.Policy.rtx_strategy with
    | Policy.Selective_repeat -> "selective"
    | Policy.Go_back_n -> "gbn"
    | Policy.No_rtx -> "none"
  in
  let sched_lines =
    match p.Policy.scheduler with
    | Policy.Fifo -> "kind = fifo"
    | Policy.Priority_queueing -> "kind = priority"
    | Policy.Drr q -> Printf.sprintf "kind = drr\nquantum = %d" q
  in
  let auth_lines =
    match p.Policy.auth with
    | Policy.Auth_none -> "kind = none"
    | Policy.Auth_password s -> Printf.sprintf "kind = password\nsecret = %s" s
  in
  String.concat "\n"
    [
      "[efcp]";
      Printf.sprintf "window = %d" e.Policy.window;
      Printf.sprintf "mtu = %d" e.Policy.mtu;
      Printf.sprintf "init_rto = %g" e.Policy.init_rto;
      Printf.sprintf "min_rto = %g" e.Policy.min_rto;
      Printf.sprintf "max_rtx = %d" e.Policy.max_rtx;
      Printf.sprintf "ack_delay = %g" e.Policy.ack_delay;
      Printf.sprintf "rtx = %s" rtx;
      Printf.sprintf "cc = %s" (if e.Policy.congestion_control then "on" else "off");
      Printf.sprintf "sack_blocks = %d" e.Policy.sack_blocks;
      Printf.sprintf "reorder_window = %d" e.Policy.reorder_window;
      Printf.sprintf "max_dup_cache = %d" e.Policy.max_dup_cache;
      "[scheduler]";
      sched_lines;
      "[routing]";
      Printf.sprintf "hello_interval = %g" r.Policy.hello_interval;
      Printf.sprintf "dead_interval = %g" r.Policy.dead_interval;
      Printf.sprintf "lsa_min_interval = %g" r.Policy.lsa_min_interval;
      Printf.sprintf "refresh_ticks = %d" r.Policy.refresh_ticks;
      Printf.sprintf "keepalive_interval = %g" r.Policy.keepalive_interval;
      Printf.sprintf "dead_peer_timeout = %g" r.Policy.dead_peer_timeout;
      Printf.sprintf "lsa_max_age = %g" r.Policy.lsa_max_age;
      Printf.sprintf "anti_entropy_interval = %g" r.Policy.anti_entropy_interval;
      "[enrollment]";
      Printf.sprintf "enroll_timeout = %g" en.Policy.enroll_timeout;
      Printf.sprintf "enroll_retries = %d" en.Policy.enroll_retries;
      Printf.sprintf "retry_backoff = %g" en.Policy.retry_backoff;
      "[auth]";
      auth_lines;
      "[dif]";
      Printf.sprintf "max_ttl = %d" p.Policy.max_ttl;
      "[telemetry]";
      Printf.sprintf "trace_sample_rate = %g" p.Policy.telemetry.Policy.trace_sample_rate;
      Printf.sprintf "snapshot_interval = %g" p.Policy.telemetry.Policy.snapshot_interval;
      Printf.sprintf "flight_ring_capacity = %d"
        p.Policy.telemetry.Policy.flight_ring_capacity;
      "[congestion]";
      Printf.sprintf "mark_threshold = %d" p.Policy.congestion.Policy.mark_threshold;
      Printf.sprintf "mark_probability = %g" p.Policy.congestion.Policy.mark_probability;
      Printf.sprintf "pushback = %s"
        (if p.Policy.congestion.Policy.pushback then "on" else "off");
      Printf.sprintf "admission_max_pending = %d"
        p.Policy.congestion.Policy.admission_max_pending;
      Printf.sprintf "admission_backoff = %g"
        p.Policy.congestion.Policy.admission_backoff;
      "[shard]";
      Printf.sprintf "shards = %d" p.Policy.shard.Policy.shards;
      Printf.sprintf "mailbox_capacity = %d" p.Policy.shard.Policy.mailbox_capacity;
      "[multipath]";
      Printf.sprintf "probe_interval = %g" p.Policy.multipath.Policy.probe_interval;
      Printf.sprintf "suspect_misses = %d" p.Policy.multipath.Policy.suspect_misses;
      Printf.sprintf "down_misses = %d" p.Policy.multipath.Policy.down_misses;
      Printf.sprintf "reprobe_backoff = %g" p.Policy.multipath.Policy.reprobe_backoff;
      Printf.sprintf "latency = %s" (stripe_name p.Policy.multipath.Policy.latency);
      Printf.sprintf "throughput = %s" (stripe_name p.Policy.multipath.Policy.throughput);
      Printf.sprintf "background = %s" (stripe_name p.Policy.multipath.Policy.background);
      "";
    ]
