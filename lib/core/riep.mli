(** Resource Information Exchange Protocol.

    The management protocol of a DIF: a small request/response
    vocabulary over named RIB objects (CDAP-like).  RIEP messages
    travel inside [Mgmt] PDUs between the management tasks of IPC
    processes; everything long-timescale — enrollment, directory
    updates, link-state flooding, flow allocation — is an operation on
    a RIB object expressed in this protocol. *)

type opcode =
  | M_connect   (** begin enrollment (application connect) *)
  | M_connect_r
  | M_release   (** leave the DIF *)
  | M_create    (** create an object (flow request, directory entry...) *)
  | M_create_r
  | M_delete
  | M_delete_r
  | M_read
  | M_read_r
  | M_write     (** unsolicited state update (LSA flood, dir sync) *)
  | M_start
  | M_stop

type t = {
  opcode : opcode;
  obj_class : string;  (** e.g. ["flow"], ["lsa"], ["directory"], ["enrollment"] *)
  obj_name : string;   (** RIB path the operation targets *)
  obj_value : Rib.value option;
  invoke_id : int;     (** correlates a response with its request *)
  result : int;        (** 0 = success in [*_r] messages *)
  result_reason : string;
  version : int;
      (** object version for [M_write] RIB updates; [0] = unversioned
          (legacy accept-if-different semantics) *)
  origin : int;  (** address of the object's owner; [0] = unversioned *)
}

val make :
  opcode:opcode ->
  ?obj_class:string ->
  ?obj_name:string ->
  ?obj_value:Rib.value ->
  ?invoke_id:int ->
  ?result:int ->
  ?result_reason:string ->
  ?version:int ->
  ?origin:int ->
  unit ->
  t

val encode : t -> bytes
val decode : bytes -> (t, string) result

val opcode_name : opcode -> string
(** Wire-style opcode mnemonic, e.g. ["M_CREATE_R"]. *)

val trace_label : t -> string
(** Compact flight-recorder label for a message:
    ["<opcode>/<obj_class>"], e.g. ["M_WRITE/lsa"]. *)

val is_response : t -> bool

val response_opcode : opcode -> opcode option
(** [response_opcode M_create = Some M_create_r]; [None] for opcodes
    with no paired response. *)

val pp : Format.formatter -> t -> unit
