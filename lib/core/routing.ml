module Lsa = struct
  type t = {
    origin : Types.address;
    seq : int;
    neighbors : (Types.address * float) list;
  }

  let encode t =
    let module W = Rina_util.Codec.Writer in
    let w = W.create () in
    W.u32 w t.origin;
    W.u32 w t.seq;
    W.u16 w (List.length t.neighbors);
    List.iter
      (fun (addr, cost) ->
        W.u32 w addr;
        W.f64 w cost)
      t.neighbors;
    W.contents w

  let decode data =
    let module R = Rina_util.Codec.Reader in
    try
      let r = R.create data in
      let origin = R.u32 r in
      let seq = R.u32 r in
      let n = R.u16 r in
      let neighbors =
        List.init n (fun _ ->
            let addr = R.u32 r in
            let cost = R.f64 r in
            (addr, cost))
      in
      R.expect_end r;
      Ok { origin; seq; neighbors }
    with R.Decode_error msg -> Error msg

  let pp fmt t =
    Format.fprintf fmt "LSA(%d seq=%d: %s)" t.origin t.seq
      (String.concat ","
         (List.map (fun (a, c) -> Printf.sprintf "%d/%.1f" a c) t.neighbors))
end

type t = {
  db : (Types.address, Lsa.t) Hashtbl.t;
  (* virtual time each origin's LSA was last installed/refreshed;
     drives aging.  An origin absent here was installed by a caller
     that never passes ~now (age 0 forever). *)
  installed_at : (Types.address, float) Hashtbl.t;
}

let create () = { db = Hashtbl.create 32; installed_at = Hashtbl.create 32 }

let install ?(now = 0.) t (lsa : Lsa.t) =
  match Hashtbl.find_opt t.db lsa.Lsa.origin with
  | Some existing when existing.Lsa.seq > lsa.Lsa.seq -> false
  | Some existing when existing.Lsa.seq = lsa.Lsa.seq ->
    (* Duplicate: not a change (don't re-flood), but the origin proved
       itself alive, so refresh its age. *)
    Hashtbl.replace t.installed_at lsa.Lsa.origin now;
    false
  | Some _ | None ->
    Hashtbl.replace t.db lsa.Lsa.origin lsa;
    Hashtbl.replace t.installed_at lsa.Lsa.origin now;
    (* An accepted LSA is a routing-state change: events carry the
       origin as the flow field and the LSA sequence number. *)
    if Rina_util.Flight.enabled () then
      Rina_util.Flight.emit ~component:"routing" ~flow:lsa.Lsa.origin
        ~seq:lsa.Lsa.seq Rina_util.Flight.Route_update;
    true

let withdraw t origin =
  if Hashtbl.mem t.db origin then begin
    Hashtbl.remove t.db origin;
    Hashtbl.remove t.installed_at origin;
    true
  end
  else false

let expired t ~now ~max_age =
  if max_age <= 0. then []
  else
    Hashtbl.fold
      (fun origin _ acc ->
        let at =
          match Hashtbl.find_opt t.installed_at origin with
          | Some at -> at
          | None -> 0.
        in
        if now -. at > max_age then origin :: acc else acc)
      t.db []
    |> List.sort compare

let clear t =
  Hashtbl.reset t.db;
  Hashtbl.reset t.installed_at

let lsa_of t origin = Hashtbl.find_opt t.db origin

let origins t =
  Hashtbl.fold (fun origin _ acc -> origin :: acc) t.db [] |> List.sort compare

let all t = Hashtbl.fold (fun _ lsa acc -> lsa :: acc) t.db []

type next_hops = (Types.address, Types.address * float) Hashtbl.t

(* Edge a->b with cost c is usable only if b also advertises a (the
   cost used is a's view). *)
let usable_neighbors t (lsa : Lsa.t) =
  List.filter
    (fun (b, _) ->
      match Hashtbl.find_opt t.db b with
      | None -> false
      | Some back -> List.exists (fun (a, _) -> a = lsa.Lsa.origin) back.Lsa.neighbors)
    lsa.Lsa.neighbors

let spf t ~source =
  let result : next_hops = Hashtbl.create 32 in
  match Hashtbl.find_opt t.db source with
  | None -> result
  | Some _ ->
    (* Dijkstra; heap entries carry (node, first_hop on the path). *)
    let heap = Rina_util.Heap.create () in
    let dist : (Types.address, float) Hashtbl.t = Hashtbl.create 32 in
    Hashtbl.replace dist source 0.;
    Rina_util.Heap.push heap 0. (source, Types.no_address);
    let finished : (Types.address, unit) Hashtbl.t = Hashtbl.create 32 in
    let continue = ref true in
    while !continue do
      match Rina_util.Heap.pop heap with
      | None -> continue := false
      | Some (cost, (node, first_hop)) ->
        if not (Hashtbl.mem finished node) then begin
          Hashtbl.replace finished node ();
          if node <> source then Hashtbl.replace result node (first_hop, cost);
          match Hashtbl.find_opt t.db node with
          | None -> ()
          | Some lsa ->
            List.iter
              (fun (next, edge_cost) ->
                if not (Hashtbl.mem finished next) then begin
                  let ncost = cost +. edge_cost in
                  let better =
                    match Hashtbl.find_opt dist next with
                    | None -> true
                    | Some d -> ncost < d
                  in
                  if better then begin
                    Hashtbl.replace dist next ncost;
                    let fh = if node = source then next else first_hop in
                    Rina_util.Heap.push heap ncost (next, fh)
                  end
                end)
              (usable_neighbors t lsa)
        end
    done;
    result

(* Equal-cost variant for multipath striping: per destination, the
   sorted set of first hops that start a shortest path, plus the cost.
   Dijkstra with first-hop sets merged on cost ties during relaxation;
   ties discovered only between two already-equal finished nodes are
   not chased (a predecessor-DAG pass could find more, but partial
   ECMP is fine — what matters is that the result is deterministic). *)
let spf_multi t ~source =
  let result : (Types.address, Types.address list * float) Hashtbl.t =
    Hashtbl.create 32
  in
  match Hashtbl.find_opt t.db source with
  | None -> result
  | Some _ ->
    let heap = Rina_util.Heap.create () in
    let dist : (Types.address, float) Hashtbl.t = Hashtbl.create 32 in
    let fhs : (Types.address, Types.address list) Hashtbl.t =
      Hashtbl.create 32
    in
    Hashtbl.replace dist source 0.;
    Rina_util.Heap.push heap 0. source;
    let finished : (Types.address, unit) Hashtbl.t = Hashtbl.create 32 in
    let continue = ref true in
    while !continue do
      match Rina_util.Heap.pop heap with
      | None -> continue := false
      | Some (cost, node) ->
        if not (Hashtbl.mem finished node) then begin
          Hashtbl.replace finished node ();
          if node <> source then
            Hashtbl.replace result node
              ( (match Hashtbl.find_opt fhs node with
                | Some l -> List.sort_uniq compare l
                | None -> []),
                cost );
          match Hashtbl.find_opt t.db node with
          | None -> ()
          | Some lsa ->
            List.iter
              (fun (next, edge_cost) ->
                if not (Hashtbl.mem finished next) then begin
                  let ncost = cost +. edge_cost in
                  let nfh =
                    if node = source then [ next ]
                    else
                      match Hashtbl.find_opt fhs node with
                      | Some l -> l
                      | None -> []
                  in
                  match Hashtbl.find_opt dist next with
                  | Some d when ncost > d -> ()
                  | Some d when ncost = d ->
                    let cur =
                      match Hashtbl.find_opt fhs next with
                      | Some l -> l
                      | None -> []
                    in
                    Hashtbl.replace fhs next
                      (List.sort_uniq compare (nfh @ cur))
                  | Some _ | None ->
                    Hashtbl.replace dist next ncost;
                    Hashtbl.replace fhs next nfh;
                    Rina_util.Heap.push heap ncost next
                end)
              (usable_neighbors t lsa)
        end
    done;
    result

let size t = Hashtbl.length t.db
