(** The IPC process: one member of a distributed IPC facility.

    An IPC process integrates the three task sets of the paper,
    loosely coupled through the RIB and per-flow state:

    - {e IPC data transfer} — the {!Rmt} (relaying/multiplexing) and
      per-flow DTP;
    - {e IPC transfer control} — {!Efcp} retransmission/flow control;
    - {e IPC management} — RIEP over the {!Rib}: enrollment,
      directory, link-state routing, flow allocation, access control.

    Applications interact only through {!register_app} and
    {!allocate_flow}, naming peers by {!Types.apn}.  Addresses exist
    in this interface solely for instrumentation ({!address} et al.);
    the {!flow} record visible to applications carries none.

    (N-1) connectivity is abstracted as {!Rina_sim.Chan.t}: a bottom
    ("shim") DIF binds physical media channels, a higher DIF binds
    flows of the DIF below wrapped by {!chan_of_flow} — this is the
    recursion of the architecture. *)

type t

(** What an application holds: one end of an allocated IPC channel.
    Port ids are local and dynamically assigned; no addresses. *)
type flow = {
  port_id : Types.port_id;
  qos : Qos.t;
  remote_app : Types.apn;
  send : bytes -> unit;  (** transmit one SDU (delimited internally) *)
  set_on_receive : (bytes -> unit) -> unit;  (** complete-SDU callback *)
  set_on_error : (string -> unit) -> unit;
      (** abort callback: fires (at most once) when EFCP gives up on
          the flow — persistent retransmission failure — after which
          the local endpoint is already closed *)
  close : unit -> unit;  (** deallocate both ends *)
  flow_metrics : unit -> Rina_util.Metrics.t;  (** EFCP counters *)
  congested : unit -> bool;
      (** whether the flow's EFCP is under congestion pressure
          ({!Efcp.congested}) — an upper DIF multiplexed over this
          flow consults it to push congestion up the stack *)
}

val create :
  Rina_sim.Engine.t ->
  ?trace:Rina_sim.Trace.t ->
  ?credentials:string ->
  ?qos_cubes:Qos.t list ->
  ?rank:int ->
  name:Types.apn ->
  dif:Types.dif_name ->
  policy:Policy.t ->
  unit ->
  t
(** A fresh, unenrolled IPC process.  [credentials] is presented when
    enrolling (checked against the DIF's {!Policy.auth});
    [qos_cubes] defaults to {!Qos.standard_cubes}.  [rank] (default 0)
    is the DIF's depth in the stack, stamped on flight-recorder
    events. *)

val bootstrap : t -> unit
(** Make this process the founding member of its DIF: it assigns
    itself address 1 and starts accepting enrollments.
    @raise Invalid_argument if already enrolled. *)

val bind_port : t -> ?cost:float -> ?rate:float -> Rina_sim.Chan.t -> Types.port_id
(** Attach an (N-1) channel.  Identity hellos start immediately; if
    this process is unenrolled and the peer turns out to be a member,
    enrollment is initiated automatically over this port.  [cost]
    (default 1.0) is the routing metric of the adjacency; [rate]
    enables RMT shaping/scheduling on the port. *)

val unbind_port : t -> Types.port_id -> unit
(** Detach; the adjacency (if any) is torn down and flooded. *)

val set_auto_enroll : t -> bool -> unit
(** Whether seeing a member's hello triggers enrollment (default
    [true]; {!leave} clears it so a departure sticks). *)

val crash : t -> unit
(** Fail-stop: every piece of volatile state — flows, RIB, link-state
    database, address, enrollment — vanishes without any notification
    to the rest of the DIF, which must {e detect} the death (dead-peer
    timeout, LSA aging).  Timers keep ticking but no-op; the ingress
    filter drops everything.  Idempotent. *)

val restart : t -> unit
(** Bring a crashed process back as a blank, unenrolled member: it
    re-announces itself on its ports and re-enrolls on the next member
    hello, obtaining a {e fresh} address.  Applications registered
    before the crash survive and are republished in the directory once
    re-enrollment completes.  No-op unless crashed. *)

val is_up : t -> bool
(** [false] between {!crash} and {!restart}. *)

val leave : t -> unit
(** Graceful departure from the DIF (§5's lifecycle, completed): all
    registered applications are withdrawn from the directory, the
    member floods a final LSA with no neighbours (so routes through it
    vanish everywhere), open flows are closed, and the process reverts
    to the unenrolled state — a later hello from a member would let it
    re-enroll with a fresh address. *)

(* --- application interface (names only) --- *)

val register_app : t -> Types.apn -> on_flow:(flow -> unit) -> unit
(** Make an application reachable under its name in this DIF; the
    mapping is published in the distributed directory.  [on_flow]
    fires for each accepted incoming flow. *)

val unregister_app : t -> Types.apn -> unit

val allocate_flow :
  t ->
  src:Types.apn ->
  dst:Types.apn ->
  qos_id:Types.qos_id ->
  on_result:((flow, string) result -> unit) ->
  unit
(** Locate [dst] by name, verify it is reachable and access is
    permitted (the request travels to the destination — there is no
    DNS-style lookup-and-forget), allocate EFCP state on both ends and
    return the flow.  Fails with a reason otherwise (unknown name, no
    route, ACL denial, timeout). *)

val chan_of_flow : t -> flow -> Rina_sim.Chan.t
(** Repackage a flow of [t] as an (N-1) channel for a higher-rank DIF
    — the recursion step.  The channel's carrier reflects whether [t]
    still has any live point of attachment: when the node's last link
    in this DIF dies, local holders of flow-backed channels learn
    immediately (the system knows its own radios), while remote
    failures are still detected by the upper DIF's hello timers. *)

(* --- management / instrumentation (not part of the app-visible API) --- *)

val name : t -> Types.apn
val dif_name : t -> Types.dif_name

val is_enrolled : t -> bool

val address : t -> Types.address
(** 0 until enrolled. *)

val on_enrolled : t -> (unit -> unit) -> unit
(** Run a hook once enrollment completes (immediately if already). *)

val neighbors : t -> (Types.address * Types.port_id list) list
(** Live adjacencies with their points of attachment (multiple ports
    to the same neighbour = multihoming). *)

val routing_table : t -> (Types.address * Types.address * float) list
(** (destination, next hop, cost) rows currently installed. *)

val path_health : t -> string list
(** One line per monitored path (port, Up/Suspect/Down, consecutive
    misses), sorted — empty until the multipath monitor has probed.
    What [rina_stats] prints for multihomed processes. *)

val rib : t -> Rib.t
val metrics : t -> Rina_util.Metrics.t
val rmt_metrics : t -> Rina_util.Metrics.t

val rmt_queue_depth : t -> int
(** Total PDUs waiting in this process's RMT shaper queues across all
    ports (0 when nothing is shaped) — what the congestion benches'
    queue-occupancy probes sample. *)

val flow_stats : t -> (Types.cep_id * int * int) list
(** [(cep, in_flight, backlog)] per open flow, sorted by cep — what the
    EFCP window-occupancy probes sample. *)

val policy : t -> Policy.t

val lsdb_size : t -> int
(** Link-state database entries (routing-state metric for C1). *)

val resolve_name : t -> Types.apn -> Types.address option
(** Directory lookup, exposed for tests. *)

val registered_apps : t -> Types.apn list
(** Application names registered at this process (sorted) — the
    registration metadata the whole-topology verifier reads. *)

val debug_flows : t -> string list
(** One line of EFCP internal state per live flow endpoint. *)
