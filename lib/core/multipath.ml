(* Path-resilience state: per-port health monitoring plus the
   deterministic striping discipline.  This module is pure state
   machine — the IPC process owns the probe timer and the wire
   exchanges and feeds events in; nothing here touches the engine, so
   the whole layer replays byte-identically from the decisions made at
   the call sites. *)

type state = Up | Suspect | Down

type label = Latency | Throughput | Background

type transition = To_up of state | To_suspect | To_down

type path = {
  mutable st : state;
  mutable misses : int;  (* consecutive unanswered probes *)
  mutable outstanding : bool;  (* a probe is in flight, unanswered *)
  mutable reprobe_attempt : int;  (* backoff exponent while Down *)
  mutable next_reprobe : float;  (* earliest next probe while Down *)
}

type t = {
  cfg : Policy.multipath;
  rng : Rina_util.Prng.t;
      (* private stream for re-probe backoff jitter; consumed only on
         Down transitions and Down-state re-probes, in sorted-port
         order, so runs replay byte-identically *)
  paths : (Types.port_id, path) Hashtbl.t;
  rr : (Types.address * int, int) Hashtbl.t;
      (* weighted-round-robin cursor per (destination, label) *)
}

let create cfg ~rng = { cfg; rng; paths = Hashtbl.create 8; rr = Hashtbl.create 8 }

let enabled t = t.cfg.Policy.probe_interval > 0.

let fresh_path () =
  { st = Up; misses = 0; outstanding = false; reprobe_attempt = 0; next_reprobe = 0. }

let path_of t port =
  match Hashtbl.find_opt t.paths port with
  | Some p -> p
  | None ->
    let p = fresh_path () in
    Hashtbl.replace t.paths port p;
    p

let state_of t port =
  match Hashtbl.find_opt t.paths port with Some p -> p.st | None -> Up

let forget t port = Hashtbl.remove t.paths port

let reset t =
  Hashtbl.reset t.paths;
  Hashtbl.reset t.rr

let backoff_base t = Float.max 1e-6 t.cfg.Policy.reprobe_backoff

(* One probe period elapsed on [port].  An unanswered probe from the
   previous period counts as a miss and may demote the path; then the
   monitor decides whether to launch a new probe now ([`Probe]) or hold
   off ([`Wait], Down paths between backed-off re-probes). *)
let tick t port ~now =
  let p = path_of t port in
  let tr =
    if p.outstanding then begin
      p.misses <- p.misses + 1;
      if p.st <> Down && p.misses >= t.cfg.Policy.down_misses then begin
        p.st <- Down;
        p.reprobe_attempt <- 1;
        p.next_reprobe <-
          now
          +. Rina_util.Backoff.delay_for ~rng:t.rng ~base:(backoff_base t) 0;
        Some To_down
      end
      else if p.st = Up && p.misses >= t.cfg.Policy.suspect_misses then begin
        p.st <- Suspect;
        Some To_suspect
      end
      else None
    end
    else None
  in
  p.outstanding <- false;
  let action =
    match p.st with
    | Up | Suspect ->
      p.outstanding <- true;
      `Probe
    | Down ->
      if now >= p.next_reprobe then begin
        p.outstanding <- true;
        p.next_reprobe <-
          now
          +. Rina_util.Backoff.delay_for ~rng:t.rng ~base:(backoff_base t)
               p.reprobe_attempt;
        p.reprobe_attempt <- p.reprobe_attempt + 1;
        `Probe
      end
      else `Wait
  in
  (action, tr)

(* A probe reply arrived on [port]: proof of life, whatever the state. *)
let reply t port =
  match Hashtbl.find_opt t.paths port with
  | None -> None
  | Some p ->
    p.outstanding <- false;
    p.misses <- 0;
    p.reprobe_attempt <- 0;
    if p.st <> Up then begin
      let prev = p.st in
      p.st <- Up;
      Some (To_up prev)
    end
    else None

(* Out-of-band death (carrier loss): skip the miss counting — the
   system knows its own radios.  Returns whether this was a
   transition (the caller then runs failover exactly once). *)
let force_down t port ~now =
  let p = path_of t port in
  if p.st <> Down then begin
    p.st <- Down;
    p.misses <- max p.misses t.cfg.Policy.down_misses;
    p.outstanding <- false;
    p.reprobe_attempt <- 1;
    p.next_reprobe <-
      now +. Rina_util.Backoff.delay_for ~rng:t.rng ~base:(backoff_base t) 0;
    true
  end
  else false

(* ---------- striping ---------- *)

(* Traffic label from the flow's QoS cube: a tight delay bound is
   latency traffic, unprioritised unreliable traffic is background,
   everything else wants throughput. *)
let label_of_qos (q : Qos.t) =
  if q.Qos.max_delay > 0. && q.Qos.max_delay <= 0.05 then Latency
  else if (not q.Qos.reliable) && q.Qos.priority = 0 then Background
  else Throughput

let label_index = function Latency -> 0 | Throughput -> 1 | Background -> 2

let mode_for t = function
  | Latency -> t.cfg.Policy.latency
  | Throughput -> t.cfg.Policy.throughput
  | Background -> t.cfg.Policy.background

(* Pick the port for one PDU among [candidates] ((port, cost), sorted
   by port id, already filtered to live attachments).  Down paths
   never carry traffic; Suspect paths only when no Up path remains.
   [None] = every candidate is Down (the caller degrades to no-route).

   Weighted round robin is clocked by a per-(dst, label) cursor, so
   the interleaving is a pure function of the PDU sequence — replays
   are byte-identical. *)
let select t ~dst ~mode ~rr_key ~candidates =
  let annotated =
    List.filter_map
      (fun (port, cost) ->
        match state_of t port with
        | Down -> None
        | (Up | Suspect) as st -> Some (port, cost, st))
      candidates
  in
  let pool =
    match List.filter (fun (_, _, st) -> st = Up) annotated with
    | [] -> annotated
    | ups -> ups
  in
  match pool with
  | [] -> None
  | [ (port, _, _) ] -> Some port
  | pool -> (
    match mode with
    | Policy.Primary_backup ->
      (* cheapest (then lowest-numbered) healthy path carries everything *)
      let best =
        List.fold_left
          (fun acc (port, cost, _) ->
            match acc with
            | Some (_, bc) when bc < cost -> acc
            | Some (bp, bc) when bc = cost && bp < port -> acc
            | Some _ | None -> Some (port, cost))
          None pool
      in
      Option.map fst best
    | Policy.Weighted_rr ->
      let cmin =
        List.fold_left (fun acc (_, c, _) -> Float.min acc c) infinity pool
      in
      let weights =
        List.map
          (fun (port, cost, _) ->
            (port, max 1 (int_of_float ((cmin *. 4. /. Float.max 1e-9 cost) +. 0.5))))
          pool
      in
      let total = List.fold_left (fun acc (_, w) -> acc + w) 0 weights in
      let key = (dst, rr_key) in
      let k =
        (match Hashtbl.find_opt t.rr key with Some k -> k | None -> 0) mod total
      in
      Hashtbl.replace t.rr key ((k + 1) mod total);
      let rec walk acc = function
        | [] -> None
        | (port, w) :: rest ->
          if k < acc + w then Some port else walk (acc + w) rest
      in
      walk 0 weights)

let debug t =
  Hashtbl.fold
    (fun port p acc ->
      Printf.sprintf "port%d=%s misses=%d%s" port
        (match p.st with Up -> "up" | Suspect -> "suspect" | Down -> "down")
        p.misses
        (if p.outstanding then " probing" else "")
      :: acc)
    t.paths []
  |> List.sort compare
