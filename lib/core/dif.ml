type t = {
  engine : Rina_sim.Engine.t;
  trace : Rina_sim.Trace.t option;
  name : Types.dif_name;
  policy : Policy.t;
  qos_cubes : Qos.t list;
  rank : int;
  mutable members : Ipcp.t list;
}

let create engine ?trace ?(policy = Policy.default) ?(qos_cubes = Qos.standard_cubes)
    ?(rank = 0) name =
  { engine; trace; name; policy; qos_cubes; rank; members = [] }

let name t = t.name

let policy t = t.policy

let engine t = t.engine

let rank t = t.rank

let add_member t ?bootstrap ?credentials ~name () =
  let ipcp =
    Ipcp.create t.engine ?trace:t.trace ?credentials ~qos_cubes:t.qos_cubes
      ~rank:t.rank ~name:(Types.apn name) ~dif:t.name ~policy:t.policy ()
  in
  let boot =
    match bootstrap with Some b -> b | None -> t.members = []
  in
  if boot then Ipcp.bootstrap ipcp;
  t.members <- t.members @ [ ipcp ];
  ipcp

let members t = t.members

let find_member t name =
  List.find_opt
    (fun m -> String.equal (Ipcp.name m).Types.ap_name name)
    t.members

let connect _t ?cost ?rate_a ?rate_b a b (chan_a, chan_b) =
  ignore (Ipcp.bind_port a ?cost ?rate:rate_a chan_a);
  ignore (Ipcp.bind_port b ?cost ?rate:rate_b chan_b)

(* A port of an upper DIF is backed by TWO flows of the lower DIF: the
   data flow with the requested QoS, and a reliable management flow so
   that hellos, routing updates and enrollment can never be starved or
   lost behind a data backlog (one (N-1) flow per traffic class, as
   the architecture intends).  The split keys on the PDU-type byte of
   the upper DIF's wire format. *)
let combined_chan ~owner ~data ~mgmt : Rina_sim.Chan.t =
  let data_c = Ipcp.chan_of_flow owner data
  and mgmt_c = Ipcp.chan_of_flow owner mgmt in
  let stats = Rina_util.Metrics.create () in
  let pushback = (Ipcp.policy owner).Policy.congestion.Policy.pushback in
  let is_management frame =
    (* frame = encoded PDU + CRC trailer; byte 0 version, byte 1 type
       (2 = Mgmt, 3 = Hello). *)
    Bytes.length frame > 1
    &&
    let ty = Char.code (Bytes.get frame 1) in
    ty = 2 || ty = 3
  in
  {
    Rina_sim.Chan.send =
      (fun frame ->
        Rina_util.Metrics.incr stats "tx";
        if is_management frame then mgmt_c.Rina_sim.Chan.send frame
        else begin
          (* Push-back across the layer boundary (§6): the bytes here
             are a complete upper-DIF frame about to transit this
             lower flow, so when the lower flow is itself under
             congestion pressure, stamp the ECN flag on upper Dtp
             frames in place (+ CRC reseal).  The upper receiver's
             EFCP then echoes it end to end and the upper *sender*
             backs off — congestion in an (N-1)-DIF slows the (N)-DIF
             sources instead of just growing this flow's backlog. *)
          if
            pushback
            && Bytes.length frame > Pdu.header_size
            && Pdu.Peek.is_dtp frame
            && (not (Pdu.frame_has_ecn frame))
            && data.Ipcp.congested ()
          then begin
            Pdu.mark_ecn_frame frame;
            Rina_util.Metrics.incr stats "pushback_marked";
            let r = Rina_util.Flight.cur () in
            if Rina_util.Flight.on r then
              Rina_util.Flight.emit_to r
                ~component:("pushback@" ^ Types.apn_to_string (Ipcp.name owner))
                ~size:(Bytes.length frame)
                (Rina_util.Flight.Custom "pushback_mark")
          end;
          data_c.Rina_sim.Chan.send frame
        end);
    set_receiver =
      (fun f ->
        data_c.Rina_sim.Chan.set_receiver f;
        mgmt_c.Rina_sim.Chan.set_receiver f);
    is_up = data_c.Rina_sim.Chan.is_up;
    on_carrier = data_c.Rina_sim.Chan.on_carrier;
    stats;
  }

let stack_connect ~lower_a ~lower_b ~upper_a ~upper_b ?(qos_id = Qos.reliable.Qos.id)
    ?cost ?rate () =
  let sub name role = Types.apn (Types.apn_to_string name ^ ":" ^ role) in
  let a_name = Ipcp.name upper_a and b_name = Ipcp.name upper_b in
  (* The far side: collect both flows, then bind the combined port. *)
  let b_data = ref None and b_mgmt = ref None in
  let b_try_bind () =
    match (!b_data, !b_mgmt) with
    | Some data, Some mgmt ->
      ignore (Ipcp.bind_port upper_b ?cost ?rate (combined_chan ~owner:lower_b ~data ~mgmt))
    | (Some _ | None), (Some _ | None) -> ()
  in
  Ipcp.register_app lower_b (sub b_name "data") ~on_flow:(fun flow ->
      b_data := Some flow;
      b_try_bind ());
  Ipcp.register_app lower_b (sub b_name "mgmt") ~on_flow:(fun flow ->
      b_mgmt := Some flow;
      b_try_bind ());
  (* The near side: the upper IPCP is an application of the lower DIF. *)
  Ipcp.register_app lower_a (sub a_name "data") ~on_flow:(fun _ -> ());
  Ipcp.register_app lower_a (sub a_name "mgmt") ~on_flow:(fun _ -> ());
  let a_data = ref None and a_mgmt = ref None in
  let a_try_bind () =
    match (!a_data, !a_mgmt) with
    | Some data, Some mgmt ->
      ignore (Ipcp.bind_port upper_a ?cost ?rate (combined_chan ~owner:lower_a ~data ~mgmt))
    | (Some _ | None), (Some _ | None) -> ()
  in
  Ipcp.on_enrolled lower_a (fun () ->
      Ipcp.allocate_flow lower_a ~src:(sub a_name "data") ~dst:(sub b_name "data")
        ~qos_id
        ~on_result:(function
          | Ok flow ->
            a_data := Some flow;
            a_try_bind ()
          | Error _ -> ());
      Ipcp.allocate_flow lower_a ~src:(sub a_name "mgmt") ~dst:(sub b_name "mgmt")
        ~qos_id:Qos.reliable.Qos.id
        ~on_result:(function
          | Ok flow ->
            a_mgmt := Some flow;
            a_try_bind ()
          | Error _ -> ()))

let run_until_converged t ?(max_time = 120.) () =
  let deadline = Rina_sim.Engine.now t.engine +. max_time in
  let step = t.policy.Policy.routing.Policy.hello_interval in
  let converged () =
    List.for_all Ipcp.is_enrolled t.members
    &&
    match t.members with
    | [] -> true
    | first :: rest ->
      let n = Ipcp.lsdb_size first in
      n >= List.length t.members && List.for_all (fun m -> Ipcp.lsdb_size m = n) rest
  in
  let rec loop () =
    if (not (converged ())) && Rina_sim.Engine.now t.engine < deadline then begin
      Rina_sim.Engine.run ~until:(Rina_sim.Engine.now t.engine +. step) t.engine;
      loop ()
    end
  in
  loop ();
  (* Let any outstanding SPF recomputations and floods settle. *)
  Rina_sim.Engine.run ~until:(Rina_sim.Engine.now t.engine +. (2. *. step)) t.engine
