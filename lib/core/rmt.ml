let num_classes = 8

let queue_capacity = 256

(* The data path carries encoded, SDU-protected frames end to end: a
   PDU is serialised once (at [send]/[send_on_port]) and a relay hop
   copies the frame, patches the TTL byte and re-seals the trailer —
   it never re-encodes.  Header fields needed along the way are read
   in place ([Pdu.decode_header], [Pdu.Peek]); the payload is copied
   out only at the destination. *)
type port = {
  id : Types.port_id;
  chan : Rina_sim.Chan.t;
  rate : float option;
  queues : bytes Queue.t array;  (* protected frames, one q per class *)
  deficits : float array;        (* DRR state *)
  mutable rr_class : int;        (* DRR scan position *)
  mutable busy : bool;           (* a departure is scheduled *)
  tx_key : string;               (* per-port egress counter key *)
}

type t = {
  engine : Rina_sim.Engine.t;
  own_address : unit -> Types.address;
  label : string;  (* flight-recorder component prefix *)
  rank : int;
  scheduler : Policy.scheduler;
  congestion : Policy.congestion;
  mark_rng : Rina_util.Prng.t;
      (* private stream for probabilistic ECN marking, seeded from the
         label so identical runs mark identical PDUs *)
  ports : (Types.port_id, port) Hashtbl.t;
  mutable next_port : Types.port_id;
  mutable forwarding : Pdu.t -> Types.port_id option;
  mutable deliver : Types.port_id option -> Pdu.t -> unit;
  mutable classify : Pdu.t -> int;
  mutable ingress_filter : Types.port_id -> Pdu.t -> bool;
  mutable drop_reason : Pdu.t -> Rina_util.Flight.reason;
      (* refines the drop reason when forwarding says None: the IPC
         process reports [R_path_down] when routes exist but every
         member path is Down, [R_no_route] otherwise *)
  metrics : Rina_util.Metrics.t;
}

let create engine ~own_address ~scheduler
    ?(congestion = Policy.default_congestion) ?(label = "rmt") ?(rank = 0) () =
  {
    engine;
    own_address;
    label;
    rank;
    scheduler;
    congestion;
    mark_rng = Rina_util.Prng.create (Hashtbl.hash (label, "rmt-ecn"));
    ports = Hashtbl.create 8;
    next_port = 1;
    forwarding = (fun _ -> None);
    deliver = (fun _ _ -> ());
    classify = (fun _ -> 0);
    ingress_filter = (fun _ _ -> true);
    drop_reason = (fun _ -> Rina_util.Flight.R_no_route);
    metrics = Rina_util.Metrics.create ();
  }

let set_forwarding t f = t.forwarding <- f

let set_deliver t f = t.deliver <- f

let set_classify t f = t.classify <- f

let set_ingress_filter t f = t.ingress_filter <- f

let set_drop_reason t f = t.drop_reason <- f

let metrics t = t.metrics

(* Flight-recorder emissions; each helper fetches the domain's
   recorder once and guards inside, so an emission site on the data
   path pays a single domain-local lookup and the disabled path
   allocates nothing.  The component names the relay instance
   ("label@address"), and the span id is recomputed from the PDU header
   so relay events join the end-to-end EFCP events.  [flight_frame]
   reads the fields straight out of the frame; it reports the same
   flow/seq/span/size as [flight_pdu] on the decoded equivalent
   (size = encoded PDU length, trailer excluded). *)
module Flight = Rina_util.Flight

let flight_pdu t (pdu : Pdu.t) kind =
  let r = Flight.cur () in
  if Flight.on r then
    Flight.emit_to r
      ~component:(t.label ^ "@" ^ string_of_int (t.own_address ()))
      ~flow:pdu.Pdu.dst_cep ~rank:t.rank ~seq:pdu.Pdu.seq
      ~size:(Pdu.header_size + Bytes.length pdu.Pdu.payload)
      ~span:(Pdu.span pdu) kind

let flight_frame t frame kind =
  let r = Flight.cur () in
  if Flight.on r then
    Flight.emit_to r
      ~component:(t.label ^ "@" ^ string_of_int (t.own_address ()))
      ~flow:(Pdu.Peek.dst_cep frame) ~rank:t.rank ~seq:(Pdu.Peek.seq frame)
      ~size:(Bytes.length frame - Sdu_protection.overhead)
      ~span:(Pdu.Peek.span frame) kind

let transmit_now t port frame =
  Rina_util.Metrics.incr t.metrics "sent";
  Rina_util.Metrics.incr t.metrics port.tx_key;
  flight_frame t frame Flight.Pdu_sent;
  port.chan.Rina_sim.Chan.send frame

(* Pick the next frame to serve on a shaped port according to the
   scheduler policy; [None] when all queues are empty. *)
let pick_next t port =
  match t.scheduler with
  | Policy.Fifo | Policy.Priority_queueing ->
    (* Both serve a fixed class order; FIFO uses only class 0 in
       practice (classify constant), priority scans high to low. *)
    let rec scan cls =
      if cls < 0 then None
      else if not (Queue.is_empty port.queues.(cls)) then
        Some (Queue.pop port.queues.(cls))
      else scan (cls - 1)
    in
    scan (num_classes - 1)
  | Policy.Drr quantum ->
    let total_queued =
      Array.fold_left (fun acc q -> acc + Queue.length q) 0 port.queues
    in
    if total_queued = 0 then None
    else begin
      (* Weighted deficit round robin: class c earns quantum * (c+1)
         exactly once each time the service token arrives at it; an
         empty class forfeits its deficit.  Backlogged classes thus
         share bandwidth in proportion to their weights, round by
         round. *)
      let advance () =
        port.rr_class <- (port.rr_class + 1) mod num_classes;
        let cls = port.rr_class in
        port.deficits.(cls) <-
          port.deficits.(cls) +. float_of_int (quantum * (cls + 1))
      in
      let result = ref None in
      while !result = None do
        let cls = port.rr_class in
        let q = port.queues.(cls) in
        if Queue.is_empty q then begin
          port.deficits.(cls) <- 0.;
          advance ()
        end
        else begin
          (* DRR accounts PDU bytes (trailer excluded), as before the
             queues carried frames. *)
          let size = Bytes.length (Queue.peek q) - Sdu_protection.overhead in
          if port.deficits.(cls) >= float_of_int size then begin
            port.deficits.(cls) <- port.deficits.(cls) -. float_of_int size;
            result := Some (Queue.pop q)
          end
          else advance ()
        end
      done;
      !result
    end

let rec serve t port rate =
  if not port.busy then
    match pick_next t port with
    | None -> ()
    | Some frame ->
      flight_frame t frame Flight.Dequeued;
      port.busy <- true;
      let size = Bytes.length frame in
      let tx_time = float_of_int (8 * size) /. rate in
      transmit_now t port frame;
      ignore
        (Rina_sim.Engine.schedule t.engine ~delay:tx_time (fun () ->
             port.busy <- false;
             serve t port rate))

(* [hdr] is the frame's decoded header — classification reads fields,
   never the payload.

   Congestion marking (policy [mark_threshold] > 0) happens here, at
   the one point where queue pressure is visible: a Dtp frame joining
   a class queue already at or over the threshold is ECN-marked with
   probability [mark_probability] (in place — the frame is owned by
   this queue), and an overflow of such a queue is accounted as
   [R_congestion] rather than a bare [R_queue_full] so overload drops
   are distinguishable from sizing bugs. *)
let enqueue t port ~hdr frame =
  match port.rate with
  | None -> transmit_now t port frame
  | Some rate ->
    let cls = max 0 (min (num_classes - 1) (t.classify hdr)) in
    let depth = Queue.length port.queues.(cls) in
    let th = t.congestion.Policy.mark_threshold in
    let congested = th > 0 && depth >= th in
    if depth >= queue_capacity then begin
      let reason = if congested then Flight.R_congestion else Flight.R_queue_full in
      flight_frame t frame (Flight.Pdu_dropped reason);
      Rina_util.Metrics.incr t.metrics "queue_dropped";
      if congested then Rina_util.Metrics.incr t.metrics "congestion_dropped"
    end
    else begin
      if
        congested
        && hdr.Pdu.pdu_type = Pdu.Dtp
        && Rina_util.Prng.bernoulli t.mark_rng
             t.congestion.Policy.mark_probability
      then begin
        Pdu.mark_ecn_frame frame;
        Rina_util.Metrics.incr t.metrics "ecn_marked";
        flight_frame t frame (Flight.Custom "ecn_mark")
      end;
      flight_frame t frame Flight.Enqueued;
      Queue.push frame port.queues.(cls);
      let d = float_of_int (depth + 1) in
      if d > Rina_util.Metrics.gauge t.metrics "queue_hwm" then
        Rina_util.Metrics.set_gauge t.metrics "queue_hwm" d;
      serve t port rate
    end

let deliver_up t from_port pdu =
  Rina_util.Metrics.incr t.metrics "delivered_up";
  flight_pdu t pdu Flight.Pdu_recvd;
  t.deliver from_port pdu

(* An unroutable PDU: let the IPC process refine the reason (all
   member paths Down vs. genuinely no route), then account it. *)
let drop_unroutable t pdu =
  let reason = t.drop_reason pdu in
  flight_pdu t pdu (Flight.Pdu_dropped reason);
  Rina_util.Metrics.incr t.metrics
    (if reason = Flight.R_path_down then "path_down_dropped" else "no_route")

(* Locally originated PDUs ([send]): route, then encode exactly once —
   the frame the destination verifies is the one built here.  Returns
   the egress port when the PDU was actually queued on one ([None] for
   local delivery and every drop) — EFCP tags outstanding PDUs with it
   so failover can re-stripe exactly the stranded ones. *)
let relay_or_deliver t from_port pdu =
  let own = t.own_address () in
  if pdu.Pdu.dst_addr = own || pdu.Pdu.dst_addr = Types.no_address then begin
    deliver_up t from_port pdu;
    None
  end
  else if pdu.Pdu.ttl <= 1 then begin
    flight_pdu t pdu (Flight.Pdu_dropped Flight.R_ttl_expired);
    Rina_util.Metrics.incr t.metrics "ttl_expired";
    None
  end
  else begin
    let pdu = { pdu with Pdu.ttl = pdu.Pdu.ttl - 1 } in
    match t.forwarding pdu with
    | None ->
      drop_unroutable t pdu;
      None
    | Some port_id -> (
      match Hashtbl.find_opt t.ports port_id with
      | None ->
        drop_unroutable t pdu;
        None
      | Some port ->
        (if from_port <> None then Rina_util.Metrics.incr t.metrics "relayed");
        enqueue t port ~hdr:pdu (Pdu.encode_frame pdu);
        Some port_id)
  end

(* A transit frame: copy, decrement the TTL byte in place, re-seal the
   trailer.  No decode/encode round trip. *)
let relay_frame t ~hdr frame =
  let hdr = { hdr with Pdu.ttl = hdr.Pdu.ttl - 1 } in
  let drop () =
    let reason = t.drop_reason hdr in
    flight_frame t frame (Flight.Pdu_dropped reason);
    Rina_util.Metrics.incr t.metrics
      (if reason = Flight.R_path_down then "path_down_dropped" else "no_route")
  in
  match t.forwarding hdr with
  | None -> drop ()
  | Some port_id -> (
    match Hashtbl.find_opt t.ports port_id with
    | None -> drop ()
    | Some port ->
      Rina_util.Metrics.incr t.metrics "relayed";
      let frame = Bytes.copy frame in
      Bytes.set_uint8 frame Pdu.ttl_offset hdr.Pdu.ttl;
      Sdu_protection.seal frame;
      enqueue t port ~hdr frame)

let on_frame t port_id frame =
  match Sdu_protection.verify_len frame with
  | None ->
    (let r = Flight.cur () in
     if Flight.on r then
       Flight.emit_to r
         ~component:(t.label ^ "@" ^ string_of_int (t.own_address ()))
         ~rank:t.rank ~size:(Bytes.length frame)
         (Flight.Pdu_dropped Flight.R_corrupt));
    Rina_util.Metrics.incr t.metrics "crc_dropped"
  | Some body_len -> (
    match Pdu.decode_header frame ~len:body_len with
    | Error _ ->
      (let r = Flight.cur () in
       if Flight.on r then
         Flight.emit_to r
           ~component:(t.label ^ "@" ^ string_of_int (t.own_address ()))
           ~rank:t.rank ~size:body_len
           (Flight.Pdu_dropped Flight.R_decode));
      Rina_util.Metrics.incr t.metrics "decode_dropped"
    | Ok hdr ->
      if not (t.ingress_filter port_id hdr) then begin
        flight_frame t frame (Flight.Pdu_dropped Flight.R_ingress_filter);
        Rina_util.Metrics.incr t.metrics "ingress_dropped"
      end
      else begin
        let own = t.own_address () in
        if hdr.Pdu.dst_addr = own || hdr.Pdu.dst_addr = Types.no_address then (
          (* Destination: the one place the payload is copied out. *)
          match Pdu.decode_sub frame ~len:body_len with
          | Ok pdu -> deliver_up t (Some port_id) pdu
          | Error _ -> Rina_util.Metrics.incr t.metrics "decode_dropped")
        else if hdr.Pdu.ttl <= 1 then begin
          flight_frame t frame (Flight.Pdu_dropped Flight.R_ttl_expired);
          Rina_util.Metrics.incr t.metrics "ttl_expired"
        end
        else relay_frame t ~hdr frame
      end)

let add_port t ?rate chan =
  let id = t.next_port in
  t.next_port <- t.next_port + 1;
  let port =
    {
      id;
      chan;
      rate;
      queues = Array.init num_classes (fun _ -> Queue.create ());
      deficits = Array.make num_classes 0.;
      rr_class = 0;
      busy = false;
      tx_key = "sent_port" ^ string_of_int id;
    }
  in
  Hashtbl.replace t.ports id port;
  chan.Rina_sim.Chan.set_receiver (fun frame -> on_frame t id frame);
  id

let remove_port t port_id =
  match Hashtbl.find_opt t.ports port_id with
  | None -> ()
  | Some port ->
    port.chan.Rina_sim.Chan.set_receiver (fun _ -> ());
    Hashtbl.remove t.ports port_id

let ports t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.ports [] |> List.sort compare

let port_chan t port_id =
  Option.map (fun p -> p.chan) (Hashtbl.find_opt t.ports port_id)

let send t pdu = relay_or_deliver t None pdu

let send_on_port t port_id pdu =
  match Hashtbl.find_opt t.ports port_id with
  | None -> Rina_util.Metrics.incr t.metrics "no_route"
  | Some port -> enqueue t port ~hdr:pdu (Pdu.encode_frame pdu)

let queue_depth t port_id =
  match Hashtbl.find_opt t.ports port_id with
  | None -> 0
  | Some port -> Array.fold_left (fun acc q -> acc + Queue.length q) 0 port.queues

let class_depths t port_id =
  match Hashtbl.find_opt t.ports port_id with
  | None -> [||]
  | Some port -> Array.map Queue.length port.queues
