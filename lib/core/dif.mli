(** Distributed IPC Facility management.

    A [t] is the *management view* of one DIF: its name, its policy
    set and the IPC processes created as (prospective) members.  The
    DIF itself is fully distributed — all coordination between members
    happens through RIEP over (N-1) channels; this record only helps
    experiments create members and wire them up.

    Creating a DIF (§5.1): [create] then [add_member] — the first
    member bootstraps and waits for others to join.  Adding a member
    (§5.2): [add_member] plus a channel to any existing member
    ([connect]); enrollment (authentication, address assignment, RIB
    sync) then runs in virtual time.  Stacking (§4): [stack_connect]
    turns a flow of this DIF into the (N-1) channel of a higher DIF's
    member pair. *)

type t

val create :
  Rina_sim.Engine.t ->
  ?trace:Rina_sim.Trace.t ->
  ?policy:Policy.t ->
  ?qos_cubes:Qos.t list ->
  ?rank:int ->
  Types.dif_name ->
  t
(** [rank] (default 0) is this DIF's depth in a stacked arrangement —
    0 for the lowest layer — and is stamped on every flight-recorder
    event its members emit. *)

val name : t -> Types.dif_name
val policy : t -> Policy.t
val engine : t -> Rina_sim.Engine.t

val rank : t -> int
(** The depth given at {!create} — 0 for the lowest layer. *)

val add_member :
  t -> ?bootstrap:bool -> ?credentials:string -> name:string -> unit -> Ipcp.t
(** Create an IPC process for this DIF.  By default the first one
    bootstraps the DIF (address 1); later ones remain unenrolled until
    [connect]ed to a member, then enroll automatically.  [bootstrap]
    overrides the default: pass [false] when this [Dif.t] is one
    shard's management view of a DIF whose founder lives on another
    shard (the sharded engine builds one [Dif.t] per shard and only
    the founder's shard may bootstrap). *)

val members : t -> Ipcp.t list

val find_member : t -> string -> Ipcp.t option
(** By process name. *)

val connect :
  t ->
  ?cost:float ->
  ?rate_a:float ->
  ?rate_b:float ->
  Ipcp.t ->
  Ipcp.t ->
  Rina_sim.Chan.t * Rina_sim.Chan.t ->
  unit
(** Bind the two channel endpoints as ports on the two IPC processes
    (first endpoint on the first process).  Hello, enrollment and
    routing proceed from there in virtual time. *)

val stack_connect :
  lower_a:Ipcp.t ->
  lower_b:Ipcp.t ->
  upper_a:Ipcp.t ->
  upper_b:Ipcp.t ->
  ?qos_id:Types.qos_id ->
  ?cost:float ->
  ?rate:float ->
  unit ->
  unit
(** The recursion step: allocate flows in the lower DIF between the
    two upper IPC processes (each registered by name in its local
    lower member) and bind them as an (N-1) port of each upper
    process.  Two lower flows back the port — the data flow with
    [qos_id] (default reliable) and a reliable management flow, so
    control traffic cannot be starved behind data backlogs.  [rate]
    (bits/s) enables RMT shaping/scheduling on the resulting ports —
    set it at (slightly under) the lower path's bottleneck rate when
    the upper DIF should do its own multiplexing.  Runs asynchronously
    in virtual time; drive the engine to completion. *)

val run_until_converged : t -> ?max_time:float -> unit -> unit
(** Advance virtual time in hello-interval steps until every member is
    enrolled and all enrolled members share the same link-state
    database size, or [max_time] (default 120 s of virtual time from
    now) elapses.  Convenience for experiment setup. *)
