(* The table is computed eagerly: concurrent [Lazy.force] from two
   domains can raise [Lazy.Undefined], and parallel trial runners hit
   this module from every worker. *)
let table =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
        else c := !c lsr 1
      done;
      !c)

let crc32_sub data ~pos ~len =
  let crc = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    let byte = Char.code (Bytes.unsafe_get data i) in
    crc := Array.unsafe_get table ((!crc lxor byte) land 0xFF) lxor (!crc lsr 8)
  done;
  !crc lxor 0xFFFFFFFF land 0xFFFFFFFF

let crc32 data = crc32_sub data ~pos:0 ~len:(Bytes.length data)

let overhead = 4

let protect data =
  let n = Bytes.length data in
  let out = Bytes.create (n + overhead) in
  Bytes.blit data 0 out 0 n;
  Bytes.set_int32_be out n (Int32.of_int (crc32 data));
  out

let seal frame =
  let body = Bytes.length frame - overhead in
  Bytes.set_int32_be frame body (Int32.of_int (crc32_sub frame ~pos:0 ~len:body))

let verify_len frame =
  let n = Bytes.length frame in
  if n < overhead then None
  else begin
    let body = n - overhead in
    let stored = Int32.to_int (Bytes.get_int32_be frame body) land 0xFFFFFFFF in
    if crc32_sub frame ~pos:0 ~len:body = stored then Some body else None
  end

let verify frame =
  match verify_len frame with
  | None -> None
  | Some body -> Some (Bytes.sub frame 0 body)
