type opcode =
  | M_connect
  | M_connect_r
  | M_release
  | M_create
  | M_create_r
  | M_delete
  | M_delete_r
  | M_read
  | M_read_r
  | M_write
  | M_start
  | M_stop

type t = {
  opcode : opcode;
  obj_class : string;
  obj_name : string;
  obj_value : Rib.value option;
  invoke_id : int;
  result : int;
  result_reason : string;
  version : int;
  origin : int;
}

let make ~opcode ?(obj_class = "") ?(obj_name = "") ?obj_value ?(invoke_id = 0)
    ?(result = 0) ?(result_reason = "") ?(version = 0) ?(origin = 0) () =
  {
    opcode;
    obj_class;
    obj_name;
    obj_value;
    invoke_id;
    result;
    result_reason;
    version;
    origin;
  }

let opcode_code = function
  | M_connect -> 0
  | M_connect_r -> 1
  | M_release -> 2
  | M_create -> 3
  | M_create_r -> 4
  | M_delete -> 5
  | M_delete_r -> 6
  | M_read -> 7
  | M_read_r -> 8
  | M_write -> 9
  | M_start -> 10
  | M_stop -> 11

let opcode_of_code = function
  | 0 -> Ok M_connect
  | 1 -> Ok M_connect_r
  | 2 -> Ok M_release
  | 3 -> Ok M_create
  | 4 -> Ok M_create_r
  | 5 -> Ok M_delete
  | 6 -> Ok M_delete_r
  | 7 -> Ok M_read
  | 8 -> Ok M_read_r
  | 9 -> Ok M_write
  | 10 -> Ok M_start
  | 11 -> Ok M_stop
  | n -> Error (Printf.sprintf "unknown RIEP opcode %d" n)

let encode t =
  let module W = Rina_util.Codec.Writer in
  let w = W.create () in
  W.u8 w (opcode_code t.opcode);
  W.string w t.obj_class;
  W.string w t.obj_name;
  (match t.obj_value with
   | None -> W.bool w false
   | Some v ->
     W.bool w true;
     Rib.encode_value w v);
  W.u32 w t.invoke_id;
  W.u16 w t.result;
  W.string w t.result_reason;
  W.u32 w t.version;
  W.u32 w t.origin;
  W.contents w

let decode data =
  let module R = Rina_util.Codec.Reader in
  try
    let r = R.create data in
    match opcode_of_code (R.u8 r) with
    | Error _ as e -> e
    | Ok opcode ->
      let obj_class = R.string r in
      let obj_name = R.string r in
      let obj_value = if R.bool r then Some (Rib.decode_value r) else None in
      let invoke_id = R.u32 r in
      let result = R.u16 r in
      let result_reason = R.string r in
      let version = R.u32 r in
      let origin = R.u32 r in
      R.expect_end r;
      Ok
        {
          opcode;
          obj_class;
          obj_name;
          obj_value;
          invoke_id;
          result;
          result_reason;
          version;
          origin;
        }
  with R.Decode_error msg -> Error msg

let is_response t =
  match t.opcode with
  | M_connect_r | M_create_r | M_delete_r | M_read_r -> true
  | M_connect | M_release | M_create | M_delete | M_read | M_write | M_start
  | M_stop ->
    false

let response_opcode = function
  | M_connect -> Some M_connect_r
  | M_create -> Some M_create_r
  | M_delete -> Some M_delete_r
  | M_read -> Some M_read_r
  | M_connect_r | M_release | M_create_r | M_delete_r | M_read_r | M_write
  | M_start | M_stop ->
    None

let opcode_name = function
  | M_connect -> "M_CONNECT"
  | M_connect_r -> "M_CONNECT_R"
  | M_release -> "M_RELEASE"
  | M_create -> "M_CREATE"
  | M_create_r -> "M_CREATE_R"
  | M_delete -> "M_DELETE"
  | M_delete_r -> "M_DELETE_R"
  | M_read -> "M_READ"
  | M_read_r -> "M_READ_R"
  | M_write -> "M_WRITE"
  | M_start -> "M_START"
  | M_stop -> "M_STOP"

let trace_label t = opcode_name t.opcode ^ "/" ^ t.obj_class

let pp fmt t =
  Format.fprintf fmt "%s %s:%s inv=%d%s" (opcode_name t.opcode) t.obj_class
    t.obj_name t.invoke_id
    (if t.result <> 0 then Printf.sprintf " result=%d (%s)" t.result t.result_reason
     else "")
