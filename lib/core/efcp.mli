(** Error and Flow Control Protocol: one instance per flow endpoint.

    EFCP is the short-timescale half of an IPC process: per-PDU
    sequencing (DTP) plus the transfer-control loop (DTCP) —
    retransmission, cumulative acknowledgements with credit windows,
    RTT estimation (Jacobson), exponential RTO backoff and fast
    retransmit on triple duplicate acks.  All behavioural knobs come
    from {!Policy.efcp}, so the same machine runs as stop-and-wait
    (window 1), go-back-N, selective repeat or bare sequencing
    ([No_rtx]) — the mechanism/policy split experiment C4 measures.

    EFCP neither knows addresses nor ports: it emits PDUs through the
    [send_pdu] closure (the IPC process fills in addressing and hands
    them to the RMT) and receives via {!handle_pdu}. *)

type t

val create :
  Rina_sim.Engine.t ->
  config:Policy.efcp ->
  in_order:bool ->
  local_cep:Types.cep_id ->
  remote_cep:Types.cep_id ->
  qos_id:Types.qos_id ->
  ?span_keys:int * int ->
  ?rank:int ->
  send_pdu:(Pdu.t -> int) ->
  deliver:(bytes -> unit) ->
  on_error:(string -> unit) ->
  unit ->
  t
(** [deliver] receives user-data fields in the order mandated by
    [in_order]; [on_error] fires once if the flow is declared broken
    (max retransmissions exceeded).

    [send_pdu] returns the egress port id the PDU was striped onto (0
    when the caller does not track paths); EFCP tags each outstanding
    PDU with it so {!repath} can find the ones stranded on a dead
    path.

    [span_keys] is [(tx_key, rx_key)] — the flight-recorder flow keys
    for outgoing and incoming PDUs ({!Pdu.flow_key} of the remote and
    local end respectively), so per-PDU trace ids join with the events
    relays emit.  Defaults to the bare CEP ids, which only stays unique
    within one IPC process.  [rank] stamps events with the DIF rank. *)

val send : t -> bytes -> unit
(** Queue one user-data field (at most [config.mtu] bytes — the caller
    fragments first) for transmission; transparently buffered while
    the window is closed. *)

val handle_pdu : t -> Pdu.t -> unit
(** Process an incoming [Dtp] or [Ack] PDU belonging to this
    connection; other types are counted and ignored. *)

val close : t -> unit
(** Cancel timers and drop state; no further callbacks fire. *)

val repath : t -> dead_path:int -> int
(** Fast failover: immediately retransmit every outstanding PDU whose
    last copy rode [dead_path] (lowest sequence first), so they stripe
    onto surviving paths now instead of waiting out their RTO.  Leaves
    the congestion window untouched — a path failure is not a
    congestion signal.  Returns the number of PDUs re-sent; 0 for
    unreliable, closed or errored flows. *)

val metrics : t -> Rina_util.Metrics.t
(** [pdus_sent], [pdus_rtx], [fast_rtx], [acks_sent], [acks_rcvd],
    [delivered], [dup_rcvd], [ooo_buffered], [gbn_discards],
    [backlog_hwm]... *)

val max_rto : float
(** Hard ceiling (seconds) on the retransmission timeout; backoff and
    [init_rto] are clamped to it.  Exported for the policy linter. *)

val in_flight : t -> int
(** PDUs sent and not yet acknowledged. *)

val backlog : t -> int
(** User-data fields waiting for the window to open. *)

val srtt : t -> float option
(** Smoothed RTT estimate, once at least one sample exists. *)

val congested : t -> bool
(** Whether this flow is under congestion pressure: an ECN back-off
    episode is active (the path has been marking recently, so sends
    are being paced), or the backlog exceeds a full window.  The DIF
    layer uses it to push congestion upward — marking upper-DIF frames
    that transit a congested lower flow (policy [pushback]). *)

val debug : t -> string
(** One-line internal state dump (sender/receiver counters, window,
    timer state) for tests and troubleshooting. *)
