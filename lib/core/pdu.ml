type pdu_type = Dtp | Ack | Mgmt | Hello

type t = {
  pdu_type : pdu_type;
  dst_addr : Types.address;
  src_addr : Types.address;
  dst_cep : Types.cep_id;
  src_cep : Types.cep_id;
  qos_id : Types.qos_id;
  seq : int;
  ack : int;
  window : int;
  ttl : int;
  flags : int;
  payload : bytes;
}

let flag_drf = 1

let flag_fin = 2

let has_flag t flag = t.flags land flag <> 0

let make ~pdu_type ~dst_addr ~src_addr ?(dst_cep = 0) ?(src_cep = 0) ?(qos_id = 0)
    ?(seq = 0) ?(ack = 0) ?(window = 0) ?(ttl = 32) ?(flags = 0) payload =
  {
    pdu_type;
    dst_addr;
    src_addr;
    dst_cep;
    src_cep;
    qos_id;
    seq;
    ack;
    window;
    ttl;
    flags;
    payload;
  }

let version = 1

let type_code = function Dtp -> 0 | Ack -> 1 | Mgmt -> 2 | Hello -> 3

let type_of_code = function
  | 0 -> Ok Dtp
  | 1 -> Ok Ack
  | 2 -> Ok Mgmt
  | 3 -> Ok Hello
  | n -> Error (Printf.sprintf "unknown PDU type code %d" n)

let encode t =
  let module W = Rina_util.Codec.Writer in
  let w = W.create () in
  W.u8 w version;
  W.u8 w (type_code t.pdu_type);
  W.u32 w t.dst_addr;
  W.u32 w t.src_addr;
  W.u32 w t.dst_cep;
  W.u32 w t.src_cep;
  W.u16 w t.qos_id;
  W.u32 w t.seq;
  W.u32 w t.ack;
  W.u32 w t.window;
  W.u8 w t.ttl;
  W.u8 w t.flags;
  W.bytes w t.payload;
  W.contents w

(* version + type + 4 addr/cep words + qos + seq + ack + window + ttl +
   flags + payload length prefix *)
let header_size = 1 + 1 + (4 * 4) + 2 + 4 + 4 + 4 + 1 + 1 + 4

let decode frame =
  let module R = Rina_util.Codec.Reader in
  try
    let r = R.create frame in
    let v = R.u8 r in
    if v <> version then Error (Printf.sprintf "unsupported PDU version %d" v)
    else
      match type_of_code (R.u8 r) with
      | Error _ as e -> e
      | Ok pdu_type ->
        let dst_addr = R.u32 r in
        let src_addr = R.u32 r in
        let dst_cep = R.u32 r in
        let src_cep = R.u32 r in
        let qos_id = R.u16 r in
        let seq = R.u32 r in
        let ack = R.u32 r in
        let window = R.u32 r in
        let ttl = R.u8 r in
        let flags = R.u8 r in
        let payload = R.bytes r in
        R.expect_end r;
        Ok
          {
            pdu_type;
            dst_addr;
            src_addr;
            dst_cep;
            src_cep;
            qos_id;
            seq;
            ack;
            window;
            ttl;
            flags;
            payload;
          }
  with R.Decode_error msg -> Error msg

let pp fmt t =
  let kind =
    match t.pdu_type with Dtp -> "DTP" | Ack -> "ACK" | Mgmt -> "MGMT" | Hello -> "HELLO"
  in
  Format.fprintf fmt "%s %d->%d cep %d->%d seq=%d ack=%d w=%d len=%d" kind
    t.src_addr t.dst_addr t.src_cep t.dst_cep t.seq t.ack t.window
    (Bytes.length t.payload)

(* Flow key for the flight recorder: the destination end of the
   connection identifies the flow, so the sender (which addressed the
   PDU), every relay that decodes it and the receiver (whose address
   and CEP these are) derive the same key — and hence, mixed with the
   sequence number, the same trace id. *)
let flow_key t = (t.dst_addr lsl 16) lor (t.dst_cep land 0xFFFF)

let span t =
  match t.pdu_type with
  | Dtp -> Rina_util.Flight.span_of ~flow:(flow_key t) ~seq:t.seq
  | Ack | Mgmt | Hello -> 0
