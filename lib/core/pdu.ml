type pdu_type = Dtp | Ack | Mgmt | Hello

type t = {
  pdu_type : pdu_type;
  dst_addr : Types.address;
  src_addr : Types.address;
  dst_cep : Types.cep_id;
  src_cep : Types.cep_id;
  qos_id : Types.qos_id;
  seq : int;
  ack : int;
  window : int;
  ttl : int;
  flags : int;
  payload : bytes;
}

let flag_drf = 1

let flag_fin = 2

let flag_ecn = 4

let has_flag t flag = t.flags land flag <> 0

let make ~pdu_type ~dst_addr ~src_addr ?(dst_cep = 0) ?(src_cep = 0) ?(qos_id = 0)
    ?(seq = 0) ?(ack = 0) ?(window = 0) ?(ttl = 32) ?(flags = 0) payload =
  {
    pdu_type;
    dst_addr;
    src_addr;
    dst_cep;
    src_cep;
    qos_id;
    seq;
    ack;
    window;
    ttl;
    flags;
    payload;
  }

let version = 1

let type_code = function Dtp -> 0 | Ack -> 1 | Mgmt -> 2 | Hello -> 3

let type_of_code = function
  | 0 -> Ok Dtp
  | 1 -> Ok Ack
  | 2 -> Ok Mgmt
  | 3 -> Ok Hello
  | n -> Error (Printf.sprintf "unknown PDU type code %d" n)

(* Fixed wire offsets (big-endian, same layout the codec-based encoder
   produced): version(0) type(1) dst_addr(2) src_addr(6) dst_cep(10)
   src_cep(14) qos_id(18,u16) seq(20) ack(24) window(28) ttl(32,u8)
   flags(33,u8) payload_len(34,u32) payload(38..). *)
let off_dst_addr = 2

let off_dst_cep = 10

let off_qos_id = 18

let off_seq = 20

let ttl_offset = 32

let flags_offset = 33

let off_payload_len = 34

(* version + type + 4 addr/cep words + qos + seq + ack + window + ttl +
   flags + payload length prefix *)
let header_size = 1 + 1 + (4 * 4) + 2 + 4 + 4 + 4 + 1 + 1 + 4

let encoded_size t = header_size + Bytes.length t.payload

let check_u8 what v =
  if v < 0 || v > 0xFF then invalid_arg ("Pdu.encode: " ^ what ^ " out of range")

let check_u16 what v =
  if v < 0 || v > 0xFFFF then
    invalid_arg ("Pdu.encode: " ^ what ^ " out of range")

let check_u32 what v =
  if v < 0 || v > 0xFFFFFFFF then
    invalid_arg ("Pdu.encode: " ^ what ^ " out of range")

(* Write the whole PDU into [b] starting at offset 0.  [b] may be
   longer than [encoded_size] (room for an SDU-protection trailer). *)
let write b t =
  check_u32 "dst_addr" t.dst_addr;
  check_u32 "src_addr" t.src_addr;
  check_u32 "dst_cep" t.dst_cep;
  check_u32 "src_cep" t.src_cep;
  check_u16 "qos_id" t.qos_id;
  check_u32 "seq" t.seq;
  check_u32 "ack" t.ack;
  check_u32 "window" t.window;
  check_u8 "ttl" t.ttl;
  check_u8 "flags" t.flags;
  Bytes.set_uint8 b 0 version;
  Bytes.set_uint8 b 1 (type_code t.pdu_type);
  Bytes.set_int32_be b off_dst_addr (Int32.of_int t.dst_addr);
  Bytes.set_int32_be b 6 (Int32.of_int t.src_addr);
  Bytes.set_int32_be b off_dst_cep (Int32.of_int t.dst_cep);
  Bytes.set_int32_be b 14 (Int32.of_int t.src_cep);
  Bytes.set_uint16_be b off_qos_id t.qos_id;
  Bytes.set_int32_be b off_seq (Int32.of_int t.seq);
  Bytes.set_int32_be b 24 (Int32.of_int t.ack);
  Bytes.set_int32_be b 28 (Int32.of_int t.window);
  Bytes.set_uint8 b ttl_offset t.ttl;
  Bytes.set_uint8 b 33 t.flags;
  Bytes.set_int32_be b off_payload_len (Int32.of_int (Bytes.length t.payload));
  Bytes.blit t.payload 0 b header_size (Bytes.length t.payload)

let encode t =
  let b = Bytes.create (encoded_size t) in
  write b t;
  b

(* Encode straight into a protected frame: one allocation for header +
   payload + CRC trailer, where encode-then-protect costs two buffers
   and an extra full copy. *)
let encode_frame t =
  let n = encoded_size t in
  let b = Bytes.create (n + Sdu_protection.overhead) in
  write b t;
  Bytes.set_int32_be b n (Int32.of_int (Sdu_protection.crc32_sub b ~pos:0 ~len:n));
  b

let get_u32 b off = Int32.to_int (Bytes.get_int32_be b off) land 0xFFFFFFFF

(* Decode the PDU occupying [b.(0 .. len-1)] — [b] itself may be a
   longer buffer (a protected frame whose trailer is excluded via
   [len]).  [with_payload:false] skips the payload copy and leaves
   [payload = Bytes.empty]: enough for every relay decision
   (forwarding, classification, ingress filtering all read header
   fields only), made explicit by the two wrappers below. *)
let decode_at b ~len ~with_payload =
  if len < 1 then Error "truncated PDU: missing version byte"
  else
    let v = Bytes.get_uint8 b 0 in
    if v <> version then Error (Printf.sprintf "unsupported PDU version %d" v)
    else if len < 2 then Error "truncated PDU: missing type byte"
    else
      match type_of_code (Bytes.get_uint8 b 1) with
      | Error _ as e -> e
      | Ok pdu_type ->
        if len < header_size then Error "truncated PDU header"
        else
          let plen = get_u32 b off_payload_len in
          if header_size + plen > len then Error "truncated PDU payload"
          else if header_size + plen < len then
            Error
              (Printf.sprintf "%d trailing bytes after PDU"
                 (len - header_size - plen))
          else
            Ok
              {
                pdu_type;
                dst_addr = get_u32 b off_dst_addr;
                src_addr = get_u32 b 6;
                dst_cep = get_u32 b off_dst_cep;
                src_cep = get_u32 b 14;
                qos_id = Bytes.get_uint16_be b off_qos_id;
                seq = get_u32 b off_seq;
                ack = get_u32 b 24;
                window = get_u32 b 28;
                ttl = Bytes.get_uint8 b ttl_offset;
                flags = Bytes.get_uint8 b 33;
                payload =
                  (if with_payload then Bytes.sub b header_size plen
                   else Bytes.empty);
              }

let decode_sub b ~len = decode_at b ~len ~with_payload:true

let decode_header b ~len = decode_at b ~len ~with_payload:false

let decode frame = decode_sub frame ~len:(Bytes.length frame)

let pp fmt t =
  let kind =
    match t.pdu_type with Dtp -> "DTP" | Ack -> "ACK" | Mgmt -> "MGMT" | Hello -> "HELLO"
  in
  Format.fprintf fmt "%s %d->%d cep %d->%d seq=%d ack=%d w=%d len=%d" kind
    t.src_addr t.dst_addr t.src_cep t.dst_cep t.seq t.ack t.window
    (Bytes.length t.payload)

(* Flow key for the flight recorder: the destination end of the
   connection identifies the flow, so the sender (which addressed the
   PDU), every relay that decodes it and the receiver (whose address
   and CEP these are) derive the same key — and hence, mixed with the
   sequence number, the same trace id. *)
let flow_key t = (t.dst_addr lsl 16) lor (t.dst_cep land 0xFFFF)

let span t =
  match t.pdu_type with
  | Dtp -> Rina_util.Flight.span_of ~flow:(flow_key t) ~seq:t.seq
  | Ack | Mgmt | Hello -> 0

(* Header-field accessors that read straight out of an encoded frame —
   the relay data path never materialises a record just to pick a
   queue or tag a flight event.  Callers must have verified the frame
   first ([Sdu_protection.verify_len]), so offsets are in range. *)
module Peek = struct
  let dst_addr b = get_u32 b off_dst_addr

  let dst_cep b = get_u32 b off_dst_cep

  let seq b = get_u32 b off_seq

  let flags b = Bytes.get_uint8 b flags_offset

  let is_dtp b = Bytes.get_uint8 b 1 = 0

  let span b =
    if is_dtp b then
      Rina_util.Flight.span_of
        ~flow:((dst_addr b lsl 16) lor (dst_cep b land 0xFFFF))
        ~seq:(seq b)
    else 0
end

(* ECN-style congestion marking, applied to encoded frames in place.
   The frame keeps its SDU-protection trailer valid: set the flag bit,
   then reseal — same pattern the relay uses for the TTL decrement. *)
let frame_has_ecn frame = Peek.flags frame land flag_ecn <> 0

let mark_ecn_frame frame =
  let f = Peek.flags frame in
  if f land flag_ecn = 0 then begin
    Bytes.set_uint8 frame flags_offset (f lor flag_ecn);
    Sdu_protection.seal frame
  end
