(** SDU protection: integrity check appended to every frame a DIF hands
    to the layer below.

    Implements CRC-32 (IEEE 802.3 polynomial, table-driven).  A member
    receiving a frame that fails the check drops it — this is also the
    first line of defence against the injection attack in experiment
    C2, since an attacker that is not a member does not even share the
    framing discipline. *)

val crc32 : bytes -> int
(** CRC-32 of the whole byte string (masked to 32 bits). *)

val crc32_sub : bytes -> pos:int -> len:int -> int
(** CRC-32 of a sub-range, without copying it out. *)

val protect : bytes -> bytes
(** Append the 4-byte big-endian CRC. *)

val seal : bytes -> unit
(** Recompute the CRC of a frame's body in place and store it in the
    trailer — for frames edited after [protect] (e.g. a relay
    decrementing the TTL in a copied frame). *)

val verify : bytes -> bytes option
(** Check and strip the trailer; [None] if too short or corrupt. *)

val verify_len : bytes -> int option
(** Check the trailer and return the body length without copying;
    [None] if too short or corrupt.  The hot path reads header fields
    straight out of the frame. *)

val overhead : int
(** Bytes added by [protect]. *)
