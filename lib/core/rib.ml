type value =
  | V_str of string
  | V_int of int
  | V_float of float
  | V_bool of bool
  | V_bytes of bytes

type event = Created | Updated | Deleted

type watcher = { prefix : string; callback : event -> string -> value option -> unit }

type t = {
  objects : (string, value) Hashtbl.t;
  versions : (string, int * int) Hashtbl.t;
      (* path -> (origin address, version); only paths written through
         the versioned API have entries *)
  mutable watchers : watcher list;
}

let create () =
  { objects = Hashtbl.create 64; versions = Hashtbl.create 64; watchers = [] }

let value_equal a b =
  match (a, b) with
  | V_str x, V_str y -> String.equal x y
  | V_int x, V_int y -> x = y
  | V_float x, V_float y -> x = y
  | V_bool x, V_bool y -> x = y
  | V_bytes x, V_bytes y -> Bytes.equal x y
  | (V_str _ | V_int _ | V_float _ | V_bool _ | V_bytes _), _ -> false

let notify t event path value =
  List.iter
    (fun w ->
      if String.starts_with ~prefix:w.prefix path then w.callback event path value)
    t.watchers

(* Sanitizer hook: object names are absolute slash-separated paths.  A
   relative, empty or slash-doubled path would silently partition the
   namespace ([children] and prefix watchers could never see it). *)
let write t path value =
  (if Rina_util.Invariant.enabled () then
     let len = String.length path in
     let rec has_double i =
       i + 1 < len && ((path.[i] = '/' && path.[i + 1] = '/') || has_double (i + 1))
     in
     if len = 0 || path.[0] <> '/' || path.[len - 1] = '/' || has_double 0 then
       Rina_util.Invariant.record ~code:"SAN_RIB_PATH"
         (Printf.sprintf "malformed RIB object name %S" path));
  let event = if Hashtbl.mem t.objects path then Updated else Created in
  if Rina_util.Flight.enabled () then
    Rina_util.Flight.emit ~component:"rib" (Rina_util.Flight.Custom "rib_write");
  Hashtbl.replace t.objects path value;
  notify t event path (Some value)

(* ---------- versioned writes (stale/duplicate rejection) ----------

   Each versioned object carries an (origin address, version) pair.
   Ordering is origin-first lexicographic: a higher origin address
   dominates, then a higher version.  Origin-first is deliberate — a
   crashed owner re-enrolls with a fresh, strictly higher address (the
   namespace manager allocates monotonically), so its version-1
   re-publication still beats the stale state its old incarnation
   flooded before dying. *)

let version_of t path = Hashtbl.find_opt t.versions path

let version_newer (o1, v1) (o2, v2) = o1 > o2 || (o1 = o2 && v1 > v2)

type remote_result = Accepted of { value_changed : bool } | Duplicate | Stale

let write_owned t path value ~origin =
  let ver =
    match Hashtbl.find_opt t.versions path with
    | Some (_, v) -> v + 1
    | None -> 1
  in
  Hashtbl.replace t.versions path (origin, ver);
  write t path value;
  (origin, ver)

let accept_remote t path value ~origin ~ver =
  let incoming = (origin, ver) in
  match Hashtbl.find_opt t.versions path with
  | Some current when current = incoming -> Duplicate
  | Some current when not (version_newer incoming current) -> Stale
  | Some _ | None ->
    let value_changed =
      match Hashtbl.find_opt t.objects path with
      | Some existing -> not (value_equal existing value)
      | None -> true
    in
    Hashtbl.replace t.versions path incoming;
    if value_changed then write t path value;
    Accepted { value_changed }

let read t path = Hashtbl.find_opt t.objects path

let read_int t path =
  match read t path with Some (V_int n) -> Some n | Some _ | None -> None

let read_str t path =
  match read t path with Some (V_str s) -> Some s | Some _ | None -> None

let delete t path =
  if Hashtbl.mem t.objects path then begin
    if Rina_util.Flight.enabled () then
      Rina_util.Flight.emit ~component:"rib"
        (Rina_util.Flight.Custom "rib_delete");
    Hashtbl.remove t.objects path;
    Hashtbl.remove t.versions path;
    notify t Deleted path None;
    true
  end
  else false

let exists t path = Hashtbl.mem t.objects path

let children t prefix =
  let prefix_slash =
    if String.length prefix > 0 && prefix.[String.length prefix - 1] = '/' then prefix
    else prefix ^ "/"
  in
  let plen = String.length prefix_slash in
  Hashtbl.fold
    (fun path _ acc ->
      if
        String.starts_with ~prefix:prefix_slash path
        && not (String.contains_from path plen '/')
      then path :: acc
      else acc)
    t.objects []
  |> List.sort String.compare

let subscribe t ~prefix callback = t.watchers <- { prefix; callback } :: t.watchers

let clear t =
  Hashtbl.reset t.objects;
  Hashtbl.reset t.versions

let size t = Hashtbl.length t.objects

let dump t =
  Hashtbl.fold (fun path v acc -> (path, v) :: acc) t.objects []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let encode_value w v =
  let module W = Rina_util.Codec.Writer in
  match v with
  | V_str s ->
    W.u8 w 0;
    W.string w s
  | V_int n ->
    W.u8 w 1;
    W.u64 w (Int64.of_int n)
  | V_float f ->
    W.u8 w 2;
    W.f64 w f
  | V_bool b ->
    W.u8 w 3;
    W.bool w b
  | V_bytes b ->
    W.u8 w 4;
    W.bytes w b

let decode_value r =
  let module R = Rina_util.Codec.Reader in
  match R.u8 r with
  | 0 -> V_str (R.string r)
  | 1 -> V_int (Int64.to_int (R.u64 r))
  | 2 -> V_float (R.f64 r)
  | 3 -> V_bool (R.bool r)
  | 4 -> V_bytes (R.bytes r)
  | n -> raise (R.Decode_error (Printf.sprintf "unknown RIB value tag %d" n))

let pp_value fmt = function
  | V_str s -> Format.fprintf fmt "%S" s
  | V_int n -> Format.fprintf fmt "%d" n
  | V_float f -> Format.fprintf fmt "%g" f
  | V_bool b -> Format.fprintf fmt "%b" b
  | V_bytes b -> Format.fprintf fmt "<%d bytes>" (Bytes.length b)
