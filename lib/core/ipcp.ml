module Chan = Rina_sim.Chan
module Engine = Rina_sim.Engine
module Metrics = Rina_util.Metrics
module W = Rina_util.Codec.Writer
module R = Rina_util.Codec.Reader

type flow = {
  port_id : Types.port_id;
  qos : Qos.t;
  remote_app : Types.apn;
  send : bytes -> unit;
  set_on_receive : (bytes -> unit) -> unit;
  set_on_error : (string -> unit) -> unit;
  close : unit -> unit;
  flow_metrics : unit -> Metrics.t;
  congested : unit -> bool;
}

(* Per-flow endpoint state held by the IPC process. *)
type flow_state = {
  fs_port : Types.port_id;
  fs_local_cep : Types.cep_id;
  fs_remote_cep : Types.cep_id;
  fs_remote_addr : Types.address;
  fs_local_app : Types.apn;
  fs_remote_app : Types.apn;
  fs_qos : Qos.t;
  fs_efcp : Efcp.t;
  fs_reasm : Delimiting.reassembler;
  mutable fs_on_receive : bytes -> unit;
  mutable fs_on_error : string -> unit;
  mutable fs_closed : bool;
}

type pending_alloc = {
  pa_on_result : (flow, string) result -> unit;
  pa_local_cep : Types.cep_id;
  pa_port : Types.port_id;
  pa_qos : Qos.t;
  pa_src_app : Types.apn;
  pa_dst_app : Types.apn;
  pa_dst_addr : Types.address;
  pa_timeout : Engine.handle;
  pa_on_busy : unit -> unit;
      (* result-4 (admission busy) handler: schedules a backed-off
         re-request instead of surfacing an error *)
}

type app_reg = { ar_name : Types.apn; ar_on_flow : flow -> unit }

(* Management view of an RMT port. *)
type nport = {
  np_id : Types.port_id;
  np_chan : Chan.t;
  np_cost : float;
  mutable np_peer : Types.address;  (* 0 until the peer's hello *)
  mutable np_peer_name : string;
  mutable np_last_hello : float;
  mutable np_last_seen : float;
      (* any proof of life: hello, keepalive probe or reply.  Drives
         the dead-peer declaration, which is stricter than mere
         adjacency expiry: it withdraws the peer's LSA DIF-wide. *)
}

type enroll_state = E_none | E_pending of Types.port_id

(* A member waiting for the namespace manager to grant an address for
   a joiner it is admitting. *)
type pending_grant = {
  pg_port : Types.port_id;
  pg_invoke : int;  (* invoke id of the joiner's M_CONNECT *)
  pg_timeout : Engine.handle;
}

type t = {
  engine : Engine.t;
  trace : Rina_sim.Trace.t option;
  name : Types.apn;
  dif : Types.dif_name;
  policy : Policy.t;
  credentials : string;
  qos_cubes : Qos.t list;
  rib : Rib.t;
  rmt : Rmt.t;
  lsdb : Routing.t;
  metrics : Metrics.t;
  rank : int;  (* DIF rank stamped on flight-recorder events *)
  nports : (Types.port_id, nport) Hashtbl.t;
  flows : (Types.cep_id, flow_state) Hashtbl.t;
  apps : (string, app_reg) Hashtbl.t;
  pending : (int, pending_alloc) Hashtbl.t;
  pending_grants : (int, pending_grant) Hashtbl.t;
  mutable address : Types.address;
  mutable enrolled : bool;
  mutable enroll_state : enroll_state;
  mutable next_cep : int;
  mutable next_flow_port : int;
  mutable next_invoke : int;
  mutable next_hops : Routing.next_hops;
  mutable ecmp_hops : (Types.address, Types.address list * float) Hashtbl.t;
      (* equal-cost first hops per destination; maintained only while
         the multipath monitor is armed (policy probe_interval > 0) *)
  mutable chosen_poa : (Types.address, Types.port_id) Hashtbl.t;
  mutable own_lsa_seq : int;
  mutable last_adjacency : (Types.address * float) list;
  mutable recompute_scheduled : bool;
  mutable enrolled_hooks : (unit -> unit) list;
  mutable hello_ticks : int;
  mutable ae_round : int;
      (* round-robin cursor of the anti-entropy sweep over adjacent
         ports *)
  mutable auto_enroll : bool;
      (* join automatically when a member's hello is seen; cleared by
         [leave] so a deliberate departure sticks *)
  mutable isolation_watchers : (bool -> unit) list;
      (* fired with [true] = attached when the live-adjacency set flips
         between empty and non-empty *)
  mutable was_attached : bool;
  mutable up : bool;
      (* false between [crash] and [restart]: timers keep rescheduling
         but their bodies no-op, and the ingress filter drops
         everything *)
  rng : Rina_util.Prng.t;
      (* private stream for enrollment backoff jitter; seeded from the
         (dif, name) pair so runs stay deterministic *)
  mpath : Multipath.t;
      (* per-port path health + striping state; inert (every path Up,
         no probes) unless policy [multipath] arms the monitor *)
}

let trace t event =
  match t.trace with
  | Some tr ->
    Rina_sim.Trace.record tr
      ~component:(t.dif ^ ":" ^ Types.apn_to_string t.name)
      ~event
  | None -> ()

(* Flight-recorder emission; guarded with [Flight.enabled] at every
   call site.  The component matches the legacy trace component so both
   streams line up in analysis. *)
module Flight = Rina_util.Flight

let flight_comp t = t.dif ^ ":" ^ Types.apn_to_string t.name

(* ---------- small codecs for management payloads ---------- *)

(* Identity announcements carry a token proving knowledge of the DIF's
   shared secret, so an outsider cannot claim a member address and get
   past the ingress filter.  (A real deployment would use a MAC; the
   *structure* — membership gates the data plane — is what §6.1
   claims.)  With [Auth_none] the token is trivially forgeable, which
   faithfully models a public DIF with weak joining requirements. *)
let hello_token t ~name ~addr =
  let secret =
    match t.policy.Policy.auth with
    | Policy.Auth_none -> ""
    | Policy.Auth_password s -> s
  in
  Sdu_protection.crc32
    (Bytes.of_string (Printf.sprintf "%s|%s|%d" secret name addr))

let encode_hello t =
  let w = W.create () in
  let name = Types.apn_to_string t.name in
  W.string w name;
  W.u32 w t.address;
  W.u32 w (hello_token t ~name ~addr:t.address);
  W.contents w

let decode_hello data =
  try
    let r = R.create data in
    let name = R.string r in
    let addr = R.u32 r in
    let token = R.u32 r in
    R.expect_end r;
    Ok (name, addr, token)
  with R.Decode_error msg -> Error msg

type flow_req = {
  fr_src_app : Types.apn;
  fr_dst_app : Types.apn;
  fr_qos_id : Types.qos_id;
  fr_src_addr : Types.address;
  fr_src_cep : Types.cep_id;
}

let encode_flow_req fr =
  let w = W.create () in
  W.string w (Types.apn_to_string fr.fr_src_app);
  W.string w (Types.apn_to_string fr.fr_dst_app);
  W.u16 w fr.fr_qos_id;
  W.u32 w fr.fr_src_addr;
  W.u32 w fr.fr_src_cep;
  W.contents w

let decode_flow_req data =
  try
    let r = R.create data in
    let fr_src_app = Types.apn_of_string (R.string r) in
    let fr_dst_app = Types.apn_of_string (R.string r) in
    let fr_qos_id = R.u16 r in
    let fr_src_addr = R.u32 r in
    let fr_src_cep = R.u32 r in
    R.expect_end r;
    Ok { fr_src_app; fr_dst_app; fr_qos_id; fr_src_addr; fr_src_cep }
  with R.Decode_error msg -> Error msg

(* Enrollment snapshot: address grant plus the member's replicated
   state (directory + address pool + link-state DB). *)
let encode_snapshot t ~granted =
  let w = W.create () in
  W.u32 w granted;
  (* Prefix scan, not [Rib.children]: directory paths are
     /dir/<name>/<instance> — two levels below /dir — so a one-level
     listing would miss every entry. *)
  let entries =
    List.filter
      (fun (path, _) -> String.starts_with ~prefix:"/dir/" path)
      (Rib.dump t.rib)
  in
  W.u16 w (List.length entries);
  List.iter
    (fun (path, v) ->
      W.string w path;
      Rib.encode_value w v)
    entries;
  let lsas = Routing.all t.lsdb in
  W.u16 w (List.length lsas);
  List.iter (fun lsa -> W.bytes w (Routing.Lsa.encode lsa)) lsas;
  W.contents w

let decode_snapshot data =
  try
    let r = R.create data in
    let granted = R.u32 r in
    let n = R.u16 r in
    let entries =
      List.init n (fun _ ->
          let path = R.string r in
          let v = Rib.decode_value r in
          (path, v))
    in
    let m = R.u16 r in
    let lsas =
      List.init m (fun _ ->
          match Routing.Lsa.decode (R.bytes r) with
          | Ok lsa -> lsa
          | Error msg -> raise (R.Decode_error msg))
    in
    R.expect_end r;
    Ok (granted, entries, lsas)
  with R.Decode_error msg -> Error msg

(* ---------- port / adjacency helpers ---------- *)

let nport_alive t np =
  np.np_chan.Chan.is_up ()
  && Engine.now t.engine -. np.np_last_hello <= t.policy.Policy.routing.Policy.dead_interval

(* Live (neighbour, cost) pairs, one entry per distinct peer (cheapest
   point of attachment). *)
let adjacency_set t =
  let best : (Types.address, float) Hashtbl.t = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _ np ->
      if np.np_peer > 0 && nport_alive t np then
        match Hashtbl.find_opt best np.np_peer with
        | Some c when c <= np.np_cost -> ()
        | Some _ | None -> Hashtbl.replace best np.np_peer np.np_cost)
    t.nports;
  Hashtbl.fold (fun addr cost acc -> (addr, cost) :: acc) best []
  |> List.sort compare

(* Second routing step (Fig. 4): choose the point of attachment to a
   neighbour among possibly several ports, with stickiness so we can
   count genuine failovers. *)
let port_to_peer t peer =
  let candidates =
    Hashtbl.fold
      (fun _ np acc ->
        if np.np_peer = peer && nport_alive t np then np.np_id :: acc else acc)
      t.nports []
    |> List.sort compare
  in
  match candidates with
  | [] ->
    Hashtbl.remove t.chosen_poa peer;
    None
  | first :: _ -> (
    match Hashtbl.find_opt t.chosen_poa peer with
    | Some p when List.mem p candidates -> Some p
    | Some _ ->
      (* Previous point of attachment died: local failover, no routing
         update needed beyond this hop. *)
      if Flight.enabled () then
        Flight.emit ~component:(flight_comp t) ~flow:peer ~rank:t.rank
          Flight.Handoff;
      Metrics.incr t.metrics "local_reroute";
      Hashtbl.replace t.chosen_poa peer first;
      Some first
    | None ->
      Hashtbl.replace t.chosen_poa peer first;
      Some first)

(* Legacy single-path forwarding: one next hop, one sticky point of
   attachment.  Still the whole story when the multipath monitor is
   disarmed; the label-aware dispatch lives below [qos_cube]. *)
let forward_single t (pdu : Pdu.t) =
  match Hashtbl.find_opt t.next_hops pdu.Pdu.dst_addr with
  | None -> None
  | Some (next_hop, _) -> port_to_peer t next_hop

(* ---------- management PDU transmission ---------- *)

let mgmt_pdu t ~dst msg =
  Pdu.make ~pdu_type:Pdu.Mgmt ~dst_addr:dst ~src_addr:t.address
    ~ttl:t.policy.Policy.max_ttl (Riep.encode msg)

let send_mgmt t ~dst msg =
  Metrics.incr t.metrics "mgmt_tx";
  if Flight.enabled () then
    Flight.emit ~component:(flight_comp t) ~rank:t.rank
      (Flight.Custom ("riep_tx:" ^ Riep.trace_label msg));
  ignore (Rmt.send t.rmt (mgmt_pdu t ~dst msg) : Types.port_id option)

let send_mgmt_on_port t ~port msg =
  Metrics.incr t.metrics "mgmt_tx";
  if Flight.enabled () then
    Flight.emit ~component:(flight_comp t) ~rank:t.rank
      (Flight.Custom ("riep_tx:" ^ Riep.trace_label msg));
  Rmt.send_on_port t.rmt port (mgmt_pdu t ~dst:Types.no_address msg)

let adjacent_ports t =
  Hashtbl.fold
    (fun _ np acc -> if np.np_peer > 0 && nport_alive t np then np :: acc else acc)
    t.nports []

(* ---------- flooding ---------- *)

let flood_lsa t ?except_port lsa =
  List.iter
    (fun np ->
      if Some np.np_id <> except_port then begin
        Metrics.incr t.metrics "lsa_tx";
        send_mgmt_on_port t ~port:np.np_id
          (Riep.make ~opcode:Riep.M_write ~obj_class:"lsa"
             ~obj_name:(string_of_int lsa.Routing.Lsa.origin)
             ~obj_value:(Rib.V_bytes (Routing.Lsa.encode lsa))
             ())
      end)
    (adjacent_ports t)

(* Versioned RIB updates: floods are stamped with the (origin, version)
   pair the local store holds for the path, so replicas can reject
   stale and duplicate copies.  Paths never written through the
   versioned API carry (0, 0), which receivers treat with the legacy
   accept-if-value-differs rule. *)
let rib_write_msg t path value =
  let origin, version =
    match Rib.version_of t.rib path with Some ov -> ov | None -> (0, 0)
  in
  Riep.make ~opcode:Riep.M_write ~obj_class:"rib" ~obj_name:path
    ~obj_value:value ~version ~origin ()

let flood_rib_write t ?except_port path value =
  List.iter
    (fun np ->
      if Some np.np_id <> except_port then begin
        if String.starts_with ~prefix:"/dir/" path then
          Metrics.incr t.metrics "dir_tx";
        send_mgmt_on_port t ~port:np.np_id (rib_write_msg t path value)
      end)
    (adjacent_ports t)

let flood_rib_delete t ?except_port path =
  List.iter
    (fun np ->
      if Some np.np_id <> except_port then
        send_mgmt_on_port t ~port:np.np_id
          (Riep.make ~opcode:Riep.M_delete ~obj_class:"rib" ~obj_name:path ()))
    (adjacent_ports t)

(* LSA withdrawal: flooded when an origin is declared dead (by the
   dead-peer timeout) or aged out, so stale reachability does not
   linger in every member's database until the heat death of the
   simulation. *)
let flood_lsa_delete t ?except_port origin =
  List.iter
    (fun np ->
      if Some np.np_id <> except_port then begin
        Metrics.incr t.metrics "lsa_withdraw_tx";
        send_mgmt_on_port t ~port:np.np_id
          (Riep.make ~opcode:Riep.M_delete ~obj_class:"lsa"
             ~obj_name:(string_of_int origin) ())
      end)
    (adjacent_ports t)

(* ---------- routing recomputation ---------- *)

let schedule_recompute t =
  if not t.recompute_scheduled then begin
    t.recompute_scheduled <- true;
    ignore
      (Engine.schedule t.engine ~delay:0. (fun () ->
           t.recompute_scheduled <- false;
           t.next_hops <- Routing.spf t.lsdb ~source:t.address;
           if Multipath.enabled t.mpath then
             t.ecmp_hops <- Routing.spf_multi t.lsdb ~source:t.address;
           Metrics.incr t.metrics "spf_runs"))
  end

let rebuild_own_lsa t =
  if t.enrolled then begin
    let adj = adjacency_set t in
    let attached = adj <> [] in
    if attached <> t.was_attached then begin
      t.was_attached <- attached;
      (* This process just lost (or regained) all points of attachment;
         flows through it are dead (alive) — tell local holders of
         flow-backed channels (mobility's "controlled link failure"). *)
      List.iter (fun f -> f attached) t.isolation_watchers
    end;
    if adj <> t.last_adjacency then begin
      t.last_adjacency <- adj;
      t.own_lsa_seq <- t.own_lsa_seq + 1;
      let lsa =
        { Routing.Lsa.origin = t.address; seq = t.own_lsa_seq; neighbors = adj }
      in
      ignore (Routing.install ~now:(Engine.now t.engine) t.lsdb lsa);
      trace t "lsa_update";
      flood_lsa t lsa;
      schedule_recompute t
    end
  end

(* ---------- hello protocol ---------- *)

let send_hello t np =
  Rmt.send_on_port t.rmt np.np_id
    (Pdu.make ~pdu_type:Pdu.Hello ~dst_addr:Types.no_address ~src_addr:t.address
       (encode_hello t))

(* Database exchange on adjacency establishment: a freshly-risen
   adjacency may separate two parts of the DIF that hold different
   state (enrollment races, mobility re-attachment), so push our whole
   LSDB, directory and address pool to the new peer. *)
let sync_peer t np =
  if t.enrolled then begin
    List.iter
      (fun lsa ->
        Metrics.incr t.metrics "lsa_tx";
        send_mgmt_on_port t ~port:np.np_id
          (Riep.make ~opcode:Riep.M_write ~obj_class:"lsa"
             ~obj_name:(string_of_int lsa.Routing.Lsa.origin)
             ~obj_value:(Rib.V_bytes (Routing.Lsa.encode lsa))
             ()))
      (Routing.all t.lsdb);
    List.iter
      (fun (path, v) ->
        (* Prefix scan: /dir/<name>/<instance> is two levels deep, so
           [Rib.children t.rib "/dir"] would list nothing. *)
        if String.starts_with ~prefix:"/dir/" path then begin
          Metrics.incr t.metrics "dir_tx";
          send_mgmt_on_port t ~port:np.np_id (rib_write_msg t path v)
        end)
      (Rib.dump t.rib)
  end

(* One M_connect attempt plus its timeout; on expiry, back off
   exponentially (jitter from the process-private PRNG) and try again
   up to [enroll_retries] times before giving up until the next
   hello. *)
let rec enroll_attempt t np ~attempt =
  send_mgmt_on_port t ~port:np.np_id
    (Riep.make ~opcode:Riep.M_connect ~obj_class:"enrollment"
       ~obj_name:(Types.apn_to_string t.name)
       ~obj_value:(Rib.V_str t.credentials) ());
  let en = t.policy.Policy.enrollment in
  ignore
    (Engine.schedule t.engine ~delay:en.Policy.enroll_timeout (fun () ->
         match t.enroll_state with
         | E_pending p when p = np.np_id && not t.enrolled ->
           Metrics.incr t.metrics "enroll_timeout";
           if attempt < en.Policy.enroll_retries && t.up then begin
             Metrics.incr t.metrics "enroll_retries";
             trace t "enroll_backoff";
             let delay =
               Rina_util.Backoff.delay_for ~rng:t.rng
                 ~base:(Float.max 1e-6 en.Policy.retry_backoff)
                 attempt
             in
             ignore
               (Engine.schedule t.engine ~delay (fun () ->
                    match t.enroll_state with
                    | E_pending p when p = np.np_id && not t.enrolled && t.up ->
                      enroll_attempt t np ~attempt:(attempt + 1)
                    | E_pending _ | E_none -> ()))
           end
           else
             (* Out of retries; a later hello will start over. *)
             t.enroll_state <- E_none
         | E_pending _ | E_none -> ()))

and start_enrollment t np =
  if t.auto_enroll && t.enroll_state = E_none && not t.enrolled then begin
    t.enroll_state <- E_pending np.np_id;
    trace t "enroll_start";
    enroll_attempt t np ~attempt:0
  end

and handle_hello t port_id (pdu : Pdu.t) =
  match Hashtbl.find_opt t.nports port_id with
  | None -> ()
  | Some np -> (
    match decode_hello pdu.Pdu.payload with
    | Error _ -> Metrics.incr t.metrics "bad_hello"
    | Ok (peer_name, peer_addr, token)
      when peer_addr > 0 && token <> hello_token t ~name:peer_name ~addr:peer_addr
      ->
      ignore peer_name;
      Metrics.incr t.metrics "hello_rejected";
      trace t "hello_rejected"
    | Ok (peer_name, peer_addr, _) ->
      np.np_last_hello <- Engine.now t.engine;
      np.np_last_seen <- Engine.now t.engine;
      np.np_peer_name <- peer_name;
      if np.np_peer <> peer_addr then begin
        np.np_peer <- peer_addr;
        (* Refresh our own LSA first so the database pushed to the new
           peer already contains the adjacency that just formed. *)
        rebuild_own_lsa t;
        if peer_addr > 0 then sync_peer t np
      end
      else rebuild_own_lsa t;
      if (not t.enrolled) && peer_addr > 0 then start_enrollment t np)

(* ---------- enrollment (member side) ---------- *)

(* The namespace manager: the DIF's founding member (address 1) is
   the single allocator, so concurrent enrollments through different
   members can never be granted the same address.  (The paper's §6.1:
   management applications assign internal addresses; replicating the
   allocator is a policy refinement left out here.) *)
let namespace_manager_addr = 1

let local_grant t =
  let next_free =
    match Rib.read_int t.rib "/dif/next_free" with Some n -> n | None -> 2
  in
  Rib.write t.rib "/dif/next_free" (Rib.V_int (next_free + 1));
  next_free

let finish_admission t port_id ~invoke ~granted =
  Metrics.incr t.metrics "enroll_accepted";
  trace t "enroll_accepted";
  send_mgmt_on_port t ~port:port_id
    (Riep.make ~opcode:Riep.M_connect_r ~obj_class:"enrollment" ~invoke_id:invoke
       ~result:0
       ~obj_value:(Rib.V_bytes (encode_snapshot t ~granted))
       ())

let deny_admission t port_id ~invoke reason =
  Metrics.incr t.metrics "enroll_denied";
  trace t "enroll_denied";
  send_mgmt_on_port t ~port:port_id
    (Riep.make ~opcode:Riep.M_connect_r ~obj_class:"enrollment" ~invoke_id:invoke
       ~result:1 ~result_reason:reason ())

let handle_connect t port_id (msg : Riep.t) =
  if not t.enrolled then () (* cannot admit anyone *)
  else begin
    let presented =
      match msg.Riep.obj_value with Some (Rib.V_str s) -> Some s | Some _ | None -> None
    in
    let authenticated =
      match t.policy.Policy.auth with
      | Policy.Auth_none -> true
      | Policy.Auth_password secret -> (
        match presented with Some s -> String.equal s secret | None -> false)
    in
    if not authenticated then
      deny_admission t port_id ~invoke:msg.Riep.invoke_id "authentication failed"
    else if t.address = namespace_manager_addr then
      finish_admission t port_id ~invoke:msg.Riep.invoke_id ~granted:(local_grant t)
    else begin
      (* Ask the namespace manager for an address over routed
         management; the joiner retries enrollment if this times out
         (e.g. before our route to the manager converges). *)
      let invoke = t.next_invoke in
      t.next_invoke <- t.next_invoke + 1;
      let timeout =
        Engine.schedule t.engine ~delay:1.5 (fun () ->
            if Hashtbl.mem t.pending_grants invoke then begin
              Hashtbl.remove t.pending_grants invoke;
              Metrics.incr t.metrics "grant_timeout"
            end)
      in
      Hashtbl.replace t.pending_grants invoke
        { pg_port = port_id; pg_invoke = msg.Riep.invoke_id; pg_timeout = timeout };
      send_mgmt t ~dst:namespace_manager_addr
        (Riep.make ~opcode:Riep.M_read ~obj_class:"addr-alloc"
           ~obj_name:msg.Riep.obj_name ~invoke_id:invoke ())
    end
  end

(* Namespace-manager side of an address request. *)
let handle_addr_alloc t (msg : Riep.t) ~from_addr =
  if t.address = namespace_manager_addr then begin
    let granted = local_grant t in
    Metrics.incr t.metrics "addr_granted";
    send_mgmt t ~dst:from_addr
      (Riep.make ~opcode:Riep.M_read_r ~obj_class:"addr-alloc"
         ~obj_name:msg.Riep.obj_name ~invoke_id:msg.Riep.invoke_id
         ~obj_value:(Rib.V_int granted) ())
  end

let handle_addr_alloc_r t (msg : Riep.t) =
  match Hashtbl.find_opt t.pending_grants msg.Riep.invoke_id with
  | None -> ()
  | Some pg -> (
    Hashtbl.remove t.pending_grants msg.Riep.invoke_id;
    Engine.cancel pg.pg_timeout;
    match msg.Riep.obj_value with
    | Some (Rib.V_int granted) ->
      finish_admission t pg.pg_port ~invoke:pg.pg_invoke ~granted
    | Some _ | None -> deny_admission t pg.pg_port ~invoke:pg.pg_invoke "allocation failed")

(* ---------- enrollment (joiner side) ---------- *)

let run_enrolled_hooks t =
  let hooks = List.rev t.enrolled_hooks in
  t.enrolled_hooks <- [];
  List.iter (fun f -> f ()) hooks

let handle_connect_r t port_id (msg : Riep.t) =
  match t.enroll_state with
  | E_none -> ()
  | E_pending p when p <> port_id -> ()
  | E_pending _ ->
    if msg.Riep.result <> 0 then begin
      t.enroll_state <- E_none;
      Metrics.incr t.metrics "enroll_rejected";
      trace t "enroll_rejected"
    end
    else begin
      match msg.Riep.obj_value with
      | Some (Rib.V_bytes data) -> (
        match decode_snapshot data with
        | Error _ ->
          t.enroll_state <- E_none;
          Metrics.incr t.metrics "enroll_bad_snapshot"
        | Ok (granted, entries, lsas) ->
          t.address <- granted;
          List.iter (fun (path, v) -> Rib.write t.rib path v) entries;
          List.iter
            (fun lsa ->
              ignore (Routing.install ~now:(Engine.now t.engine) t.lsdb lsa))
            lsas;
          t.enrolled <- true;
          t.enroll_state <- E_none;
          Metrics.incr t.metrics "enrolled";
          trace t "enrolled";
          (* Announce the new address on every port so adjacencies form. *)
          Hashtbl.iter (fun _ np -> send_hello t np) t.nports;
          rebuild_own_lsa t;
          schedule_recompute t;
          run_enrolled_hooks t)
      | Some _ | None ->
        t.enroll_state <- E_none;
        Metrics.incr t.metrics "enroll_bad_snapshot"
    end

(* ---------- flows: helpers shared by both endpoints ---------- *)

let qos_cube t id =
  match Qos.find t.qos_cubes id with Some q -> q | None -> Qos.best_effort

(* ---------- multipath forwarding ---------- *)

(* Candidate path set toward [dst]: the live ports attached to each
   equal-cost next hop, (port, cost) sorted by port id.  Falls back to
   the single-path table while an SPF with ECMP data is still
   pending. *)
let multipath_candidates t dst =
  let hops =
    match Hashtbl.find_opt t.ecmp_hops dst with
    | Some (fhs, _) when fhs <> [] -> fhs
    | Some _ | None -> (
      match Hashtbl.find_opt t.next_hops dst with
      | Some (nh, _) -> [ nh ]
      | None -> [])
  in
  if hops = [] then []
  else
    Hashtbl.fold
      (fun _ np acc ->
        if List.mem np.np_peer hops && nport_alive t np then
          (np.np_id, np.np_cost) :: acc
        else acc)
      t.nports []
    |> List.sort compare

(* rr_key 3 = management traffic: its cursor never interleaves with
   the data labels (0..2), and mgmt always rides primary-backup so
   RIEP exchanges stay ordered. *)
let forward t (pdu : Pdu.t) =
  if not (Multipath.enabled t.mpath) then forward_single t pdu
  else
    match multipath_candidates t pdu.Pdu.dst_addr with
    | [] -> None
    | candidates ->
      let mode, rr_key =
        match pdu.Pdu.pdu_type with
        | Pdu.Mgmt | Pdu.Hello -> (Policy.Primary_backup, 3)
        | Pdu.Dtp | Pdu.Ack ->
          let label = Multipath.label_of_qos (qos_cube t pdu.Pdu.qos_id) in
          (Multipath.mode_for t.mpath label, Multipath.label_index label)
      in
      Multipath.select t.mpath ~dst:pdu.Pdu.dst_addr ~mode ~rr_key ~candidates

(* The drop-reason refinement installed into the RMT: a routed
   destination whose entire candidate set is Down is a path-down drop,
   not a no-route one. *)
let unroutable_reason t (pdu : Pdu.t) =
  if
    Multipath.enabled t.mpath
    && multipath_candidates t pdu.Pdu.dst_addr <> []
  then Flight.R_path_down
  else Flight.R_no_route

let make_flow_state t ~port ~local_cep ~remote_cep ~remote_addr ~local_app
    ~remote_app ~qos =
  let efcp_cfg = Policy.efcp_for_qos t.policy qos in
  let efcp_cfg =
    if qos.Qos.reliable then efcp_cfg
    else { efcp_cfg with Policy.rtx_strategy = Policy.No_rtx }
  in
  let reasm = Delimiting.create_reassembler () in
  let fs_ref = ref None in
  let send_pdu pdu =
    let pdu =
      { pdu with Pdu.dst_addr = remote_addr; src_addr = t.address }
    in
    (* The egress port becomes EFCP's path tag, so failover can
       re-stripe exactly the PDUs stranded on a dead path. *)
    match Rmt.send t.rmt pdu with Some port -> port | None -> 0
  in
  let deliver payload =
    match !fs_ref with
    | None -> ()
    | Some fs -> (
      match Delimiting.push fs.fs_reasm payload with
      | Some sdu -> if not fs.fs_closed then fs.fs_on_receive sdu
      | None -> ())
  in
  let on_error reason =
    Metrics.incr t.metrics "flow_errors";
    trace t ("flow_error:" ^ reason);
    if Flight.enabled () then
      Flight.emit ~component:(flight_comp t) ~flow:local_cep ~rank:t.rank
        (Flight.Custom "flow_abort");
    (* Abort: tear the local endpoint down and surface the reason to
       whoever holds the flow.  The peer is not notified — if it were
       reachable the retransmissions would not have exhausted. *)
    match !fs_ref with
    | None -> ()
    | Some fs ->
      let notify = fs.fs_on_error in
      if not fs.fs_closed then begin
        fs.fs_closed <- true;
        Efcp.close fs.fs_efcp;
        Hashtbl.remove t.flows fs.fs_local_cep
      end;
      notify reason
  in
  (* Span keys are address-qualified so per-PDU trace ids join with
     the events relays compute from decoded PDUs ({!Pdu.flow_key}):
     outgoing PDUs are addressed to (remote_addr, remote_cep), incoming
     ones to (our address, local_cep). *)
  let span_keys =
    ( (remote_addr lsl 16) lor (remote_cep land 0xFFFF),
      (t.address lsl 16) lor (local_cep land 0xFFFF) )
  in
  let efcp =
    Efcp.create t.engine ~config:efcp_cfg ~in_order:qos.Qos.in_order
      ~local_cep ~remote_cep ~qos_id:qos.Qos.id ~span_keys ~rank:t.rank
      ~send_pdu ~deliver ~on_error ()
  in
  let fs =
    {
      fs_port = port;
      fs_local_cep = local_cep;
      fs_remote_cep = remote_cep;
      fs_remote_addr = remote_addr;
      fs_local_app = local_app;
      fs_remote_app = remote_app;
      fs_qos = qos;
      fs_efcp = efcp;
      fs_reasm = reasm;
      fs_on_receive = (fun _ -> ());
      fs_on_error = (fun _ -> ());
      fs_closed = false;
    }
  in
  fs_ref := Some fs;
  Hashtbl.replace t.flows local_cep fs;
  fs

let close_flow_state t fs ~notify_peer =
  if not fs.fs_closed then begin
    fs.fs_closed <- true;
    Efcp.close fs.fs_efcp;
    Hashtbl.remove t.flows fs.fs_local_cep;
    if notify_peer then
      send_mgmt t ~dst:fs.fs_remote_addr
        (Riep.make ~opcode:Riep.M_delete ~obj_class:"flow"
           ~obj_value:(Rib.V_int fs.fs_remote_cep) ())
  end

let flow_of_state t fs =
  let mtu = t.policy.Policy.efcp.Policy.mtu in
  {
    port_id = fs.fs_port;
    qos = fs.fs_qos;
    remote_app = fs.fs_remote_app;
    send =
      (fun sdu ->
        (* The delimiting boundary: one event per application SDU,
           before fragmentation assigns per-PDU spans downstream. *)
        if Flight.enabled () then
          Flight.emit ~component:(flight_comp t) ~flow:fs.fs_local_cep
            ~rank:t.rank ~size:(Bytes.length sdu) (Flight.Custom "sdu");
        List.iter (fun frag -> Efcp.send fs.fs_efcp frag)
          (Delimiting.fragment ~mtu sdu));
    set_on_receive = (fun f -> fs.fs_on_receive <- f);
    set_on_error = (fun f -> fs.fs_on_error <- f);
    close = (fun () -> close_flow_state t fs ~notify_peer:true);
    flow_metrics = (fun () -> Efcp.metrics fs.fs_efcp);
    congested = (fun () -> Efcp.congested fs.fs_efcp);
  }

(* ---------- flow allocator: destination side ---------- *)

let acl_allows t ~src_app ~dst_app =
  match t.policy.Policy.acl with
  | Policy.Allow_all -> true
  | Policy.Allow_pairs pairs ->
    List.exists
      (fun (s, d) ->
        String.equal s src_app.Types.ap_name && String.equal d dst_app.Types.ap_name)
      pairs

let handle_flow_create t (msg : Riep.t) =
  let reply ~result ~reason value =
    match msg.Riep.obj_value with
    | Some (Rib.V_bytes data) -> (
      match decode_flow_req data with
      | Error _ -> ()
      | Ok fr ->
        send_mgmt t ~dst:fr.fr_src_addr
          (Riep.make ~opcode:Riep.M_create_r ~obj_class:"flow"
             ~invoke_id:msg.Riep.invoke_id ~result ~result_reason:reason
             ?obj_value:value ()))
    | Some _ | None -> ()
  in
  match msg.Riep.obj_value with
  | Some (Rib.V_bytes data) -> (
    match decode_flow_req data with
    | Error _ -> Metrics.incr t.metrics "bad_flow_req"
    | Ok fr -> (
      match Hashtbl.find_opt t.apps (Types.apn_to_string fr.fr_dst_app) with
      | None ->
        Metrics.incr t.metrics "alloc_no_app";
        reply ~result:2 ~reason:"application not registered here" None
      | Some reg ->
        if not (acl_allows t ~src_app:fr.fr_src_app ~dst_app:fr.fr_dst_app) then begin
          Metrics.incr t.metrics "alloc_denied_acl";
          trace t "alloc_denied_acl";
          reply ~result:3 ~reason:"access denied" None
        end
        else begin
          (* Idempotence against retransmitted requests: if this
             (remote address, remote cep) already has a flow, repeat
             the earlier answer instead of allocating a second one. *)
          let existing =
            Hashtbl.fold
              (fun _ fs acc ->
                if fs.fs_remote_addr = fr.fr_src_addr && fs.fs_remote_cep = fr.fr_src_cep
                then Some fs
                else acc)
              t.flows None
          in
          match existing with
          | Some fs ->
            let w = W.create () in
            W.u32 w fs.fs_local_cep;
            reply ~result:0 ~reason:"" (Some (Rib.V_bytes (W.contents w)))
          | None ->
          let max_pending =
            t.policy.Policy.congestion.Policy.admission_max_pending
          in
          if max_pending > 0 && Hashtbl.length t.flows >= max_pending then begin
            (* Admission control: a flash crowd queues at the requester
               (deterministic backoff retry) instead of stampeding an
               overloaded destination.  Result 4 = busy, retryable —
               unlike 2/3, which are permanent. *)
            Metrics.incr t.metrics "alloc_busy_rejected";
            trace t "alloc_busy";
            reply ~result:4 ~reason:"busy: admission limit reached" None
          end
          else begin
          let local_cep = t.next_cep in
          t.next_cep <- t.next_cep + 1;
          let port = t.next_flow_port in
          t.next_flow_port <- t.next_flow_port + 1;
          let qos = qos_cube t fr.fr_qos_id in
          let fs =
            make_flow_state t ~port ~local_cep ~remote_cep:fr.fr_src_cep
              ~remote_addr:fr.fr_src_addr ~local_app:fr.fr_dst_app
              ~remote_app:fr.fr_src_app ~qos
          in
          Metrics.incr t.metrics "flows_accepted";
          let w = W.create () in
          W.u32 w local_cep;
          reply ~result:0 ~reason:"" (Some (Rib.V_bytes (W.contents w)));
          reg.ar_on_flow (flow_of_state t fs)
          end
        end))
  | Some _ | None -> Metrics.incr t.metrics "bad_flow_req"

(* ---------- flow allocator: requester side ---------- *)

let handle_flow_create_r t (msg : Riep.t) =
  match Hashtbl.find_opt t.pending msg.Riep.invoke_id with
  | None -> ()
  | Some pa ->
    Hashtbl.remove t.pending msg.Riep.invoke_id;
    Engine.cancel pa.pa_timeout;
    if msg.Riep.result = 4 then pa.pa_on_busy ()
    else if msg.Riep.result <> 0 then begin
      Metrics.incr t.metrics "alloc_failed";
      pa.pa_on_result (Error msg.Riep.result_reason)
    end
    else begin
      match msg.Riep.obj_value with
      | Some (Rib.V_bytes data) -> (
        try
          let r = R.create data in
          let remote_cep = R.u32 r in
          R.expect_end r;
          let fs =
            make_flow_state t ~port:pa.pa_port ~local_cep:pa.pa_local_cep
              ~remote_cep ~remote_addr:pa.pa_dst_addr ~local_app:pa.pa_src_app
              ~remote_app:pa.pa_dst_app ~qos:pa.pa_qos
          in
          Metrics.incr t.metrics "flows_allocated";
          pa.pa_on_result (Ok (flow_of_state t fs))
        with R.Decode_error msg -> pa.pa_on_result (Error msg))
      | Some _ | None -> pa.pa_on_result (Error "malformed flow response")
    end

let handle_flow_delete t (msg : Riep.t) =
  match msg.Riep.obj_value with
  | Some (Rib.V_int cep) -> (
    match Hashtbl.find_opt t.flows cep with
    | Some fs -> close_flow_state t fs ~notify_peer:false
    | None -> ())
  | Some _ | None -> ()

(* ---------- management dispatch ---------- *)

let handle_rib_write t from_port (msg : Riep.t) =
  match msg.Riep.obj_value with
  | None -> ()
  | Some value ->
    if msg.Riep.version = 0 && msg.Riep.origin = 0 then begin
      (* Unversioned (legacy) update: accept iff the value differs. *)
      let accept =
        match Rib.read t.rib msg.Riep.obj_name with
        | Some existing -> not (Rib.value_equal existing value)
        | None -> true
      in
      if accept then begin
        Rib.write t.rib msg.Riep.obj_name value;
        flood_rib_write t ?except_port:from_port msg.Riep.obj_name value
      end
    end
    else
      match
        Rib.accept_remote t.rib msg.Riep.obj_name value ~origin:msg.Riep.origin
          ~ver:msg.Riep.version
      with
      | Rib.Accepted { value_changed } ->
        (* Version-only installs (a refresh re-flood of a value we
           already hold) are absorbed silently — re-flooding them would
           turn every periodic refresh into a DIF-wide storm. *)
        if value_changed then
          flood_rib_write t ?except_port:from_port msg.Riep.obj_name value
      | Rib.Duplicate -> Metrics.incr t.metrics "rib_dup_rejected"
      | Rib.Stale -> (
        Metrics.incr t.metrics "rib_stale_rejected";
        (* Rumor correction: the sender is behind — push our newer
           state straight back so a corrupted or partitioned flood
           cannot leave it divergent until the next full sync. *)
        match (from_port, Rib.read t.rib msg.Riep.obj_name) with
        | Some port, Some v ->
          send_mgmt_on_port t ~port (rib_write_msg t msg.Riep.obj_name v)
        | _, _ -> ())

let handle_rib_delete t from_port (msg : Riep.t) =
  if Rib.delete t.rib msg.Riep.obj_name then
    flood_rib_delete t ?except_port:from_port msg.Riep.obj_name

let handle_lsa t from_port (msg : Riep.t) =
  match msg.Riep.obj_value with
  | Some (Rib.V_bytes data) -> (
    match Routing.Lsa.decode data with
    | Error _ -> Metrics.incr t.metrics "bad_lsa"
    | Ok lsa ->
      if Routing.install ~now:(Engine.now t.engine) t.lsdb lsa then begin
        Metrics.incr t.metrics "lsa_rx_new";
        flood_lsa t ?except_port:from_port lsa;
        schedule_recompute t
      end)
  | Some _ | None -> Metrics.incr t.metrics "bad_lsa"

(* Withdrawal flooding.  [withdraw] is idempotent, so the re-flood
   terminates exactly like LSA flooding does: the second copy finds
   nothing to remove and is not propagated.  A node receiving a
   withdrawal of its *own* origin is alive by definition and defends
   itself with a fresh, higher-sequence LSA. *)
let handle_lsa_delete t from_port (msg : Riep.t) =
  match int_of_string_opt msg.Riep.obj_name with
  | None -> Metrics.incr t.metrics "bad_lsa"
  | Some origin ->
    if t.enrolled && origin = t.address then begin
      Metrics.incr t.metrics "lsa_defended";
      t.own_lsa_seq <- t.own_lsa_seq + 1;
      let lsa =
        {
          Routing.Lsa.origin = t.address;
          seq = t.own_lsa_seq;
          neighbors = t.last_adjacency;
        }
      in
      ignore (Routing.install ~now:(Engine.now t.engine) t.lsdb lsa);
      flood_lsa t lsa
    end
    else if Routing.withdraw t.lsdb origin then begin
      Metrics.incr t.metrics "lsa_withdrawn";
      trace t (Printf.sprintf "lsa_withdrawn:%d" origin);
      flood_lsa_delete t ?except_port:from_port origin;
      schedule_recompute t
    end

(* ---------- keepalives / dead-peer detection ---------- *)

let touch_port t port_id =
  match Hashtbl.find_opt t.nports port_id with
  | Some np -> np.np_last_seen <- Engine.now t.engine
  | None -> ()

let handle_keepalive t port_id (msg : Riep.t) =
  touch_port t port_id;
  send_mgmt_on_port t ~port:port_id
    (Riep.make ~opcode:Riep.M_read_r ~obj_class:"keepalive"
       ~invoke_id:msg.Riep.invoke_id ())

let handle_keepalive_r t port_id = touch_port t port_id

(* ---------- multipath: path health probing and fast failover ---------- *)

(* Fast failover off a path that just went Down: in-flight PDUs whose
   last copy rode it are re-striped onto the surviving paths *now*
   (forwarding already excludes the dead port), without waiting for
   keepalive dead-peer declaration or LSA flooding.  EFCP's reorder
   window absorbs the resequencing at the far end. *)
let failover_from t np =
  Hashtbl.remove t.chosen_poa np.np_peer;
  if Flight.enabled () then
    Flight.emit ~component:(flight_comp t) ~flow:np.np_id ~rank:t.rank
      Flight.Handoff;
  Metrics.incr t.metrics "failovers";
  let stranded =
    Hashtbl.fold
      (fun _ fs acc -> acc + Efcp.repath fs.fs_efcp ~dead_path:np.np_id)
      t.flows 0
  in
  if stranded > 0 then Metrics.add t.metrics "repath_pdus" stranded

let note_path_transition t np = function
  | None -> ()
  | Some tr ->
    let name =
      match tr with
      | Multipath.To_up _ -> "path_up"
      | Multipath.To_suspect -> "path_suspect"
      | Multipath.To_down -> "path_down"
    in
    Metrics.incr t.metrics name;
    trace t (Printf.sprintf "%s:port%d" name np.np_id);
    if Flight.enabled () then
      Flight.emit ~component:(flight_comp t) ~flow:np.np_id ~rank:t.rank
        (Flight.Custom name);
    (match tr with Multipath.To_down -> failover_from t np | _ -> ())

let handle_path_probe t port_id (msg : Riep.t) =
  touch_port t port_id;
  send_mgmt_on_port t ~port:port_id
    (Riep.make ~opcode:Riep.M_read_r ~obj_class:"path-probe"
       ~invoke_id:msg.Riep.invoke_id ())

let handle_path_probe_r t port_id =
  touch_port t port_id;
  match Hashtbl.find_opt t.nports port_id with
  | None -> ()
  | Some np -> note_path_transition t np (Multipath.reply t.mpath port_id)

(* One probe period: walk the attachments in port order (the jitter
   stream is consumed per-port, so the order is part of the
   determinism contract), account misses, demote/revive paths, launch
   the next round of probes. *)
let rec multipath_tick t =
  (if t.up && t.enrolled then begin
     let now = Engine.now t.engine in
     let nps =
       Hashtbl.fold (fun _ np acc -> np :: acc) t.nports []
       |> List.sort (fun a b -> compare a.np_id b.np_id)
     in
     List.iter
       (fun np ->
         if np.np_peer > 0 && np.np_chan.Chan.is_up () then begin
           let action, tr = Multipath.tick t.mpath np.np_id ~now in
           note_path_transition t np tr;
           match action with
           | `Probe ->
             Metrics.incr t.metrics "path_probe_tx";
             send_mgmt_on_port t ~port:np.np_id
               (Riep.make ~opcode:Riep.M_read ~obj_class:"path-probe"
                  ~obj_name:(string_of_int np.np_id) ())
           | `Wait -> ()
         end)
       nps
   end);
  ignore
    (Engine.schedule ~lane:Engine.Timer t.engine
       ~delay:t.policy.Policy.multipath.Policy.probe_interval (fun () ->
         multipath_tick t))

(* Declare the peer behind [np] dead: tear down the local adjacency
   view and withdraw the peer's LSA DIF-wide (unless another live port
   still reaches the same peer — multihoming). *)
let declare_peer_dead t np =
  let dead = np.np_peer in
  Metrics.incr t.metrics "peer_declared_dead";
  trace t (Printf.sprintf "peer_dead:%d" dead);
  if Flight.enabled () then
    Flight.emit ~component:(flight_comp t) ~flow:dead ~rank:t.rank
      (Flight.Custom "peer_dead");
  np.np_peer <- 0;
  np.np_peer_name <- "";
  Hashtbl.remove t.chosen_poa dead;
  Multipath.forget t.mpath np.np_id;
  rebuild_own_lsa t;
  let still_reachable =
    Hashtbl.fold
      (fun _ other acc -> acc || (other.np_peer = dead && nport_alive t other))
      t.nports false
  in
  if (not still_reachable) && Routing.withdraw t.lsdb dead then begin
    Metrics.incr t.metrics "lsa_withdrawn";
    flood_lsa_delete t dead;
    schedule_recompute t
  end

let keepalive_interval t = t.policy.Policy.routing.Policy.keepalive_interval

let rec keepalive_tick t =
  (if t.up && t.enrolled then
     let now = Engine.now t.engine in
     let timeout = t.policy.Policy.routing.Policy.dead_peer_timeout in
     Hashtbl.iter
       (fun _ np ->
         if np.np_peer > 0 && np.np_chan.Chan.is_up () then
           if now -. np.np_last_seen > timeout then declare_peer_dead t np
           else begin
             if now -. np.np_last_seen > keepalive_interval t then
               Metrics.incr t.metrics "keepalive_miss";
             Metrics.incr t.metrics "keepalive_tx";
             send_mgmt_on_port t ~port:np.np_id
               (Riep.make ~opcode:Riep.M_read ~obj_class:"keepalive"
                  ~obj_name:(string_of_int t.address) ())
           end)
       t.nports);
  ignore
    (Engine.schedule ~lane:Engine.Timer t.engine ~delay:(keepalive_interval t)
       (fun () -> keepalive_tick t))

(* Periodic anti-entropy: every tick, push the full versioned LSDB and
   directory to one adjacent peer, round-robin over ports sorted by id
   (deterministic).  Flood repair is epidemic — rumor correction plus
   this sweep guarantee reconvergence even when the heal-time flood was
   itself corrupted, because versioned state always flows from the
   newer replica to the older one eventually. *)
let rec anti_entropy_tick t =
  let interval = t.policy.Policy.routing.Policy.anti_entropy_interval in
  if interval > 0. then begin
    (if t.up && t.enrolled then
       let ports =
         List.sort (fun a b -> compare a.np_id b.np_id) (adjacent_ports t)
       in
       match ports with
       | [] -> ()
       | _ :: _ ->
         let np = List.nth ports (t.ae_round mod List.length ports) in
         t.ae_round <- t.ae_round + 1;
         Metrics.incr t.metrics "anti_entropy_runs";
         trace t (Printf.sprintf "anti_entropy:port%d" np.np_id);
         sync_peer t np);
    ignore
      (Engine.schedule ~lane:Engine.Timer t.engine ~delay:interval (fun () ->
           anti_entropy_tick t))
  end

let handle_mgmt t from_port (pdu : Pdu.t) =
  match Riep.decode pdu.Pdu.payload with
  | Error _ -> Metrics.incr t.metrics "bad_mgmt"
  | Ok msg -> (
    Metrics.incr t.metrics "mgmt_rx";
    if Flight.enabled () then
      Flight.emit ~component:(flight_comp t) ~rank:t.rank
        (Flight.Custom ("riep_rx:" ^ Riep.trace_label msg));
    match (msg.Riep.opcode, msg.Riep.obj_class) with
    | Riep.M_connect, "enrollment" -> (
      match from_port with
      | Some p -> handle_connect t p msg
      | None -> ())
    | Riep.M_connect_r, "enrollment" -> (
      match from_port with
      | Some p -> handle_connect_r t p msg
      | None -> ())
    | Riep.M_write, "rib" -> handle_rib_write t from_port msg
    | Riep.M_delete, "rib" -> handle_rib_delete t from_port msg
    | Riep.M_write, "lsa" -> handle_lsa t from_port msg
    | Riep.M_delete, "lsa" -> handle_lsa_delete t from_port msg
    | Riep.M_read, "keepalive" -> (
      match from_port with
      | Some p -> handle_keepalive t p msg
      | None -> ())
    | Riep.M_read_r, "keepalive" -> (
      match from_port with
      | Some p -> handle_keepalive_r t p
      | None -> ())
    | Riep.M_read, "path-probe" -> (
      match from_port with
      | Some p -> handle_path_probe t p msg
      | None -> ())
    | Riep.M_read_r, "path-probe" -> (
      match from_port with
      | Some p -> handle_path_probe_r t p
      | None -> ())
    | Riep.M_read, "addr-alloc" -> handle_addr_alloc t msg ~from_addr:pdu.Pdu.src_addr
    | Riep.M_read_r, "addr-alloc" -> handle_addr_alloc_r t msg
    | Riep.M_create, "flow" -> handle_flow_create t msg
    | Riep.M_create_r, "flow" -> handle_flow_create_r t msg
    | Riep.M_delete, "flow" -> handle_flow_delete t msg
    | _, _ -> Metrics.incr t.metrics "mgmt_unhandled")

let handle_data t (pdu : Pdu.t) =
  match Hashtbl.find_opt t.flows pdu.Pdu.dst_cep with
  | Some fs -> Efcp.handle_pdu fs.fs_efcp pdu
  | None -> Metrics.incr t.metrics "unknown_cep"

let deliver_up t from_port (pdu : Pdu.t) =
  match pdu.Pdu.pdu_type with
  | Pdu.Hello -> (
    match from_port with
    | Some p -> handle_hello t p pdu
    | None -> ())
  | Pdu.Mgmt -> handle_mgmt t from_port pdu
  | Pdu.Dtp | Pdu.Ack -> handle_data t pdu

(* PDUs from ports whose peer is not an authenticated member are
   dropped, except the neighbour-scope traffic needed to become one.
   A crashed process receives nothing at all. *)
let ingress_allowed t port_id (pdu : Pdu.t) =
  t.up
  &&
  match pdu.Pdu.pdu_type with
  | Pdu.Hello -> true
  | Pdu.Mgmt when pdu.Pdu.dst_addr = Types.no_address -> true
  | Pdu.Mgmt | Pdu.Dtp | Pdu.Ack -> (
    match Hashtbl.find_opt t.nports port_id with
    | Some np -> np.np_peer > 0
    | None -> false)

(* ---------- periodic maintenance ---------- *)

(* Every [refresh_ticks] hello ticks (a routing policy; 0 disables),
   re-flood our own LSA (with a seq bump so it passes install filters)
   and re-publish our directory entries: anti-entropy against lost
   management PDUs. *)
let refresh_state t =
  if t.enrolled then begin
    t.own_lsa_seq <- t.own_lsa_seq + 1;
    let lsa =
      {
        Routing.Lsa.origin = t.address;
        seq = t.own_lsa_seq;
        neighbors = t.last_adjacency;
      }
    in
    ignore (Routing.install ~now:(Engine.now t.engine) t.lsdb lsa);
    flood_lsa t lsa;
    Hashtbl.iter
      (fun _ reg ->
        let path = "/dir/" ^ Types.apn_to_string reg.ar_name in
        match Rib.read t.rib path with
        | Some v -> flood_rib_write t path v
        | None -> ())
      t.apps
  end

(* LSA aging: origins that have not refreshed within [lsa_max_age] are
   presumed dead and withdrawn.  Gated on [refresh_ticks > 0] — with
   refresh off, live members never re-install and would be aged out
   too. *)
let age_lsdb t =
  let r = t.policy.Policy.routing in
  if
    t.enrolled && r.Policy.lsa_max_age > 0. && r.Policy.refresh_ticks > 0
  then
    List.iter
      (fun origin ->
        if origin <> t.address && Routing.withdraw t.lsdb origin then begin
          Metrics.incr t.metrics "lsa_aged_out";
          trace t (Printf.sprintf "lsa_aged_out:%d" origin);
          flood_lsa_delete t origin;
          schedule_recompute t
        end)
      (Routing.expired t.lsdb ~now:(Engine.now t.engine)
         ~max_age:r.Policy.lsa_max_age)

let rec hello_tick t =
  if t.up then begin
    t.hello_ticks <- t.hello_ticks + 1;
    Hashtbl.iter
      (fun _ np -> if np.np_chan.Chan.is_up () then send_hello t np)
      t.nports;
    (* Hello expiry may have silently killed adjacencies. *)
    rebuild_own_lsa t;
    (let ticks = t.policy.Policy.routing.Policy.refresh_ticks in
     if ticks > 0 && t.hello_ticks mod ticks = 0 then refresh_state t);
    age_lsdb t
  end;
  ignore
    (Engine.schedule ~lane:Engine.Timer t.engine
       ~delay:t.policy.Policy.routing.Policy.hello_interval (fun () ->
         hello_tick t))

(* ---------- construction ---------- *)

let create engine ?trace:tr ?(credentials = "") ?(qos_cubes = Qos.standard_cubes)
    ?(rank = 0) ~name ~dif ~policy () =
  let rec t =
    lazy
      {
        engine;
        trace = tr;
        name;
        dif;
        policy;
        credentials;
        qos_cubes;
        rib = Rib.create ();
        rmt =
          Rmt.create engine
            ~own_address:(fun () -> (Lazy.force t).address)
            ~scheduler:policy.Policy.scheduler
            ~congestion:policy.Policy.congestion ~label:("rmt:" ^ dif) ~rank ();
        lsdb = Routing.create ();
        metrics = Metrics.create ();
        rank;
        nports = Hashtbl.create 8;
        flows = Hashtbl.create 16;
        apps = Hashtbl.create 8;
        pending = Hashtbl.create 8;
        pending_grants = Hashtbl.create 4;
        address = Types.no_address;
        enrolled = false;
        enroll_state = E_none;
        next_cep = 1;
        next_flow_port = 1;
        next_invoke = 1;
        next_hops = Hashtbl.create 1;
        chosen_poa = Hashtbl.create 8;
        own_lsa_seq = 0;
        last_adjacency = [];
        recompute_scheduled = false;
        enrolled_hooks = [];
        hello_ticks = 0;
        ae_round = 0;
        auto_enroll = true;
        isolation_watchers = [];
        was_attached = false;
        up = true;
        rng =
          Rina_util.Prng.create
            (Hashtbl.hash (dif, Types.apn_to_string name, "ipcp-backoff"));
        ecmp_hops = Hashtbl.create 1;
        mpath =
          Multipath.create policy.Policy.multipath
            ~rng:
              (Rina_util.Prng.create
                 (Hashtbl.hash (dif, Types.apn_to_string name, "multipath")));
      }
  in
  let t = Lazy.force t in
  Rmt.set_deliver t.rmt (fun from_port pdu -> deliver_up t from_port pdu);
  Rmt.set_forwarding t.rmt (fun pdu -> forward t pdu);
  Rmt.set_drop_reason t.rmt (fun pdu -> unroutable_reason t pdu);
  Rmt.set_ingress_filter t.rmt (fun port pdu -> ingress_allowed t port pdu);
  Rmt.set_classify t.rmt (fun pdu ->
      (* Layer-management traffic always rides the top class so data
         backlogs cannot starve hellos and routing updates.  Data is
         class-differentiated only when the DIF's scheduling policy
         differentiates; under FIFO everything shares one queue. *)
      match pdu.Pdu.pdu_type with
      | Pdu.Mgmt | Pdu.Hello -> 7
      | Pdu.Dtp | Pdu.Ack -> (
        match t.policy.Policy.scheduler with
        | Policy.Fifo -> 0
        | Policy.Priority_queueing | Policy.Drr _ -> (
          match Qos.find t.qos_cubes pdu.Pdu.qos_id with
          | Some q -> min 6 q.Qos.priority
          | None -> 0)));
  ignore
    (Engine.schedule ~lane:Engine.Timer t.engine
       ~delay:t.policy.Policy.routing.Policy.hello_interval (fun () ->
         hello_tick t));
  if keepalive_interval t > 0. then
    ignore
      (Engine.schedule ~lane:Engine.Timer t.engine
         ~delay:(keepalive_interval t) (fun () -> keepalive_tick t));
  (let ae = t.policy.Policy.routing.Policy.anti_entropy_interval in
   if ae > 0. then
     ignore
       (Engine.schedule ~lane:Engine.Timer t.engine ~delay:ae (fun () ->
            anti_entropy_tick t)));
  (let mp = t.policy.Policy.multipath.Policy.probe_interval in
   if mp > 0. then
     ignore
       (Engine.schedule ~lane:Engine.Timer t.engine ~delay:mp (fun () ->
            multipath_tick t)));
  t

let bootstrap t =
  if t.enrolled then invalid_arg "Ipcp.bootstrap: already enrolled";
  t.address <- 1;
  t.enrolled <- true;
  Rib.write t.rib "/dif/next_free" (Rib.V_int 2);
  t.own_lsa_seq <- 1;
  ignore
    (Routing.install t.lsdb
       { Routing.Lsa.origin = 1; seq = 1; neighbors = [] });
  trace t "bootstrapped";
  run_enrolled_hooks t

let bind_port t ?(cost = 1.0) ?rate chan =
  let port_id = Rmt.add_port t.rmt ?rate chan in
  let np =
    {
      np_id = port_id;
      np_chan = chan;
      np_cost = cost;
      np_peer = 0;
      np_peer_name = "";
      np_last_hello = Engine.now t.engine;
      np_last_seen = Engine.now t.engine;
    }
  in
  Hashtbl.replace t.nports port_id np;
  chan.Chan.on_carrier (fun up ->
      Metrics.incr t.metrics (if up then "carrier_up" else "carrier_down");
      if up then send_hello t np;
      (* Carrier loss is an out-of-band path-death signal: no need to
         burn probe misses discovering what the link layer just said. *)
      if
        (not up) && Multipath.enabled t.mpath && np.np_peer > 0
        && Multipath.force_down t.mpath np.np_id ~now:(Engine.now t.engine)
      then note_path_transition t np (Some Multipath.To_down);
      rebuild_own_lsa t);
  if chan.Chan.is_up () then send_hello t np;
  port_id

let unbind_port t port_id =
  (match Hashtbl.find_opt t.nports port_id with
   | Some _ ->
     Hashtbl.remove t.nports port_id;
     Rmt.remove_port t.rmt port_id;
     Multipath.forget t.mpath port_id;
     rebuild_own_lsa t
   | None -> ());
  Hashtbl.iter
    (fun peer p -> if p = port_id then Hashtbl.remove t.chosen_poa peer)
    (Hashtbl.copy t.chosen_poa)

let leave t =
  if t.enrolled then begin
    (* Withdraw every published name. *)
    Hashtbl.iter
      (fun key _ ->
        let path = "/dir/" ^ key in
        if Rib.delete t.rib path then flood_rib_delete t path)
      t.apps;
    (* Close flows, notifying peers. *)
    let flows = Hashtbl.fold (fun _ fs acc -> fs :: acc) t.flows [] in
    List.iter (fun fs -> close_flow_state t fs ~notify_peer:true) flows;
    (* A final LSA with no neighbours: the two-way check then severs
       every edge to this node in everyone's SPF. *)
    t.own_lsa_seq <- t.own_lsa_seq + 1;
    let lsa =
      { Routing.Lsa.origin = t.address; seq = t.own_lsa_seq; neighbors = [] }
    in
    ignore (Routing.install ~now:(Engine.now t.engine) t.lsdb lsa);
    flood_lsa t lsa;
    t.last_adjacency <- [];
    trace t "left";
    Metrics.incr t.metrics "left_dif";
    t.enrolled <- false;
    t.auto_enroll <- false;
    t.address <- Types.no_address;
    t.enroll_state <- E_none;
    (* Ports survive physically; reset their management view so that
       hello-driven identity discovery (and a possible re-enrollment)
       restarts from scratch. *)
    Hashtbl.iter
      (fun _ np ->
        np.np_peer <- 0;
        np.np_peer_name <- "")
      t.nports;
    t.next_hops <- Hashtbl.create 1;
    t.ecmp_hops <- Hashtbl.create 1;
    Hashtbl.reset t.chosen_poa;
    Multipath.reset t.mpath
  end

let publish_app t apn =
  let path = "/dir/" ^ Types.apn_to_string apn in
  ignore (Rib.write_owned t.rib path (Rib.V_int t.address) ~origin:t.address);
  flood_rib_write t path (Rib.V_int t.address)

(* ---------- crash / restart ---------- *)

(* A crash is [leave] minus every courtesy: no withdrawal floods, no
   flow teardown messages, no final LSA.  All volatile state vanishes;
   the rest of the DIF must *detect* the death (keepalive timeout, LSA
   aging) rather than being told about it. *)
let crash t =
  if t.up then begin
    t.up <- false;
    trace t "crash";
    Metrics.incr t.metrics "crashes";
    if Flight.enabled () then
      Flight.emit ~component:(flight_comp t) ~rank:t.rank (Flight.Custom "crash");
    let flows = Hashtbl.fold (fun _ fs acc -> fs :: acc) t.flows [] in
    List.iter (fun fs -> close_flow_state t fs ~notify_peer:false) flows;
    Hashtbl.iter (fun _ pa -> Engine.cancel pa.pa_timeout) t.pending;
    Hashtbl.reset t.pending;
    Hashtbl.iter (fun _ pg -> Engine.cancel pg.pg_timeout) t.pending_grants;
    Hashtbl.reset t.pending_grants;
    Rib.clear t.rib;
    Routing.clear t.lsdb;
    t.enrolled <- false;
    t.enroll_state <- E_none;
    t.address <- Types.no_address;
    t.own_lsa_seq <- 0;
    t.last_adjacency <- [];
    t.next_hops <- Hashtbl.create 1;
    t.ecmp_hops <- Hashtbl.create 1;
    Hashtbl.reset t.chosen_poa;
    Multipath.reset t.mpath;
    Hashtbl.iter
      (fun _ np ->
        np.np_peer <- 0;
        np.np_peer_name <- "")
      t.nports;
    if t.was_attached then begin
      t.was_attached <- false;
      List.iter (fun f -> f false) t.isolation_watchers
    end
  end

let restart t =
  if not t.up then begin
    t.up <- true;
    trace t "restart";
    Metrics.incr t.metrics "restarts";
    if Flight.enabled () then
      Flight.emit ~component:(flight_comp t) ~rank:t.rank
        (Flight.Custom "restart");
    t.auto_enroll <- true;
    (* Registered applications survive the reboot (they live above the
       IPC process); republish their directory entries once
       re-enrollment lands. *)
    Hashtbl.iter
      (fun _ reg ->
        let apn = reg.ar_name in
        t.enrolled_hooks <- (fun () -> publish_app t apn) :: t.enrolled_hooks)
      t.apps;
    Hashtbl.iter
      (fun _ np ->
        np.np_last_hello <- Engine.now t.engine;
        np.np_last_seen <- Engine.now t.engine;
        if np.np_chan.Chan.is_up () then send_hello t np)
      t.nports
  end

let is_up t = t.up

(* ---------- application interface ---------- *)

let on_enrolled t f =
  if t.enrolled then f () else t.enrolled_hooks <- f :: t.enrolled_hooks

let register_app t apn ~on_flow =
  Hashtbl.replace t.apps (Types.apn_to_string apn)
    { ar_name = apn; ar_on_flow = on_flow };
  on_enrolled t (fun () -> publish_app t apn)

let unregister_app t apn =
  Hashtbl.remove t.apps (Types.apn_to_string apn);
  if t.enrolled then begin
    ignore (Rib.delete t.rib ("/dir/" ^ Types.apn_to_string apn));
    flood_rib_delete t ("/dir/" ^ Types.apn_to_string apn)
  end

let resolve_name t apn = Rib.read_int t.rib ("/dir/" ^ Types.apn_to_string apn)

let registered_apps t =
  Hashtbl.fold (fun _ reg acc -> reg.ar_name :: acc) t.apps []
  |> List.sort Types.apn_compare

let allocate_flow t ~src ~dst ~qos_id ~on_result =
  if not t.enrolled then on_result (Error "IPC process not enrolled in any DIF")
  else begin
    (* The directory may still be synchronising; retry resolution a few
       times before giving up. *)
    let attempts = ref 0 in
    let rec try_resolve () =
      match resolve_name t dst with
      | Some addr -> request addr
      | None ->
        incr attempts;
        if !attempts > 25 then begin
          Metrics.incr t.metrics "alloc_name_not_found";
          on_result (Error ("destination name not found: " ^ Types.apn_to_string dst))
        end
        else ignore (Engine.schedule t.engine ~delay:0.2 (fun () -> try_resolve ()))
    and request addr =
      let local_cep = t.next_cep in
      t.next_cep <- t.next_cep + 1;
      let port = t.next_flow_port in
      t.next_flow_port <- t.next_flow_port + 1;
      let invoke = t.next_invoke in
      t.next_invoke <- t.next_invoke + 1;
      let qos = qos_cube t qos_id in
      let req =
        {
          fr_src_app = src;
          fr_dst_app = dst;
          fr_qos_id = qos_id;
          fr_src_addr = t.address;
          fr_src_cep = local_cep;
        }
      in
      let transmit () =
        Metrics.incr t.metrics "alloc_requests";
        send_mgmt t ~dst:addr
          (Riep.make ~opcode:Riep.M_create ~obj_class:"flow" ~invoke_id:invoke
             ~obj_value:(Rib.V_bytes (encode_flow_req req)) ())
      in
      (* Management PDUs are unreliable; retransmit the request a few
         times (the destination is idempotent). *)
      let busy_attempts = ref 0 in
      let rec arm_timeout tries =
        Engine.schedule t.engine ~delay:1.2 (fun () ->
            match Hashtbl.find_opt t.pending invoke with
            | None -> ()
            | Some pa ->
              if tries <= 0 then begin
                Hashtbl.remove t.pending invoke;
                Metrics.incr t.metrics "alloc_timeout";
                pa.pa_on_result (Error "flow allocation timed out")
              end
              else begin
                Metrics.incr t.metrics "alloc_retries";
                transmit ();
                Hashtbl.replace t.pending invoke
                  { pa with pa_timeout = arm_timeout (tries - 1) }
              end)
      (* Busy rejection (result 4): the destination's admission limit
         is a transient condition, so re-request after a full-jitter
         exponential backoff drawn from this process's private
         deterministic stream — a flash crowd of requesters thereby
         spreads out instead of hammering in lockstep. *)
      and on_busy () =
        incr busy_attempts;
        Metrics.incr t.metrics "alloc_busy";
        if !busy_attempts > 100 then begin
          Metrics.incr t.metrics "alloc_failed";
          on_result (Error "flow allocation rejected: destination busy")
        end
        else begin
          let base =
            Float.max 0.01 t.policy.Policy.congestion.Policy.admission_backoff
          in
          let delay =
            Rina_util.Backoff.delay_for ~rng:t.rng ~base !busy_attempts
          in
          ignore
            (Engine.schedule t.engine ~delay (fun () ->
                 if not (Hashtbl.mem t.pending invoke) then begin
                   Hashtbl.replace t.pending invoke (make_pending ());
                   transmit ()
                 end))
        end
      and make_pending () =
        {
          pa_on_result = on_result;
          pa_local_cep = local_cep;
          pa_port = port;
          pa_qos = qos;
          pa_src_app = src;
          pa_dst_app = dst;
          pa_dst_addr = addr;
          pa_timeout = arm_timeout 6;
          pa_on_busy = on_busy;
        }
      in
      Hashtbl.replace t.pending invoke (make_pending ());
      transmit ()
    in
    try_resolve ()
  end

let chan_of_flow t (flow : flow) : Chan.t =
  let stats = Metrics.create () in
  {
    Chan.send =
      (fun frame ->
        Metrics.incr stats "tx";
        Metrics.add stats "tx_bytes" (Bytes.length frame);
        flow.send frame);
    set_receiver =
      (fun f ->
        flow.set_on_receive (fun sdu ->
            Metrics.incr stats "rx";
            Metrics.add stats "rx_bytes" (Bytes.length sdu);
            f sdu));
    is_up = (fun () -> adjacency_set t <> []);
    on_carrier = (fun f -> t.isolation_watchers <- f :: t.isolation_watchers);
    stats;
  }

(* ---------- instrumentation ---------- *)

let set_auto_enroll t b = t.auto_enroll <- b

let name t = t.name

let dif_name t = t.dif

let is_enrolled t = t.enrolled

let address t = t.address

let neighbors t =
  let by_peer : (Types.address, Types.port_id list) Hashtbl.t = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _ np ->
      if np.np_peer > 0 && nport_alive t np then
        Hashtbl.replace by_peer np.np_peer
          (np.np_id
           :: (match Hashtbl.find_opt by_peer np.np_peer with
               | Some l -> l
               | None -> [])))
    t.nports;
  Hashtbl.fold (fun peer ports acc -> (peer, List.sort compare ports) :: acc) by_peer []
  |> List.sort compare

let routing_table t =
  Hashtbl.fold (fun dst (nh, cost) acc -> (dst, nh, cost) :: acc) t.next_hops []
  |> List.sort compare

let path_health t = Multipath.debug t.mpath

let rib t = t.rib

let metrics t = t.metrics

let rmt_metrics t = Rmt.metrics t.rmt

let rmt_queue_depth t =
  List.fold_left
    (fun acc port -> acc + Rmt.queue_depth t.rmt port)
    0 (Rmt.ports t.rmt)

(* EFCP window occupancy for the flight-recorder probes: one triple per
   open flow. *)
let flow_stats t =
  Hashtbl.fold
    (fun cep fs acc ->
      (cep, Efcp.in_flight fs.fs_efcp, Efcp.backlog fs.fs_efcp) :: acc)
    t.flows []
  |> List.sort compare

let policy t = t.policy

let lsdb_size t = Routing.size t.lsdb

let debug_flows t =
  Hashtbl.fold
    (fun cep fs acc ->
      Printf.sprintf "cep=%d %s<->%s(@%d) qos=%d %s" cep
        (Types.apn_to_string fs.fs_local_app)
        (Types.apn_to_string fs.fs_remote_app)
        fs.fs_remote_addr fs.fs_qos.Qos.id
        (Efcp.debug fs.fs_efcp)
      :: acc)
    t.flows []
  |> List.sort compare
