type rtx_strategy = Selective_repeat | Go_back_n | No_rtx

type efcp = {
  window : int;
  mtu : int;
  init_rto : float;
  min_rto : float;
  max_rtx : int;
  ack_delay : float;
  rtx_strategy : rtx_strategy;
  congestion_control : bool;
  sack_blocks : int;
  reorder_window : int;
  max_dup_cache : int;
}

type scheduler = Fifo | Priority_queueing | Drr of int

type routing = {
  hello_interval : float;
  dead_interval : float;
  lsa_min_interval : float;
  refresh_ticks : int;
  keepalive_interval : float;
  dead_peer_timeout : float;
  lsa_max_age : float;
  anti_entropy_interval : float;
}

type enrollment = {
  enroll_timeout : float;
  enroll_retries : int;
  retry_backoff : float;
}

type auth = Auth_none | Auth_password of string

type acl = Allow_all | Allow_pairs of (string * string) list

type telemetry = {
  trace_sample_rate : float;  (* span keep probability, in (0, 1] *)
  snapshot_interval : float;  (* seconds between live snapshots; 0 = off *)
  flight_ring_capacity : int;  (* bound on buffered events; 0 = unbounded *)
}

type congestion = {
  mark_threshold : int;  (* queue depth that starts ECN marking; 0 = off *)
  mark_probability : float;  (* mark chance once over threshold, in [0, 1] *)
  pushback : bool;  (* propagate lower-DIF congestion to upper EFCPs *)
  admission_max_pending : int;  (* open flows before busy-reject; 0 = unlimited *)
  admission_backoff : float;  (* base of the requester's busy-retry backoff, s *)
}

type shard = {
  shards : int;  (* requested engine-shard count; 0 or 1 = sequential *)
  mailbox_capacity : int;  (* per-directed-mailbox ring bound, entries *)
}

type stripe_mode = Primary_backup | Weighted_rr

type multipath = {
  probe_interval : float;  (* per-path health probe period, s; 0 = monitor off *)
  suspect_misses : int;  (* consecutive missed probes before Up -> Suspect *)
  down_misses : int;  (* consecutive missed probes before -> Down *)
  reprobe_backoff : float;  (* full-jitter backoff base for re-probing Down, s *)
  latency : stripe_mode;  (* per-label striping over the path set *)
  throughput : stripe_mode;
  background : stripe_mode;
}

type t = {
  efcp : efcp;
  scheduler : scheduler;
  routing : routing;
  enrollment : enrollment;
  auth : auth;
  acl : acl;
  max_ttl : int;
  telemetry : telemetry;
  congestion : congestion;
  shard : shard;
  multipath : multipath;
}

let default_efcp =
  {
    window = 64;
    mtu = 1400;
    init_rto = 0.5;
    min_rto = 0.02;
    max_rtx = 12;
    ack_delay = 0.;
    rtx_strategy = Selective_repeat;
    congestion_control = true;
    sack_blocks = 0;
    reorder_window = 64;
    max_dup_cache = 0;
  }

let default_routing =
  {
    hello_interval = 1.0;
    dead_interval = 3.5;
    lsa_min_interval = 0.05;
    refresh_ticks = 5;
    keepalive_interval = 1.0;
    dead_peer_timeout = 3.5;
    lsa_max_age = 30.;
    anti_entropy_interval = 0.;
  }

let default_enrollment =
  { enroll_timeout = 2.0; enroll_retries = 4; retry_backoff = 0.5 }

let default_telemetry =
  { trace_sample_rate = 1.0; snapshot_interval = 0.; flight_ring_capacity = 0 }

let default_congestion =
  {
    mark_threshold = 0;
    mark_probability = 1.0;
    pushback = false;
    admission_max_pending = 0;
    admission_backoff = 0.2;
  }

let default_shard = { shards = 0; mailbox_capacity = 8192 }

let default_multipath =
  {
    probe_interval = 0.;
    suspect_misses = 2;
    down_misses = 4;
    reprobe_backoff = 0.5;
    latency = Primary_backup;
    throughput = Weighted_rr;
    background = Weighted_rr;
  }

let default =
  {
    efcp = default_efcp;
    scheduler = Fifo;
    routing = default_routing;
    enrollment = default_enrollment;
    auth = Auth_none;
    acl = Allow_all;
    max_ttl = 32;
    telemetry = default_telemetry;
    congestion = default_congestion;
    shard = default_shard;
    multipath = default_multipath;
  }

let efcp_for_qos t (qos : Qos.t) =
  if qos.Qos.reliable then t.efcp else { t.efcp with rtx_strategy = No_rtx }

let pp_scheduler fmt = function
  | Fifo -> Format.pp_print_string fmt "fifo"
  | Priority_queueing -> Format.pp_print_string fmt "priority"
  | Drr quantum -> Format.fprintf fmt "drr(%d)" quantum

let pp_rtx fmt = function
  | Selective_repeat -> Format.pp_print_string fmt "selective"
  | Go_back_n -> Format.pp_print_string fmt "gbn"
  | No_rtx -> Format.pp_print_string fmt "none"

let pp fmt t =
  Format.fprintf fmt
    "efcp{w=%d mtu=%d rto0=%g rtx=%a ackd=%g} sched=%a hello=%g auth=%s"
    t.efcp.window t.efcp.mtu t.efcp.init_rto pp_rtx t.efcp.rtx_strategy
    t.efcp.ack_delay pp_scheduler t.scheduler t.routing.hello_interval
    (match t.auth with Auth_none -> "none" | Auth_password _ -> "password")
