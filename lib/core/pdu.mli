(** Protocol data unit of an IPC layer.

    One PDU format serves the whole DIF: data transfer ([Dtp]), EFCP
    acknowledgement/flow-control ([Ack]), layer management ([Mgmt],
    carrying an encoded RIEP message) and neighbour-scope identity
    announcements ([Hello]).  PDUs are serialised to bytes whenever
    they cross an (N-1) boundary, so lower layers see opaque frames. *)

type pdu_type =
  | Dtp    (** user data, sequenced by EFCP *)
  | Ack    (** cumulative acknowledgement + credit window *)
  | Mgmt   (** RIEP message for the IPC management task *)
  | Hello  (** neighbour-scope: sender identity for the receiving port *)

type t = {
  pdu_type : pdu_type;
  dst_addr : Types.address;  (** 0 = neighbour scope (this hop only) *)
  src_addr : Types.address;
  dst_cep : Types.cep_id;
  src_cep : Types.cep_id;
  qos_id : Types.qos_id;
  seq : int;      (** DTP sequence number *)
  ack : int;      (** ACK: next expected sequence number *)
  window : int;   (** ACK: receive credit in PDUs *)
  ttl : int;
  flags : int;
  payload : bytes;
}

val flag_drf : int
(** Data-run flag: first PDU of a connection's data run. *)

val flag_fin : int
(** Final PDU of a flow. *)

val flag_ecn : int
(** Congestion-experienced mark: set by an RMT whose queue is over the
    DIF's [mark_threshold] (or by push-back from a congested lower
    flow); the receiving EFCP echoes it on acks so the sender backs
    off without a loss. *)

val has_flag : t -> int -> bool

val make :
  pdu_type:pdu_type ->
  dst_addr:Types.address ->
  src_addr:Types.address ->
  ?dst_cep:Types.cep_id ->
  ?src_cep:Types.cep_id ->
  ?qos_id:Types.qos_id ->
  ?seq:int ->
  ?ack:int ->
  ?window:int ->
  ?ttl:int ->
  ?flags:int ->
  bytes ->
  t
(** Build a PDU; defaults: ceps 0, qos 0, seq/ack/window 0, ttl 32,
    flags 0. *)

val encode : t -> bytes
(** Wire form, including a version byte. *)

val encode_frame : t -> bytes
(** Wire form with the {!Sdu_protection} trailer already appended, in
    a single allocation — what a sending EFCP hands to the RMT, valid
    to put on an (N-1) channel as-is. *)

val decode : bytes -> (t, string) result
(** Parse a wire frame; [Error] describes the first malformation. *)

val decode_sub : bytes -> len:int -> (t, string) result
(** Like {!decode} but parses only the first [len] bytes of the
    buffer, so a protected frame can be decoded in place without
    copying the body out of it first. *)

val decode_header : bytes -> len:int -> (t, string) result
(** Like {!decode_sub} but leaves [payload = Bytes.empty] instead of
    copying it — sufficient for relay decisions, which read header
    fields only. *)

val header_size : int
(** Bytes of overhead [encode] adds on top of the payload. *)

val encoded_size : t -> int
(** [header_size + Bytes.length payload]. *)

val ttl_offset : int
(** Byte offset of the TTL field in the wire form — a relay decrements
    it in place in a copied frame rather than re-encoding the PDU. *)

val flags_offset : int
(** Byte offset of the flags field, for in-place marking. *)

(** Read individual header fields straight out of an encoded frame
    (which must have passed [Sdu_protection.verify_len]). *)
module Peek : sig
  val dst_addr : bytes -> int

  val dst_cep : bytes -> int

  val seq : bytes -> int

  val flags : bytes -> int

  val is_dtp : bytes -> bool

  val span : bytes -> int
  (** Flight-recorder trace id, equal to {!span} of the decoded PDU. *)
end

val frame_has_ecn : bytes -> bool
(** Whether an encoded frame already carries {!flag_ecn}. *)

val mark_ecn_frame : bytes -> unit
(** Set {!flag_ecn} in an encoded, protected frame in place and reseal
    the {!Sdu_protection} trailer (no-op if already marked). *)

val pp : Format.formatter -> t -> unit

val flow_key : t -> int
(** Flight-recorder flow key: destination address and CEP packed into
    one int, identical at the sender, every decoding relay and the
    receiver. *)

val span : t -> int
(** Flight-recorder trace id for a [Dtp] PDU
    ([Rina_util.Flight.span_of] over {!flow_key} and [seq]); 0 for
    other PDU types. *)
