(** Resource Information Base.

    Every IPC process keeps one: a tree of named objects populated and
    queried by the management task (directory entries, link-state
    advertisements, QoS cubes, address-allocation state...).  Object
    names are slash-separated paths such as ["/dif/dir/appname"].
    Watchers fire on create/write/delete, which is how the routing and
    directory tasks react to RIEP updates without coupling to them. *)

type value =
  | V_str of string
  | V_int of int
  | V_float of float
  | V_bool of bool
  | V_bytes of bytes

type event = Created | Updated | Deleted

type t

val create : unit -> t

val write : t -> string -> value -> unit
(** Create or overwrite the object at a path. *)

val read : t -> string -> value option

val read_int : t -> string -> int option
(** [read] that also checks the value is a [V_int]. *)

val read_str : t -> string -> string option

val delete : t -> string -> bool
(** [true] if the object existed. *)

val exists : t -> string -> bool

val children : t -> string -> string list
(** [children t "/dif/dir"] lists full paths one level below the
    prefix, sorted. *)

val subscribe : t -> prefix:string -> (event -> string -> value option -> unit) -> unit
(** Watch every object at or below [prefix]; the callback receives the
    event kind, the full path and the new value ([None] on delete). *)

val clear : t -> unit
(** Drop every object without firing watchers — the state loss of an
    IPCP crash.  Subscriptions survive (they are re-populated by
    re-enrollment). *)

val size : t -> int
(** Number of objects stored. *)

val dump : t -> (string * value) list
(** Every object, sorted by path. *)

val encode_value : Rina_util.Codec.Writer.t -> value -> unit
val decode_value : Rina_util.Codec.Reader.t -> value

val value_equal : value -> value -> bool
val pp_value : Format.formatter -> value -> unit
