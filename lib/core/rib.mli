(** Resource Information Base.

    Every IPC process keeps one: a tree of named objects populated and
    queried by the management task (directory entries, link-state
    advertisements, QoS cubes, address-allocation state...).  Object
    names are slash-separated paths such as ["/dif/dir/appname"].
    Watchers fire on create/write/delete, which is how the routing and
    directory tasks react to RIEP updates without coupling to them. *)

type value =
  | V_str of string
  | V_int of int
  | V_float of float
  | V_bool of bool
  | V_bytes of bytes

type event = Created | Updated | Deleted

type t

val create : unit -> t

val write : t -> string -> value -> unit
(** Create or overwrite the object at a path (unversioned: leaves any
    version entry for the path untouched). *)

(** {2 Versioned writes}

    Versioned objects carry an (origin address, version) pair so
    replicas can reject stale or duplicate RIEP updates.  Ordering is
    origin-first lexicographic — a higher origin address dominates,
    then a higher version — because a crashed owner re-enrolls with a
    fresh, strictly higher address, so its version-1 re-publication
    still beats whatever its old incarnation flooded. *)

val version_of : t -> string -> (int * int) option
(** The (origin, version) pair of a versioned object, if any. *)

val version_newer : int * int -> int * int -> bool
(** [version_newer a b] is [true] when [a] dominates [b]. *)

type remote_result =
  | Accepted of { value_changed : bool }
      (** installed; [value_changed] says whether the stored value
          actually differed (re-flood only when it did) *)
  | Duplicate  (** exactly the version we already hold *)
  | Stale  (** dominated by what we already hold *)

val write_owned : t -> string -> value -> origin:int -> int * int
(** Local authoritative write: bumps the path's version (starting at 1)
    under the given origin and returns the new (origin, version) to
    stamp on the flood. *)

val accept_remote :
  t -> string -> value -> origin:int -> ver:int -> remote_result
(** Apply a versioned update received from a peer: installs it iff it
    dominates the current version (watchers fire only when the value
    changed). *)

val read : t -> string -> value option

val read_int : t -> string -> int option
(** [read] that also checks the value is a [V_int]. *)

val read_str : t -> string -> string option

val delete : t -> string -> bool
(** [true] if the object existed. *)

val exists : t -> string -> bool

val children : t -> string -> string list
(** [children t "/dif/dir"] lists full paths one level below the
    prefix, sorted. *)

val subscribe : t -> prefix:string -> (event -> string -> value option -> unit) -> unit
(** Watch every object at or below [prefix]; the callback receives the
    event kind, the full path and the new value ([None] on delete). *)

val clear : t -> unit
(** Drop every object without firing watchers — the state loss of an
    IPCP crash.  Subscriptions survive (they are re-populated by
    re-enrollment). *)

val size : t -> int
(** Number of objects stored. *)

val dump : t -> (string * value) list
(** Every object, sorted by path. *)

val encode_value : Rina_util.Codec.Writer.t -> value -> unit
val decode_value : Rina_util.Codec.Reader.t -> value

val value_equal : value -> value -> bool
val pp_value : Format.formatter -> value -> unit
