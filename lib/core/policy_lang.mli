(** Declarative policy specifications.

    Section 8 of the paper proposes that users specify IPC policies
    declaratively ("no more protocols to design, only policies to
    specify").  This module is that interface: an INI-style text form
    compiled onto {!Policy.t}, so experiments C4 can swap transport
    behaviour — stop-and-wait, go-back-N, selective repeat, delayed
    acks, schedulers — without touching any mechanism code.

    Grammar (line oriented; [#] starts a comment):
    {v
    [efcp]
    window = 64          # positive int
    mtu = 1400
    init_rto = 0.5       # seconds
    min_rto = 0.02
    max_rtx = 8
    ack_delay = 0.0
    rtx = selective      # selective | gbn | none
    [scheduler]
    kind = drr           # fifo | priority | drr
    quantum = 1500       # drr only
    [routing]
    hello_interval = 1.0
    dead_interval = 3.5
    lsa_min_interval = 0.05
    [auth]
    kind = password      # none | password
    secret = hunter2
    [dif]
    max_ttl = 32
    v} *)

val parse : ?base:Policy.t -> string -> (Policy.t, string) result
(** Apply a spec on top of [base] (default {!Policy.default}).  Errors
    carry the offending line number and token.  Setting the same key
    twice in a section is an error (it used to silently
    last-write-win); the message names both lines.  For structured,
    non-fail-fast diagnostics over a spec, see [Rina_check.Lint]. *)

val to_string : Policy.t -> string
(** Render a policy back into parsable spec text (round-trips through
    {!parse}). *)
