(** Per-port path health monitoring and deterministic multipath
    striping.

    Each lower-flow attachment (an RMT port) gets a health state
    driven by keepalive probes: [Up] carries traffic, [Suspect] (after
    {!Policy.multipath.suspect_misses} consecutive unanswered probes)
    carries traffic only when no Up path remains, [Down] (after
    [down_misses]) carries nothing and is re-probed on a full-jitter
    exponential backoff.  The module is pure state — the IPC process
    owns the probe timer and the RIEP exchanges — so replays are
    byte-identical. *)

type state = Up | Suspect | Down

(** Striping label, derived from the flow's QoS cube. *)
type label = Latency | Throughput | Background

(** State transition reported by {!tick}/{!reply}: [To_up prev]
    carries the state recovered from. *)
type transition = To_up of state | To_suspect | To_down

type t

(** [create cfg ~rng] — [rng] must be a dedicated stream; jitter draws
    happen in sorted-port order. *)
val create : Policy.multipath -> rng:Rina_util.Prng.t -> t

(** Monitor armed?  [probe_interval = 0] disables the whole layer
    (legacy single-path forwarding). *)
val enabled : t -> bool

val state_of : t -> Types.port_id -> state

(** Drop all state for a detached port. *)
val forget : t -> Types.port_id -> unit

(** Drop all state (IPCP crash / leave). *)
val reset : t -> unit

(** One probe period elapsed on this port.  Counts the previous
    probe's miss (possibly demoting the path), then says whether to
    send a fresh probe now.  Down paths return [`Wait] between
    backed-off re-probes. *)
val tick :
  t -> Types.port_id -> now:float -> [ `Probe | `Wait ] * transition option

(** Probe reply arrived: clears misses, revives the path. *)
val reply : t -> Types.port_id -> transition option

(** Out-of-band death (carrier loss).  [true] iff this transitioned
    the path to Down — the caller runs failover exactly once. *)
val force_down : t -> Types.port_id -> now:float -> bool

val label_of_qos : Qos.t -> label
val label_index : label -> int
val mode_for : t -> label -> Policy.stripe_mode

(** [select t ~dst ~mode ~rr_key ~candidates] picks the egress port
    for one PDU.  [candidates] are [(port, cost)] pairs sorted by port
    id, pre-filtered to live attachments toward an equal-cost next
    hop.  Down paths are excluded; Suspect paths used only when no Up
    candidate remains.  [None] means every candidate is Down.
    [rr_key] partitions the round-robin cursor per traffic label. *)
val select :
  t ->
  dst:Types.address ->
  mode:Policy.stripe_mode ->
  rr_key:int ->
  candidates:(Types.port_id * float) list ->
  Types.port_id option

(** Sorted human-readable per-port state lines (for [rina_stats]). *)
val debug : t -> string list
