(** Policy sets: the tunable half of the mechanism/policy split.

    Every DIF instantiates the same mechanisms (EFCP, RMT, routing,
    enrollment) but with policies appropriate to its scope — the
    paper's central structural idea.  A [t] bundles the defaults a DIF
    hands to its IPC processes; per-flow values may further derive from
    the requested QoS cube. *)

(** How the EFCP sender reacts to loss. *)
type rtx_strategy =
  | Selective_repeat  (** receiver buffers out-of-order, sender retransmits gaps *)
  | Go_back_n         (** receiver discards out-of-order PDUs *)
  | No_rtx            (** sequencing only; losses are not repaired *)

type efcp = {
  window : int;        (** max outstanding PDUs (also receiver buffer) *)
  mtu : int;           (** max user bytes per PDU *)
  init_rto : float;    (** retransmission timeout before an RTT sample *)
  min_rto : float;
  max_rtx : int;       (** retries before declaring the flow broken *)
  ack_delay : float;   (** 0 = ack immediately; else aggregate for this long *)
  rtx_strategy : rtx_strategy;
  congestion_control : bool;
      (** AIMD window adaptation (slow start / additive increase,
          multiplicative decrease) on top of the credit window *)
  sack_blocks : int;
      (** max selective-ack ranges advertised per Ack PDU; 0 disables
          SACK (cumulative acks only, the pre-adversarial behaviour) *)
  reorder_window : int;
      (** receiver out-of-order buffer bound in PDUs; arrivals beyond it
          are dropped ([R_reorder_overflow]) and recovered by
          retransmission *)
  max_dup_cache : int;
      (** duplicate-suppression cache entries for unreliable unordered
          flows (reliable and in-order flows are already exactly-once by
          sequence state); 0 disables the cache *)
}

type scheduler =
  | Fifo
  | Priority_queueing  (** strict priority by QoS-cube priority *)
  | Drr of int         (** deficit round robin with the given quantum (bytes) *)

type routing = {
  hello_interval : float;  (** neighbour liveness probe period, s *)
  dead_interval : float;   (** missed-hello window before adjacency loss *)
  lsa_min_interval : float;  (** flood damping: min gap between own LSAs *)
  refresh_ticks : int;
      (** re-flood own LSA + directory every this many hello ticks
          (anti-entropy against lost management PDUs); 0 disables *)
  keepalive_interval : float;
      (** RIEP keepalive probe period per adjacency, s; 0 disables
          keepalives (dead peers are then only caught by missed
          hellos) *)
  dead_peer_timeout : float;
      (** silence window (no hello, no keepalive reply) after which an
          enrolled peer is declared dead: its adjacency is torn down
          and its LSA withdrawn from the whole DIF *)
  lsa_max_age : float;
      (** age out LSAs not refreshed for this long (s); 0 disables
          aging.  Only meaningful when [refresh_ticks > 0], otherwise
          live members would be aged out too. *)
  anti_entropy_interval : float;
      (** period (s) of the round-robin anti-entropy sweep: each tick
          pushes the full versioned LSDB + directory to one adjacent
          peer, repairing divergence that survived the flood (e.g. a
          heal-flood that was itself corrupted); 0 disables *)
}

type enrollment = {
  enroll_timeout : float;  (** per-attempt M_connect response timeout, s *)
  enroll_retries : int;
      (** extra attempts after the first before giving up until the
          next hello; 0 means single-shot *)
  retry_backoff : float;
      (** base delay for exponential backoff between attempts, s *)
}

type auth =
  | Auth_none
  | Auth_password of string  (** shared secret checked at enrollment *)

(** Flow-allocation access control. *)
type acl =
  | Allow_all
  | Allow_pairs of (string * string) list
      (** permitted (source app name, destination app name) pairs *)

(** Observability policy: how much the flight recorder keeps and how
    often live stats surface.  Consumed by [Rina_exp.Obs]. *)
type telemetry = {
  trace_sample_rate : float;
      (** deterministic head-sampling keep probability for spans, in
          (0, 1]; 1.0 traces everything (lint L117 rejects other
          values outside the interval) *)
  snapshot_interval : float;
      (** seconds between live telemetry snapshots; rides the engine
          timer wheel, so values below one wheel slot are pointless
          (lint L118); 0 disables snapshots *)
  flight_ring_capacity : int;
      (** bound on buffered trace events — once full the newest events
          overwrite the oldest (exactly counted); 0 = unbounded *)
}

(** Aggregate congestion policy: how the DIF as a whole reacts to
    overload — the §6 argument that congestion is managed *inside* the
    layer that allocated the resource, not guessed at end to end. *)
type congestion = {
  mark_threshold : int;
      (** RMT class-queue depth at which ECN-style marking starts; 0
          disables marking (and [R_congestion] accounting) entirely *)
  mark_probability : float;
      (** probability a Dtp PDU is marked once its queue is at or over
          [mark_threshold], in \[0, 1\] (lint L119 rejects other
          values); drawn from a deterministic per-RMT stream so runs
          replay byte-identically *)
  pushback : bool;
      (** when a lower-DIF flow is itself congestion-backing-off, set
          the ECN flag on upper-DIF frames transiting it so the
          (N)-EFCP's end-to-end response fires too — congestion
          propagates layer by layer instead of being absorbed *)
  admission_max_pending : int;
      (** flow-allocator admission bound: a destination IPC process
          with this many flows open answers M_create with "busy"
          instead of accepting; 0 = unlimited *)
  admission_backoff : float;
      (** base delay (s) of the requester's full-jitter exponential
          retry after a busy rejection ({!Rina_util.Backoff}) *)
}

(** Parallel-execution policy: how a trial of this configuration may
    be spatially decomposed over engine shards.  Consumed by the
    sharded engine driver ([Rina_sim.Sharded] via [Rina_exp]); the
    partition itself must pass [rina_verify]'s V4xx analyses, and lint
    rule L121 rejects a spec that asks for shards a topology gives no
    positive lookahead for. *)
type shard = {
  shards : int;
      (** requested engine-shard count; 0 or 1 = sequential (the
          default) *)
  mailbox_capacity : int;
      (** bound (entries) on each directed cross-shard mailbox ring;
          must cover one lookahead window's worth of cross-shard
          frames or producers stall *)
}

(** How one traffic label is spread over a flow's path set. *)
type stripe_mode =
  | Primary_backup
      (** all PDUs ride the healthiest cheapest path; others carry
          traffic only after it degrades — minimises reordering, so it
          suits latency-labelled traffic *)
  | Weighted_rr
      (** deterministic weighted round-robin over every non-Down path,
          weights inverse to path cost — maximises aggregate goodput at
          the price of cross-path reordering (absorbed by EFCP's
          reorder window) *)

(** Path-resilience policy: the per-path health monitor and the
    label-driven striping discipline an IPC process applies to the
    several (N-1) flows it may hold toward the same next hop (the
    second step of Fig. 4 forwarding).  With [probe_interval = 0] (the
    default) the monitor is off and PoA choice keeps the legacy sticky
    single-path behaviour. *)
type multipath = {
  probe_interval : float;
      (** per-path keepalive probe period, s; 0 disables the monitor
          (and with it striping + fast failover) *)
  suspect_misses : int;
      (** consecutive missed probe replies before Up degrades to
          Suspect (path avoided while any Up path remains) *)
  down_misses : int;
      (** consecutive missed probe replies before the path is Down:
          excluded from striping, outstanding PDUs re-striped onto
          survivors; must be at least [suspect_misses] (lint L122) *)
  reprobe_backoff : float;
      (** base (s) of the full-jitter exponential backoff
          ({!Rina_util.Backoff}) between re-probes of a Down path *)
  latency : stripe_mode;  (** striping for latency-labelled flows *)
  throughput : stripe_mode;  (** striping for throughput-labelled flows *)
  background : stripe_mode;  (** striping for background-labelled flows *)
}

type t = {
  efcp : efcp;
  scheduler : scheduler;
  routing : routing;
  enrollment : enrollment;
  auth : auth;
  acl : acl;
  max_ttl : int;  (** initial TTL stamped on PDUs entering the DIF *)
  telemetry : telemetry;
  congestion : congestion;
  shard : shard;
  multipath : multipath;
}

val default_efcp : efcp
val default_routing : routing
val default_enrollment : enrollment
val default_telemetry : telemetry
(** Keep everything, no snapshots, unbounded buffer — the zero-surprise
    debugging default; scale runs opt into sampling via policy. *)

val default_congestion : congestion
(** Everything off: no marking ([mark_threshold = 0]), no pushback,
    unlimited admission — overload behaviour is opt-in per DIF. *)

val default_shard : shard
(** Sequential ([shards = 0]) with an 8192-entry mailbox bound —
    parallel decomposition is opt-in per configuration. *)

val default_multipath : multipath
(** Monitor off ([probe_interval = 0]): legacy sticky single-PoA
    forwarding.  When armed, Suspect after 2 misses, Down after 4,
    0.5 s re-probe backoff base; latency traffic primary-backup,
    throughput and background weighted round-robin. *)

val default : t
(** Selective-repeat EFCP (window 64, mtu 1400), FIFO scheduling, 1 s
    hellos, no authentication, allow-all ACL. *)

val efcp_for_qos : t -> Qos.t -> efcp
(** Derive the per-flow EFCP config: unreliable cubes get [No_rtx]. *)

val pp_scheduler : Format.formatter -> scheduler -> unit
val pp : Format.formatter -> t -> unit
