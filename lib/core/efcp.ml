type unacked = {
  payload : bytes;
  mutable sent_at : float;
  mutable retries : int;
  mutable sacked : bool;
      (* selectively acknowledged: held by the receiver's reorder
         buffer, so retransmitting it would only waste the channel *)
  mutable path : int;
      (* egress port the last copy rode (0 = unknown): lets failover
         re-stripe exactly the PDUs stranded on a dead path *)
}

type t = {
  engine : Rina_sim.Engine.t;
  config : Policy.efcp;
  in_order : bool;
  local_cep : Types.cep_id;
  remote_cep : Types.cep_id;
  qos_id : Types.qos_id;
  rank : int;  (* DIF rank, for flight-recorder events *)
  tx_span_key : int;  (* flow key of PDUs we send (remote end) *)
  rx_span_key : int;  (* flow key of PDUs we receive (this end) *)
  send_pdu : Pdu.t -> int;
      (* returns the egress port id the PDU was striped onto, 0 when
         the caller does not track paths *)
  deliver : bytes -> unit;
  on_error : string -> unit;
  metrics : Rina_util.Metrics.t;
  (* --- sender --- *)
  mutable next_seq : int;        (* next sequence number to assign *)
  mutable snd_una : int;         (* lowest unacknowledged sequence *)
  mutable send_limit : int;      (* may send seq < send_limit (peer credit) *)
  retx : (int, unacked) Hashtbl.t;
  backlog : bytes Queue.t;
  mutable rto : float;
  mutable srtt : float;
  mutable rttvar : float;
  mutable have_rtt : bool;
  mutable rto_timer : Rina_sim.Engine.handle option;
  mutable dup_acks : int;
  mutable last_ack_seen : int;
  mutable cwnd : float;     (* AIMD congestion window, in PDUs *)
  mutable ssthresh : float;
  mutable recover_until : int;  (* NewReno: one fast rtx per window *)
  (* --- ECN congestion response (distinct from loss recovery) --- *)
  ecn_frac : Rina_util.Ewma.t;
      (* DCTCP-style smoothed fraction of acks carrying the congestion
         echo; scales how hard each back-off cuts the window *)
  mutable ecn_reduce_until : int;
      (* one window reduction per round trip of data, mirroring
         [recover_until] — without touching it, so an ECN back-off
         never masks or resets a concurrent loss-recovery episode *)
  mutable pace : Rina_util.Token_bucket.t option;
      (* departure pacer installed while the path is marking: drains
         sends at roughly cwnd/srtt so a reopened window does not slam
         the congested queue with a burst *)
  mutable pace_timer : Rina_sim.Engine.handle option;
  (* --- receiver --- *)
  mutable rcv_next : int;
  ooo : (int, bytes) Hashtbl.t;
  mutable highest_delivered : int;  (* for unreliable in-order flows *)
  mutable ack_timer : Rina_sim.Engine.handle option;
  mutable ecn_pending : bool;  (* echo the congestion mark on the next ack *)
  (* duplicate-suppression cache for unreliable unordered flows: a ring
     of the last [max_dup_cache] delivered seqs (0 = empty slot) with a
     hashtable for O(1) membership.  Reliable / in-order flows are
     already exactly-once via rcv_next / highest_delivered. *)
  dup_cache : (int, unit) Hashtbl.t;
  dup_ring : int array;
  mutable dup_ring_pos : int;
  (* sanitizer shadow state for the exactly-once invariants; only
     populated while [Rina_util.Invariant.enabled] *)
  san_delivered : (int, unit) Hashtbl.t;
  mutable san_last_seq : int;
  mutable closed : bool;
  mutable errored : bool;
}

let create engine ~config ~in_order ~local_cep ~remote_cep ~qos_id ?span_keys
    ?(rank = 0) ~send_pdu ~deliver ~on_error () =
  let tx_span_key, rx_span_key =
    match span_keys with Some keys -> keys | None -> (remote_cep, local_cep)
  in
  {
    engine;
    config;
    in_order;
    local_cep;
    remote_cep;
    qos_id;
    rank;
    tx_span_key;
    rx_span_key;
    send_pdu;
    deliver;
    on_error;
    metrics = Rina_util.Metrics.create ();
    next_seq = 1;
    snd_una = 1;
    send_limit = 1 + config.Policy.window;
    retx = Hashtbl.create 64;
    backlog = Queue.create ();
    rto = config.Policy.init_rto;
    srtt = 0.;
    rttvar = 0.;
    have_rtt = false;
    rto_timer = None;
    dup_acks = 0;
    last_ack_seen = 0;
    cwnd = 2.;
    ssthresh = float_of_int config.Policy.window;
    recover_until = 0;
    ecn_frac = Rina_util.Ewma.create ~alpha:0.0625;
    ecn_reduce_until = 0;
    pace = None;
    pace_timer = None;
    rcv_next = 1;
    ooo = Hashtbl.create 64;
    highest_delivered = 0;
    ack_timer = None;
    ecn_pending = false;
    dup_cache = Hashtbl.create (max 1 (min 64 config.Policy.max_dup_cache));
    dup_ring = Array.make (max 1 config.Policy.max_dup_cache) 0;
    dup_ring_pos = 0;
    san_delivered = Hashtbl.create 16;
    san_last_seq = 0;
    closed = false;
    errored = false;
  }

let metrics t = t.metrics

(* Flight-recorder emissions; each helper fetches the domain's
   recorder once and guards inside, so a data-path event costs a single
   domain-local lookup and the disabled path allocates nothing. *)
module Flight = Rina_util.Flight

let[@inline] flight_tx t seq size kind =
  let r = Flight.cur () in
  if Flight.on r then
    Flight.emit_to r ~component:"efcp" ~flow:t.local_cep ~rank:t.rank ~seq
      ~size
      ~span:(Flight.span_of ~flow:t.tx_span_key ~seq)
      kind

let[@inline] flight_rx t seq size kind =
  let r = Flight.cur () in
  if Flight.on r then
    Flight.emit_to r ~component:"efcp" ~flow:t.local_cep ~rank:t.rank ~seq
      ~size
      ~span:(Flight.span_of ~flow:t.rx_span_key ~seq)
      kind

let in_flight t = t.next_seq - t.snd_una

let backlog t = Queue.length t.backlog

let srtt t = if t.have_rtt then Some t.srtt else None

let reliable t =
  match t.config.Policy.rtx_strategy with
  | Policy.Selective_repeat | Policy.Go_back_n -> true
  | Policy.No_rtx -> false

let max_rto = 8.0

let cancel_timer handle_ref =
  match handle_ref with Some h -> Rina_sim.Engine.cancel h | None -> ()

let fail t reason =
  if not t.errored then begin
    t.errored <- true;
    Rina_util.Metrics.incr t.metrics "flow_errors";
    t.on_error reason
  end

let dtp_pdu t seq payload =
  let flags = if seq = 1 then Pdu.flag_drf else 0 in
  Pdu.make ~pdu_type:Pdu.Dtp ~dst_addr:Types.no_address ~src_addr:Types.no_address
    ~dst_cep:t.remote_cep ~src_cep:t.local_cep ~qos_id:t.qos_id ~seq ~flags payload

(* Forward declaration pattern for the timer/transmit recursion. *)
let rec arm_rto_timer t =
  cancel_timer t.rto_timer;
  t.rto_timer <- None;
  if reliable t && in_flight t > 0 && not t.closed then begin
    (let r = Flight.cur () in
     if Flight.on r then
       Flight.emit_to r ~component:"efcp" ~flow:t.local_cep ~rank:t.rank
         Flight.Timer_set);
    t.rto_timer <-
      Some
        (Rina_sim.Engine.schedule ~lane:Rina_sim.Engine.Timer t.engine
           ~delay:t.rto (fun () -> on_rto t))
  end

and on_rto t =
  if t.closed || t.errored then ()
  else begin
    Rina_util.Metrics.incr t.metrics "rto_fired";
    (let r = Flight.cur () in
     if Flight.on r then
       Flight.emit_to r ~component:"efcp" ~flow:t.local_cep ~rank:t.rank
         Flight.Timer_fired);
    t.rto <- Float.min max_rto (2. *. t.rto);
    if t.config.Policy.congestion_control then begin
      t.ssthresh <- Float.max 2. (t.cwnd /. 2.);
      t.cwnd <- 2.
    end;
    (match t.config.Policy.rtx_strategy with
     | Policy.Selective_repeat ->
       (* Everything outstanding is suspect: enter recovery so each
          partial ack repairs the next hole immediately instead of
          waiting out a full RTO per lost PDU. *)
       t.recover_until <- t.next_seq;
       retransmit_seq t t.snd_una
     | Policy.Go_back_n ->
       (* Resend the whole outstanding window, lowest first. *)
       for seq = t.snd_una to t.next_seq - 1 do
         retransmit_seq t seq
       done
     | Policy.No_rtx -> ());
    arm_rto_timer t
  end

and retransmit_seq t seq =
  match Hashtbl.find_opt t.retx seq with
  | None -> ()
  | Some u ->
    if u.retries >= t.config.Policy.max_rtx then
      fail t (Printf.sprintf "seq %d exceeded %d retransmissions" seq u.retries)
    else begin
      u.retries <- u.retries + 1;
      u.sent_at <- Rina_sim.Engine.now t.engine;
      Rina_util.Metrics.incr t.metrics "pdus_rtx";
      flight_tx t seq (Bytes.length u.payload) Flight.Retransmit;
      u.path <- t.send_pdu (dtp_pdu t seq u.payload)
    end

let transmit t payload =
  let seq = t.next_seq in
  t.next_seq <- t.next_seq + 1;
  if reliable t then
    Hashtbl.replace t.retx seq
      { payload; sent_at = Rina_sim.Engine.now t.engine; retries = 0;
        sacked = false; path = 0 };
  Rina_util.Metrics.incr t.metrics "pdus_sent";
  flight_tx t seq (Bytes.length payload) Flight.Pdu_sent;
  let path = t.send_pdu (dtp_pdu t seq payload) in
  (match Hashtbl.find_opt t.retx seq with
  | Some u -> u.path <- path
  | None -> ());
  if t.rto_timer = None then arm_rto_timer t

(* Unreliable flows carry no acknowledgements, so credit never refills;
   they are simply not flow-controlled. *)
let effective_window t =
  let w = t.config.Policy.window in
  if t.config.Policy.congestion_control then
    min w (max 1 (int_of_float t.cwnd))
  else w

let window_open t =
  (not (reliable t))
  || (t.next_seq < t.send_limit && in_flight t < effective_window t)

(* Departure pacing while the path is marking: [pace_ok] consumes one
   send credit (so call it only when the caller will transmit on
   [true]); on [false] it arms a wake-up for the moment the bucket
   refills, which keeps the backlog draining even with no acks in
   flight to clock it. *)
let rec pace_ok t =
  match t.pace with
  | None -> true
  | Some b ->
    let now = Rina_sim.Engine.now t.engine in
    if Rina_util.Token_bucket.try_take b ~now 1. then true
    else begin
      arm_pace_timer t b now;
      false
    end

and arm_pace_timer t b now =
  if t.pace_timer = None && not t.closed then
    t.pace_timer <-
      Some
        (Rina_sim.Engine.schedule ~lane:Rina_sim.Engine.Timer t.engine
           ~delay:(Float.max 1e-4 (Rina_util.Token_bucket.delay_until b ~now 1.))
           (fun () ->
             t.pace_timer <- None;
             if not (t.closed || t.errored) then drain_backlog t))

and drain_backlog t =
  let continue = ref true in
  while !continue do
    if Queue.is_empty t.backlog || t.errored || not (window_open t) then
      continue := false
    else if pace_ok t then transmit t (Queue.pop t.backlog)
    else continue := false
  done

let send t payload =
  if t.closed || t.errored then ()
  else if Queue.is_empty t.backlog && window_open t && pace_ok t then
    transmit t payload
  else begin
    Queue.push payload t.backlog;
    let hwm = Rina_util.Metrics.get t.metrics "backlog_hwm" in
    if Queue.length t.backlog > hwm then
      Rina_util.Metrics.add t.metrics "backlog_hwm"
        (Queue.length t.backlog - hwm)
  end

(* --- receiver side --- *)

let recv_credit t =
  let used = Hashtbl.length t.ooo in
  max 1 (t.config.Policy.window - used)

(* Selective-ack blocks: the reorder buffer's contents, coalesced into
   at most [sack_blocks] [start, stop) ranges (lowest first — those are
   the holes the sender should repair soonest) and carried in the Ack
   PDU's otherwise-empty payload.  With [sack_blocks = 0] the payload
   stays empty, which is the pre-adversarial wire format. *)
let sack_payload t =
  if t.config.Policy.sack_blocks = 0 || Hashtbl.length t.ooo = 0 then
    Bytes.empty
  else begin
    let seqs = Hashtbl.fold (fun seq _ acc -> seq :: acc) t.ooo [] in
    let seqs = List.sort compare seqs in
    let blocks =
      List.fold_left
        (fun acc seq ->
          match acc with
          | (start, stop) :: rest when seq = stop -> (start, stop + 1) :: rest
          | _ -> (seq, seq + 1) :: acc)
        [] seqs
    in
    let blocks = List.rev blocks in
    let blocks =
      List.filteri (fun i _ -> i < t.config.Policy.sack_blocks) blocks
    in
    let module W = Rina_util.Codec.Writer in
    let w = W.create () in
    W.u8 w (List.length blocks);
    List.iter
      (fun (start, stop) ->
        W.u32 w start;
        W.u32 w stop)
      blocks;
    W.contents w
  end

let send_ack_now t =
  cancel_timer t.ack_timer;
  t.ack_timer <- None;
  Rina_util.Metrics.incr t.metrics "acks_sent";
  (* Echo a received congestion mark exactly once: the sender's
     smoothed mark fraction then measures marked *acks*, the same
     quantity the marking queue produced. *)
  let flags = if t.ecn_pending then Pdu.flag_ecn else 0 in
  t.ecn_pending <- false;
  ignore
    (t.send_pdu
       (Pdu.make ~pdu_type:Pdu.Ack ~dst_addr:Types.no_address
          ~src_addr:Types.no_address ~dst_cep:t.remote_cep ~src_cep:t.local_cep
          ~qos_id:t.qos_id ~ack:t.rcv_next ~window:(recv_credit t) ~flags
          (sack_payload t))
      : int)

let schedule_ack t =
  if t.config.Policy.ack_delay <= 0. then send_ack_now t
  else
    match t.ack_timer with
    | Some _ -> ()
    | None ->
      t.ack_timer <-
        Some
          (Rina_sim.Engine.schedule ~lane:Rina_sim.Engine.Timer t.engine
             ~delay:t.config.Policy.ack_delay
             (fun () ->
               t.ack_timer <- None;
               if not t.closed then send_ack_now t))

(* Sanitizer: the exactly-once-delivery contract, checked at every
   point an SDU crosses into the application.  A seq handed up twice is
   SAN_dup_delivery; a seq handed up below an earlier one on an ordered
   flow is SAN_seq_regression.  Shadow state is only maintained while
   the sanitizer is enabled, so the production path pays one load and a
   branch. *)
let[@inline] san_delivery t seq =
  if Rina_util.Invariant.enabled () then begin
    if Hashtbl.mem t.san_delivered seq then
      Rina_util.Invariant.record ~code:"SAN_dup_delivery"
        (Printf.sprintf "cep %d: SDU seq %d delivered twice" t.local_cep seq)
    else Hashtbl.replace t.san_delivered seq ();
    if (reliable t || t.in_order) && seq < t.san_last_seq then
      Rina_util.Invariant.record ~code:"SAN_seq_regression"
        (Printf.sprintf "cep %d: SDU seq %d delivered after seq %d" t.local_cep
           seq t.san_last_seq);
    if seq > t.san_last_seq then t.san_last_seq <- seq
  end

let deliver_in_sequence t =
  let continue = ref true in
  while !continue do
    match Hashtbl.find_opt t.ooo t.rcv_next with
    | Some payload ->
      let seq = t.rcv_next in
      Hashtbl.remove t.ooo seq;
      t.rcv_next <- t.rcv_next + 1;
      Rina_util.Metrics.incr t.metrics "delivered";
      flight_rx t seq (Bytes.length payload) Flight.Pdu_recvd;
      san_delivery t seq;
      t.deliver payload
    | None -> continue := false
  done

(* Duplicate suppression for unreliable unordered flows: remember the
   last [max_dup_cache] delivered seqs in a ring + membership table.
   Returns [true] when [seq] was already delivered. *)
let dup_cache_hit t seq =
  t.config.Policy.max_dup_cache > 0
  &&
  if Hashtbl.mem t.dup_cache seq then true
  else begin
    let evicted = t.dup_ring.(t.dup_ring_pos) in
    if evicted <> 0 then Hashtbl.remove t.dup_cache evicted;
    t.dup_ring.(t.dup_ring_pos) <- seq;
    t.dup_ring_pos <- (t.dup_ring_pos + 1) mod Array.length t.dup_ring;
    Hashtbl.replace t.dup_cache seq ();
    false
  end

let handle_dtp t (pdu : Pdu.t) =
  if Pdu.has_flag pdu Pdu.flag_ecn then begin
    Rina_util.Metrics.incr t.metrics "ecn_rcvd";
    t.ecn_pending <- true
  end;
  if reliable t then begin
    if pdu.Pdu.seq < t.rcv_next || Hashtbl.mem t.ooo pdu.Pdu.seq then begin
      Rina_util.Metrics.incr t.metrics "dup_rcvd";
      flight_rx t pdu.Pdu.seq
        (Bytes.length pdu.Pdu.payload)
        (Flight.Pdu_dropped Flight.R_dup)
    end
    else if pdu.Pdu.seq = t.rcv_next then begin
      t.rcv_next <- t.rcv_next + 1;
      Rina_util.Metrics.incr t.metrics "delivered";
      flight_rx t pdu.Pdu.seq (Bytes.length pdu.Pdu.payload) Flight.Pdu_recvd;
      san_delivery t pdu.Pdu.seq;
      t.deliver pdu.Pdu.payload;
      deliver_in_sequence t
    end
    else begin
      (* Out of order. *)
      match t.config.Policy.rtx_strategy with
      | Policy.Selective_repeat ->
        if Hashtbl.length t.ooo < t.config.Policy.reorder_window then begin
          Hashtbl.replace t.ooo pdu.Pdu.seq pdu.Pdu.payload;
          Rina_util.Metrics.incr t.metrics "ooo_buffered"
        end
        else begin
          (* Reorder buffer full: shed the arrival; retransmission will
             repair it once the buffer drains. *)
          Rina_util.Metrics.incr t.metrics "ooo_overflow";
          flight_rx t pdu.Pdu.seq
            (Bytes.length pdu.Pdu.payload)
            (Flight.Pdu_dropped Flight.R_reorder_overflow)
        end
      | Policy.Go_back_n | Policy.No_rtx ->
        Rina_util.Metrics.incr t.metrics "gbn_discards";
        flight_rx t pdu.Pdu.seq
          (Bytes.length pdu.Pdu.payload)
          (Flight.Pdu_dropped (Flight.R_other "gbn_discard"))
    end;
    (* Out-of-order arrivals trigger an immediate (duplicate) ack so the
       sender's fast-retransmit logic can fire. *)
    if pdu.Pdu.seq <> t.rcv_next - 1 then send_ack_now t else schedule_ack t
  end
  else begin
    (* Unreliable: deliver subject only to the ordering constraint. *)
    if t.in_order && pdu.Pdu.seq <= t.highest_delivered then begin
      Rina_util.Metrics.incr t.metrics "stale_dropped";
      flight_rx t pdu.Pdu.seq
        (Bytes.length pdu.Pdu.payload)
        (Flight.Pdu_dropped Flight.R_stale)
    end
    else if (not t.in_order) && dup_cache_hit t pdu.Pdu.seq then begin
      (* A duplicated channel replays the same datagram; the cache is
         the only dedup an unordered unreliable flow has. *)
      Rina_util.Metrics.incr t.metrics "dup_suppressed";
      flight_rx t pdu.Pdu.seq
        (Bytes.length pdu.Pdu.payload)
        (Flight.Pdu_dropped Flight.R_dup)
    end
    else begin
      t.highest_delivered <- max t.highest_delivered pdu.Pdu.seq;
      Rina_util.Metrics.incr t.metrics "delivered";
      flight_rx t pdu.Pdu.seq (Bytes.length pdu.Pdu.payload) Flight.Pdu_recvd;
      san_delivery t pdu.Pdu.seq;
      t.deliver pdu.Pdu.payload
    end
  end

let rtt_sample t sample =
  if t.have_rtt then begin
    (* Jacobson/Karels. *)
    let err = sample -. t.srtt in
    t.srtt <- t.srtt +. (0.125 *. err);
    t.rttvar <- t.rttvar +. (0.25 *. (Float.abs err -. t.rttvar))
  end
  else begin
    t.srtt <- sample;
    t.rttvar <- sample /. 2.;
    t.have_rtt <- true
  end;
  t.rto <-
    Float.min max_rto
      (Float.max t.config.Policy.min_rto (t.srtt +. (4. *. t.rttvar)))

(* Decode the Ack payload's sack blocks (if any) and mark the covered
   retransmission entries: the receiver already holds them, so neither
   fast retransmit nor a Go-Back-N sweep should resend them.  Sack
   information is monotone truth (the reorder buffer only empties by
   delivering), so marks from stale acks are still correct. *)
let apply_sack t (pdu : Pdu.t) =
  let payload = pdu.Pdu.payload in
  if t.config.Policy.sack_blocks > 0 && Bytes.length payload > 0 then begin
    let module R = Rina_util.Codec.Reader in
    match
      (let r = R.create payload in
       let n = R.u8 r in
       let blocks = List.init n (fun _ ->
           let start = R.u32 r in
           let stop = R.u32 r in
           (start, stop))
       in
       R.expect_end r;
       blocks)
    with
    | blocks ->
      let highest = ref 0 in
      List.iter
        (fun (start, stop) ->
          if stop > !highest then highest := stop;
          for seq = start to stop - 1 do
            match Hashtbl.find_opt t.retx seq with
            | Some u -> u.sacked <- true
            | None -> ()
          done)
        blocks;
      !highest
    | exception R.Decode_error _ ->
      Rina_util.Metrics.incr t.metrics "sack_decode_errors";
      0
  end
  else 0

(* Repair every unsacked hole below the highest sacked seq, oldest
   first — the sack-driven generalisation of retransmit-snd_una. *)
let retransmit_holes t highest_sacked =
  for seq = t.snd_una to highest_sacked - 1 do
    match Hashtbl.find_opt t.retx seq with
    | Some u when not u.sacked -> retransmit_seq t seq
    | Some _ | None -> ()
  done

let handle_ack t (pdu : Pdu.t) =
  Rina_util.Metrics.incr t.metrics "acks_rcvd";
  let ack = pdu.Pdu.ack in
  (* ECN congestion response, before cumulative-ack processing so the
     reduced window governs how far this very ack reopens the gate.
     Deliberately separate from loss recovery: it neither retransmits
     nor touches [recover_until]/[dup_acks], and it cuts the window in
     proportion to the smoothed mark fraction (DCTCP-style) instead of
     halving — marks are an early signal, not evidence of loss. *)
  let marked = Pdu.has_flag pdu Pdu.flag_ecn in
  if marked then Rina_util.Metrics.incr t.metrics "ecn_echoes";
  if t.config.Policy.congestion_control && reliable t then begin
    Rina_util.Ewma.add t.ecn_frac (if marked then 1. else 0.);
    if marked && ack >= t.ecn_reduce_until then begin
      (* at most one reduction per window of data, like NewReno's
         recovery point, so a train of marked acks from one congested
         round trip costs one cut, not cwnd cuts *)
      Rina_util.Metrics.incr t.metrics "ecn_backoffs";
      let frac = Float.min 1. (Float.max 0. (Rina_util.Ewma.value t.ecn_frac)) in
      t.cwnd <- Float.max 2. (t.cwnd *. (1. -. (frac /. 2.)));
      t.ssthresh <- Float.max 2. t.cwnd;
      t.ecn_reduce_until <- t.next_seq;
      if t.have_rtt && t.srtt > 0. then
        t.pace <-
          Some
            (Rina_util.Token_bucket.create
               ~rate:(Float.max 1. (t.cwnd /. t.srtt))
               ~burst:2.)
    end
    else if
      (not marked) && t.pace <> None
      && Rina_util.Ewma.value t.ecn_frac < 0.05
    then begin
      (* the path stopped marking a while ago: stop pacing and return
         to pure window clocking *)
      t.pace <- None;
      cancel_timer t.pace_timer;
      t.pace_timer <- None
    end
  end;
  let highest_sacked = apply_sack t pdu in
  if ack > t.snd_una then begin
    t.dup_acks <- 0;
    let newly_acked = ack - t.snd_una in
    (* RTT sample from the newest PDU this ack covers — but only on a
       single-step in-order advance, and never from a retransmitted
       PDU (Karn).  An ack that jumps a repaired gap would credit the
       whole repair stall to the path RTT. *)
    (if ack = t.last_ack_seen + 1 then
       match Hashtbl.find_opt t.retx (ack - 1) with
       | Some u when u.retries = 0 ->
         rtt_sample t (Rina_sim.Engine.now t.engine -. u.sent_at)
       | Some _ | None -> ());
    for seq = t.snd_una to ack - 1 do
      Hashtbl.remove t.retx seq
    done;
    t.snd_una <- ack;
    if t.config.Policy.congestion_control then begin
      (* Slow start below ssthresh, additive increase above. *)
      let per_ack =
        if t.cwnd < t.ssthresh then 1.0 else 1.0 /. Float.max 1. t.cwnd
      in
      t.cwnd <-
        Float.min
          (float_of_int t.config.Policy.window)
          (t.cwnd +. (per_ack *. float_of_int newly_acked))
    end;
    (* Progress: shed any RTO backoff so one loss burst does not tax
       the rest of the transfer.  Capped like the backoff path — a
       lower layer repairing its own outage can feed this flow a
       multi-second RTT sample, and an uncapped estimate would leave
       the next real loss undetected for tens of seconds. *)
    if t.have_rtt then
      t.rto <-
        Float.min max_rto
          (Float.max t.config.Policy.min_rto (t.srtt +. (4. *. t.rttvar)))
    else t.rto <- t.config.Policy.init_rto;
    (* NewReno partial ack: still inside a recovery episode, so the
       ack's predecessor was repaired but the next hole is already
       known lost — retransmit it now rather than after another RTO. *)
    if
      ack < t.recover_until
      && in_flight t > 0
      && t.config.Policy.rtx_strategy = Policy.Selective_repeat
    then retransmit_seq t t.snd_una;
    arm_rto_timer t
  end
  else if ack = t.last_ack_seen && in_flight t > 0 then begin
    t.dup_acks <- t.dup_acks + 1;
    (* One fast retransmit per window of data (NewReno's recovery
       point), or duplicate acks from a burst loss retransmit the same
       PDU over and over and spuriously exhaust its retry budget. *)
    if
      t.dup_acks >= 3
      && t.config.Policy.rtx_strategy = Policy.Selective_repeat
      && ack >= t.recover_until
    then begin
      Rina_util.Metrics.incr t.metrics "fast_rtx";
      if t.config.Policy.congestion_control then begin
        t.ssthresh <- Float.max 2. (t.cwnd /. 2.);
        t.cwnd <- t.ssthresh
      end;
      t.recover_until <- t.next_seq;
      if highest_sacked > t.snd_una then retransmit_holes t highest_sacked
      else retransmit_seq t t.snd_una;
      t.dup_acks <- 0
    end
  end;
  t.last_ack_seen <- max t.last_ack_seen ack;
  t.send_limit <- max t.send_limit (ack + pdu.Pdu.window);
  drain_backlog t

(* Sanitizer hook: the connection-state invariants that hold after any
   PDU has been processed.  [snd_una] may never pass [next_seq], the
   outstanding window may never exceed the credit window, and the
   receiver may never buffer more out-of-order PDUs than it advertised
   space for. *)
let check_invariants t =
  if t.snd_una > t.next_seq then
    Rina_util.Invariant.record ~code:"SAN_EFCP_SEQ"
      (Printf.sprintf "cep %d: snd_una %d ahead of next_seq %d" t.local_cep
         t.snd_una t.next_seq);
  if reliable t && in_flight t > t.config.Policy.window then
    Rina_util.Invariant.record ~code:"SAN_EFCP_WINDOW"
      (Printf.sprintf "cep %d: %d PDUs in flight exceeds window %d" t.local_cep
         (in_flight t) t.config.Policy.window);
  if Hashtbl.length t.ooo > t.config.Policy.reorder_window then
    Rina_util.Invariant.record ~code:"SAN_EFCP_RCVBUF"
      (Printf.sprintf
         "cep %d: %d PDUs buffered out-of-order exceeds reorder_window %d"
         t.local_cep (Hashtbl.length t.ooo) t.config.Policy.reorder_window)

let handle_pdu t (pdu : Pdu.t) =
  if t.closed then ()
  else begin
    (match pdu.Pdu.pdu_type with
     | Pdu.Dtp -> handle_dtp t pdu
     | Pdu.Ack -> handle_ack t pdu
     | Pdu.Mgmt | Pdu.Hello -> Rina_util.Metrics.incr t.metrics "foreign_pdus");
    if Rina_util.Invariant.enabled () then check_invariants t
  end

(* Fast failover: [dead_path] just went Down, so every outstanding
   PDU whose last copy rode it is stranded until its RTO fires.
   Re-send them immediately (lowest seq first, so the receiver's
   reorder window sees the least skew) — forwarding already excludes
   the dead path, so the copies stripe onto survivors.  Deliberately
   leaves cwnd alone: a path failure is not a congestion signal, and
   halving the window would punish the surviving paths for the dead
   one's crime.  Returns how many PDUs were re-pathed. *)
let repath t ~dead_path =
  if t.closed || t.errored || (not (reliable t)) || dead_path = 0 then 0
  else begin
    let stranded =
      Hashtbl.fold
        (fun seq u acc ->
          if u.path = dead_path && not u.sacked then seq :: acc else acc)
        t.retx []
      |> List.sort compare
    in
    List.iter
      (fun seq ->
        Rina_util.Metrics.incr t.metrics "pdus_repath";
        retransmit_seq t seq)
      stranded;
    List.length stranded
  end

(* Congestion signal for layer push-back: this flow is either in an
   active ECN back-off episode (pacing installed / marks still fresh in
   the smoothed fraction) or its backlog has outgrown a full window —
   pressure an upper DIF should propagate rather than absorb. *)
let congested t =
  t.pace <> None
  || (Rina_util.Ewma.initialized t.ecn_frac
      && Rina_util.Ewma.value t.ecn_frac >= 0.05)
  || Queue.length t.backlog > t.config.Policy.window

let debug t =
  Printf.sprintf
    "next_seq=%d snd_una=%d limit=%d inflight=%d backlog=%d cwnd=%.1f rto=%.3f \
     timer=%b rcv_next=%d ooo=%d closed=%b errored=%b"
    t.next_seq t.snd_una t.send_limit (in_flight t) (Queue.length t.backlog)
    t.cwnd t.rto
    (t.rto_timer <> None)
    t.rcv_next (Hashtbl.length t.ooo) t.closed t.errored

let close t =
  if not t.closed then begin
    t.closed <- true;
    cancel_timer t.rto_timer;
    cancel_timer t.ack_timer;
    cancel_timer t.pace_timer;
    t.rto_timer <- None;
    t.ack_timer <- None;
    t.pace_timer <- None;
    Hashtbl.reset t.retx;
    Hashtbl.reset t.ooo;
    Hashtbl.reset t.dup_cache;
    Hashtbl.reset t.san_delivered;
    Queue.clear t.backlog
  end
