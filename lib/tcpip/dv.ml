module W = Rina_util.Codec.Writer
module R = Rina_util.Codec.Reader
module Metrics = Rina_util.Metrics

let infinity_metric = 16

type t = {
  node : Node.t;
  period : float;
  metrics : Metrics.t;
}

let encode_table entries =
  let w = W.create () in
  W.u16 w (List.length entries);
  List.iter
    (fun ((p : Ip.prefix), metric) ->
      W.u32 w p.Ip.network;
      W.u8 w p.Ip.length;
      W.u8 w metric)
    entries;
  W.contents w

let decode_table data =
  try
    let r = R.create data in
    let n = R.u16 r in
    let entries =
      List.init n (fun _ ->
          let network = R.u32 r in
          let length = R.u8 r in
          let metric = R.u8 r in
          (Ip.prefix network length, metric))
    in
    R.expect_end r;
    Ok entries
  with R.Decode_error msg -> Error msg

(* Advertise the full table on one interface, applying split horizon:
   routes learned from a neighbour are not advertised back out the
   interface that reaches it. *)
let advertise t if_id =
  match Node.iface_addr t.node if_id with
  | None -> ()
  | Some my_addr ->
    let entries =
      List.filter_map
        (fun (prefix, (r : Node.route)) ->
          if r.Node.rt_if = if_id && r.Node.rt_learned_from <> None then None
          else Some (prefix, min infinity_metric r.Node.rt_metric))
        (Node.routes t.node)
    in
    Metrics.incr t.metrics "adv_sent";
    Node.send_on_iface t.node if_id
      (Packet.make ~src:my_addr ~dst:Node.broadcast_addr ~proto:Packet.P_rip ~ttl:1
         (encode_table entries))

let advertise_all t = List.iter (advertise t) (Node.iface_ids t.node)

let expire_routes t =
  let now = Rina_sim.Engine.now (Node.engine t.node) in
  let stale =
    List.filter
      (fun ((_ : Ip.prefix), (r : Node.route)) -> r.Node.rt_expires < now)
      (Node.routes t.node)
  in
  List.iter
    (fun (prefix, _) ->
      ignore (Node.remove_route t.node prefix);
      Metrics.incr t.metrics "routes_expired")
    stale;
  stale <> []

let handle_update t pkt ~in_if =
  match decode_table pkt.Packet.payload with
  | Error _ -> Metrics.incr t.metrics "bad_update"
  | Ok entries ->
    let now = Rina_sim.Engine.now (Node.engine t.node) in
    let changed = ref false in
    List.iter
      (fun (prefix, metric) ->
        let candidate = min infinity_metric (metric + 1) in
        let current = List.assoc_opt prefix (Node.routes t.node) in
        match current with
        | Some r when r.Node.rt_learned_from = Some pkt.Packet.src ->
          (* Update from the current next hop: always believe it. *)
          if candidate >= infinity_metric then begin
            ignore (Node.remove_route t.node prefix);
            changed := true
          end
          else begin
            if r.Node.rt_metric <> candidate then changed := true;
            Node.install_route t.node prefix
              {
                r with
                Node.rt_metric = candidate;
                rt_expires = now +. (3.5 *. t.period);
              }
          end
        | Some r when r.Node.rt_learned_from = None -> ignore r (* static/connected wins *)
        | Some r when candidate < r.Node.rt_metric ->
          Node.install_route t.node prefix
            {
              Node.rt_if = in_if;
              rt_next_hop = Some pkt.Packet.src;
              rt_metric = candidate;
              rt_learned_from = Some pkt.Packet.src;
              rt_expires = now +. (3.5 *. t.period);
            };
          Metrics.incr t.metrics "routes_learned";
          changed := true
        | Some _ -> ()
        | None ->
          if candidate < infinity_metric then begin
            Node.install_route t.node prefix
              {
                Node.rt_if = in_if;
                rt_next_hop = Some pkt.Packet.src;
                rt_metric = candidate;
                rt_learned_from = Some pkt.Packet.src;
                rt_expires = now +. (3.5 *. t.period);
              };
            Metrics.incr t.metrics "routes_learned";
            changed := true
          end)
      entries;
    (* Triggered update on change speeds convergence. *)
    if !changed then advertise_all t

let start node ?(period = 5.0) () =
  let t = { node; period; metrics = Metrics.create () } in
  Node.set_proto_handler node Packet.P_rip (fun pkt ~in_if ->
      handle_update t pkt ~in_if);
  Node.on_iface_change node (fun if_id up ->
      if up then advertise_all t
      else begin
        (* Carrier loss invalidates every route using the interface;
           triggered updates propagate the withdrawal. *)
        let dead =
          List.filter
            (fun ((_ : Ip.prefix), (r : Node.route)) ->
              r.Node.rt_if = if_id && r.Node.rt_learned_from <> None)
            (Node.routes t.node)
        in
        List.iter (fun (prefix, _) -> ignore (Node.remove_route t.node prefix)) dead;
        if dead <> [] then advertise_all t
      end);
  let rec tick () =
    ignore (expire_routes t);
    advertise_all t;
    ignore
      (Rina_sim.Engine.schedule ~lane:Rina_sim.Engine.Timer (Node.engine node)
         ~delay:period tick)
  in
  ignore (Rina_sim.Engine.schedule (Node.engine node) ~delay:0.01 tick);
  t

let advertisements_sent t = Metrics.get t.metrics "adv_sent"

let routes_learned t = Metrics.get t.metrics "routes_learned"

let converged_size t = Node.table_size t.node
