module Chan = Rina_sim.Chan
module Metrics = Rina_util.Metrics

let broadcast_addr = 0xFFFFFFFF

type route = {
  rt_if : int;
  rt_next_hop : Ip.addr option;
  rt_metric : int;
  rt_learned_from : Ip.addr option;
  mutable rt_expires : float;
}

type iface = {
  if_id : int;
  chan : Chan.t;
  mutable if_addr : Ip.addr;
  mutable if_prefix : Ip.prefix;
}

type t = {
  engine : Rina_sim.Engine.t;
  name : string;
  forwarding : bool;
  ifaces : (int, iface) Hashtbl.t;
  mutable next_if : int;
  table : route Lpm.t;
  handlers : (int, Packet.t -> in_if:int -> unit) Hashtbl.t;  (* keyed by proto code *)
  mutable forward_hook : (Packet.t -> in_if:int -> Packet.t option) option;
  mutable iface_watchers : (int -> bool -> unit) list;
  metrics : Metrics.t;
}

let create engine ?(forwarding = false) name =
  {
    engine;
    name;
    forwarding;
    ifaces = Hashtbl.create 4;
    next_if = 1;
    table = Lpm.create ();
    handlers = Hashtbl.create 4;
    forward_hook = None;
    iface_watchers = [];
    metrics = Metrics.create ();
  }

let engine t = t.engine

let node_name t = t.name

let proto_key p = Packet.(match p with P_udp -> 17 | P_tcp -> 6 | P_rip -> 520 | P_tunnel -> 4)

let set_proto_handler t proto f = Hashtbl.replace t.handlers (proto_key proto) f

let set_forward_hook t f = t.forward_hook <- Some f

let on_iface_change t f = t.iface_watchers <- f :: t.iface_watchers

let local_addrs t =
  Hashtbl.fold (fun _ i acc -> i.if_addr :: acc) t.ifaces [] |> List.sort compare

let is_local t addr =
  addr = broadcast_addr || Hashtbl.fold (fun _ i acc -> acc || i.if_addr = addr) t.ifaces false

let iface_addr t if_id =
  Option.map (fun i -> i.if_addr) (Hashtbl.find_opt t.ifaces if_id)

let iface_ids t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.ifaces [] |> List.sort compare

let iface_up t if_id =
  match Hashtbl.find_opt t.ifaces if_id with
  | Some i -> i.chan.Chan.is_up ()
  | None -> false

let install_route t prefix route = Lpm.insert t.table prefix route

let remove_route t prefix = Lpm.remove t.table prefix

let add_static_route t prefix ?next_hop ~if_id () =
  install_route t prefix
    {
      rt_if = if_id;
      rt_next_hop = next_hop;
      rt_metric = 1;
      rt_learned_from = None;
      rt_expires = infinity;
    }

let routes t = Lpm.entries t.table

let table_size t = Lpm.size t.table

(* Flight-recorder emissions for the baseline stack mirror the RINA
   side: component "ip:<node>", flow = destination address, size =
   payload bytes.  The helper fetches the domain's recorder once and
   guards inside, so a packet event costs a single domain-local lookup
   and the disabled path allocates nothing. *)
module Flight = Rina_util.Flight

let[@inline] flight_pkt t (pkt : Packet.t) kind =
  let r = Flight.cur () in
  if Flight.on r then
    Flight.emit_to r ~component:("ip:" ^ t.name) ~flow:pkt.Packet.dst
      ~size:(Bytes.length pkt.Packet.payload) kind

let deliver t pkt ~in_if =
  Metrics.incr t.metrics "delivered";
  flight_pkt t pkt Flight.Pdu_recvd;
  match Hashtbl.find_opt t.handlers (proto_key pkt.Packet.proto) with
  | Some f -> f pkt ~in_if
  | None -> Metrics.incr t.metrics "no_handler"

let transmit t if_id pkt =
  match Hashtbl.find_opt t.ifaces if_id with
  | None -> Metrics.incr t.metrics "no_route"
  | Some i ->
    Metrics.incr t.metrics "ip_tx";
    flight_pkt t pkt Flight.Pdu_sent;
    i.chan.Chan.send (Packet.encode pkt)

let send_on_iface = transmit

let route_and_send t pkt =
  match Lpm.lookup t.table pkt.Packet.dst with
  | None ->
    flight_pkt t pkt (Flight.Pdu_dropped Flight.R_no_route);
    Metrics.incr t.metrics "no_route"
  | Some r ->
    if r.rt_metric >= 16 then begin
      flight_pkt t pkt (Flight.Pdu_dropped Flight.R_no_route);
      Metrics.incr t.metrics "no_route"
    end
    else transmit t r.rt_if pkt

let send_ip t pkt = route_and_send t pkt

let forward t pkt ~in_if =
  if pkt.Packet.ttl <= 1 then begin
    flight_pkt t pkt (Flight.Pdu_dropped Flight.R_ttl_expired);
    Metrics.incr t.metrics "ttl_expired"
  end
  else begin
    let pkt = { pkt with Packet.ttl = pkt.Packet.ttl - 1 } in
    let pkt =
      match t.forward_hook with
      | Some hook -> hook pkt ~in_if
      | None -> Some pkt
    in
    match pkt with
    | None -> ()
    | Some pkt ->
      Metrics.incr t.metrics "forwarded";
      route_and_send t pkt
  end

let on_frame t if_id frame =
  match Packet.decode frame with
  | Error _ ->
    (let r = Flight.cur () in
     if Flight.on r then
       Flight.emit_to r ~component:("ip:" ^ t.name) ~size:(Bytes.length frame)
         (Flight.Pdu_dropped Flight.R_decode));
    Metrics.incr t.metrics "decode_dropped"
  | Ok pkt ->
    Metrics.incr t.metrics "ip_rx";
    (* A home agent's forward hook may also want packets addressed to
       local subnets; plain nodes just deliver or forward. *)
    if is_local t pkt.Packet.dst then deliver t pkt ~in_if:if_id
    else if t.forwarding then forward t pkt ~in_if:if_id
    else Metrics.incr t.metrics "not_for_us"

let add_iface t chan ~addr ~prefix =
  let if_id = t.next_if in
  t.next_if <- t.next_if + 1;
  let iface = { if_id; chan; if_addr = addr; if_prefix = prefix } in
  Hashtbl.replace t.ifaces if_id iface;
  chan.Chan.set_receiver (fun frame -> on_frame t if_id frame);
  chan.Chan.on_carrier (fun up -> List.iter (fun f -> f if_id up) t.iface_watchers);
  add_static_route t prefix ~if_id ();
  if_id

let set_iface_addr t if_id ~addr ~prefix =
  match Hashtbl.find_opt t.ifaces if_id with
  | None -> invalid_arg "Node.set_iface_addr: unknown interface"
  | Some iface ->
    ignore (remove_route t iface.if_prefix);
    iface.if_addr <- addr;
    iface.if_prefix <- prefix;
    add_static_route t prefix ~if_id ()

let inject t pkt ~in_if = deliver t pkt ~in_if

let metrics t = t.metrics
