(** IPv4-style addressing for the baseline stack.

    Addresses name *interfaces* (points of attachment), which is
    exactly the incomplete-naming defect (Saltzer) the paper pins the
    Internet's multihoming and mobility troubles on; the experiments
    exploit this faithfully. *)

type addr = int
(** 32-bit address, stored in an int. *)

val addr_of_string : string -> addr
(** Parse dotted quad. @raise Invalid_argument on malformed input. *)

val string_of_addr : addr -> string

val addr_of_octets : int -> int -> int -> int -> addr

type prefix = { network : addr; length : int }
(** CIDR prefix; host bits of [network] must be zero. *)

val prefix : addr -> int -> prefix
(** Build a prefix, masking host bits.  @raise Invalid_argument if the
    length is outside \[0,32\]. *)

val prefix_of_string : string -> prefix
(** Parse ["10.1.0.0/16"]. *)

val matches : prefix -> addr -> bool

val pp_addr : Format.formatter -> addr -> unit
val pp_prefix : Format.formatter -> prefix -> unit

val flow_key : src:addr -> dst:addr -> sport:int -> dport:int -> int
(** Direction-independent flight-recorder flow key: hashing the
    canonically ordered (address, port) pairs gives the same key at
    both ends of a conversation, so per-PDU spans derived from it join
    across the path.  Always non-zero. *)
