type addr = int

let addr_of_octets a b c d =
  if a < 0 || a > 255 || b < 0 || b > 255 || c < 0 || c > 255 || d < 0 || d > 255
  then invalid_arg "Ip.addr_of_octets: octet out of range";
  (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let addr_of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
    match
      (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c, int_of_string_opt d)
    with
    | Some a, Some b, Some c, Some d -> addr_of_octets a b c d
    | _ -> invalid_arg ("Ip.addr_of_string: " ^ s))
  | _ -> invalid_arg ("Ip.addr_of_string: " ^ s)

let string_of_addr a =
  Printf.sprintf "%d.%d.%d.%d" ((a lsr 24) land 0xFF) ((a lsr 16) land 0xFF)
    ((a lsr 8) land 0xFF) (a land 0xFF)

type prefix = { network : addr; length : int }

let mask_of_length length =
  if length = 0 then 0 else 0xFFFFFFFF lsl (32 - length) land 0xFFFFFFFF

let prefix network length =
  if length < 0 || length > 32 then invalid_arg "Ip.prefix: bad length";
  { network = network land mask_of_length length; length }

let prefix_of_string s =
  match String.index_opt s '/' with
  | None -> invalid_arg ("Ip.prefix_of_string: missing /: " ^ s)
  | Some i ->
    let addr = addr_of_string (String.sub s 0 i) in
    let len =
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some n -> n
      | None -> invalid_arg ("Ip.prefix_of_string: " ^ s)
    in
    prefix addr len

let matches p a = a land mask_of_length p.length = p.network

let pp_addr fmt a = Format.pp_print_string fmt (string_of_addr a)

let pp_prefix fmt p =
  Format.fprintf fmt "%s/%d" (string_of_addr p.network) p.length

(* Direction-independent flow key for the flight recorder: both ends of
   a TCP/UDP conversation hash the same (addr, port) pairs regardless of
   which side sends, so spans computed from it join across the path. *)
let flow_key ~src ~dst ~sport ~dport =
  let lo_a, lo_p, hi_a, hi_p =
    if (src, sport) <= (dst, dport) then (src, sport, dst, dport)
    else (dst, dport, src, sport)
  in
  let mix acc x = ((acc lxor x) * 0x9E3779B1) land 0x3FFFFFFFFFFFFF in
  let k = mix (mix (mix (mix 0x2545F491 lo_a) lo_p) hi_a) hi_p in
  if k = 0 then 1 else k
