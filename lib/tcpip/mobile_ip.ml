module W = Rina_util.Codec.Writer
module R = Rina_util.Codec.Reader
module Metrics = Rina_util.Metrics
module Flight = Rina_util.Flight

let registration_port = 434

type home_agent = {
  ha_node : Node.t;
  ha_udp : Udp.t;
  ha_local : Ip.addr;
  ha_bindings : (Ip.addr, Ip.addr) Hashtbl.t;  (* home addr -> care-of *)
  ha_metrics : Metrics.t;
}

(* Registration: 'R' home care_of register?; ack: 'A' home care_of. *)
let encode_reg ~home ~care_of ~registering =
  let w = W.create () in
  W.u8 w (Char.code 'R');
  W.u32 w home;
  W.u32 w care_of;
  W.bool w registering;
  W.contents w

let encode_ack ~home ~care_of =
  let w = W.create () in
  W.u8 w (Char.code 'A');
  W.u32 w home;
  W.u32 w care_of;
  W.contents w

let home_agent node udp ~local =
  let t =
    {
      ha_node = node;
      ha_udp = udp;
      ha_local = local;
      ha_bindings = Hashtbl.create 8;
      ha_metrics = Metrics.create ();
    }
  in
  Udp.listen udp ~port:registration_port (fun ~src ~sport body ->
      try
        let r = R.create body in
        if R.u8 r = Char.code 'R' then begin
          let home = R.u32 r in
          let care_of = R.u32 r in
          let registering = R.bool r in
          if registering then begin
            Hashtbl.replace t.ha_bindings home care_of;
            (* A (re)registration is the mobility handoff as the home
               agent sees it: the binding for [home] moves to a new
               care-of address. *)
            if Flight.enabled () then
              Flight.emit
                ~component:("ha:" ^ Node.node_name node)
                ~flow:home ~size:care_of Flight.Handoff;
            Metrics.incr t.ha_metrics "registrations"
          end
          else begin
            Hashtbl.remove t.ha_bindings home;
            Metrics.incr t.ha_metrics "deregistrations"
          end;
          Udp.send udp ~src:local ~dst:src ~sport:registration_port ~dport:sport
            (encode_ack ~home ~care_of)
        end
      with R.Decode_error _ -> ());
  (* Intercept forwarded packets for bound home addresses and tunnel
     them to the care-of address. *)
  Node.set_forward_hook node (fun pkt ~in_if:_ ->
      match Hashtbl.find_opt t.ha_bindings pkt.Packet.dst with
      | Some care_of when pkt.Packet.proto <> Packet.P_tunnel ->
        if Flight.enabled () then
          Flight.emit
            ~component:("ha:" ^ Node.node_name node)
            ~flow:pkt.Packet.dst ~size:(Bytes.length pkt.Packet.payload)
            (Flight.Custom "tunnel");
        Metrics.incr t.ha_metrics "tunnelled";
        Some
          (Packet.make ~src:t.ha_local ~dst:care_of ~proto:Packet.P_tunnel
             (Packet.encode pkt))
      | Some _ | None -> Some pkt);
  t

let bindings t =
  Hashtbl.fold (fun home care acc -> (home, care) :: acc) t.ha_bindings []
  |> List.sort compare

let tunnelled t = Metrics.get t.ha_metrics "tunnelled"

type mobile = {
  m_node : Node.t;
  m_udp : Udp.t;
  m_home : Ip.addr;
  m_metrics : Metrics.t;
}

let mobile node udp ~home_addr =
  let t = { m_node = node; m_udp = udp; m_home = home_addr; m_metrics = Metrics.create () } in
  (* Decapsulate tunnelled packets: the inner packet is addressed to
     the home address, which is no longer a local interface address —
     re-inject it through the node's delivery path by handling it
     here and dispatching on the inner protocol. *)
  Node.set_proto_handler node Packet.P_tunnel (fun pkt ~in_if ->
      match Packet.decode pkt.Packet.payload with
      | Error _ -> Metrics.incr t.m_metrics "bad_tunnel"
      | Ok inner ->
        if Flight.enabled () then
          Flight.emit
            ~component:("mn:" ^ Node.node_name node)
            ~flow:inner.Packet.dst ~size:(Bytes.length inner.Packet.payload)
            (Flight.Custom "detunnel");
        Metrics.incr t.m_metrics "decapsulated";
        (* Deliver the inner packet as if it had arrived directly. *)
        Node.inject t.m_node inner ~in_if);
  t

(* Atomic for the same reason as [Dns.next_id]: the gensym is
   module-global and may be hit from several trial-runner domains. *)
let next_sport = Atomic.make 40000

let register_msg t ~home_agent_addr ~care_of ~registering ~on_ack =
  let sport = Atomic.fetch_and_add next_sport 1 in
  let acked = ref false in
  Udp.listen t.m_udp ~port:sport (fun ~src:_ ~sport:_ body ->
      try
        let r = R.create body in
        if R.u8 r = Char.code 'A' && not !acked then begin
          acked := true;
          (* Handoff completes for the mobile node when the home agent
             acknowledges the new care-of binding. *)
          if Flight.enabled () then
            Flight.emit
              ~component:("mn:" ^ Node.node_name t.m_node)
              ~flow:t.m_home ~size:care_of Flight.Handoff;
          Udp.unlisten t.m_udp ~port:sport;
          on_ack ()
        end
      with R.Decode_error _ -> ());
  let send () =
    Udp.send t.m_udp ~src:care_of ~dst:home_agent_addr ~sport
      ~dport:registration_port
      (encode_reg ~home:t.m_home ~care_of ~registering)
  in
  (* Registration retransmits with exponential backoff (0.5 s, 1 s,
     2 s, 4 s) — RFC 5944 asks agents not to be beaten at a fixed
     rate while the visited link is degraded. *)
  let rec retry attempt () =
    if not !acked then
      if attempt >= 4 then Udp.unlisten t.m_udp ~port:sport
      else begin
        send ();
        let delay = Rina_util.Backoff.delay_for ~base:0.5 attempt in
        ignore
          (Rina_sim.Engine.schedule (Node.engine t.m_node) ~delay
             (retry (attempt + 1)))
      end
  in
  retry 0 ()

let register_care_of t ~home_agent_addr ~care_of ~on_ack =
  register_msg t ~home_agent_addr ~care_of ~registering:true ~on_ack

let deregister t ~home_agent_addr ~care_of =
  register_msg t ~home_agent_addr ~care_of ~registering:false ~on_ack:(fun () -> ())
