module W = Rina_util.Codec.Writer
module R = Rina_util.Codec.Reader

let port = 53

type server = {
  udp : Udp.t;
  local : Ip.addr;
  table : (string, Ip.addr) Hashtbl.t;
  mutable served : int;
}

(* Query: 'Q' id name; response: 'R' id found addr. *)
let encode_query id name =
  let w = W.create () in
  W.u8 w (Char.code 'Q');
  W.u32 w id;
  W.string w name;
  W.contents w

let encode_response id result =
  let w = W.create () in
  W.u8 w (Char.code 'R');
  W.u32 w id;
  (match result with
   | Some addr ->
     W.bool w true;
     W.u32 w addr
   | None -> W.bool w false);
  W.contents w

let server udp ~local =
  let t = { udp; local; table = Hashtbl.create 16; served = 0 } in
  Udp.listen udp ~port (fun ~src ~sport body ->
      try
        let r = R.create body in
        if R.u8 r = Char.code 'Q' then begin
          let id = R.u32 r in
          let name = R.string r in
          t.served <- t.served + 1;
          Udp.send udp ~src:local ~dst:src ~sport:port ~dport:sport
            (encode_response id (Hashtbl.find_opt t.table name))
        end
      with R.Decode_error _ -> ());
  t

let register t name addr = Hashtbl.replace t.table name addr

let withdraw t name = Hashtbl.remove t.table name

let entries t =
  Hashtbl.fold (fun name addr acc -> (name, addr) :: acc) t.table []
  |> List.sort compare

let queries_served t = t.served

(* Atomic: resolver ids must stay unique when parallel trials share the
   domain pool (each trial builds its own stack, but the gensym is
   module-global). *)
let next_id = Atomic.make 1

let resolve udp engine ~local ~server:server_addr name ~on_result =
  let id = Atomic.fetch_and_add next_id 1 in
  let sport = 30000 + (id mod 10000) in
  let answered = ref false in
  Udp.listen udp ~port:sport (fun ~src:_ ~sport:_ body ->
      try
        let r = R.create body in
        if R.u8 r = Char.code 'R' && R.u32 r = id && not !answered then begin
          answered := true;
          Udp.unlisten udp ~port:sport;
          if R.bool r then on_result (Ok (R.u32 r))
          else on_result (Error ("name not found: " ^ name))
        end
      with R.Decode_error _ -> ());
  let send () =
    Udp.send udp ~src:local ~dst:server_addr ~sport ~dport:port (encode_query id name)
  in
  (* Retransmissions back off exponentially (1 s, 2 s, 4 s) like a real
     resolver, so a congested path is not hammered at a fixed rate. *)
  let rec retry attempt () =
    if not !answered then begin
      if attempt >= 3 then begin
        answered := true;
        Udp.unlisten udp ~port:sport;
        on_result (Error "DNS query timed out")
      end
      else begin
        send ();
        let delay = Rina_util.Backoff.delay_for ~base:1.0 attempt in
        ignore (Rina_sim.Engine.schedule engine ~delay (retry (attempt + 1)))
      end
    end
  in
  retry 0 ()
