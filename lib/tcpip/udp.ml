module Metrics = Rina_util.Metrics

type t = {
  node : Node.t;
  listeners : (int, src:Ip.addr -> sport:int -> bytes -> unit) Hashtbl.t;
  metrics : Metrics.t;
}

let attach node =
  let t = { node; listeners = Hashtbl.create 8; metrics = Metrics.create () } in
  Node.set_proto_handler node Packet.P_udp (fun pkt ~in_if:_ ->
      match Packet.Udp.decode pkt.Packet.payload with
      | Error _ -> Metrics.incr t.metrics "bad_dgram"
      | Ok d -> (
        match Hashtbl.find_opt t.listeners d.Packet.Udp.dport with
        | Some f ->
          Metrics.incr t.metrics "rx";
          (* Datagram handed to an application — the delivery point the
             recovery experiments key on (component "udp:<node>", like
             "efcp" on the RINA side), distinct from ip:<node> which
             also counts routing-protocol chatter. *)
          if Rina_util.Flight.enabled () then
            Rina_util.Flight.emit
              ~component:("udp:" ^ Node.node_name t.node)
              ~flow:d.Packet.Udp.dport
              ~size:(Bytes.length d.Packet.Udp.body)
              Rina_util.Flight.Pdu_recvd;
          f ~src:pkt.Packet.src ~sport:d.Packet.Udp.sport d.Packet.Udp.body
        | None -> Metrics.incr t.metrics "port_unreachable"));
  t

let listen t ~port f = Hashtbl.replace t.listeners port f

let unlisten t ~port = Hashtbl.remove t.listeners port

let send t ~src ~dst ~sport ~dport body =
  Metrics.incr t.metrics "tx";
  Node.send_ip t.node
    (Packet.make ~src ~dst ~proto:Packet.P_udp
       (Packet.Udp.encode { Packet.Udp.sport; dport; body }))

let open_ports t =
  Hashtbl.fold (fun port _ acc -> port :: acc) t.listeners [] |> List.sort compare

let metrics t = t.metrics
