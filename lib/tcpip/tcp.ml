module Metrics = Rina_util.Metrics
module Engine = Rina_sim.Engine

let mss = 1400

let max_window = 64

let init_rto = 0.5

let min_rto = 0.02

let max_rto = 8.0

let max_rtx = 8

type state = Closed | Syn_sent | Syn_rcvd | Established | Fin_wait

type unacked = { seg : Packet.Tcp.seg; mutable sent_at : float; mutable retries : int }

type conn = {
  stack : stack;
  laddr : Ip.addr;
  lport : int;
  raddr : Ip.addr;
  rport : int;
  metrics : Metrics.t;
  mutable st : state;
  mutable on_receive : bytes -> unit;
  mutable on_error : string -> unit;
  mutable on_close : unit -> unit;
  mutable on_established : (conn, string) result -> unit;
  (* sender *)
  mutable next_seq : int;
  mutable snd_una : int;
  mutable peer_window : int;
  mutable cwnd : float;
  mutable ssthresh : float;
  retx : (int, unacked) Hashtbl.t;
  backlog : bytes Queue.t;
  mutable rto : float;
  mutable srtt : float;
  mutable rttvar : float;
  mutable have_rtt : bool;
  mutable rto_timer : Engine.handle option;
  mutable dup_acks : int;
  mutable last_ack_seen : int;
  (* receiver *)
  mutable rcv_next : int;
  ooo : (int, Packet.Tcp.seg) Hashtbl.t;
  mutable fin_rcvd : bool;
}

and stack = {
  node : Node.t;
  conns : (int * Ip.addr * int, conn) Hashtbl.t;  (* (lport, raddr, rport) *)
  listeners : (int, conn -> unit) Hashtbl.t;
  mutable next_ephemeral : int;
  smetrics : Metrics.t;
}

let listening_ports stack =
  Hashtbl.fold (fun port _ acc -> port :: acc) stack.listeners [] |> List.sort compare

let stack_metrics stack = stack.smetrics

let conn_metrics c = c.metrics

let state c = c.st

let local_endpoint c = (c.laddr, c.lport)

let remote_endpoint c = (c.raddr, c.rport)

let set_on_receive c f = c.on_receive <- f

let set_on_error c f = c.on_error <- f

let set_on_close c f = c.on_close <- f

(* Flight-recorder emissions: the flow key is direction-independent
   ({!Ip.flow_key}) so both ends — and any future on-path observer —
   compute identical per-segment spans.  Only sequence-consuming
   segments (data, SYN, FIN) get a span; bare ACKs reuse seq 0 and
   would alias the SYN's span.  Each helper fetches the domain's
   recorder once and guards inside, so a segment event costs a single
   domain-local lookup and the disabled path allocates nothing. *)
module Flight = Rina_util.Flight

let[@inline] flight_seg c (seg : Packet.Tcp.seg) kind =
  let r = Flight.cur () in
  if Flight.on r then begin
    let flow =
      Ip.flow_key ~src:c.laddr ~dst:c.raddr ~sport:c.lport ~dport:c.rport
    in
    let consumes_seq =
      Bytes.length seg.Packet.Tcp.body > 0
      || seg.Packet.Tcp.flags.Packet.Tcp.syn
      || seg.Packet.Tcp.flags.Packet.Tcp.fin
    in
    Flight.emit_to r
      ~component:("tcp:" ^ Node.node_name c.stack.node)
      ~flow ~seq:seg.Packet.Tcp.seq
      ~size:(Bytes.length seg.Packet.Tcp.body)
      ~span:
        (if consumes_seq then Flight.span_of ~flow ~seq:seg.Packet.Tcp.seq
         else 0)
      kind
  end

let[@inline] flight_conn c kind =
  let r = Flight.cur () in
  if Flight.on r then
    Flight.emit_to r
      ~component:("tcp:" ^ Node.node_name c.stack.node)
      ~flow:(Ip.flow_key ~src:c.laddr ~dst:c.raddr ~sport:c.lport ~dport:c.rport)
      kind

let emit c (seg : Packet.Tcp.seg) =
  Metrics.incr c.metrics "segs_tx";
  flight_seg c seg Flight.Pdu_sent;
  Node.send_ip c.stack.node
    (Packet.make ~src:c.laddr ~dst:c.raddr ~proto:Packet.P_tcp
       (Packet.Tcp.encode seg))

let base_seg c =
  {
    Packet.Tcp.sport = c.lport;
    dport = c.rport;
    seq = 0;
    ack_seq = c.rcv_next;
    flags = Packet.Tcp.no_flags;
    window = max_window;
    body = Bytes.empty;
  }

let send_ack c = emit c { (base_seg c) with Packet.Tcp.flags = { Packet.Tcp.no_flags with ack = true } }

let cancel_timer = function Some h -> Engine.cancel h | None -> ()

let teardown stack c =
  Hashtbl.remove stack.conns (c.lport, c.raddr, c.rport);
  cancel_timer c.rto_timer;
  c.rto_timer <- None;
  c.st <- Closed

let fail c reason =
  if c.st <> Closed then begin
    Metrics.incr c.metrics "conn_errors";
    let was_opening = c.st = Syn_sent || c.st = Syn_rcvd in
    teardown c.stack c;
    if was_opening then c.on_established (Error reason) else c.on_error reason
  end

let in_flight c = c.next_seq - c.snd_una

let effective_window c =
  min (min max_window c.peer_window) (max 1 (int_of_float c.cwnd))

let rec arm_rto c =
  cancel_timer c.rto_timer;
  c.rto_timer <- None;
  if in_flight c > 0 && c.st <> Closed then begin
    flight_conn c Flight.Timer_set;
    c.rto_timer <-
      Some
        (Engine.schedule ~lane:Engine.Timer (Node.engine c.stack.node)
           ~delay:c.rto (fun () -> on_rto c))
  end

and on_rto c =
  if c.st = Closed then ()
  else begin
    flight_conn c Flight.Timer_fired;
    c.rto <- Float.min max_rto (2. *. c.rto);
    c.ssthresh <- Float.max 2. (c.cwnd /. 2.);
    c.cwnd <- 2.;
    retransmit c c.snd_una;
    arm_rto c
  end

and retransmit c seq =
  match Hashtbl.find_opt c.retx seq with
  | None -> ()
  | Some u ->
    if u.retries >= max_rtx then fail c "max retransmissions exceeded"
    else begin
      u.retries <- u.retries + 1;
      u.sent_at <- Engine.now (Node.engine c.stack.node);
      flight_seg c u.seg Flight.Retransmit;
      Metrics.incr c.metrics "segs_rtx";
      emit c { u.seg with Packet.Tcp.ack_seq = c.rcv_next }
    end

let transmit_seg c ?(flags = Packet.Tcp.no_flags) body =
  let seq = c.next_seq in
  c.next_seq <- c.next_seq + 1;
  let seg =
    {
      (base_seg c) with
      Packet.Tcp.seq;
      (* Everything carries an ACK except the very first SYN. *)
      flags = { flags with Packet.Tcp.ack = c.st <> Syn_sent };
      body;
    }
  in
  Hashtbl.replace c.retx seq
    { seg; sent_at = Engine.now (Node.engine c.stack.node); retries = 0 };
  emit c seg;
  if c.rto_timer = None then arm_rto c

let window_open c = in_flight c < effective_window c

let drain_backlog c =
  while
    c.st = Established && (not (Queue.is_empty c.backlog)) && window_open c
  do
    transmit_seg c (Queue.pop c.backlog)
  done

let send c data =
  if c.st = Closed then ()
  else begin
    (* Segment to the MSS; each piece consumes one sequence number. *)
    let len = Bytes.length data in
    let pieces = if len = 0 then 1 else (len + mss - 1) / mss in
    for i = 0 to pieces - 1 do
      let off = i * mss in
      let size = max 0 (min mss (len - off)) in
      Queue.push (Bytes.sub data off size) c.backlog
    done;
    drain_backlog c
  end

let rtt_sample c sample =
  if c.have_rtt then begin
    let err = sample -. c.srtt in
    c.srtt <- c.srtt +. (0.125 *. err);
    c.rttvar <- c.rttvar +. (0.25 *. (Float.abs err -. c.rttvar))
  end
  else begin
    c.srtt <- sample;
    c.rttvar <- sample /. 2.;
    c.have_rtt <- true
  end;
  c.rto <- Float.min max_rto (Float.max min_rto (c.srtt +. (4. *. c.rttvar)))

let handle_ack c (seg : Packet.Tcp.seg) =
  let ack = seg.Packet.Tcp.ack_seq in
  c.peer_window <- seg.Packet.Tcp.window;
  if ack > c.snd_una then begin
    let newly = ack - c.snd_una in
    c.dup_acks <- 0;
    (* Sample only on single-step in-order progression (see Efcp). *)
    (if ack = c.last_ack_seen + 1 then
       match Hashtbl.find_opt c.retx (ack - 1) with
       | Some u when u.retries = 0 ->
         rtt_sample c (Engine.now (Node.engine c.stack.node) -. u.sent_at)
       | Some _ | None -> ());
    for s = c.snd_una to ack - 1 do
      Hashtbl.remove c.retx s
    done;
    c.snd_una <- ack;
    let per_ack = if c.cwnd < c.ssthresh then 1.0 else 1.0 /. Float.max 1. c.cwnd in
    c.cwnd <- Float.min (float_of_int max_window) (c.cwnd +. (per_ack *. float_of_int newly));
    if c.have_rtt then c.rto <- Float.max min_rto (c.srtt +. (4. *. c.rttvar))
    else c.rto <- init_rto;
    arm_rto c;
    drain_backlog c
  end
  else if ack = c.last_ack_seen && in_flight c > 0 then begin
    c.dup_acks <- c.dup_acks + 1;
    if c.dup_acks = 3 then begin
      Metrics.incr c.metrics "fast_rtx";
      c.ssthresh <- Float.max 2. (c.cwnd /. 2.);
      c.cwnd <- c.ssthresh;
      retransmit c c.snd_una;
      c.dup_acks <- 0
    end
  end;
  c.last_ack_seen <- max c.last_ack_seen ack

let deliver_in_order c =
  let continue = ref true in
  while !continue do
    match Hashtbl.find_opt c.ooo c.rcv_next with
    | Some seg ->
      Hashtbl.remove c.ooo c.rcv_next;
      c.rcv_next <- c.rcv_next + 1;
      if seg.Packet.Tcp.flags.Packet.Tcp.fin then begin
        c.fin_rcvd <- true;
        continue := false
      end
      else begin
        flight_seg c seg Flight.Pdu_recvd;
        Metrics.incr c.metrics "delivered";
        c.on_receive seg.Packet.Tcp.body
      end
    | None -> continue := false
  done

let handle_data c (seg : Packet.Tcp.seg) =
  if seg.Packet.Tcp.seq < c.rcv_next || Hashtbl.mem c.ooo seg.Packet.Tcp.seq then begin
    flight_seg c seg (Flight.Pdu_dropped Flight.R_duplicate);
    Metrics.incr c.metrics "dup_rcvd";
    send_ack c
  end
  else begin
    Hashtbl.replace c.ooo seg.Packet.Tcp.seq seg;
    deliver_in_order c;
    send_ack c;
    if c.fin_rcvd && c.st = Established then begin
      (* Passive close: acknowledge, send our FIN, drop state. *)
      c.st <- Fin_wait;
      transmit_seg c ~flags:{ Packet.Tcp.no_flags with fin = true } Bytes.empty;
      let stack = c.stack in
      ignore
        (Engine.schedule (Node.engine stack.node) ~delay:1.0 (fun () ->
             teardown stack c;
             c.on_close ()))
    end
  end

let handle_segment_established c (seg : Packet.Tcp.seg) =
  if seg.Packet.Tcp.flags.Packet.Tcp.rst then fail c "connection reset"
  else begin
    if seg.Packet.Tcp.flags.Packet.Tcp.ack then handle_ack c seg;
    if Bytes.length seg.Packet.Tcp.body > 0 || seg.Packet.Tcp.flags.Packet.Tcp.fin
    then handle_data c seg
  end

let make_conn stack ~laddr ~lport ~raddr ~rport ~st =
  {
    stack;
    laddr;
    lport;
    raddr;
    rport;
    metrics = Metrics.create ();
    st;
    on_receive = (fun _ -> ());
    on_error = (fun _ -> ());
    on_close = (fun () -> ());
    on_established = (fun _ -> ());
    next_seq = 0;
    snd_una = 0;
    peer_window = max_window;
    cwnd = 2.;
    ssthresh = float_of_int max_window;
    retx = Hashtbl.create 32;
    backlog = Queue.create ();
    rto = init_rto;
    srtt = 0.;
    rttvar = 0.;
    have_rtt = false;
    rto_timer = None;
    dup_acks = 0;
    last_ack_seen = 0;
    rcv_next = 0;
    ooo = Hashtbl.create 32;
    fin_rcvd = false;
  }

let send_rst stack ~src ~dst (seg : Packet.Tcp.seg) =
  Metrics.incr stack.smetrics "rst_tx";
  Node.send_ip stack.node
    (Packet.make ~src ~dst ~proto:Packet.P_tcp
       (Packet.Tcp.encode
          {
            Packet.Tcp.sport = seg.Packet.Tcp.dport;
            dport = seg.Packet.Tcp.sport;
            seq = 0;
            ack_seq = seg.Packet.Tcp.seq + 1;
            flags = { Packet.Tcp.no_flags with rst = true; ack = true };
            window = 0;
            body = Bytes.empty;
          }))

let handle_syn stack pkt (seg : Packet.Tcp.seg) =
  match Hashtbl.find_opt stack.listeners seg.Packet.Tcp.dport with
  | None -> send_rst stack ~src:pkt.Packet.dst ~dst:pkt.Packet.src seg
  | Some on_accept ->
    let c =
      make_conn stack ~laddr:pkt.Packet.dst ~lport:seg.Packet.Tcp.dport
        ~raddr:pkt.Packet.src ~rport:seg.Packet.Tcp.sport ~st:Syn_rcvd
    in
    c.rcv_next <- seg.Packet.Tcp.seq + 1;
    Hashtbl.replace stack.conns (c.lport, c.raddr, c.rport) c;
    Metrics.incr stack.smetrics "accepts";
    (* SYN+ACK consumes sequence number 0. *)
    transmit_seg c ~flags:{ Packet.Tcp.no_flags with syn = true; ack = true }
      Bytes.empty;
    c.on_established <-
      (function Ok conn -> on_accept conn | Error _ -> ())

let handle_segment stack pkt (seg : Packet.Tcp.seg) =
  let key = (seg.Packet.Tcp.dport, pkt.Packet.src, seg.Packet.Tcp.sport) in
  match Hashtbl.find_opt stack.conns key with
  | Some c -> (
    match c.st with
    | Syn_sent ->
      if seg.Packet.Tcp.flags.Packet.Tcp.rst then fail c "connection refused"
      else if seg.Packet.Tcp.flags.Packet.Tcp.syn then begin
        c.rcv_next <- seg.Packet.Tcp.seq + 1;
        handle_ack c seg;
        c.st <- Established;
        send_ack c;
        Metrics.incr stack.smetrics "established";
        c.on_established (Ok c);
        drain_backlog c
      end
    | Syn_rcvd ->
      if seg.Packet.Tcp.flags.Packet.Tcp.rst then fail c "connection reset"
      else begin
        if seg.Packet.Tcp.flags.Packet.Tcp.ack then handle_ack c seg;
        if c.snd_una >= 1 then begin
          c.st <- Established;
          Metrics.incr stack.smetrics "established";
          c.on_established (Ok c)
        end;
        if Bytes.length seg.Packet.Tcp.body > 0 then handle_data c seg
      end
    | Established | Fin_wait -> handle_segment_established c seg
    | Closed -> ())
  | None ->
    if seg.Packet.Tcp.flags.Packet.Tcp.syn && not seg.Packet.Tcp.flags.Packet.Tcp.ack
    then handle_syn stack pkt seg
    else if not seg.Packet.Tcp.flags.Packet.Tcp.rst then
      send_rst stack ~src:pkt.Packet.dst ~dst:pkt.Packet.src seg

let attach node =
  let stack =
    {
      node;
      conns = Hashtbl.create 16;
      listeners = Hashtbl.create 8;
      next_ephemeral = 49152;
      smetrics = Metrics.create ();
    }
  in
  Node.set_proto_handler node Packet.P_tcp (fun pkt ~in_if:_ ->
      match Packet.Tcp.decode pkt.Packet.payload with
      | Error _ -> Metrics.incr stack.smetrics "bad_segment"
      | Ok seg -> handle_segment stack pkt seg);
  stack

let listen stack ~port ~on_accept = Hashtbl.replace stack.listeners port on_accept

let unlisten stack ~port = Hashtbl.remove stack.listeners port

let connect stack ~src ~dst ~dport ~on_result =
  let sport = stack.next_ephemeral in
  stack.next_ephemeral <- stack.next_ephemeral + 1;
  let c = make_conn stack ~laddr:src ~lport:sport ~raddr:dst ~rport:dport ~st:Syn_sent in
  Hashtbl.replace stack.conns (sport, dst, dport) c;
  c.on_established <- on_result;
  Metrics.incr stack.smetrics "connects";
  (* SYN consumes sequence number 0. *)
  transmit_seg c ~flags:{ Packet.Tcp.no_flags with syn = true } Bytes.empty

let close c =
  match c.st with
  | Established ->
    c.st <- Fin_wait;
    transmit_seg c ~flags:{ Packet.Tcp.no_flags with fin = true } Bytes.empty;
    let stack = c.stack in
    ignore
      (Engine.schedule (Node.engine stack.node) ~delay:2.0 (fun () ->
           teardown stack c;
           c.on_close ()))
  | Syn_sent | Syn_rcvd | Fin_wait | Closed -> teardown c.stack c
